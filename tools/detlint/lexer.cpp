#include "lexer.hpp"

#include <cctype>

namespace detlint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Longest-match punctuators the rule matchers care about. Everything else
/// is emitted one character at a time.
constexpr std::string_view kPuncts[] = {
    "->*", "<<=", ">>=", "...", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "++", "--", "+=", "-=", "*=", "/=",
};

}  // namespace

LexResult lex(std::string_view src) {
  LexResult out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool line_has_code = false;  // any non-ws, non-comment byte so far this line

  auto bump_lines = [&](std::string_view chunk) {
    for (char c : chunk) {
      if (c == '\n') line = line + 1;
    }
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      line_has_code = false;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = n;
      out.comments.push_back(
          {std::string(src.substr(i + 2, end - i - 2)), line, !line_has_code});
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      const std::size_t stop = end == std::string_view::npos ? n : end + 2;
      std::size_t body_end = end == std::string_view::npos ? n : end;
      out.comments.push_back(
          {std::string(src.substr(i + 2, body_end - i - 2)), line,
           !line_has_code});
      bump_lines(src.substr(i, stop - i));
      i = stop;
      continue;
    }
    line_has_code = true;
    // Preprocessor directive: record #include targets, otherwise skip to EOL
    // (respecting line continuations).
    if (c == '#') {
      std::size_t j = i + 1;
      while (j < n && (src[j] == ' ' || src[j] == '\t')) ++j;
      std::size_t word_end = j;
      while (word_end < n && ident_char(src[word_end])) ++word_end;
      const std::string_view word = src.substr(j, word_end - j);
      if (word == "include") {
        std::size_t k = word_end;
        while (k < n && (src[k] == ' ' || src[k] == '\t')) ++k;
        if (k < n && (src[k] == '"' || src[k] == '<')) {
          const char close = src[k] == '"' ? '"' : '>';
          std::size_t e = src.find(close, k + 1);
          if (e != std::string_view::npos) {
            out.includes.push_back({std::string(src.substr(k + 1, e - k - 1)),
                                    close == '>', line});
          }
        }
      }
      // Skip the rest of the directive, honoring backslash continuations.
      while (i < n) {
        std::size_t eol = src.find('\n', i);
        if (eol == std::string_view::npos) {
          i = n;
          break;
        }
        std::size_t back = eol;
        while (back > i && (src[back - 1] == ' ' || src[back - 1] == '\t')) {
          --back;
        }
        const bool continued = back > i && src[back - 1] == '\\';
        i = eol + 1;
        ++line;
        line_has_code = false;
        if (!continued) break;
      }
      continue;
    }
    // String / char literal (contents discarded). Raw strings handled too.
    if (c == '"' || c == '\'' ||
        (c == 'R' && i + 1 < n && src[i + 1] == '"')) {
      const int start_line = line;
      if (c == 'R') {
        // R"delim( ... )delim"
        std::size_t open = src.find('(', i + 2);
        if (open == std::string_view::npos) {
          ++i;
          continue;
        }
        const std::string delim(src.substr(i + 2, open - i - 2));
        const std::string closer = ")" + delim + "\"";
        std::size_t end = src.find(closer, open + 1);
        const std::size_t stop =
            end == std::string_view::npos ? n : end + closer.size();
        bump_lines(src.substr(i, stop - i));
        i = stop;
      } else {
        const char quote = c;
        std::size_t j = i + 1;
        while (j < n && src[j] != quote) {
          if (src[j] == '\\' && j + 1 < n) ++j;
          if (src[j] == '\n') ++line;
          ++j;
        }
        i = j < n ? j + 1 : n;
      }
      out.tokens.push_back({TokKind::kString, "\"\"", start_line});
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      out.tokens.push_back({TokKind::kIdent, std::string(src.substr(i, j - i)),
                            line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (ident_char(src[j]) || src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E')))) {
        ++j;
      }
      out.tokens.push_back({TokKind::kNumber, std::string(src.substr(i, j - i)),
                            line});
      i = j;
      continue;
    }
    // Punctuator: longest match from the table, else a single char.
    std::string_view rest = src.substr(i);
    std::string_view matched;
    for (std::string_view p : kPuncts) {
      if (rest.substr(0, p.size()) == p) {
        matched = p;
        break;
      }
    }
    if (matched.empty()) matched = rest.substr(0, 1);
    out.tokens.push_back({TokKind::kPunct, std::string(matched), line});
    i += matched.size();
  }
  return out;
}

}  // namespace detlint
