// detlint lexer: a minimal C++ tokenizer for determinism-contract linting.
//
// detlint deliberately avoids libclang: the rules it enforces (DESIGN.md §15)
// are lexical properties — container spellings, forbidden identifiers,
// include directives — so a comment/string-stripping tokenizer is enough and
// keeps the tool a dependency-free part of the root build. The lexer
// produces three streams from one pass:
//   * tokens     — identifiers / punctuators / literals with line numbers
//                  (comments and the *contents* of string literals removed,
//                  so "rand()" in a log message never trips a rule);
//   * comments   — raw comment text with line numbers, scanned by the
//                  annotation engine for `detlint:` directives;
//   * includes   — `#include "..."` / `#include <...>` directives for the
//                  layering rule.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace detlint {

enum class TokKind {
  kIdent,    ///< identifier or keyword
  kNumber,   ///< numeric literal
  kString,   ///< string or char literal (text is a placeholder, not contents)
  kPunct,    ///< operator / punctuator; multi-char ones ("::", "->") intact
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  ///< 1-based
};

struct Comment {
  std::string text;  ///< comment body without the // or /* */ markers
  int line = 0;      ///< line the comment starts on
  bool standalone = false;  ///< nothing but whitespace precedes it on its line
};

struct Include {
  std::string path;   ///< include target as written
  bool angled = false;  ///< <...> rather than "..."
  int line = 0;
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<Include> includes;
};

/// Tokenizes `source`. Never fails: unrecognized bytes become single-char
/// punctuators, so the rule matchers can stay simple.
LexResult lex(std::string_view source);

}  // namespace detlint
