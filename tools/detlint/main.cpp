// detlint — determinism-contract static analyzer (DESIGN.md §15).
//
//   detlint --root <repo>         lint src/ bench/ tests/ examples/
//   detlint --fixtures <dir>      self-test against the golden fixture corpus
//   detlint <file>...             lint specific files (layer inferred from
//                                 any src/<layer>/ path component)
//
// Exit codes: 0 clean / fixtures all pass, 1 findings or fixture mismatch,
// 2 usage or I/O error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "rules.hpp"

namespace fs = std::filesystem;

namespace {

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

/// Derives ScanOptions from a path: files under src/ get every rule and
/// their layer from the directory name; everything else gets the
/// tree-independent rules only. src/common/rng.* is the sanctioned RNG
/// implementation and is exempt from the wall-clock rule by definition.
detlint::ScanOptions options_for(const fs::path& rel) {
  detlint::ScanOptions opts;
  opts.file_class = detlint::FileClass::kOther;
  auto it = rel.begin();
  if (it != rel.end() && *it == "src") {
    opts.file_class = detlint::FileClass::kSrc;
    if (++it != rel.end() && std::next(it) != rel.end()) {
      opts.layer = it->string();
    }
    const std::string stem = rel.filename().string();
    opts.rng_internals =
        opts.layer == "common" && (stem == "rng.hpp" || stem == "rng.cpp");
  }
  return opts;
}

/// For foo.cpp, loads sibling foo.hpp so header-declared members are tracked.
std::string companion_text(const fs::path& file) {
  if (file.extension() != ".cpp" && file.extension() != ".cc") return {};
  for (const char* ext : {".hpp", ".h"}) {
    fs::path hdr = file;
    hdr.replace_extension(ext);
    std::string text;
    if (fs::exists(hdr) && read_file(hdr, text)) return text;
  }
  return {};
}

int lint_files(const std::vector<std::pair<fs::path, fs::path>>& files) {
  // files: (absolute path, repo-relative path for layer/report purposes)
  std::size_t findings = 0;
  for (const auto& [abs, rel] : files) {
    std::string text;
    if (!read_file(abs, text)) {
      std::cerr << "detlint: cannot read " << abs << "\n";
      return 2;
    }
    const auto res = detlint::scan_source(rel.generic_string(), text,
                                          companion_text(abs),
                                          options_for(rel));
    for (const auto& f : res) std::cout << detlint::format_finding(f) << "\n";
    findings += res.size();
  }
  if (findings != 0) {
    std::cout << "detlint: " << findings << " finding(s) in " << files.size()
              << " file(s). Fix them, or annotate a justified exception "
                 "with `// detlint: allow(<rule>) -- <why>`.\n";
    return 1;
  }
  std::cout << "detlint: " << files.size() << " file(s) clean\n";
  return 0;
}

int lint_tree(const fs::path& root) {
  std::vector<std::pair<fs::path, fs::path>> files;
  const fs::path fixtures = root / "tests" / "detlint" / "fixtures";
  for (const char* top : {"src", "bench", "tests", "examples"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) continue;
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
      if (!e.is_regular_file() || !lintable(e.path())) continue;
      // The fixture corpus intentionally violates every rule.
      if (e.path().lexically_relative(fixtures).native()[0] != '.') continue;
      files.emplace_back(e.path(), e.path().lexically_relative(root));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  return lint_files(files);
}

/// Golden self-test: every fixture <name>.{cpp,hpp} must produce exactly the
/// findings listed in <name>.expected ("<line> <rule>" per line; empty file
/// = must be clean).
int self_test(const fs::path& dir) {
  if (!fs::exists(dir)) {
    std::cerr << "detlint: no fixture directory " << dir << "\n";
    return 2;
  }
  std::vector<fs::path> fixtures;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file() && lintable(e.path())) {
      fixtures.push_back(e.path());
    }
  }
  std::sort(fixtures.begin(), fixtures.end());
  if (fixtures.empty()) {
    std::cerr << "detlint: fixture directory " << dir << " is empty\n";
    return 2;
  }
  int failures = 0;
  for (const fs::path& fixture : fixtures) {
    fs::path expected_path = fixture;
    expected_path.replace_extension(".expected");
    std::string text, expected_text;
    if (!read_file(fixture, text) || !read_file(expected_path, expected_text)) {
      std::cerr << "detlint: fixture " << fixture.filename()
                << " is missing its .expected file\n";
      ++failures;
      continue;
    }
    // Fixtures are linted as src files; a fixture-layer(...) directive inside
    // the file opts into the layering rule.
    detlint::ScanOptions opts;
    opts.file_class = detlint::FileClass::kSrc;
    const auto res = detlint::scan_source(fixture.filename().string(), text,
                                          /*companion=*/"", opts);
    std::vector<std::string> got;
    got.reserve(res.size());
    for (const auto& f : res) {
      got.push_back(std::to_string(f.line) + " " + f.rule);
    }
    std::vector<std::string> want;
    std::istringstream lines(expected_text);
    for (std::string line; std::getline(lines, line);) {
      while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
        line.pop_back();
      }
      if (!line.empty() && line[0] != '#') want.push_back(line);
    }
    if (got == want) {
      std::cout << "PASS " << fixture.filename().string() << " (" << got.size()
                << " finding(s))\n";
      continue;
    }
    ++failures;
    std::cout << "FAIL " << fixture.filename().string() << "\n";
    std::cout << "  expected:\n";
    for (const auto& w : want) std::cout << "    " << w << "\n";
    std::cout << "  got:\n";
    for (std::size_t i = 0; i < res.size(); ++i) {
      std::cout << "    " << got[i] << "  // "
                << detlint::format_finding(res[i]) << "\n";
    }
  }
  if (failures != 0) {
    std::cout << "detlint self-test: " << failures << "/" << fixtures.size()
              << " fixture(s) FAILED\n";
    return 1;
  }
  std::cout << "detlint self-test: " << fixtures.size()
            << " fixture(s) passed\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::cerr << "usage: detlint --root <repo> | --fixtures <dir> | "
                 "<file>...\n";
    return 2;
  }
  if (args[0] == "--root" || args[0] == "--fixtures") {
    if (args.size() != 2) {
      std::cerr << "detlint: " << args[0] << " takes exactly one path\n";
      return 2;
    }
    const fs::path p = args[1];
    return args[0] == "--root" ? lint_tree(p) : self_test(p);
  }
  std::vector<std::pair<fs::path, fs::path>> files;
  for (const auto& a : args) {
    fs::path p = a;
    if (!fs::exists(p)) {
      std::cerr << "detlint: no such file " << p << "\n";
      return 2;
    }
    // Use the path as given for layer inference; absolute paths still work
    // if they contain a src/<layer>/ component.
    fs::path rel = p;
    for (auto it = p.begin(); it != p.end(); ++it) {
      if (*it == "src" || *it == "bench" || *it == "tests" ||
          *it == "examples") {
        rel = fs::path();
        for (auto jt = it; jt != p.end(); ++jt) rel /= *jt;
        break;
      }
    }
    files.emplace_back(p, rel);
  }
  return lint_files(files);
}
