#include "rules.hpp"

#include <algorithm>
#include <cstddef>
#include <optional>

namespace detlint {
namespace {

constexpr std::string_view kRuleIds[] = {"unordered-iter", "wall-clock",
                                         "ptr-order", "layering"};

bool known_rule(std::string_view rule) {
  return std::find(std::begin(kRuleIds), std::end(kRuleIds), rule) !=
         std::end(kRuleIds);
}

// ---- annotations -----------------------------------------------------------

struct Annotation {
  int line = 0;        ///< line the directive was written on
  int target = 0;      ///< line whose findings it suppresses
  std::string rule;
  bool used = false;
};

struct Directives {
  std::vector<Annotation> allows;
  std::vector<Finding> malformed;      ///< bad-annotation findings
  std::optional<std::string> fixture_layer;
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses `detlint:` directives out of the comment stream. A standalone
/// annotation comment targets the next line that is not itself a standalone
/// comment (so annotations can sit above the code line they justify, and can
/// stack); an inline annotation targets its own line.
Directives parse_directives(std::string_view path,
                            const std::vector<Comment>& comments) {
  Directives out;
  std::set<int> standalone_comment_lines;
  for (const Comment& c : comments) {
    if (c.standalone) standalone_comment_lines.insert(c.line);
  }
  for (const Comment& c : comments) {
    const std::size_t at = c.text.find("detlint:");
    if (at == std::string::npos) continue;
    std::string_view rest = trim(std::string_view(c.text).substr(at + 8));
    auto bad = [&](std::string why) {
      out.malformed.push_back({std::string(path), c.line, "bad-annotation",
                               std::move(why)});
    };
    if (rest.rfind("fixture-layer(", 0) == 0) {
      const std::size_t close = rest.find(')');
      if (close == std::string_view::npos) {
        bad("unclosed fixture-layer(...) directive");
        continue;
      }
      out.fixture_layer = std::string(trim(rest.substr(14, close - 14)));
      continue;
    }
    if (rest.rfind("allow(", 0) != 0) {
      bad("unrecognized detlint directive (expected allow(<rule>) -- <why>)");
      continue;
    }
    const std::size_t close = rest.find(')');
    if (close == std::string_view::npos) {
      bad("unclosed allow(...) directive");
      continue;
    }
    const std::string rule(trim(rest.substr(6, close - 6)));
    if (!known_rule(rule)) {
      bad("allow(" + rule + "): unknown rule id");
      continue;
    }
    std::string_view tail = trim(rest.substr(close + 1));
    if (tail.rfind("--", 0) != 0 || trim(tail.substr(2)).empty()) {
      bad("allow(" + rule +
          ") is missing its mandatory justification: write "
          "`allow(" + rule + ") -- <why this is safe>`");
      continue;
    }
    Annotation a;
    a.line = c.line;
    a.rule = rule;
    a.target = c.line;
    if (standalone_comment_lines.count(c.line) != 0) {
      int t = c.line + 1;
      while (standalone_comment_lines.count(t) != 0) ++t;
      a.target = t;
    }
    out.allows.push_back(std::move(a));
  }
  return out;
}

// ---- token helpers ---------------------------------------------------------

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// Advances past a balanced template argument list; `i` indexes the `<`
/// token. Returns the index one past the matching `>`, treating `>>` as two
/// closers. Returns npos when unbalanced (declaration spans something the
/// lexer did not expect) so callers can bail out quietly.
std::size_t skip_template_args(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "<")) ++depth;
    else if (is_punct(t, "<<")) depth += 2;
    else if (is_punct(t, ">")) --depth;
    else if (is_punct(t, ">>")) depth -= 2;
    else if (is_punct(t, ";")) return std::string_view::npos;  // gave up
    if (depth <= 0 && (is_punct(t, ">") || is_punct(t, ">>"))) return i + 1;
  }
  return std::string_view::npos;
}

/// Collects identifiers declared with an unordered container type — member
/// and local variables, functions returning (references to) unordered
/// containers, and `using`/`typedef` aliases of unordered types (plus the
/// variables later declared with those aliases).
std::set<std::string, std::less<>> collect_unordered_names(
    const std::vector<Token>& toks) {
  std::set<std::string, std::less<>> names;
  std::set<std::string, std::less<>> alias_types;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const bool unordered = is_ident(toks[i], "unordered_map") ||
                           is_ident(toks[i], "unordered_set") ||
                           is_ident(toks[i], "unordered_multimap") ||
                           is_ident(toks[i], "unordered_multiset");
    if (!unordered || i + 1 >= toks.size() || !is_punct(toks[i + 1], "<")) {
      continue;
    }
    // Alias? look back across `std ::` for `using X =` / `typedef`.
    std::size_t b = i;
    if (b >= 2 && is_punct(toks[b - 1], "::") && is_ident(toks[b - 2], "std")) {
      b -= 2;
    }
    const bool is_using_alias = b >= 2 && is_punct(toks[b - 1], "=") &&
                                toks[b - 2].kind == TokKind::kIdent && b >= 3 &&
                                is_ident(toks[b - 3], "using");
    std::size_t end = skip_template_args(toks, i + 1);
    if (end == std::string_view::npos) continue;
    if (is_using_alias) {
      alias_types.insert(toks[b - 2].text);
      continue;
    }
    // typedef std::unordered_map<...> X;
    bool is_typedef = false;
    for (std::size_t k = b; k-- > 0;) {
      if (is_punct(toks[k], ";") || is_punct(toks[k], "{") ||
          is_punct(toks[k], "}")) {
        break;
      }
      if (is_ident(toks[k], "typedef")) {
        is_typedef = true;
        break;
      }
    }
    // Skip ref/pointer/cv decoration, then take the declared name.
    while (end < toks.size() &&
           (is_punct(toks[end], "&") || is_punct(toks[end], "*") ||
            is_ident(toks[end], "const"))) {
      ++end;
    }
    if (end < toks.size() && toks[end].kind == TokKind::kIdent) {
      (is_typedef ? alias_types : names).insert(toks[end].text);
    }
  }
  // Second pass: variables declared with an aliased unordered type.
  if (!alias_types.empty()) {
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent ||
          alias_types.count(toks[i].text) == 0) {
        continue;
      }
      std::size_t j = i + 1;
      while (j < toks.size() &&
             (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
              is_ident(toks[j], "const"))) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
        names.insert(toks[j].text);
      }
    }
  }
  return names;
}

std::size_t matching_paren(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "(")) ++depth;
    else if (is_punct(toks[i], ")") && --depth == 0) return i;
  }
  return std::string_view::npos;
}

/// If tokens [first, last) form a plain access path — identifiers joined by
/// `.` / `->` / `::`, optionally ending in one call `(...)` — returns the
/// final identifier (the thing actually iterated); otherwise nullopt.
std::optional<std::string> access_path_root(const std::vector<Token>& toks,
                                            std::size_t first,
                                            std::size_t last) {
  std::string root;
  std::size_t i = first;
  for (; i < last; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kIdent) {
      root = t.text;
      continue;
    }
    if (is_punct(t, ".") || is_punct(t, "->") || is_punct(t, "::")) continue;
    if (is_punct(t, "(")) {
      // Only a single trailing call is a "plain" path.
      const std::size_t close = matching_paren(toks, i);
      if (close == last - 1 && !root.empty()) return root;
      return std::nullopt;
    }
    return std::nullopt;
  }
  if (root.empty()) return std::nullopt;
  return root;
}

void rule_unordered_iter(std::string_view path, const std::vector<Token>& toks,
                         const std::set<std::string, std::less<>>& tracked,
                         std::vector<Finding>& out) {
  if (tracked.empty()) return;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "for") || !is_punct(toks[i + 1], "(")) continue;
    const std::size_t close = matching_paren(toks, i + 1);
    if (close == std::string_view::npos) continue;
    // Range-for: a ':' at paren depth 1.
    std::size_t colon = std::string_view::npos;
    int depth = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (is_punct(toks[j], "(") || is_punct(toks[j], "[")) ++depth;
      else if (is_punct(toks[j], ")") || is_punct(toks[j], "]")) --depth;
      else if (depth == 1 && is_punct(toks[j], ":")) {
        colon = j;
        break;
      }
    }
    if (colon != std::string_view::npos) {
      const auto root = access_path_root(toks, colon + 1, close);
      if (root && tracked.count(*root) != 0) {
        out.push_back({std::string(path), toks[i].line, "unordered-iter",
                       "range-for over unordered container `" + *root +
                           "`: hash order is not deterministic across "
                           "insertion histories; iterate a sorted view or "
                           "switch the container to std::map/std::set"});
      }
      continue;
    }
    // Iterator loop: `tracked.begin()` / `tracked->cbegin()` in the header.
    for (std::size_t j = i + 2; j + 2 < close; ++j) {
      if (toks[j].kind == TokKind::kIdent && tracked.count(toks[j].text) != 0 &&
          (is_punct(toks[j + 1], ".") || is_punct(toks[j + 1], "->")) &&
          (is_ident(toks[j + 2], "begin") || is_ident(toks[j + 2], "cbegin"))) {
        out.push_back({std::string(path), toks[i].line, "unordered-iter",
                       "iterator loop over unordered container `" +
                           toks[j].text +
                           "`: hash order is not deterministic; iterate a "
                           "sorted view instead"});
        break;
      }
    }
  }
}

// ---- wall-clock / ambient nondeterminism -----------------------------------

void rule_wall_clock(std::string_view path, const std::vector<Token>& toks,
                     std::vector<Finding>& out) {
  static constexpr std::string_view kBannedAnywhere[] = {
      "system_clock",  "steady_clock",   "high_resolution_clock",
      "gettimeofday",  "random_device",  "mt19937",
      "mt19937_64",    "default_random_engine", "minstd_rand",
      "minstd_rand0",  "ranlux24",       "ranlux48",
      "ranlux24_base", "ranlux48_base",  "knuth_b",
      "clock_gettime", "localtime",      "gmtime",
  };
  // Tokens that can precede a plain function *call* (never a declaration).
  static constexpr std::string_view kCallContext[] = {
      "=", "(", ",", ";", "{", "}", "return", "?", ":",  "<",  ">",
      "+", "-", "*", "/", "%", "!", "&&",     "|", "||", "&",  "^",
  };
  auto in_call_context = [&](std::size_t i) {
    if (i == 0) return false;
    const Token& p = toks[i - 1];
    if (p.kind == TokKind::kIdent) return p.text == "return";
    return std::find(std::begin(kCallContext), std::end(kCallContext),
                     p.text) != std::end(kCallContext);
  };
  auto add = [&](const Token& t, const std::string& what,
                 const std::string& instead) {
    out.push_back({std::string(path), t.line, "wall-clock",
                   what + ": " + instead});
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    for (std::string_view banned : kBannedAnywhere) {
      if (t.text != banned) continue;
      const bool clockish = banned.find("clock") != std::string_view::npos ||
                            banned == "gettimeofday" || banned == "localtime" ||
                            banned == "gmtime";
      add(t, "ambient nondeterminism source `" + t.text + "`",
          clockish ? "use sim::Simulation time, not the wall clock"
                   : "draw from a forked moon::Rng stream instead");
      break;
    }
    const bool after_member =
        i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
    const bool after_scope = i > 0 && is_punct(toks[i - 1], "::");
    const bool std_qualified =
        after_scope && i >= 2 && is_ident(toks[i - 2], "std");
    if ((t.text == "rand" || t.text == "srand") && !after_member &&
        (!after_scope || std_qualified)) {
      add(t, "libc `" + t.text + "`",
          "draw from a forked moon::Rng stream instead");
      continue;
    }
    const bool called = i + 1 < toks.size() && is_punct(toks[i + 1], "(");
    if (t.text == "time" && called && !after_member && !after_scope &&
        in_call_context(i)) {
      add(t, "libc `time()`", "use sim::Simulation time, not the wall clock");
      continue;
    }
    if (t.text == "shuffle" && called &&
        (std_qualified || (!after_member && !after_scope &&
                           in_call_context(i)))) {
      add(t, "`std::shuffle`",
          "use moon::Rng::shuffle on a forked stream instead");
      continue;
    }
  }
}

// ---- pointer-keyed ordering ------------------------------------------------

void rule_ptr_order(std::string_view path, const std::vector<Token>& toks,
                    std::vector<Finding>& out) {
  static constexpr std::string_view kOrderedByKey[] = {
      "map", "set", "multimap", "multiset", "priority_queue", "less",
      "greater",
  };
  for (std::size_t i = 2; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || !is_punct(toks[i - 1], "::") ||
        !is_ident(toks[i - 2], "std") || !is_punct(toks[i + 1], "<")) {
      continue;
    }
    if (std::find(std::begin(kOrderedByKey), std::end(kOrderedByKey),
                  t.text) == std::end(kOrderedByKey)) {
      continue;
    }
    // Scan the first template argument (up to a depth-1 comma or the close)
    // for a pointer declarator.
    int angle = 0, paren = 0;
    bool ptr = false;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      const Token& a = toks[j];
      if (is_punct(a, "<")) ++angle;
      else if (is_punct(a, ">")) --angle;
      else if (is_punct(a, ">>")) angle -= 2;
      else if (is_punct(a, "(")) ++paren;
      else if (is_punct(a, ")")) --paren;
      else if (is_punct(a, ";")) break;
      if (angle <= 0) break;
      if (angle == 1 && paren == 0 && is_punct(a, ",")) break;
      if (angle >= 1 && is_punct(a, "*")) {
        ptr = true;
        break;
      }
    }
    if (ptr) {
      out.push_back({std::string(path), t.line, "ptr-order",
                     "pointer-keyed std::" + t.text +
                         ": iteration/comparison order follows addresses, "
                         "which vary run to run; key by a stable id instead"});
    }
  }
}

// ---- include layering ------------------------------------------------------

const std::map<std::string, int, std::less<>>& ranks_table() {
  // DESIGN.md §15: lower rank = lower layer; an include edge may only point
  // at the same rank or below. Peers of one rank may include each other
  // (dfs ↔ recovery journaling, mapred ↔ faults instrumentation).
  static const std::map<std::string, int, std::less<>> kRanks = {
      {"common", 0},
      {"simkit", 1}, {"trace", 1},
      {"obs", 2},    {"engine", 2},
      {"cluster", 3}, {"dfs", 3}, {"recovery", 3},
      {"checkpoint", 4}, {"mapred", 4}, {"faults", 4},
      {"audit", 5}, {"workload", 5},
      {"experiment", 6},
  };
  return kRanks;
}

void rule_layering(std::string_view path, const std::vector<Include>& includes,
                   const std::string& layer, std::vector<Finding>& out) {
  const auto& ranks = ranks_table();
  const auto self = ranks.find(layer);
  if (self == ranks.end()) return;
  for (const Include& inc : includes) {
    if (inc.angled) continue;
    const std::size_t slash = inc.path.find('/');
    if (slash == std::string::npos) continue;
    const auto target = ranks.find(std::string_view(inc.path).substr(0, slash));
    if (target == ranks.end()) continue;
    if (target->second > self->second) {
      out.push_back({std::string(path), inc.line, "layering",
                     "layer `" + layer + "` (rank " +
                         std::to_string(self->second) + ") includes \"" +
                         inc.path + "\" from higher layer `" + target->first +
                         "` (rank " + std::to_string(target->second) +
                         "): dependencies must point down the architecture "
                         "DAG"});
    }
  }
}

}  // namespace

const std::map<std::string, int, std::less<>>& layer_ranks() {
  return ranks_table();
}

std::vector<Finding> scan_source(std::string_view path, std::string_view text,
                                 std::string_view companion,
                                 const ScanOptions& opts) {
  const LexResult lexed = lex(text);
  Directives directives = parse_directives(path, lexed.comments);

  std::vector<Finding> raw;
  if (opts.file_class == FileClass::kSrc) {
    auto tracked = collect_unordered_names(lexed.tokens);
    if (!companion.empty()) {
      const LexResult companion_lexed = lex(companion);
      auto more = collect_unordered_names(companion_lexed.tokens);
      tracked.insert(more.begin(), more.end());
    }
    rule_unordered_iter(path, lexed.tokens, tracked, raw);

    std::string layer = opts.layer;
    if (directives.fixture_layer) layer = *directives.fixture_layer;
    rule_layering(path, lexed.includes, layer, raw);
  }
  if (!opts.rng_internals) rule_wall_clock(path, lexed.tokens, raw);
  rule_ptr_order(path, lexed.tokens, raw);

  // Apply allow-annotations; anything unmatched is a finding of its own.
  std::vector<Finding> out;
  for (Finding& f : raw) {
    bool suppressed = false;
    for (Annotation& a : directives.allows) {
      if (a.rule == f.rule && a.target == f.line) {
        a.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) out.push_back(std::move(f));
  }
  for (const Annotation& a : directives.allows) {
    if (!a.used) {
      out.push_back({std::string(path), a.line, "stale-annotation",
                     "allow(" + a.rule +
                         ") suppresses nothing (no such finding on its "
                         "target line); delete the annotation or move it "
                         "next to the code it justifies"});
    }
  }
  out.insert(out.end(),
             std::make_move_iterator(directives.malformed.begin()),
             std::make_move_iterator(directives.malformed.end()));
  std::sort(out.begin(), out.end(), [](const Finding& x, const Finding& y) {
    if (x.line != y.line) return x.line < y.line;
    return x.rule < y.rule;
  });
  return out;
}

std::string format_finding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

}  // namespace detlint
