// detlint rules: the mechanized determinism contract (DESIGN.md §15).
//
// Four rules, each mapped to a clause of the DESIGN.md §2 contract:
//
//   unordered-iter  No range-for / iterator loops over std::unordered_map /
//                   std::unordered_set in src/ — hash-order iteration is the
//                   PR-4 bug class (state changes in hash order diverge
//                   across libstdc++ versions and insertion histories).
//   wall-clock      No ambient nondeterminism sources: wall clocks
//                   (system_clock / steady_clock::now, time(), gettimeofday),
//                   unseeded randomness (rand, srand, std::random_device,
//                   std::shuffle, std:: engines like mt19937). All randomness
//                   must flow from a forked moon::Rng stream; all time from
//                   sim::Simulation. src/common/rng.* (the sanctioned RNG)
//                   is exempt by path.
//   ptr-order       No pointer-keyed ordered containers (std::map<T*, ...>,
//                   std::set<T*>, priority_queue over pointers, std::less<T*>)
//                   — address order varies run to run under ASLR/allocators.
//   layering        #include edges in src/ must follow the architecture DAG
//                   (common → simkit/trace → obs/engine → cluster/dfs/recovery
//                   → checkpoint/mapred/faults → audit/workload → experiment);
//                   a layer may include itself, peers of the same rank, and
//                   anything below — never above.
//
// Suppression: a finding is allowed only by an inline annotation
//   // detlint: allow(<rule>) -- <justification>
// on the same line, or on an immediately preceding standalone comment line.
// The justification is mandatory; an annotation that suppresses nothing is a
// *stale-annotation* finding in its own right, so allows cannot rot.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"

namespace detlint {

struct Finding {
  std::string file;   ///< path as given to the scanner
  int line = 0;
  std::string rule;   ///< rule id, or "stale-annotation" / "bad-annotation"
  std::string message;
};

/// What part of the tree a file belongs to; controls which rules run.
enum class FileClass {
  kSrc,    ///< src/** — all four rules
  kOther,  ///< bench/tests/examples — wall-clock + ptr-order only
};

struct ScanOptions {
  FileClass file_class = FileClass::kSrc;
  /// Layer name derived from the path (e.g. "dfs" for src/dfs/namenode.cpp);
  /// empty = layering rule skipped (may be overridden by a
  /// `detlint: fixture-layer(<name>)` directive inside the file).
  std::string layer;
  /// Exempt from the wall-clock rule (sim::Rng internals).
  bool rng_internals = false;
};

/// Layer ranks for the include-layering rule. Exposed for the tree walker
/// (to derive `ScanOptions::layer`) and for tests.
const std::map<std::string, int, std::less<>>& layer_ranks();

/// Scans one file's contents. `companion` holds extra declaration context —
/// for foo.cpp pass the text of the sibling foo.hpp (or empty) so member
/// containers declared in the header are tracked when iterated in the .cpp.
std::vector<Finding> scan_source(std::string_view path, std::string_view text,
                                 std::string_view companion,
                                 const ScanOptions& opts);

/// Formats a finding as "file:line: [rule] message".
std::string format_finding(const Finding& f);

}  // namespace detlint
