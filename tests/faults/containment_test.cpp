// Failure containment: the per-task attempt cap aborts a doomed job cleanly
// (structured failure reason, full teardown), and the JobTracker quarantines
// flaky trackers with exponential-backoff readmission.
#include <gtest/gtest.h>

#include "../mapred/mapred_fixture.hpp"
#include "mapred/task.hpp"

namespace moon::mapred {
namespace {

using testing::FixtureOptions;
using testing::MapRedHarness;

TEST(AttemptCap, RepeatedKillsAbortJobWithTooManyAttempts) {
  FixtureOptions opts;
  opts.volatile_nodes = 1;  // one tracker: every attempt dies with it
  opts.dedicated_nodes = 0;
  opts.sched = testing::hadoop_sched(/*expiry=*/60 * sim::kSecond);
  opts.sched.max_attempt_failures = 2;
  opts.num_maps = 2;
  opts.num_reduces = 1;
  opts.map_compute = 600 * sim::kSecond;  // never finishes inside an up-window
  MapRedHarness h(opts);
  h.submit();

  const NodeId node = h.volatile_ids[0];
  // Two churn cycles: up long enough to launch, down past tracker expiry so
  // the attempts are killed. Each cycle adds one killed attempt per task.
  for (int cycle = 0; cycle < 2 && !h.job().finished(); ++cycle) {
    h.advance(30 * sim::kSecond);
    h.set_node_available(node, false);
    h.advance(150 * sim::kSecond);  // > expiry: tracker dies, attempts killed
    h.set_node_available(node, true);
  }
  h.advance(60 * sim::kSecond);

  EXPECT_TRUE(h.job().finished());
  EXPECT_FALSE(h.job().metrics().completed);
  EXPECT_TRUE(h.job().metrics().failed);
  EXPECT_EQ(h.job().metrics().failure_reason,
            JobFailureReason::kTooManyAttempts);
  EXPECT_STREQ(to_string(h.job().metrics().failure_reason),
               "too_many_attempts");
  // Clean teardown: nothing still running anywhere.
  EXPECT_EQ(h.job().live_attempts(), 0);
}

TEST(AttemptCap, GenerousDefaultNeverTriggersOnHealthyRun) {
  FixtureOptions opts;
  opts.sched = testing::moon_sched();
  MapRedHarness h(opts);
  h.submit();
  EXPECT_TRUE(h.run_to_completion());
  EXPECT_EQ(h.job().metrics().failure_reason, JobFailureReason::kNone);
}

TEST(Quarantine, StrikesQuarantineAndBackoffReadmits) {
  FixtureOptions opts;
  opts.volatile_nodes = 3;
  opts.sched = testing::moon_sched();
  opts.sched.quarantine_threshold = 2;
  opts.sched.quarantine_backoff = 120 * sim::kSecond;
  opts.sched.quarantine_backoff_max = 480 * sim::kSecond;
  MapRedHarness h(opts);
  JobTracker& jt = h.jobtracker();

  TaskTracker* flaky = jt.trackers()[0];
  const NodeId node = flaky->node_id();
  h.advance(10 * sim::kSecond);

  // One strike is below threshold: not quarantined.
  jt.note_attempt_failure(*flaky);
  EXPECT_FALSE(jt.quarantined(node));
  jt.note_attempt_failure(*flaky);
  EXPECT_TRUE(jt.quarantined(node));
  EXPECT_EQ(jt.quarantined_count(), 1);
  EXPECT_EQ(jt.quarantines_total(), 1);

  // Still quarantined while the backoff runs (heartbeats keep arriving but
  // are gated), then the first heartbeat past the deadline readmits.
  h.advance(60 * sim::kSecond);
  EXPECT_TRUE(jt.quarantined(node));
  h.advance(90 * sim::kSecond);
  EXPECT_FALSE(jt.quarantined(node));
  EXPECT_EQ(jt.quarantined_count(), 0);

  // Readmission wiped the strikes: one new failure is again below threshold.
  jt.note_attempt_failure(*flaky);
  EXPECT_FALSE(jt.quarantined(node));
  // Second entry doubles the backoff: 240 s now.
  jt.note_attempt_failure(*flaky);
  EXPECT_TRUE(jt.quarantined(node));
  EXPECT_EQ(jt.quarantines_total(), 2);
  h.advance(150 * sim::kSecond);
  EXPECT_TRUE(jt.quarantined(node));  // 120 s would have readmitted already
  h.advance(150 * sim::kSecond);
  EXPECT_FALSE(jt.quarantined(node));
}

// A tracker that strikes out again immediately after readmission is not a
// fresh offender: each quarantine entry doubles the backoff (up to the cap)
// instead of restarting from the base — readmission wipes the *strikes*, not
// the entry count the backoff derives from.
TEST(Quarantine, ImmediateRestrikeAfterReadmissionDoublesBackoff) {
  FixtureOptions opts;
  opts.volatile_nodes = 3;
  opts.sched = testing::moon_sched();
  opts.sched.quarantine_threshold = 2;
  opts.sched.quarantine_backoff = 120 * sim::kSecond;
  opts.sched.quarantine_backoff_max = 480 * sim::kSecond;
  MapRedHarness h(opts);
  JobTracker& jt = h.jobtracker();

  TaskTracker* flaky = jt.trackers()[0];
  const NodeId node = flaky->node_id();
  h.advance(10 * sim::kSecond);

  // Round 1: 120 s backoff.
  jt.note_attempt_failure(*flaky);
  jt.note_attempt_failure(*flaky);
  ASSERT_TRUE(jt.quarantined(node));
  h.advance(130 * sim::kSecond);
  ASSERT_FALSE(jt.quarantined(node));

  // Round 2, immediately on readmission: 240 s, not a reset to 120 s.
  jt.note_attempt_failure(*flaky);
  jt.note_attempt_failure(*flaky);
  ASSERT_TRUE(jt.quarantined(node));
  h.advance(130 * sim::kSecond);
  EXPECT_TRUE(jt.quarantined(node));  // a reset-to-120s would have readmitted
  h.advance(120 * sim::kSecond);
  ASSERT_FALSE(jt.quarantined(node));

  // Round 3, again immediately: doubles once more to the 480 s cap.
  jt.note_attempt_failure(*flaky);
  jt.note_attempt_failure(*flaky);
  ASSERT_TRUE(jt.quarantined(node));
  EXPECT_EQ(jt.quarantines_total(), 3);
  h.advance(250 * sim::kSecond);
  EXPECT_TRUE(jt.quarantined(node));  // 240 s would have readmitted already
  h.advance(240 * sim::kSecond);
  EXPECT_FALSE(jt.quarantined(node));
  EXPECT_EQ(jt.quarantined_count(), 0);
}

TEST(Quarantine, ThresholdZeroIsOff) {
  FixtureOptions opts;
  opts.sched = testing::moon_sched();  // quarantine_threshold defaults to 0
  MapRedHarness h(opts);
  JobTracker& jt = h.jobtracker();
  TaskTracker* t = jt.trackers()[0];
  for (int i = 0; i < 10; ++i) jt.note_attempt_failure(*t);
  EXPECT_FALSE(jt.quarantined(t->node_id()));
  EXPECT_EQ(jt.quarantines_total(), 0);
}

TEST(Quarantine, QuarantinedTrackerGetsNoWork) {
  FixtureOptions opts;
  opts.volatile_nodes = 3;
  opts.dedicated_nodes = 1;
  opts.sched = testing::moon_sched();
  opts.sched.quarantine_threshold = 1;
  opts.sched.quarantine_backoff = 2 * sim::kHour;  // never readmits in-test
  opts.num_maps = 6;
  opts.num_reduces = 2;
  MapRedHarness h(opts);
  JobTracker& jt = h.jobtracker();

  TaskTracker* flaky = jt.trackers()[0];
  jt.note_attempt_failure(*flaky);
  ASSERT_TRUE(jt.quarantined(flaky->node_id()));

  h.submit();
  EXPECT_TRUE(h.run_to_completion());
  EXPECT_TRUE(jt.quarantined(flaky->node_id()));
  // The job completed around the quarantined node: no attempt ever ran there.
  for (TaskType type : {TaskType::kMap, TaskType::kReduce}) {
    for (TaskId tid : h.job().tasks_of(type)) {
      for (AttemptId aid : h.job().task(tid).attempts) {
        EXPECT_NE(h.job().attempt(aid)->tracker().node_id(),
                  flaky->node_id());
      }
    }
  }
}

}  // namespace
}  // namespace moon::mapred
