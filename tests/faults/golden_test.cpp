// Faults-off golden test: with `ScenarioConfig::faults` at its default
// (off), today's tree must reproduce the exact outcomes the tree produced
// BEFORE the fault subsystem existed — the zero-perturbation contract
// (DESIGN.md §13), asserted bit for bit. The numbers below were captured by
// running these configs against the pre-fault-subsystem build.
#include <gtest/gtest.h>

#include <cstdint>

#include "experiment/scenario.hpp"
#include "workload/workload.hpp"

namespace moon::experiment {
namespace {

ScenarioConfig small_config(const mapred::SchedulerConfig& sched,
                            std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.volatile_nodes = 10;
  cfg.dedicated_nodes = 2;
  cfg.unavailability_rate = 0.3;
  cfg.sched = sched;
  cfg.dfs = moon_dfs_config();
  cfg.app = workload::sleep_of(workload::sort_workload());
  cfg.app.num_maps = 20;
  cfg.app.input_size = 20 * kKiB;
  cfg.app.input_block_bytes = kKiB;
  cfg.app.map_compute = 20 * sim::kSecond;
  cfg.app.reduce_compute = 20 * sim::kSecond;
  cfg.seed = seed;
  cfg.max_sim_time = 4 * sim::kHour;
  return cfg;
}

struct Golden {
  int finished;
  double execution_time_s;
  int launched_maps;
  int launched_reduces;
  int speculative;
  int killed_maps;
  int killed_reduces;
  int map_reexecutions;
  int checkpoints_written;
  int checkpoint_resumes;
  std::int64_t bytes_read;
  std::int64_t bytes_written;
  std::int64_t replication_bytes;
};

struct GoldenCase {
  const char* policy;
  std::uint64_t seed;
  Golden want;
};

mapred::SchedulerConfig policy_by_name(const char* name) {
  if (std::string(name) == "moon_checkpoint") {
    return moon_checkpoint_scheduler(false);
  }
  return hadoop_scheduler(5 * sim::kMinute);
}

void expect_golden(const RunResult& r, const Golden& want,
                   const GoldenCase& c) {
  SCOPED_TRACE(std::string(c.policy) + " seed=" + std::to_string(c.seed));
  EXPECT_EQ(r.finished ? 1 : 0, want.finished);
  EXPECT_EQ(r.execution_time_s, want.execution_time_s);  // exact, no tolerance
  EXPECT_EQ(r.metrics.launched_map_attempts, want.launched_maps);
  EXPECT_EQ(r.metrics.launched_reduce_attempts, want.launched_reduces);
  EXPECT_EQ(r.metrics.speculative_attempts, want.speculative);
  EXPECT_EQ(r.metrics.killed_map_attempts, want.killed_maps);
  EXPECT_EQ(r.metrics.killed_reduce_attempts, want.killed_reduces);
  EXPECT_EQ(r.metrics.map_reexecutions, want.map_reexecutions);
  EXPECT_EQ(r.metrics.checkpoints_written, want.checkpoints_written);
  EXPECT_EQ(r.metrics.checkpoint_resumes, want.checkpoint_resumes);
  EXPECT_EQ(r.dfs_stats.bytes_read, want.bytes_read);
  EXPECT_EQ(r.dfs_stats.bytes_written, want.bytes_written);
  EXPECT_EQ(r.dfs_stats.replication_bytes, want.replication_bytes);
  // And the fault machinery must report it did nothing at all.
  EXPECT_EQ(r.fault_stats.total_injected(), 0);
  EXPECT_EQ(r.quarantines, 0);
  EXPECT_EQ(r.metrics.failure_reason, mapred::JobFailureReason::kNone);
}

TEST(FaultsOffGolden, IndependentChurnBitIdenticalToPreFaultTree) {
  const GoldenCase cases[] = {
      {"moon_checkpoint", 20100621u,
       {1, 65, 20, 27, 6, 0, 6, 0, 0, 0, 72860, 81998, 11}},
      {"moon_checkpoint", 7u,
       {1, 65, 20, 29, 8, 0, 8, 0, 0, 0, 76740, 79953, 2052}},
      {"hadoop_5min", 20100621u,
       {1, 65, 20, 21, 0, 0, 0, 0, 0, 0, 61220, 81998, 11}},
      {"hadoop_5min", 7u,
       {1, 65, 20, 21, 0, 0, 0, 0, 0, 0, 61220, 79953, 2052}},
  };
  for (const GoldenCase& c : cases) {
    const RunResult r =
        run_scenario(small_config(policy_by_name(c.policy), c.seed));
    expect_golden(r, c.want, c);
  }
}

TEST(FaultsOffGolden, CorrelatedChurnBitIdenticalToPreFaultTree) {
  const GoldenCase cases[] = {
      {"moon_checkpoint", 20100621u,
       {1, 80, 20, 27, 6, 0, 6, 0, 1, 0, 71405, 104979, 5}},
      {"moon_checkpoint", 7u,
       {1, 50, 20, 27, 6, 0, 6, 0, 0, 0, 72860, 82004, 0}},
      {"hadoop_5min", 20100621u,
       {1, 100, 20, 22, 1, 0, 1, 0, 0, 0, 63160, 81999, 5}},
      {"hadoop_5min", 7u,
       {1, 50, 20, 21, 0, 0, 0, 0, 0, 0, 61220, 82004, 0}},
  };
  for (const GoldenCase& c : cases) {
    ScenarioConfig cfg = small_config(policy_by_name(c.policy), c.seed);
    cfg.unavailability_rate = 0.45;
    cfg.correlated_outages = true;
    cfg.correlation_group_size = 4;
    const RunResult r = run_scenario(cfg);
    expect_golden(r, c.want, c);
  }
}

// Non-vacuity: the same config with chaos ON must actually diverge — if it
// didn't, the goldens above would be testing nothing.
TEST(FaultsOffGolden, ChaosOnActuallyPerturbs) {
  ScenarioConfig cfg =
      small_config(moon_checkpoint_scheduler(false), 20100621u);
  cfg.faults.enabled = true;
  cfg.faults.heartbeats.enabled = true;
  cfg.faults.heartbeats.drop_probability = 0.3;
  cfg.faults.heartbeats.delay_probability = 0.3;
  const RunResult r = run_scenario(cfg);
  EXPECT_GT(r.fault_stats.heartbeats_dropped +
                r.fault_stats.heartbeats_delayed,
            0);
  // Baseline: bytes_read 72860, time 65 s. Chaos must have moved something.
  EXPECT_TRUE(r.execution_time_s != 65.0 || r.dfs_stats.bytes_read != 72860 ||
              r.metrics.launched_reduce_attempts != 27);
}

}  // namespace
}  // namespace moon::experiment
