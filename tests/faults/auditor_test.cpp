// moon::audit::Auditor: clean stacks audit clean (mid-run and at rest), and
// a deliberately broken invariant is detected — proving the sweep is not
// vacuously green.
#include <gtest/gtest.h>

#include "../mapred/mapred_fixture.hpp"
#include "audit/auditor.hpp"

namespace moon::audit {
namespace {

using mapred::testing::FixtureOptions;
using mapred::testing::MapRedHarness;

FixtureOptions busy_opts() {
  FixtureOptions opts;
  opts.volatile_nodes = 4;
  opts.dedicated_nodes = 1;
  opts.sched = mapred::testing::moon_sched();
  opts.sched.checkpoint.enabled = true;
  opts.sched.checkpoint.scan_interval = 30 * sim::kSecond;
  opts.sched.checkpoint.min_progress_delta = 0.01;
  opts.sched.checkpoint.factor = {1, 1};
  opts.num_maps = 6;
  opts.num_reduces = 2;
  opts.reduce_compute = 120 * sim::kSecond;
  return opts;
}

TEST(Auditor, CleanStackAuditsCleanMidRunAndAtRest) {
  MapRedHarness h(busy_opts());
  h.submit();
  Auditor auditor(&h.cluster(), &h.dfs(), &h.jobtracker());

  // Sweep repeatedly while the job runs — every event boundary must hold
  // the invariants, including with churn in the middle.
  int sweeps = 0;
  bool churned = false;
  while (!h.job().finished() && h.sim().now() < 2 * sim::kHour) {
    h.advance(60 * sim::kSecond);
    if (!churned && h.sim().now() >= 20 * sim::kMinute) {
      churned = true;
      h.set_node_available(h.volatile_ids[0], false);
    }
    EXPECT_TRUE(auditor.run().empty()) << "at t=" << h.sim().now();
    ++sweeps;
  }
  EXPECT_TRUE(h.job().metrics().completed);
  EXPECT_TRUE(auditor.run().empty());
  EXPECT_EQ(auditor.violations_total(), 0);
  EXPECT_EQ(auditor.passes(), sweeps + 1);
}

TEST(Auditor, DetectsPhantomReplica) {
  MapRedHarness h(busy_opts());
  h.submit();
  h.advance(2 * sim::kMinute);

  // Corrupt the metadata on purpose: register a replica on a node that
  // holds no bytes for it. (Real code can't reach this state — commit only
  // happens after a physical store.)
  auto& nn = h.dfs().namenode();
  BlockId victim = BlockId::invalid();
  for (const auto& [id, meta] : nn.all_blocks()) {
    for (NodeId n : h.volatile_ids) {
      if (!meta.has_replica_on(n)) {
        victim = id;
        nn.commit_replica(id, n);
        break;
      }
    }
    if (victim.valid()) break;
  }
  ASSERT_TRUE(victim.valid());

  Auditor auditor(&h.cluster(), &h.dfs(), &h.jobtracker());
  const auto violations = auditor.run();
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().invariant, "dfs.replica-consistency");
  EXPECT_EQ(auditor.violations_total(),
            static_cast<std::int64_t>(violations.size()));
}

TEST(Auditor, NullComponentsAreSkipped) {
  Auditor auditor(nullptr, nullptr, nullptr);
  EXPECT_TRUE(auditor.run().empty());
  EXPECT_EQ(auditor.passes(), 1);
}

}  // namespace
}  // namespace moon::audit
