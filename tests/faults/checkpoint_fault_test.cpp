// Checkpoint resume under injected replica loss (DESIGN.md §13): when every
// replica of a committed checkpoint's log segments disappears mid-job, the
// rescheduled reduce must fall back to a fresh attempt — no resume, no
// double-counted work — and the job still completes.
#include <gtest/gtest.h>

#include <vector>

#include "../mapred/mapred_fixture.hpp"
#include "checkpoint/checkpoint_store.hpp"
#include "mapred/task.hpp"

namespace moon::mapred {
namespace {

using testing::FixtureOptions;
using testing::MapRedHarness;

FixtureOptions checkpoint_opts() {
  FixtureOptions opts;
  opts.volatile_nodes = 4;
  opts.dedicated_nodes = 1;
  opts.sched = testing::moon_sched();
  opts.sched.checkpoint.enabled = true;
  opts.sched.checkpoint.scan_interval = 30 * sim::kSecond;
  opts.sched.checkpoint.min_progress_delta = 0.01;
  opts.sched.checkpoint.factor = {1, 1};
  opts.num_maps = 4;
  opts.num_reduces = 2;
  opts.map_compute = 10 * sim::kSecond;
  opts.reduce_compute = 600 * sim::kSecond;  // long enough to checkpoint
  return opts;
}

/// Steps until `store` holds a committed record or `limit` passes.
bool wait_for_checkpoint(MapRedHarness& h, sim::Duration limit) {
  const sim::Time deadline = h.sim().now() + limit;
  auto& store = h.jobtracker().checkpoint_store();
  while (store.record_count() == 0 && h.sim().now() < deadline) {
    if (!h.sim().step()) break;
  }
  return store.record_count() > 0;
}

TEST(CheckpointFault, ReplicaLossFallsBackToFreshAttempt) {
  MapRedHarness h(checkpoint_opts());
  h.submit();
  ASSERT_TRUE(wait_for_checkpoint(h, 2 * sim::kHour));

  auto& store = h.jobtracker().checkpoint_store();
  const auto& [key, record] = *store.records().begin();
  ASSERT_NE(store.latest_live(key.first, key.second), nullptr);

  // Injected replica loss: every committed log segment loses every replica.
  auto& nn = h.dfs().namenode();
  for (BlockId block : record.blocks) {
    ASSERT_TRUE(nn.block_exists(block));
    const Bytes size = nn.block(block).size;
    const std::vector<NodeId> holders = nn.block(block).replicas;  // copy
    for (NodeId n : holders) h.dfs().datanode(n).drop_block(block, size);
  }
  EXPECT_EQ(store.latest_live(key.first, key.second), nullptr);
  EXPECT_TRUE(store.is_dead(key.first, key.second));

  // Kill the checkpointed reduce's attempt (tracker death) to force a
  // reschedule that would have resumed.
  Task& task = h.job().task(key.second);
  ASSERT_FALSE(task.live_attempts.empty());
  const NodeId host = task.live_attempts.front()->tracker().node_id();
  h.set_node_available(host, false);
  h.advance(31 * sim::kMinute);  // past MOON's 30 min tracker expiry
  h.set_node_available(host, true);

  EXPECT_TRUE(h.run_to_completion());
  // Fresh attempt, not a resume; the work was redone exactly once per kill,
  // never double-counted as completed tasks.
  EXPECT_EQ(h.job().metrics().checkpoint_resumes, 0);
  EXPECT_EQ(h.job().completed_tasks(TaskType::kReduce), 2);
  EXPECT_EQ(h.job().metrics().failure_reason, JobFailureReason::kNone);
}

// Positive control: identical churn with the replicas intact DOES resume —
// proving the fallback assertion above is non-vacuous.
TEST(CheckpointFault, IntactReplicasResume) {
  MapRedHarness h(checkpoint_opts());
  h.submit();
  ASSERT_TRUE(wait_for_checkpoint(h, 2 * sim::kHour));

  auto& store = h.jobtracker().checkpoint_store();
  const auto& [key, record] = *store.records().begin();
  ASSERT_NE(store.latest_live(key.first, key.second), nullptr);

  Task& task = h.job().task(key.second);
  ASSERT_FALSE(task.live_attempts.empty());
  const NodeId host = task.live_attempts.front()->tracker().node_id();
  h.set_node_available(host, false);
  h.advance(31 * sim::kMinute);
  h.set_node_available(host, true);

  EXPECT_TRUE(h.run_to_completion());
  EXPECT_GE(h.job().metrics().checkpoint_resumes, 1);
  EXPECT_EQ(h.job().completed_tasks(TaskType::kReduce), 2);
}

}  // namespace
}  // namespace moon::mapred
