// Chaos determinism: the fault injector draws from its own seeded RNG
// streams, so the same (config, seed) must replay the exact same faults and
// the exact same simulated outcome — and each fault class draws from its own
// fork, so enabling one class never perturbs another's schedule.
#include <gtest/gtest.h>

#include "experiment/scenario.hpp"
#include "workload/workload.hpp"

namespace moon::experiment {
namespace {

ScenarioConfig chaos_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.volatile_nodes = 12;
  cfg.dedicated_nodes = 2;
  cfg.unavailability_rate = 0.3;
  cfg.sched = moon_checkpoint_scheduler(false);
  cfg.sched.quarantine_threshold = 3;
  cfg.dfs = moon_dfs_config();
  cfg.app = workload::sleep_of(workload::sort_workload());
  cfg.app.num_maps = 20;
  cfg.app.input_size = 20 * kKiB;
  cfg.app.input_block_bytes = kKiB;
  cfg.app.map_compute = 20 * sim::kSecond;
  cfg.app.reduce_compute = 30 * sim::kSecond;
  cfg.seed = seed;
  cfg.max_sim_time = 4 * sim::kHour;

  cfg.faults.enabled = true;
  cfg.faults.outages.enabled = true;
  cfg.faults.outages.group_size = 4;
  cfg.faults.outages.mean_interval = 3 * sim::kMinute;
  cfg.faults.outages.mean_outage = 60 * sim::kSecond;
  cfg.faults.heartbeats.enabled = true;
  cfg.faults.heartbeats.drop_probability = 0.1;
  cfg.faults.heartbeats.delay_probability = 0.1;
  cfg.faults.storage.enabled = true;
  cfg.faults.storage.corrupt_probability = 0.05;
  cfg.faults.storage.reject_probability = 0.05;
  cfg.faults.stragglers.enabled = true;
  cfg.faults.stragglers.fraction = 0.25;
  cfg.faults.audit_interval = 60 * sim::kSecond;
  return cfg;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.execution_time_s, b.execution_time_s);
  EXPECT_EQ(a.metrics.launched_map_attempts, b.metrics.launched_map_attempts);
  EXPECT_EQ(a.metrics.launched_reduce_attempts,
            b.metrics.launched_reduce_attempts);
  EXPECT_EQ(a.metrics.killed_map_attempts, b.metrics.killed_map_attempts);
  EXPECT_EQ(a.metrics.killed_reduce_attempts,
            b.metrics.killed_reduce_attempts);
  EXPECT_EQ(a.metrics.checkpoint_resumes, b.metrics.checkpoint_resumes);
  EXPECT_EQ(a.dfs_stats.bytes_read, b.dfs_stats.bytes_read);
  EXPECT_EQ(a.dfs_stats.bytes_written, b.dfs_stats.bytes_written);
  EXPECT_EQ(a.dfs_stats.replication_bytes, b.dfs_stats.replication_bytes);
  EXPECT_EQ(a.dfs_stats.writes_rejected, b.dfs_stats.writes_rejected);
  EXPECT_EQ(a.dfs_stats.corruptions_detected,
            b.dfs_stats.corruptions_detected);
  // The injected faults themselves replay exactly.
  EXPECT_EQ(a.fault_stats.outages_injected, b.fault_stats.outages_injected);
  EXPECT_EQ(a.fault_stats.heartbeats_dropped,
            b.fault_stats.heartbeats_dropped);
  EXPECT_EQ(a.fault_stats.heartbeats_delayed,
            b.fault_stats.heartbeats_delayed);
  EXPECT_EQ(a.fault_stats.replicas_corrupted,
            b.fault_stats.replicas_corrupted);
  EXPECT_EQ(a.fault_stats.writes_rejected, b.fault_stats.writes_rejected);
  EXPECT_EQ(a.fault_stats.stragglers_injected,
            b.fault_stats.stragglers_injected);
  EXPECT_EQ(a.quarantines, b.quarantines);
  EXPECT_EQ(a.audit_passes, b.audit_passes);
  EXPECT_EQ(a.audit_violations, b.audit_violations);
}

TEST(ChaosDeterminism, SameSeedSameChaosSameOutcome) {
  for (std::uint64_t seed : {20100621u, 7u}) {
    const RunResult a = run_scenario(chaos_config(seed));
    const RunResult b = run_scenario(chaos_config(seed));
    SCOPED_TRACE("seed=" + std::to_string(seed));
    expect_identical(a, b);
    EXPECT_GT(a.fault_stats.total_injected(), 0);  // non-vacuous
    EXPECT_EQ(a.audit_violations, 0);
  }
}

TEST(ChaosDeterminism, DifferentSeedsInjectDifferentChaos) {
  const RunResult a = run_scenario(chaos_config(20100621u));
  const RunResult b = run_scenario(chaos_config(7u));
  EXPECT_NE(a.fault_stats.heartbeats_dropped + a.fault_stats.total_injected(),
            b.fault_stats.heartbeats_dropped + b.fault_stats.total_injected());
}

// Per-class stream independence: switching the storage class off must not
// move a single outage or straggler draw (each class forks its own RNG).
TEST(ChaosDeterminism, ClassStreamsAreIndependent) {
  ScenarioConfig with = chaos_config(20100621u);
  ScenarioConfig without = chaos_config(20100621u);
  without.faults.storage.enabled = false;
  const RunResult a = run_scenario(with);
  const RunResult b = run_scenario(without);
  EXPECT_EQ(b.fault_stats.replicas_corrupted, 0);
  EXPECT_EQ(b.fault_stats.writes_rejected, 0);
  // Stragglers are picked at arm() time from their own stream: identical
  // regardless of the storage class. (Outage *counts* can differ because
  // storage faults change how long the run lasts.)
  EXPECT_EQ(a.fault_stats.stragglers_injected,
            b.fault_stats.stragglers_injected);
}

}  // namespace
}  // namespace moon::experiment
