// detlint_core unit tests: lexer behavior (comment/string stripping, include
// capture) and each rule matcher on inline snippets, including the
// suppression and stale-annotation machinery the fixture corpus exercises
// end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"
#include "rules.hpp"

namespace {

using detlint::FileClass;
using detlint::Finding;
using detlint::ScanOptions;

std::vector<Finding> scan(std::string_view text,
                          FileClass cls = FileClass::kSrc,
                          std::string layer = {}) {
  ScanOptions opts;
  opts.file_class = cls;
  opts.layer = std::move(layer);
  return detlint::scan_source("snippet.cpp", text, /*companion=*/"", opts);
}

std::vector<std::string> rules_of(const std::vector<Finding>& fs) {
  std::vector<std::string> out;
  out.reserve(fs.size());
  for (const auto& f : fs) out.push_back(f.rule);
  return out;
}

// ---------------------------------------------------------------- lexer ----

TEST(Lexer, StripsCommentsAndStrings) {
  const auto res = detlint::lex(
      "int a = 1; // trailing comment\n"
      "/* block */ const char* s = \"rand() time(nullptr)\";\n");
  for (const auto& t : res.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "trailing");
    EXPECT_NE(t.text, "block");
  }
  ASSERT_EQ(res.comments.size(), 2u);
  EXPECT_FALSE(res.comments[0].standalone);  // sits after code
}

TEST(Lexer, BannedNameInsideStringIsNotAFinding) {
  const auto fs = scan("const char* msg = \"call rand() at time()\";\n");
  EXPECT_TRUE(fs.empty());
}

TEST(Lexer, CapturesIncludesButNotOtherDirectives) {
  const auto res = detlint::lex(
      "#include \"dfs/namenode.hpp\"\n"
      "#include <vector>\n"
      "#define RAND rand()\n"
      "#if 0\nrand();\n#endif\n");
  ASSERT_EQ(res.includes.size(), 2u);
  EXPECT_EQ(res.includes[0].path, "dfs/namenode.hpp");
  EXPECT_FALSE(res.includes[0].angled);
  EXPECT_TRUE(res.includes[1].angled);
  // Directive bodies never become tokens, so the #define's rand() is unseen.
  for (const auto& t : res.tokens) EXPECT_NE(t.text, "RAND");
}

TEST(Lexer, RawStringLiteral) {
  const auto res = detlint::lex("auto s = R\"(rand() \" unbalanced)\";\n");
  for (const auto& t : res.tokens) EXPECT_NE(t.text, "rand");
}

TEST(Lexer, TracksLineNumbers) {
  const auto res = detlint::lex("int a;\n\nint b;\n");
  ASSERT_GE(res.tokens.size(), 6u);
  EXPECT_EQ(res.tokens[0].line, 1);          // int
  EXPECT_EQ(res.tokens[3].line, 3);          // int (second decl)
}

// ------------------------------------------------------- unordered-iter ----

TEST(UnorderedIter, FlagsRangeForOverLocal) {
  const auto fs = scan(
      "#include <unordered_map>\n"
      "int f() {\n"
      "  std::unordered_map<int, int> m;\n"
      "  int n = 0;\n"
      "  for (const auto& [k, v] : m) n += v;\n"
      "  return n;\n"
      "}\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "unordered-iter");
  EXPECT_EQ(fs[0].line, 5);
}

TEST(UnorderedIter, FlagsIteratorLoop) {
  const auto fs = scan(
      "#include <unordered_set>\n"
      "std::unordered_set<int> s;\n"
      "int f() {\n"
      "  int n = 0;\n"
      "  for (auto it = s.begin(); it != s.end(); ++it) n += *it;\n"
      "  return n;\n"
      "}\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "unordered-iter");
}

TEST(UnorderedIter, TracksTypeAliases) {
  const auto fs = scan(
      "#include <unordered_map>\n"
      "using Index = std::unordered_map<int, int>;\n"
      "Index idx;\n"
      "int f() {\n"
      "  int n = 0;\n"
      "  for (const auto& [k, v] : idx) n += v;\n"
      "  return n;\n"
      "}\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 6);
}

TEST(UnorderedIter, CompanionHeaderDeclaresMember) {
  ScanOptions opts;
  opts.file_class = FileClass::kSrc;
  const auto fs = detlint::scan_source(
      "snippet.cpp",
      "int Job::total() const {\n"
      "  int n = 0;\n"
      "  for (const auto& [id, t] : tasks_) n += t;\n"
      "  return n;\n"
      "}\n",
      /*companion=*/
      "#include <unordered_map>\n"
      "struct Job {\n"
      "  std::unordered_map<int, int> tasks_;\n"
      "  int total() const;\n"
      "};\n",
      opts);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "unordered-iter");
}

TEST(UnorderedIter, OrderedContainersAreFine) {
  const auto fs = scan(
      "#include <map>\n"
      "std::map<int, int> m;\n"
      "int f() {\n"
      "  int n = 0;\n"
      "  for (const auto& [k, v] : m) n += v;\n"
      "  return n;\n"
      "}\n");
  EXPECT_TRUE(fs.empty());
}

TEST(UnorderedIter, SkippedOutsideSrc) {
  const auto fs = scan(
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "int f() {\n"
      "  int n = 0;\n"
      "  for (const auto& [k, v] : m) n += v;\n"
      "  return n;\n"
      "}\n",
      FileClass::kOther);
  EXPECT_TRUE(fs.empty());
}

// ----------------------------------------------------------- wall-clock ----

TEST(WallClock, FlagsClocksAndRandomness) {
  const auto fs = scan(
      "#include <chrono>\n"
      "#include <random>\n"
      "long f() { return std::chrono::steady_clock::now()"
      ".time_since_epoch().count(); }\n"
      "int g() { return rand(); }\n"
      "unsigned h() { std::random_device rd; return rd(); }\n");
  EXPECT_EQ(rules_of(fs),
            (std::vector<std::string>{"wall-clock", "wall-clock",
                                      "wall-clock"}));
}

TEST(WallClock, AppliesToTestsAndBenchToo) {
  const auto fs = scan("long f() { return time(nullptr); }\n",
                       FileClass::kOther);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "wall-clock");
}

TEST(WallClock, MemberNamedTimeIsFine) {
  const auto fs = scan(
      "struct Sim { long t = 0; long time() const { return t; } };\n"
      "long f(const Sim& s) { return s.time(); }\n");
  EXPECT_TRUE(fs.empty());
}

TEST(WallClock, RngInternalsExempt) {
  ScanOptions opts;
  opts.file_class = FileClass::kSrc;
  opts.rng_internals = true;
  const auto fs = detlint::scan_source(
      "src/common/rng.cpp",
      "#include <random>\n"
      "std::mt19937_64 make_engine(unsigned seed) "
      "{ return std::mt19937_64{seed}; }\n",
      "", opts);
  EXPECT_TRUE(fs.empty());
}

// ------------------------------------------------------------ ptr-order ----

TEST(PtrOrder, FlagsPointerKeys) {
  const auto fs = scan(
      "#include <map>\n"
      "#include <set>\n"
      "struct T {};\n"
      "std::map<T*, int> a;\n"
      "std::set<const T*> b;\n");
  EXPECT_EQ(rules_of(fs),
            (std::vector<std::string>{"ptr-order", "ptr-order"}));
}

TEST(PtrOrder, PointerValuesAreFine) {
  const auto fs = scan(
      "#include <map>\n"
      "struct T {};\n"
      "std::map<int, T*> a;\n");
  EXPECT_TRUE(fs.empty());
}

// ------------------------------------------------------------- layering ----

TEST(Layering, FlagsUpwardInclude) {
  const auto fs = scan("#include \"mapred/job.hpp\"\n", FileClass::kSrc,
                       "simkit");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "layering");
  EXPECT_EQ(fs[0].line, 1);
}

TEST(Layering, DownwardAndPeerIncludesAreFine) {
  const auto fs = scan(
      "#include \"common/ids.hpp\"\n"   // below
      "#include \"dfs/block.hpp\"\n"    // same layer
      "#include \"recovery/journal.hpp\"\n"  // same rank peer
      "#include <vector>\n",
      FileClass::kSrc, "dfs");
  EXPECT_TRUE(fs.empty());
}

TEST(Layering, RanksAreWellFormed) {
  const auto& ranks = detlint::layer_ranks();
  ASSERT_FALSE(ranks.empty());
  EXPECT_EQ(ranks.at("common"), 0);
  EXPECT_LT(ranks.at("simkit"), ranks.at("dfs"));
  EXPECT_LT(ranks.at("dfs"), ranks.at("mapred"));
  EXPECT_LT(ranks.at("mapred"), ranks.at("experiment"));
  // Documented same-rank peers.
  EXPECT_EQ(ranks.at("dfs"), ranks.at("recovery"));
  EXPECT_EQ(ranks.at("mapred"), ranks.at("faults"));
}

// -------------------------------------------------- annotation machinery ----

TEST(Annotations, InlineAllowSuppresses) {
  const auto fs = scan(
      "int f() { return rand(); }  "
      "// detlint: allow(wall-clock) -- test of suppression\n");
  EXPECT_TRUE(fs.empty());
}

TEST(Annotations, StandaloneAllowTargetsNextCodeLine) {
  const auto fs = scan(
      "// detlint: allow(wall-clock) -- test of suppression\n"
      "// (a second comment line between annotation and code is fine)\n"
      "int f() { return rand(); }\n");
  EXPECT_TRUE(fs.empty());
}

TEST(Annotations, StaleAllowIsAFinding) {
  const auto fs = scan(
      "// detlint: allow(wall-clock) -- nothing below triggers it\n"
      "int f() { return 42; }\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "stale-annotation");
  EXPECT_EQ(fs[0].line, 1);
}

TEST(Annotations, MissingJustificationDoesNotSuppress) {
  const auto fs = scan(
      "// detlint: allow(wall-clock)\n"
      "int f() { return rand(); }\n");
  const auto rules = rules_of(fs);
  EXPECT_NE(std::find(rules.begin(), rules.end(), "bad-annotation"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "wall-clock"), rules.end());
}

TEST(Annotations, WrongRuleIdDoesNotSuppress) {
  const auto fs = scan(
      "int f() { return rand(); }  "
      "// detlint: allow(unordered-iter) -- wrong rule for this line\n");
  const auto rules = rules_of(fs);
  // The wall-clock finding survives and the misdirected allow is stale.
  EXPECT_NE(std::find(rules.begin(), rules.end(), "wall-clock"), rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "stale-annotation"),
            rules.end());
}

TEST(Annotations, FindingsAreSortedByLine) {
  const auto fs = scan(
      "#include <chrono>\n"
      "long a() { return time(nullptr); }\n"
      "int b() { return rand(); }\n");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_LT(fs[0].line, fs[1].line);
}

}  // namespace
