// detlint fixture: a fully clean file — zero findings expected.
//
// Demonstrates the sanctioned forms: ordered containers for iterated state,
// unordered containers for pure membership probes, simulated time, and no
// ambient randomness.
// detlint: fixture-layer(mapred)
#include "common/ids.hpp"      // fine: rank 0 from rank 4
#include "dfs/namenode.hpp"    // fine: rank 3 from rank 4
#include "simkit/simulation.hpp"  // fine: rank 1 from rank 4

#include <map>
#include <set>
#include <unordered_set>
#include <vector>

struct Scheduler {
  std::map<int, int> tasks_by_id_;       // ordered: iteration is stable
  std::unordered_set<int> running_;      // membership probes only

  int sum_ordered() const {
    int n = 0;
    for (const auto& [id, t] : tasks_by_id_) n += t;  // fine: std::map
    return n;
  }

  bool is_running(int id) const { return running_.count(id) != 0; }
};

int pick_lowest(const std::set<int>& ready) {
  for (int id : ready) return id;  // fine: std::set iterates in key order
  return -1;
}
