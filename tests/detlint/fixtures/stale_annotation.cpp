// detlint fixture: annotation hygiene.
//
// An allow() that suppresses nothing is itself a finding (stale-annotation),
// and an allow() without a justification is malformed (bad-annotation) —
// suppressions cannot rot or go unexplained.
#include <unordered_map>
#include <vector>

std::unordered_map<int, int> table;

// detlint: allow(unordered-iter) -- stale: the loop below walks a vector, not the map
int stale_allow(const std::vector<int>& v) {
  int n = 0;
  for (int x : v) n += x;
  return n;
}

int missing_justification() {
  int n = 0;
  // detlint: allow(unordered-iter)
  for (const auto& [k, x] : table) n += x;
  return n;
}

// detlint: allow(made-up-rule) -- no such rule id exists
int unknown_rule() { return 0; }
