// detlint fixture: rule `wall-clock` (ambient nondeterminism sources).
//
// Wall clocks and unseeded randomness are banned everywhere outside
// sim::Rng internals and explicitly annotated metering sites.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <vector>

long bad_steady_clock() {
  const auto t0 = std::chrono::steady_clock::now();  // finding
  return t0.time_since_epoch().count();
}

long bad_system_clock() {
  return std::chrono::system_clock::now()  // finding
      .time_since_epoch()
      .count();
}

long bad_libc_time() {
  return time(nullptr);  // finding
}

int bad_rand() {
  return rand();  // finding
}

unsigned bad_random_device() {
  std::random_device rd;  // finding
  return rd();
}

void bad_engine_and_shuffle(std::vector<int>& v) {
  std::mt19937 gen(42);  // finding: fixed seed is still an unmanaged stream
  std::shuffle(v.begin(), v.end(), gen);  // finding
}

long good_annotated_metering() {
  // detlint: allow(wall-clock) -- bench wall metering; never feeds a simulated outcome
  const auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}

struct Sim {
  long now_us = 0;
  long time() const { return now_us; }  // fine: member named `time`
};

long good_sim_time(const Sim& sim) {
  return sim.time();  // fine: simulated clock, not libc time()
}
