// detlint fixture: rule `ptr-order` (pointer-keyed ordered containers).
//
// Address order varies run to run (ASLR, allocator history), so nothing
// that orders by a raw pointer key may exist in the tree.
#include <map>
#include <queue>
#include <set>
#include <string>
#include <vector>

struct Task {
  int id = 0;
};

std::map<Task*, int> bad_ptr_keyed_map;             // finding
std::set<const Task*> bad_ptr_keyed_set;            // finding
std::multimap<Task*, std::string> bad_ptr_multimap; // finding

int bad_priority_queue() {
  std::priority_queue<Task*> q;  // finding
  return static_cast<int>(q.size());
}

void bad_explicit_less(std::vector<Task*>& v) {
  std::sort(v.begin(), v.end(), std::less<Task*>());  // finding
}

std::map<int, Task*> good_ptr_valued_map;  // fine: pointers as values
std::set<int> good_int_set;                // fine

struct ById {
  bool operator()(const Task* a, const Task* b) const { return a->id < b->id; }
};
// The rule is lexical: it cannot see that ById orders by a stable id, so even
// a deterministic custom comparator over pointers needs an annotation.
// detlint: allow(ptr-order) -- ById compares task ids, not addresses
std::set<const Task*, ById> annotated_custom_comparator;
