// detlint fixture: rule `layering` (architecture-DAG include check).
// detlint: fixture-layer(simkit)
//
// This file pretends to live in src/simkit/ (rank 1). Includes from common
// (rank 0) and simkit itself are fine; anything from a higher layer is a
// violation.
#include "common/ids.hpp"        // fine: rank 0 from rank 1
#include "simkit/simulation.hpp" // fine: same layer
#include "dfs/namenode.hpp"      // finding: rank 3 from rank 1
#include "mapred/job.hpp"        // finding: rank 4 from rank 1
#include "experiment/scenario.hpp"  // finding: rank 6 from rank 1
#include <vector>                // fine: system header

int fixture_layering_placeholder() { return 0; }
