// detlint fixture: rule `unordered-iter`.
//
// Every loop below that walks an unordered container must be reported; the
// sorted-snapshot and annotated forms must not.
#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using TaskMap = std::unordered_map<std::uint64_t, std::string>;

struct Job {
  std::unordered_map<std::uint64_t, int> tasks_;
  std::unordered_set<std::uint64_t> fetched_;
  TaskMap by_alias_;

  int bad_range_for_member() {
    int n = 0;
    for (const auto& [id, t] : tasks_) n += t;  // finding: member map
    return n;
  }

  void bad_range_for_set(std::vector<std::uint64_t>& out) {
    for (std::uint64_t id : fetched_) out.push_back(id);  // finding: member set
  }

  void bad_alias_typed_member(std::vector<std::string>& out) {
    for (const auto& [id, name] : by_alias_) out.push_back(name);  // finding
  }

  int bad_iterator_loop() {
    int n = 0;
    for (auto it = tasks_.begin(); it != tasks_.end(); ++it) n += it->second;
    return n;
  }

  std::vector<std::uint64_t> good_sorted_snapshot() {
    std::vector<std::uint64_t> ids;
    ids.reserve(tasks_.size());
    // detlint: allow(unordered-iter) -- key snapshot, sorted on the next line
    for (const auto& [id, t] : tasks_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    return ids;
  }
};

int bad_local_set() {
  std::unordered_set<int> seen = {3, 1, 2};
  int sum = 0;
  for (int v : seen) sum += v;  // finding: local set
  return sum;
}

int good_membership_only(const std::unordered_set<int>& index,
                         const std::vector<int>& ordered) {
  int hits = 0;
  for (int v : ordered) {  // fine: iterates the vector, only probes the set
    if (index.count(v) != 0) ++hits;
  }
  return hits;
}
