// End-to-end golden equivalence for the timestamp-coalesced settle path:
// a full MOON scenario (trackers, DFS, churn, speculation) run across the
// whole fairness × solver × coalescing cube must produce bit-identical
// simulated outcomes — task launches, completion time, byte counters — with
// the eager/dense arms as the oracle. This is the scenario-level complement
// of tests/simkit/flow_network_equivalence_test.cpp.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "experiment/scenario.hpp"

namespace moon::experiment {
namespace {

struct Outcome {
  bool finished = false;
  double execution_time_s = 0.0;
  int launched_maps = 0;
  int launched_reduces = 0;
  int speculative = 0;
  int killed_maps = 0;
  int killed_reduces = 0;
  int map_reexecutions = 0;
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
  std::int64_t replication_bytes = 0;

  bool operator==(const Outcome&) const = default;
};

ScenarioConfig small_config(sim::FairnessModel fairness) {
  ScenarioConfig cfg;
  cfg.volatile_nodes = 10;
  cfg.dedicated_nodes = 2;
  cfg.unavailability_rate = 0.3;
  cfg.sched = moon_scheduler(true);
  cfg.dfs = moon_dfs_config();
  cfg.fairness = fairness;
  cfg.app = workload::sleep_of(workload::sort_workload());
  cfg.app.num_maps = 20;
  cfg.app.input_size = 20 * kKiB;
  cfg.app.input_block_bytes = kKiB;
  cfg.app.map_compute = 20 * sim::kSecond;
  cfg.app.reduce_compute = 20 * sim::kSecond;
  cfg.seed = 20100621;
  cfg.max_sim_time = 4 * sim::kHour;
  return cfg;
}

Outcome run(sim::FairnessModel fairness, sim::SolverMode solver,
            sim::CoalesceMode coalesce) {
  ScenarioConfig cfg = small_config(fairness);
  cfg.solver = solver;
  cfg.coalesce = coalesce;
  const RunResult r = run_scenario(cfg);
  Outcome o;
  o.finished = r.finished;
  o.execution_time_s = r.execution_time_s;
  o.launched_maps = r.metrics.launched_map_attempts;
  o.launched_reduces = r.metrics.launched_reduce_attempts;
  o.speculative = r.metrics.speculative_attempts;
  o.killed_maps = r.metrics.killed_map_attempts;
  o.killed_reduces = r.metrics.killed_reduce_attempts;
  o.map_reexecutions = r.metrics.map_reexecutions;
  o.bytes_read = r.dfs_stats.bytes_read;
  o.bytes_written = r.dfs_stats.bytes_written;
  o.replication_bytes = r.dfs_stats.replication_bytes;
  return o;
}

class CoalesceEquivalenceTest
    : public ::testing::TestWithParam<sim::FairnessModel> {};

TEST_P(CoalesceEquivalenceTest, CubeMatchesEagerDenseOracle) {
  const sim::FairnessModel fairness = GetParam();
  const Outcome oracle =
      run(fairness, sim::SolverMode::kDense, sim::CoalesceMode::kEager);
  EXPECT_TRUE(oracle.finished);
  for (const sim::SolverMode solver :
       {sim::SolverMode::kDense, sim::SolverMode::kIncremental}) {
    for (const sim::CoalesceMode coalesce :
         {sim::CoalesceMode::kEager, sim::CoalesceMode::kCoalesced}) {
      if (solver == sim::SolverMode::kDense &&
          coalesce == sim::CoalesceMode::kEager) {
        continue;  // the oracle itself
      }
      SCOPED_TRACE(std::string(solver == sim::SolverMode::kDense
                                   ? "dense"
                                   : "incremental") +
                   (coalesce == sim::CoalesceMode::kEager ? "/eager"
                                                          : "/coalesced"));
      EXPECT_EQ(run(fairness, solver, coalesce), oracle);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fairness, CoalesceEquivalenceTest,
                         ::testing::Values(sim::FairnessModel::kMaxMin,
                                           sim::FairnessModel::kBottleneckShare),
                         [](const auto& suite_info) {
                           return suite_info.param == sim::FairnessModel::kMaxMin
                                      ? "MaxMin"
                                      : "BottleneckShare";
                         });

}  // namespace
}  // namespace moon::experiment
