// Property sweep over (policy x unavailability rate): every run must
// complete on a small cluster and its metrics must satisfy structural
// invariants, regardless of configuration.
#include <gtest/gtest.h>

#include "experiment/scenario.hpp"

namespace moon::experiment {
namespace {

enum class PolicyKind { kHadoop10, kHadoop1, kLate, kMoon, kMoonHybrid };

const char* name_of(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kHadoop10: return "Hadoop10";
    case PolicyKind::kHadoop1: return "Hadoop1";
    case PolicyKind::kLate: return "LATE";
    case PolicyKind::kMoon: return "MOON";
    case PolicyKind::kMoonHybrid: return "MOONHybrid";
  }
  return "?";
}

mapred::SchedulerConfig sched_of(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kHadoop10: return hadoop_scheduler(10 * sim::kMinute);
    case PolicyKind::kHadoop1: return hadoop_scheduler(1 * sim::kMinute);
    case PolicyKind::kLate: return late_scheduler(1 * sim::kMinute);
    case PolicyKind::kMoon: return moon_scheduler(false);
    case PolicyKind::kMoonHybrid: return moon_scheduler(true);
  }
  return {};
}

class SweepInvariants
    : public ::testing::TestWithParam<std::tuple<PolicyKind, double>> {};

TEST_P(SweepInvariants, RunCompletesWithConsistentMetrics) {
  const auto [policy, rate] = GetParam();

  ScenarioConfig cfg;
  cfg.volatile_nodes = 12;
  cfg.dedicated_nodes = 2;
  cfg.app = workload::sleep_of(workload::sort_workload());
  cfg.app.num_maps = 24;
  cfg.app.reduce_slot_fraction = 0.0;
  cfg.app.fixed_reduces = 6;
  cfg.app.map_compute = 20 * sim::kSecond;
  cfg.app.reduce_compute = 30 * sim::kSecond;
  cfg.app.input_size = 24 * kKiB;
  cfg.sched = sched_of(policy);
  cfg.dfs = moon_dfs_config();
  cfg.intermediate_kind = dfs::FileKind::kReliable;
  cfg.intermediate_factor = {1, 1};
  cfg.unavailability_rate = rate;
  cfg.seed = 17;
  cfg.max_sim_time = 8 * sim::kHour;

  const auto r = run_scenario(cfg);

  SCOPED_TRACE(std::string(name_of(policy)) + " @ " + std::to_string(rate));
  ASSERT_TRUE(r.finished);
  EXPECT_EQ(r.completed_maps, r.num_maps);
  EXPECT_EQ(r.completed_reduces, r.num_reduces);

  const auto& m = r.metrics;
  // Structural invariants that must hold for any policy at any volatility.
  EXPECT_GE(m.launched_map_attempts, r.num_maps);
  EXPECT_GE(m.launched_reduce_attempts, r.num_reduces);
  EXPECT_EQ(r.duplicated_tasks(),
            m.launched_map_attempts + m.launched_reduce_attempts -
                r.num_maps - r.num_reduces);
  EXPECT_GE(r.duplicated_tasks(), 0);
  EXPECT_LE(m.speculative_attempts,
            m.launched_map_attempts + m.launched_reduce_attempts);
  EXPECT_LE(m.killed_map_attempts + m.failed_map_attempts,
            m.launched_map_attempts);
  EXPECT_LE(m.killed_reduce_attempts + m.failed_reduce_attempts,
            m.launched_reduce_attempts);
  // Exactly one attempt per task succeeded.
  EXPECT_EQ(static_cast<int>(m.map_time_s.count()),
            r.num_maps + m.map_reexecutions);
  EXPECT_GT(m.map_time_s.mean(), 0.0);
  EXPECT_GT(r.execution_time_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SweepInvariants,
    ::testing::Combine(::testing::Values(PolicyKind::kHadoop10,
                                         PolicyKind::kHadoop1,
                                         PolicyKind::kLate, PolicyKind::kMoon,
                                         PolicyKind::kMoonHybrid),
                       ::testing::Values(0.0, 0.2, 0.4)),
    [](const auto& suite_info) {
      return std::string(name_of(std::get<0>(suite_info.param))) + "_rate" +
             std::to_string(static_cast<int>(std::get<1>(suite_info.param) * 10));
    });

}  // namespace
}  // namespace moon::experiment
