// Experiment-harness tests: determinism, policy presets, and the paper's
// headline qualitative result on a scaled-down cluster.
#include "experiment/scenario.hpp"

#include <gtest/gtest.h>

namespace moon::experiment {
namespace {

/// A small, fast scenario (seconds of wall time).
ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.volatile_nodes = 10;
  cfg.dedicated_nodes = 1;
  cfg.app = workload::sleep_of(workload::sort_workload());
  cfg.app.num_maps = 20;
  cfg.app.reduce_slot_fraction = 0.0;
  cfg.app.fixed_reduces = 4;
  cfg.app.map_compute = 15 * sim::kSecond;
  cfg.app.reduce_compute = 20 * sim::kSecond;
  cfg.app.input_size = 20 * kKiB;
  cfg.sched = moon_scheduler(true);
  cfg.dfs = moon_dfs_config();
  cfg.intermediate_kind = dfs::FileKind::kReliable;
  cfg.intermediate_factor = {1, 1};
  cfg.unavailability_rate = 0.3;
  cfg.seed = 5;
  cfg.max_sim_time = 4 * sim::kHour;
  return cfg;
}

TEST(Scenario, CompletesAndReportsMetrics) {
  const auto result = run_scenario(small_config());
  EXPECT_TRUE(result.finished);
  EXPECT_EQ(result.num_maps, 20);
  EXPECT_EQ(result.num_reduces, 4);
  EXPECT_EQ(result.completed_maps, 20);
  EXPECT_EQ(result.completed_reduces, 4);
  EXPECT_GT(result.execution_time_s, 0.0);
  EXPECT_GE(result.duplicated_tasks(), 0);
}

TEST(Scenario, IsDeterministicForSameSeed) {
  const auto a = run_scenario(small_config());
  const auto b = run_scenario(small_config());
  EXPECT_EQ(a.execution_time_s, b.execution_time_s);
  EXPECT_EQ(a.duplicated_tasks(), b.duplicated_tasks());
  EXPECT_EQ(a.metrics.fetch_failures, b.metrics.fetch_failures);
  EXPECT_EQ(a.dfs_stats.bytes_written, b.dfs_stats.bytes_written);
}

TEST(Scenario, DifferentSeedsDiffer) {
  auto cfg = small_config();
  const auto a = run_scenario(cfg);
  cfg.seed = 6;
  const auto b = run_scenario(cfg);
  // Different traces; virtually impossible to match exactly.
  EXPECT_NE(a.execution_time_s, b.execution_time_s);
}

TEST(Scenario, ZeroVolatilityIsFastest) {
  auto cfg = small_config();
  cfg.unavailability_rate = 0.0;
  const auto calm = run_scenario(cfg);
  cfg.unavailability_rate = 0.5;
  const auto stormy = run_scenario(cfg);
  ASSERT_TRUE(calm.finished);
  EXPECT_LT(calm.execution_time_s, stormy.execution_time_s);
}

TEST(Scenario, MoonBeatsHadoopAtHighVolatility) {
  // The paper's headline, scaled down: at 0.5 unavailability MOON-Hybrid
  // completes faster than Hadoop with the default 10-minute expiry.
  auto moon_cfg = small_config();
  moon_cfg.unavailability_rate = 0.5;
  moon_cfg.seed = 11;
  const auto moon_run = run_scenario(moon_cfg);

  auto hadoop_cfg = moon_cfg;
  hadoop_cfg.sched = hadoop_scheduler(10 * sim::kMinute);
  const auto hadoop_run = run_scenario(hadoop_cfg);

  ASSERT_TRUE(moon_run.finished);
  EXPECT_LT(moon_run.execution_time_s, hadoop_run.execution_time_s);
}

TEST(Scenario, HadoopModeTreatsAllNodesVolatile) {
  auto cfg = small_config();
  cfg.dedicated_known = false;
  cfg.sched = hadoop_scheduler(1 * sim::kMinute);
  cfg.dfs = hadoop_dfs_config();
  cfg.input_factor = {0, 3};
  cfg.intermediate_kind = dfs::FileKind::kOpportunistic;
  cfg.intermediate_factor = {0, 2};
  cfg.output_factor = {0, 3};
  const auto result = run_scenario(cfg);
  EXPECT_TRUE(result.finished);
  // No dedicated tier: not a single dedicated write can have happened.
  EXPECT_EQ(result.dfs_stats.dedicated_writes_declined, 0);
}

TEST(Scenario, PolicyPresetsMatchPaperParameters) {
  const auto hadoop = hadoop_scheduler(5 * sim::kMinute);
  EXPECT_EQ(hadoop.tracker_expiry, 5 * sim::kMinute);
  EXPECT_EQ(hadoop.suspension_interval, 0);
  EXPECT_FALSE(hadoop.moon_scheduling);

  const auto moon = moon_scheduler(false);
  EXPECT_EQ(moon.tracker_expiry, 30 * sim::kMinute);   // §VI-A
  EXPECT_EQ(moon.suspension_interval, 1 * sim::kMinute);
  EXPECT_TRUE(moon.moon_scheduling);
  EXPECT_FALSE(moon.hybrid_aware);
  EXPECT_TRUE(moon_scheduler(true).hybrid_aware);
  EXPECT_DOUBLE_EQ(moon.speculative_slot_fraction, 0.2);  // 20 % cap
  EXPECT_DOUBLE_EQ(moon.homestretch_fraction, 0.2);       // H = 20
  EXPECT_EQ(moon.homestretch_copies, 2);                  // R = 2

  EXPECT_TRUE(moon_dfs_config().hibernate_enabled);
  EXPECT_FALSE(hadoop_dfs_config().hibernate_enabled);
  EXPECT_FALSE(hadoop_dfs_config().adaptive_replication);
}

TEST(Scenario, RunRepetitionsAggregates) {
  auto cfg = small_config();
  int observed = 0;
  const auto summary = run_repetitions(cfg, 3, [&](const RunResult& r) {
    ++observed;
    EXPECT_TRUE(r.finished);
  });
  EXPECT_EQ(observed, 3);
  EXPECT_EQ(summary.total_runs, 3);
  EXPECT_EQ(summary.completed_runs, 3);
  EXPECT_EQ(summary.execution_time_s.count(), 3u);
  EXPECT_GT(summary.execution_time_s.mean(), 0.0);
}

TEST(Scenario, HorizonBoundsRuntime) {
  auto cfg = small_config();
  cfg.unavailability_rate = 0.5;
  // Horizon 10 s past submission: the job cannot possibly finish.
  cfg.max_sim_time = cfg.submit_at + 10 * sim::kSecond;
  const auto result = run_scenario(cfg);
  EXPECT_FALSE(result.finished);
  EXPECT_LE(result.execution_time_s, 60.0);
}

}  // namespace
}  // namespace moon::experiment
