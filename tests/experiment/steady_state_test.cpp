// Steady-state serving (DESIGN.md §16): retired-job GC equivalence —
// stream aggregates are bit-identical between retain_job_results modes
// while retained memory shrinks — plus open-ended arrival streams through
// the harness and deadline/SLA accounting.
#include <gtest/gtest.h>

#include "experiment/multi_job.hpp"

namespace moon::experiment {
namespace {

workload::WorkloadModel quick_job(const std::string& name, int priority) {
  auto m = workload::sleep_of(workload::sort_workload());
  m.name = name;
  m.num_maps = 8;
  m.reduce_slot_fraction = 0.0;
  m.fixed_reduces = 2;
  m.map_compute = 20 * sim::kSecond;
  m.reduce_compute = 30 * sim::kSecond;
  m.input_size = 8 * kKiB;
  m.priority = priority;
  return m;
}

/// An overloaded stream: 8 arrivals at 30 s offsets against a 2-job cap on
/// a small churning cluster, with heartbeat faults so the fault counters
/// the equivalence check compares are non-zero.
MultiJobConfig steady_config(mapred::AdmissionConfig::Policy policy,
                             std::uint64_t seed) {
  MultiJobConfig cfg;
  cfg.base.volatile_nodes = 6;
  cfg.base.dedicated_nodes = 2;
  cfg.base.sched = moon_scheduler(true);
  cfg.base.dfs = moon_dfs_config();
  cfg.base.intermediate_kind = dfs::FileKind::kReliable;
  cfg.base.intermediate_factor = {1, 1};
  cfg.base.unavailability_rate = 0.3;
  cfg.base.seed = seed;
  cfg.base.max_sim_time = 4 * sim::kHour;
  cfg.base.sched.admission.enabled = true;
  cfg.base.sched.admission.policy = policy;
  cfg.base.sched.admission.max_queued_jobs = 2;
  cfg.base.faults.enabled = true;
  cfg.base.faults.heartbeats.enabled = true;
  cfg.base.faults.heartbeats.drop_probability = 0.05;

  cfg.arrivals.process = workload::ArrivalConfig::Process::kFixedOffset;
  cfg.arrivals.num_jobs = 8;
  cfg.arrivals.first_arrival = sim::kMinute;
  cfg.arrivals.fixed_offset = 30 * sim::kSecond;
  cfg.arrivals.round_robin_mix = true;
  // Alternating priorities so kShedLowestPriority actually sheds.
  cfg.arrivals.mix = {{quick_job("lo", 0), 1.0}, {quick_job("hi", 2), 1.0}};
  return cfg;
}

TEST(SteadyState, GcKeepsStreamAggregatesBitIdentical) {
  for (auto policy : {mapred::AdmissionConfig::Policy::kRejectNewest,
                      mapred::AdmissionConfig::Policy::kShedLowestPriority}) {
    for (std::uint64_t seed : {17ULL, 23ULL}) {
      MultiJobConfig retain_cfg = steady_config(policy, seed);
      retain_cfg.retain_job_results = true;
      MultiJobConfig gc_cfg = steady_config(policy, seed);
      gc_cfg.retain_job_results = false;

      const MultiJobResult kept = run_multi_job_scenario(retain_cfg);
      const MultiJobResult gc = run_multi_job_scenario(gc_cfg);
      SCOPED_TRACE(std::string("policy=") + mapred::to_string(policy) +
                   " seed=" + std::to_string(seed));

      // Every stream-level aggregate must match bit for bit: both modes
      // fold at the same events in the same order; GC only destroys the
      // per-job snapshots afterwards.
      EXPECT_EQ(gc.submitted_jobs, kept.submitted_jobs);
      EXPECT_EQ(gc.completed_jobs, kept.completed_jobs);
      EXPECT_EQ(gc.aborted_jobs, kept.aborted_jobs);
      EXPECT_EQ(gc.shed_jobs, kept.shed_jobs);
      EXPECT_EQ(gc.dnf_jobs, kept.dnf_jobs);
      EXPECT_EQ(gc.rejected_jobs, kept.rejected_jobs);
      EXPECT_EQ(gc.sla_eligible_jobs, kept.sla_eligible_jobs);
      EXPECT_EQ(gc.sla_missed_jobs, kept.sla_missed_jobs);
      EXPECT_EQ(gc.makespan_s, kept.makespan_s);
      EXPECT_EQ(gc.mean_latency_s, kept.mean_latency_s);
      EXPECT_EQ(gc.p95_latency_s, kept.p95_latency_s);
      EXPECT_EQ(gc.p99_latency_s, kept.p99_latency_s);
      EXPECT_EQ(gc.jain_fairness, kept.jain_fairness);
      EXPECT_EQ(gc.admission.offered, kept.admission.offered);
      EXPECT_EQ(gc.admission.admitted, kept.admission.admitted);
      EXPECT_EQ(gc.admission.rejected, kept.admission.rejected);
      EXPECT_EQ(gc.admission.shed, kept.admission.shed);
      EXPECT_EQ(gc.admission_sequence_hash, kept.admission_sequence_hash);
      EXPECT_EQ(gc.fault_stats.total_injected(),
                kept.fault_stats.total_injected());
      EXPECT_EQ(gc.quarantines, kept.quarantines);
      EXPECT_EQ(gc.dfs_stats.bytes_written, kept.dfs_stats.bytes_written);

      // Decision streams non-trivial: the cap bit under every (policy, seed).
      EXPECT_GT(gc.rejected_jobs + gc.shed_jobs, 0);

      // And GC earned its keep: jobs were destroyed, the per-job snapshot
      // list is gone, and the final footprint shrank.
      EXPECT_GT(gc.jobs_retired, 0);
      EXPECT_EQ(kept.jobs_retired, 0);
      EXPECT_TRUE(gc.jobs.empty());
      EXPECT_FALSE(kept.jobs.empty());
      EXPECT_LE(gc.peak_retained_bytes, kept.peak_retained_bytes);
      EXPECT_LT(gc.final_retained_bytes, kept.final_retained_bytes);
    }
  }
}

TEST(SteadyState, OpenEndedStreamRunsThroughTheHarness) {
  MultiJobConfig cfg =
      steady_config(mapred::AdmissionConfig::Policy::kRejectNewest, 29);
  cfg.retain_job_results = false;
  cfg.arrivals.num_jobs = 0;  // open-ended: horizon defaults to max_sim_time
  cfg.base.max_sim_time = 2 * sim::kHour;

  const MultiJobResult result = run_multi_job_scenario(cfg);
  // 30 s offsets over ~2 h fire ~240 arrivals; the cap keeps live jobs
  // bounded while rejections absorb the overload.
  EXPECT_GT(result.submitted_jobs + result.rejected_jobs, 100);
  EXPECT_GT(result.rejected_jobs, 0);
  EXPECT_LE(result.peak_live_jobs, cfg.base.sched.admission.max_queued_jobs);
  EXPECT_GT(result.jobs_retired, 0);
  // Retained memory stays O(live-jobs), not O(arrivals): with at most 2
  // live small jobs the footprint never approaches even one megabyte.
  EXPECT_LT(result.peak_retained_bytes, std::size_t{1} << 20);
}

TEST(SteadyState, DeadlinesDriveSlaAccounting) {
  // Generous deadlines: every arrival is SLA-eligible, nothing admitted
  // should miss, and every *rejected* deadline job is a certain miss.
  MultiJobConfig cfg =
      steady_config(mapred::AdmissionConfig::Policy::kRejectNewest, 31);
  cfg.base.faults.enabled = false;
  for (auto& entry : cfg.arrivals.mix) {
    entry.model.deadline = 3 * sim::kHour;
  }
  const MultiJobResult generous = run_multi_job_scenario(cfg);
  EXPECT_EQ(generous.sla_eligible_jobs,
            generous.submitted_jobs + generous.rejected_jobs);
  EXPECT_EQ(generous.sla_missed_jobs, generous.rejected_jobs + generous.dnf_jobs +
                                          generous.aborted_jobs);

  // Impossible deadlines: every eligible job misses.
  for (auto& entry : cfg.arrivals.mix) {
    entry.model.deadline = sim::kSecond;
  }
  const MultiJobResult tight = run_multi_job_scenario(cfg);
  EXPECT_EQ(tight.sla_missed_jobs, tight.sla_eligible_jobs);
  EXPECT_GT(tight.sla_missed_jobs, 0);
}

}  // namespace
}  // namespace moon::experiment
