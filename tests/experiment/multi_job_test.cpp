// Multi-job harness: the kFifo single-arrival golden (bit-identical to the
// single-job run_scenario path), horizon robustness (the historical
// multi_job example crashed reading jobs whose submissions never fired),
// and the stream-level metrics.
#include "experiment/multi_job.hpp"

#include <gtest/gtest.h>

namespace moon::experiment {
namespace {

ScenarioConfig small_scenario() {
  ScenarioConfig cfg;
  cfg.volatile_nodes = 10;
  cfg.dedicated_nodes = 2;
  cfg.app = workload::sleep_of(workload::sort_workload());
  cfg.app.num_maps = 16;
  cfg.app.reduce_slot_fraction = 0.0;
  cfg.app.fixed_reduces = 4;
  cfg.app.map_compute = 20 * sim::kSecond;
  cfg.app.reduce_compute = 30 * sim::kSecond;
  cfg.app.input_size = 16 * kKiB;
  cfg.sched = moon_scheduler(true);
  cfg.dfs = moon_dfs_config();
  cfg.intermediate_kind = dfs::FileKind::kReliable;
  cfg.intermediate_factor = {1, 1};
  cfg.unavailability_rate = 0.3;
  cfg.seed = 17;
  cfg.max_sim_time = 8 * sim::kHour;
  return cfg;
}

TEST(MultiJobHarness, SingleJobFifoIsBitIdenticalToRunScenario) {
  const ScenarioConfig cfg = small_scenario();
  const RunResult single = run_scenario(cfg);
  ASSERT_TRUE(single.finished);

  MultiJobConfig mcfg;
  mcfg.base = cfg;
  mcfg.base.sched.job_policy = mapred::SchedulerConfig::JobPolicy::kFifo;
  mcfg.arrivals.process = workload::ArrivalConfig::Process::kFixedOffset;
  mcfg.arrivals.num_jobs = 1;
  mcfg.arrivals.first_arrival = cfg.submit_at;
  mcfg.arrivals.mix = {{cfg.app, 1.0}};
  const MultiJobResult multi = run_multi_job_scenario(mcfg);

  ASSERT_EQ(multi.submitted_jobs, 1);
  ASSERT_EQ(multi.jobs.size(), 1u);
  const JobOutcome& job = multi.jobs.front();

  // Bit-identical schedule: exact completion time, attempt-for-attempt.
  EXPECT_TRUE(job.run.finished);
  EXPECT_EQ(job.run.metrics.submitted_at, single.metrics.submitted_at);
  EXPECT_EQ(job.run.metrics.finished_at, single.metrics.finished_at);
  EXPECT_EQ(job.run.execution_time_s, single.execution_time_s);
  EXPECT_EQ(job.run.metrics.launched_map_attempts,
            single.metrics.launched_map_attempts);
  EXPECT_EQ(job.run.metrics.launched_reduce_attempts,
            single.metrics.launched_reduce_attempts);
  EXPECT_EQ(job.run.metrics.speculative_attempts,
            single.metrics.speculative_attempts);
  EXPECT_EQ(job.run.metrics.killed_map_attempts,
            single.metrics.killed_map_attempts);
  EXPECT_EQ(job.run.metrics.killed_reduce_attempts,
            single.metrics.killed_reduce_attempts);
  EXPECT_EQ(job.run.metrics.map_reexecutions, single.metrics.map_reexecutions);
  EXPECT_EQ(job.run.metrics.fetch_failures, single.metrics.fetch_failures);
  EXPECT_EQ(job.run.duplicated_tasks(), single.duplicated_tasks());
  EXPECT_EQ(multi.replication_queue_depth, single.replication_queue_depth);
  EXPECT_EQ(multi.dfs_stats.bytes_written, single.dfs_stats.bytes_written);
  EXPECT_EQ(multi.dfs_stats.bytes_read, single.dfs_stats.bytes_read);

  // Stream metrics collapse to the single job's numbers.
  EXPECT_EQ(multi.completed_jobs, 1);
  EXPECT_DOUBLE_EQ(multi.mean_latency_s, job.latency_s);
  EXPECT_DOUBLE_EQ(multi.p95_latency_s, job.latency_s);
  EXPECT_DOUBLE_EQ(multi.jain_fairness, 1.0);
}

TEST(MultiJobHarness, ArrivalsPastTheHorizonAreSkippedNotCrashed) {
  // Regression: the pre-harness multi_job example indexed jobs by
  // default-constructed JobIds when the sim ended before the scheduled
  // submissions fired (std::out_of_range).
  MultiJobConfig mcfg;
  mcfg.base = small_scenario();
  mcfg.base.max_sim_time = 2 * sim::kMinute;
  mcfg.arrivals.process = workload::ArrivalConfig::Process::kFixedOffset;
  mcfg.arrivals.num_jobs = 3;
  mcfg.arrivals.first_arrival = 60 * sim::kSecond;
  mcfg.arrivals.fixed_offset = 10 * sim::kMinute;  // #2 and #3 never fire
  mcfg.arrivals.mix = {{mcfg.base.app, 1.0}};

  const MultiJobResult result = run_multi_job_scenario(mcfg);
  EXPECT_EQ(result.submitted_jobs, 1);
  EXPECT_EQ(result.jobs.size(), 1u);
  EXPECT_FALSE(result.jobs.front().run.finished);  // horizon hit mid-job
  EXPECT_EQ(result.completed_jobs, 0);
}

TEST(MultiJobHarness, StreamMetricsAggregateAcrossJobs) {
  MultiJobConfig mcfg;
  mcfg.base = small_scenario();
  mcfg.arrivals.process = workload::ArrivalConfig::Process::kFixedOffset;
  mcfg.arrivals.num_jobs = 3;
  mcfg.arrivals.first_arrival = 60 * sim::kSecond;
  mcfg.arrivals.fixed_offset = 30 * sim::kSecond;
  mcfg.arrivals.mix = {{mcfg.base.app, 1.0}};

  const MultiJobResult result = run_multi_job_scenario(mcfg);
  ASSERT_EQ(result.submitted_jobs, 3);
  ASSERT_EQ(result.completed_jobs, 3);

  double mean = 0.0;
  double max_latency = 0.0;
  for (const auto& job : result.jobs) {
    EXPECT_TRUE(job.run.finished);
    EXPECT_GE(job.queue_wait_s, 0.0);
    EXPECT_LE(job.queue_wait_s, job.latency_s);
    mean += job.latency_s;
    max_latency = std::max(max_latency, job.latency_s);
  }
  mean /= 3.0;
  EXPECT_DOUBLE_EQ(result.mean_latency_s, mean);
  EXPECT_LE(result.p95_latency_s, max_latency + 1e-9);
  EXPECT_GT(result.jain_fairness, 0.0);
  EXPECT_LE(result.jain_fairness, 1.0 + 1e-12);
  // Makespan covers first submission to last completion: at least the
  // longest single-job latency plus the last job's offset.
  EXPECT_GE(result.makespan_s, max_latency);
}

TEST(JainIndex, MatchesClosedForm) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({5.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({2.0, 2.0, 2.0, 2.0}), 1.0);
  // (1+3)^2 / (2 * (1+9)) = 16/20.
  EXPECT_DOUBLE_EQ(jain_index({1.0, 3.0}), 0.8);
  // One job absorbing all the delay drives the index toward 1/n.
  EXPECT_NEAR(jain_index({100.0, 1e-6, 1e-6, 1e-6}), 0.25, 1e-3);
}

}  // namespace
}  // namespace moon::experiment
