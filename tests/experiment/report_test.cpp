#include "experiment/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

namespace moon::experiment {
namespace {

Summary fake_summary(double time_s, int runs = 3) {
  Summary s;
  s.total_runs = runs;
  s.completed_runs = runs;
  for (int i = 0; i < runs; ++i) {
    s.execution_time_s.add(time_s + i);
    s.duplicated_tasks.add(10 + i);
    s.killed_maps.add(2);
    s.killed_reduces.add(1);
    s.avg_map_time_s.add(20.0);
    s.avg_shuffle_time_s.add(120.0);
    s.avg_reduce_time_s.add(40.0);
    s.fetch_failures.add(5);
  }
  return s;
}

TEST(SweepReport, CsvHasHeaderAndOneLinePerCell) {
  SweepReport report("fig4a");
  report.add("MOON", "0.1", fake_summary(300.0));
  report.add("MOON", "0.5", fake_summary(800.0));
  std::ostringstream os;
  report.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("sweep,row,column,runs"), std::string::npos);
  // header + 2 data lines
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("fig4a,MOON,0.1,3,3,301.000"), std::string::npos);
  EXPECT_NE(csv.find("fig4a,MOON,0.5,3,3,801.000"), std::string::npos);
}

TEST(SweepReport, RecordsCellsInOrder) {
  SweepReport report("x");
  report.add("a", "1", fake_summary(1.0));
  report.add("b", "2", fake_summary(2.0));
  ASSERT_EQ(report.cells().size(), 2u);
  EXPECT_EQ(report.cells()[0].row, "a");
  EXPECT_EQ(report.cells()[1].column, "2");
  EXPECT_EQ(report.name(), "x");
}

TEST(SweepReport, SaveCsvRoundTrip) {
  SweepReport report("t");
  report.add("r", "c", fake_summary(5.0));
  const std::string path = ::testing::TempDir() + "/moon_report_test.csv";
  report.save_csv(path);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string header;
  std::getline(is, header);
  EXPECT_NE(header.find("time_mean_s"), std::string::npos);
}

TEST(SweepReport, SaveToBadPathThrows) {
  SweepReport report("t");
  EXPECT_THROW(report.save_csv("/nonexistent/dir/report.csv"),
               std::runtime_error);
}

TEST(SweepReport, DnfRunsVisibleInCompletedColumn) {
  Summary s;
  s.total_runs = 3;
  s.completed_runs = 1;
  s.execution_time_s.add(100.0);
  SweepReport report("dnf");
  report.add("hadoop", "0.5", s);
  std::ostringstream os;
  report.write_csv(os);
  EXPECT_NE(os.str().find("dnf,hadoop,0.5,3,1,"), std::string::npos);
}

}  // namespace
}  // namespace moon::experiment
