#include "trace/correlated.hpp"

#include <gtest/gtest.h>

#include "trace/trace_stats.hpp"

namespace moon::trace {
namespace {

CorrelatedConfig basic(double fraction, std::size_t group_size = 5) {
  CorrelatedConfig cfg;
  cfg.base.unavailability_rate = 0.3;
  cfg.correlated_fraction = fraction;
  cfg.group_size = group_size;
  return cfg;
}

TEST(CorrelatedTraces, ZeroFractionMatchesIndependentRate) {
  CorrelatedTraceGenerator gen(basic(0.0));
  Rng rng{1};
  const auto fleet = gen.generate_fleet(rng, 20);
  EXPECT_NEAR(UnavailabilityProfile::average_unavailability(fleet), 0.3, 0.02);
}

TEST(CorrelatedTraces, RealizedRateNearTarget) {
  for (double fraction : {0.3, 0.5, 0.9}) {
    CorrelatedTraceGenerator gen(basic(fraction));
    Rng rng{2};
    const auto fleet = gen.generate_fleet(rng, 40);
    const double avg = UnavailabilityProfile::average_unavailability(fleet);
    EXPECT_NEAR(avg, 0.3, 0.06) << "fraction=" << fraction;
  }
}

TEST(CorrelatedTraces, GroupMembersShareLabEvents) {
  CorrelatedTraceGenerator gen(basic(1.0, 4));  // all downtime is group events
  Rng rng{3};
  const auto fleet = gen.generate_fleet(rng, 8);
  // Nodes 0..3 are one lab: identical traces when fraction is 1.0.
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(fleet[i].down_intervals(), fleet[0].down_intervals());
  }
  // Different labs draw different events.
  EXPECT_NE(fleet[4].down_intervals(), fleet[0].down_intervals());
}

TEST(CorrelatedTraces, MixedTracesDifferWithinGroup) {
  CorrelatedTraceGenerator gen(basic(0.5, 4));
  Rng rng{4};
  const auto fleet = gen.generate_fleet(rng, 4);
  // Individual outages make same-lab nodes differ...
  EXPECT_NE(fleet[1].down_intervals(), fleet[0].down_intervals());
  // ...but every lab event is inside both nodes' downtime.
  // (Check via sampling: whenever the shared lab is down, both nodes are.)
  CorrelatedTraceGenerator pure(basic(1.0, 4));
  Rng rng2{4};
  const auto lab_only = pure.generate_fleet(rng2, 4);
  (void)lab_only;  // construction parity; the event-sharing assertion above
                   // is covered by GroupMembersShareLabEvents
}

TEST(CorrelatedTraces, PeakUnavailabilityRisesWithCorrelation) {
  Rng rng_a{5}, rng_b{5};
  CorrelatedTraceGenerator independent(basic(0.0, 10));
  CorrelatedTraceGenerator correlated(basic(0.9, 10));
  const auto fleet_a = independent.generate_fleet(rng_a, 40);
  const auto fleet_b = correlated.generate_fleet(rng_b, 40);
  // Lab sessions synchronise outages: the worst instant is much worse.
  EXPECT_GT(UnavailabilityProfile::peak_unavailability(fleet_b),
            UnavailabilityProfile::peak_unavailability(fleet_a));
}

TEST(CorrelatedTraces, RejectsBadConfig) {
  auto cfg = basic(1.5);
  EXPECT_THROW(CorrelatedTraceGenerator{cfg}, std::logic_error);
  cfg = basic(0.5);
  cfg.group_size = 0;
  EXPECT_THROW(CorrelatedTraceGenerator{cfg}, std::logic_error);
  cfg = basic(0.5);
  cfg.group_event_mean_s = -1.0;
  EXPECT_THROW(CorrelatedTraceGenerator{cfg}, std::logic_error);
}

TEST(CorrelatedTraces, DeterministicPerSeed) {
  CorrelatedTraceGenerator gen(basic(0.5));
  Rng a{7}, b{7};
  const auto fa = gen.generate_fleet(a, 10);
  const auto fb = gen.generate_fleet(b, 10);
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].down_intervals(), fb[i].down_intervals());
  }
}

}  // namespace
}  // namespace moon::trace
