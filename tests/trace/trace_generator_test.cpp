#include "trace/trace_generator.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "trace/trace_stats.hpp"

namespace moon::trace {
namespace {

TEST(TraceGenerator, ZeroRateProducesEmptyTrace) {
  GeneratorConfig cfg;
  cfg.unavailability_rate = 0.0;
  TraceGenerator gen(cfg);
  Rng rng{1};
  EXPECT_EQ(gen.generate(rng).outage_count(), 0u);
}

TEST(TraceGenerator, HitsTargetRateExactly) {
  GeneratorConfig cfg;
  cfg.unavailability_rate = 0.4;
  TraceGenerator gen(cfg);
  Rng rng{2};
  const auto trace = gen.generate(rng);
  // The final outage is trimmed, so total down time is within one µs-rounding
  // of the target.
  EXPECT_NEAR(trace.unavailability_fraction(), 0.4, 1e-3);
}

TEST(TraceGenerator, DeterministicForSameRngState) {
  GeneratorConfig cfg;
  TraceGenerator gen(cfg);
  Rng a{7}, b{7};
  const auto ta = gen.generate(a);
  const auto tb = gen.generate(b);
  EXPECT_EQ(ta.down_intervals(), tb.down_intervals());
}

TEST(TraceGenerator, FleetTracesAreIndependent) {
  GeneratorConfig cfg;
  TraceGenerator gen(cfg);
  Rng rng{3};
  const auto fleet = gen.generate_fleet(rng, 4);
  ASSERT_EQ(fleet.size(), 4u);
  EXPECT_NE(fleet[0].down_intervals(), fleet[1].down_intervals());
  EXPECT_NE(fleet[1].down_intervals(), fleet[2].down_intervals());
}

TEST(TraceGenerator, OutagesRespectMinimumLength) {
  GeneratorConfig cfg;
  cfg.unavailability_rate = 0.3;
  cfg.min_outage_s = 30.0;
  TraceGenerator gen(cfg);
  Rng rng{4};
  const auto trace = gen.generate(rng);
  // All but the trimmed last interval must be >= the minimum.
  for (std::size_t i = 0; i + 1 < trace.down_intervals().size(); ++i) {
    EXPECT_GE(trace.down_intervals()[i].length(), sim::seconds(30.0));
  }
}

TEST(TraceGenerator, MeanOutageNearConfiguredMean) {
  GeneratorConfig cfg;
  cfg.unavailability_rate = 0.4;
  TraceGenerator gen(cfg);
  Rng rng{5};
  const auto fleet = gen.generate_fleet(rng, 200);
  const auto summary = summarize_outages(fleet);
  // Truncation at min_outage_s biases the mean upward somewhat; accept a
  // generous band around 409 s.
  EXPECT_GT(summary.mean_seconds, 300.0);
  EXPECT_LT(summary.mean_seconds, 650.0);
  EXPECT_GE(summary.min_seconds, 0.0);
}

TEST(TraceGenerator, RejectsBadConfig) {
  GeneratorConfig cfg;
  cfg.unavailability_rate = 1.0;
  EXPECT_THROW(TraceGenerator{cfg}, std::logic_error);
  cfg.unavailability_rate = -0.1;
  EXPECT_THROW(TraceGenerator{cfg}, std::logic_error);
  cfg = GeneratorConfig{};
  cfg.horizon = 0;
  EXPECT_THROW(TraceGenerator{cfg}, std::logic_error);
  cfg = GeneratorConfig{};
  cfg.mean_outage_s = -1;
  EXPECT_THROW(TraceGenerator{cfg}, std::logic_error);
}

/// Property sweep: for every target rate and several seeds, the generated
/// trace hits the rate and stays within the horizon.
class GeneratorSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(GeneratorSweep, RateIsMetAndIntervalsAreWellFormed) {
  const auto [rate, seed] = GetParam();
  GeneratorConfig cfg;
  cfg.unavailability_rate = rate;
  TraceGenerator gen(cfg);
  Rng rng{seed};
  const auto trace = gen.generate(rng);
  EXPECT_NEAR(trace.unavailability_fraction(), rate, 1e-3);
  sim::Time prev_end = 0;
  for (const auto& iv : trace.down_intervals()) {
    EXPECT_GE(iv.begin, prev_end);
    EXPECT_GT(iv.end, iv.begin);
    EXPECT_LE(iv.end, cfg.horizon);
    prev_end = iv.end;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndSeeds, GeneratorSweep,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.4, 0.5, 0.7),
                       ::testing::Values(1u, 99u, 777u)));

}  // namespace
}  // namespace moon::trace
