#include "trace/trace_stats.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "trace/trace_generator.hpp"

namespace moon::trace {
namespace {

TEST(UnavailabilityProfile, EmptyFleet) {
  EXPECT_TRUE(UnavailabilityProfile::compute({}).empty());
  EXPECT_DOUBLE_EQ(UnavailabilityProfile::average_unavailability({}), 0.0);
}

TEST(UnavailabilityProfile, SamplesAtBinBoundaries) {
  std::vector<AvailabilityTrace> fleet;
  // Node down for the first half of the horizon.
  fleet.emplace_back(100 * sim::kMinute,
                     std::vector<Interval>{{0, 50 * sim::kMinute}});
  const auto profile = UnavailabilityProfile::compute(fleet, 10 * sim::kMinute);
  ASSERT_EQ(profile.size(), 10u);
  EXPECT_DOUBLE_EQ(profile[0].percent_unavailable, 100.0);
  EXPECT_DOUBLE_EQ(profile[4].percent_unavailable, 100.0);
  EXPECT_DOUBLE_EQ(profile[5].percent_unavailable, 0.0);
  EXPECT_DOUBLE_EQ(profile[9].percent_unavailable, 0.0);
}

TEST(UnavailabilityProfile, FleetFractionAtInstant) {
  std::vector<AvailabilityTrace> fleet;
  for (int i = 0; i < 4; ++i) {
    if (i < 3) {
      fleet.emplace_back(1000000, std::vector<Interval>{{0, 500000}});
    } else {
      fleet.push_back(AvailabilityTrace::always_available(1000000));
    }
  }
  const auto profile = UnavailabilityProfile::compute(fleet, 250000);
  ASSERT_FALSE(profile.empty());
  EXPECT_DOUBLE_EQ(profile[0].percent_unavailable, 75.0);
}

TEST(UnavailabilityProfile, AverageMatchesGeneratedRate) {
  GeneratorConfig cfg;
  cfg.unavailability_rate = 0.4;
  TraceGenerator gen(cfg);
  Rng rng{21};
  const auto fleet = gen.generate_fleet(rng, 60);
  EXPECT_NEAR(UnavailabilityProfile::average_unavailability(fleet), 0.4, 1e-3);
}

TEST(UnavailabilityProfile, PeakIsAtLeastAverage) {
  GeneratorConfig cfg;
  cfg.unavailability_rate = 0.3;
  TraceGenerator gen(cfg);
  Rng rng{22};
  const auto fleet = gen.generate_fleet(rng, 40);
  const double avg = UnavailabilityProfile::average_unavailability(fleet);
  const double peak = UnavailabilityProfile::peak_unavailability(fleet);
  EXPECT_GE(peak, avg * 0.9);
  EXPECT_LE(peak, 1.0);
}

TEST(OutageSummary, CountsAndBounds) {
  std::vector<AvailabilityTrace> fleet;
  fleet.emplace_back(
      sim::hours(8),
      std::vector<Interval>{{0, sim::seconds(100)},
                            {sim::seconds(200), sim::seconds(500)}});
  const auto summary = summarize_outages(fleet);
  EXPECT_EQ(summary.count, 2u);
  EXPECT_DOUBLE_EQ(summary.min_seconds, 100.0);
  EXPECT_DOUBLE_EQ(summary.max_seconds, 300.0);
  EXPECT_DOUBLE_EQ(summary.mean_seconds, 200.0);
}

}  // namespace
}  // namespace moon::trace
