#include "trace/availability_trace.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace moon::trace {
namespace {

constexpr sim::Duration kHour8 = 8 * sim::kHour;

TEST(AvailabilityTrace, AlwaysAvailableHasNoOutages) {
  const auto t = AvailabilityTrace::always_available(kHour8);
  EXPECT_EQ(t.outage_count(), 0u);
  EXPECT_DOUBLE_EQ(t.unavailability_fraction(), 0.0);
  EXPECT_TRUE(t.available_at(0));
  EXPECT_TRUE(t.available_at(kHour8 - 1));
}

TEST(AvailabilityTrace, AvailabilityLookupInsideAndOutsideIntervals) {
  AvailabilityTrace t(kHour8, {{100, 200}, {500, 700}});
  EXPECT_TRUE(t.available_at(0));
  EXPECT_TRUE(t.available_at(99));
  EXPECT_FALSE(t.available_at(100));  // [begin, end)
  EXPECT_FALSE(t.available_at(199));
  EXPECT_TRUE(t.available_at(200));
  EXPECT_FALSE(t.available_at(600));
  EXPECT_TRUE(t.available_at(700));
}

TEST(AvailabilityTrace, IntervalsAreSortedOnConstruction) {
  AvailabilityTrace t(kHour8, {{500, 700}, {100, 200}});
  ASSERT_EQ(t.outage_count(), 2u);
  EXPECT_EQ(t.down_intervals()[0].begin, 100);
  EXPECT_EQ(t.down_intervals()[1].begin, 500);
}

TEST(AvailabilityTrace, OverlappingIntervalsCoalesce) {
  AvailabilityTrace t(kHour8, {{100, 300}, {200, 400}, {400, 500}});
  ASSERT_EQ(t.outage_count(), 1u);
  EXPECT_EQ(t.down_intervals()[0], (Interval{100, 500}));
}

TEST(AvailabilityTrace, TotalDownTimeAndFraction) {
  AvailabilityTrace t(1000, {{0, 250}, {500, 750}});
  EXPECT_EQ(t.total_down_time(), 500);
  EXPECT_DOUBLE_EQ(t.unavailability_fraction(), 0.5);
}

TEST(AvailabilityTrace, WrapsCyclicallyBeyondHorizon) {
  AvailabilityTrace t(1000, {{100, 200}});
  EXPECT_FALSE(t.available_at(150));
  EXPECT_FALSE(t.available_at(1150));  // next horizon repeat
  EXPECT_TRUE(t.available_at(1050));
  EXPECT_FALSE(t.available_at(10 * 1000 + 150));
}

TEST(AvailabilityTrace, RejectsBadIntervals) {
  EXPECT_THROW(AvailabilityTrace(1000, {{-5, 10}}), std::logic_error);
  EXPECT_THROW(AvailabilityTrace(1000, {{0, 1001}}), std::logic_error);
  EXPECT_THROW(AvailabilityTrace(1000, {{50, 50}}), std::logic_error);
  EXPECT_THROW(AvailabilityTrace(1000, {{60, 50}}), std::logic_error);
  EXPECT_THROW(AvailabilityTrace(0, {}), std::logic_error);
}

TEST(AvailabilityTrace, NegativeTimeIsAvailable) {
  AvailabilityTrace t(1000, {{0, 100}});
  EXPECT_TRUE(t.available_at(-1));
}

}  // namespace
}  // namespace moon::trace
