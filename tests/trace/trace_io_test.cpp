#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "trace/trace_generator.hpp"

namespace moon::trace {
namespace {

TEST(TraceIo, RoundTripsAFleet) {
  TraceGenerator gen{GeneratorConfig{}};
  Rng rng{11};
  const auto fleet = gen.generate_fleet(rng, 5);

  std::stringstream buffer;
  write_fleet_csv(buffer, fleet);
  const auto loaded = read_fleet_csv(buffer);

  ASSERT_EQ(loaded.size(), fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_EQ(loaded[i].horizon(), fleet[i].horizon());
    EXPECT_EQ(loaded[i].down_intervals(), fleet[i].down_intervals());
  }
}

TEST(TraceIo, PreservesNodesWithNoOutages) {
  std::vector<AvailabilityTrace> fleet;
  fleet.push_back(AvailabilityTrace::always_available(1000));
  fleet.emplace_back(1000, std::vector<Interval>{{10, 20}});
  fleet.push_back(AvailabilityTrace::always_available(1000));

  std::stringstream buffer;
  write_fleet_csv(buffer, fleet);
  const auto loaded = read_fleet_csv(buffer);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[0].outage_count(), 0u);
  EXPECT_EQ(loaded[1].outage_count(), 1u);
  EXPECT_EQ(loaded[2].outage_count(), 0u);
}

TEST(TraceIo, HeaderCarriesHorizon) {
  std::vector<AvailabilityTrace> fleet;
  fleet.emplace_back(12345, std::vector<Interval>{});
  std::stringstream buffer;
  write_fleet_csv(buffer, fleet);
  EXPECT_NE(buffer.str().find("horizon_us=12345"), std::string::npos);
  EXPECT_NE(buffer.str().find("nodes=1"), std::string::npos);
}

TEST(TraceIo, RejectsMissingHeader) {
  std::stringstream buffer("node,begin_us,end_us\n0,1,2\n");
  EXPECT_THROW(read_fleet_csv(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsMalformedRow) {
  std::stringstream buffer("# horizon_us=1000 nodes=1\nnode,begin_us,end_us\n0,5\n");
  EXPECT_THROW(read_fleet_csv(buffer), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  TraceGenerator gen{GeneratorConfig{}};
  Rng rng{12};
  const auto fleet = gen.generate_fleet(rng, 3);
  const std::string path = ::testing::TempDir() + "/moon_trace_io_test.csv";
  save_fleet(path, fleet);
  const auto loaded = load_fleet(path);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[1].down_intervals(), fleet[1].down_intervals());
}

TEST(TraceIo, LoadFromMissingPathThrows) {
  EXPECT_THROW(load_fleet("/nonexistent/path/traces.csv"), std::runtime_error);
}

}  // namespace
}  // namespace moon::trace
