// DataNode behaviour: block bookkeeping and heartbeat bandwidth reports.
#include "dfs/datanode.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "dfs/dfs.hpp"

namespace moon::dfs {
namespace {

class DataNodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<cluster::Cluster>(sim_);
    cluster::NodeConfig vcfg;
    vcfg.type = cluster::NodeType::kVolatile;
    ids_ = cluster_->add_nodes(3, vcfg);
    dfs_ = std::make_unique<Dfs>(sim_, *cluster_, DfsConfig{}, 3);
    dfs_->start();
  }

  sim::Simulation sim_{4};
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<Dfs> dfs_;
  std::vector<NodeId> ids_;
};

TEST_F(DataNodeTest, StoreAndDropBlocksTrackBytes) {
  DataNode& dn = dfs_->datanode(ids_[0]);
  auto& nn = dfs_->namenode();
  const FileId f = nn.create_file("x", FileKind::kOpportunistic, {0, 1});
  const BlockId b = nn.add_block(f, mib(4.0));

  EXPECT_FALSE(dn.stores(b));
  dn.store_block(b, mib(4.0));
  EXPECT_TRUE(dn.stores(b));
  EXPECT_EQ(dn.block_count(), 1u);
  EXPECT_EQ(dn.stored_bytes(), mib(4.0));
  EXPECT_TRUE(nn.block(b).has_replica_on(ids_[0]));

  dn.drop_block(b, mib(4.0));
  EXPECT_FALSE(dn.stores(b));
  EXPECT_EQ(dn.stored_bytes(), 0);
  EXPECT_FALSE(nn.block(b).has_replica_on(ids_[0]));
}

TEST_F(DataNodeTest, DoubleStoreIsIdempotent) {
  DataNode& dn = dfs_->datanode(ids_[1]);
  auto& nn = dfs_->namenode();
  const FileId f = nn.create_file("x", FileKind::kOpportunistic, {0, 1});
  const BlockId b = nn.add_block(f, 100);
  dn.store_block(b, 100);
  dn.store_block(b, 100);
  EXPECT_EQ(dn.block_count(), 1u);
  EXPECT_EQ(dn.stored_bytes(), 100);
  EXPECT_EQ(nn.block(b).replicas.size(), 1u);
}

TEST_F(DataNodeTest, HeartbeatsKeepNodeLive) {
  sim_.run_until(10 * sim::kMinute);
  for (NodeId id : ids_) {
    EXPECT_EQ(dfs_->namenode().state_of(id), DataNodeState::kLive);
  }
}

TEST_F(DataNodeTest, HeartbeatsStopWhileHostDown) {
  cluster_->node(ids_[0]).set_available(false);
  sim_.run_until(3 * sim::kMinute);
  EXPECT_EQ(dfs_->namenode().state_of(ids_[0]), DataNodeState::kHibernated);
  // Peers keep beating.
  EXPECT_EQ(dfs_->namenode().state_of(ids_[1]), DataNodeState::kLive);
}

TEST_F(DataNodeTest, TrafficShowsUpInReportedBandwidth) {
  // Move data through node 0's disk and check the throttle telemetry path
  // indirectly: transferred_through grows, and heartbeats consume it
  // without error while the node serves I/O.
  auto& net = cluster_->network();
  const auto before = net.transferred_through(cluster_->node(ids_[0]).disk());
  const FileId f = dfs_->namenode().create_file("y", FileKind::kOpportunistic,
                                                {0, 1});
  bool done = false;
  dfs_->write_file(f, ids_[0], mib(16.0), [&](bool ok) { done = ok; });
  sim_.run_until(5 * sim::kMinute);
  ASSERT_TRUE(done);
  EXPECT_GT(net.transferred_through(cluster_->node(ids_[0]).disk()), before);
}

}  // namespace
}  // namespace moon::dfs
