// Data-plane tests: staging, client writes/reads under churn, background
// re-replication, stall handling.
#include "dfs/dfs.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "cluster/cluster.hpp"

namespace moon::dfs {
namespace {

Bytes config_block_size() { return DfsConfig{}.block_size; }

class DfsOpsTest : public ::testing::Test {
 protected:
  void build(DfsConfig config = {}, std::size_t volatiles = 6,
             std::size_t dedicated = 2) {
    cluster_ = std::make_unique<cluster::Cluster>(sim_);
    cluster::NodeConfig vcfg;
    vcfg.type = cluster::NodeType::kVolatile;
    vcfg.nic_in_bw = mibps(100.0);
    vcfg.nic_out_bw = mibps(100.0);
    vcfg.disk_bw = mibps(50.0);
    volatile_ids_ = cluster_->add_nodes(volatiles, vcfg);
    cluster::NodeConfig dcfg = vcfg;
    dcfg.type = cluster::NodeType::kDedicated;
    dedicated_ids_ = cluster_->add_nodes(dedicated, dcfg);
    dfs_ = std::make_unique<Dfs>(sim_, *cluster_, config, 99);
    dfs_->start();
  }

  NameNode& nn() { return dfs_->namenode(); }
  void advance(sim::Duration d) { sim_.run_until(sim_.now() + d); }

  sim::Simulation sim_{2};
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<Dfs> dfs_;
  std::vector<NodeId> volatile_ids_;
  std::vector<NodeId> dedicated_ids_;
};

TEST_F(DfsOpsTest, StageFilePlacesAllReplicasInstantly) {
  build();
  const FileId f = dfs_->stage_file("input", FileKind::kReliable, {1, 3},
                                    3 * config_block_size());
  const auto& meta = nn().file(f);
  EXPECT_EQ(meta.blocks.size(), 3u);
  EXPECT_TRUE(meta.complete);
  for (BlockId b : meta.blocks) {
    const auto live = nn().live_replicas(b);
    EXPECT_EQ(live.dedicated, 1);
    EXPECT_EQ(live.volatile_count, 3);
    EXPECT_TRUE(nn().block_meets_factor(b));
  }

  // Dedicated replicas round-robin across the tier.
  std::size_t on_first = 0;
  for (BlockId b : meta.blocks) {
    if (nn().block(b).has_replica_on(dedicated_ids_[0])) ++on_first;
  }
  EXPECT_GE(on_first, 1u);
  EXPECT_LT(on_first, 3u);
}

TEST_F(DfsOpsTest, StageFileWithPartialTrailingBlock) {
  build();
  const Bytes size = config_block_size() + config_block_size() / 2;
  const FileId f = dfs_->stage_file("x", FileKind::kOpportunistic, {0, 2}, size);
  const auto& meta = nn().file(f);
  ASSERT_EQ(meta.blocks.size(), 2u);
  EXPECT_EQ(nn().block(meta.blocks[0]).size, config_block_size());
  EXPECT_EQ(nn().block(meta.blocks[1]).size, config_block_size() / 2);
  EXPECT_EQ(meta.size, size);
}

TEST_F(DfsOpsTest, StageBlocksMakesOneBlockPerUnit) {
  build();
  const FileId f = dfs_->stage_blocks("sleep.in", FileKind::kReliable, {1, 1},
                                      10, kKiB);
  EXPECT_EQ(nn().file(f).blocks.size(), 10u);
}

TEST_F(DfsOpsTest, WriteFileLandsAllReplicasAndCompletes) {
  build();
  const FileId f = nn().create_file("data", FileKind::kOpportunistic, {1, 2});
  std::optional<bool> result;
  dfs_->write_file(f, volatile_ids_[0], mib(64.0),
                   [&](bool ok) { result = ok; });
  sim_.run_until(5 * sim::kMinute);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(*result);
  const auto& meta = nn().file(f);
  ASSERT_EQ(meta.blocks.size(), 1u);
  const auto live = nn().live_replicas(meta.blocks[0]);
  EXPECT_EQ(live.dedicated, 1);
  EXPECT_EQ(live.volatile_count, 2);
  EXPECT_GT(dfs_->stats().bytes_written, 0);
}

TEST_F(DfsOpsTest, WriteSplitsIntoBlocks) {
  build();
  const FileId f = nn().create_file("big", FileKind::kOpportunistic, {0, 1});
  std::optional<bool> result;
  dfs_->write_file(f, volatile_ids_[1], 3 * config_block_size() + 5,
                   [&](bool ok) { result = ok; });
  sim_.run_until(10 * sim::kMinute);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(nn().file(f).blocks.size(), 4u);
}

TEST_F(DfsOpsTest, ReadBlockFromReplica) {
  build();
  const FileId f = dfs_->stage_file("x", FileKind::kOpportunistic, {0, 2},
                                    mib(8.0));
  const BlockId b = nn().file(f).blocks[0];
  std::optional<bool> result;
  dfs_->read_block(b, volatile_ids_[5], [&](bool ok) { result = ok; });
  sim_.run_until(sim::kMinute);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(*result);
  EXPECT_EQ(dfs_->stats().bytes_read, mib(8.0));
}

TEST_F(DfsOpsTest, ReadPartialMovesOnlyRequestedBytes) {
  build();
  const FileId f = dfs_->stage_file("x", FileKind::kOpportunistic, {0, 2},
                                    mib(64.0));
  const BlockId b = nn().file(f).blocks[0];
  std::optional<bool> result;
  dfs_->read_partial(b, volatile_ids_[5], mib(1.0), [&](bool ok) { result = ok; });
  sim_.run_until(sim::kMinute);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(*result);
  EXPECT_EQ(dfs_->stats().bytes_read, mib(1.0));
}

TEST_F(DfsOpsTest, ReadFailsWhenNoReplicaIsEverAvailable) {
  DfsConfig cfg;
  cfg.max_read_rounds = 2;
  cfg.read_round_wait = 5 * sim::kSecond;
  build(cfg);
  const FileId f = dfs_->stage_file("x", FileKind::kOpportunistic, {0, 1},
                                    mib(1.0));
  const BlockId b = nn().file(f).blocks[0];
  // Take the only replica holder down and let the NameNode notice.
  const NodeId holder = nn().block(b).replicas[0];
  cluster_->node(holder).set_available(false);
  advance(3 * sim::kMinute);

  std::optional<bool> result;
  dfs_->read_block(b, volatile_ids_[5], [&](bool ok) { result = ok; });
  sim_.run_until(sim_.now() + 5 * sim::kMinute);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(*result);
  EXPECT_GT(dfs_->stats().read_failures, 0);
}

TEST_F(DfsOpsTest, ReadRetriesAcrossRoundsWhenReplicaReturns) {
  DfsConfig cfg;
  cfg.max_read_rounds = 5;
  cfg.read_round_wait = 10 * sim::kSecond;
  build(cfg);
  const FileId f = dfs_->stage_file("x", FileKind::kOpportunistic, {0, 1},
                                    mib(1.0));
  const BlockId b = nn().file(f).blocks[0];
  const NodeId holder = nn().block(b).replicas[0];
  cluster_->node(holder).set_available(false);
  advance(2 * sim::kMinute);  // hibernated: not readable

  std::optional<bool> result;
  dfs_->read_block(b, volatile_ids_[5], [&](bool ok) { result = ok; });
  // Bring the holder back while the read is sweeping rounds.
  sim_.schedule_after(15 * sim::kSecond,
                      [&] { cluster_->node(holder).set_available(true); });
  sim_.run_until(sim_.now() + 5 * sim::kMinute);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(*result);
}

TEST_F(DfsOpsTest, ReadFallsBackToSecondReplicaWhenFirstStalls) {
  build();
  const FileId f = dfs_->stage_file("x", FileKind::kOpportunistic, {0, 2},
                                    mib(32.0));
  const BlockId b = nn().file(f).blocks[0];
  // Find a reader that holds no replica.
  NodeId reader = NodeId::invalid();
  for (NodeId n : volatile_ids_) {
    if (!nn().block(b).has_replica_on(n)) {
      reader = n;
      break;
    }
  }
  ASSERT_TRUE(reader.valid());

  std::optional<bool> result;
  dfs_->read_block(b, reader, [&](bool ok) { result = ok; });
  // Kill whichever source it picked, shortly after the transfer starts.
  sim_.schedule_after(sim::kSecond, [&] {
    for (NodeId n : nn().block(b).replicas) {
      cluster_->node(n).set_available(false);
      break;  // only the first (the preferred source)
    }
  });
  sim_.run_until(sim_.now() + 5 * sim::kMinute);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(*result);
}

TEST_F(DfsOpsTest, CancelOpSuppressesCallback) {
  build();
  const FileId f = dfs_->stage_file("x", FileKind::kOpportunistic, {0, 2},
                                    mib(64.0));
  const BlockId b = nn().file(f).blocks[0];
  bool called = false;
  const OpId op = dfs_->read_block(b, volatile_ids_[5], [&](bool) { called = true; });
  dfs_->cancel_op(op);
  sim_.run_until(5 * sim::kMinute);
  EXPECT_FALSE(called);
  EXPECT_EQ(dfs_->active_ops(), 0u);
}

TEST_F(DfsOpsTest, WriteStallsWhileWriterDownThenFinishes) {
  build();
  const FileId f = nn().create_file("x", FileKind::kOpportunistic, {0, 2});
  std::optional<bool> result;
  sim::Time done_at = 0;
  dfs_->write_file(f, volatile_ids_[0], mib(32.0), [&](bool ok) {
    result = ok;
    done_at = sim_.now();
  });
  cluster_->node(volatile_ids_[0]).set_available(false);
  sim_.schedule_at(2 * sim::kMinute,
                   [&] { cluster_->node(volatile_ids_[0]).set_available(true); });
  sim_.run_until(10 * sim::kMinute);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(*result);
  EXPECT_GT(done_at, 2 * sim::kMinute);
}

TEST_F(DfsOpsTest, WriteRepicksTargetWhenTargetDies) {
  build();
  const FileId f = nn().create_file("x", FileKind::kOpportunistic, {0, 2});
  std::optional<bool> result;
  dfs_->write_file(f, volatile_ids_[0], mib(32.0), [&](bool ok) { result = ok; });
  // Take down every volatile node except the writer and one other, so that
  // whichever remote target was chosen likely dies and gets re-picked.
  sim_.schedule_after(500 * sim::kMillisecond, [&] {
    for (std::size_t i = 2; i < volatile_ids_.size(); ++i) {
      cluster_->node(volatile_ids_[i]).set_available(false);
    }
  });
  sim_.run_until(10 * sim::kMinute);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(*result);
  const BlockId b = nn().file(f).blocks[0];
  EXPECT_GE(nn().live_replicas(b).volatile_count, 1);
}

TEST_F(DfsOpsTest, UnderReplicatedBlockIsRepairedInBackground) {
  build();
  const FileId f = dfs_->stage_file("x", FileKind::kOpportunistic, {0, 3},
                                    mib(4.0));
  const BlockId b = nn().file(f).blocks[0];
  // Kill one holder long enough to be declared dead.
  const NodeId victim = nn().block(b).replicas[0];
  cluster_->node(victim).set_available(false);
  advance(11 * sim::kMinute);
  ASSERT_EQ(nn().state_of(victim), DataNodeState::kDead);
  advance(2 * sim::kMinute);  // replication monitor repairs
  EXPECT_TRUE(nn().block_meets_factor(b));
  EXPECT_GT(dfs_->stats().replication_bytes, 0);
}

TEST_F(DfsOpsTest, ReliableFileRepairGoesToDedicatedTier) {
  build();
  const FileId f = dfs_->stage_file("x", FileKind::kReliable, {1, 1}, mib(4.0));
  const BlockId b = nn().file(f).blocks[0];
  // Remove the dedicated replica by hand.
  NodeId dead_dedicated = NodeId::invalid();
  for (NodeId n : nn().block(b).replicas) {
    if (cluster_->node(n).dedicated()) dead_dedicated = n;
  }
  ASSERT_TRUE(dead_dedicated.valid());
  dfs_->datanode(dead_dedicated).drop_block(b, mib(4.0));
  nn().enqueue_replication(b);
  advance(2 * sim::kMinute);
  EXPECT_EQ(nn().live_replicas(b).dedicated, 1);
}

TEST_F(DfsOpsTest, HibernatedVulnerableBlockGetsNewVolatileCopy) {
  build();
  // Two volatile replicas, no dedicated copy: losing one holder to
  // hibernation makes the block vulnerable, and §IV-C says it must be
  // re-replicated from the surviving copy even though the holder is only
  // hibernated (not dead).
  const FileId f = dfs_->stage_file("inter", FileKind::kOpportunistic, {0, 2},
                                    mib(4.0));
  const BlockId b = nn().file(f).blocks[0];
  const NodeId holder = nn().block(b).replicas[0];
  cluster_->node(holder).set_available(false);
  advance(2 * sim::kMinute);  // hibernated -> vulnerable -> re-replicate
  ASSERT_EQ(nn().state_of(holder), DataNodeState::kHibernated);
  advance(2 * sim::kMinute);
  // Fresh live copies restore the factor while the holder is away.
  EXPECT_GE(nn().live_replicas(b).volatile_count, 2);
  EXPECT_GT(dfs_->stats().replication_bytes, 0);
}

}  // namespace
}  // namespace moon::dfs
