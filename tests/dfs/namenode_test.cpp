// NameNode policy tests: Figure 3 write decisions, read ordering (§IV-B),
// liveness states (§IV-C), adaptive replication (§IV-A), replication queue
// priorities.
#include "dfs/namenode.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/cluster.hpp"
#include "dfs/dfs.hpp"

namespace moon::dfs {
namespace {

class NameNodeTest : public ::testing::Test {
 protected:
  /// 6 volatile + 2 dedicated nodes. Control plane only: a bare NameNode
  /// plus a manual heartbeat pump — no data plane, no background repair, so
  /// liveness/factor assertions are not raced by the replication monitor.
  void build(DfsConfig config = {}) {
    cluster_ = std::make_unique<cluster::Cluster>(sim_);
    cluster::NodeConfig vcfg;
    vcfg.type = cluster::NodeType::kVolatile;
    volatile_ids_ = cluster_->add_nodes(6, vcfg);
    cluster::NodeConfig dcfg;
    dcfg.type = cluster::NodeType::kDedicated;
    dedicated_ids_ = cluster_->add_nodes(2, dcfg);
    namenode_ = std::make_unique<NameNode>(sim_, *cluster_, config);
    for (NodeId id : cluster_->all_nodes()) namenode_->register_datanode(id);
    namenode_->start();
    // Steady positive bandwidth keeps the throttle windows in a neutral
    // state (constant samples never flip Algorithm 1 either way).
    pump_ = std::make_unique<sim::PeriodicTask>(
        sim_, config.heartbeat_interval, [this] {
          for (NodeId id : cluster_->all_nodes()) {
            if (cluster_->node(id).available()) namenode_->heartbeat(id, 100.0);
          }
        });
    pump_->start();
  }

  NameNode& nn() { return *namenode_; }

  /// Drives heartbeats and liveness scans for a while.
  void advance(sim::Duration d) { sim_.run_until(sim_.now() + d); }

  sim::Simulation sim_{1};
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<NameNode> namenode_;
  std::unique_ptr<sim::PeriodicTask> pump_;
  std::vector<NodeId> volatile_ids_;
  std::vector<NodeId> dedicated_ids_;
};

TEST_F(NameNodeTest, DataNodesRegisterLive) {
  build();
  for (NodeId id : cluster_->all_nodes()) {
    EXPECT_EQ(nn().state_of(id), DataNodeState::kLive);
  }
  EXPECT_EQ(nn().datanodes().size(), 8u);
}

TEST_F(NameNodeTest, ReliableWriteAlwaysGetsDedicatedTarget) {
  build();
  const FileId f = nn().create_file("input", FileKind::kReliable, {1, 3});
  nn().add_block(f, 100);
  Rng rng{3};
  const auto targets = nn().pick_write_targets(f, volatile_ids_[0], rng);
  int dedicated = 0;
  for (NodeId n : targets.nodes) {
    if (cluster_->node(n).dedicated()) ++dedicated;
  }
  EXPECT_EQ(dedicated, 1);
  EXPECT_FALSE(targets.dedicated_declined);
  EXPECT_EQ(targets.nodes.size(), 4u);  // 1 dedicated + 3 volatile
}

TEST_F(NameNodeTest, WriterLocalReplicaComesFirst) {
  build();
  const FileId f = nn().create_file("x", FileKind::kOpportunistic, {0, 3});
  Rng rng{4};
  const auto targets = nn().pick_write_targets(f, volatile_ids_[2], rng);
  ASSERT_FALSE(targets.nodes.empty());
  EXPECT_EQ(targets.nodes.front(), volatile_ids_[2]);
}

TEST_F(NameNodeTest, VolatileTargetsAreDistinct) {
  build();
  const FileId f = nn().create_file("x", FileKind::kOpportunistic, {0, 5});
  Rng rng{5};
  const auto targets = nn().pick_write_targets(f, volatile_ids_[0], rng);
  auto nodes = targets.nodes;
  std::sort(nodes.begin(), nodes.end());
  EXPECT_EQ(std::adjacent_find(nodes.begin(), nodes.end()), nodes.end());
}

TEST_F(NameNodeTest, OpportunisticWriteDeclinedWhenAllDedicatedSaturated) {
  DfsConfig cfg;
  cfg.throttle_window = 2;
  build(cfg);
  // Saturate both dedicated nodes: rising-but-flattening bandwidth.
  for (NodeId d : dedicated_ids_) {
    nn().heartbeat(d, 100.0);
    nn().heartbeat(d, 104.0);
    EXPECT_TRUE(nn().is_saturated(d));
  }
  EXPECT_TRUE(nn().all_dedicated_saturated());

  const FileId f = nn().create_file("inter", FileKind::kOpportunistic, {1, 1});
  Rng rng{6};
  const auto targets = nn().pick_write_targets(f, volatile_ids_[0], rng);
  EXPECT_TRUE(targets.dedicated_declined);
  for (NodeId n : targets.nodes) {
    EXPECT_FALSE(cluster_->node(n).dedicated());
  }
}

TEST_F(NameNodeTest, ReliableWriteIgnoresSaturation) {
  DfsConfig cfg;
  cfg.throttle_window = 2;
  build(cfg);
  for (NodeId d : dedicated_ids_) {
    nn().heartbeat(d, 100.0);
    nn().heartbeat(d, 104.0);
  }
  const FileId f = nn().create_file("in", FileKind::kReliable, {1, 1});
  Rng rng{7};
  const auto targets = nn().pick_write_targets(f, volatile_ids_[0], rng);
  EXPECT_FALSE(targets.dedicated_declined);
  int dedicated = 0;
  for (NodeId n : targets.nodes) {
    if (cluster_->node(n).dedicated()) ++dedicated;
  }
  EXPECT_EQ(dedicated, 1);
}

TEST_F(NameNodeTest, DeclinedWriteRaisesVolatileRequirement) {
  DfsConfig cfg;
  cfg.throttle_window = 2;
  cfg.availability_goal = 0.9;
  build(cfg);
  // Make p = 0.5:三 of six volatile nodes down long enough to hibernate.
  for (int i = 0; i < 3; ++i) {
    cluster_->node(volatile_ids_[static_cast<std::size_t>(i)]).set_available(false);
  }
  advance(3 * sim::kMinute);  // hibernate + estimate scans run
  EXPECT_GT(nn().estimated_unavailability(), 0.2);

  for (NodeId d : dedicated_ids_) {
    nn().heartbeat(d, 100.0);
    nn().heartbeat(d, 104.0);
  }
  const FileId f = nn().create_file("inter", FileKind::kOpportunistic, {1, 1});
  nn().add_block(f, 100);
  Rng rng{8};
  const auto targets = nn().pick_write_targets(f, volatile_ids_[4], rng);
  EXPECT_TRUE(targets.dedicated_declined);
  // 1 - p^v >= 0.9 with p around 0.4-0.5 needs v >= 3ish; must exceed the
  // configured v = 1.
  EXPECT_GT(targets.effective_volatile, 1);
  EXPECT_EQ(nn().file(f).required_volatile(), targets.effective_volatile);
}

TEST_F(NameNodeTest, AdaptiveRequirementFormula) {
  build();
  // p is 0 right after start: one volatile copy suffices.
  EXPECT_EQ(nn().adaptive_volatile_requirement(), 1);
}

TEST_F(NameNodeTest, ReadOrderPrefersLocalThenVolatile) {
  build();
  const FileId f = nn().create_file("x", FileKind::kOpportunistic, {1, 2});
  const BlockId b = nn().add_block(f, 100);
  nn().commit_replica(b, volatile_ids_[1]);
  nn().commit_replica(b, volatile_ids_[3]);
  nn().commit_replica(b, dedicated_ids_[0]);

  // Volatile reader holding a replica: itself first.
  auto order = nn().read_order(b, volatile_ids_[1]);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], volatile_ids_[1]);
  // §IV-B: dedicated replicas last for volatile readers.
  EXPECT_EQ(order.back(), dedicated_ids_[0]);

  // Remote volatile reader: volatile replicas before dedicated.
  order = nn().read_order(b, volatile_ids_[5]);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_FALSE(cluster_->node(order[0]).dedicated());
  EXPECT_EQ(order.back(), dedicated_ids_[0]);
}

TEST_F(NameNodeTest, DedicatedReaderPrefersDedicatedReplicas) {
  build();
  const FileId f = nn().create_file("x", FileKind::kOpportunistic, {1, 1});
  const BlockId b = nn().add_block(f, 100);
  nn().commit_replica(b, volatile_ids_[0]);
  nn().commit_replica(b, dedicated_ids_[1]);
  const auto order = nn().read_order(b, dedicated_ids_[0]);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], dedicated_ids_[1]);
}

TEST_F(NameNodeTest, HibernatedReplicasAreNotReadable) {
  DfsConfig cfg;
  build(cfg);
  const FileId f = nn().create_file("x", FileKind::kOpportunistic, {0, 2});
  const BlockId b = nn().add_block(f, 100);
  nn().commit_replica(b, volatile_ids_[0]);
  nn().commit_replica(b, volatile_ids_[1]);

  cluster_->node(volatile_ids_[0]).set_available(false);
  advance(2 * sim::kMinute);  // > hibernate_interval (90 s)
  EXPECT_EQ(nn().state_of(volatile_ids_[0]), DataNodeState::kHibernated);

  const auto order = nn().read_order(b, volatile_ids_[2]);
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], volatile_ids_[1]);
  EXPECT_TRUE(nn().block_readable(b));

  cluster_->node(volatile_ids_[1]).set_available(false);
  advance(2 * sim::kMinute);
  EXPECT_FALSE(nn().block_readable(b));
}

TEST_F(NameNodeTest, LivenessProgressionLiveHibernatedDead) {
  DfsConfig cfg;
  cfg.hibernate_interval = 90 * sim::kSecond;
  cfg.expiry_interval = 600 * sim::kSecond;
  build(cfg);
  const NodeId victim = volatile_ids_[0];
  cluster_->node(victim).set_available(false);

  advance(30 * sim::kSecond);
  EXPECT_EQ(nn().state_of(victim), DataNodeState::kLive);
  advance(2 * sim::kMinute);
  EXPECT_EQ(nn().state_of(victim), DataNodeState::kHibernated);
  advance(10 * sim::kMinute);
  EXPECT_EQ(nn().state_of(victim), DataNodeState::kDead);

  // Heartbeats resume -> node revives.
  cluster_->node(victim).set_available(true);
  advance(10 * sim::kSecond);
  EXPECT_EQ(nn().state_of(victim), DataNodeState::kLive);
}

TEST_F(NameNodeTest, HibernateDisabledSkipsHibernation) {
  DfsConfig cfg;
  cfg.hibernate_enabled = false;
  build(cfg);
  const NodeId victim = volatile_ids_[0];
  cluster_->node(victim).set_available(false);
  advance(3 * sim::kMinute);
  EXPECT_EQ(nn().state_of(victim), DataNodeState::kLive);
  advance(10 * sim::kMinute);
  EXPECT_EQ(nn().state_of(victim), DataNodeState::kDead);
}

TEST_F(NameNodeTest, HibernationReplicatesOnlyVulnerableOpportunisticBlocks) {
  build();
  // Block A: opportunistic without dedicated copy (vulnerable).
  const FileId fa = nn().create_file("a", FileKind::kOpportunistic, {0, 2});
  const BlockId a = nn().add_block(fa, 100);
  nn().commit_replica(a, volatile_ids_[0]);
  nn().commit_replica(a, volatile_ids_[1]);
  // Block B: opportunistic with a dedicated copy (protected).
  const FileId fb = nn().create_file("b", FileKind::kOpportunistic, {1, 1});
  const BlockId bb = nn().add_block(fb, 100);
  nn().commit_replica(bb, volatile_ids_[0]);
  nn().commit_replica(bb, dedicated_ids_[0]);
  // Block C: reliable (protected).
  const FileId fc = nn().create_file("c", FileKind::kReliable, {1, 1});
  const BlockId c = nn().add_block(fc, 100);
  nn().commit_replica(c, volatile_ids_[0]);
  nn().commit_replica(c, dedicated_ids_[0]);

  const auto before = nn().stats().re_replications;
  cluster_->node(volatile_ids_[0]).set_available(false);
  advance(2 * sim::kMinute);  // hibernated
  ASSERT_EQ(nn().state_of(volatile_ids_[0]), DataNodeState::kHibernated);
  // Only block A re-queued.
  EXPECT_EQ(nn().stats().re_replications, before + 1);
  auto req = nn().next_replication_request();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->block, a);
}

TEST_F(NameNodeTest, BlockFactorCountsHibernatedWithDedicatedBackup) {
  build();
  const FileId f = nn().create_file("x", FileKind::kOpportunistic, {1, 2});
  const BlockId b = nn().add_block(f, 100);
  nn().commit_replica(b, dedicated_ids_[0]);
  nn().commit_replica(b, volatile_ids_[0]);
  nn().commit_replica(b, volatile_ids_[1]);
  EXPECT_TRUE(nn().block_meets_factor(b));

  cluster_->node(volatile_ids_[0]).set_available(false);
  advance(2 * sim::kMinute);  // hibernated
  // Hibernated replica retains its value because a dedicated copy exists.
  EXPECT_TRUE(nn().block_meets_factor(b));
}

TEST_F(NameNodeTest, DeadReplicasDoNotCount) {
  build();
  const FileId f = nn().create_file("x", FileKind::kOpportunistic, {0, 2});
  const BlockId b = nn().add_block(f, 100);
  nn().commit_replica(b, volatile_ids_[0]);
  nn().commit_replica(b, volatile_ids_[1]);
  EXPECT_TRUE(nn().block_meets_factor(b));
  cluster_->node(volatile_ids_[0]).set_available(false);
  advance(11 * sim::kMinute);  // dead
  EXPECT_FALSE(nn().block_meets_factor(b));
  const auto live = nn().live_replicas(b);
  EXPECT_EQ(live.volatile_count, 1);
  EXPECT_EQ(live.hibernated, 0);
}

TEST_F(NameNodeTest, ReplicationQueuePrioritisesReliableFiles) {
  build();
  const FileId fo = nn().create_file("opp", FileKind::kOpportunistic, {0, 2});
  const BlockId ob = nn().add_block(fo, 100);
  nn().commit_replica(ob, volatile_ids_[0]);
  const FileId fr = nn().create_file("rel", FileKind::kReliable, {1, 1});
  const BlockId rb = nn().add_block(fr, 100);
  nn().commit_replica(rb, volatile_ids_[1]);

  nn().enqueue_replication(ob);
  nn().enqueue_replication(rb);  // enqueued second, served first

  auto first = nn().next_replication_request();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->block, rb);
  EXPECT_TRUE(first->reliable);
  auto second = nn().next_replication_request();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->block, ob);
}

TEST_F(NameNodeTest, QueueSkipsRepairedAndRemovedBlocks) {
  build();
  const FileId f = nn().create_file("x", FileKind::kOpportunistic, {0, 2});
  const BlockId b = nn().add_block(f, 100);
  nn().commit_replica(b, volatile_ids_[0]);
  nn().enqueue_replication(b);
  nn().commit_replica(b, volatile_ids_[1]);  // repaired meanwhile
  EXPECT_FALSE(nn().next_replication_request().has_value());

  nn().enqueue_replication(b);
  nn().remove_file(f);  // removed meanwhile
  EXPECT_FALSE(nn().next_replication_request().has_value());
}

TEST_F(NameNodeTest, EnqueueIsDeduplicated) {
  build();
  const FileId f = nn().create_file("x", FileKind::kOpportunistic, {0, 3});
  const BlockId b = nn().add_block(f, 100);
  nn().commit_replica(b, volatile_ids_[0]);
  nn().enqueue_replication(b);
  nn().enqueue_replication(b);
  nn().enqueue_replication(b);
  EXPECT_EQ(nn().replication_queue_depth(), 1u);
}

TEST_F(NameNodeTest, PlanRepairPicksMissingDimension) {
  build();
  const FileId f = nn().create_file("x", FileKind::kOpportunistic, {1, 1});
  const BlockId b = nn().add_block(f, 100);
  nn().commit_replica(b, volatile_ids_[0]);  // volatile ok, dedicated missing
  Rng rng{9};
  const auto plan = nn().plan_repair(b, rng);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->source, volatile_ids_[0]);
  EXPECT_TRUE(cluster_->node(plan->target).dedicated());
}

TEST_F(NameNodeTest, PlanRepairUnrecoverableWithoutLiveSource) {
  build();
  const FileId f = nn().create_file("x", FileKind::kOpportunistic, {0, 2});
  const BlockId b = nn().add_block(f, 100);
  nn().commit_replica(b, volatile_ids_[0]);
  cluster_->node(volatile_ids_[0]).set_available(false);
  advance(11 * sim::kMinute);  // dead
  Rng rng{10};
  EXPECT_FALSE(nn().plan_repair(b, rng).has_value());
}

TEST_F(NameNodeTest, ConvertToReliableRequiresDedicatedCopy) {
  build();
  const FileId f = nn().create_file("out", FileKind::kOpportunistic, {1, 1});
  const BlockId b = nn().add_block(f, 100);
  nn().commit_replica(b, volatile_ids_[0]);
  nn().convert_to_reliable(f);
  EXPECT_EQ(nn().file(f).kind, FileKind::kReliable);
  EXPECT_FALSE(nn().block_meets_factor(b));  // dedicated copy still missing
  EXPECT_GE(nn().replication_queue_depth(), 1u);
  nn().commit_replica(b, dedicated_ids_[0]);
  EXPECT_TRUE(nn().block_meets_factor(b));
  EXPECT_TRUE(nn().try_complete_file(f));
  EXPECT_TRUE(nn().file(f).complete);
}

TEST_F(NameNodeTest, StateChangeListenersFire) {
  build();
  std::vector<std::pair<DataNodeState, DataNodeState>> transitions;
  nn().subscribe_state_changes(
      [&](NodeId, DataNodeState from, DataNodeState to) {
        transitions.emplace_back(from, to);
      });
  cluster_->node(volatile_ids_[0]).set_available(false);
  advance(2 * sim::kMinute);
  ASSERT_FALSE(transitions.empty());
  EXPECT_EQ(transitions.back().second, DataNodeState::kHibernated);
}

TEST_F(NameNodeTest, RemoveFileClearsBlocks) {
  build();
  const FileId f = nn().create_file("x", FileKind::kOpportunistic, {0, 1});
  const BlockId b = nn().add_block(f, 100);
  nn().commit_replica(b, volatile_ids_[0]);
  EXPECT_TRUE(nn().block_exists(b));
  nn().remove_file(f);
  EXPECT_FALSE(nn().block_exists(b));
  EXPECT_FALSE(nn().file_exists(f));
}

}  // namespace
}  // namespace moon::dfs
