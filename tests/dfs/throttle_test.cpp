// Unit tests for paper Algorithm 1 (I/O throttling on dedicated DataNodes).
#include "dfs/throttle.hpp"

#include <gtest/gtest.h>

namespace moon::dfs {
namespace {

TEST(Throttle, StartsUnthrottled) {
  ThrottleState t(4, 0.1);
  EXPECT_FALSE(t.throttled());
}

TEST(Throttle, FirstSampleNeverThrottles) {
  ThrottleState t(4, 0.1);
  EXPECT_FALSE(t.update(1000.0));
}

TEST(Throttle, RisingButFlatteningBandwidthThrottles) {
  // bw_i > avg but below avg * (1 + T_b): the node has hit its ceiling.
  ThrottleState t(4, 0.1);
  t.update(100.0);
  // avg = 100; 105 is higher but < 110 -> saturated.
  EXPECT_TRUE(t.update(105.0));
}

TEST(Throttle, SteeplyRisingBandwidthDoesNotThrottle) {
  // bw_i > avg * (1 + T_b): demand is still growing into headroom.
  ThrottleState t(4, 0.1);
  t.update(100.0);
  EXPECT_FALSE(t.update(150.0));  // 150 > 110
  EXPECT_FALSE(t.throttled());
}

TEST(Throttle, ClearDropUnthrottles) {
  ThrottleState t(4, 0.1);
  t.update(100.0);
  ASSERT_TRUE(t.update(105.0));  // throttled
  // avg now (100+105)/2 = 102.5; a clear drop below 92.25 releases.
  EXPECT_FALSE(t.update(80.0));
  EXPECT_FALSE(t.throttled());
}

TEST(Throttle, SmallDipKeepsThrottled) {
  // Hysteresis: a dip that stays within the band does not release.
  ThrottleState t(4, 0.1);
  t.update(100.0);
  ASSERT_TRUE(t.update(105.0));
  // avg = 102.5; 95 < avg but > avg*0.9 = 92.25 -> stays throttled.
  EXPECT_TRUE(t.update(95.0));
}

TEST(Throttle, EqualBandwidthChangesNothing) {
  ThrottleState t(4, 0.1);
  t.update(100.0);
  EXPECT_FALSE(t.update(100.0));  // neither > nor < avg
  t.update(105.0);                // throttles
  ASSERT_TRUE(t.throttled());
  const double avg = t.window_average();
  EXPECT_TRUE(t.update(avg));  // exactly average: state unchanged
}

TEST(Throttle, WindowAverageSlides) {
  ThrottleState t(2, 0.1);
  t.update(10.0);
  t.update(20.0);
  EXPECT_DOUBLE_EQ(t.window_average(), 15.0);
  t.update(40.0);  // window is now {20, 40}
  EXPECT_DOUBLE_EQ(t.window_average(), 30.0);
  EXPECT_EQ(t.samples_seen(), 3u);
}

TEST(Throttle, OscillationIsAbsorbed) {
  // The paper's motivation: load oscillation must not flap the state.
  ThrottleState t(8, 0.2);
  for (int i = 0; i < 4; ++i) t.update(100.0);
  t.update(110.0);  // rising within band -> throttled
  ASSERT_TRUE(t.throttled());
  // Oscillate mildly around the average: state must remain throttled.
  for (double bw : {108.0, 104.0, 109.0, 103.0, 107.0}) {
    t.update(bw);
    EXPECT_TRUE(t.throttled()) << "flapped at bw=" << bw;
  }
}

TEST(Throttle, RecoversAfterLoadFallsAway) {
  ThrottleState t(4, 0.1);
  for (double bw : {100.0, 104.0}) t.update(bw);
  ASSERT_TRUE(t.throttled());
  // Load drains: bandwidth collapses well below the window average.
  t.update(10.0);
  EXPECT_FALSE(t.throttled());
}

TEST(Throttle, ZeroWindowRejected) {
  EXPECT_THROW(ThrottleState(0, 0.1), std::logic_error);
  EXPECT_THROW(ThrottleState(4, -0.5), std::logic_error);
}

TEST(Throttle, IdleNodeNeverThrottles) {
  ThrottleState t(4, 0.1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(t.update(0.0));
  }
}

/// Parameterised sweep over thresholds: the throttle must engage when a
/// bandwidth ramp flattens, for any sane T_b.
class ThrottleThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThrottleThresholdSweep, EngagesOnPlateau) {
  const double tb = GetParam();
  ThrottleState t(4, tb);
  // Steep ramp: no throttling while growth beats the threshold.
  double bw = 100.0;
  t.update(bw);
  for (int i = 0; i < 4; ++i) {
    bw *= (1.0 + tb) * 1.5;  // clearly above the band
    t.update(bw);
    EXPECT_FALSE(t.throttled());
  }
  // Plateau: next sample barely above average -> saturated.
  t.update(t.window_average() * (1.0 + tb / 2.0));
  EXPECT_TRUE(t.throttled());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThrottleThresholdSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.4));

}  // namespace
}  // namespace moon::dfs
