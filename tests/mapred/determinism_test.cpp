// §2 determinism contract: no state-changing control flow may depend on
// unordered-container iteration order — or on registration order. The same
// scenario built with permuted tracker registration must produce
// bit-identical results: the liveness scan kills expiring trackers in
// NodeId order (not map order), heartbeats start in NodeId order (not
// add_tracker order), and the NameNode's death/hibernation sweeps enqueue
// replication in id order.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster/cluster.hpp"
#include "dfs/dfs.hpp"
#include "mapred/jobtracker.hpp"

namespace moon::mapred {
namespace {

struct Outcome {
  bool completed = false;
  sim::Time finished_at = 0;
  int launched_maps = 0;
  int launched_reduces = 0;
  int killed_maps = 0;
  int killed_reduces = 0;
  int map_reexecutions = 0;
  int speculative = 0;
  std::size_t replication_queue_depth = 0;

  bool operator==(const Outcome&) const = default;
};

/// One churn scenario, 6 volatile nodes, trackers registered in the given
/// order. Two nodes go silent mid-run long enough to expire (tracker death,
/// datanode death, re-pends, re-replication), then return.
Outcome run_with_registration(const std::vector<std::size_t>& order) {
  sim::Simulation sim(11);
  cluster::Cluster cluster(sim);
  cluster::NodeConfig vcfg;
  vcfg.type = cluster::NodeType::kVolatile;
  const auto nodes = cluster.add_nodes(6, vcfg);

  dfs::DfsConfig dfs_cfg;
  dfs_cfg.adaptive_replication = false;
  dfs::Dfs dfs(sim, cluster, dfs_cfg, 11);
  dfs.start();

  SchedulerConfig sched;
  sched.tracker_expiry = 60 * sim::kSecond;
  sched.suspension_interval = 0;
  sched.moon_scheduling = false;
  JobTracker jobtracker(sim, cluster, dfs, sched, 11);
  for (std::size_t i : order) jobtracker.add_tracker(nodes[i]);
  jobtracker.start();

  const FileId input =
      dfs.stage_blocks("in", dfs::FileKind::kReliable, {0, 2}, 8, kKiB);
  JobSpec spec;
  spec.name = "perm";
  spec.num_maps = 8;
  spec.num_reduces = 2;
  spec.input_file = input;
  spec.intermediate_per_map = kKiB;
  spec.output_per_reduce = kKiB;
  spec.map_compute = 30 * sim::kSecond;
  spec.reduce_compute = 30 * sim::kSecond;
  spec.compute_jitter = 0.0;
  spec.intermediate_kind = dfs::FileKind::kOpportunistic;
  spec.intermediate_factor = {0, 1};
  spec.output_factor = {0, 1};
  const JobId id = jobtracker.submit(spec);

  // Both outages start on the same tick: whichever scan order the control
  // plane uses decides the kill/re-pend/re-replicate sequence.
  sim.schedule_at(20 * sim::kSecond, [&] {
    cluster.node(nodes[1]).set_available(false);
    cluster.node(nodes[4]).set_available(false);
  });
  sim.schedule_at(5 * sim::kMinute, [&] {
    cluster.node(nodes[1]).set_available(true);
    cluster.node(nodes[4]).set_available(true);
  });

  const sim::Time deadline = 2 * sim::kHour;
  while (!jobtracker.job(id).finished() && sim.now() < deadline) {
    if (!sim.step()) break;
  }

  const JobMetrics& m = jobtracker.job(id).metrics();
  Outcome out;
  out.completed = m.completed;
  out.finished_at = m.finished_at;
  out.launched_maps = m.launched_map_attempts;
  out.launched_reduces = m.launched_reduce_attempts;
  out.killed_maps = m.killed_map_attempts;
  out.killed_reduces = m.killed_reduce_attempts;
  out.map_reexecutions = m.map_reexecutions;
  out.speculative = m.speculative_attempts;
  out.replication_queue_depth = dfs.namenode().replication_queue_depth();
  return out;
}

TEST(ControlPlaneDeterminism, PermutedTrackerRegistrationIsBitIdentical) {
  const Outcome forward = run_with_registration({0, 1, 2, 3, 4, 5});
  const Outcome reversed = run_with_registration({5, 4, 3, 2, 1, 0});
  const Outcome shuffled = run_with_registration({3, 0, 5, 1, 4, 2});

  EXPECT_TRUE(forward.completed);
  EXPECT_GT(forward.killed_maps + forward.killed_reduces +
                forward.map_reexecutions,
            0)
      << "scenario exercised no tracker deaths — weaken nothing, fix the churn";
  EXPECT_EQ(forward, reversed);
  EXPECT_EQ(forward, shuffled);
}

TEST(ControlPlaneDeterminism, RepeatedRunsAreBitIdentical) {
  // Same registration order twice: guards the baseline reproducibility the
  // permutation test builds on.
  const Outcome a = run_with_registration({0, 1, 2, 3, 4, 5});
  const Outcome b = run_with_registration({0, 1, 2, 3, 4, 5});
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace moon::mapred
