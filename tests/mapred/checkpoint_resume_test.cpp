// Integration: a reduce whose tracker expires resumes from its checkpoint
// instead of restarting cold, finishes sooner, and the metrics count it.
#include <gtest/gtest.h>

#include "mapred_fixture.hpp"

namespace moon::mapred {
namespace {

using testing::FixtureOptions;
using testing::MapRedHarness;

FixtureOptions churn_options(bool checkpointing) {
  FixtureOptions opt;
  opt.volatile_nodes = 3;
  opt.dedicated_nodes = 0;
  opt.num_maps = 1;
  opt.num_reduces = 1;
  opt.map_compute = 5 * sim::kSecond;
  opt.reduce_compute = 10 * sim::kMinute;  // long post-shuffle compute
  opt.intermediate_per_map = kMiB;
  opt.output_per_reduce = kMiB;
  opt.input_factor = {0, 3};
  opt.sched = testing::hadoop_sched(/*expiry=*/60 * sim::kSecond);
  opt.sched.checkpoint.enabled = checkpointing;
  opt.sched.checkpoint.scan_interval = 30 * sim::kSecond;
  opt.sched.checkpoint.min_progress_delta = 0.02;
  opt.sched.checkpoint.factor = {0, 2};
  return opt;
}

/// Runs the scripted outage: wait until the reduce is mid-compute, kill its
/// host for good, let the job finish elsewhere. Returns execution time (s).
double run_churn(MapRedHarness& h) {
  h.submit();
  // Maps (5 s) and the tiny shuffle are long done by t=180 s; the reduce is
  // ~25-30 % through its 600 s compute and has committed checkpoints.
  h.advance(3 * sim::kMinute);
  Job& job = h.job();
  const TaskId reduce = job.tasks_of(TaskType::kReduce).front();
  TaskAttempt* attempt = nullptr;
  for (AttemptId a : job.task(reduce).attempts) {
    if (job.attempt(a) != nullptr && !job.attempt(a)->terminal()) {
      attempt = job.attempt(a);
    }
  }
  EXPECT_NE(attempt, nullptr);
  if (attempt != nullptr) {
    h.set_node_available(attempt->tracker().node_id(), false);
  }
  EXPECT_TRUE(h.run_to_completion(sim::hours(4)));
  return job.metrics().execution_time_s();
}

TEST(CheckpointResume, KilledReduceResumesAndIsCounted) {
  MapRedHarness h(churn_options(/*checkpointing=*/true));
  run_churn(h);
  const JobMetrics& m = h.job().metrics();
  ASSERT_TRUE(m.completed);
  EXPECT_GE(m.checkpoints_written, 1);
  EXPECT_GT(m.checkpoint_bytes, 0);
  EXPECT_GE(m.checkpoint_resumes, 1);
  EXPECT_GT(m.checkpoint_progress_salvaged, 0.0);
  // The replacement attempt really did skip work: two reduce attempts ran
  // (original + resumed), one was killed with the tracker.
  EXPECT_GE(m.launched_reduce_attempts, 2);
  EXPECT_GE(m.killed_reduce_attempts, 1);
}

TEST(CheckpointResume, ResumeBeatsColdRerun) {
  MapRedHarness cold(churn_options(/*checkpointing=*/false));
  const double cold_time = run_churn(cold);
  ASSERT_TRUE(cold.job().metrics().completed);
  EXPECT_EQ(cold.job().metrics().checkpoint_resumes, 0);

  MapRedHarness warm(churn_options(/*checkpointing=*/true));
  const double warm_time = run_churn(warm);
  ASSERT_TRUE(warm.job().metrics().completed);
  EXPECT_GE(warm.job().metrics().checkpoint_resumes, 1);

  // The checkpoint salvaged a large slice of the 600 s compute; demand a
  // comfortably faster finish, not a tie-breaker.
  EXPECT_LT(warm_time, cold_time - 60.0);
}

TEST(CheckpointResume, CheckpointingOffWritesNothing) {
  MapRedHarness h(churn_options(/*checkpointing=*/false));
  h.submit();
  ASSERT_TRUE(h.run_to_completion());
  const JobMetrics& m = h.job().metrics();
  EXPECT_EQ(m.checkpoints_written, 0);
  EXPECT_EQ(m.checkpoint_bytes, 0);
  EXPECT_EQ(m.checkpoint_resumes, 0);
  EXPECT_EQ(h.jobtracker().checkpoint_store().stats().emits_started, 0);
}

TEST(CheckpointResume, CompletedReduceGarbageCollectsItsLog) {
  MapRedHarness h(churn_options(/*checkpointing=*/true));
  h.submit();
  ASSERT_TRUE(h.run_to_completion());
  // Every record was dropped when its reduce completed / the job committed.
  EXPECT_EQ(h.jobtracker().checkpoint_store().record_count(), 0u);
}

}  // namespace
}  // namespace moon::mapred
