// Shared fixture for MapReduce-layer tests: a small cluster with a running
// DFS and JobTracker, node availability driven directly by the test.
#pragma once

#include <memory>

#include "cluster/cluster.hpp"
#include "dfs/dfs.hpp"
#include "mapred/jobtracker.hpp"
#include "workload/workload.hpp"

namespace moon::mapred::testing {

struct FixtureOptions {
  std::size_t volatile_nodes = 4;
  std::size_t dedicated_nodes = 1;
  SchedulerConfig sched;
  dfs::DfsConfig dfs;
  int num_maps = 4;
  int num_reduces = 2;
  sim::Duration map_compute = 10 * sim::kSecond;
  sim::Duration reduce_compute = 10 * sim::kSecond;
  Bytes intermediate_per_map = kKiB;
  Bytes output_per_reduce = kKiB;
  dfs::FileKind intermediate_kind = dfs::FileKind::kReliable;
  dfs::ReplicationFactor intermediate_factor{1, 1};
  dfs::ReplicationFactor output_factor{1, 1};
  dfs::ReplicationFactor input_factor{1, 2};
};

class MapRedHarness {
 public:
  explicit MapRedHarness(FixtureOptions options = {})
      : options_(normalize(std::move(options))), sim_(7), cluster_(sim_) {
    cluster::NodeConfig vcfg;
    vcfg.type = cluster::NodeType::kVolatile;
    volatile_ids = cluster_.add_nodes(options_.volatile_nodes, vcfg);
    cluster::NodeConfig dcfg;
    dcfg.type = cluster::NodeType::kDedicated;
    dedicated_ids = cluster_.add_nodes(options_.dedicated_nodes, dcfg);

    dfs_ = std::make_unique<dfs::Dfs>(sim_, cluster_, options_.dfs, 5);
    dfs_->start();
    jobtracker_ = std::make_unique<JobTracker>(sim_, cluster_, *dfs_,
                                               options_.sched, 5);
    jobtracker_->add_all_trackers();
    jobtracker_->start();

    input_ = dfs_->stage_blocks("in", dfs::FileKind::kReliable,
                                options_.input_factor, options_.num_maps, kKiB);
  }

  JobId submit() {
    JobSpec spec;
    spec.name = "test";
    spec.num_maps = options_.num_maps;
    spec.num_reduces = options_.num_reduces;
    spec.input_file = input_;
    spec.intermediate_per_map = options_.intermediate_per_map;
    spec.output_per_reduce = options_.output_per_reduce;
    spec.map_compute = options_.map_compute;
    spec.reduce_compute = options_.reduce_compute;
    spec.compute_jitter = 0.0;  // deterministic task lengths for assertions
    spec.intermediate_kind = options_.intermediate_kind;
    spec.intermediate_factor = options_.intermediate_factor;
    spec.output_factor = options_.output_factor;
    job_id_ = jobtracker_->submit(spec);
    return job_id_;
  }

  /// Stages a fresh input and submits a custom-sized job — multi-job tests
  /// submit several of these against one tracker fleet.
  JobId submit_job(const std::string& name, int maps, int reduces,
                   sim::Duration map_compute = 10 * sim::kSecond,
                   sim::Duration reduce_compute = 10 * sim::kSecond) {
    const FileId input = dfs_->stage_blocks(
        name + ".in", dfs::FileKind::kReliable, options_.input_factor, maps,
        kKiB);
    JobSpec spec;
    spec.name = name;
    spec.num_maps = maps;
    spec.num_reduces = reduces;
    spec.input_file = input;
    spec.intermediate_per_map = options_.intermediate_per_map;
    spec.output_per_reduce = options_.output_per_reduce;
    spec.map_compute = map_compute;
    spec.reduce_compute = reduce_compute;
    spec.compute_jitter = 0.0;
    spec.intermediate_kind = options_.intermediate_kind;
    spec.intermediate_factor = options_.intermediate_factor;
    spec.output_factor = options_.output_factor;
    return jobtracker_->submit(spec);
  }

  /// Runs until every job in `ids` finishes or `limit` elapses.
  bool run_jobs_to_completion(const std::vector<JobId>& ids,
                              sim::Duration limit = sim::hours(4)) {
    const sim::Time deadline = sim_.now() + limit;
    const auto all_done = [&] {
      for (JobId id : ids) {
        if (!jobtracker_->job(id).finished()) return false;
      }
      return true;
    };
    while (!all_done() && sim_.now() < deadline) {
      if (!sim_.step()) break;
    }
    for (JobId id : ids) {
      if (!jobtracker_->job(id).metrics().completed) return false;
    }
    return true;
  }

  Job& job() { return jobtracker_->job(job_id_); }
  JobTracker& jobtracker() { return *jobtracker_; }
  dfs::Dfs& dfs() { return *dfs_; }
  cluster::Cluster& cluster() { return cluster_; }
  sim::Simulation& sim() { return sim_; }

  void advance(sim::Duration d) { sim_.run_until(sim_.now() + d); }

  /// Runs until the job finishes or `limit` elapses; returns success.
  bool run_to_completion(sim::Duration limit = sim::hours(4)) {
    const sim::Time deadline = sim_.now() + limit;
    while (!job().finished() && sim_.now() < deadline) {
      if (!sim_.step()) break;
    }
    return job().metrics().completed;
  }

  void set_node_available(NodeId id, bool up) {
    cluster_.node(id).set_available(up);
  }

  std::vector<NodeId> volatile_ids;
  std::vector<NodeId> dedicated_ids;

 private:
  /// A cluster without a dedicated tier cannot satisfy dedicated-replica
  /// requirements; drop them (and the reliable-file normalisation that
  /// would re-add them) so such configs behave like plain Hadoop setups.
  static FixtureOptions normalize(FixtureOptions options) {
    if (options.dedicated_nodes == 0) {
      options.dfs.adaptive_replication = false;
      options.input_factor.dedicated = 0;
      options.intermediate_factor.dedicated = 0;
      options.output_factor.dedicated = 0;
    }
    return options;
  }

  FixtureOptions options_;
  sim::Simulation sim_;
  cluster::Cluster cluster_;
  std::unique_ptr<dfs::Dfs> dfs_;
  std::unique_ptr<JobTracker> jobtracker_;
  FileId input_;
  JobId job_id_;
};

inline SchedulerConfig hadoop_sched(sim::Duration expiry = 60 * sim::kSecond) {
  SchedulerConfig cfg;
  cfg.tracker_expiry = expiry;
  cfg.suspension_interval = 0;
  cfg.moon_scheduling = false;
  return cfg;
}

inline SchedulerConfig moon_sched(bool hybrid = false) {
  SchedulerConfig cfg;
  cfg.tracker_expiry = 30 * sim::kMinute;
  cfg.suspension_interval = 30 * sim::kSecond;
  cfg.moon_scheduling = true;
  cfg.hybrid_aware = hybrid;
  return cfg;
}

}  // namespace moon::mapred::testing
