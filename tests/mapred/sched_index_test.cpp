// Scheduler-index maintenance edge cases (the kIndexed hot path):
// failure -> re-pending re-insertion ordering, replica add/loss updating the
// locality buckets mid-job, counter aggregates (running-speculative, live
// slots) staying exact across tracker suspension/expiry churn, and index
// sizes tracking task state transitions.
#include <gtest/gtest.h>

#include "mapred/jobtracker.hpp"
#include "mapred_fixture.hpp"

namespace moon::mapred {
namespace {

using testing::FixtureOptions;
using testing::MapRedHarness;

FixtureOptions small_moon(SchedulerConfig::IndexMode mode) {
  FixtureOptions opt;
  opt.sched = testing::moon_sched();
  opt.sched.index_mode = mode;
  opt.volatile_nodes = 3;
  opt.dedicated_nodes = 1;
  opt.num_maps = 6;
  opt.num_reduces = 2;
  return opt;
}

/// Recomputes the running-speculative count from first principles (public
/// attempt records), independent of both the counter and the scan.
int recount_running_speculative(Job& job) {
  int n = 0;
  for (TaskType type : {TaskType::kMap, TaskType::kReduce}) {
    for (TaskId id : job.tasks_of(type)) {
      for (AttemptId a : job.task(id).attempts) {
        TaskAttempt* attempt = job.attempt(a);
        if (attempt != nullptr && attempt->state() == AttemptState::kRunning &&
            attempt->speculative()) {
          ++n;
        }
      }
    }
  }
  return n;
}

int recount_live_slots(JobTracker& jt) {
  int slots = 0;
  for (TaskTracker* t : jt.trackers()) {
    if (jt.tracker_state(t->node_id()) == TrackerState::kLive) {
      slots += t->map_slots() + t->reduce_slots();
    }
  }
  return slots;
}

TEST(SchedIndex, PendingIndicesTrackSubmissionAndLaunch) {
  FixtureOptions opt = small_moon(SchedulerConfig::IndexMode::kIndexed);
  opt.map_compute = 2 * sim::kMinute;  // maps still running at the probe
  MapRedHarness h(opt);
  h.submit();
  // Before any heartbeat fires, everything is pending and indexed.
  EXPECT_EQ(h.job().pending_index_size(TaskType::kMap), 6u);
  EXPECT_EQ(h.job().pending_index_size(TaskType::kReduce), 2u);
  EXPECT_EQ(h.job().running_index_size(TaskType::kMap), 0u);
  h.advance(30 * sim::kSecond);  // heartbeats placed work
  EXPECT_LT(h.job().pending_index_size(TaskType::kMap), 6u);
  EXPECT_GT(h.job().running_index_size(TaskType::kMap), 0u);
  ASSERT_TRUE(h.run_to_completion());
  EXPECT_EQ(h.job().pending_index_size(TaskType::kMap), 0u);
  EXPECT_EQ(h.job().running_index_size(TaskType::kMap), 0u);
  EXPECT_EQ(h.job().pending_index_size(TaskType::kReduce), 0u);
}

TEST(SchedIndex, RevertedMapReinsertsWithFailedPriority) {
  // A reverted completed map re-enters the pending index in the failed
  // class: both modes must hand it out before untouched fresh tasks.
  for (const auto mode : {SchedulerConfig::IndexMode::kIndexed,
                          SchedulerConfig::IndexMode::kScan}) {
    FixtureOptions opt = small_moon(mode);
    opt.num_maps = 8;
    opt.volatile_nodes = 2;
    opt.dedicated_nodes = 0;
    opt.map_compute = 30 * sim::kSecond;
    MapRedHarness h(opt);
    h.submit();
    // Let some maps complete while others are still pending-fresh.
    Job& job = h.job();
    while (job.completed_tasks(TaskType::kMap) < 2 &&
           h.sim().now() < sim::hours(1)) {
      h.advance(5 * sim::kSecond);
    }
    ASSERT_GE(job.completed_tasks(TaskType::kMap), 2);
    ASSERT_GT(job.pending_index_size(TaskType::kMap) +
                  job.running_index_size(TaskType::kMap),
              0u);
    TaskId reverted = TaskId::invalid();
    for (TaskId id : job.tasks_of(TaskType::kMap)) {
      if (job.task(id).state == TaskState::kCompleted) {
        reverted = id;
        break;
      }
    }
    ASSERT_TRUE(reverted.valid());
    job.revert_map(reverted);
    EXPECT_EQ(job.task(reverted).state, TaskState::kPending);
    EXPECT_GT(job.task(reverted).failures, 0);
    // The failed-first ranking puts the reverted map ahead of every fresh
    // pending task, from any tracker.
    for (TaskTracker* t : h.jobtracker().trackers()) {
      const auto choice = job.pick_pending(TaskType::kMap, *t);
      ASSERT_TRUE(choice.has_value());
      EXPECT_EQ(*choice, reverted) << "mode "
                                   << (mode == SchedulerConfig::IndexMode::kIndexed
                                           ? "indexed"
                                           : "scan");
    }
  }
}

TEST(SchedIndex, ReplicaChurnUpdatesLocalityBuckets) {
  MapRedHarness h(small_moon(SchedulerConfig::IndexMode::kIndexed));
  h.submit();
  auto& nn = h.dfs().namenode();
  Job& job = h.job();

  // Pick a pending map and one of its replica holders.
  const TaskId map0 = job.tasks_of(TaskType::kMap)[0];
  const BlockId input = job.task(map0).input_block;
  ASSERT_TRUE(nn.block_exists(input));
  ASSERT_FALSE(nn.block(input).replicas.empty());
  const NodeId holder = nn.block(input).replicas.front();
  const std::size_t before = job.locality_bucket_size(holder);
  ASSERT_GT(before, 0u);

  // Replica loss mid-job invalidates the bucket entry...
  nn.drop_replica(input, holder);
  EXPECT_EQ(job.locality_bucket_size(holder), before - 1);
  // ...and indexed vs scan picks still agree from that node's tracker.
  TaskTracker* tracker = nullptr;
  for (TaskTracker* t : h.jobtracker().trackers()) {
    if (t->node_id() == holder) tracker = t;
  }
  ASSERT_NE(tracker, nullptr);
  const auto indexed_choice = job.pick_pending(TaskType::kMap, *tracker);
  ASSERT_TRUE(indexed_choice.has_value());
  // Re-add the replica: the bucket entry returns and locality preference
  // snaps back to map0 (lowest schedule order among local candidates).
  nn.commit_replica(input, holder);
  EXPECT_EQ(job.locality_bucket_size(holder), before);
  const auto restored = job.pick_pending(TaskType::kMap, *tracker);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, map0);
}

TEST(SchedIndex, SpeculativeCounterSurvivesSuspensionChurn) {
  // set_inactive flips attempts kRunning <-> kInactive on suspension and
  // recovery; the maintained counter must track the recount exactly.
  FixtureOptions opt = small_moon(SchedulerConfig::IndexMode::kIndexed);
  opt.map_compute = 8 * sim::kMinute;
  opt.num_maps = 4;
  opt.num_reduces = 1;
  MapRedHarness h(opt);
  h.submit();
  h.advance(30 * sim::kSecond);
  h.set_node_available(h.volatile_ids[0], false);
  h.advance(2 * sim::kMinute);  // suspension detected, frozen rescue runs
  EXPECT_EQ(h.job().running_speculative(),
            recount_running_speculative(h.job()));
  h.set_node_available(h.volatile_ids[0], true);
  h.advance(2 * sim::kMinute);  // reactivation flips attempts back
  EXPECT_EQ(h.job().running_speculative(),
            recount_running_speculative(h.job()));
  h.set_node_available(h.volatile_ids[1], false);
  h.advance(40 * sim::kMinute);  // expiry kills the hosted attempts
  EXPECT_EQ(h.job().running_speculative(),
            recount_running_speculative(h.job()));
}

TEST(SchedIndex, SlotCountersTrackSuspensionAndExpiry) {
  FixtureOptions opt = small_moon(SchedulerConfig::IndexMode::kIndexed);
  opt.map_compute = 8 * sim::kMinute;
  MapRedHarness h(opt);
  h.submit();
  JobTracker& jt = h.jobtracker();
  const int full = recount_live_slots(jt);
  EXPECT_EQ(jt.available_execution_slots(), full);

  h.advance(20 * sim::kSecond);
  h.set_node_available(h.volatile_ids[0], false);
  h.advance(2 * sim::kMinute);  // > SuspensionInterval
  EXPECT_EQ(jt.tracker_state(h.volatile_ids[0]), TrackerState::kSuspended);
  EXPECT_EQ(jt.available_execution_slots(), recount_live_slots(jt));
  EXPECT_LT(jt.available_execution_slots(), full);

  h.advance(40 * sim::kMinute);  // > TrackerExpiryInterval
  EXPECT_EQ(jt.tracker_state(h.volatile_ids[0]), TrackerState::kDead);
  EXPECT_EQ(jt.available_execution_slots(), recount_live_slots(jt));

  h.set_node_available(h.volatile_ids[0], true);
  h.advance(30 * sim::kSecond);  // heartbeat revives the tracker
  EXPECT_EQ(jt.tracker_state(h.volatile_ids[0]), TrackerState::kLive);
  EXPECT_EQ(jt.available_execution_slots(), full);
  EXPECT_EQ(jt.total_slots(TaskType::kMap) + jt.total_slots(TaskType::kReduce),
            full);
}

/// Recomputes the checkpoint shield from public attempt records, bypassing
/// the live-attempt cache the kIndexed path reads.
bool recount_shielded(Job& job, TaskId id) {
  const auto& policy = job.jobtracker().checkpoint_policy();
  if (!policy.config().enabled) return false;
  for (AttemptId a : job.task(id).attempts) {
    TaskAttempt* attempt = job.attempt(a);
    if (attempt != nullptr && attempt->state() == AttemptState::kRunning &&
        attempt->resumed() &&
        policy.shields_speculation(attempt->progress())) {
      return true;
    }
  }
  return false;
}

TEST(SchedIndex, CheckpointShieldedTaskExcludedFromSpeculation) {
  // A reduce resumed near-complete from a checkpoint must not collect
  // backup copies through the indexed speculation path: the cache-backed
  // shield must agree with a from-scratch recount for the whole run, and
  // once shielded the task gains no further speculative attempts.
  FixtureOptions opt;
  opt.sched = testing::moon_sched();
  opt.sched.index_mode = SchedulerConfig::IndexMode::kIndexed;
  opt.sched.checkpoint.enabled = true;
  opt.sched.checkpoint.scan_interval = 30 * sim::kSecond;
  opt.sched.checkpoint.min_progress_delta = 0.02;
  opt.sched.checkpoint.factor = {0, 2};
  opt.sched.min_age_for_speculation = 30 * sim::kSecond;
  opt.volatile_nodes = 4;
  opt.dedicated_nodes = 0;
  opt.num_maps = 1;
  opt.num_reduces = 1;
  opt.map_compute = 5 * sim::kSecond;
  opt.reduce_compute = 10 * sim::kMinute;
  opt.intermediate_per_map = kMiB;
  opt.output_per_reduce = kMiB;
  opt.input_factor = {0, 3};
  MapRedHarness h(opt);
  h.submit();
  // Let the reduce get deep into its compute and commit checkpoints, then
  // kill its host for good: the relocated attempt resumes from the log.
  h.advance(5 * sim::kMinute);
  Job& job = h.job();
  const TaskId reduce = job.tasks_of(TaskType::kReduce).front();
  TaskAttempt* attempt = nullptr;
  for (AttemptId a : job.task(reduce).attempts) {
    if (job.attempt(a) != nullptr && !job.attempt(a)->terminal()) {
      attempt = job.attempt(a);
    }
  }
  ASSERT_NE(attempt, nullptr);
  h.set_node_available(attempt->tracker().node_id(), false);

  bool ever_shielded = false;
  int spec_launches_while_shielded = 0;
  int last_spec = job.metrics().speculative_attempts;
  for (int step = 0; step < 600 && !job.finished(); ++step) {
    h.advance(10 * sim::kSecond);
    const bool shielded = job.checkpoint_shielded(reduce);
    EXPECT_EQ(shielded, recount_shielded(job, reduce))
        << "cache-backed shield diverged from recount at step " << step;
    const int spec = job.metrics().speculative_attempts;
    if (shielded && spec > last_spec &&
        job.task(reduce).state == TaskState::kRunning) {
      // New speculative launches while the reduce is shielded may target
      // other tasks, but not the shielded reduce (unless it froze).
      for (AttemptId a : job.task(reduce).attempts) {
        TaskAttempt* sp = job.attempt(a);
        if (sp != nullptr && sp->speculative() && !sp->terminal() &&
            sp->started_at() + 10 * sim::kSecond >= h.sim().now() &&
            job.active_attempts(reduce) > 0) {
          ++spec_launches_while_shielded;
        }
      }
    }
    ever_shielded = ever_shielded || shielded;
    last_spec = spec;
  }
  EXPECT_TRUE(ever_shielded) << "resume never engaged the shield";
  EXPECT_EQ(spec_launches_while_shielded, 0);
  ASSERT_TRUE(h.run_to_completion(sim::hours(8)));
  EXPECT_GE(job.metrics().checkpoint_resumes, 1);
  // A completed job retains nothing in any scheduling index.
  for (TaskType type : {TaskType::kMap, TaskType::kReduce}) {
    EXPECT_EQ(h.job().running_index_size(type), 0u);
    EXPECT_EQ(h.job().pending_index_size(type), 0u);
  }
  EXPECT_EQ(h.job().running_speculative(), 0);
}

}  // namespace
}  // namespace moon::mapred
