// SchedulerConfig::heartbeat_phase: kStaggered must stay on the §2
// determinism contract — bit-identical outcomes for the same (seed, config)
// and under permuted tracker registration — while actually de-synchronizing
// the trackers. kAligned stays the default and is what every golden
// equivalence suite runs; see the schedule-divergence caveat on the enum
// (staggered runs are NOT comparable with aligned ones).
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "dfs/dfs.hpp"
#include "mapred/jobtracker.hpp"

namespace moon::mapred {
namespace {

struct Outcome {
  bool completed = false;
  sim::Time finished_at = 0;
  int launched_maps = 0;
  int launched_reduces = 0;
  int killed_maps = 0;
  int speculative = 0;
  std::uint64_t heartbeats = 0;

  bool operator==(const Outcome&) const = default;
};

Outcome run_with(SchedulerConfig::HeartbeatPhase phase,
                 const std::vector<std::size_t>& registration_order) {
  sim::Simulation sim(23);
  cluster::Cluster cluster(sim);
  cluster::NodeConfig vcfg;
  vcfg.type = cluster::NodeType::kVolatile;
  const auto nodes = cluster.add_nodes(6, vcfg);

  dfs::DfsConfig dfs_cfg;
  dfs_cfg.adaptive_replication = false;
  dfs::Dfs dfs(sim, cluster, dfs_cfg, 23);
  dfs.start();

  SchedulerConfig sched;
  sched.tracker_expiry = 60 * sim::kSecond;
  sched.heartbeat_phase = phase;
  JobTracker jobtracker(sim, cluster, dfs, sched, 23);
  for (std::size_t i : registration_order) jobtracker.add_tracker(nodes[i]);
  jobtracker.start();

  const FileId input =
      dfs.stage_blocks("in", dfs::FileKind::kReliable, {0, 2}, 8, kKiB);
  JobSpec spec;
  spec.name = "phase";
  spec.num_maps = 8;
  spec.num_reduces = 2;
  spec.input_file = input;
  spec.intermediate_per_map = kKiB;
  spec.output_per_reduce = kKiB;
  spec.map_compute = 20 * sim::kSecond;
  spec.reduce_compute = 20 * sim::kSecond;
  spec.compute_jitter = 0.0;
  spec.intermediate_factor = {0, 1};
  spec.output_factor = {0, 1};
  const JobId id = jobtracker.submit(spec);

  // One outage mid-run so the phase interacts with suspensions/kills too.
  sim.schedule_at(30 * sim::kSecond, [&] {
    cluster.node(nodes[2]).set_available(false);
  });
  sim.schedule_at(3 * sim::kMinute, [&] {
    cluster.node(nodes[2]).set_available(true);
  });
  sim.run_until(30 * sim::kMinute);

  const Job& job = jobtracker.job(id);
  Outcome out;
  out.completed = job.metrics().completed;
  out.finished_at = job.metrics().finished_at;
  out.launched_maps = job.metrics().launched_map_attempts;
  out.launched_reduces = job.metrics().launched_reduce_attempts;
  out.killed_maps = job.metrics().killed_map_attempts;
  out.speculative = job.metrics().speculative_attempts;
  out.heartbeats = jobtracker.heartbeats_served();
  return out;
}

TEST(HeartbeatPhase, StaggeredRunsAreReproducible) {
  const std::vector<std::size_t> order{0, 1, 2, 3, 4, 5};
  const Outcome a = run_with(SchedulerConfig::HeartbeatPhase::kStaggered, order);
  const Outcome b = run_with(SchedulerConfig::HeartbeatPhase::kStaggered, order);
  EXPECT_TRUE(a.completed);
  EXPECT_EQ(a, b);
}

TEST(HeartbeatPhase, StaggeredIsRegistrationOrderIndependent) {
  // Offsets are drawn in NodeId order at start(), not registration order, so
  // permuting add_tracker calls must not move any tracker's phase.
  const Outcome a = run_with(SchedulerConfig::HeartbeatPhase::kStaggered,
                             {0, 1, 2, 3, 4, 5});
  const Outcome b = run_with(SchedulerConfig::HeartbeatPhase::kStaggered,
                             {5, 3, 1, 4, 0, 2});
  EXPECT_EQ(a, b);
}

TEST(HeartbeatPhase, AlignedDefaultIsUnchangedAndDistinctFromStaggered) {
  const std::vector<std::size_t> order{0, 1, 2, 3, 4, 5};
  const Outcome aligned =
      run_with(SchedulerConfig::HeartbeatPhase::kAligned, order);
  const Outcome staggered =
      run_with(SchedulerConfig::HeartbeatPhase::kStaggered, order);
  EXPECT_TRUE(aligned.completed);
  EXPECT_TRUE(staggered.completed);
  // The documented caveat, demonstrated: de-synchronized beats change the
  // heartbeat arrival sequence, so the schedules legitimately diverge.
  EXPECT_NE(aligned.finished_at, staggered.finished_at);
}

}  // namespace
}  // namespace moon::mapred
