// LATE speculator tests.
#include <gtest/gtest.h>

#include "mapred/speculation.hpp"
#include "mapred_fixture.hpp"

namespace moon::mapred {
namespace {

using testing::FixtureOptions;
using testing::MapRedHarness;

SchedulerConfig late_sched(sim::Duration expiry = 60 * sim::kSecond) {
  SchedulerConfig cfg;
  cfg.tracker_expiry = expiry;
  cfg.suspension_interval = 0;
  cfg.moon_scheduling = false;
  cfg.speculator = SchedulerConfig::Speculator::kLate;
  return cfg;
}

TEST(LateSpeculation, NoBackupsOnHealthyHomogeneousCluster) {
  FixtureOptions opt;
  opt.sched = late_sched();
  MapRedHarness h(opt);
  h.submit();
  ASSERT_TRUE(h.run_to_completion());
  // All rates are (almost) equal: nothing falls below the 25th percentile
  // by enough to be worth speculating before tasks complete.
  EXPECT_LE(h.job().metrics().speculative_attempts, 1);
}

TEST(LateSpeculation, EstimatesTimeLeftFromProgressRate) {
  FixtureOptions opt;
  opt.sched = late_sched();
  opt.map_compute = 100 * sim::kSecond;
  opt.volatile_nodes = 2;
  opt.dedicated_nodes = 0;
  opt.num_maps = 2;
  opt.num_reduces = 1;
  MapRedHarness h(opt);
  h.submit();
  h.advance(30 * sim::kSecond);
  LateSpeculator late(h.jobtracker());
  const TaskId m0 = h.job().tasks_of(TaskType::kMap)[0];
  ASSERT_EQ(h.job().task(m0).state, TaskState::kRunning);
  const double rate = late.progress_rate(h.job(), m0);
  EXPECT_GT(rate, 0.0);
  const double left = late.estimated_time_left(h.job(), m0);
  // ~30 s in of ~103 s total work: plausibly 60-90 s left.
  EXPECT_GT(left, 20.0);
  EXPECT_LT(left, 200.0);
}

TEST(LateSpeculation, StalledTaskHasInfiniteTimeLeftAndGetsBackup) {
  FixtureOptions opt;
  opt.sched = late_sched(30 * sim::kMinute);  // no expiry interference
  opt.map_compute = 5 * sim::kMinute;
  opt.volatile_nodes = 4;
  opt.dedicated_nodes = 0;
  opt.num_maps = 2;
  opt.num_reduces = 1;
  MapRedHarness h(opt);
  h.submit();
  h.advance(20 * sim::kSecond);
  // Freeze one map's host: its progress rate decays; LATE ranks it worst.
  NodeId victim = NodeId::invalid();
  TaskId frozen = TaskId::invalid();
  for (TaskId m : h.job().tasks_of(TaskType::kMap)) {
    for (AttemptId a : h.job().task(m).attempts) {
      auto* attempt = h.job().attempt(a);
      if (attempt != nullptr && !attempt->terminal()) {
        victim = attempt->tracker().node_id();
        frozen = m;
        break;
      }
    }
    if (victim.valid()) break;
  }
  ASSERT_TRUE(victim.valid());
  h.set_node_available(victim, false);
  h.advance(5 * sim::kMinute);
  // The frozen task received a speculative copy (rate fell below the
  // percentile; time-left ranks it first).
  EXPECT_GT(h.job().metrics().speculative_attempts, 0);
  EXPECT_GE(h.job().non_terminal_attempts(frozen), 1);
  ASSERT_TRUE(h.run_to_completion());
}

TEST(LateSpeculation, CapLimitsBackups) {
  FixtureOptions opt;
  opt.sched = late_sched(30 * sim::kMinute);
  opt.sched.late_cap_fraction = 0.0;  // cap = 0: LATE may never speculate
  opt.map_compute = 3 * sim::kMinute;
  opt.volatile_nodes = 4;
  opt.dedicated_nodes = 0;
  opt.num_maps = 2;
  opt.num_reduces = 1;
  MapRedHarness h(opt);
  h.submit();
  h.advance(20 * sim::kSecond);
  h.set_node_available(h.volatile_ids[0], false);
  h.advance(5 * sim::kMinute);
  EXPECT_EQ(h.job().metrics().speculative_attempts, 0);
}

TEST(LateSpeculation, PresetWiringSelectsLate) {
  // The scheduler enum reaches the JobTracker: a LATE-config job with a
  // stalled task speculates even though moon_scheduling is off.
  FixtureOptions opt;
  opt.sched = late_sched(30 * sim::kMinute);
  opt.map_compute = 5 * sim::kMinute;
  opt.volatile_nodes = 3;
  opt.dedicated_nodes = 0;
  opt.num_maps = 2;
  opt.num_reduces = 1;
  MapRedHarness h(opt);
  h.submit();
  h.advance(20 * sim::kSecond);
  h.set_node_available(h.volatile_ids[0], false);
  h.advance(6 * sim::kMinute);
  h.set_node_available(h.volatile_ids[0], true);
  ASSERT_TRUE(h.run_to_completion());
}

}  // namespace
}  // namespace moon::mapred
