// AdmissionController (DESIGN.md §16): cap enforcement per policy —
// reject-newest refuses arrivals over the queue cap, defer-with-backoff
// parks them behind a deterministic Retrier and admits FIFO as capacity
// frees (rejecting the over-aged), shed-lowest-priority evicts a running
// job to make room — plus the sequence hash that certifies bit-identical
// decision streams across same-seed runs.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "mapred/admission.hpp"
#include "mapred_fixture.hpp"

namespace moon::mapred {
namespace {

using testing::FixtureOptions;
using testing::MapRedHarness;

FixtureOptions admission_options(AdmissionConfig::Policy policy,
                                 int max_queued) {
  FixtureOptions options;
  options.volatile_nodes = 2;
  options.dedicated_nodes = 1;
  options.sched = testing::hadoop_sched(10 * sim::kMinute);
  options.sched.admission.enabled = true;
  options.sched.admission.policy = policy;
  options.sched.admission.max_queued_jobs = max_queued;
  return options;
}

/// Stages input through the harness DFS and builds a spec the tests can
/// offer to the controller (the fixture's submit_job bypasses admission).
JobSpec make_spec(MapRedHarness& h, const std::string& name, int maps,
                  int priority = 0,
                  sim::Duration map_compute = 10 * sim::kSecond) {
  JobSpec spec;
  spec.name = name;
  spec.num_maps = maps;
  spec.num_reduces = 1;
  spec.input_file = h.dfs().stage_blocks(name + ".in", dfs::FileKind::kReliable,
                                         {1, 2}, maps, kKiB);
  spec.intermediate_per_map = kKiB;
  spec.output_per_reduce = kKiB;
  spec.map_compute = map_compute;
  spec.reduce_compute = 10 * sim::kSecond;
  spec.compute_jitter = 0.0;
  // The default output factor {1,3} wants 3 volatile replicas; this harness
  // has 2 volatile nodes, so jobs would never commit.
  spec.intermediate_kind = dfs::FileKind::kReliable;
  spec.intermediate_factor = {1, 1};
  spec.output_factor = {1, 1};
  spec.priority = priority;
  return spec;
}

TEST(Admission, RejectNewestCapsLiveJobs) {
  MapRedHarness h(
      admission_options(AdmissionConfig::Policy::kRejectNewest, 2));
  auto* adm = h.jobtracker().admission();
  ASSERT_NE(adm, nullptr);

  std::vector<AdmissionController::Outcome> outcomes;
  for (int i = 0; i < 3; ++i) {
    adm->offer(make_spec(h, "job" + std::to_string(i), 2),
               [&](const AdmissionController::Outcome& out) {
                 outcomes.push_back(out);
               });
  }
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].decision, AdmissionController::Decision::kAdmitted);
  EXPECT_EQ(outcomes[1].decision, AdmissionController::Decision::kAdmitted);
  EXPECT_EQ(outcomes[2].decision, AdmissionController::Decision::kRejected);
  EXPECT_FALSE(outcomes[2].job.valid());
  EXPECT_EQ(h.jobtracker().live_jobs(), 2);
  EXPECT_GE(adm->backpressure(), 1.0);
  EXPECT_EQ(adm->stats().offered, 3);
  EXPECT_EQ(adm->stats().admitted, 2);
  EXPECT_EQ(adm->stats().rejected, 1);

  // A rejected arrival leaves no trace in the tracker: capacity frees as
  // the admitted two finish, and a later arrival gets in.
  ASSERT_TRUE(
      h.run_jobs_to_completion({outcomes[0].job, outcomes[1].job}));
  std::optional<AdmissionController::Outcome> late;
  adm->offer(make_spec(h, "late", 2),
             [&](const AdmissionController::Outcome& out) { late = out; });
  ASSERT_TRUE(late.has_value());
  EXPECT_EQ(late->decision, AdmissionController::Decision::kAdmitted);
}

TEST(Admission, DeferParksUntilCapacityFreesThenAdmitsFifo) {
  MapRedHarness h(
      admission_options(AdmissionConfig::Policy::kDeferWithBackoff, 1));
  auto* adm = h.jobtracker().admission();
  ASSERT_NE(adm, nullptr);

  std::optional<AdmissionController::Outcome> first, second, third;
  adm->offer(make_spec(h, "running", 2),
             [&](const AdmissionController::Outcome& out) { first = out; });
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->decision, AdmissionController::Decision::kAdmitted);

  adm->offer(make_spec(h, "parked-a", 2),
             [&](const AdmissionController::Outcome& out) { second = out; });
  adm->offer(make_spec(h, "parked-b", 2),
             [&](const AdmissionController::Outcome& out) { third = out; });
  // Deferred verdicts are asynchronous: nothing fires at offer time.
  EXPECT_FALSE(second.has_value());
  EXPECT_FALSE(third.has_value());
  EXPECT_EQ(adm->deferred_depth(), 2u);

  // Run the stream out: each admit happens from the backoff timer after the
  // previous job retires its slot usage, in FIFO park order.
  const sim::Time deadline = h.sim().now() + sim::hours(2);
  while ((!second || !third ||
          !h.jobtracker().job(third->job).finished()) &&
         h.sim().now() < deadline) {
    if (!h.sim().step()) break;
  }
  ASSERT_TRUE(second.has_value());
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(second->decision, AdmissionController::Decision::kAdmitted);
  EXPECT_EQ(third->decision, AdmissionController::Decision::kAdmitted);
  EXPECT_GE(second->defers, 0);
  EXPECT_LT(second->job.value(), third->job.value());  // FIFO order held
  EXPECT_EQ(adm->deferred_depth(), 0u);
  EXPECT_EQ(adm->stats().deferred, 2);
  EXPECT_EQ(adm->stats().admitted, 3);
}

TEST(Admission, DeferExhaustionRejectsDeterministically) {
  FixtureOptions options =
      admission_options(AdmissionConfig::Policy::kDeferWithBackoff, 1);
  options.sched.admission.max_defers = 2;
  options.sched.admission.defer_initial = 15 * sim::kSecond;
  options.sched.admission.defer_max = 60 * sim::kSecond;
  MapRedHarness h(options);
  auto* adm = h.jobtracker().admission();

  // The occupant never finishes inside the test window, so the parked
  // arrival ages through its defer budget and resolves to a rejection.
  std::optional<AdmissionController::Outcome> occupant, parked;
  adm->offer(make_spec(h, "hog", 2, 0, sim::hours(10)),
             [&](const AdmissionController::Outcome& out) { occupant = out; });
  adm->offer(make_spec(h, "starved", 2),
             [&](const AdmissionController::Outcome& out) { parked = out; });
  EXPECT_FALSE(parked.has_value());

  h.advance(sim::minutes(10));
  ASSERT_TRUE(parked.has_value());
  EXPECT_EQ(parked->decision, AdmissionController::Decision::kRejected);
  EXPECT_EQ(parked->defers, 2);
  EXPECT_EQ(adm->stats().rejected, 1);
  EXPECT_EQ(adm->deferred_depth(), 0u);
}

TEST(Admission, ShedEvictsNewestLowestPriorityStrictlyBelowArrival) {
  MapRedHarness h(
      admission_options(AdmissionConfig::Policy::kShedLowestPriority, 2));
  auto* adm = h.jobtracker().admission();

  std::optional<AdmissionController::Outcome> a, b, c;
  adm->offer(make_spec(h, "old-low", 2, /*priority=*/0, sim::hours(10)),
             [&](const AdmissionController::Outcome& out) { a = out; });
  adm->offer(make_spec(h, "new-low", 2, /*priority=*/0, sim::hours(10)),
             [&](const AdmissionController::Outcome& out) { b = out; });

  // Equal priority cannot shed: the arrival loses.
  adm->offer(make_spec(h, "peer", 2, /*priority=*/0),
             [&](const AdmissionController::Outcome& out) { c = out; });
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->decision, AdmissionController::Decision::kRejected);
  EXPECT_EQ(adm->stats().shed, 0);

  // A strictly higher-priority arrival evicts the *newest* of the
  // lowest-priority tier (b, not a) and takes its slot.
  std::optional<AdmissionController::Outcome> vip;
  adm->offer(make_spec(h, "vip", 2, /*priority=*/5),
             [&](const AdmissionController::Outcome& out) { vip = out; });
  ASSERT_TRUE(vip.has_value());
  EXPECT_EQ(vip->decision, AdmissionController::Decision::kAdmitted);
  EXPECT_EQ(vip->shed_job, b->job);
  EXPECT_EQ(adm->stats().shed, 1);

  const Job& victim = h.jobtracker().job(b->job);
  EXPECT_TRUE(victim.finished());
  EXPECT_TRUE(victim.metrics().failed);
  EXPECT_EQ(victim.metrics().failure_reason, JobFailureReason::kShed);
  const Job& survivor = h.jobtracker().job(a->job);
  EXPECT_FALSE(survivor.finished());
}

TEST(Admission, SequenceHashIsBitIdenticalAcrossRuns) {
  auto run = [](AdmissionConfig::Policy policy) {
    MapRedHarness h(admission_options(policy, 1));
    auto* adm = h.jobtracker().admission();
    std::vector<JobId> admitted;
    for (int i = 0; i < 4; ++i) {
      adm->offer(make_spec(h, "j" + std::to_string(i), 2, /*priority=*/i),
                 [&](const AdmissionController::Outcome& out) {
                   if (out.decision == AdmissionController::Decision::kAdmitted)
                     admitted.push_back(out.job);
                 });
      h.advance(sim::minutes(2));
    }
    h.advance(sim::hours(1));
    return adm->sequence_hash();
  };
  for (auto policy : {AdmissionConfig::Policy::kRejectNewest,
                      AdmissionConfig::Policy::kDeferWithBackoff,
                      AdmissionConfig::Policy::kShedLowestPriority}) {
    const std::uint64_t h1 = run(policy);
    const std::uint64_t h2 = run(policy);
    EXPECT_EQ(h1, h2) << "policy " << to_string(policy);
    // And the stream is non-trivial: the hash moved off the FNV basis.
    EXPECT_NE(h1, 14695981039346656037ULL);
  }
}

}  // namespace
}  // namespace moon::mapred
