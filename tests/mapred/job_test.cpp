#include "mapred/job.hpp"

#include <gtest/gtest.h>

#include "mapred_fixture.hpp"

namespace moon::mapred {
namespace {

using testing::FixtureOptions;
using testing::MapRedHarness;

TEST(Job, BuildsTasksFromSpec) {
  MapRedHarness h;
  h.submit();
  Job& job = h.job();
  EXPECT_EQ(job.tasks_of(TaskType::kMap).size(), 4u);
  EXPECT_EQ(job.tasks_of(TaskType::kReduce).size(), 2u);
  EXPECT_EQ(job.remaining_tasks(), 6);
  // Map i is bound to input block i.
  const auto& input = h.dfs().namenode().file(job.spec().input_file);
  for (int i = 0; i < 4; ++i) {
    const Task& t = job.task(job.tasks_of(TaskType::kMap)[static_cast<std::size_t>(i)]);
    EXPECT_EQ(t.input_block, input.blocks[static_cast<std::size_t>(i)]);
    EXPECT_EQ(t.index, i);
    EXPECT_EQ(t.state, TaskState::kPending);
  }
}

TEST(Job, UnknownTaskThrows) {
  MapRedHarness h;
  h.submit();
  EXPECT_THROW(static_cast<void>(h.job().task(TaskId{999})), std::out_of_range);
}

TEST(Job, SchedulingLaunchesAttemptsOnHeartbeat) {
  FixtureOptions opt;
  opt.map_compute = 60 * sim::kSecond;  // long enough to be observed running
  MapRedHarness h(opt);
  h.submit();
  h.advance(30 * sim::kSecond);
  EXPECT_GT(h.job().metrics().launched_map_attempts, 0);
  int running = 0;
  for (TaskId id : h.job().tasks_of(TaskType::kMap)) {
    if (h.job().task(id).state == TaskState::kRunning) ++running;
  }
  EXPECT_GT(running, 0);
}

TEST(Job, CompletesOnStableCluster) {
  MapRedHarness h;
  h.submit();
  ASSERT_TRUE(h.run_to_completion());
  const auto& m = h.job().metrics();
  EXPECT_TRUE(m.completed);
  EXPECT_FALSE(m.failed);
  EXPECT_EQ(h.job().completed_tasks(TaskType::kMap), 4);
  EXPECT_EQ(h.job().completed_tasks(TaskType::kReduce), 2);
  EXPECT_EQ(h.job().remaining_tasks(), 0);
  // No volatility: exactly one attempt per task, nothing killed.
  EXPECT_EQ(m.launched_map_attempts, 4);
  EXPECT_EQ(m.launched_reduce_attempts, 2);
  EXPECT_EQ(m.duplicated_tasks(4, 2), 0);
  EXPECT_EQ(m.killed_map_attempts, 0);
  EXPECT_EQ(m.fetch_failures, 0);
}

TEST(Job, MapTimesReflectComputePlusIo) {
  FixtureOptions opt;
  opt.map_compute = 20 * sim::kSecond;
  MapRedHarness h(opt);
  h.submit();
  ASSERT_TRUE(h.run_to_completion());
  const auto& m = h.job().metrics();
  ASSERT_EQ(m.map_time_s.count(), 4u);
  EXPECT_GE(m.map_time_s.mean(), 20.0);       // at least the compute time
  EXPECT_LT(m.map_time_s.mean(), 40.0);       // tiny I/O on an idle cluster
}

TEST(Job, ShuffleAndReduceTimesRecorded) {
  MapRedHarness h;
  h.submit();
  ASSERT_TRUE(h.run_to_completion());
  const auto& m = h.job().metrics();
  EXPECT_EQ(m.shuffle_time_s.count(), 2u);
  EXPECT_EQ(m.reduce_time_s.count(), 2u);
  EXPECT_GE(m.reduce_time_s.mean(), 10.0);
}

TEST(Job, MapOutputInvalidUntilTaskCompletes) {
  MapRedHarness h;
  h.submit();
  const TaskId first_map = h.job().tasks_of(TaskType::kMap)[0];
  EXPECT_FALSE(h.job().map_output(first_map).valid());
  ASSERT_TRUE(h.run_to_completion());
  EXPECT_TRUE(h.job().map_output(first_map).valid());
}

TEST(Job, OutputFilesBecomeReliableAndCompleteAtCommit) {
  MapRedHarness h;
  h.submit();
  ASSERT_TRUE(h.run_to_completion());
  auto& nn = h.dfs().namenode();
  for (TaskId r : h.job().tasks_of(TaskType::kReduce)) {
    const FileId f = h.job().task(r).output_file;
    ASSERT_TRUE(f.valid());
    EXPECT_EQ(nn.file(f).kind, dfs::FileKind::kReliable);
    EXPECT_TRUE(nn.file(f).complete);
    // MOON-managed output carries a dedicated replica after conversion.
    for (BlockId b : nn.file(f).blocks) {
      EXPECT_GE(nn.live_replicas(b).dedicated, 1);
    }
  }
}

TEST(Job, RevertMapRequeuesAndDropsOutput) {
  MapRedHarness h;
  h.submit();
  ASSERT_TRUE(h.run_to_completion());
  // Post-hoc revert (as a fetch-failure storm would trigger mid-run).
  const TaskId m = h.job().tasks_of(TaskType::kMap)[1];
  const FileId old_output = h.job().map_output(m);
  ASSERT_TRUE(old_output.valid());
  h.job().revert_map(m);
  EXPECT_EQ(h.job().task(m).state, TaskState::kPending);
  EXPECT_FALSE(h.job().map_output(m).valid());
  EXPECT_FALSE(h.dfs().namenode().file_exists(old_output));
  EXPECT_EQ(h.job().metrics().map_reexecutions, 1);
}

TEST(Job, TaskProgressReachesOneOnCompletion) {
  MapRedHarness h;
  h.submit();
  ASSERT_TRUE(h.run_to_completion());
  for (TaskId id : h.job().tasks_of(TaskType::kMap)) {
    EXPECT_DOUBLE_EQ(h.job().task_progress(id), 1.0);
  }
  EXPECT_DOUBLE_EQ(h.job().average_progress(TaskType::kMap), 1.0);
}

TEST(Job, AverageProgressIgnoresUnstartedTasks) {
  FixtureOptions opt;
  opt.volatile_nodes = 1;  // 2 map slots for 4 maps: half start immediately
  opt.dedicated_nodes = 0;
  opt.map_compute = 100 * sim::kSecond;
  MapRedHarness h(opt);
  h.submit();
  h.advance(40 * sim::kSecond);
  // Average over started tasks only must be > 0 even though some tasks have
  // not launched at all.
  EXPECT_GT(h.job().average_progress(TaskType::kMap), 0.0);
}

TEST(Job, TrackerDeathKillsAttemptsAndReexecutesMaps) {
  FixtureOptions opt;
  opt.sched = testing::hadoop_sched(60 * sim::kSecond);
  opt.map_compute = 30 * sim::kSecond;
  opt.reduce_compute = 120 * sim::kSecond;
  MapRedHarness h(opt);
  h.submit();
  // Let maps complete, then take a node down for good.
  h.advance(2 * sim::kMinute);
  ASSERT_TRUE(h.job().all_maps_done());
  NodeId victim = NodeId::invalid();
  for (TaskId m : h.job().tasks_of(TaskType::kMap)) {
    victim = h.job().task(m).completed_on;
    if (victim.valid() &&
        !h.cluster().node(victim).dedicated()) {
      break;
    }
  }
  ASSERT_TRUE(victim.valid());
  h.set_node_available(victim, false);
  h.advance(3 * sim::kMinute);  // > 60 s expiry
  EXPECT_EQ(h.jobtracker().tracker_state(victim), TrackerState::kDead);
  // Hadoop rule: completed maps on the dead tracker are re-executed.
  EXPECT_GT(h.job().metrics().map_reexecutions, 0);
  ASSERT_TRUE(h.run_to_completion());
}

TEST(Job, MoonTrackerDeathSkipsReexecutionWhenReplicasSurvive) {
  FixtureOptions opt;
  opt.sched = testing::moon_sched();
  opt.sched.tracker_expiry = 2 * sim::kMinute;  // force death quickly
  opt.map_compute = 30 * sim::kSecond;
  opt.reduce_compute = 300 * sim::kSecond;
  // Intermediate data has a dedicated copy: output survives node loss.
  opt.intermediate_kind = dfs::FileKind::kReliable;
  opt.intermediate_factor = {1, 1};
  MapRedHarness h(opt);
  h.submit();
  h.advance(2 * sim::kMinute);
  ASSERT_TRUE(h.job().all_maps_done());
  NodeId victim = NodeId::invalid();
  for (TaskId m : h.job().tasks_of(TaskType::kMap)) {
    victim = h.job().task(m).completed_on;
    if (victim.valid() && !h.cluster().node(victim).dedicated()) break;
  }
  ASSERT_TRUE(victim.valid());
  h.set_node_available(victim, false);
  h.advance(5 * sim::kMinute);
  EXPECT_EQ(h.jobtracker().tracker_state(victim), TrackerState::kDead);
  // MOON consulted the DFS: dedicated replica lives, no re-execution.
  EXPECT_EQ(h.job().metrics().map_reexecutions, 0);
}

TEST(Job, FailsAfterMaxTaskFailures) {
  FixtureOptions opt;
  // Input with a single volatile replica; destroy it so maps cannot read.
  opt.input_factor = {0, 1};
  opt.dfs.max_read_rounds = 1;
  MapRedHarness h(opt);
  // Drop every input replica before submitting (the staged input is the
  // first file the harness creates, id 0).
  auto& nn = h.dfs().namenode();
  const FileId input{0};
  for (BlockId b : nn.file(input).blocks) {
    auto replicas = nn.block(b).replicas;
    for (NodeId n : replicas) {
      h.dfs().datanode(n).drop_block(b, kKiB);
    }
  }
  h.submit();
  const sim::Time deadline = h.sim().now() + sim::hours(2);
  while (!h.job().finished() && h.sim().now() < deadline) {
    if (!h.sim().step()) break;
  }
  EXPECT_TRUE(h.job().metrics().failed);
  EXPECT_FALSE(h.job().metrics().completed);
}

TEST(Job, DebugDumpListsIncompleteTasks) {
  MapRedHarness h;
  h.submit();
  h.advance(5 * sim::kSecond);
  std::ostringstream os;
  h.job().debug_dump(os);
  EXPECT_NE(os.str().find("map[0]"), std::string::npos);
}

}  // namespace
}  // namespace moon::mapred
