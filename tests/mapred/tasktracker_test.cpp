// TaskTracker slot accounting and heartbeat behaviour.
#include "mapred/tasktracker.hpp"

#include <gtest/gtest.h>

#include "mapred_fixture.hpp"

namespace moon::mapred {
namespace {

using testing::FixtureOptions;
using testing::MapRedHarness;

TEST(TaskTracker, SlotsMatchNodeConfig) {
  MapRedHarness h;
  auto trackers = h.jobtracker().trackers();
  ASSERT_FALSE(trackers.empty());
  TaskTracker* t = trackers.front();
  EXPECT_EQ(t->map_slots(), 2);
  EXPECT_EQ(t->reduce_slots(), 2);
  EXPECT_EQ(t->free_slots(TaskType::kMap), 2);
  EXPECT_EQ(t->free_slots(TaskType::kReduce), 2);
  EXPECT_EQ(t->used_slots(TaskType::kMap), 0);
}

TEST(TaskTracker, OccupancyTracksRunningAttempts) {
  FixtureOptions opt;
  opt.map_compute = 5 * sim::kMinute;
  opt.volatile_nodes = 1;
  opt.dedicated_nodes = 0;
  opt.num_maps = 4;
  opt.num_reduces = 1;
  MapRedHarness h(opt);
  h.submit();
  h.advance(30 * sim::kSecond);
  TaskTracker* t = h.jobtracker().trackers().front();
  // Both map slots busy (4 maps, 2 slots); attempts registered.
  EXPECT_EQ(t->used_slots(TaskType::kMap), 2);
  EXPECT_EQ(t->free_slots(TaskType::kMap), 0);
  EXPECT_EQ(t->attempts(TaskType::kMap).size(), 2u);
  EXPECT_EQ(t->all_attempts().size(),
            t->attempts(TaskType::kMap).size() +
                t->attempts(TaskType::kReduce).size());
}

TEST(TaskTracker, SlotsFreedOnCompletion) {
  MapRedHarness h;
  h.submit();
  ASSERT_TRUE(h.run_to_completion());
  for (TaskTracker* t : h.jobtracker().trackers()) {
    EXPECT_EQ(t->used_slots(TaskType::kMap), 0);
    EXPECT_EQ(t->used_slots(TaskType::kReduce), 0);
  }
}

TEST(TaskTracker, OverOccupancyThrows) {
  FixtureOptions opt;
  opt.map_compute = 10 * sim::kMinute;
  opt.volatile_nodes = 1;
  opt.dedicated_nodes = 0;
  opt.num_maps = 8;
  MapRedHarness h(opt);
  h.submit();
  h.advance(30 * sim::kSecond);
  TaskTracker* t = h.jobtracker().trackers().front();
  ASSERT_EQ(t->free_slots(TaskType::kMap), 0);
  EXPECT_THROW(t->occupy(TaskType::kMap, nullptr), std::logic_error);
}

TEST(TaskTracker, DedicatedFlagReflectsNodeType) {
  MapRedHarness h;  // 4 volatile + 1 dedicated
  int dedicated = 0;
  for (TaskTracker* t : h.jobtracker().trackers()) {
    if (t->dedicated()) ++dedicated;
  }
  EXPECT_EQ(dedicated, 1);
}

TEST(TaskTracker, SilentWhileHostDown) {
  MapRedHarness h;
  h.submit();
  h.advance(10 * sim::kSecond);
  const NodeId victim = h.volatile_ids[0];
  h.set_node_available(victim, false);
  h.advance(2 * sim::kMinute);
  // No heartbeats delivered: the JobTracker's view goes stale (Live state
  // only persists because plain schedulers have no suspension concept; the
  // last_heartbeat gap is what the liveness scan consumes).
  EXPECT_FALSE(h.cluster().node(victim).available());
  h.set_node_available(victim, true);
  h.advance(10 * sim::kSecond);
  EXPECT_EQ(h.jobtracker().tracker_state(victim), TrackerState::kLive);
}

}  // namespace
}  // namespace moon::mapred
