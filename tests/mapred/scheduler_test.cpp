// Speculative-execution policy tests (§V): Hadoop straggler criteria, MOON
// frozen/slow lists, the global cap, two-phase homestretch, and hybrid
// dedicated-backup placement.
#include "mapred/speculation.hpp"

#include <gtest/gtest.h>

#include "mapred_fixture.hpp"

namespace moon::mapred {
namespace {

using testing::FixtureOptions;
using testing::MapRedHarness;

TEST(HadoopSpeculation, NoStragglersOnHealthyCluster) {
  FixtureOptions opt;
  opt.sched = testing::hadoop_sched();
  MapRedHarness h(opt);
  h.submit();
  ASSERT_TRUE(h.run_to_completion());
  EXPECT_EQ(h.job().metrics().speculative_attempts, 0);
}

TEST(HadoopSpeculation, SuspendedTaskEventuallyGetsBackupViaExpiry) {
  // Hadoop's only recourse for a suspended tracker is expiry: the attempt
  // is killed and the task rescheduled (a "duplicate" in Fig. 5 terms).
  FixtureOptions opt;
  opt.sched = testing::hadoop_sched(60 * sim::kSecond);
  opt.map_compute = 5 * sim::kMinute;
  opt.volatile_nodes = 2;
  opt.dedicated_nodes = 0;
  opt.num_maps = 4;
  opt.num_reduces = 1;
  MapRedHarness h(opt);
  h.submit();
  h.advance(30 * sim::kSecond);  // maps running
  h.set_node_available(h.volatile_ids[0], false);
  h.advance(3 * sim::kMinute);   // expiry fires
  EXPECT_EQ(h.jobtracker().tracker_state(h.volatile_ids[0]),
            TrackerState::kDead);
  EXPECT_GT(h.job().metrics().killed_map_attempts, 0);
  h.set_node_available(h.volatile_ids[0], true);
  ASSERT_TRUE(h.run_to_completion());
  EXPECT_GT(h.job().metrics().launched_map_attempts, 4);
}

TEST(HadoopSpeculation, StragglerCriteriaRequireMinimumAge) {
  FixtureOptions opt;
  opt.sched = testing::hadoop_sched();
  opt.sched.min_age_for_speculation = 60 * sim::kSecond;
  opt.map_compute = 30 * sim::kSecond;  // tasks finish before aging in
  MapRedHarness h(opt);
  h.submit();
  ASSERT_TRUE(h.run_to_completion());
  EXPECT_EQ(h.job().metrics().speculative_attempts, 0);
}

TEST(MoonSpeculation, SuspensionMarksAttemptsInactiveWithoutKilling) {
  FixtureOptions opt;
  opt.sched = testing::moon_sched();
  opt.map_compute = 10 * sim::kMinute;
  opt.volatile_nodes = 3;
  opt.num_maps = 6;
  MapRedHarness h(opt);
  h.submit();
  h.advance(30 * sim::kSecond);
  const NodeId victim = h.volatile_ids[0];
  h.set_node_available(victim, false);
  h.advance(90 * sim::kSecond);  // > SuspensionInterval (30 s)
  EXPECT_EQ(h.jobtracker().tracker_state(victim), TrackerState::kSuspended);
  // Nothing was killed — the paper keeps inactive attempts alive.
  EXPECT_EQ(h.job().metrics().killed_map_attempts, 0);
}

TEST(MoonSpeculation, FrozenTaskReceivesSpeculativeCopy) {
  FixtureOptions opt;
  opt.sched = testing::moon_sched();
  opt.sched.homestretch_fraction = 0.0;  // isolate the frozen-list path
  opt.map_compute = 10 * sim::kMinute;
  opt.volatile_nodes = 4;
  opt.dedicated_nodes = 0;
  opt.num_maps = 2;  // few tasks, plenty of slots elsewhere
  opt.num_reduces = 1;
  MapRedHarness h(opt);
  h.submit();
  h.advance(20 * sim::kSecond);  // maps placed
  // Find a node hosting a map attempt and suspend it.
  NodeId victim = NodeId::invalid();
  for (TaskId m : h.job().tasks_of(TaskType::kMap)) {
    if (h.job().task(m).state == TaskState::kRunning) {
      for (AttemptId a : h.job().task(m).attempts) {
        victim = h.job().attempt(a)->tracker().node_id();
        break;
      }
      break;
    }
  }
  ASSERT_TRUE(victim.valid());
  const int before = h.job().metrics().speculative_attempts;
  h.set_node_available(victim, false);
  h.advance(3 * sim::kMinute);  // suspension detected, frozen rescue issued
  EXPECT_GT(h.job().metrics().speculative_attempts, before);
  ASSERT_TRUE(h.run_to_completion());
}

TEST(MoonSpeculation, ResumedOriginalOrBackupWinsAndLoserIsKilled) {
  FixtureOptions opt;
  opt.sched = testing::moon_sched();
  opt.map_compute = 5 * sim::kMinute;
  opt.volatile_nodes = 4;
  opt.dedicated_nodes = 0;
  opt.num_maps = 2;
  opt.num_reduces = 1;
  MapRedHarness h(opt);
  h.submit();
  h.advance(20 * sim::kSecond);
  h.set_node_available(h.volatile_ids[0], false);
  h.advance(2 * sim::kMinute);
  h.set_node_available(h.volatile_ids[0], true);  // original resumes
  ASSERT_TRUE(h.run_to_completion());
  const auto& m = h.job().metrics();
  // Both a speculative copy and a resumed original existed for some task;
  // exactly one of them won, so something was killed as redundant.
  if (m.speculative_attempts > 0) {
    EXPECT_GT(m.killed_map_attempts + m.killed_reduce_attempts, 0);
  }
}

TEST(MoonSpeculation, GlobalCapBoundsConcurrentSpeculation) {
  FixtureOptions opt;
  opt.sched = testing::moon_sched();
  opt.sched.speculative_slot_fraction = 0.0;  // cap = 0: no speculation at all
  opt.map_compute = 5 * sim::kMinute;
  opt.volatile_nodes = 4;
  opt.dedicated_nodes = 0;
  opt.num_maps = 2;
  opt.num_reduces = 1;
  MapRedHarness h(opt);
  h.submit();
  h.advance(20 * sim::kSecond);
  h.set_node_available(h.volatile_ids[0], false);
  h.advance(5 * sim::kMinute);
  EXPECT_EQ(h.job().metrics().speculative_attempts, 0);
}

TEST(MoonSpeculation, HomestretchMaintainsExtraCopies) {
  FixtureOptions opt;
  opt.sched = testing::moon_sched();
  opt.sched.homestretch_fraction = 0.5;  // tiny job: homestretch from start
  opt.sched.homestretch_copies = 2;
  opt.map_compute = 2 * sim::kMinute;
  opt.volatile_nodes = 6;
  opt.dedicated_nodes = 0;
  opt.num_maps = 2;
  opt.num_reduces = 1;
  MapRedHarness h(opt);
  h.submit();
  h.advance(90 * sim::kSecond);
  // Remaining tasks (3) < 50% of available slots (24): every running task
  // should have been topped up to R = 2 active copies.
  EXPECT_GT(h.job().metrics().speculative_attempts, 0);
  for (TaskId m : h.job().tasks_of(TaskType::kMap)) {
    if (h.job().task(m).state == TaskState::kRunning) {
      EXPECT_GE(h.job().active_attempts(m), 2);
    }
  }
  ASSERT_TRUE(h.run_to_completion());
}

TEST(MoonSpeculation, HomestretchDisabledOutsideWindow) {
  FixtureOptions opt;
  opt.sched = testing::moon_sched();
  opt.sched.homestretch_fraction = 0.0;  // never in homestretch
  opt.map_compute = 2 * sim::kMinute;
  opt.volatile_nodes = 6;
  opt.dedicated_nodes = 0;
  opt.num_maps = 2;
  opt.num_reduces = 1;
  MapRedHarness h(opt);
  h.submit();
  h.advance(90 * sim::kSecond);
  EXPECT_EQ(h.job().metrics().speculative_attempts, 0);
}

TEST(MoonSpeculation, HybridPlacesBackupsOnDedicatedNodes) {
  FixtureOptions opt;
  opt.sched = testing::moon_sched(/*hybrid=*/true);
  opt.map_compute = 10 * sim::kMinute;
  opt.volatile_nodes = 2;
  opt.dedicated_nodes = 1;
  opt.num_maps = 2;
  opt.num_reduces = 1;
  MapRedHarness h(opt);
  h.submit();
  h.advance(20 * sim::kSecond);
  // Suspend every volatile node: all map attempts freeze.
  for (NodeId n : h.volatile_ids) h.set_node_available(n, false);
  h.advance(3 * sim::kMinute);
  // The dedicated node must be running backup copies.
  int dedicated_attempts = 0;
  for (TaskId m : h.job().tasks_of(TaskType::kMap)) {
    if (h.job().has_active_dedicated_attempt(m)) ++dedicated_attempts;
  }
  EXPECT_GT(dedicated_attempts, 0);
  // Output replication needs live volatile nodes ({1,1} factor); bring the
  // fleet back so the commit can place the volatile copies.
  h.advance(5 * sim::kMinute);
  for (NodeId n : h.volatile_ids) h.set_node_available(n, true);
  ASSERT_TRUE(h.run_to_completion());
}

TEST(MoonSpeculation, TaskWithDedicatedCopyGetsNoMoreReplicas) {
  FixtureOptions opt;
  opt.sched = testing::moon_sched(/*hybrid=*/true);
  opt.sched.homestretch_fraction = 0.9;  // homestretch from the start
  opt.map_compute = 5 * sim::kMinute;
  opt.volatile_nodes = 4;
  opt.dedicated_nodes = 1;
  opt.num_maps = 1;
  opt.num_reduces = 1;
  MapRedHarness h(opt);
  h.submit();
  h.advance(4 * sim::kMinute);
  const TaskId m = h.job().tasks_of(TaskType::kMap)[0];
  if (h.job().has_active_dedicated_attempt(m)) {
    // "Tasks that already have a dedicated copy do not participate [in] the
    // homestretch phase": at most the original + the dedicated backup.
    EXPECT_LE(h.job().non_terminal_attempts(m), 2);
  }
}

TEST(MoonSpeculation, NonHybridIgnoresDedicatedDistinction) {
  FixtureOptions opt;
  opt.sched = testing::moon_sched(/*hybrid=*/false);
  opt.map_compute = 30 * sim::kSecond;
  MapRedHarness h(opt);
  h.submit();
  ASSERT_TRUE(h.run_to_completion());
  // Sanity: job completes and the scheduler never crashes on mixed tiers.
  EXPECT_TRUE(h.job().metrics().completed);
}

}  // namespace
}  // namespace moon::mapred
