// Multi-job scheduling policies (DESIGN.md §10): FIFO starvation vs
// fair-share interleaving on a 2-slot cluster, SRTF ordering, and the
// per-job latency/slot accounting the policies rank on. No churn — nodes
// stay up, so every outcome is a pure function of the policy.
#include <gtest/gtest.h>

#include "mapred_fixture.hpp"

namespace moon::mapred {
namespace {

using testing::FixtureOptions;
using testing::MapRedHarness;

/// One volatile node (2 map + 2 reduce slots), no dedicated tier.
FixtureOptions two_slot_options(SchedulerConfig::JobPolicy policy) {
  FixtureOptions options;
  options.volatile_nodes = 1;
  options.dedicated_nodes = 0;
  options.sched = testing::hadoop_sched(10 * sim::kMinute);
  options.sched.job_policy = policy;
  return options;
}

struct TwoJobOutcome {
  double wait_a = 0.0;
  double wait_b = 0.0;
  sim::Time finished_a = 0;
  sim::Time finished_b = 0;
  double latency_b = 0.0;
};

/// Big job A (8 maps) submitted first, small job B (2 maps) 10 s later, on
/// 2 map slots: the canonical starvation scenario. Map-only jobs, so the
/// outcome is pure map-slot contention (an eagerly launched reduce would
/// both blur first-launch times and inflate B's deficit ratio).
TwoJobOutcome run_two_jobs(SchedulerConfig::JobPolicy policy) {
  MapRedHarness h(two_slot_options(policy));
  const JobId a = h.submit_job("big", /*maps=*/8, /*reduces=*/0,
                               20 * sim::kSecond, 10 * sim::kSecond);
  h.advance(10 * sim::kSecond);
  const JobId b = h.submit_job("small", /*maps=*/2, /*reduces=*/0,
                               20 * sim::kSecond, 10 * sim::kSecond);
  EXPECT_TRUE(h.run_jobs_to_completion({a, b}));

  TwoJobOutcome out;
  const auto& ma = h.jobtracker().job(a).metrics();
  const auto& mb = h.jobtracker().job(b).metrics();
  out.wait_a = ma.queue_wait_s();
  out.wait_b = mb.queue_wait_s();
  out.finished_a = ma.finished_at;
  out.finished_b = mb.finished_at;
  out.latency_b = mb.execution_time_s();
  return out;
}

TEST(MultiJobPolicy, FifoStarvesTheLaterSmallJob) {
  const auto fifo = run_two_jobs(SchedulerConfig::JobPolicy::kFifo);
  // A grabs the first heartbeat; B's maps queue behind A's 4 waves of 20 s
  // maps over the 2 slots, so B's completion trails far behind its ~45 s
  // no-contention runtime. FIFO runs A to completion ahead of B.
  EXPECT_LT(fifo.wait_a, 5.0);
  EXPECT_GT(fifo.wait_b, 20.0);
  EXPECT_GT(fifo.latency_b, 80.0);
  EXPECT_LT(fifo.finished_a, fifo.finished_b);
}

TEST(MultiJobPolicy, FairShareInterleavesWhereFifoStarves) {
  const auto fifo = run_two_jobs(SchedulerConfig::JobPolicy::kFifo);
  const auto fair = run_two_jobs(SchedulerConfig::JobPolicy::kFairShare);
  // Deficit ranking hands B (0 running attempts) the next freed map slot:
  // its maps interleave with A's waves instead of queueing behind all of
  // them, so its queue wait and latency collapse relative to FIFO.
  EXPECT_LT(fair.wait_b, fifo.wait_b);
  EXPECT_LT(fair.latency_b, fifo.latency_b);
  EXPECT_LT(fair.latency_b, 80.0);
}

TEST(MultiJobPolicy, ShortestRemainingLetsTheSmallJobFinishFirst) {
  const auto srtf = run_two_jobs(SchedulerConfig::JobPolicy::kShortestRemaining);
  // B has 3 remaining tasks vs A's 9: every freed slot goes to B until it
  // drains, so B overtakes A outright.
  EXPECT_LT(srtf.finished_b, srtf.finished_a);

  const auto fair = run_two_jobs(SchedulerConfig::JobPolicy::kFairShare);
  EXPECT_LE(srtf.latency_b, fair.latency_b);
}

TEST(MultiJobPolicy, FifoWithOneJobMatchesDefaultConfig) {
  // kFifo is the default and must reproduce the historical single-job
  // behaviour: same completion time with the policy field untouched.
  FixtureOptions defaults;
  defaults.volatile_nodes = 2;
  defaults.dedicated_nodes = 1;
  MapRedHarness h1(defaults);
  h1.submit();
  ASSERT_TRUE(h1.run_to_completion());

  FixtureOptions explicit_fifo = defaults;
  explicit_fifo.sched.job_policy = SchedulerConfig::JobPolicy::kFifo;
  MapRedHarness h2(explicit_fifo);
  h2.submit();
  ASSERT_TRUE(h2.run_to_completion());

  EXPECT_EQ(h1.job().metrics().finished_at, h2.job().metrics().finished_at);
  EXPECT_EQ(h1.job().metrics().launched_map_attempts,
            h2.job().metrics().launched_map_attempts);
}

TEST(MultiJobPolicy, PerJobAccountingIsConsistent) {
  MapRedHarness h(two_slot_options(SchedulerConfig::JobPolicy::kFairShare));
  const JobId a = h.submit_job("big", 8, 1, 20 * sim::kSecond);
  h.advance(10 * sim::kSecond);
  const JobId b = h.submit_job("small", 2, 1, 20 * sim::kSecond);
  ASSERT_TRUE(h.run_jobs_to_completion({a, b}));

  for (JobId id : {a, b}) {
    const Job& job = h.jobtracker().job(id);
    const JobMetrics& m = job.metrics();
    EXPECT_GE(m.first_launch_at, m.submitted_at);
    EXPECT_GE(m.queue_wait_s(), 0.0);
    // Peak concurrent attempts cannot exceed the cluster's 4 slots, and a
    // completed job must have launched at least one attempt.
    EXPECT_GE(m.peak_running_attempts, 1);
    EXPECT_LE(m.peak_running_attempts, 4);
    // All attempts terminal after completion.
    EXPECT_EQ(job.live_attempts(), 0);
  }
}

TEST(MultiJobPolicy, DrainedJobsYieldSlotsUnderEveryPolicy) {
  // A job whose tasks are all running/complete must not block the stream:
  // submit three tiny jobs back to back and check they all complete under
  // each policy (fair-share's deficit ratio and SRTF's remaining-work key
  // both hit the remaining == 0 edge while outputs replicate).
  for (auto policy : {SchedulerConfig::JobPolicy::kFifo,
                      SchedulerConfig::JobPolicy::kFairShare,
                      SchedulerConfig::JobPolicy::kShortestRemaining}) {
    MapRedHarness h(two_slot_options(policy));
    std::vector<JobId> ids;
    for (int i = 0; i < 3; ++i) {
      ids.push_back(h.submit_job("tiny" + std::to_string(i), 2, 1));
    }
    EXPECT_TRUE(h.run_jobs_to_completion(ids)) << "policy "
                                               << static_cast<int>(policy);
  }
}

}  // namespace
}  // namespace moon::mapred
