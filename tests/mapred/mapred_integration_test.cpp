// End-to-end MapReduce behaviour under volatility: fetch-failure protocol,
// shuffle resilience, trace-driven churn, and completion semantics.
#include <gtest/gtest.h>

#include "cluster/availability_driver.hpp"
#include "mapred_fixture.hpp"
#include "trace/trace_generator.hpp"

namespace moon::mapred {
namespace {

using testing::FixtureOptions;
using testing::MapRedHarness;

TEST(MapRedIntegration, FetchFailureTriggersMapReexecution) {
  FixtureOptions opt;
  opt.sched = testing::moon_sched();
  opt.sched.fetch_failure_query_threshold = 1;  // re-run on first dead fetch
  opt.sched.fetch_retry_interval = 10 * sim::kSecond;
  opt.map_compute = 10 * sim::kSecond;
  opt.reduce_compute = 10 * sim::kSecond;
  // Intermediate data lives on exactly one volatile node (stock Hadoop).
  opt.intermediate_kind = dfs::FileKind::kOpportunistic;
  opt.intermediate_factor = {0, 1};
  opt.intermediate_per_map = mib(4.0);
  opt.volatile_nodes = 4;
  opt.num_maps = 4;
  opt.num_reduces = 2;
  MapRedHarness h(opt);
  h.submit();
  // The instant map 0 first completes, take its output holder down so the
  // partition becomes unfetchable before every reduce has copied it.
  const TaskId m0 = h.job().tasks_of(TaskType::kMap)[0];
  auto sabotage = std::make_shared<sim::PeriodicTask>(
      h.sim(), 100 * sim::kMillisecond, [&h, m0] {
        const FileId out = h.job().map_output(m0);
        if (!out.valid()) return;
        auto& nn = h.dfs().namenode();
        for (BlockId b : nn.file(out).blocks) {
          for (NodeId n : nn.block(b).replicas) {
            h.set_node_available(n, false);
          }
        }
      });
  sabotage->start();
  // Stop sabotaging once the map has been re-executed at least once, so the
  // job can finish.
  auto watchdog = std::make_shared<sim::PeriodicTask>(
      h.sim(), sim::kSecond, [&h, sabotage, watch = false]() mutable {
        if (h.job().metrics().map_reexecutions > 0 && sabotage->active()) {
          sabotage->stop();
        }
      });
  watchdog->start();
  ASSERT_TRUE(h.run_to_completion());
  EXPECT_GT(h.job().metrics().fetch_failures, 0);
  EXPECT_GT(h.job().metrics().map_reexecutions, 0);
}

TEST(MapRedIntegration, ReducerKeepsFetchedPartitionsAcrossMapReversion) {
  // A reducer that already fetched map M's output must not re-fetch after M
  // is reverted and re-executed; only unfetched reducers wait.
  FixtureOptions opt;
  opt.sched = testing::moon_sched();
  opt.sched.fetch_failure_query_threshold = 1;
  opt.map_compute = 10 * sim::kSecond;
  opt.reduce_compute = 60 * sim::kSecond;
  opt.intermediate_factor = {0, 1};
  opt.intermediate_kind = dfs::FileKind::kOpportunistic;
  MapRedHarness h(opt);
  h.submit();
  ASSERT_TRUE(h.run_to_completion());
  EXPECT_TRUE(h.job().metrics().completed);
}

TEST(MapRedIntegration, SurvivesTraceDrivenChurn) {
  FixtureOptions opt;
  opt.sched = testing::moon_sched(true);
  opt.volatile_nodes = 8;
  opt.dedicated_nodes = 2;
  opt.num_maps = 16;
  opt.num_reduces = 4;
  opt.map_compute = 20 * sim::kSecond;
  opt.reduce_compute = 30 * sim::kSecond;
  opt.intermediate_kind = dfs::FileKind::kOpportunistic;
  opt.intermediate_factor = {1, 1};
  MapRedHarness h(opt);

  // Drive the volatile nodes with a 0.4-unavailability synthetic trace.
  trace::GeneratorConfig gen_cfg;
  gen_cfg.unavailability_rate = 0.4;
  gen_cfg.mean_outage_s = 120.0;
  gen_cfg.stddev_outage_s = 60.0;
  trace::TraceGenerator gen(gen_cfg);
  Rng rng{17};
  const auto fleet = gen.generate_fleet(rng, h.volatile_ids.size());
  cluster::AvailabilityDriver driver(h.sim(), h.cluster());
  driver.assign_fleet(h.volatile_ids, fleet);
  driver.install(2);

  h.submit();
  ASSERT_TRUE(h.run_to_completion(sim::hours(8)));
  EXPECT_TRUE(h.job().metrics().completed);
}

TEST(MapRedIntegration, HadoopAlsoSurvivesModerateChurnWithReplication) {
  FixtureOptions opt;
  opt.sched = testing::hadoop_sched(60 * sim::kSecond);
  opt.volatile_nodes = 8;
  opt.dedicated_nodes = 0;
  opt.num_maps = 8;
  opt.num_reduces = 2;
  opt.intermediate_kind = dfs::FileKind::kOpportunistic;
  opt.intermediate_factor = {0, 3};
  opt.input_factor = {0, 4};
  opt.output_factor = {0, 3};
  // Plain-Hadoop DFS behaviour.
  opt.dfs.hibernate_enabled = false;
  opt.dfs.adaptive_replication = false;
  opt.dfs.throttling_enabled = false;
  MapRedHarness h(opt);

  trace::GeneratorConfig gen_cfg;
  gen_cfg.unavailability_rate = 0.2;
  gen_cfg.mean_outage_s = 100.0;
  gen_cfg.stddev_outage_s = 40.0;
  trace::TraceGenerator gen(gen_cfg);
  Rng rng{23};
  const auto fleet = gen.generate_fleet(rng, h.volatile_ids.size());
  cluster::AvailabilityDriver driver(h.sim(), h.cluster());
  driver.assign_fleet(h.volatile_ids, fleet);
  driver.install(2);

  h.submit();
  ASSERT_TRUE(h.run_to_completion(sim::hours(8)));
}

TEST(MapRedIntegration, JobCommitWaitsForOutputReplication) {
  FixtureOptions opt;
  opt.output_factor = {1, 2};
  MapRedHarness h(opt);
  h.submit();
  ASSERT_TRUE(h.run_to_completion());
  auto& nn = h.dfs().namenode();
  for (TaskId r : h.job().tasks_of(TaskType::kReduce)) {
    const FileId f = h.job().task(r).output_file;
    EXPECT_TRUE(nn.file_meets_factor(f));
  }
}

TEST(MapRedIntegration, MetricsDuplicatedTasksCountsExtraAttempts) {
  FixtureOptions opt;
  opt.sched = testing::moon_sched();
  opt.sched.homestretch_fraction = 0.9;
  opt.map_compute = 60 * sim::kSecond;
  opt.volatile_nodes = 6;
  opt.num_maps = 2;
  opt.num_reduces = 1;
  MapRedHarness h(opt);
  h.submit();
  ASSERT_TRUE(h.run_to_completion());
  const auto& m = h.job().metrics();
  EXPECT_EQ(m.duplicated_tasks(2, 1),
            m.launched_map_attempts + m.launched_reduce_attempts - 3);
  EXPECT_GE(m.duplicated_tasks(2, 1), m.speculative_attempts > 0 ? 1 : 0);
}

TEST(MapRedIntegration, SuspendedReducerResumesShuffleAfterOutage) {
  FixtureOptions opt;
  opt.sched = testing::moon_sched();
  opt.map_compute = 5 * sim::kSecond;
  opt.reduce_compute = 20 * sim::kSecond;
  opt.intermediate_per_map = mib(16.0);  // shuffle takes real time
  opt.volatile_nodes = 3;
  opt.dedicated_nodes = 1;
  opt.num_maps = 6;
  opt.num_reduces = 1;
  MapRedHarness h(opt);
  h.submit();
  h.advance(30 * sim::kSecond);  // reduce mid-shuffle
  // Suspend the reducer's node briefly; it must resume, not restart.
  NodeId reducer_node = NodeId::invalid();
  const TaskId r = h.job().tasks_of(TaskType::kReduce)[0];
  for (AttemptId a : h.job().task(r).attempts) {
    auto* attempt = h.job().attempt(a);
    if (attempt != nullptr && !attempt->terminal()) {
      reducer_node = attempt->tracker().node_id();
    }
  }
  if (reducer_node.valid() && !h.cluster().node(reducer_node).dedicated()) {
    h.set_node_available(reducer_node, false);
    h.advance(45 * sim::kSecond);
    h.set_node_available(reducer_node, true);
  }
  ASSERT_TRUE(h.run_to_completion());
}

TEST(MapRedIntegration, TwoJobsSequentially) {
  // The JobTracker supports multiple jobs; run one to completion, then the
  // next (paper studies single-job execution; this guards the plumbing).
  FixtureOptions opt;
  MapRedHarness h(opt);
  h.submit();
  ASSERT_TRUE(h.run_to_completion());
  const JobId second = h.submit();
  const sim::Time deadline = h.sim().now() + sim::hours(2);
  auto& job2 = h.jobtracker().job(second);
  while (!job2.finished() && h.sim().now() < deadline) {
    if (!h.sim().step()) break;
  }
  EXPECT_TRUE(job2.metrics().completed);
}

}  // namespace
}  // namespace moon::mapred
