// Golden equivalence: the indexed scheduler hot path must reproduce the
// retained scan-based oracle *bit for bit* — identical per-task attempt
// launch sequences (time, host node, speculative flag), identical attempt
// counters, and identical job completion times — for all three speculators
// (Hadoop, LATE, MOON) plus the checkpoint-enabled MOON preset, under
// seeded availability churn.
//
// The driver pre-generates one scripted churn sequence (pure data: node
// flips with down durations), then replays it against two independent
// harnesses that differ only in SchedulerConfig::index_mode. Any divergence
// in a scheduling decision cascades into mismatched launch traces.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "experiment/scenario.hpp"
#include "mapred_fixture.hpp"

namespace moon::mapred {
namespace {

using testing::FixtureOptions;
using testing::MapRedHarness;

struct Flip {
  sim::Time at;
  std::size_t node_index;  // into volatile_ids
  sim::Duration down_for;
};

std::vector<Flip> make_churn_script(std::uint64_t seed, std::size_t nodes,
                                    sim::Duration horizon) {
  Rng rng{seed};
  std::vector<Flip> script;
  sim::Time t = 30 * sim::kSecond;
  while (t < horizon) {
    t += rng.uniform_int(10, 60) * sim::kSecond;
    const auto n =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1));
    const auto down = rng.uniform_int(20, 150) * sim::kSecond;
    script.push_back(Flip{t, n, down});
  }
  return script;
}

/// Everything a scheduling decision can influence, per task, in launch
/// order. Exact-match comparable.
struct LaunchTrace {
  std::vector<std::tuple<sim::Time, std::uint64_t, bool>> launches;
};

struct RunTrace {
  std::vector<LaunchTrace> per_task;
  bool completed = false;
  sim::Time finished_at = 0;
  int speculative_attempts = 0;
  int killed_map_attempts = 0;
  int killed_reduce_attempts = 0;
  int failed_map_attempts = 0;
  int failed_reduce_attempts = 0;
  int map_reexecutions = 0;
  int checkpoint_resumes = 0;
};

RunTrace run_one(SchedulerConfig sched, SchedulerConfig::IndexMode mode,
                 std::uint64_t churn_seed) {
  FixtureOptions opt;
  opt.sched = sched;
  opt.sched.index_mode = mode;
  opt.volatile_nodes = 6;
  opt.dedicated_nodes = 2;
  opt.num_maps = 12;
  opt.num_reduces = 4;
  opt.map_compute = 90 * sim::kSecond;
  opt.reduce_compute = 60 * sim::kSecond;
  MapRedHarness h(opt);
  h.submit();

  const sim::Duration horizon = 20 * sim::kMinute;
  const auto script =
      make_churn_script(churn_seed, h.volatile_ids.size(), horizon);
  // Apply the scripted churn: a flip only takes a node down if it is up
  // (recovery is scheduled relative to the flip, script-determined).
  for (const Flip& f : script) {
    if (h.job().finished()) break;
    if (h.sim().now() < f.at) h.advance(f.at - h.sim().now());
    const NodeId victim = h.volatile_ids[f.node_index];
    if (!h.cluster().node(victim).available()) continue;
    h.set_node_available(victim, false);
    auto& cluster = h.cluster();
    h.sim().schedule_after(f.down_for, [&cluster, victim] {
      if (!cluster.node(victim).available()) {
        cluster.node(victim).set_available(true);
      }
    });
  }
  h.run_to_completion(sim::hours(4));

  RunTrace trace;
  Job& job = h.job();
  for (TaskType type : {TaskType::kMap, TaskType::kReduce}) {
    for (TaskId id : job.tasks_of(type)) {
      LaunchTrace lt;
      for (AttemptId a : job.task(id).attempts) {
        TaskAttempt* attempt = job.attempt(a);
        if (attempt == nullptr) {
          ADD_FAILURE() << "missing attempt record";
          continue;
        }
        lt.launches.emplace_back(attempt->started_at(),
                                 attempt->tracker().node_id().value(),
                                 attempt->speculative());
      }
      trace.per_task.push_back(std::move(lt));
    }
  }
  const auto& m = job.metrics();
  trace.completed = m.completed;
  trace.finished_at = m.finished_at;
  trace.speculative_attempts = m.speculative_attempts;
  trace.killed_map_attempts = m.killed_map_attempts;
  trace.killed_reduce_attempts = m.killed_reduce_attempts;
  trace.failed_map_attempts = m.failed_map_attempts;
  trace.failed_reduce_attempts = m.failed_reduce_attempts;
  trace.map_reexecutions = m.map_reexecutions;
  trace.checkpoint_resumes = m.checkpoint_resumes;
  return trace;
}

struct PolicyCase {
  std::string name;
  SchedulerConfig sched;
};

std::vector<PolicyCase> policies() {
  // Suspension-enabled MOON, expiry-driven Hadoop and LATE, plus the
  // checkpoint preset (exercises the speculation-shield index path).
  SchedulerConfig late = testing::hadoop_sched(2 * sim::kMinute);
  late.speculator = SchedulerConfig::Speculator::kLate;
  return {
      {"Hadoop", testing::hadoop_sched(2 * sim::kMinute)},
      {"Late", late},
      {"Moon", testing::moon_sched(/*hybrid=*/true)},
      {"MoonCkpt", experiment::moon_checkpoint_scheduler(false)},
  };
}

class SchedEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(SchedEquivalenceTest, IndexedMatchesScanBitForBit) {
  const auto [policy_index, seed] = GetParam();
  const PolicyCase policy = policies()[policy_index];

  const RunTrace indexed =
      run_one(policy.sched, SchedulerConfig::IndexMode::kIndexed, seed);
  const RunTrace scan =
      run_one(policy.sched, SchedulerConfig::IndexMode::kScan, seed);

  ASSERT_EQ(indexed.per_task.size(), scan.per_task.size());
  for (std::size_t t = 0; t < indexed.per_task.size(); ++t) {
    const auto& a = indexed.per_task[t].launches;
    const auto& b = scan.per_task[t].launches;
    ASSERT_EQ(a.size(), b.size()) << "attempt count diverged for task #" << t;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "launch #" << i << " of task #" << t
                            << " diverged (time/node/speculative)";
    }
  }
  EXPECT_EQ(indexed.completed, scan.completed);
  EXPECT_EQ(indexed.finished_at, scan.finished_at) << "completion time diverged";
  EXPECT_EQ(indexed.speculative_attempts, scan.speculative_attempts);
  EXPECT_EQ(indexed.killed_map_attempts, scan.killed_map_attempts);
  EXPECT_EQ(indexed.killed_reduce_attempts, scan.killed_reduce_attempts);
  EXPECT_EQ(indexed.failed_map_attempts, scan.failed_map_attempts);
  EXPECT_EQ(indexed.failed_reduce_attempts, scan.failed_reduce_attempts);
  EXPECT_EQ(indexed.map_reexecutions, scan.map_reexecutions);
  EXPECT_EQ(indexed.checkpoint_resumes, scan.checkpoint_resumes);
  // The run exercised the scheduler: something launched.
  std::size_t total_launches = 0;
  for (const auto& lt : indexed.per_task) total_launches += lt.launches.size();
  EXPECT_GT(total_launches, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, SchedEquivalenceTest,
    ::testing::Combine(::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{2}, std::size_t{3}),
                       ::testing::Values(1u, 42u, 20100621u)),
    [](const auto& param_info) {
      return policies()[std::get<0>(param_info.param)].name + "Seed" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace moon::mapred
