// Retrier: deterministic exponential backoff for calls against a crashed
// master. No RNG — the retry instants are a pure function of the policy —
// and at most one timer is ever outstanding.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "simkit/retry.hpp"
#include "simkit/simulation.hpp"

namespace moon::sim {
namespace {

TEST(Retrier, BacksOffExponentiallyToTheCap) {
  sim::Simulation sim(1);
  Retrier retrier(sim);  // 1s initial, x2, 60s cap
  std::vector<sim::Time> fired;
  std::function<void()> fn = [&] {
    fired.push_back(sim.now());
    retrier.retry(fn);
  };
  ASSERT_TRUE(retrier.retry(fn));
  while (fired.size() < 9 && sim.step()) {
  }
  const sim::Duration expected[] = {1, 2, 4, 8, 16, 32, 60, 60, 60};
  ASSERT_EQ(fired.size(), 9u);
  sim::Time at = 0;
  for (std::size_t i = 0; i < fired.size(); ++i) {
    at += expected[i] * sim::kSecond;
    EXPECT_EQ(fired[i], at) << "retry " << i;
  }
}

TEST(Retrier, SecondRetryWhilePendingIsANoOp) {
  sim::Simulation sim(1);
  Retrier retrier(sim);
  int calls = 0;
  EXPECT_TRUE(retrier.retry([&] { ++calls; }));
  EXPECT_FALSE(retrier.retry([&] { ++calls; }));  // earlier schedule wins
  EXPECT_TRUE(retrier.pending());
  while (sim.step()) {
  }
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(retrier.pending());
}

TEST(Retrier, ResetRestoresInitialDelayAndCancelsPending) {
  sim::Simulation sim(1);
  Retrier retrier(sim);
  int calls = 0;
  retrier.retry([&] { ++calls; });
  while (sim.step()) {
  }
  retrier.retry([&] { ++calls; });  // second round: 2s delay, still pending
  EXPECT_EQ(retrier.current_delay(), 4 * sim::kSecond);
  retrier.reset();
  EXPECT_FALSE(retrier.pending());
  EXPECT_EQ(retrier.current_delay(), 1 * sim::kSecond);
  EXPECT_EQ(retrier.attempts(), 0);
  while (sim.step()) {
  }
  EXPECT_EQ(calls, 1);  // the cancelled timer never fired
}

TEST(Retrier, MaxAttemptsExhausts) {
  sim::Simulation sim(1);
  RetryPolicy policy;
  policy.max_attempts = 2;
  Retrier retrier(sim, policy);
  int calls = 0;
  std::function<void()> fn = [&] {
    ++calls;
    retrier.retry(fn);
  };
  EXPECT_TRUE(retrier.retry(fn));
  while (sim.step()) {
  }
  EXPECT_EQ(calls, 2);
  EXPECT_FALSE(retrier.retry(fn));  // budget spent, nothing scheduled
}

TEST(Retrier, UnusedRetrierSchedulesNothing) {
  sim::Simulation sim(1);
  Retrier retrier(sim);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_FALSE(sim.step());
}

}  // namespace
}  // namespace moon::sim
