// Master failover end-to-end: crash the NameNode and JobTracker mid-job and
// require that the job still completes, the post-recovery auditor stays
// clean, journal replay matches the live state it is diffed against, and the
// whole chaos schedule replays bit-identically under the same seed.
#include <gtest/gtest.h>

#include <string>

#include "experiment/scenario.hpp"
#include "workload/workload.hpp"

namespace moon::experiment {
namespace {

ScenarioConfig failover_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.volatile_nodes = 12;
  cfg.dedicated_nodes = 2;
  cfg.unavailability_rate = 0.3;
  cfg.sched = moon_scheduler(true);
  cfg.dfs = moon_dfs_config();
  cfg.app = workload::sleep_of(workload::sort_workload());
  cfg.app.num_maps = 20;
  cfg.app.input_size = 20 * kKiB;
  cfg.app.input_block_bytes = kKiB;
  cfg.app.map_compute = 20 * sim::kSecond;
  cfg.app.reduce_compute = 30 * sim::kSecond;
  cfg.seed = seed;
  cfg.max_sim_time = 6 * sim::kHour;

  cfg.faults.enabled = true;
  cfg.faults.master_crash.enabled = true;
  // Crash early and often enough to land inside the job window.
  cfg.faults.master_crash.mean_interval = 4 * sim::kMinute;
  cfg.faults.master_crash.min_interval = 90 * sim::kSecond;
  cfg.faults.master_crash.mean_downtime = 90 * sim::kSecond;
  cfg.faults.master_crash.min_downtime = 30 * sim::kSecond;
  cfg.faults.master_crash.max_crashes = 2;
  return cfg;
}

TEST(MasterFailover, JobSurvivesMasterCrashes) {
  const RunResult result = run_scenario(failover_config(20100621u));
  // Non-vacuous: both masters actually went down at least once.
  EXPECT_GT(result.fault_stats.namenode_crashes, 0);
  EXPECT_GT(result.fault_stats.jobtracker_crashes, 0);
  EXPECT_EQ(result.fault_stats.master_recoveries,
            result.fault_stats.namenode_crashes +
                result.fault_stats.jobtracker_crashes);
  // The job rides out every outage.
  EXPECT_TRUE(result.finished);
  // Recovery rebuilt exactly the durable state the journal describes, and
  // the mandatory post-recovery sweeps found nothing.
  EXPECT_GT(result.journal_records, 0);
  EXPECT_EQ(result.journal_divergences, 0);
  EXPECT_GT(result.audit_passes, 0);
  EXPECT_EQ(result.audit_violations, 0);
  // Re-registration happened (trackers came back under the new epoch).
  EXPECT_GT(result.reregistrations, 0);
}

TEST(MasterFailover, SameSeedReplaysBitIdentically) {
  for (std::uint64_t seed : {20100621u, 7u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const RunResult a = run_scenario(failover_config(seed));
    const RunResult b = run_scenario(failover_config(seed));
    EXPECT_EQ(a.finished, b.finished);
    EXPECT_EQ(a.execution_time_s, b.execution_time_s);
    EXPECT_EQ(a.metrics.launched_map_attempts, b.metrics.launched_map_attempts);
    EXPECT_EQ(a.metrics.launched_reduce_attempts,
              b.metrics.launched_reduce_attempts);
    EXPECT_EQ(a.metrics.killed_map_attempts, b.metrics.killed_map_attempts);
    EXPECT_EQ(a.dfs_stats.bytes_read, b.dfs_stats.bytes_read);
    EXPECT_EQ(a.dfs_stats.bytes_written, b.dfs_stats.bytes_written);
    EXPECT_EQ(a.dfs_stats.ops_parked, b.dfs_stats.ops_parked);
    EXPECT_EQ(a.dfs_stats.master_retries, b.dfs_stats.master_retries);
    EXPECT_EQ(a.dfs_stats.block_reports, b.dfs_stats.block_reports);
    EXPECT_EQ(a.fault_stats.namenode_crashes, b.fault_stats.namenode_crashes);
    EXPECT_EQ(a.fault_stats.jobtracker_crashes,
              b.fault_stats.jobtracker_crashes);
    EXPECT_EQ(a.journal_records, b.journal_records);
    EXPECT_EQ(a.journal_snapshots, b.journal_snapshots);
    EXPECT_EQ(a.heartbeats_missed, b.heartbeats_missed);
    EXPECT_EQ(a.reports_parked, b.reports_parked);
    EXPECT_EQ(a.reports_replayed, b.reports_replayed);
    EXPECT_EQ(a.reregistrations, b.reregistrations);
    EXPECT_EQ(a.orphans_killed, b.orphans_killed);
    EXPECT_EQ(a.audit_violations, 0);
    EXPECT_EQ(b.audit_violations, 0);
  }
}

// Disabling the JobTracker class must not move a single NameNode draw: the
// NameNode's cycles come first out of the shared master stream. Crash counts
// only compare when every scheduled cycle fires before the job ends, so the
// test pins one early cycle per master. (Run *lengths* still differ — a JT
// outage delays the job — which is why the full-schedule configs can't be
// compared by count.)
TEST(MasterFailover, NameNodeScheduleIndependentOfJobTrackerFlag) {
  ScenarioConfig both = failover_config(20100621u);
  both.faults.master_crash.max_crashes = 1;
  ScenarioConfig nn_only = both;
  nn_only.faults.master_crash.jobtracker = false;
  const RunResult a = run_scenario(both);
  const RunResult b = run_scenario(nn_only);
  EXPECT_EQ(b.fault_stats.jobtracker_crashes, 0);
  EXPECT_GT(b.fault_stats.namenode_crashes, 0);
  EXPECT_EQ(a.fault_stats.namenode_crashes, b.fault_stats.namenode_crashes);
}

// Off-switch: a run with master_crash disabled keeps every recovery counter
// at zero (the golden tests pin the full bit-identity; this pins the gauges).
TEST(MasterFailover, DisabledClassLeavesCountersAtZero) {
  ScenarioConfig cfg = failover_config(20100621u);
  cfg.faults.master_crash.enabled = false;
  const RunResult result = run_scenario(cfg);
  EXPECT_TRUE(result.finished);
  EXPECT_EQ(result.fault_stats.namenode_crashes, 0);
  EXPECT_EQ(result.fault_stats.jobtracker_crashes, 0);
  EXPECT_EQ(result.journal_records, 0);
  EXPECT_EQ(result.dfs_stats.ops_parked, 0);
  EXPECT_EQ(result.dfs_stats.master_retries, 0);
  EXPECT_EQ(result.dfs_stats.heartbeats_skipped, 0);
  EXPECT_EQ(result.heartbeats_missed, 0);
  EXPECT_EQ(result.reports_parked, 0);
  EXPECT_EQ(result.reregistrations, 0);
  EXPECT_EQ(result.orphans_killed, 0);
}

}  // namespace
}  // namespace moon::experiment
