// Master journals: replay must reconstruct exactly the durable state the
// records describe, and snapshot folding must not change what replay sees —
// only bound its cost.
#include <gtest/gtest.h>

#include "recovery/master_journal.hpp"
#include "simkit/simulation.hpp"

namespace moon::recovery {
namespace {

TEST(NameNodeJournal, ReplayReconstructsTheNamespace) {
  sim::Simulation sim(1);
  NameNodeJournal journal(sim);

  journal.record_create_file(FileId{1}, "job.input", dfs::FileKind::kReliable,
                             {1, 3});
  journal.record_add_block(FileId{1}, BlockId{10}, 64 * kKiB);
  journal.record_add_block(FileId{1}, BlockId{11}, 32 * kKiB);
  journal.record_complete_file(FileId{1});
  journal.record_create_file(FileId{2}, "scratch",
                             dfs::FileKind::kOpportunistic, {0, 1});
  journal.record_remove_file(FileId{2});
  journal.record_create_file(FileId{3}, "out", dfs::FileKind::kOpportunistic,
                             {0, 1});
  journal.record_convert_reliable(FileId{3}, {1, 3});

  const NameNodeImage image = journal.replay();
  ASSERT_EQ(image.size(), 2u);  // removed file stays removed

  const FileImage& input = image.at(FileId{1});
  EXPECT_EQ(input.name, "job.input");
  EXPECT_EQ(input.kind, dfs::FileKind::kReliable);
  EXPECT_TRUE(input.complete);
  ASSERT_EQ(input.blocks.size(), 2u);
  EXPECT_EQ(input.blocks[0].first, BlockId{10});
  EXPECT_EQ(input.blocks[0].second, 64 * kKiB);
  EXPECT_EQ(input.blocks[1].first, BlockId{11});

  const FileImage& out = image.at(FileId{3});
  EXPECT_EQ(out.kind, dfs::FileKind::kReliable);  // conversion applied
  EXPECT_EQ(out.factor, (dfs::ReplicationFactor{1, 3}));
  EXPECT_FALSE(out.complete);

  EXPECT_EQ(journal.stats().records_appended, 8);
  EXPECT_GT(journal.stats().bytes_journaled, 0);
  EXPECT_EQ(journal.stats().replays, 1);
  EXPECT_EQ(journal.stats().divergences, 0);
}

TEST(NameNodeJournal, SnapshotFoldingPreservesReplay) {
  sim::Simulation sim(1);
  JournalConfig config;
  config.snapshot_interval = 10 * sim::kSecond;
  NameNodeJournal journal(sim, config);
  journal.start();

  journal.record_create_file(FileId{1}, "a", dfs::FileKind::kReliable, {1, 2});
  journal.record_add_block(FileId{1}, BlockId{7}, kKiB);
  // Run past several snapshot ticks; the op log folds into the base image.
  while (sim.now() < 35 * sim::kSecond && sim.step()) {
  }
  EXPECT_GE(journal.stats().snapshots_taken, 3);
  EXPECT_EQ(journal.oplog_length(), 0u);

  journal.record_complete_file(FileId{1});  // post-snapshot tail
  const NameNodeImage image = journal.replay();
  ASSERT_EQ(image.size(), 1u);
  EXPECT_TRUE(image.at(FileId{1}).complete);
  ASSERT_EQ(image.at(FileId{1}).blocks.size(), 1u);
  EXPECT_EQ(image.at(FileId{1}).blocks[0].first, BlockId{7});
}

TEST(JobTrackerJournal, ReplayReconstructsJobState) {
  sim::Simulation sim(1);
  JobTrackerJournal journal(sim);

  journal.record_submit(JobId{1}, "sort", 4, 2);
  journal.record_task_completed(JobId{1}, TaskId{0});
  journal.record_task_completed(JobId{1}, TaskId{1});
  journal.record_task_reverted(JobId{1}, TaskId{1});  // map output lost
  journal.record_submit(JobId{2}, "grep", 2, 1);
  journal.record_task_completed(JobId{2}, TaskId{0});
  journal.record_job_finished(JobId{2}, true);

  const JobTrackerImage image = journal.replay();
  ASSERT_EQ(image.size(), 2u);

  const JobImage& sort = image.at(JobId{1});
  EXPECT_EQ(sort.name, "sort");
  EXPECT_EQ(sort.num_maps, 4);
  EXPECT_EQ(sort.num_reduces, 2);
  EXPECT_FALSE(sort.finished);
  EXPECT_EQ(sort.completed_tasks, (std::set<TaskId>{TaskId{0}}));

  const JobImage& grep = image.at(JobId{2});
  EXPECT_TRUE(grep.finished);
  EXPECT_TRUE(grep.completed);
  EXPECT_EQ(grep.completed_tasks.size(), 1u);

  EXPECT_EQ(journal.stats().records_appended, 7);
  EXPECT_EQ(journal.stats().divergences, 0);
}

}  // namespace
}  // namespace moon::recovery
