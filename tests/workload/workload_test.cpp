// Table I conformance and workload-model behaviour.
#include "workload/workload.hpp"

#include <gtest/gtest.h>

namespace moon::workload {
namespace {

TEST(Workload, SortMatchesTableI) {
  const auto m = sort_workload();
  EXPECT_EQ(m.input_size, gib(24.0));
  EXPECT_EQ(m.num_maps, 384);
  EXPECT_EQ(m.fixed_reduces, 0);
  EXPECT_DOUBLE_EQ(m.reduce_slot_fraction, 0.9);
  EXPECT_EQ(m.input_block_bytes, mib(64.0));
  // 384 x 64 MB == 24 GB: block layout covers the input exactly.
  EXPECT_EQ(static_cast<Bytes>(m.num_maps) * m.input_block_bytes, m.input_size);
  // Sort shuffles its whole input.
  EXPECT_EQ(static_cast<Bytes>(m.num_maps) * m.intermediate_per_map,
            m.input_size);
}

TEST(Workload, WordCountMatchesTableI) {
  const auto m = wordcount_workload();
  EXPECT_EQ(m.input_size, gib(20.0));
  EXPECT_EQ(m.num_maps, 320);
  EXPECT_EQ(m.fixed_reduces, 20);
  EXPECT_EQ(static_cast<Bytes>(m.num_maps) * m.input_block_bytes, m.input_size);
  // Word count's intermediate data is far smaller than its input.
  EXPECT_LT(static_cast<Bytes>(m.num_maps) * m.intermediate_per_map,
            m.input_size / 10);
}

TEST(Workload, SortReducesScaleWithSlots) {
  const auto m = sort_workload();
  EXPECT_EQ(m.reduces_for(120), 108);  // paper: 0.9 x AvailSlots
  EXPECT_EQ(m.reduces_for(132), 118);
  EXPECT_EQ(m.reduces_for(0), 1);  // never zero reduces
}

TEST(Workload, WordCountReducesAreFixed) {
  const auto m = wordcount_workload();
  EXPECT_EQ(m.reduces_for(120), 20);
  EXPECT_EQ(m.reduces_for(2000), 20);
}

TEST(Workload, OutputPerReduceSplitsTotal) {
  const auto m = sort_workload();
  EXPECT_EQ(m.output_per_reduce(108), gib(24.0) / 108);
  EXPECT_GE(m.output_per_reduce(1000000000), 1);  // never zero bytes
}

TEST(Workload, SleepKeepsTaskCountsButShedsData) {
  const auto base = sort_workload();
  const auto s = sleep_of(base);
  EXPECT_EQ(s.num_maps, base.num_maps);
  EXPECT_DOUBLE_EQ(s.reduce_slot_fraction, base.reduce_slot_fraction);
  EXPECT_EQ(s.kind, AppKind::kSleepSort);
  // "Insignificant amount of intermediate and output data."
  EXPECT_LE(s.intermediate_per_map, 4 * kKiB);
  EXPECT_LE(s.total_output, kKiB);
  EXPECT_LE(s.input_block_bytes, 4 * kKiB);
  // Faithful (non-trivial) task durations.
  EXPECT_GT(s.map_compute, 0);
  EXPECT_GT(s.reduce_compute, 0);
}

TEST(Workload, SleepOfWordCountUsesWordCountTimes) {
  const auto s = sleep_of(wordcount_workload());
  EXPECT_EQ(s.kind, AppKind::kSleepWordCount);
  // wc maps are compute-heavy (~100 s); sleep reflects that.
  EXPECT_GE(s.map_compute, 60 * sim::kSecond);
}

TEST(Workload, MakeJobSpecWiresEverything) {
  const auto m = wordcount_workload();
  const FileId input{3};
  const auto spec = make_job_spec(m, input, 120, dfs::FileKind::kOpportunistic,
                                  {1, 2}, {1, 3});
  EXPECT_EQ(spec.num_maps, 320);
  EXPECT_EQ(spec.num_reduces, 20);
  EXPECT_EQ(spec.input_file, input);
  EXPECT_EQ(spec.intermediate_factor, (dfs::ReplicationFactor{1, 2}));
  EXPECT_EQ(spec.output_factor, (dfs::ReplicationFactor{1, 3}));
  EXPECT_EQ(spec.map_compute, m.map_compute);
  EXPECT_GT(spec.output_per_reduce, 0);
}

TEST(Workload, Names) {
  EXPECT_STREQ(to_string(AppKind::kSort), "sort");
  EXPECT_STREQ(to_string(AppKind::kWordCount), "word count");
  EXPECT_STREQ(to_string(AppKind::kSleepSort), "sleep(sort)");
  EXPECT_EQ(sleep_of(sort_workload()).name, "sleep(sort)");
}

}  // namespace
}  // namespace moon::workload
