// JobArrivalStream: deterministic seeded arrivals over a workload mix.
#include "workload/arrival.hpp"

#include <gtest/gtest.h>

namespace moon::workload {
namespace {

ArrivalConfig base_config() {
  ArrivalConfig cfg;
  cfg.num_jobs = 6;
  cfg.first_arrival = 60 * sim::kSecond;
  cfg.mix = {{sort_workload(), 1.0}, {wordcount_workload(), 1.0}};
  return cfg;
}

TEST(JobArrivalStream, FixedOffsetTimesAreExact) {
  ArrivalConfig cfg = base_config();
  cfg.process = ArrivalConfig::Process::kFixedOffset;
  cfg.fixed_offset = 90 * sim::kSecond;
  const auto stream = JobArrivalStream(cfg, 7).generate();
  ASSERT_EQ(stream.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(stream[static_cast<std::size_t>(i)].submit_at,
              60 * sim::kSecond + i * 90 * sim::kSecond);
    EXPECT_EQ(stream[static_cast<std::size_t>(i)].index, i);
  }
}

TEST(JobArrivalStream, RoundRobinMixCycles) {
  ArrivalConfig cfg = base_config();
  cfg.process = ArrivalConfig::Process::kFixedOffset;
  cfg.round_robin_mix = true;
  const auto stream = JobArrivalStream(cfg, 7).generate();
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].model.name, cfg.mix[i % cfg.mix.size()].model.name);
  }
}

TEST(JobArrivalStream, PoissonIsDeterministicPerSeed) {
  ArrivalConfig cfg = base_config();
  cfg.process = ArrivalConfig::Process::kPoisson;
  cfg.mean_interarrival = 120 * sim::kSecond;
  const auto a = JobArrivalStream(cfg, 42).generate();
  const auto b = JobArrivalStream(cfg, 42).generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit_at, b[i].submit_at);
    EXPECT_EQ(a[i].model.name, b[i].model.name);
  }

  const auto c = JobArrivalStream(cfg, 43).generate();
  bool any_differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].submit_at != c[i].submit_at) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(JobArrivalStream, PoissonTimesStrictlyIncrease) {
  ArrivalConfig cfg = base_config();
  cfg.process = ArrivalConfig::Process::kPoisson;
  cfg.num_jobs = 32;
  const auto stream = JobArrivalStream(cfg, 9).generate();
  ASSERT_EQ(stream.size(), 32u);
  EXPECT_EQ(stream.front().submit_at, cfg.first_arrival);
  for (std::size_t i = 1; i < stream.size(); ++i) {
    EXPECT_GT(stream[i].submit_at, stream[i - 1].submit_at);
  }
}

TEST(JobArrivalStream, ZeroWeightModelsAreNeverPicked) {
  ArrivalConfig cfg = base_config();
  cfg.process = ArrivalConfig::Process::kFixedOffset;
  cfg.num_jobs = 24;
  cfg.mix = {{sort_workload(), 0.0}, {wordcount_workload(), 1.0}};
  const auto stream = JobArrivalStream(cfg, 5).generate();
  for (const auto& arrival : stream) {
    EXPECT_EQ(arrival.model.name, wordcount_workload().name);
  }

  // Zero-weight entry *last*: the fp-edge fallback must not reach it either.
  cfg.mix = {{wordcount_workload(), 1.0}, {sort_workload(), 0.0}};
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (const auto& arrival : JobArrivalStream(cfg, seed).generate()) {
      EXPECT_EQ(arrival.model.name, wordcount_workload().name);
    }
  }
}

TEST(JobArrivalStream, RejectsDegenerateMixes) {
  ArrivalConfig empty = base_config();
  empty.mix.clear();
  EXPECT_THROW(JobArrivalStream(empty, 1), std::invalid_argument);

  ArrivalConfig weightless = base_config();
  for (auto& m : weightless.mix) m.weight = 0.0;
  EXPECT_THROW(JobArrivalStream(weightless, 1), std::invalid_argument);
}

TEST(JobArrivalStream, OpenEndedGeneratesUntilHorizon) {
  ArrivalConfig cfg = base_config();
  cfg.process = ArrivalConfig::Process::kFixedOffset;
  cfg.num_jobs = 0;  // open-ended sentinel
  cfg.fixed_offset = 90 * sim::kSecond;
  cfg.horizon = 10 * sim::kMinute;
  const auto stream = JobArrivalStream(cfg, 7).generate();
  // 60 s, 150 s, ... < 600 s -> exactly 6 arrivals; none at/past horizon.
  ASSERT_EQ(stream.size(), 6u);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].index, static_cast<int>(i));
    EXPECT_LT(stream[i].submit_at, cfg.horizon);
  }
  EXPECT_EQ(stream.back().submit_at, 60 * sim::kSecond + 5 * cfg.fixed_offset);
}

TEST(JobArrivalStream, OpenEndedPoissonIsDeterministicPerSeed) {
  ArrivalConfig cfg = base_config();
  cfg.process = ArrivalConfig::Process::kPoisson;
  cfg.num_jobs = 0;
  cfg.mean_interarrival = 2 * sim::kMinute;
  cfg.horizon = sim::kHour;
  const auto a = JobArrivalStream(cfg, 42).generate();
  const auto b = JobArrivalStream(cfg, 42).generate();
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit_at, b[i].submit_at);
    EXPECT_EQ(a[i].model.name, b[i].model.name);
  }
}

TEST(JobArrivalStream, ClosedModeDrawSequenceUnchangedByOpenEndedSupport) {
  // The open-ended rewrite must not perturb historical closed-mode streams:
  // a closed stream is the prefix of the open-ended stream over the same
  // seed/process (same gap and mix draws, in the same order).
  ArrivalConfig closed = base_config();
  closed.process = ArrivalConfig::Process::kPoisson;
  closed.num_jobs = 8;
  closed.mean_interarrival = 2 * sim::kMinute;
  const auto closed_stream = JobArrivalStream(closed, 11).generate();
  ASSERT_EQ(closed_stream.size(), 8u);

  ArrivalConfig open = closed;
  open.num_jobs = 0;
  open.horizon = closed_stream.back().submit_at + 1;
  const auto open_stream = JobArrivalStream(open, 11).generate();
  ASSERT_GE(open_stream.size(), closed_stream.size());
  for (std::size_t i = 0; i < closed_stream.size(); ++i) {
    EXPECT_EQ(open_stream[i].submit_at, closed_stream[i].submit_at);
    EXPECT_EQ(open_stream[i].model.name, closed_stream[i].model.name);
  }
}

TEST(JobArrivalStream, RejectsInvalidOpenEndedConfigs) {
  ArrivalConfig negative = base_config();
  negative.num_jobs = -1;
  EXPECT_THROW(JobArrivalStream(negative, 1), std::invalid_argument);

  ArrivalConfig no_horizon = base_config();
  no_horizon.num_jobs = 0;  // open-ended but horizon left at 0
  EXPECT_THROW(JobArrivalStream(no_horizon, 1), std::invalid_argument);

  ArrivalConfig bad_poisson = base_config();
  bad_poisson.num_jobs = 0;
  bad_poisson.horizon = sim::kHour;
  bad_poisson.process = ArrivalConfig::Process::kPoisson;
  bad_poisson.mean_interarrival = 0;
  EXPECT_THROW(JobArrivalStream(bad_poisson, 1), std::invalid_argument);
}

}  // namespace
}  // namespace moon::workload
