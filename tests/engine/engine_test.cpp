#include "engine/mapreduce.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>

#include "engine/record.hpp"

namespace moon::engine {
namespace {

MapFn wordcount_map() {
  return [](const Record& r, const Emit& emit) {
    for (const auto& word : tokenize(r.value)) emit({word, "1"});
  };
}

ReduceFn counting_reduce() {
  return [](const std::string& key, const std::vector<std::string>& values,
            const Emit& emit) {
    long total = 0;
    for (const auto& v : values) total += std::stol(v);
    emit({key, std::to_string(total)});
  };
}

TEST(Engine, WordCountOnSmallText) {
  MapReduceJob job(wordcount_map(), counting_reduce());
  const auto input = records_from_lines("the quick brown fox\nthe lazy dog\nthe end");
  const auto result = job.run(input);

  std::map<std::string, std::string> counts;
  for (const auto& r : result.output) counts[r.key] = r.value;
  EXPECT_EQ(counts["the"], "3");
  EXPECT_EQ(counts["quick"], "1");
  EXPECT_EQ(counts["dog"], "1");
  EXPECT_EQ(counts.size(), 7u);
  EXPECT_EQ(result.metrics.output_records, 7u);
}

TEST(Engine, OutputIsSortedByKey) {
  MapReduceJob job(wordcount_map(), counting_reduce());
  const auto result = job.run(records_from_lines("b a c b a"));
  ASSERT_EQ(result.output.size(), 3u);
  EXPECT_EQ(result.output[0].key, "a");
  EXPECT_EQ(result.output[1].key, "b");
  EXPECT_EQ(result.output[2].key, "c");
}

TEST(Engine, IdentityJobSortsRecords) {
  // The paper's `sort` benchmark: identity map + identity reduce; the
  // framework's grouping/ordering does the sorting.
  MapReduceJob job(
      [](const Record& r, const Emit& emit) { emit(r); },
      [](const std::string& key, const std::vector<std::string>& values,
         const Emit& emit) {
        for (const auto& v : values) emit({key, v});
      },
      EngineConfig{.num_map_tasks = 4, .num_reduce_tasks = 3});
  Records input;
  for (int i = 99; i >= 0; --i) {
    input.push_back({"k" + std::to_string(1000 + i), "v" + std::to_string(i)});
  }
  const auto result = job.run(input);
  ASSERT_EQ(result.output.size(), 100u);
  EXPECT_TRUE(std::is_sorted(result.output.begin(), result.output.end()));
  EXPECT_EQ(result.output.front().key, "k1000");
  EXPECT_EQ(result.output.back().key, "k1099");
}

TEST(Engine, EmptyInputYieldsEmptyOutput) {
  MapReduceJob job(wordcount_map(), counting_reduce());
  const auto result = job.run({});
  EXPECT_TRUE(result.output.empty());
  EXPECT_GE(result.metrics.map_tasks, 1);
}

TEST(Engine, CombinerPreAggregatesIntermediateData) {
  MapReduceJob with(wordcount_map(), counting_reduce(),
                    EngineConfig{.num_map_tasks = 2, .num_reduce_tasks = 2});
  with.set_combiner(counting_reduce());
  MapReduceJob without(wordcount_map(), counting_reduce(),
                       EngineConfig{.num_map_tasks = 2, .num_reduce_tasks = 2});

  std::string text;
  for (int i = 0; i < 500; ++i) text += "alpha beta alpha\n";
  const auto input = records_from_lines(text);

  const auto a = with.run(input);
  const auto b = without.run(input);
  // Same answer...
  EXPECT_EQ(a.output, b.output);
  // ...but far fewer intermediate records cross the shuffle.
  EXPECT_LT(a.metrics.intermediate_records, b.metrics.intermediate_records / 10);
}

TEST(Engine, MapTaskCountHonoursConfig) {
  MapReduceJob job(wordcount_map(), counting_reduce(),
                   EngineConfig{.num_map_tasks = 7});
  const auto result = job.run(records_from_lines("a b c"));
  EXPECT_EQ(result.metrics.map_tasks, 7);
}

TEST(Engine, AutomaticSplittingByRecordCount) {
  MapReduceJob job(wordcount_map(), counting_reduce(),
                   EngineConfig{.num_map_tasks = 0, .records_per_split = 10});
  Records input;
  for (int i = 0; i < 95; ++i) input.push_back({std::to_string(i), "x"});
  const auto result = job.run(input);
  EXPECT_EQ(result.metrics.map_tasks, 10);  // ceil(95/10)
}

TEST(Engine, FailedAttemptsAreRetried) {
  MapReduceJob job(wordcount_map(), counting_reduce(),
                   EngineConfig{.num_map_tasks = 3, .num_reduce_tasks = 2,
                                .max_attempts = 4});
  // First two attempts of map task 1 fail; everything else succeeds.
  job.set_fault_injector([](const TaskContext& ctx) {
    return ctx.is_map && ctx.task_index == 1 && ctx.attempt < 2;
  });
  const auto result = job.run(records_from_lines("a b\nc d\ne f"));
  EXPECT_EQ(result.metrics.failed_attempts, 2);
  EXPECT_GT(result.metrics.map_attempts, 3);
  EXPECT_EQ(result.output.size(), 6u);  // correct despite the failures
}

TEST(Engine, ReduceFailuresAreRetriedToo) {
  MapReduceJob job(wordcount_map(), counting_reduce(),
                   EngineConfig{.num_reduce_tasks = 2, .max_attempts = 3});
  std::atomic<int> injected{0};
  job.set_fault_injector([&](const TaskContext& ctx) {
    if (!ctx.is_map && ctx.attempt == 0) {
      ++injected;
      return true;
    }
    return false;
  });
  const auto result = job.run(records_from_lines("x y z"));
  EXPECT_EQ(injected.load(), 2);  // both reduce tasks failed once
  EXPECT_EQ(result.output.size(), 3u);
}

TEST(Engine, JobFailsWhenAttemptsExhausted) {
  MapReduceJob job(wordcount_map(), counting_reduce(),
                   EngineConfig{.num_map_tasks = 2, .max_attempts = 3});
  job.set_fault_injector([](const TaskContext& ctx) {
    return ctx.is_map && ctx.task_index == 0;  // always fails
  });
  EXPECT_THROW(job.run(records_from_lines("a b c")), JobFailedError);
}

TEST(Engine, UserExceptionsCountAsFailures) {
  int calls = 0;
  MapReduceJob job(
      [&calls](const Record& r, const Emit& emit) {
        if (r.value == "poison" && calls++ == 0) {
          throw std::runtime_error("bad record");
        }
        emit({r.value, "1"});
      },
      counting_reduce(), EngineConfig{.num_map_tasks = 1, .max_attempts = 2});
  const auto result = job.run({{"0", "poison"}});
  EXPECT_EQ(result.metrics.failed_attempts, 1);
  EXPECT_EQ(result.output.size(), 1u);
}

TEST(Engine, DeterministicAcrossThreadCounts) {
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "w" + std::to_string(i % 17) + " w" + std::to_string(i % 5) + "\n";
  }
  const auto input = records_from_lines(text);

  MapReduceJob one(wordcount_map(), counting_reduce(),
                   EngineConfig{.num_map_tasks = 8, .num_reduce_tasks = 3,
                                .threads = 1});
  MapReduceJob many(wordcount_map(), counting_reduce(),
                    EngineConfig{.num_map_tasks = 8, .num_reduce_tasks = 3,
                                 .threads = 8});
  EXPECT_EQ(one.run(input).output, many.run(input).output);
}

TEST(Engine, RejectsBadConfig) {
  EXPECT_THROW(MapReduceJob(nullptr, counting_reduce()), std::logic_error);
  EXPECT_THROW(MapReduceJob(wordcount_map(), nullptr), std::logic_error);
  EXPECT_THROW(MapReduceJob(wordcount_map(), counting_reduce(),
                            EngineConfig{.num_reduce_tasks = 0}),
               std::logic_error);
  EXPECT_THROW(MapReduceJob(wordcount_map(), counting_reduce(),
                            EngineConfig{.max_attempts = 0}),
               std::logic_error);
}

TEST(Records, FromLinesNumbersKeys) {
  const auto records = records_from_lines("alpha\nbeta\n\ngamma");
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0], (Record{"0", "alpha"}));
  EXPECT_EQ(records[2], (Record{"2", ""}));
  EXPECT_EQ(records[3], (Record{"3", "gamma"}));
}

TEST(Records, TokenizeHandlesWhitespaceRuns) {
  EXPECT_EQ(tokenize("  a\t b\n\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(tokenize("   ").empty());
  EXPECT_TRUE(tokenize("").empty());
}

/// Property sweep: word counts are exact for any partition/split geometry.
class EngineGeometry
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EngineGeometry, CountsAreExact) {
  const auto [maps, reduces] = GetParam();
  MapReduceJob job(wordcount_map(), counting_reduce(),
                   EngineConfig{.num_map_tasks = maps,
                                .num_reduce_tasks = reduces});
  std::string text;
  for (int i = 0; i < 100; ++i) text += "tok" + std::to_string(i % 7) + "\n";
  const auto result = job.run(records_from_lines(text));
  ASSERT_EQ(result.output.size(), 7u);
  long total = 0;
  for (const auto& r : result.output) total += std::stol(r.value);
  EXPECT_EQ(total, 100);
}

INSTANTIATE_TEST_SUITE_P(Geometries, EngineGeometry,
                         ::testing::Combine(::testing::Values(1, 3, 16),
                                            ::testing::Values(1, 2, 8)));

}  // namespace
}  // namespace moon::engine
