// Event-loop slab storage: EventId recycling under the generation scheme,
// tombstone-compaction bounds under cancel/re-arm churn, and callback
// lifetime (destruction order) under step()/run_until().
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/inline_function.hpp"
#include "simkit/simulation.hpp"

namespace moon::sim {
namespace {

TEST(EventSlab, CancelAfterFireNeverHitsRecycledSlot) {
  Simulation sim;
  bool second_fired = false;
  const EventId first = sim.schedule_at(10, [] {});
  sim.run();  // `first` fires; its slot goes back on the free list

  // The next schedule reuses the slot; the stale id must not cancel it.
  const EventId second = sim.schedule_at(20, [&] { second_fired = true; });
  EXPECT_NE(first, second);  // generation differs even if the slot matches
  sim.cancel(first);         // stale: harmless no-op
  EXPECT_TRUE(sim.is_pending(second));
  sim.run();
  EXPECT_TRUE(second_fired);
}

TEST(EventSlab, CancelAfterCancelNeverHitsRecycledSlot) {
  Simulation sim;
  const EventId first = sim.schedule_at(10, [] {});
  sim.cancel(first);
  bool fired = false;
  const EventId second = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_FALSE(sim.is_pending(first));
  EXPECT_TRUE(sim.is_pending(second));
  sim.cancel(first);  // double-stale
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(EventSlab, RecycledIdsStayDistinguishableAcrossManyGenerations) {
  Simulation sim;
  std::vector<EventId> history;
  for (int round = 0; round < 100; ++round) {
    const EventId id = sim.schedule_at(round, [] {});
    for (const EventId old : history) EXPECT_NE(old, id);
    history.push_back(id);
    sim.cancel(id);  // immediate recycle: next round reuses the same slot
  }
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(EventSlab, CancelRearmChurnKeepsQueueNearLiveSet) {
  // The flow network's completion event cancels and re-arms on nearly every
  // settle. The tombstones this leaves behind must stay bounded by
  // compaction: queued_entries() <= ~2x pending_events().
  Simulation sim;
  for (int i = 0; i < 200; ++i) sim.schedule_at(1'000'000 + i, [] {});
  EventId rearmed = sim.schedule_at(2'000'000, [] {});
  for (int i = 0; i < 10'000; ++i) {
    sim.cancel(rearmed);
    rearmed = sim.schedule_at(2'000'000 + i, [] {});
  }
  EXPECT_EQ(sim.pending_events(), 201u);
  EXPECT_LE(sim.queued_entries(), 2 * sim.pending_events());
  sim.run();
  EXPECT_EQ(sim.executed_events(), 201u);
}

TEST(EventSlab, FiredCallbackIsDestroyedBeforeNextEventRuns) {
  // The slab must not keep fired closures (and their captures) alive: the
  // callback's resources are released before the next event executes, and
  // in timestamp order under run_until.
  Simulation sim;
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  bool was_released = false;
  sim.schedule_at(10, [t = std::move(token)] { /* owns the token */ });
  sim.schedule_at(20, [&] { was_released = watch.expired(); });
  sim.run_until(15);
  EXPECT_TRUE(watch.expired());  // fired at t=10, destroyed within the step
  sim.run_until(25);
  EXPECT_TRUE(was_released);
}

TEST(EventSlab, PendingCallbacksSurviveRunUntilAndDieOnCancel) {
  Simulation sim;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  const EventId id = sim.schedule_at(100, [t = std::move(token)] {});
  sim.run_until(50);
  EXPECT_FALSE(watch.expired());  // still pending: capture must stay alive
  sim.cancel(id);
  EXPECT_TRUE(watch.expired());  // cancel destroys the closure immediately
}

TEST(EventSlab, MoveOnlyAndOversizedCapturesWork) {
  Simulation sim;
  // Move-only capture (std::function would reject this closure).
  auto owned = std::make_unique<int>(5);
  int seen = 0;
  sim.schedule_at(1, [p = std::move(owned), &seen] { seen = *p; });
  // Oversized capture (> inline budget): exercises the heap fallback.
  struct Big {
    long payload[16];
  };
  Big big{};
  big.payload[15] = 99;
  long big_seen = 0;
  static_assert(!Simulation::Callback::fits_inline<Big>());
  sim.schedule_at(2, [big, &big_seen] { big_seen = big.payload[15]; });
  sim.run();
  EXPECT_EQ(seen, 5);
  EXPECT_EQ(big_seen, 99);
}

TEST(EventSlab, SelfRescheduleFromCallbackReusesSlotSafely) {
  // A firing callback scheduling a new event may land on its own just-freed
  // slot; the returned id must address the new event, not the dead one.
  Simulation sim;
  int hops = 0;
  std::vector<EventId> ids;
  std::function<void()> chain = [&] {
    if (++hops < 50) ids.push_back(sim.schedule_after(1, chain));
  };
  ids.push_back(sim.schedule_at(0, chain));
  sim.run();
  EXPECT_EQ(hops, 50);
  for (const EventId id : ids) EXPECT_FALSE(sim.is_pending(id));
}

TEST(FlushHooks, HookMayRegisterAndRemoveHooksWhileRunning) {
  // A flush hook's body may register hooks (growing the hook vector can
  // reallocate) or deregister itself (its slot is overwritten); neither may
  // invalidate the closure that is still executing (ASan-visible if broken).
  Simulation sim;
  int fired = 0;
  std::vector<Simulation::FlushHookId> added;
  Simulation::FlushHookId self = 0;
  self = sim.add_flush_hook([&] {
    ++fired;
    for (int i = 0; i < 64; ++i) {
      added.push_back(sim.add_flush_hook([&] { ++fired; }));
    }
    sim.remove_flush_hook(self);  // slot reuse must not clobber this closure
  });
  sim.arm_flush(self);
  sim.schedule_at(10, [] {});
  sim.run();  // boundary crossing runs the armed hook
  EXPECT_EQ(fired, 1);

  // The hooks registered mid-flush are live and runnable afterwards.
  for (const auto id : added) sim.arm_flush(id);
  sim.schedule_at(20, [] {});
  sim.run();
  EXPECT_EQ(fired, 65);
  // The removed hook's id may have been recycled; arming it must not crash
  // the next flush (it either no-ops into a dead slot or runs the reused
  // hook, which is the documented id-reuse semantics of remove+add).
  for (const auto id : added) sim.remove_flush_hook(id);
}

TEST(FlushHooks, RemovedHookNeverRunsAndArmingItThrows) {
  Simulation sim;
  bool ran = false;
  const auto id = sim.add_flush_hook([&] { ran = true; });
  sim.remove_flush_hook(id);
  EXPECT_THROW(sim.arm_flush(id), std::logic_error);
  sim.schedule_at(5, [] {});
  sim.run();
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace moon::sim
