#include "simkit/periodic.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace moon::sim {
namespace {

TEST(PeriodicTask, FiresAtEveryInterval) {
  Simulation sim;
  std::vector<Time> fires;
  PeriodicTask task(sim, 10 * kSecond, [&] { fires.push_back(sim.now()); });
  task.start();
  sim.run_until(35 * kSecond);
  EXPECT_EQ(fires, (std::vector<Time>{10 * kSecond, 20 * kSecond, 30 * kSecond}));
}

TEST(PeriodicTask, StartAfterCustomDelay) {
  Simulation sim;
  std::vector<Time> fires;
  PeriodicTask task(sim, 10 * kSecond, [&] { fires.push_back(sim.now()); });
  task.start_after(3 * kSecond);
  sim.run_until(25 * kSecond);
  EXPECT_EQ(fires, (std::vector<Time>{3 * kSecond, 13 * kSecond, 23 * kSecond}));
}

TEST(PeriodicTask, StopHaltsFiring) {
  Simulation sim;
  int fires = 0;
  PeriodicTask task(sim, kSecond, [&] { ++fires; });
  task.start();
  sim.run_until(5 * kSecond);
  task.stop();
  sim.run_until(100 * kSecond);
  EXPECT_EQ(fires, 5);
  EXPECT_FALSE(task.active());
}

TEST(PeriodicTask, RestartAfterStop) {
  Simulation sim;
  int fires = 0;
  PeriodicTask task(sim, kSecond, [&] { ++fires; });
  task.start();
  sim.run_until(2 * kSecond);
  task.stop();
  sim.run_until(10 * kSecond);
  task.start();
  sim.run_until(13 * kSecond);
  EXPECT_EQ(fires, 5);  // 2 before stop + 3 after restart (11,12,13)
}

TEST(PeriodicTask, CallbackMayStopItself) {
  Simulation sim;
  int fires = 0;
  PeriodicTask task(sim, kSecond, [&] {
    if (++fires == 3) task.stop();
  });
  task.start();
  sim.run_until(60 * kSecond);
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTask, DoubleStartIsNoOp) {
  Simulation sim;
  int fires = 0;
  PeriodicTask task(sim, kSecond, [&] { ++fires; });
  task.start();
  task.start();
  sim.run_until(kSecond);
  EXPECT_EQ(fires, 1);
}

TEST(PeriodicTask, NonPositiveIntervalThrows) {
  Simulation sim;
  EXPECT_THROW(PeriodicTask(sim, 0, [] {}), std::logic_error);
  EXPECT_THROW(PeriodicTask(sim, -5, [] {}), std::logic_error);
}

TEST(PeriodicTask, DestructorCancelsPendingFire) {
  Simulation sim;
  int fires = 0;
  {
    PeriodicTask task(sim, kSecond, [&] { ++fires; });
    task.start();
  }
  sim.run_until(10 * kSecond);
  EXPECT_EQ(fires, 0);
}

}  // namespace
}  // namespace moon::sim
