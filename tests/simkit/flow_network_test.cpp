#include "simkit/flow_network.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/units.hpp"
#include "simkit/simulation.hpp"

namespace moon::sim {
namespace {

/// Runs both fairness models × both solver modes × both coalesce modes
/// through the same scenarios where their behaviour must agree
/// (single-bottleneck cases). Covering the dense/eager oracles here keeps
/// the equivalence test's references trustworthy.
class FlowModelTest
    : public ::testing::TestWithParam<
          std::tuple<FairnessModel, SolverMode, CoalesceMode>> {
 protected:
  Simulation sim_;
  FlowNetwork net_{sim_, std::get<0>(GetParam()), std::get<1>(GetParam()),
                   std::get<2>(GetParam())};
};

TEST_P(FlowModelTest, SingleFlowFinishesAtExpectedTime) {
  const auto r = net_.add_resource(100.0);  // 100 B/s
  Time done_at = -1;
  net_.start_flow({r}, 1000, [&](FlowId) { done_at = sim_.now(); });
  sim_.run();
  EXPECT_EQ(done_at, 10 * kSecond);
}

TEST_P(FlowModelTest, TwoFlowsShareACapacityEqually) {
  const auto r = net_.add_resource(100.0);
  std::vector<Time> done;
  net_.start_flow({r}, 1000, [&](FlowId) { done.push_back(sim_.now()); });
  net_.start_flow({r}, 1000, [&](FlowId) { done.push_back(sim_.now()); });
  sim_.run();
  ASSERT_EQ(done.size(), 2u);
  // Each gets 50 B/s -> both finish at ~20 s.
  EXPECT_NEAR(to_seconds(done[0]), 20.0, 0.01);
  EXPECT_NEAR(to_seconds(done[1]), 20.0, 0.01);
}

TEST_P(FlowModelTest, FlowCrossingTwoResourcesIsBottlenecked) {
  const auto fast = net_.add_resource(1000.0);
  const auto slow = net_.add_resource(10.0);
  Time done_at = -1;
  net_.start_flow({fast, slow}, 100, [&](FlowId) { done_at = sim_.now(); });
  sim_.run();
  EXPECT_NEAR(to_seconds(done_at), 10.0, 0.01);
}

TEST_P(FlowModelTest, EarlyFinisherReleasesCapacity) {
  const auto r = net_.add_resource(100.0);
  Time small_done = -1, large_done = -1;
  net_.start_flow({r}, 500, [&](FlowId) { small_done = sim_.now(); });
  net_.start_flow({r}, 1500, [&](FlowId) { large_done = sim_.now(); });
  sim_.run();
  // Shared at 50 B/s until t=10 (small ends); large then has 1000 B left at
  // 100 B/s -> ends at 20.
  EXPECT_NEAR(to_seconds(small_done), 10.0, 0.01);
  EXPECT_NEAR(to_seconds(large_done), 20.0, 0.01);
}

TEST_P(FlowModelTest, ZeroCapacityStallsFlow) {
  const auto r = net_.add_resource(100.0);
  bool done = false;
  const FlowId f = net_.start_flow({r}, 1000, [&](FlowId) { done = true; });
  net_.set_capacity(r, 0.0);
  sim_.run_until(1000 * kSecond);
  EXPECT_FALSE(done);
  EXPECT_EQ(net_.rate(f), 0.0);
  EXPECT_TRUE(net_.active(f));
}

TEST_P(FlowModelTest, StalledFlowResumesWhenCapacityReturns) {
  const auto r = net_.add_resource(100.0);
  Time done_at = -1;
  net_.start_flow({r}, 1000, [&](FlowId) { done_at = sim_.now(); });
  sim_.run_until(5 * kSecond);  // 500 bytes moved
  net_.set_capacity(r, 0.0);
  sim_.run_until(65 * kSecond);  // stalled for 60 s
  net_.set_capacity(r, 100.0);
  sim_.run();
  EXPECT_NEAR(to_seconds(done_at), 70.0, 0.01);
}

TEST_P(FlowModelTest, StalledFlowDoesNotStealCapacityFromLiveFlows) {
  // Two flows share resource r; one also crosses a dead resource and stalls.
  // The live flow must receive the full capacity of r.
  const auto r = net_.add_resource(100.0);
  const auto dead = net_.add_resource(0.0);
  Time live_done = -1;
  net_.start_flow({r, dead}, 1000, [](FlowId) {});
  net_.start_flow({r}, 1000, [&](FlowId) { live_done = sim_.now(); });
  sim_.run_until(30 * kSecond);
  EXPECT_NEAR(to_seconds(live_done), 10.0, 0.01);
}

TEST_P(FlowModelTest, AbortSuppressesCompletion) {
  const auto r = net_.add_resource(100.0);
  bool done = false;
  const FlowId f = net_.start_flow({r}, 1000, [&](FlowId) { done = true; });
  sim_.run_until(5 * kSecond);
  net_.abort_flow(f);
  sim_.run();
  EXPECT_FALSE(done);
  EXPECT_FALSE(net_.active(f));
}

TEST_P(FlowModelTest, AbortFreesCapacityForRemainingFlows) {
  const auto r = net_.add_resource(100.0);
  Time done_at = -1;
  const FlowId victim = net_.start_flow({r}, 10000, [](FlowId) {});
  net_.start_flow({r}, 1000, [&](FlowId) { done_at = sim_.now(); });
  sim_.run_until(5 * kSecond);  // survivor moved 250 bytes
  net_.abort_flow(victim);
  sim_.run();
  // 750 bytes left at 100 B/s -> total 12.5 s.
  EXPECT_NEAR(to_seconds(done_at), 12.5, 0.01);
}

TEST_P(FlowModelTest, RemainingDecreasesMonotonically) {
  const auto r = net_.add_resource(100.0);
  const FlowId f = net_.start_flow({r}, 1000, [](FlowId) {});
  Bytes prev = net_.remaining(f);
  for (int i = 1; i <= 9; ++i) {
    sim_.run_until(i * kSecond);
    const Bytes now = net_.remaining(f);
    EXPECT_LE(now, prev);
    prev = now;
  }
}

TEST_P(FlowModelTest, ZeroSizeFlowCompletesAsynchronously) {
  const auto r = net_.add_resource(100.0);
  bool done_in_start = false;
  bool done = false;
  net_.start_flow({r}, 0, [&](FlowId) { done = true; });
  done_in_start = done;  // must not have completed synchronously
  sim_.run();
  EXPECT_FALSE(done_in_start);
  EXPECT_TRUE(done);
}

TEST_P(FlowModelTest, CompletionCallbackMayStartNewFlow) {
  const auto r = net_.add_resource(100.0);
  Time second_done = -1;
  net_.start_flow({r}, 100, [&](FlowId) {
    net_.start_flow({r}, 100, [&](FlowId) { second_done = sim_.now(); });
  });
  sim_.run();
  EXPECT_NEAR(to_seconds(second_done), 2.0, 0.01);
}

TEST_P(FlowModelTest, TransferredThroughAccumulates) {
  const auto r = net_.add_resource(100.0);
  net_.start_flow({r}, 500, [](FlowId) {});
  sim_.run();
  EXPECT_NEAR(net_.transferred_through(r), 500.0, 1.0);
  net_.start_flow({r}, 300, [](FlowId) {});
  sim_.run();
  EXPECT_NEAR(net_.transferred_through(r), 800.0, 1.0);
}

TEST_P(FlowModelTest, StalledFlowsDoNotPinLoadCounts) {
  // Regression for the bottleneck-share stalled-flow exclusion: flows with a
  // zero-capacity resource on their path must not be counted in the load of
  // the live resources they cross (without the exclusion the live flow below
  // would be pinned to a third of the capacity it can actually use).
  const auto r = net_.add_resource(100.0);
  const auto down1 = net_.add_resource(100.0);
  const auto down2 = net_.add_resource(100.0);
  const FlowId stalled1 = net_.start_flow({r, down1}, 1'000'000, [](FlowId) {});
  const FlowId stalled2 = net_.start_flow({r, down2}, 1'000'000, [](FlowId) {});
  const FlowId live = net_.start_flow({r}, 1'000'000, [](FlowId) {});
  net_.set_capacity(down1, 0.0);
  net_.set_capacity(down2, 0.0);
  EXPECT_EQ(net_.rate(stalled1), 0.0);
  EXPECT_EQ(net_.rate(stalled2), 0.0);
  EXPECT_NEAR(net_.rate(live), 100.0, 0.01);
  // Reviving one endpoint re-admits exactly that flow to the shared count.
  net_.set_capacity(down1, 100.0);
  EXPECT_NEAR(net_.rate(stalled1), 50.0, 0.01);
  EXPECT_NEAR(net_.rate(live), 50.0, 0.01);
  EXPECT_EQ(net_.rate(stalled2), 0.0);
}

TEST_P(FlowModelTest, CompletionCallbackMayAbortFlowsMidSettle) {
  const auto r = net_.add_resource(100.0);
  bool victim_done = false;
  Time third_done = -1;
  const FlowId victim =
      net_.start_flow({r}, 100000, [&](FlowId) { victim_done = true; });
  // The short flow finishes first and kills the victim from inside the
  // settle's retire cascade.
  net_.start_flow({r}, 500, [&](FlowId) { net_.abort_flow(victim); });
  net_.start_flow({r}, 2000, [&](FlowId) { third_done = sim_.now(); });
  sim_.run();
  EXPECT_FALSE(victim_done);
  // Three-way share (33.3 B/s) until t=15 (short flow ends, victim dies);
  // the survivor then has 1500 bytes left at the full 100 B/s -> t=30.
  EXPECT_NEAR(to_seconds(third_done), 30.0, 0.01);
}

TEST_P(FlowModelTest, CompletionCallbackMayChangeCapacityMidSettle) {
  const auto r = net_.add_resource(100.0);
  Time done_at = -1;
  net_.start_flow({r}, 400, [&](FlowId) { net_.set_capacity(r, 25.0); });
  net_.start_flow({r}, 1000, [&](FlowId) { done_at = sim_.now(); });
  sim_.run();
  // Shared at 50 B/s until t=8 (first ends and shrinks the capacity); the
  // survivor's 600 remaining bytes then move at 25 B/s -> t=32.
  EXPECT_NEAR(to_seconds(done_at), 32.0, 0.01);
}

TEST_P(FlowModelTest, ResourcelessFlowCompletesImmediately) {
  bool done = false;
  net_.start_flow({}, 1000, [&](FlowId) { done = true; });
  EXPECT_FALSE(done);  // still asynchronous
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim_.now(), 0);
}

TEST_P(FlowModelTest, CapacityBatchAppliesChurnInOneSettle) {
  const auto a = net_.add_resource(100.0);
  const auto b = net_.add_resource(100.0);
  const FlowId f = net_.start_flow({a, b}, 100000, [](FlowId) {});
  {
    FlowNetwork::CapacityBatch batch(net_);
    net_.set_capacity(a, 0.0);
    net_.set_capacity(b, 40.0);
    // While the batch is open rates are the pre-batch allocation.
    EXPECT_NEAR(net_.rate(f), 100.0, 0.01);
    batch.close();  // explicit close settles; the destructor becomes a no-op
    EXPECT_EQ(net_.rate(f), 0.0);
  }
  EXPECT_EQ(net_.rate(f), 0.0);  // a is down
  net_.set_capacity(a, 80.0);
  EXPECT_NEAR(net_.rate(f), 40.0, 0.01);
}

TEST_P(FlowModelTest, NestedCapacityBatchesSettleOnce) {
  const auto a = net_.add_resource(100.0);
  const FlowId f = net_.start_flow({a}, 100000, [](FlowId) {});
  {
    FlowNetwork::CapacityBatch outer(net_);
    net_.set_capacity(a, 10.0);
    {
      FlowNetwork::CapacityBatch inner(net_);
      net_.set_capacity(a, 20.0);
    }
    // The inner batch close must not settle while the outer one is open.
    EXPECT_NEAR(net_.rate(f), 100.0, 0.01);
  }
  EXPECT_NEAR(net_.rate(f), 20.0, 0.01);
}

TEST_P(FlowModelTest, ManyFlowsAllComplete) {
  const auto a = net_.add_resource(1000.0);
  const auto b = net_.add_resource(500.0);
  int completed = 0;
  for (int i = 0; i < 50; ++i) {
    net_.start_flow({i % 2 == 0 ? a : b, i % 3 == 0 ? b : a}, 100 + i * 10,
                    [&](FlowId) { ++completed; });
  }
  sim_.run();
  EXPECT_EQ(completed, 50);
  EXPECT_EQ(net_.active_flows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Models, FlowModelTest,
    ::testing::Combine(::testing::Values(FairnessModel::kMaxMin,
                                         FairnessModel::kBottleneckShare),
                       ::testing::Values(SolverMode::kIncremental,
                                         SolverMode::kDense),
                       ::testing::Values(CoalesceMode::kCoalesced,
                                         CoalesceMode::kEager)),
    [](const auto& param_info) {
      std::string name = std::get<0>(param_info.param) == FairnessModel::kMaxMin
                             ? "MaxMin"
                             : "BottleneckShare";
      name += std::get<1>(param_info.param) == SolverMode::kIncremental
                  ? "Incremental"
                  : "Dense";
      name += std::get<2>(param_info.param) == CoalesceMode::kCoalesced
                  ? "Coalesced"
                  : "Eager";
      return name;
    });

// ---- max-min-specific behaviour -------------------------------------------

TEST(FlowMaxMin, ResidualCapacityIsRedistributed) {
  Simulation sim;
  FlowNetwork net(sim, FairnessModel::kMaxMin);
  // Flow A crosses narrow (10 B/s) and wide (100 B/s); flow B crosses wide
  // only. Max-min: A gets 10, B gets the residual 90.
  const auto narrow = net.add_resource(10.0);
  const auto wide = net.add_resource(100.0);
  const FlowId a = net.start_flow({narrow, wide}, 1000000, [](FlowId) {});
  const FlowId b = net.start_flow({wide}, 1000000, [](FlowId) {});
  EXPECT_NEAR(net.rate(a), 10.0, 0.01);
  EXPECT_NEAR(net.rate(b), 90.0, 0.01);
}

TEST(FlowBottleneckShare, ApproximationIsConservative) {
  Simulation sim;
  FlowNetwork net(sim, FairnessModel::kBottleneckShare);
  const auto narrow = net.add_resource(10.0);
  const auto wide = net.add_resource(100.0);
  const FlowId a = net.start_flow({narrow, wide}, 1000000, [](FlowId) {});
  const FlowId b = net.start_flow({wide}, 1000000, [](FlowId) {});
  // A is bottlenecked at 10; B gets wide/2 = 50 (no residual redistribution),
  // so the approximation never over-subscribes: 10 + 50 <= 100.
  EXPECT_NEAR(net.rate(a), 10.0, 0.01);
  EXPECT_NEAR(net.rate(b), 50.0, 0.01);
}

TEST(FlowNetwork, InvalidResourceThrows) {
  Simulation sim;
  FlowNetwork net(sim);
  EXPECT_THROW(net.start_flow({99}, 10, nullptr), std::out_of_range);
  EXPECT_THROW(net.add_resource(-1.0), std::logic_error);
}

TEST(FlowNetwork, RateOfUnknownFlowIsZero) {
  Simulation sim;
  FlowNetwork net(sim);
  EXPECT_EQ(net.rate(FlowId{12345}), 0.0);
  EXPECT_EQ(net.remaining(FlowId{12345}), 0);
  EXPECT_FALSE(net.active(FlowId{12345}));
}

}  // namespace
}  // namespace moon::sim
