#include "simkit/work_unit.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace moon::sim {
namespace {

TEST(WorkUnit, CompletesAfterTotalWork) {
  Simulation sim;
  Time done_at = -1;
  WorkUnit unit(sim, 10 * kSecond, [&] { done_at = sim.now(); });
  unit.start();
  sim.run();
  EXPECT_EQ(done_at, 10 * kSecond);
  EXPECT_TRUE(unit.finished());
  EXPECT_DOUBLE_EQ(unit.progress(), 1.0);
}

TEST(WorkUnit, DoesNotRunUntilStarted) {
  Simulation sim;
  bool done = false;
  WorkUnit unit(sim, 10 * kSecond, [&] { done = true; });
  sim.run_until(100 * kSecond);
  EXPECT_FALSE(done);
  EXPECT_DOUBLE_EQ(unit.progress(), 0.0);
}

TEST(WorkUnit, PauseFreezesProgress) {
  Simulation sim;
  Time done_at = -1;
  WorkUnit unit(sim, 10 * kSecond, [&] { done_at = sim.now(); });
  unit.start();
  sim.run_until(4 * kSecond);
  unit.pause();
  EXPECT_NEAR(unit.progress(), 0.4, 1e-9);
  sim.run_until(100 * kSecond);
  EXPECT_EQ(done_at, -1);
  EXPECT_NEAR(unit.progress(), 0.4, 1e-9);  // unchanged while paused
  unit.start();
  sim.run();
  EXPECT_EQ(done_at, 106 * kSecond);
}

TEST(WorkUnit, MultiplePauseResumeCycles) {
  Simulation sim;
  Time done_at = -1;
  WorkUnit unit(sim, 10 * kSecond, [&] { done_at = sim.now(); });
  unit.start();
  for (int i = 0; i < 4; ++i) {
    sim.run_until(sim.now() + 2 * kSecond);
    unit.pause();
    sim.run_until(sim.now() + 5 * kSecond);
    unit.start();
  }
  sim.run();
  // 8 s of work done across cycles; 2 s left after the last resume.
  EXPECT_EQ(done_at, (4 * (2 + 5) + 2) * kSecond);
}

TEST(WorkUnit, PauseWhileNotRunningIsNoOp) {
  Simulation sim;
  WorkUnit unit(sim, 10 * kSecond, [] {});
  unit.pause();
  EXPECT_FALSE(unit.running());
  unit.start();
  unit.pause();
  unit.pause();
  EXPECT_EQ(unit.work_done(), 0);
}

TEST(WorkUnit, DoubleStartIsNoOp) {
  Simulation sim;
  int fires = 0;
  WorkUnit unit(sim, 5 * kSecond, [&] { ++fires; });
  unit.start();
  unit.start();
  sim.run();
  EXPECT_EQ(fires, 1);
}

TEST(WorkUnit, CancelSuppressesCompletion) {
  Simulation sim;
  bool done = false;
  WorkUnit unit(sim, 5 * kSecond, [&] { done = true; });
  unit.start();
  sim.run_until(2 * kSecond);
  unit.cancel();
  sim.run();
  EXPECT_FALSE(done);
  EXPECT_FALSE(unit.running());
}

TEST(WorkUnit, CancelledUnitCannotRestart) {
  Simulation sim;
  bool done = false;
  WorkUnit unit(sim, 5 * kSecond, [&] { done = true; });
  unit.cancel();
  unit.start();
  sim.run();
  EXPECT_FALSE(done);
}

TEST(WorkUnit, ZeroWorkCompletesAsynchronously) {
  Simulation sim;
  bool done = false;
  WorkUnit unit(sim, 0, [&] { done = true; });
  unit.start();
  EXPECT_FALSE(done);  // not synchronous from start()
  sim.run();
  EXPECT_TRUE(done);
}

TEST(WorkUnit, ProgressIsMonotoneWhileRunning) {
  Simulation sim;
  WorkUnit unit(sim, 10 * kSecond, [] {});
  unit.start();
  double prev = 0.0;
  for (int i = 1; i <= 10; ++i) {
    sim.run_until(i * kSecond);
    EXPECT_GE(unit.progress(), prev);
    prev = unit.progress();
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

TEST(WorkUnit, CallbackMayDestroyTheUnit) {
  Simulation sim;
  auto unit = std::make_unique<WorkUnit>(sim, kSecond, [] {});
  auto* raw = unit.get();
  bool destroyed = false;
  // Replace with a self-destroying callback via a wrapper unit.
  auto holder = std::make_unique<WorkUnit>(sim, kSecond, [&] {
    unit.reset();  // destroys a different unit from within a callback
    destroyed = true;
  });
  raw->start();
  holder->start();
  sim.run();
  EXPECT_TRUE(destroyed);
}

TEST(WorkUnit, CreditAdvancesProgressAndReschedulesCompletion) {
  Simulation sim;
  Time done_at = -1;
  WorkUnit unit(sim, 10 * kSecond, [&] { done_at = sim.now(); });
  unit.start();
  sim.run_until(2 * kSecond);
  unit.credit(5 * kSecond);  // restored from a checkpoint mid-run
  EXPECT_NEAR(unit.progress(), 0.7, 1e-9);
  sim.run();
  EXPECT_EQ(done_at, 5 * kSecond);  // 2 s elapsed + 3 s remaining
}

TEST(WorkUnit, CreditWhilePausedAndOvershootCompletesOnStart) {
  Simulation sim;
  Time done_at = -1;
  WorkUnit unit(sim, 10 * kSecond, [&] { done_at = sim.now(); });
  unit.credit(20 * kSecond);  // clamp to total; not running yet
  EXPECT_DOUBLE_EQ(unit.progress(), 1.0);
  sim.run_until(4 * kSecond);
  EXPECT_EQ(done_at, -1);  // completion still requires start()
  unit.start();
  sim.run();
  EXPECT_EQ(done_at, 4 * kSecond);
}

TEST(WorkUnit, WorkDoneTracksPartialThenTotal) {
  Simulation sim;
  WorkUnit unit(sim, 8 * kSecond, [] {});
  unit.start();
  sim.run_until(3 * kSecond);
  EXPECT_EQ(unit.work_done(), 3 * kSecond);
  sim.run();
  EXPECT_EQ(unit.work_done(), 8 * kSecond);
  EXPECT_EQ(unit.total_work(), 8 * kSecond);
}

}  // namespace
}  // namespace moon::sim
