#include "simkit/simulation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace moon::sim {
namespace {

TEST(Simulation, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulation, EqualTimestampsAreFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, ScheduleAfterIsRelative) {
  Simulation sim;
  Time fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulation, SchedulingInThePastThrows) {
  Simulation sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::logic_error);
  EXPECT_THROW(sim.schedule_after(-1, [] {}), std::logic_error);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.schedule_at(10, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now(), 0);  // tombstone executes nothing, clock untouched
}

TEST(Simulation, CancelIsIdempotentAndSafeAfterFire) {
  Simulation sim;
  const EventId id = sim.schedule_at(1, [] {});
  sim.run();
  sim.cancel(id);  // no-op
  sim.cancel(id);
  SUCCEED();
}

TEST(Simulation, IsPendingTracksLifecycle) {
  Simulation sim;
  const EventId id = sim.schedule_at(10, [] {});
  EXPECT_TRUE(sim.is_pending(id));
  sim.run();
  EXPECT_FALSE(sim.is_pending(id));
}

TEST(Simulation, EventMayScheduleMoreEvents) {
  Simulation sim;
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 5) sim.schedule_after(10, next);
  };
  sim.schedule_at(0, next);
  sim.run();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(Simulation, EventMayCancelAnotherEvent) {
  Simulation sim;
  bool second_fired = false;
  const EventId victim = sim.schedule_at(20, [&] { second_fired = true; });
  sim.schedule_at(10, [&] { sim.cancel(victim); });
  sim.run();
  EXPECT_FALSE(second_fired);
}

TEST(Simulation, RunUntilStopsAtBoundaryInclusive) {
  Simulation sim;
  std::vector<Time> fired;
  sim.schedule_at(10, [&] { fired.push_back(10); });
  sim.schedule_at(20, [&] { fired.push_back(20); });
  sim.schedule_at(30, [&] { fired.push_back(30); });
  sim.run_until(20);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(sim.now(), 20);
  sim.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Simulation, RunUntilAdvancesClockWithNoEvents) {
  Simulation sim;
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, ExecutedEventsCounter) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(Simulation, RngSeedGovernsSequence) {
  Simulation a(42), b(42), c(43);
  EXPECT_EQ(a.rng().next_u64(), b.rng().next_u64());
  EXPECT_NE(Simulation(42).rng().next_u64(), c.rng().next_u64());
}

TEST(Simulation, ZeroDelayEventRunsAtCurrentTime) {
  Simulation sim;
  Time fired_at = -1;
  sim.schedule_at(5, [&] {
    sim.schedule_after(0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 5);
}

TEST(Simulation, TombstoneCompactionBoundsQueueDepth) {
  Simulation sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 10000; ++i) ids.push_back(sim.schedule_at(i, [] {}));
  // Cancel 90%: tombstones dominate, so the heap must have been rebuilt to
  // roughly the live set rather than retaining all 10000 entries.
  for (int i = 0; i < 10000; ++i) {
    if (i % 10 != 0) sim.cancel(ids[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(sim.pending_events(), 1000u);
  EXPECT_LE(sim.queued_entries(), 2001u);
  sim.run();
  EXPECT_EQ(sim.executed_events(), 1000u);
}

TEST(Simulation, CompactionPreservesOrderAndFifoTies) {
  Simulation sim;
  std::vector<int> fired;
  std::vector<EventId> cancels;
  // Interleave survivors with victims, including FIFO ties at equal times.
  for (int i = 0; i < 200; ++i) {
    const Time t = i / 2;  // pairs share a timestamp
    if (i % 2 == 0) {
      sim.schedule_at(t, [&fired, i] { fired.push_back(i); });
    } else {
      cancels.push_back(sim.schedule_at(t, [&fired, i] { fired.push_back(i); }));
    }
  }
  // Force several compactions under kCompactMin-sized churn.
  for (int round = 0; round < 5; ++round) {
    std::vector<EventId> extra;
    for (int i = 0; i < 400; ++i) extra.push_back(sim.schedule_at(1000, [] {}));
    for (EventId id : extra) sim.cancel(id);
  }
  for (EventId id : cancels) sim.cancel(id);
  sim.run();
  ASSERT_EQ(fired.size(), 100u);
  for (std::size_t i = 0; i + 1 < fired.size(); ++i) {
    EXPECT_LT(fired[i], fired[i + 1]);  // time order with FIFO ties intact
  }
}

TEST(Simulation, CancelAllThenReschedule) {
  Simulation sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 500; ++i) ids.push_back(sim.schedule_at(i, [] {}));
  for (EventId id : ids) sim.cancel(id);
  EXPECT_EQ(sim.pending_events(), 0u);
  bool ran = false;
  sim.schedule_at(7, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 7);
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(seconds(1.5), 1'500'000);
  EXPECT_EQ(minutes(2.0), 120 * kSecond);
  EXPECT_EQ(hours(1.0), 3600 * kSecond);
  EXPECT_DOUBLE_EQ(to_seconds(2'500'000), 2.5);
}

}  // namespace
}  // namespace moon::sim
