// Golden equivalence: the incremental solver and the timestamp-coalesced
// settle path must reproduce the dense/eager reference *bit for bit* —
// identical completion order and times, identical rates at every sample
// point, identical per-resource transferred bytes — for both fairness
// models, under seeded random churn of flow starts, aborts, capacity
// changes, and batched node-style availability flips. The script includes
// zero-delta steps, so same-timestamp churn bursts (the case coalescing
// exists for) are exercised, as are reads interleaved into a burst.
//
// The driver pre-generates one scripted churn sequence (pure data), then
// replays it against four independent Simulation+FlowNetwork stacks
// spanning SolverMode × CoalesceMode. Abort/start targets are picked by
// indexing the driver's own live-flow list with the scripted draws, so the
// runs stay in lockstep exactly as long as their observable behaviour is
// identical — any divergence cascades into mismatched logs.
#include "simkit/flow_network.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "simkit/simulation.hpp"

namespace moon::sim {
namespace {

constexpr int kNodes = 24;  // 3 resources each: nic_in, nic_out, disk
constexpr int kSteps = 600;

enum class Kind { kStart, kAbort, kSetCapacity, kNodeFlip, kSample };

struct Action {
  Time at;
  Kind kind;
  std::uint64_t a, b, c;  // raw draws, interpreted against each run's state
};

std::vector<Action> make_script(std::uint64_t seed) {
  Rng rng{seed};
  std::vector<Action> script;
  Time t = 0;
  for (int i = 0; i < kSteps; ++i) {
    // ~1/3 zero-delta steps: several actions land on one virtual timestamp.
    t += rng.uniform_int(0, 2) == 0 ? 0 : rng.uniform_int(1, 400) * kMillisecond;
    const auto roll = rng.uniform_int(0, 99);
    Kind kind;
    if (roll < 40) {
      kind = Kind::kStart;
    } else if (roll < 55) {
      kind = Kind::kAbort;
    } else if (roll < 70) {
      kind = Kind::kSetCapacity;
    } else if (roll < 85) {
      kind = Kind::kNodeFlip;
    } else {
      kind = Kind::kSample;
    }
    script.push_back(Action{t, kind,
                            static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30)),
                            static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30)),
                            static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30))});
  }
  return script;
}

/// One replay of the script: owns the sim, the net, and the observation logs.
struct Replay {
  Simulation sim;
  FlowNetwork net;
  std::vector<FlowNetwork::ResourceId> resources;  // 3 per node
  std::vector<bool> node_up;
  std::vector<FlowId> live;                     // driver's view of active flows
  std::vector<std::pair<FlowId, Time>> completions;
  std::vector<double> samples;                  // rates + remaining at kSample
  int chained = 0;

  Replay(FairnessModel model, SolverMode solver, CoalesceMode coalesce)
      : net(sim, model, solver, coalesce) {
    for (int n = 0; n < kNodes; ++n) {
      resources.push_back(net.add_resource(mibps(80.0)));  // nic_in
      resources.push_back(net.add_resource(mibps(80.0)));  // nic_out
      resources.push_back(net.add_resource(mibps(30.0)));  // disk
      node_up.push_back(true);
    }
  }

  void start(std::uint64_t a, std::uint64_t b, std::uint64_t c, bool chain) {
    const auto src = a % kNodes;
    const auto dst = b % kNodes;
    std::vector<FlowNetwork::ResourceId> path{resources[src * 3 + 1],
                                              resources[dst * 3 + 0]};
    if (c % 2 == 0) path.push_back(resources[dst * 3 + 2]);  // + target disk
    const Bytes size =
        static_cast<Bytes>(1 + c % static_cast<std::uint64_t>(mib(4.0)));
    const FlowId id = net.start_flow(path, size, [this, chain](FlowId f) {
      completions.emplace_back(f, sim.now());
      std::erase(live, f);
      // Exercise completion-driven churn: some completions immediately start
      // a successor, from inside the settle's retire cascade.
      if (chain && ++chained % 3 == 0) {
        start(static_cast<std::uint64_t>(chained) * 2654435761u,
              static_cast<std::uint64_t>(chained) * 40503u + 7, 1 + chained % 9,
              false);
      }
    });
    live.push_back(id);
  }

  void apply(const Action& act) {
    sim.run_until(act.at);
    switch (act.kind) {
      case Kind::kStart:
        start(act.a, act.b, act.c, /*chain=*/true);
        break;
      case Kind::kAbort: {
        if (live.empty()) break;
        const FlowId victim = live[act.a % live.size()];
        net.abort_flow(victim);
        std::erase(live, victim);
        break;
      }
      case Kind::kSetCapacity: {
        const auto r = resources[act.a % resources.size()];
        const double caps[] = {0.0, mibps(20.0), mibps(55.0), mibps(80.0)};
        net.set_capacity(r, caps[act.b % 4]);
        break;
      }
      case Kind::kNodeFlip: {
        // Node-style availability transition: all three resources in one
        // batched settle, like Node::set_available.
        const auto n = act.a % kNodes;
        const bool up = !node_up[n];
        node_up[n] = up;
        FlowNetwork::CapacityBatch batch(net);
        net.set_capacity(resources[n * 3 + 0], up ? mibps(80.0) : 0.0);
        net.set_capacity(resources[n * 3 + 1], up ? mibps(80.0) : 0.0);
        net.set_capacity(resources[n * 3 + 2], up ? mibps(30.0) : 0.0);
        break;
      }
      case Kind::kSample:
        for (const FlowId f : live) {
          samples.push_back(net.rate(f));
          samples.push_back(static_cast<double>(net.remaining(f)));
        }
        break;
    }
  }
};

class FlowEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<FairnessModel, std::uint64_t>> {};

TEST_P(FlowEquivalenceTest, SolverAndCoalesceModesMatchBitForBit) {
  const auto [model, seed] = GetParam();
  const std::vector<Action> script = make_script(seed);

  // Reference first: dense solver, eager settles — the pre-optimization
  // configuration both axes are measured against.
  std::vector<std::unique_ptr<Replay>> replays;
  std::vector<std::string> labels;
  for (const SolverMode solver : {SolverMode::kDense, SolverMode::kIncremental}) {
    for (const CoalesceMode coalesce :
         {CoalesceMode::kEager, CoalesceMode::kCoalesced}) {
      replays.push_back(std::make_unique<Replay>(model, solver, coalesce));
      labels.push_back(std::string(solver == SolverMode::kDense ? "dense"
                                                                : "incremental") +
                       (coalesce == CoalesceMode::kEager ? "/eager"
                                                         : "/coalesced"));
    }
  }
  for (const Action& act : script) {
    for (auto& replay : replays) replay->apply(act);
  }
  // Drain: let every still-live unstalled flow finish.
  for (auto& replay : replays) replay->sim.run();

  const Replay& ref = *replays.front();
  EXPECT_GT(ref.completions.size(), 50u);  // meaningful churn ran
  for (std::size_t v = 1; v < replays.size(); ++v) {
    const Replay& arm = *replays[v];
    SCOPED_TRACE(labels[v] + " vs " + labels[0]);
    ASSERT_EQ(arm.completions.size(), ref.completions.size());
    for (std::size_t i = 0; i < ref.completions.size(); ++i) {
      EXPECT_EQ(arm.completions[i].first, ref.completions[i].first)
          << "completion order diverged at #" << i;
      EXPECT_EQ(arm.completions[i].second, ref.completions[i].second)
          << "completion time diverged at #" << i;
    }
    ASSERT_EQ(arm.samples.size(), ref.samples.size());
    for (std::size_t i = 0; i < ref.samples.size(); ++i) {
      EXPECT_EQ(arm.samples[i], ref.samples[i])  // exact, not NEAR
          << "rate/remaining sample diverged at #" << i;
    }
    ASSERT_EQ(arm.resources.size(), ref.resources.size());
    for (std::size_t r = 0; r < ref.resources.size(); ++r) {
      EXPECT_EQ(arm.net.transferred_through(arm.resources[r]),
                ref.net.transferred_through(ref.resources[r]))
          << "transferred bytes diverged on resource " << r;
    }
    ASSERT_EQ(arm.live.size(), ref.live.size());
    EXPECT_EQ(arm.net.active_flows(), ref.net.active_flows());
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndSeeds, FlowEquivalenceTest,
    ::testing::Combine(::testing::Values(FairnessModel::kMaxMin,
                                         FairnessModel::kBottleneckShare),
                       ::testing::Values(1u, 20100621u, 987654321u)),
    [](const auto& param_info) {
      const std::string model =
          std::get<0>(param_info.param) == FairnessModel::kMaxMin
              ? "MaxMin"
              : "BottleneckShare";
      return model + "Seed" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace moon::sim
