// obs::MetricsRegistry / TimeSeries / Histogram / EventLog unit tests:
// ring-buffer eviction bounds, exact window percentiles, rectangular CSV
// export, and event-log capture order.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"

namespace moon::obs {
namespace {

TEST(TimeSeriesTest, EvictsOldestAndCountsDrops) {
  TimeSeries series(3);
  for (int i = 0; i < 5; ++i) {
    series.push(i * 10, static_cast<double>(i));
  }
  EXPECT_EQ(series.size(), 3u);
  EXPECT_EQ(series.capacity(), 3u);
  EXPECT_EQ(series.dropped(), 2u);
  // Oldest retained is sample #2; newest is #4.
  EXPECT_EQ(series.at(0).time, 20);
  EXPECT_EQ(series.at(0).value, 2.0);
  EXPECT_EQ(series.back().time, 40);
  EXPECT_EQ(series.back().value, 4.0);
}

TEST(HistogramTest, ExactPercentilesOverWindow) {
  Histogram hist(100);
  for (int i = 1; i <= 100; ++i) {
    hist.record(static_cast<double>(i));
  }
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_EQ(hist.min(), 1.0);
  EXPECT_EQ(hist.max(), 100.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 50.5);
  EXPECT_EQ(hist.percentile(0.0), 1.0);
  EXPECT_EQ(hist.percentile(1.0), 100.0);
  EXPECT_NEAR(hist.percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(hist.percentile(0.95), 95.0, 1.0);
  EXPECT_NEAR(hist.percentile(0.99), 99.0, 1.0);
}

TEST(HistogramTest, WindowEvictionKeepsRunningAggregates) {
  Histogram hist(4);
  for (int i = 1; i <= 10; ++i) {
    hist.record(static_cast<double>(i));
  }
  // Window holds {7,8,9,10}; aggregates cover all ten.
  EXPECT_EQ(hist.retained(), 4u);
  EXPECT_EQ(hist.count(), 10u);
  EXPECT_EQ(hist.sum(), 55.0);
  EXPECT_EQ(hist.min(), 1.0);
  EXPECT_EQ(hist.max(), 10.0);
  EXPECT_EQ(hist.percentile(0.0), 7.0);
  EXPECT_EQ(hist.percentile(1.0), 10.0);
}

TEST(MetricsRegistryTest, SamplesGaugesIntoRectangularCsv) {
  MetricsConfig config;
  config.series_capacity = 16;
  MetricsRegistry registry(config);
  double x = 1.0;
  registry.add_gauge("x", [&x] { return x; });
  registry.add_gauge("twice_x", [&x] { return 2.0 * x; });

  registry.sample(0);
  x = 5.0;
  registry.sample(1'000'000);  // 1 simulated second
  EXPECT_EQ(registry.sample_count(), 2u);

  const TimeSeries* series = registry.series("twice_x");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->size(), 2u);
  EXPECT_EQ(series->at(0).value, 2.0);
  EXPECT_EQ(series->at(1).value, 10.0);
  EXPECT_EQ(registry.series("missing"), nullptr);

  std::ostringstream os;
  registry.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("time_s,x,twice_x"), std::string::npos);
  EXPECT_NE(csv.find("1,5,10"), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramSummariesInJsonl) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("latency_s");
  hist.record(1.0);
  hist.record(2.0);
  // Repeated lookup returns the same histogram.
  EXPECT_EQ(&registry.histogram("latency_s"), &hist);

  std::ostringstream os;
  registry.write_jsonl(os);
  const std::string jsonl = os.str();
  EXPECT_NE(jsonl.find("\"latency_s\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"count\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("\"p99\""), std::string::npos);
}

TEST(EventLogTest, BoundedRingKeepsNewestRecords) {
  EventLog log(2);
  log.append({1, log::Level::kInfo, "a", "first", {}});
  log.append({2, log::Level::kWarn, "b", "second", {}});
  log.append({3, log::Level::kError, "c", "third", {{"k", "v"}}});
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  EXPECT_EQ(log.at(0).message, "second");
  EXPECT_EQ(log.at(1).message, "third");

  std::ostringstream os;
  log.write_jsonl(os);
  const std::string jsonl = os.str();
  EXPECT_EQ(jsonl.find("first"), std::string::npos);
  EXPECT_NE(jsonl.find("\"third\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"k\":\"v\""), std::string::npos);
}

}  // namespace
}  // namespace moon::obs
