// obs::Tracer unit tests: span/instant recording, lane fan-out for
// overlapping spans, the retained-event cap, stale-handle safety, and the
// shape of the exported Chrome trace-event JSON.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/trace.hpp"

namespace moon::obs {
namespace {

std::string export_json(const Tracer& tracer) {
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  return os.str();
}

int count_occurrences(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(TracerTest, SpanRecordsCompleteEventWithDuration) {
  Tracer tracer;
  const auto span = tracer.begin(1, 0, Cat::kJob, "sort", 100,
                                 {{"maps", "4"}});
  EXPECT_EQ(tracer.open_spans(), 1u);
  tracer.end(span, 350, {{"outcome", "completed"}});
  EXPECT_EQ(tracer.open_spans(), 0u);
  EXPECT_EQ(tracer.event_count(), 1u);

  const std::string json = export_json(tracer);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"job\""), std::string::npos);
  // Begin args and end args merge into one args object.
  EXPECT_NE(json.find("\"maps\":\"4\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"completed\""), std::string::npos);
}

TEST(TracerTest, InstantEventExportsPhI) {
  Tracer tracer;
  tracer.instant(1, 2, Cat::kNode, "down", 42);
  const std::string json = export_json(tracer);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":42"), std::string::npos);
}

TEST(TracerTest, OverlappingSpansFanOutIntoLanesAndLanesAreReused) {
  Tracer tracer;
  // Two concurrent spans on the same (pid=1, base=3) track must land on
  // different exported tids (different lanes).
  const auto a = tracer.begin(1, 3, Cat::kIo, "a", 0);
  const auto b = tracer.begin(1, 3, Cat::kIo, "b", 5);
  tracer.end(a, 10);
  tracer.end(b, 12);
  // Lane 0 is free again: the next span reuses it.
  const auto c = tracer.begin(1, 3, Cat::kIo, "c", 20);
  tracer.end(c, 30);

  const std::string json = export_json(tracer);
  const std::uint32_t lane0_tid = 3 * kLanes;
  // "a" and "c" on lane 0, "b" on lane 1.
  EXPECT_EQ(count_occurrences(
                json, "\"tid\":" + std::to_string(lane0_tid) + ",\"ts\":"),
            2);
  EXPECT_EQ(count_occurrences(
                json, "\"tid\":" + std::to_string(lane0_tid + 1) + ",\"ts\":"),
            1);
}

TEST(TracerTest, MaxEventsCapDropsAndCounts) {
  TraceConfig config;
  config.max_events = 2;
  Tracer tracer(config);
  tracer.instant(1, 0, Cat::kLog, "one", 1);
  tracer.instant(1, 0, Cat::kLog, "two", 2);
  const auto span = tracer.begin(1, 0, Cat::kJob, "past-cap", 3);
  EXPECT_EQ(tracer.event_count(), 2u);
  EXPECT_EQ(tracer.dropped(), 1u);
  // Ending a span whose begin record was dropped must not crash or record.
  tracer.end(span, 9);
  EXPECT_EQ(tracer.event_count(), 2u);
}

TEST(TracerTest, StaleAndInvalidSpanIdsAreNoOps) {
  Tracer tracer;
  tracer.end(Tracer::SpanId{}, 5);  // default-constructed
  const auto span = tracer.begin(1, 0, Cat::kJob, "x", 0);
  tracer.end(span, 10);
  tracer.end(span, 20);  // double end: generation mismatch
  // The slot is recycled; the stale id must not close the new occupant.
  const auto next = tracer.begin(1, 0, Cat::kJob, "y", 30);
  tracer.end(span, 40);
  EXPECT_EQ(tracer.open_spans(), 1u);
  tracer.end(next, 50);
  EXPECT_EQ(tracer.open_spans(), 0u);
}

TEST(TracerTest, HeartbeatCategoryGatedByConfig) {
  Tracer off;  // default: heartbeats disabled
  off.instant(1, 0, Cat::kHeartbeat, "hb", 1);
  EXPECT_EQ(off.event_count(), 0u);
  EXPECT_FALSE(off.enabled(Cat::kHeartbeat));

  TraceConfig config;
  config.heartbeats = true;
  Tracer on(config);
  on.instant(1, 0, Cat::kHeartbeat, "hb", 1);
  EXPECT_EQ(on.event_count(), 1u);
}

TEST(TracerTest, CloseOpenForcesEndsForDrawableSpans) {
  Tracer tracer;
  tracer.begin(1, 0, Cat::kJob, "unfinished", 10);
  tracer.close_open(99);
  EXPECT_EQ(tracer.open_spans(), 0u);
  const std::string json = export_json(tracer);
  EXPECT_NE(json.find("\"dur\":89"), std::string::npos);
  EXPECT_NE(json.find("\"end\":\"forced\""), std::string::npos);
}

TEST(TracerTest, EscapesQuotesBackslashesAndControlChars) {
  Tracer tracer;
  tracer.instant(1, 0, Cat::kLog, "say \"hi\"\\\n", 1, {{"k", "\tv"}});
  const std::string json = export_json(tracer);
  EXPECT_NE(json.find("say \\\"hi\\\"\\\\\\n"), std::string::npos);
  EXPECT_NE(json.find("\\tv"), std::string::npos);
}

TEST(TracerTest, MetadataNamesProcessesAndLanedThreads) {
  Tracer tracer;
  tracer.name_process(kClusterPid, "cluster");
  tracer.name_track(kClusterPid, 3, "node2");
  const auto a = tracer.begin(kClusterPid, 3, Cat::kAttempt, "map0", 0);
  const auto b = tracer.begin(kClusterPid, 3, Cat::kAttempt, "map1", 1);
  tracer.end(a, 5);
  tracer.end(b, 6);
  const std::string json = export_json(tracer);
  EXPECT_NE(json.find("\"process_name\",\"args\":{\"name\":\"cluster\"}"),
            std::string::npos);
  // Lane 0 keeps the base name; lane 1 gets the "+1" suffix.
  EXPECT_NE(json.find("\"thread_name\",\"args\":{\"name\":\"node2\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"thread_name\",\"args\":{\"name\":\"node2 +1\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace moon::obs
