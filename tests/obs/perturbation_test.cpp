// The observability layer's load-bearing guarantee: a run with tracing +
// metrics + log capture fully on is bit-identical, in every simulated
// outcome, to the same run with observability off. The sampler adds events
// to the queue but draws no randomness and mutates nothing; gauges only
// read; span/instant recording never feeds back. If any of that ever breaks
// — a gauge calling a settle-on-read API, the sampler disturbing FIFO
// ordering, instrumentation forking an RNG — this test catches it.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "experiment/scenario.hpp"

namespace moon::experiment {
namespace {

struct Outcome {
  bool finished = false;
  double execution_time_s = 0.0;
  int launched_maps = 0;
  int launched_reduces = 0;
  int speculative = 0;
  int killed_maps = 0;
  int killed_reduces = 0;
  int map_reexecutions = 0;
  int checkpoints_written = 0;
  int checkpoint_resumes = 0;
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
  std::int64_t replication_bytes = 0;

  bool operator==(const Outcome&) const = default;
};

ScenarioConfig small_config(const mapred::SchedulerConfig& sched,
                            std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.volatile_nodes = 10;
  cfg.dedicated_nodes = 2;
  cfg.unavailability_rate = 0.3;
  cfg.sched = sched;
  cfg.dfs = moon_dfs_config();
  cfg.app = workload::sleep_of(workload::sort_workload());
  cfg.app.num_maps = 20;
  cfg.app.input_size = 20 * kKiB;
  cfg.app.input_block_bytes = kKiB;
  cfg.app.map_compute = 20 * sim::kSecond;
  cfg.app.reduce_compute = 20 * sim::kSecond;
  cfg.seed = seed;
  cfg.max_sim_time = 4 * sim::kHour;
  return cfg;
}

Outcome outcome_of(const RunResult& r) {
  Outcome o;
  o.finished = r.finished;
  o.execution_time_s = r.execution_time_s;
  o.launched_maps = r.metrics.launched_map_attempts;
  o.launched_reduces = r.metrics.launched_reduce_attempts;
  o.speculative = r.metrics.speculative_attempts;
  o.killed_maps = r.metrics.killed_map_attempts;
  o.killed_reduces = r.metrics.killed_reduce_attempts;
  o.map_reexecutions = r.metrics.map_reexecutions;
  o.checkpoints_written = r.metrics.checkpoints_written;
  o.checkpoint_resumes = r.metrics.checkpoint_resumes;
  o.bytes_read = r.dfs_stats.bytes_read;
  o.bytes_written = r.dfs_stats.bytes_written;
  o.replication_bytes = r.dfs_stats.replication_bytes;
  return o;
}

/// Everything on, at maximum verbosity: heartbeat instants, log capture at
/// kDebug, a short sampling cadence.
obs::ObsConfig all_on() {
  obs::ObsConfig o;
  o.trace = true;
  o.metrics = true;
  o.capture_log = true;
  o.trace_cfg.heartbeats = true;
  o.metrics_cfg.sample_interval = 5 * sim::kSecond;
  return o;
}

TEST(PerturbationTest, ObservabilityOnIsBitIdenticalToOff) {
  const struct {
    const char* name;
    mapred::SchedulerConfig sched;
  } policies[] = {
      {"moon_checkpoint", moon_checkpoint_scheduler(false)},
      {"hadoop_5min", hadoop_scheduler(5 * sim::kMinute)},
  };
  for (const auto& policy : policies) {
    for (std::uint64_t seed : {20100621u, 7u}) {
      SCOPED_TRACE(std::string(policy.name) + "/seed" + std::to_string(seed));
      ScenarioConfig off = small_config(policy.sched, seed);
      ScenarioConfig on = off;
      on.obs = all_on();

      const Outcome baseline = outcome_of(run_scenario(off));
      const RunResult instrumented_run = run_scenario(on);
      EXPECT_EQ(outcome_of(instrumented_run), baseline);

      // And the instrumentation actually collected something — a vacuous
      // pass (obs silently disabled) must not count.
      ASSERT_NE(instrumented_run.obs, nullptr);
      ASSERT_NE(instrumented_run.obs->tracer(), nullptr);
      EXPECT_GT(instrumented_run.obs->tracer()->event_count(), 0u);
      ASSERT_NE(instrumented_run.obs->metrics(), nullptr);
      EXPECT_GT(instrumented_run.obs->metrics()->sample_count(), 0u);
      const auto* series =
          instrumented_run.obs->metrics()->series("cluster_utilization");
      ASSERT_NE(series, nullptr);
      EXPECT_GT(series->size(), 0u);
      EXPECT_GT(instrumented_run.obs->events().size(), 0u);
    }
  }
}

}  // namespace
}  // namespace moon::experiment
