#include "cluster/availability_driver.hpp"

#include <gtest/gtest.h>

namespace moon::cluster {
namespace {

NodeConfig basic_cfg() { return NodeConfig{}; }

TEST(AvailabilityDriver, DrivesNodeThroughTrace) {
  sim::Simulation sim;
  Cluster cluster(sim);
  const NodeId id = cluster.add_node(basic_cfg());

  trace::AvailabilityTrace trace(
      sim::hours(8), {{10 * sim::kSecond, 20 * sim::kSecond},
                      {50 * sim::kSecond, 60 * sim::kSecond}});
  AvailabilityDriver driver(sim, cluster);
  driver.assign(id, trace);
  driver.install(1);

  Node& node = cluster.node(id);
  sim.run_until(5 * sim::kSecond);
  EXPECT_TRUE(node.available());
  sim.run_until(15 * sim::kSecond);
  EXPECT_FALSE(node.available());
  sim.run_until(25 * sim::kSecond);
  EXPECT_TRUE(node.available());
  sim.run_until(55 * sim::kSecond);
  EXPECT_FALSE(node.available());
  sim.run_until(70 * sim::kSecond);
  EXPECT_TRUE(node.available());
}

TEST(AvailabilityDriver, RepeatsTraceCyclically) {
  sim::Simulation sim;
  Cluster cluster(sim);
  const NodeId id = cluster.add_node(basic_cfg());
  const sim::Duration horizon = 100 * sim::kSecond;
  trace::AvailabilityTrace trace(horizon, {{10 * sim::kSecond, 20 * sim::kSecond}});
  AvailabilityDriver driver(sim, cluster);
  driver.assign(id, trace);
  driver.install(3);

  Node& node = cluster.node(id);
  sim.run_until(115 * sim::kSecond);  // second repeat's outage
  EXPECT_FALSE(node.available());
  sim.run_until(215 * sim::kSecond);  // third repeat's outage
  EXPECT_FALSE(node.available());
  sim.run_until(325 * sim::kSecond);  // beyond installed repeats: stays up
  EXPECT_TRUE(node.available());
}

TEST(AvailabilityDriver, FleetAssignmentIsPairwise) {
  sim::Simulation sim;
  Cluster cluster(sim);
  const auto ids = cluster.add_nodes(2, basic_cfg());
  std::vector<trace::AvailabilityTrace> traces;
  traces.emplace_back(sim::hours(8),
                      std::vector<trace::Interval>{{0, 10 * sim::kSecond}});
  traces.push_back(trace::AvailabilityTrace::always_available(sim::hours(8)));

  AvailabilityDriver driver(sim, cluster);
  driver.assign_fleet(ids, traces);
  driver.install(1);

  sim.run_until(5 * sim::kSecond);
  EXPECT_FALSE(cluster.node(ids[0]).available());
  EXPECT_TRUE(cluster.node(ids[1]).available());
  ASSERT_NE(driver.trace_for(ids[0]), nullptr);
  EXPECT_EQ(driver.trace_for(ids[0])->outage_count(), 1u);
  EXPECT_EQ(driver.trace_for(NodeId{99}), nullptr);
}

TEST(AvailabilityDriver, MismatchedFleetSizesThrow) {
  sim::Simulation sim;
  Cluster cluster(sim);
  const auto ids = cluster.add_nodes(2, basic_cfg());
  std::vector<trace::AvailabilityTrace> traces;
  traces.push_back(trace::AvailabilityTrace::always_available(sim::hours(8)));
  AvailabilityDriver driver(sim, cluster);
  EXPECT_THROW(driver.assign_fleet(ids, traces), std::logic_error);
}

TEST(AvailabilityDriver, DoubleInstallThrows) {
  sim::Simulation sim;
  Cluster cluster(sim);
  AvailabilityDriver driver(sim, cluster);
  driver.install(1);
  EXPECT_THROW(driver.install(1), std::logic_error);
}

TEST(AvailabilityDriver, AssignAfterInstallThrows) {
  sim::Simulation sim;
  Cluster cluster(sim);
  const NodeId id = cluster.add_node(basic_cfg());
  AvailabilityDriver driver(sim, cluster);
  driver.install(1);
  EXPECT_THROW(
      driver.assign(id, trace::AvailabilityTrace::always_available(sim::hours(8))),
      std::logic_error);
}

TEST(AvailabilityDriver, AssignFleetAfterInstallThrows) {
  sim::Simulation sim;
  Cluster cluster(sim);
  const auto ids = cluster.add_nodes(2, basic_cfg());
  std::vector<trace::AvailabilityTrace> traces(
      2, trace::AvailabilityTrace::always_available(sim::hours(8)));
  AvailabilityDriver driver(sim, cluster);
  driver.install(1);
  // A silently-accepted late assign would mutate traces_ without ever
  // scheduling events — hard error instead, same as single assign.
  EXPECT_THROW(driver.assign_fleet(ids, traces), std::logic_error);
}

}  // namespace
}  // namespace moon::cluster
