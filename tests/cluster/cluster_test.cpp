#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

namespace moon::cluster {
namespace {

NodeConfig volatile_cfg() {
  NodeConfig cfg;
  cfg.type = NodeType::kVolatile;
  return cfg;
}

NodeConfig dedicated_cfg() {
  NodeConfig cfg;
  cfg.type = NodeType::kDedicated;
  return cfg;
}

TEST(Cluster, AddNodesAssignsSequentialIds) {
  sim::Simulation sim;
  Cluster cluster(sim);
  const auto ids = cluster.add_nodes(3, volatile_cfg());
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], NodeId{0});
  EXPECT_EQ(ids[2], NodeId{2});
  EXPECT_EQ(cluster.size(), 3u);
}

TEST(Cluster, PartitionsByType) {
  sim::Simulation sim;
  Cluster cluster(sim);
  cluster.add_nodes(4, volatile_cfg());
  cluster.add_nodes(2, dedicated_cfg());
  EXPECT_EQ(cluster.volatile_nodes().size(), 4u);
  EXPECT_EQ(cluster.dedicated_nodes().size(), 2u);
  EXPECT_EQ(cluster.all_nodes().size(), 6u);
  EXPECT_TRUE(cluster.node(NodeId{5}).dedicated());
  EXPECT_FALSE(cluster.node(NodeId{0}).dedicated());
}

TEST(Cluster, UnknownNodeThrows) {
  sim::Simulation sim;
  Cluster cluster(sim);
  cluster.add_node(volatile_cfg());
  EXPECT_THROW(static_cast<void>(cluster.node(NodeId{1})), std::out_of_range);
  EXPECT_THROW(static_cast<void>(cluster.node(NodeId::invalid())), std::out_of_range);
}

TEST(Node, StartsAvailable) {
  sim::Simulation sim;
  Cluster cluster(sim);
  const NodeId id = cluster.add_node(volatile_cfg());
  EXPECT_TRUE(cluster.node(id).available());
  EXPECT_EQ(cluster.available_count(), 1u);
}

TEST(Node, AvailabilityTransitionZeroesAndRestoresCapacity) {
  sim::Simulation sim;
  Cluster cluster(sim);
  NodeConfig cfg = volatile_cfg();
  cfg.nic_in_bw = 1000.0;
  cfg.disk_bw = 500.0;
  const NodeId id = cluster.add_node(cfg);
  Node& node = cluster.node(id);
  auto& net = cluster.network();

  node.set_available(false);
  EXPECT_EQ(net.capacity(node.nic_in()), 0.0);
  EXPECT_EQ(net.capacity(node.nic_out()), 0.0);
  EXPECT_EQ(net.capacity(node.disk()), 0.0);

  node.set_available(true);
  EXPECT_EQ(net.capacity(node.nic_in()), 1000.0);
  EXPECT_EQ(net.capacity(node.disk()), 500.0);
}

TEST(Node, TransitionIsIdempotent) {
  sim::Simulation sim;
  Cluster cluster(sim);
  const NodeId id = cluster.add_node(volatile_cfg());
  Node& node = cluster.node(id);
  int notifications = 0;
  node.subscribe([&](bool) { ++notifications; });
  node.set_available(false);
  node.set_available(false);  // no-op
  node.set_available(true);
  node.set_available(true);  // no-op
  EXPECT_EQ(notifications, 2);
}

TEST(Node, ListenersSeeTransitions) {
  sim::Simulation sim;
  Cluster cluster(sim);
  const NodeId id = cluster.add_node(volatile_cfg());
  Node& node = cluster.node(id);
  std::vector<bool> seen;
  node.subscribe([&](bool up) { seen.push_back(up); });
  node.set_available(false);
  node.set_available(true);
  EXPECT_EQ(seen, (std::vector<bool>{false, true}));
}

TEST(Node, TotalDownTimeAccumulates) {
  sim::Simulation sim;
  Cluster cluster(sim);
  const NodeId id = cluster.add_node(volatile_cfg());
  Node& node = cluster.node(id);

  sim.schedule_at(10 * sim::kSecond, [&] { node.set_available(false); });
  sim.schedule_at(25 * sim::kSecond, [&] { node.set_available(true); });
  sim.schedule_at(40 * sim::kSecond, [&] { node.set_available(false); });
  sim.run();
  EXPECT_EQ(sim.now(), 40 * sim::kSecond);
  sim.run_until(50 * sim::kSecond);
  // 15 s (first outage) + 10 s (ongoing).
  EXPECT_EQ(node.total_down_time(), 25 * sim::kSecond);
}

TEST(Cluster, AvailableCountTracksState) {
  sim::Simulation sim;
  Cluster cluster(sim);
  const auto ids = cluster.add_nodes(5, volatile_cfg());
  cluster.node(ids[1]).set_available(false);
  cluster.node(ids[3]).set_available(false);
  EXPECT_EQ(cluster.available_count(), 3u);
}

}  // namespace
}  // namespace moon::cluster
