// CheckpointStore: emit/append mechanics, replica-liveness-aware lookup,
// garbage collection under replica loss.
#include "checkpoint/checkpoint_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "checkpoint/checkpoint_policy.hpp"
#include "cluster/cluster.hpp"
#include "dfs/dfs.hpp"

namespace moon::checkpoint {
namespace {

class CheckpointStoreTest : public ::testing::Test {
 protected:
  void build(CheckpointConfig config = {}, std::size_t volatiles = 4,
             std::size_t dedicated = 0) {
    config.enabled = true;
    if (dedicated == 0) config.factor.dedicated = 0;
    cluster_ = std::make_unique<cluster::Cluster>(sim_);
    cluster::NodeConfig vcfg;
    vcfg.type = cluster::NodeType::kVolatile;
    volatile_ids_ = cluster_->add_nodes(volatiles, vcfg);
    cluster::NodeConfig dcfg = vcfg;
    dcfg.type = cluster::NodeType::kDedicated;
    dedicated_ids_ = cluster_->add_nodes(dedicated, dcfg);
    dfs::DfsConfig dfs_cfg;
    if (dedicated == 0) dfs_cfg.adaptive_replication = false;
    dfs_ = std::make_unique<dfs::Dfs>(sim_, *cluster_, dfs_cfg, 17);
    dfs_->start();
    store_ = std::make_unique<CheckpointStore>(*dfs_, config);
  }

  CheckpointStore::Snapshot snapshot(double progress, Bytes delta,
                                     int fetched = 1) const {
    CheckpointStore::Snapshot snap;
    snap.job = JobId{1};
    snap.task = TaskId{7};
    snap.label = "t.r0";
    for (int i = 0; i < fetched; ++i) snap.fetched.push_back(TaskId{static_cast<std::uint64_t>(10 + i)});
    snap.compute_total = 100 * sim::kSecond;
    snap.compute_done =
        static_cast<sim::Duration>(progress * 100.0) * sim::kSecond;
    snap.progress = progress;
    snap.delta_bytes = delta;
    return snap;
  }

  void advance(sim::Duration d) { sim_.run_until(sim_.now() + d); }

  sim::Simulation sim_{3};
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<dfs::Dfs> dfs_;
  std::unique_ptr<CheckpointStore> store_;
  std::vector<NodeId> volatile_ids_;
  std::vector<NodeId> dedicated_ids_;
};

TEST_F(CheckpointStoreTest, EmitCommitsAsynchronouslyAndChargesBandwidth) {
  build();
  bool committed = false;
  store_->emit(snapshot(0.3, 2 * kMiB), volatile_ids_[0],
               [&](bool ok) { committed = ok; });
  // The record only advances once the DFS write lands.
  EXPECT_EQ(store_->latest(JobId{1}, TaskId{7}), nullptr);
  EXPECT_TRUE(store_->emit_in_flight(JobId{1}, TaskId{7}));
  advance(5 * sim::kMinute);
  ASSERT_TRUE(committed);
  const ReduceCheckpoint* rec = store_->latest(JobId{1}, TaskId{7});
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->progress, 0.3);
  EXPECT_EQ(rec->bytes_logged, 2 * kMiB);
  ASSERT_FALSE(rec->blocks.empty());
  // Checkpoint bytes flowed through the normal client write path (x replica
  // count for the {0,2} opportunistic factor).
  EXPECT_GE(dfs_->stats().bytes_written, 2 * kMiB);
  // Live: every segment readable.
  EXPECT_NE(store_->latest_live(JobId{1}, TaskId{7}), nullptr);
}

TEST_F(CheckpointStoreTest, SecondEmitAppendsToTheSameLog) {
  build();
  store_->emit(snapshot(0.2, kMiB), volatile_ids_[0]);
  advance(5 * sim::kMinute);
  const FileId first_file = store_->latest(JobId{1}, TaskId{7})->file;
  const std::size_t first_segments =
      store_->latest(JobId{1}, TaskId{7})->blocks.size();
  store_->emit(snapshot(0.5, kMiB, 2), volatile_ids_[1]);
  advance(5 * sim::kMinute);
  const ReduceCheckpoint* rec = store_->latest(JobId{1}, TaskId{7});
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->file, first_file);
  EXPECT_GT(rec->blocks.size(), first_segments);
  EXPECT_EQ(rec->bytes_logged, 2 * kMiB);
  EXPECT_EQ(rec->progress, 0.5);
  EXPECT_EQ(rec->fetched.size(), 2u);
  EXPECT_EQ(store_->stats().emits_committed, 2);
}

TEST_F(CheckpointStoreTest, RejectsOverlappingEmitForSameTask) {
  build();
  store_->emit(snapshot(0.2, kMiB), volatile_ids_[0]);
  bool second_ok = true;
  store_->emit(snapshot(0.3, kMiB), volatile_ids_[0],
               [&](bool ok) { second_ok = ok; });
  EXPECT_FALSE(second_ok);  // rejected synchronously
  advance(5 * sim::kMinute);
  EXPECT_EQ(store_->stats().emits_committed, 1);
}

TEST_F(CheckpointStoreTest, AbortEmitFromCancelsOnlyTheDyingWritersEmit) {
  build();
  bool called = false;
  store_->emit(snapshot(0.2, kMiB), volatile_ids_[0],
               [&](bool) { called = true; });
  // Wrong writer: no-op.
  store_->abort_emit_from(JobId{1}, TaskId{7}, volatile_ids_[3]);
  EXPECT_TRUE(store_->emit_in_flight(JobId{1}, TaskId{7}));
  // The writer died: the emit is cancelled, its callback never fires, and
  // the task can emit again immediately (from its relocated attempt).
  store_->abort_emit_from(JobId{1}, TaskId{7}, volatile_ids_[0]);
  EXPECT_FALSE(store_->emit_in_flight(JobId{1}, TaskId{7}));
  EXPECT_EQ(store_->stats().emits_aborted, 1);
  advance(5 * sim::kMinute);
  EXPECT_FALSE(called);
  EXPECT_EQ(store_->latest(JobId{1}, TaskId{7}), nullptr);
  store_->emit(snapshot(0.3, kMiB), volatile_ids_[1]);
  advance(5 * sim::kMinute);
  EXPECT_NE(store_->latest(JobId{1}, TaskId{7}), nullptr);
}

TEST_F(CheckpointStoreTest, DropJobCancelsRecordlessInflightEmits) {
  build();
  store_->emit(snapshot(0.2, kMiB), volatile_ids_[0]);
  ASSERT_TRUE(store_->emit_in_flight(JobId{1}, TaskId{7}));
  store_->drop_job(JobId{1});  // job failed before the first emit landed
  EXPECT_FALSE(store_->emit_in_flight(JobId{1}, TaskId{7}));
  advance(5 * sim::kMinute);
  // The write never commits a record or leaks a checkpoint file.
  EXPECT_EQ(store_->latest(JobId{1}, TaskId{7}), nullptr);
  EXPECT_EQ(store_->record_count(), 0u);
  EXPECT_EQ(store_->stats().emits_committed, 0);
}

TEST_F(CheckpointStoreTest, LookupRespectsReplicaLiveness) {
  build();
  store_->emit(snapshot(0.4, kMiB), volatile_ids_[0]);
  advance(5 * sim::kMinute);
  const ReduceCheckpoint* rec = store_->latest_live(JobId{1}, TaskId{7});
  ASSERT_NE(rec, nullptr);

  // Take down every replica holder: the checkpoint goes non-live once the
  // NameNode notices (hibernate), but it is not dead — holders may return.
  const auto& nn = dfs_->namenode();
  std::vector<NodeId> holders;
  for (BlockId b : rec->blocks) {
    for (NodeId n : nn.block(b).replicas) holders.push_back(n);
  }
  ASSERT_FALSE(holders.empty());
  for (NodeId n : holders) cluster_->node(n).set_available(false);
  advance(3 * sim::kMinute);  // > hibernate_interval (90 s)
  EXPECT_EQ(store_->latest_live(JobId{1}, TaskId{7}), nullptr);
  EXPECT_FALSE(store_->is_dead(JobId{1}, TaskId{7}));

  // Holders return: the checkpoint is live again.
  for (NodeId n : holders) cluster_->node(n).set_available(true);
  advance(1 * sim::kMinute);
  EXPECT_NE(store_->latest_live(JobId{1}, TaskId{7}), nullptr);

  // Holders expire for good: the log is unrecoverable.
  for (NodeId n : holders) cluster_->node(n).set_available(false);
  advance(11 * sim::kMinute);  // > expiry_interval (600 s)
  EXPECT_EQ(store_->latest_live(JobId{1}, TaskId{7}), nullptr);
  EXPECT_TRUE(store_->is_dead(JobId{1}, TaskId{7}));

  store_->drop(JobId{1}, TaskId{7}, /*dead=*/true);
  EXPECT_EQ(store_->latest(JobId{1}, TaskId{7}), nullptr);
  EXPECT_EQ(store_->stats().dropped_dead, 1);
}

TEST_F(CheckpointStoreTest, DropGarbageCollectsTheDfsFile) {
  build();
  store_->emit(snapshot(0.4, kMiB), volatile_ids_[0]);
  advance(5 * sim::kMinute);
  const FileId file = store_->latest(JobId{1}, TaskId{7})->file;
  ASSERT_TRUE(dfs_->namenode().file_exists(file));
  store_->drop(JobId{1}, TaskId{7});
  EXPECT_FALSE(dfs_->namenode().file_exists(file));
  EXPECT_EQ(store_->record_count(), 0u);
  EXPECT_EQ(store_->stats().dropped, 1);

  // A later emit starts a fresh log.
  store_->emit(snapshot(0.1, kMiB), volatile_ids_[2]);
  advance(5 * sim::kMinute);
  const ReduceCheckpoint* rec = store_->latest(JobId{1}, TaskId{7});
  ASSERT_NE(rec, nullptr);
  EXPECT_NE(rec->file, file);
  EXPECT_EQ(rec->bytes_logged, kMiB);
}

TEST_F(CheckpointStoreTest, DropJobClearsEveryTaskOfThatJob) {
  build();
  auto snap_a = snapshot(0.2, kMiB);
  auto snap_b = snapshot(0.2, kMiB);
  snap_b.task = TaskId{8};
  auto snap_other = snapshot(0.2, kMiB);
  snap_other.job = JobId{2};
  store_->emit(snap_a, volatile_ids_[0]);
  store_->emit(snap_b, volatile_ids_[1]);
  store_->emit(snap_other, volatile_ids_[2]);
  advance(5 * sim::kMinute);
  ASSERT_EQ(store_->record_count(), 3u);
  store_->drop_job(JobId{1});
  EXPECT_EQ(store_->record_count(), 1u);
  EXPECT_NE(store_->latest(JobId{2}, TaskId{7}), nullptr);
}

TEST(CheckpointPolicyTest, EmitGates) {
  CheckpointConfig cfg;
  cfg.enabled = true;
  cfg.min_progress_delta = 0.1;
  CheckpointPolicy policy(cfg);
  EXPECT_FALSE(policy.should_emit(nullptr, 0.0, false));  // nothing to save
  EXPECT_TRUE(policy.should_emit(nullptr, 0.15, false));
  ReduceCheckpoint last;
  last.progress = 0.3;
  EXPECT_FALSE(policy.should_emit(&last, 0.35, false));  // below delta
  EXPECT_TRUE(policy.should_emit(&last, 0.35, true));    // forced (suspension)
  EXPECT_FALSE(policy.should_emit(&last, 0.3, true));    // nothing new
  EXPECT_TRUE(policy.should_emit(&last, 0.41, false));

  CheckpointConfig off;
  EXPECT_FALSE(CheckpointPolicy(off).should_emit(nullptr, 0.5, true));
}

TEST(CheckpointPolicyTest, ResumeAndShieldGates) {
  CheckpointConfig cfg;
  cfg.enabled = true;
  cfg.resume_speculative = false;
  cfg.speculation_shield = 0.7;
  CheckpointPolicy policy(cfg);
  ReduceCheckpoint ckpt;
  ckpt.progress = 0.5;
  EXPECT_TRUE(policy.should_resume(ckpt, /*speculative=*/false));
  EXPECT_FALSE(policy.should_resume(ckpt, /*speculative=*/true));
  EXPECT_FALSE(policy.shields_speculation(0.69));
  EXPECT_TRUE(policy.shields_speculation(0.7));
}

}  // namespace
}  // namespace moon::checkpoint
