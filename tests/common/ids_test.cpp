#include "common/ids.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace moon {
namespace {

TEST(Ids, DefaultConstructedIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, NodeId::invalid());
}

TEST(Ids, ExplicitValueIsValid) {
  NodeId id{7};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
}

TEST(Ids, ZeroIsAValidId) {
  EXPECT_TRUE(NodeId{0}.valid());
}

TEST(Ids, ComparisonOperators) {
  NodeId a{1}, b{2};
  EXPECT_LT(a, b);
  EXPECT_LE(a, b);
  EXPECT_GT(b, a);
  EXPECT_GE(b, a);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, NodeId{1});
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, FileId>);
  static_assert(!std::is_same_v<TaskId, AttemptId>);
}

TEST(Ids, HashWorksInUnorderedSet) {
  std::unordered_set<BlockId> set;
  for (std::uint64_t i = 0; i < 100; ++i) set.insert(BlockId{i});
  EXPECT_EQ(set.size(), 100u);
  EXPECT_TRUE(set.contains(BlockId{42}));
  EXPECT_FALSE(set.contains(BlockId{100}));
}

TEST(Ids, StreamOutput) {
  std::ostringstream os;
  os << JobId{5} << ' ' << JobId::invalid();
  EXPECT_EQ(os.str(), "5 <invalid>");
}

TEST(IdAllocator, HandsOutSequentialIds) {
  IdAllocator<TaskId> alloc;
  EXPECT_EQ(alloc.next(), TaskId{0});
  EXPECT_EQ(alloc.next(), TaskId{1});
  EXPECT_EQ(alloc.next(), TaskId{2});
  EXPECT_EQ(alloc.issued(), 3u);
}

}  // namespace
}  // namespace moon
