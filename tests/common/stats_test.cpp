#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace moon {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 0.0);
  EXPECT_DOUBLE_EQ(acc.max(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 5.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, NegativeValues) {
  Accumulator acc;
  acc.add(-3.0);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), -3.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator whole, left, right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    whole.add(x);
    (i < 25 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmptySides) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  Accumulator b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(Histogram, CountsFallInCorrectBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);   // bin 0
  h.add(3.9);   // bin 1
  h.add(5.0);   // bin 2 (left-closed)
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(3), 0u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(Histogram, Fractions) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  EXPECT_NEAR(h.fraction(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(h.fraction(1), 1.0 / 3.0, 1e-12);
}

TEST(Percentile, Empty) { EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0); }

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

}  // namespace
}  // namespace moon
