#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace moon {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent{99};
  Rng f1 = parent.fork("alpha");
  Rng f2 = Rng{99}.fork("alpha");
  Rng f3 = parent.fork("beta");
  EXPECT_EQ(f1.next_u64(), f2.next_u64());
  EXPECT_NE(Rng{99}.fork("alpha").next_u64(), f3.next_u64());
}

TEST(Rng, ForkByIndexDiffers) {
  Rng parent{7};
  EXPECT_NE(parent.fork(0).next_u64(), parent.fork(1).next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{5};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng{6};
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng{8};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all of 3..7 hit in 1000 draws
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng{9};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng{10};
  constexpr int kN = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, NormalAtLeastRespectsFloor) {
  Rng rng{11};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.normal_at_least(100.0, 300.0, 30.0), 30.0);
  }
}

TEST(Rng, NormalAtLeastDegenerateParametersClampToFloor) {
  Rng rng{12};
  // Mean far below the floor: virtually every draw is rejected.
  EXPECT_GE(rng.normal_at_least(-1000.0, 1.0, 5.0), 5.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng{13};
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(42.0);
  EXPECT_NEAR(sum / kN, 42.0, 1.0);
}

TEST(Rng, ChanceProbability) {
  Rng rng{14};
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng{15};
  const auto picks = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(picks.size(), 20u);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t p : picks) EXPECT_LT(p, 50u);
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng{16};
  const auto picks = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementEmpty) {
  Rng rng{17};
  EXPECT_TRUE(rng.sample_without_replacement(10, 0).empty());
  EXPECT_TRUE(rng.sample_without_replacement(0, 0).empty());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{18};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

class RngSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSweep, UniformIntNoModuloBiasAtRangeEdges) {
  Rng rng{GetParam()};
  // A range of 3 over many draws: each value within ~2% of 1/3.
  int counts[3] = {0, 0, 0};
  constexpr int kN = 90000;
  for (int i = 0; i < kN; ++i) ++counts[rng.uniform_int(0, 2)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 1.0 / 3.0, 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSweep,
                         ::testing::Values(1u, 42u, 1337u, 0xdeadbeefu));

}  // namespace
}  // namespace moon
