#include "common/table.hpp"

#include <gtest/gtest.h>

namespace moon {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("Title");
  t.columns({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, PadsShortRows) {
  Table t;
  t.columns({"x", "y", "z"});
  t.add_row({"only"});
  // Must not crash; missing cells render empty.
  const std::string out = t.to_string();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(Table, ColumnsAlign) {
  Table t;
  t.columns({"col"});
  t.add_row({"wide-value"});
  const std::string out = t.to_string();
  // Separator lines span the widest cell.
  const auto first_line_len = out.find('\n');
  ASSERT_NE(first_line_len, std::string::npos);
  EXPECT_GE(first_line_len, std::string("wide-value").size());
}

TEST(Table, NumFormatsDoubles) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 0), "3");
  EXPECT_EQ(Table::num(1000.5, 1), "1000.5");
}

TEST(Table, NumFormatsIntegers) {
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(42)), "42");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(-7)), "-7");
}

}  // namespace
}  // namespace moon
