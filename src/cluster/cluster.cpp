#include "cluster/cluster.hpp"

#include <stdexcept>

namespace moon::cluster {

Cluster::Cluster(sim::Simulation& sim, sim::FairnessModel model,
                 sim::SolverMode solver, sim::CoalesceMode coalesce)
    : sim_(sim), net_(sim, model, solver, coalesce) {}

NodeId Cluster::add_node(const NodeConfig& config) {
  const NodeId id{nodes_.size()};
  nodes_.push_back(std::make_unique<Node>(sim_, net_, id, config));
  return id;
}

std::vector<NodeId> Cluster::add_nodes(std::size_t n, const NodeConfig& config) {
  std::vector<NodeId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(add_node(config));
  return ids;
}

Node& Cluster::node(NodeId id) {
  if (!id.valid() || id.value() >= nodes_.size()) {
    throw std::out_of_range("Cluster: unknown node");
  }
  return *nodes_[id.value()];
}

const Node& Cluster::node(NodeId id) const {
  if (!id.valid() || id.value() >= nodes_.size()) {
    throw std::out_of_range("Cluster: unknown node");
  }
  return *nodes_[id.value()];
}

std::vector<NodeId> Cluster::all_nodes() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& n : nodes_) ids.push_back(n->id());
  return ids;
}

std::vector<NodeId> Cluster::volatile_nodes() const {
  std::vector<NodeId> ids;
  for (const auto& n : nodes_) {
    if (!n->dedicated()) ids.push_back(n->id());
  }
  return ids;
}

std::vector<NodeId> Cluster::dedicated_nodes() const {
  std::vector<NodeId> ids;
  for (const auto& n : nodes_) {
    if (n->dedicated()) ids.push_back(n->id());
  }
  return ids;
}

std::size_t Cluster::available_count() const {
  std::size_t up = 0;
  for (const auto& n : nodes_) {
    if (n->available()) ++up;
  }
  return up;
}

}  // namespace moon::cluster
