// Cluster: the set of nodes plus the shared flow network.
#pragma once

#include <memory>
#include <vector>

#include "cluster/node.hpp"
#include "common/ids.hpp"
#include "simkit/flow_network.hpp"
#include "simkit/simulation.hpp"

namespace moon::cluster {

class Cluster {
 public:
  explicit Cluster(sim::Simulation& sim,
                   sim::FairnessModel model = sim::FairnessModel::kMaxMin,
                   sim::SolverMode solver = sim::SolverMode::kIncremental,
                   sim::CoalesceMode coalesce = sim::CoalesceMode::kCoalesced);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  NodeId add_node(const NodeConfig& config);

  /// Adds `n` identical nodes; returns their ids.
  std::vector<NodeId> add_nodes(std::size_t n, const NodeConfig& config);

  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] const Node& node(NodeId id) const;

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] std::vector<NodeId> all_nodes() const;
  [[nodiscard]] std::vector<NodeId> volatile_nodes() const;
  [[nodiscard]] std::vector<NodeId> dedicated_nodes() const;

  [[nodiscard]] std::size_t available_count() const;

  [[nodiscard]] sim::FlowNetwork& network() { return net_; }
  [[nodiscard]] sim::Simulation& simulation() { return sim_; }

 private:
  sim::Simulation& sim_;
  sim::FlowNetwork net_;
  std::vector<std::unique_ptr<Node>> nodes_;  // index == id value
};

}  // namespace moon::cluster
