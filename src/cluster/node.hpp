// Cluster node model.
//
// A node is either *volatile* (a volunteer PC that disappears per its
// availability trace) or *dedicated* (the small, reliable tier MOON adds).
// Each node exposes three fluid resources — NIC-in, NIC-out, disk — plus
// map/reduce execution slots consumed by the MapReduce layer. When a node
// becomes unavailable, its resource capacities drop to zero and subscribers
// (TaskTracker, DataNode) are notified so they can suspend heartbeats and
// freeze work.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "obs/trace.hpp"
#include "simkit/flow_network.hpp"
#include "simkit/simulation.hpp"

namespace moon::cluster {

enum class NodeType { kVolatile, kDedicated };

struct NodeConfig {
  NodeType type = NodeType::kVolatile;
  int map_slots = 2;     ///< Hadoop default M
  int reduce_slots = 2;  ///< Hadoop default R
  BytesPerSecond nic_in_bw = mibps(100.0);
  BytesPerSecond nic_out_bw = mibps(100.0);
  BytesPerSecond disk_bw = mibps(55.0);
};

class Node {
 public:
  /// Fires with `true` when the node comes up, `false` when it goes down.
  using AvailabilityListener = std::function<void(bool)>;

  Node(sim::Simulation& sim, sim::FlowNetwork& net, NodeId id, NodeConfig config);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] NodeType type() const { return config_.type; }
  [[nodiscard]] bool dedicated() const { return config_.type == NodeType::kDedicated; }
  [[nodiscard]] const NodeConfig& config() const { return config_; }

  [[nodiscard]] bool available() const { return available_; }

  /// Trace-layer availability transition; idempotent. The node is effectively
  /// up only when the trace says up AND no fault outage holds it down; on an
  /// effective transition, resource capacities are zeroed/restored and
  /// listeners notified.
  void set_available(bool up);

  /// Fault-injection overlay (correlated lab/rack outages): holds the node
  /// down regardless of its trace state. Layered, not exclusive — a node
  /// whose trace went down during a fault outage stays down when the outage
  /// lifts. Idempotent.
  void set_fault_down(bool down);
  [[nodiscard]] bool fault_down() const { return fault_down_; }

  /// Straggler degradation: scales NIC/disk capacities by `factor` (1.0 =
  /// nominal) from now on, including across availability transitions.
  void set_capacity_factor(double factor);
  [[nodiscard]] double capacity_factor() const { return capacity_factor_; }

  void subscribe(AvailabilityListener listener);

  /// Fluid resources (ids into the shared FlowNetwork).
  [[nodiscard]] sim::FlowNetwork::ResourceId nic_in() const { return nic_in_; }
  [[nodiscard]] sim::FlowNetwork::ResourceId nic_out() const { return nic_out_; }
  [[nodiscard]] sim::FlowNetwork::ResourceId disk() const { return disk_; }

  /// Cumulative time this node has spent unavailable.
  [[nodiscard]] sim::Duration total_down_time() const;

 private:
  /// Recomputes effective availability from the trace and fault layers and
  /// runs the transition if it changed.
  void apply_availability();

  sim::Simulation& sim_;
  sim::FlowNetwork& net_;
  NodeId id_;
  NodeConfig config_;
  sim::FlowNetwork::ResourceId nic_in_;
  sim::FlowNetwork::ResourceId nic_out_;
  sim::FlowNetwork::ResourceId disk_;
  bool available_ = true;
  bool trace_up_ = true;
  bool fault_down_ = false;
  double capacity_factor_ = 1.0;
  sim::Time last_down_at_ = 0;
  sim::Duration down_total_ = 0;
  std::vector<AvailabilityListener> listeners_;
  obs::Tracer::SpanId down_span_;  ///< open "down" span while unavailable
};

}  // namespace moon::cluster
