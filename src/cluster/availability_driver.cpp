#include "cluster/availability_driver.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace moon::cluster {

AvailabilityDriver::AvailabilityDriver(sim::Simulation& sim, Cluster& cluster)
    : sim_(sim), cluster_(cluster) {}

void AvailabilityDriver::assign(NodeId node, trace::AvailabilityTrace trace) {
  if (installed_) {
    throw std::logic_error("AvailabilityDriver: assign after install");
  }
  traces_.insert_or_assign(node, std::move(trace));
}

void AvailabilityDriver::assign_fleet(
    const std::vector<NodeId>& nodes,
    const std::vector<trace::AvailabilityTrace>& traces) {
  if (nodes.size() != traces.size()) {
    throw std::logic_error("AvailabilityDriver: node/trace count mismatch");
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) assign(nodes[i], traces[i]);
}

void AvailabilityDriver::install(int repeats) {
  if (installed_) throw std::logic_error("AvailabilityDriver: double install");
  installed_ = true;
  // Walk assignments in NodeId order: two nodes flipping at the same instant
  // enqueue events whose same-timestamp tie-break is insertion order, so the
  // map's hash order must not decide it (§2 determinism contract).
  std::vector<NodeId> ids;
  ids.reserve(traces_.size());
  for (const auto& [node_id, trace] : traces_) ids.push_back(node_id);  // detlint: allow(unordered-iter) -- key snapshot, sorted on the next line before any event is scheduled
  std::sort(ids.begin(), ids.end());
  for (NodeId node_id : ids) {
    const trace::AvailabilityTrace& trace = traces_.at(node_id);
    Node& node = cluster_.node(node_id);
    for (int rep = 0; rep < repeats; ++rep) {
      const sim::Time offset = static_cast<sim::Time>(rep) * trace.horizon();
      for (const auto& iv : trace.down_intervals()) {
        sim_.schedule_at(offset + iv.begin, [&node] { node.set_available(false); });
        sim_.schedule_at(offset + iv.end, [&node] { node.set_available(true); });
      }
    }
  }
}

const trace::AvailabilityTrace* AvailabilityDriver::trace_for(NodeId node) const {
  auto it = traces_.find(node);
  return it == traces_.end() ? nullptr : &it->second;
}

}  // namespace moon::cluster
