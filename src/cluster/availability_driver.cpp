#include "cluster/availability_driver.hpp"

#include <stdexcept>
#include <utility>

namespace moon::cluster {

AvailabilityDriver::AvailabilityDriver(sim::Simulation& sim, Cluster& cluster)
    : sim_(sim), cluster_(cluster) {}

void AvailabilityDriver::assign(NodeId node, trace::AvailabilityTrace trace) {
  if (installed_) {
    throw std::logic_error("AvailabilityDriver: assign after install");
  }
  traces_.insert_or_assign(node, std::move(trace));
}

void AvailabilityDriver::assign_fleet(
    const std::vector<NodeId>& nodes,
    const std::vector<trace::AvailabilityTrace>& traces) {
  if (nodes.size() != traces.size()) {
    throw std::logic_error("AvailabilityDriver: node/trace count mismatch");
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) assign(nodes[i], traces[i]);
}

void AvailabilityDriver::install(int repeats) {
  if (installed_) throw std::logic_error("AvailabilityDriver: double install");
  installed_ = true;
  for (const auto& [node_id, trace] : traces_) {
    Node& node = cluster_.node(node_id);
    for (int rep = 0; rep < repeats; ++rep) {
      const sim::Time offset = static_cast<sim::Time>(rep) * trace.horizon();
      for (const auto& iv : trace.down_intervals()) {
        sim_.schedule_at(offset + iv.begin, [&node] { node.set_available(false); });
        sim_.schedule_at(offset + iv.end, [&node] { node.set_available(true); });
      }
    }
  }
}

const trace::AvailabilityTrace* AvailabilityDriver::trace_for(NodeId node) const {
  auto it = traces_.find(node);
  return it == traces_.end() ? nullptr : &it->second;
}

}  // namespace moon::cluster
