// Binds availability traces to nodes.
//
// At install time, every down interval in each node's trace is scheduled as
// a pair of events (pause at begin, resume at end). This is the simulator's
// analogue of the paper's per-node monitoring process that "reads in the
// assigned availability trace, and suspends and resumes all the
// Hadoop/MOON related processes on the node accordingly."
#pragma once

#include <unordered_map>

#include "cluster/cluster.hpp"
#include "common/ids.hpp"
#include "trace/availability_trace.hpp"

namespace moon::cluster {

class AvailabilityDriver {
 public:
  AvailabilityDriver(sim::Simulation& sim, Cluster& cluster);

  /// Assigns a trace to a node (replacing any previous assignment).
  void assign(NodeId node, trace::AvailabilityTrace trace);

  /// Assigns traces to nodes pairwise (traces[i] -> nodes[i]).
  void assign_fleet(const std::vector<NodeId>& nodes,
                    const std::vector<trace::AvailabilityTrace>& traces);

  /// Schedules all transitions for `repeats` consecutive trace horizons
  /// (outage patterns repeat cyclically if a job outlives one horizon).
  void install(int repeats = 3);

  [[nodiscard]] const trace::AvailabilityTrace* trace_for(NodeId node) const;

 private:
  sim::Simulation& sim_;
  Cluster& cluster_;
  std::unordered_map<NodeId, trace::AvailabilityTrace> traces_;
  bool installed_ = false;
};

}  // namespace moon::cluster
