#include "cluster/node.hpp"

#include <utility>

#include "common/log.hpp"

namespace moon::cluster {

Node::Node(sim::Simulation& sim, sim::FlowNetwork& net, NodeId id, NodeConfig config)
    : sim_(sim), net_(net), id_(id), config_(config) {
  const std::string label = "node" + std::to_string(id.value());
  nic_in_ = net_.add_resource(config_.nic_in_bw, label + ".nic_in");
  nic_out_ = net_.add_resource(config_.nic_out_bw, label + ".nic_out");
  disk_ = net_.add_resource(config_.disk_bw, label + ".disk");
}

void Node::set_available(bool up) {
  trace_up_ = up;
  apply_availability();
}

void Node::set_fault_down(bool down) {
  fault_down_ = down;
  apply_availability();
}

void Node::set_capacity_factor(double factor) {
  capacity_factor_ = factor;
  if (available_) {
    sim::FlowNetwork::CapacityBatch batch(net_);
    net_.set_capacity(nic_in_, config_.nic_in_bw * capacity_factor_);
    net_.set_capacity(nic_out_, config_.nic_out_bw * capacity_factor_);
    net_.set_capacity(disk_, config_.disk_bw * capacity_factor_);
  }
}

void Node::apply_availability() {
  const bool up = trace_up_ && !fault_down_;
  if (up == available_) return;
  available_ = up;
  {
    // One batched settle for all three resources instead of three.
    sim::FlowNetwork::CapacityBatch batch(net_);
    if (up) {
      down_total_ += sim_.now() - last_down_at_;
      net_.set_capacity(nic_in_, config_.nic_in_bw * capacity_factor_);
      net_.set_capacity(nic_out_, config_.nic_out_bw * capacity_factor_);
      net_.set_capacity(disk_, config_.disk_bw * capacity_factor_);
    } else {
      last_down_at_ = sim_.now();
      net_.set_capacity(nic_in_, 0.0);
      net_.set_capacity(nic_out_, 0.0);
      net_.set_capacity(disk_, 0.0);
    }
  }
  if (auto* tracer = sim_.tracer()) {
    if (up) {
      tracer->end(down_span_, sim_.now());
      down_span_ = {};
    } else {
      down_span_ = tracer->begin(obs::kClusterPid, obs::node_track(id_),
                                 obs::Cat::kNode, "down", sim_.now());
    }
  }
  if (log::enabled(log::Level::kDebug)) {
    log::debug("node", up ? "up" : "down",
               {{"node", std::to_string(id_.value())}});
  }
  for (const auto& listener : listeners_) listener(up);
}

void Node::subscribe(AvailabilityListener listener) {
  listeners_.push_back(std::move(listener));
}

sim::Duration Node::total_down_time() const {
  sim::Duration total = down_total_;
  if (!available_) total += sim_.now() - last_down_at_;
  return total;
}

}  // namespace moon::cluster
