// CheckpointStore: persists reduce-attempt snapshots into the simulated DFS
// and answers resume lookups.
//
// Every emit appends the incremental payload (newly fetched shuffle
// partitions + compute state delta) to the task's append-only checkpoint
// file as dfs::FileKind::kOpportunistic data, charged through the flow-
// network I/O model like any other client write — checkpointing costs real
// simulated bandwidth. The logical record (fetched set, compute progress)
// only advances when the DFS write lands.
//
// Resume lookups respect DFS replica liveness: a checkpoint counts as live
// only while *every* committed log segment still has a readable replica,
// mirroring the dfs_aware_recovery check the JobTracker already runs for
// completed maps.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "checkpoint/types.hpp"
#include "common/ids.hpp"
#include "dfs/dfs.hpp"
#include "obs/trace.hpp"

namespace moon::checkpoint {

class CheckpointStore {
 public:
  /// Aggregate counters (per-job accounting lives in mapred::JobMetrics).
  struct Stats {
    int emits_started = 0;
    int emits_committed = 0;
    int emits_failed = 0;
    std::int64_t bytes_logged = 0;
    int emits_aborted = 0;  ///< in-flight emits cancelled (writer died, GC)
    int dropped = 0;       ///< records garbage-collected
    int dropped_dead = 0;  ///< dropped because a log segment lost all replicas
  };

  /// Full logical state of one attempt at emit time. `delta_bytes` is the
  /// incremental payload actually written; the fetched/compute fields are
  /// the complete snapshot the record holds once the write lands.
  struct Snapshot {
    JobId job;
    TaskId task;
    std::string label;  ///< file name seed, e.g. "sort.r3"
    std::vector<TaskId> fetched;
    sim::Duration compute_total = 0;
    sim::Duration compute_done = 0;
    double progress = 0.0;
    Bytes delta_bytes = 0;
  };

  using Key = std::pair<JobId, TaskId>;

  CheckpointStore(dfs::Dfs& dfs, CheckpointConfig config);
  ~CheckpointStore();

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  /// Asynchronously appends `snap` to the task's checkpoint log from
  /// `writer`. At most one emit per task may be in flight; a second call is
  /// rejected (done(false)). `done` fires once the DFS write completes.
  void emit(Snapshot snap, NodeId writer, std::function<void(bool)> done = {});

  [[nodiscard]] bool emit_in_flight(JobId job, TaskId task) const;

  /// Cancels the task's in-flight emit if it originated from `writer` —
  /// called when the writing attempt dies, so a write stalled on a lost
  /// node cannot block the relocated attempt's future emits forever.
  void abort_emit_from(JobId job, TaskId task, NodeId writer);

  /// Latest committed record, regardless of replica liveness.
  [[nodiscard]] const ReduceCheckpoint* latest(JobId job, TaskId task) const;

  /// Latest record whose every log segment is still readable; null if the
  /// checkpoint is unusable right now.
  [[nodiscard]] const ReduceCheckpoint* latest_live(JobId job, TaskId task) const;

  /// True when the record exists but some committed segment has no readable
  /// replica — the checkpoint can never be restored and should be dropped.
  [[nodiscard]] bool is_dead(JobId job, TaskId task) const;

  /// Garbage-collects one task's record: cancels any in-flight emit and
  /// removes the DFS file. `dead` attributes the drop to replica loss.
  void drop(JobId job, TaskId task, bool dead = false);
  /// Drops every record of `job` (job finished or failed).
  void drop_job(JobId job);

  [[nodiscard]] std::size_t record_count() const { return records_.size(); }
  /// Committed records keyed by (job, task), in key order (auditor/tests).
  [[nodiscard]] const std::map<Key, ReduceCheckpoint>& records() const {
    return records_;
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const CheckpointConfig& config() const { return config_; }
  [[nodiscard]] dfs::Dfs& dfs() { return dfs_; }

 private:
  struct Inflight {
    dfs::OpId op;
    NodeId writer;
    FileId file;  ///< log being appended (fresh on a first emit)
    obs::Tracer::SpanId span;  ///< emit span (invalid when tracing off)
  };

  /// Cancels one in-flight entry and GCs its file when no committed record
  /// references it (a first emit's freshly created log).
  void cancel_inflight(std::map<Key, Inflight>::iterator it);

  dfs::Dfs& dfs_;
  CheckpointConfig config_;
  std::map<Key, ReduceCheckpoint> records_;
  std::map<Key, Inflight> inflight_;
  Stats stats_;
};

}  // namespace moon::checkpoint
