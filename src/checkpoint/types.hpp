// Reduce-task checkpointing vocabulary (see DESIGN.md § checkpointing).
//
// MOON pins reduce tasks on dedicated nodes because a killed reduce attempt
// loses everything, including a completed shuffle (§V-C). The checkpoint
// subsystem removes that cliff: running reduce attempts periodically persist
// their shuffle completion state and post-shuffle compute progress into the
// DFS as opportunistic files, and a rescheduled attempt resumes from the
// latest live checkpoint instead of starting cold.
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "dfs/types.hpp"

namespace moon::checkpoint {

/// Tunables; lives inside mapred::SchedulerConfig as `checkpoint`.
struct CheckpointConfig {
  bool enabled = false;

  /// TaskTracker scan cadence: how often hosted reduce attempts are offered
  /// a checkpoint.
  sim::Duration scan_interval = 60 * sim::kSecond;

  /// Progress score that must accrue since the last committed checkpoint
  /// before a new one is written (bounds checkpoint I/O).
  double min_progress_delta = 0.05;

  /// Replication factor of checkpoint files. They are always written as
  /// dfs::FileKind::kOpportunistic — checkpoints are transient by nature —
  /// but a {1,v} factor buys a dedicated copy that survives volatile churn.
  dfs::ReplicationFactor factor{1, 1};

  /// Fixed serialization overhead charged per emit on top of the payload.
  Bytes state_overhead = 4 * kKiB;

  /// Best-effort checkpoint when the host tracker is declared suspended.
  /// The write is charged through the normal I/O model, so it usually
  /// stalls with the node and is abandoned — kept because it mirrors what a
  /// real pre-suspension hook would attempt.
  bool emit_on_suspension = true;

  /// Whether speculative (backup) reduce attempts may also bootstrap from a
  /// checkpoint. On by default: the checkpoint lives in the DFS, so any
  /// node can read it.
  bool resume_speculative = true;

  /// Tasks whose live attempt resumed from a checkpoint and whose progress
  /// is at or above this score are exempt from backup copies (frozen-task
  /// rescue still applies). Stops speculation from duplicating work the
  /// checkpoint just salvaged.
  double speculation_shield = 0.7;
};

/// The latest durable snapshot of one reduce task. The DFS file is an
/// append-only log: every emit appends the *delta* since the previous
/// committed checkpoint (newly fetched partitions + compute state), so a
/// restore needs every logged segment — `blocks` tracks exactly the blocks
/// committed by successful emits, and all of them must be readable for the
/// checkpoint to count as live.
struct ReduceCheckpoint {
  JobId job;
  TaskId task;
  FileId file;
  std::vector<BlockId> blocks;  ///< committed log segments, oldest first

  std::vector<TaskId> fetched;  ///< map tasks whose partitions are salvaged
  sim::Duration compute_total = 0;  ///< checkpointing attempt's jittered total
  sim::Duration compute_done = 0;   ///< post-shuffle compute work accrued
  double progress = 0.0;            ///< progress score at snapshot time
  Bytes bytes_logged = 0;           ///< cumulative log size
  sim::Time updated_at = 0;
};

}  // namespace moon::checkpoint
