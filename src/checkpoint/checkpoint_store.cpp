#include "checkpoint/checkpoint_store.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "simkit/profiler.hpp"
#include "simkit/simulation.hpp"

namespace moon::checkpoint {

CheckpointStore::CheckpointStore(dfs::Dfs& dfs, CheckpointConfig config)
    : dfs_(dfs), config_(config) {}

CheckpointStore::~CheckpointStore() {
  // Cancelled ops never run their callbacks, so no record mutates after this.
  for (const auto& [key, in] : inflight_) dfs_.cancel_op(in.op);
}

void CheckpointStore::emit(Snapshot snap, NodeId writer,
                           std::function<void(bool)> done) {
  const Key key{snap.job, snap.task};
  if (inflight_.contains(key)) {
    if (done) done(false);
    return;
  }
  auto& nn = dfs_.namenode();

  // Append to the existing log, or open a fresh one on the first emit (and
  // after a drop).
  FileId file;
  auto it = records_.find(key);
  if (it != records_.end() && nn.file_exists(it->second.file)) {
    file = it->second.file;
  } else {
    file = nn.create_file("ckpt." + snap.label, dfs::FileKind::kOpportunistic,
                          config_.factor);
  }

  ++stats_.emits_started;
  sim::Profiler::Scope profile(dfs_.simulation().profiler(),
                               sim::Profiler::Key::kCheckpoint);
  const Bytes bytes = std::max<Bytes>(snap.delta_bytes, 1);
  obs::Tracer::SpanId span;
  if (auto* tracer = dfs_.simulation().tracer()) {
    span = tracer->begin(obs::kDfsPid, obs::node_track(writer),
                         obs::Cat::kCheckpoint, "ckpt " + snap.label,
                         dfs_.simulation().now(),
                         {{"bytes", std::to_string(bytes)},
                          {"progress", std::to_string(snap.progress)}});
  }
  // write_file allocates this emit's blocks synchronously; remember them so
  // the record tracks exactly the committed log segments (stray blocks from
  // failed emits are never required for liveness).
  const std::size_t pre_blocks = nn.file(file).blocks.size();
  auto shared = std::make_shared<Snapshot>(std::move(snap));
  const dfs::OpId op = dfs_.write_file(
      file, writer, bytes,
      [this, key, file, bytes, pre_blocks, shared, span,
       done = std::move(done)](bool ok) {
        inflight_.erase(key);
        if (auto* tracer = dfs_.simulation().tracer()) {
          tracer->end(span, dfs_.simulation().now(),
                      {{"outcome", ok ? "ok" : "failed"}});
        }
        if (ok) {
          auto& nn = dfs_.namenode();
          ReduceCheckpoint& rec = records_[key];
          rec.job = shared->job;
          rec.task = shared->task;
          if (rec.file != file) {
            rec.file = file;
            rec.blocks.clear();
            rec.bytes_logged = 0;
          }
          const auto& meta = nn.file(file);
          for (std::size_t i = pre_blocks; i < meta.blocks.size(); ++i) {
            rec.blocks.push_back(meta.blocks[i]);
          }
          rec.fetched = std::move(shared->fetched);
          rec.compute_total = shared->compute_total;
          rec.compute_done = shared->compute_done;
          rec.progress = shared->progress;
          rec.bytes_logged += bytes;
          rec.updated_at = dfs_.simulation().now();
          ++stats_.emits_committed;
          stats_.bytes_logged += bytes;
          if (log::enabled(log::Level::kDebug)) {
            log::debug("checkpoint", "emit committed",
                       {{"job", std::to_string(shared->job.value())},
                        {"task", std::to_string(shared->task.value())},
                        {"bytes", std::to_string(bytes)},
                        {"progress", std::to_string(shared->progress)}});
          }
        } else {
          ++stats_.emits_failed;
          // A fresh file whose first emit never landed holds nothing worth
          // keeping.
          auto rit = records_.find(key);
          const bool referenced = rit != records_.end() && rit->second.file == file;
          if (!referenced && dfs_.namenode().file_exists(file)) {
            dfs_.namenode().remove_file(file);
          }
        }
        if (done) done(ok);
      });
  inflight_.emplace(key, Inflight{op, writer, file, span});
}

void CheckpointStore::cancel_inflight(std::map<Key, Inflight>::iterator it) {
  dfs_.cancel_op(it->second.op);
  if (auto* tracer = dfs_.simulation().tracer()) {
    tracer->end(it->second.span, dfs_.simulation().now(),
                {{"outcome", "aborted"}});
  }
  auto rec = records_.find(it->first);
  const bool referenced = rec != records_.end() && rec->second.file == it->second.file;
  if (!referenced && dfs_.namenode().file_exists(it->second.file)) {
    dfs_.namenode().remove_file(it->second.file);
  }
  inflight_.erase(it);
  ++stats_.emits_aborted;
}

bool CheckpointStore::emit_in_flight(JobId job, TaskId task) const {
  return inflight_.contains(Key{job, task});
}

void CheckpointStore::abort_emit_from(JobId job, TaskId task, NodeId writer) {
  auto it = inflight_.find(Key{job, task});
  if (it == inflight_.end() || it->second.writer != writer) return;
  cancel_inflight(it);
}

const ReduceCheckpoint* CheckpointStore::latest(JobId job, TaskId task) const {
  auto it = records_.find(Key{job, task});
  return it == records_.end() ? nullptr : &it->second;
}

const ReduceCheckpoint* CheckpointStore::latest_live(JobId job,
                                                     TaskId task) const {
  const ReduceCheckpoint* rec = latest(job, task);
  if (rec == nullptr || rec->blocks.empty()) return nullptr;
  const auto& nn = dfs_.namenode();
  if (!nn.file_exists(rec->file)) return nullptr;
  // Delta-encoded log: restore needs every committed segment.
  for (BlockId b : rec->blocks) {
    if (!nn.block_exists(b) || !nn.block_readable(b)) return nullptr;
  }
  return rec;
}

bool CheckpointStore::is_dead(JobId job, TaskId task) const {
  const ReduceCheckpoint* rec = latest(job, task);
  if (rec == nullptr) return false;
  const auto& nn = dfs_.namenode();
  if (!nn.file_exists(rec->file)) return true;
  for (BlockId b : rec->blocks) {
    if (!nn.block_exists(b)) return true;
    if (nn.block_readable(b)) continue;
    // Hibernated holders may return with data intact; a segment whose every
    // holder is *expired* is gone for good.
    bool any_holder = false;
    for (NodeId n : nn.block(b).replicas) {
      if (nn.state_of(n) != dfs::DataNodeState::kDead) {
        any_holder = true;
        break;
      }
    }
    if (!any_holder) return true;
  }
  return false;
}

void CheckpointStore::drop(JobId job, TaskId task, bool dead) {
  const Key key{job, task};
  auto in = inflight_.find(key);
  if (in != inflight_.end()) cancel_inflight(in);
  auto it = records_.find(key);
  if (it == records_.end()) return;
  if (dfs_.namenode().file_exists(it->second.file)) {
    dfs_.namenode().remove_file(it->second.file);
  }
  records_.erase(it);
  ++stats_.dropped;
  if (dead) ++stats_.dropped_dead;
}

void CheckpointStore::drop_job(JobId job) {
  // Include tasks whose *first* emit is still in flight (no record yet):
  // left alone, such a write would commit after the job finished and leak
  // its checkpoint file for the rest of the run.
  std::vector<TaskId> tasks;
  for (const auto& [key, rec] : records_) {
    if (key.first == job) tasks.push_back(key.second);
  }
  for (const auto& [key, in] : inflight_) {
    if (key.first == job) tasks.push_back(key.second);
  }
  for (TaskId t : tasks) drop(job, t);
}

}  // namespace moon::checkpoint
