#include "checkpoint/checkpoint_policy.hpp"

namespace moon::checkpoint {

bool CheckpointPolicy::should_emit(const ReduceCheckpoint* last, double progress,
                                   bool forced) const {
  if (!config_.enabled) return false;
  if (progress <= 0.0) return false;  // nothing to salvage yet
  const double last_progress = last ? last->progress : 0.0;
  if (progress <= last_progress) return false;  // no new state since last emit
  if (forced) return true;
  return progress - last_progress >= config_.min_progress_delta;
}

bool CheckpointPolicy::should_resume(const ReduceCheckpoint& ckpt,
                                     bool speculative) const {
  if (!config_.enabled) return false;
  if (ckpt.progress <= 0.0) return false;
  if (speculative && !config_.resume_speculative) return false;
  return true;
}

bool CheckpointPolicy::shields_speculation(double progress) const {
  if (!config_.enabled) return false;
  return progress >= config_.speculation_shield;
}

}  // namespace moon::checkpoint
