// Decides *when* reduce attempts checkpoint and *whether* a rescheduled
// attempt resumes; the mechanics live in CheckpointStore.
#pragma once

#include "checkpoint/types.hpp"

namespace moon::checkpoint {

class CheckpointPolicy {
 public:
  explicit CheckpointPolicy(CheckpointConfig config) : config_(config) {}

  [[nodiscard]] const CheckpointConfig& config() const { return config_; }

  /// Should an attempt at `progress` write a checkpoint now? `last` is the
  /// latest committed checkpoint for the task (null if none). `forced`
  /// bypasses the min-progress-delta gate (suspension emits) but never
  /// writes a checkpoint that would salvage nothing new.
  [[nodiscard]] bool should_emit(const ReduceCheckpoint* last, double progress,
                                 bool forced) const;

  /// Should a fresh attempt bootstrap from `ckpt`? (Liveness is the
  /// store's job; this is pure policy.)
  [[nodiscard]] bool should_resume(const ReduceCheckpoint& ckpt,
                                   bool speculative) const;

  /// True when a task resumed at `progress` should be exempt from backup
  /// copies (§V speculation, homestretch included).
  [[nodiscard]] bool shields_speculation(double progress) const;

 private:
  CheckpointConfig config_;
};

}  // namespace moon::checkpoint
