// Key-value records for the local MapReduce engine.
//
// Like Hadoop streaming, keys and values are strings: simple, loggable, and
// sufficient for the paper's applications (sort, word count). Typed
// adapters can be layered on top by user code.
#pragma once

#include <string>
#include <vector>

namespace moon::engine {

struct Record {
  std::string key;
  std::string value;

  friend bool operator==(const Record&, const Record&) = default;
  friend auto operator<=>(const Record&, const Record&) = default;
};

using Records = std::vector<Record>;

/// Splits text into one record per line (key = 0-based line number).
Records records_from_lines(const std::string& text);

/// Splits a value into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string& text);

}  // namespace moon::engine
