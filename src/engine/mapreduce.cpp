#include "engine/mapreduce.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <utility>

namespace moon::engine {
namespace {

/// FNV-1a partitioner: stable across platforms (std::hash is not).
std::size_t partition_of(const std::string& key, int num_partitions) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char ch : key) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(h % static_cast<std::uint64_t>(num_partitions));
}

/// Runs `count` tasks on a pool of worker threads; `body(i)` may throw, in
/// which case the task is retried up to `max_attempts` times. `pre` is the
/// fault-injection hook.
void run_tasks(int count, unsigned threads, int max_attempts,
               const std::function<bool(int, int)>& should_fail,
               const std::function<void(int)>& body,
               std::atomic<int>& attempts_counter,
               std::atomic<int>& failures_counter) {
  std::atomic<int> next{0};
  std::atomic<bool> job_failed{false};
  std::mutex error_mutex;
  std::string first_error;

  auto worker = [&] {
    for (;;) {
      const int task = next.fetch_add(1);
      if (task >= count || job_failed.load()) return;
      bool done = false;
      for (int attempt = 0; attempt < max_attempts && !done; ++attempt) {
        ++attempts_counter;
        try {
          if (should_fail && should_fail(task, attempt)) {
            throw std::runtime_error("injected fault");
          }
          body(task);
          done = true;
        } catch (const std::exception& e) {
          ++failures_counter;
          if (attempt + 1 >= max_attempts) {
            std::lock_guard lock(error_mutex);
            if (first_error.empty()) {
              first_error = "task " + std::to_string(task) +
                            " failed after " + std::to_string(max_attempts) +
                            " attempts: " + e.what();
            }
            job_failed.store(true);
          }
        }
      }
    }
  };

  const unsigned pool_size =
      std::max(1u, threads == 0 ? std::thread::hardware_concurrency() : threads);
  std::vector<std::thread> pool;
  pool.reserve(pool_size);
  for (unsigned i = 0; i < pool_size; ++i) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  if (job_failed.load()) throw JobFailedError(first_error);
}

/// Groups a partition's records by key (ordered, like Hadoop's sort phase).
std::map<std::string, std::vector<std::string>> group_by_key(Records records) {
  std::map<std::string, std::vector<std::string>> groups;
  for (auto& r : records) {
    groups[std::move(r.key)].push_back(std::move(r.value));
  }
  return groups;
}

}  // namespace

MapReduceJob::MapReduceJob(MapFn map, ReduceFn reduce, EngineConfig config)
    : map_(std::move(map)), reduce_(std::move(reduce)), config_(config) {
  if (!map_ || !reduce_) throw std::logic_error("MapReduceJob: missing user code");
  if (config_.num_reduce_tasks < 1) {
    throw std::logic_error("MapReduceJob: need at least one reduce task");
  }
  if (config_.max_attempts < 1) {
    throw std::logic_error("MapReduceJob: need at least one attempt");
  }
}

void MapReduceJob::set_combiner(ReduceFn combiner) {
  combiner_ = std::move(combiner);
}

void MapReduceJob::set_fault_injector(FaultInjector injector) {
  fault_injector_ = std::move(injector);
}

JobResult MapReduceJob::run(const Records& input) const {
  JobResult result;

  // ---- split the input ---------------------------------------------------
  int num_maps = config_.num_map_tasks;
  if (num_maps <= 0) {
    num_maps = static_cast<int>(
        (input.size() + config_.records_per_split - 1) /
        std::max<std::size_t>(1, config_.records_per_split));
    num_maps = std::max(num_maps, 1);
  }
  const std::size_t split_size =
      (input.size() + static_cast<std::size_t>(num_maps) - 1) /
      static_cast<std::size_t>(num_maps);

  result.metrics.map_tasks = num_maps;
  result.metrics.reduce_tasks = config_.num_reduce_tasks;

  // Per map task, per partition intermediate buffers; written only by the
  // owning map attempt (re-runs overwrite), read after the map barrier.
  const int R = config_.num_reduce_tasks;
  std::vector<std::vector<Records>> intermediate(
      static_cast<std::size_t>(num_maps));

  std::atomic<int> map_attempts{0}, reduce_attempts{0}, failed{0};

  // ---- map phase -----------------------------------------------------------
  auto injected = [this](bool is_map) {
    return [this, is_map](int task, int attempt) {
      if (!fault_injector_) return false;
      return fault_injector_(TaskContext{is_map, task, attempt});
    };
  };

  run_tasks(
      num_maps, config_.threads, config_.max_attempts, injected(true),
      [&](int task) {
        const auto begin =
            std::min(input.size(), static_cast<std::size_t>(task) * split_size);
        const auto end =
            std::min(input.size(), begin + (split_size == 0 ? 0 : split_size));

        std::vector<Records> buckets(static_cast<std::size_t>(R));
        const Emit emit = [&](Record r) {
          auto& bucket = buckets[partition_of(r.key, R)];
          bucket.push_back(std::move(r));
        };
        for (std::size_t i = begin; i < end; ++i) map_(input[i], emit);

        if (combiner_) {
          for (auto& bucket : buckets) {
            Records combined;
            const Emit emit_combined = [&](Record r) {
              combined.push_back(std::move(r));
            };
            for (auto& [key, values] : group_by_key(std::move(bucket))) {
              combiner_(key, values, emit_combined);
            }
            bucket = std::move(combined);
          }
        }
        // Publish atomically w.r.t. re-execution: last write wins.
        intermediate[static_cast<std::size_t>(task)] = std::move(buckets);
      },
      map_attempts, failed);

  // ---- shuffle + reduce phase ---------------------------------------------
  std::vector<Records> partition_output(static_cast<std::size_t>(R));
  std::atomic<std::size_t> intermediate_records{0};

  run_tasks(
      R, config_.threads, config_.max_attempts, injected(false),
      [&](int partition) {
        Records fetched;
        for (const auto& per_map : intermediate) {
          if (per_map.empty()) continue;  // empty split produced nothing
          const auto& bucket = per_map[static_cast<std::size_t>(partition)];
          fetched.insert(fetched.end(), bucket.begin(), bucket.end());
        }
        intermediate_records += fetched.size();

        Records out;
        const Emit emit = [&](Record r) { out.push_back(std::move(r)); };
        for (auto& [key, values] : group_by_key(std::move(fetched))) {
          reduce_(key, values, emit);
        }
        partition_output[static_cast<std::size_t>(partition)] = std::move(out);
      },
      reduce_attempts, failed);

  // ---- collect ------------------------------------------------------------
  for (auto& part : partition_output) {
    result.output.insert(result.output.end(),
                         std::make_move_iterator(part.begin()),
                         std::make_move_iterator(part.end()));
  }
  std::sort(result.output.begin(), result.output.end());

  result.metrics.map_attempts = map_attempts.load();
  result.metrics.reduce_attempts = reduce_attempts.load();
  result.metrics.failed_attempts = failed.load();
  result.metrics.intermediate_records = intermediate_records.load();
  result.metrics.output_records = result.output.size();
  return result;
}

}  // namespace moon::engine
