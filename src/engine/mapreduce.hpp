// Local MapReduce engine: the paper's programming model, executable on one
// machine with real threads.
//
// The engine mirrors the structure of the simulated framework — map tasks
// over input splits, hash partitioning into reduce tasks, per-key grouping,
// attempt retry on failure — so examples written against it exercise the
// same concepts the cluster simulator studies, with real data.
//
//   MapReduceJob job(
//       /*map=*/[](const Record& r, const Emit& emit) {
//         for (const auto& w : tokenize(r.value)) emit({w, "1"});
//       },
//       /*reduce=*/[](const std::string& k, const std::vector<std::string>& vs,
//                     const Emit& emit) {
//         emit({k, std::to_string(vs.size())});
//       });
//   auto result = job.run(records_from_lines(text));
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/record.hpp"

namespace moon::engine {

/// Emits one intermediate/output record.
using Emit = std::function<void(Record)>;

/// User map function: input record -> zero or more intermediate records.
using MapFn = std::function<void(const Record&, const Emit&)>;

/// User reduce function: key + all its values -> zero or more output records.
using ReduceFn = std::function<void(const std::string& key,
                                    const std::vector<std::string>& values,
                                    const Emit&)>;

struct EngineConfig {
  /// Number of map tasks; 0 = one per ~`records_per_split` input records.
  int num_map_tasks = 0;
  std::size_t records_per_split = 1024;
  int num_reduce_tasks = 4;
  /// Worker threads (0 = hardware concurrency).
  unsigned threads = 0;
  /// A task attempt that throws is retried up to this many times before the
  /// job fails (Hadoop's footnote-1 semantics).
  int max_attempts = 4;
};

/// Deliberate failure injection for resilience tests/demos: invoked before
/// each task attempt; return true to make this attempt fail.
struct TaskContext {
  bool is_map = false;
  int task_index = 0;
  int attempt = 0;  ///< 0 for the first try
};
using FaultInjector = std::function<bool(const TaskContext&)>;

struct EngineMetrics {
  int map_tasks = 0;
  int reduce_tasks = 0;
  int map_attempts = 0;
  int reduce_attempts = 0;
  int failed_attempts = 0;
  std::size_t intermediate_records = 0;
  std::size_t output_records = 0;
};

struct JobResult {
  Records output;  ///< sorted by key, then value
  EngineMetrics metrics;
};

/// Thrown when a task exhausts its attempts.
class JobFailedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class MapReduceJob {
 public:
  MapReduceJob(MapFn map, ReduceFn reduce, EngineConfig config = {});

  /// Optional combiner: reduce-like pre-aggregation applied to each map
  /// task's local output (word count's classic optimisation).
  void set_combiner(ReduceFn combiner);

  void set_fault_injector(FaultInjector injector);

  /// Runs the job to completion; throws JobFailedError if any task exceeds
  /// max_attempts.
  JobResult run(const Records& input) const;

 private:
  MapFn map_;
  ReduceFn reduce_;
  ReduceFn combiner_;
  FaultInjector fault_injector_;
  EngineConfig config_;
};

}  // namespace moon::engine
