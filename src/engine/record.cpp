#include "engine/record.hpp"

#include <cctype>
#include <sstream>

namespace moon::engine {

Records records_from_lines(const std::string& text) {
  Records records;
  std::istringstream stream(text);
  std::string line;
  std::size_t number = 0;
  while (std::getline(stream, line)) {
    records.push_back(Record{std::to_string(number++), std::move(line)});
    line.clear();
  }
  return records;
}

std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

}  // namespace moon::engine
