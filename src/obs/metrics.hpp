// Metrics time-series registry.
//
// Gauges are read-only probes (std::function<double()>) registered once at
// wiring time; `sample(now)` evaluates every gauge and pushes one point per
// series, all stamped with the same simulated time — so the CSV export is a
// rectangular table with one row per sampling tick. Series are bounded ring
// buffers: memory stays O(capacity) regardless of run length, and evicted
// points are counted, never silently lost.
//
// Histograms record individual observations (attempt runtimes, checkpoint
// sizes) into a bounded last-N window plus running count/sum/min/max;
// percentiles are exact over the retained window.
//
// Zero-perturbation contract: gauges must only *read* simulation state.
// Anything with read-triggered side effects (e.g. FlowNetwork::rate(), which
// settles on read) is off limits — see DESIGN.md §12.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace moon::obs {

struct MetricsConfig {
  /// Simulated-time sampling cadence for gauges.
  sim::Duration sample_interval = 10 * sim::kSecond;
  /// Ring capacity per time-series (points retained per gauge).
  std::size_t series_capacity = 8192;
  /// Ring capacity per histogram (observations retained for percentiles).
  std::size_t histogram_capacity = 4096;
};

/// Bounded ring buffer of (simulated time, value) samples.
class TimeSeries {
 public:
  struct Sample {
    sim::Time time = 0;
    double value = 0.0;
  };

  explicit TimeSeries(std::size_t capacity);

  void push(sim::Time time, double value);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// i = 0 is the oldest retained sample.
  [[nodiscard]] const Sample& at(std::size_t i) const;
  [[nodiscard]] const Sample& back() const { return at(size_ - 1); }

 private:
  std::vector<Sample> ring_;
  std::size_t head_ = 0;  // index of the oldest sample
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Bounded-window histogram: exact percentiles over the last `capacity`
/// observations, plus running aggregates over everything ever recorded.
class Histogram {
 public:
  explicit Histogram(std::size_t capacity);

  void record(double value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] std::size_t retained() const { return size_; }

  /// Exact p-quantile (p in [0, 1]) over the retained window; 0 when empty.
  [[nodiscard]] double percentile(double p) const;

 private:
  std::vector<double> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(MetricsConfig config = {});

  [[nodiscard]] const MetricsConfig& config() const { return config_; }

  /// Registers a gauge; sampled in registration order. Must be wired before
  /// the first sample() so every series has the same length.
  void add_gauge(std::string name, std::function<double()> probe);

  /// Finds or creates a histogram. References stay stable for the
  /// registry's lifetime.
  Histogram& histogram(const std::string& name);

  /// Evaluates every gauge at `now` and appends one point per series.
  void sample(sim::Time now);

  [[nodiscard]] const TimeSeries* series(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> gauge_names() const;
  [[nodiscard]] std::size_t gauge_count() const { return gauges_.size(); }
  [[nodiscard]] std::uint64_t sample_count() const { return samples_; }

  /// CSV: header `time_s,<gauge...>`, one row per sampling tick (over the
  /// retained window).
  void write_csv(std::ostream& out) const;
  /// JSONL: one line per gauge series (points array) and one summary line
  /// per histogram (count/sum/min/max/p50/p95/p99).
  void write_jsonl(std::ostream& out) const;

 private:
  struct Gauge {
    std::string name;
    std::function<double()> probe;
    TimeSeries series;
  };
  struct NamedHistogram {
    std::string name;
    std::unique_ptr<Histogram> histogram;  // stable address across growth
  };

  MetricsConfig config_;
  std::vector<Gauge> gauges_;
  std::vector<NamedHistogram> histograms_;
  std::uint64_t samples_ = 0;
};

}  // namespace moon::obs
