// Structured event log: a bounded ring of log records captured during a run.
//
// Each record carries simulated time, severity, a component tag, a message,
// and structured key=value fields — the same shape `moon::log` emits, so the
// Observability layer can install a log sink and capture the control plane's
// narration without any printf parsing. Bounded like the metrics rings:
// memory is O(capacity), evictions are counted.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "common/time.hpp"

namespace moon::obs {

struct LogRecord {
  sim::Time time = 0;
  log::Level level = log::Level::kInfo;
  std::string component;
  std::string message;
  log::Fields fields;
};

class EventLog {
 public:
  explicit EventLog(std::size_t capacity);

  void append(LogRecord record);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// i = 0 is the oldest retained record.
  [[nodiscard]] const LogRecord& at(std::size_t i) const;

  /// One JSON object per line: {"t":…,"level":…,"component":…,"msg":…,
  /// "fields":{…}}.
  void write_jsonl(std::ostream& out) const;
  /// Human-readable `[time] LEVEL component: message k=v…` lines.
  void write_text(std::ostream& out) const;

 private:
  std::vector<LogRecord> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace moon::obs
