#include "obs/trace.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <ostream>
#include <set>

namespace moon::obs {
namespace {

/// Chrome's JSON parser is strict: escape quotes, backslashes, and control
/// characters (the latter as \u00XX).
void write_escaped(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
}

void write_args(std::ostream& out, const Tracer::Args& args) {
  out << "\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out << ',';
    out << '"';
    write_escaped(out, args[i].first);
    out << "\":\"";
    write_escaped(out, args[i].second);
    out << '"';
  }
  out << '}';
}

}  // namespace

const char* cat_name(Cat cat) {
  switch (cat) {
    case Cat::kJob: return "job";
    case Cat::kAttempt: return "attempt";
    case Cat::kPhase: return "phase";
    case Cat::kIo: return "io";
    case Cat::kRepair: return "repair";
    case Cat::kCheckpoint: return "checkpoint";
    case Cat::kNode: return "node";
    case Cat::kSched: return "sched";
    case Cat::kHeartbeat: return "heartbeat";
    case Cat::kLog: return "log";
    case Cat::kFault: return "fault";
    case Cat::kCount: break;
  }
  return "?";
}

Tracer::Tracer(TraceConfig config) : config_(config) {}

void Tracer::name_process(std::uint32_t pid, std::string name) {
  for (auto& [p, n] : process_names_) {
    if (p == pid) {
      n = std::move(name);
      return;
    }
  }
  process_names_.emplace_back(pid, std::move(name));
}

void Tracer::name_track(std::uint32_t pid, std::uint32_t base_tid,
                        std::string name) {
  track_names_[track_key(pid, base_tid)] = std::move(name);
}

std::size_t Tracer::push_rec(Rec rec) {
  if (recs_.size() >= config_.max_events) {
    ++dropped_;
    return kNoRec;
  }
  recs_.push_back(std::move(rec));
  return recs_.size() - 1;
}

std::uint32_t Tracer::grab_lane(std::uint32_t pid, std::uint32_t base,
                                bool& owned) {
  std::uint64_t& bits = lanes_[track_key(pid, base)];
  if (bits == ~std::uint64_t{0}) {
    // All lanes busy: pile onto the last lane without owning it, so the
    // owner's release still frees it. The rendering overlaps, but nothing
    // is lost and bookkeeping stays exact.
    owned = false;
    return kLanes - 1;
  }
  const int lane = std::countr_one(bits);
  bits |= std::uint64_t{1} << lane;
  owned = true;
  return static_cast<std::uint32_t>(lane);
}

void Tracer::release_lane(const Open& open) {
  if (!open.owns_lane) return;
  lanes_[track_key(open.pid, open.base)] &= ~(std::uint64_t{1} << open.lane);
}

Tracer::SpanId Tracer::begin(std::uint32_t pid, std::uint32_t base_tid,
                             Cat cat, std::string name, sim::Time ts,
                             Args args) {
  if (!enabled(cat)) return {};
  std::uint32_t slot;
  if (!free_opens_.empty()) {
    slot = free_opens_.back();
    free_opens_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(opens_.size());
    opens_.emplace_back();
  }
  Open& open = opens_[slot];
  open.engaged = true;
  open.pid = pid;
  open.base = base_tid;
  open.lane = grab_lane(pid, base_tid, open.owns_lane);
  open.start = ts;
  open.rec = push_rec(Rec{pid, base_tid * kLanes + open.lane, cat, ts, -1,
                          std::move(name), std::move(args)});
  ++open_count_;
  return SpanId{slot, open.gen};
}

void Tracer::end_slot(std::uint32_t slot, sim::Time ts, Args extra) {
  Open& open = opens_[slot];
  if (open.rec != kNoRec) {
    Rec& rec = recs_[open.rec];
    rec.dur = ts - open.start;
    for (auto& kv : extra) rec.args.push_back(std::move(kv));
  }
  release_lane(open);
  open.engaged = false;
  open.rec = kNoRec;
  ++open.gen;  // stale SpanIds can never hit this slot's next occupant
  free_opens_.push_back(slot);
  --open_count_;
}

void Tracer::end(SpanId id, sim::Time ts, Args extra) {
  if (!id.valid() || id.slot >= opens_.size()) return;
  const Open& open = opens_[id.slot];
  if (!open.engaged || open.gen != id.gen) return;
  end_slot(id.slot, ts, std::move(extra));
}

void Tracer::instant(std::uint32_t pid, std::uint32_t base_tid, Cat cat,
                     std::string name, sim::Time ts, Args args) {
  if (!enabled(cat)) return;
  // Instants render on a row without blocking it: borrow the lowest free
  // lane's row (usually lane 0) without holding it.
  std::uint32_t lane = 0;
  const auto it = lanes_.find(track_key(pid, base_tid));
  if (it != lanes_.end()) {
    const int free_lane = std::countr_one(it->second);
    lane = free_lane >= static_cast<int>(kLanes)
               ? kLanes - 1
               : static_cast<std::uint32_t>(free_lane);
  }
  push_rec(Rec{pid, base_tid * kLanes + lane, cat, ts, -1, std::move(name),
               std::move(args)});
  // dur stays -1: exported as an instant ("ph":"i").
}

void Tracer::close_open(sim::Time ts) {
  // Slot order == allocation order: deterministic.
  for (std::uint32_t slot = 0; slot < opens_.size(); ++slot) {
    if (opens_[slot].engaged) {
      end_slot(slot, ts, Args{{"end", "forced"}});
    }
  }
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",";
    out << "\n";
    first = false;
  };

  // Metadata: process names (sorted by pid for stable output)...
  auto procs = process_names_;
  std::sort(procs.begin(), procs.end());
  for (const auto& [pid, name] : procs) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"";
    write_escaped(out, name);
    out << "\"}}";
  }

  // ...and thread names for every (pid, tid) that actually has events,
  // derived from the base track's name plus a lane suffix.
  std::set<std::pair<std::uint32_t, std::uint32_t>> tracks;
  for (const Rec& rec : recs_) tracks.emplace(rec.pid, rec.tid);
  for (const auto& [pid, tid] : tracks) {
    const std::uint32_t base = tid / kLanes;
    const std::uint32_t lane = tid % kLanes;
    const auto it = track_names_.find(track_key(pid, base));
    std::string name =
        it != track_names_.end() ? it->second : "track" + std::to_string(base);
    if (lane > 0) name += " +" + std::to_string(lane);
    sep();
    out << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    write_escaped(out, name);
    // sort_index keeps lanes of one base track adjacent and in order.
    out << "\"}},\n{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" << tid
        << "}}";
  }

  // Events, in record order. Timestamps are simulated microseconds, which
  // Chrome's `ts`/`dur` fields expect — exact integers, no rounding.
  for (const Rec& rec : recs_) {
    sep();
    out << "{\"ph\":\"" << (rec.dur >= 0 ? 'X' : 'i') << "\",\"pid\":"
        << rec.pid << ",\"tid\":" << rec.tid << ",\"ts\":" << rec.ts;
    if (rec.dur >= 0) {
      out << ",\"dur\":" << rec.dur;
    } else {
      out << ",\"s\":\"t\"";
    }
    out << ",\"cat\":\"" << cat_name(rec.cat) << "\",\"name\":\"";
    write_escaped(out, rec.name);
    out << "\",";
    write_args(out, rec.args);
    out << "}";
  }
  out << "\n]}\n";
}

}  // namespace moon::obs
