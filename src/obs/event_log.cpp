#include "obs/event_log.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>

namespace moon::obs {
namespace {

void write_escaped(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
}

const char* level_json(log::Level level) {
  switch (level) {
    case log::Level::kDebug: return "debug";
    case log::Level::kInfo: return "info";
    case log::Level::kWarn: return "warn";
    case log::Level::kError: return "error";
    case log::Level::kOff: break;
  }
  return "?";
}

}  // namespace

EventLog::EventLog(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)) {}

void EventLog::append(LogRecord record) {
  if (size_ < ring_.size()) {
    ring_[(head_ + size_) % ring_.size()] = std::move(record);
    ++size_;
    return;
  }
  ring_[head_] = std::move(record);
  head_ = (head_ + 1) % ring_.size();
  ++dropped_;
}

const LogRecord& EventLog::at(std::size_t i) const {
  assert(i < size_);
  return ring_[(head_ + i) % ring_.size()];
}

void EventLog::write_jsonl(std::ostream& out) const {
  for (std::size_t i = 0; i < size_; ++i) {
    const LogRecord& rec = at(i);
    out << "{\"t\":" << sim::to_seconds(rec.time) << ",\"level\":\""
        << level_json(rec.level) << "\",\"component\":\"";
    write_escaped(out, rec.component);
    out << "\",\"msg\":\"";
    write_escaped(out, rec.message);
    out << "\",\"fields\":{";
    for (std::size_t f = 0; f < rec.fields.size(); ++f) {
      if (f > 0) out << ',';
      out << '"';
      write_escaped(out, rec.fields[f].key);
      out << "\":\"";
      write_escaped(out, rec.fields[f].value);
      out << '"';
    }
    out << "}}\n";
  }
}

void EventLog::write_text(std::ostream& out) const {
  for (std::size_t i = 0; i < size_; ++i) {
    const LogRecord& rec = at(i);
    out << '[' << sim::to_seconds(rec.time) << "] "
        << log::level_name(rec.level) << ' ' << rec.component << ": "
        << rec.message;
    for (const auto& f : rec.fields) out << ' ' << f.key << '=' << f.value;
    out << '\n';
  }
}

}  // namespace moon::obs
