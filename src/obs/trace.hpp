// Span tracer with Chrome trace-event export.
//
// Records spans (begin/end pairs) and instant events stamped with *simulated*
// time and exports the Chrome trace-event JSON format, loadable in Perfetto
// or chrome://tracing. The tracer is sim-agnostic: every recording call takes
// an explicit timestamp, so the obs layer has no dependency on simkit and the
// tracer can never feed anything back into the simulation (see DESIGN.md §12
// for the zero-perturbation contract).
//
// Track layout. Chrome traces group events by (pid, tid); we map:
//   pid 1 ("cluster")   — cluster-wide control plane; tid base 0 = control
//                         track, tid base n+1 = node n (availability spans,
//                         tracker state, task attempts running on that node)
//   pid 2 ("dfs")       — data plane; tid base 0 = namenode, tid base n+1 =
//                         node n (block transfers, repairs, checkpoint IO)
//   pid 100+j ("job j") — one process per job; tid base 0 = job-wide track
//
// Lanes. Chrome renders one row per tid and cannot draw overlapping complete
// events on the same row. A node legitimately hosts overlapping spans (two
// concurrent transfers, a map attempt plus a repair), so each base track
// fans out into up to `kLanes` lanes: exported tid = base * kLanes + lane,
// with the lowest free lane grabbed at begin() and released at end(). One
// open span per lane means per-tid events can never overlap, which makes the
// exported JSON trivially well-nested.
//
// Bounded: at most `max_events` records are retained; further records are
// counted in dropped(). All methods are cheap enough for hot paths *when the
// caller has already checked `Simulation::tracer() != nullptr`* — the
// disabled cost at an instrumented site is one pointer load and branch.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace moon::obs {

/// Well-known process ids (see layout comment above).
inline constexpr std::uint32_t kClusterPid = 1;
inline constexpr std::uint32_t kDfsPid = 2;
inline constexpr std::uint32_t kJobPidBase = 100;

/// Lanes per base track (tid fan-out for overlapping spans).
inline constexpr std::uint32_t kLanes = 64;

/// Base track for a node within the cluster/dfs processes (0 is reserved
/// for the process-wide track).
inline std::uint32_t node_track(NodeId node) {
  return static_cast<std::uint32_t>(node.value()) + 1;
}

/// Process id for a job's task lifecycle tracks.
inline std::uint32_t job_pid(JobId job) {
  return kJobPidBase + static_cast<std::uint32_t>(job.value());
}

/// Event categories; used for Perfetto filtering and for coarse recording
/// gates (heartbeat instants are high-volume and off unless opted in).
enum class Cat : std::uint8_t {
  kJob,         ///< job lifecycle
  kAttempt,     ///< task attempt lifecycle
  kPhase,       ///< attempt phase transitions (read/compute/write/shuffle)
  kIo,          ///< DFS reads/writes/partial (shuffle) fetches
  kRepair,      ///< replication repair streams
  kCheckpoint,  ///< checkpoint save/restore
  kNode,        ///< node availability transitions
  kSched,       ///< scheduler decisions (tracker state, speculation, kills)
  kHeartbeat,   ///< per-heartbeat instants (high volume; gated by config)
  kLog,         ///< structured log records routed in as instants
  kFault,       ///< injected faults (outages, drops, corruption, quarantine)
  kCount,
};

const char* cat_name(Cat cat);

struct TraceConfig {
  /// Record per-heartbeat instant events (one per tracker per interval —
  /// large traces; off by default).
  bool heartbeats = false;
  /// Retained-record cap; records past the cap are dropped and counted.
  std::size_t max_events = 1'000'000;
};

class Tracer {
 public:
  using Args = std::vector<std::pair<std::string, std::string>>;

  /// Handle for an open span. Generation-checked like sim EventIds: end()
  /// on a default-constructed, already-ended, or stale id is a no-op.
  struct SpanId {
    std::uint32_t slot = kInvalidSlot;
    std::uint32_t gen = 0;
    [[nodiscard]] bool valid() const { return slot != kInvalidSlot; }
  };

  explicit Tracer(TraceConfig config = {});

  /// Whether events of this category are being recorded (lets call sites
  /// skip building names/args for gated categories).
  [[nodiscard]] bool enabled(Cat cat) const {
    return cat != Cat::kHeartbeat || config_.heartbeats;
  }

  /// Names a process (Chrome `process_name` metadata).
  void name_process(std::uint32_t pid, std::string name);
  /// Names a base track; its lanes derive their names from it at export.
  void name_track(std::uint32_t pid, std::uint32_t base_tid, std::string name);

  /// Opens a span on (pid, base_tid) at `ts`. Returns an id to pass to
  /// end(); an invalid id when the category is gated off.
  SpanId begin(std::uint32_t pid, std::uint32_t base_tid, Cat cat,
               std::string name, sim::Time ts, Args args = {});

  /// Closes a span. `extra` args are appended to the span's args. No-op on
  /// invalid/stale ids.
  void end(SpanId id, sim::Time ts, Args extra = {});

  /// Records an instant event.
  void instant(std::uint32_t pid, std::uint32_t base_tid, Cat cat,
               std::string name, sim::Time ts, Args args = {});

  /// Closes every still-open span at `ts` (tagged end=forced). Call before
  /// export so a truncated run still yields drawable spans.
  void close_open(sim::Time ts);

  [[nodiscard]] std::size_t event_count() const { return recs_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t open_spans() const { return open_count_; }

  /// Writes the full Chrome trace-event JSON document.
  void write_chrome_trace(std::ostream& out) const;

 private:
  static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;
  static constexpr std::size_t kNoRec = static_cast<std::size_t>(-1);

  struct Rec {
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;  // laned: base * kLanes + lane
    Cat cat = Cat::kLog;
    sim::Time ts = 0;
    sim::Duration dur = -1;  // -1 => instant event
    std::string name;
    Args args;
  };

  struct Open {
    std::uint32_t gen = 0;
    bool engaged = false;
    bool owns_lane = false;
    std::uint32_t pid = 0;
    std::uint32_t base = 0;
    std::uint32_t lane = 0;
    sim::Time start = 0;
    std::size_t rec = kNoRec;  // kNoRec when the begin record was dropped
  };

  static std::uint64_t track_key(std::uint32_t pid, std::uint32_t base) {
    return (std::uint64_t{pid} << 32) | base;
  }

  /// Appends a record, honouring the cap. Returns its index or kNoRec.
  std::size_t push_rec(Rec rec);
  std::uint32_t grab_lane(std::uint32_t pid, std::uint32_t base, bool& owned);
  void release_lane(const Open& open);
  void end_slot(std::uint32_t slot, sim::Time ts, Args extra);

  TraceConfig config_;
  std::vector<Rec> recs_;
  std::uint64_t dropped_ = 0;

  std::vector<Open> opens_;
  std::vector<std::uint32_t> free_opens_;
  std::size_t open_count_ = 0;

  /// lane occupancy bitmap per (pid, base) track.
  std::unordered_map<std::uint64_t, std::uint64_t> lanes_;

  std::vector<std::pair<std::uint32_t, std::string>> process_names_;
  std::unordered_map<std::uint64_t, std::string> track_names_;
};

}  // namespace moon::obs
