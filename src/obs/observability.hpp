// Observability bundle: owns a run's Tracer, MetricsRegistry, and EventLog
// and wires them into a Simulation.
//
// Lifecycle:
//   Observability obs(cfg, sim);   // construct (off-pieces stay null)
//   obs.tracer()->name_process…    // wiring: tracks, gauges (Environment)
//   obs.attach();                  // install sim pointers, log sink, sampler
//   … run …
//   obs.finalize();                // final sample, close open spans, detach
//
// finalize() MUST run before the Simulation (and anything the gauges probe)
// dies: gauges capture raw pointers into the environment. run_scenario /
// run_multi_job_scenario call it before tearing the environment down; after
// that the snapshots (series, trace records, log ring) remain valid and are
// what RunResult carries out.
//
// Zero-perturbation contract (enforced by tests/obs/perturbation_test):
// everything here only *reads* simulation state. The sampler adds events to
// the queue, but they draw no randomness and mutate nothing, and event
// ordering among the simulation's own events is unaffected (FIFO seq values
// stay strictly increasing). Gauges must never call settle-on-read APIs.
#pragma once

#include <memory>

#include "common/log.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simkit/periodic.hpp"
#include "simkit/simulation.hpp"

namespace moon::obs {

struct ObsConfig {
  bool trace = false;        ///< record spans/instants (Chrome trace export)
  bool metrics = false;      ///< sample gauges on a simulated-time cadence
  bool capture_log = false;  ///< capture moon::log records into the event log
  TraceConfig trace_cfg;
  MetricsConfig metrics_cfg;
  std::size_t event_log_capacity = 65536;
  /// Sink capture threshold when capture_log (or trace) is on.
  log::Level capture_level = log::Level::kDebug;

  [[nodiscard]] bool any() const { return trace || metrics || capture_log; }
};

class Observability {
 public:
  Observability(ObsConfig config, sim::Simulation& sim);
  ~Observability();

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  [[nodiscard]] const ObsConfig& config() const { return config_; }

  /// Null when the corresponding piece is disabled.
  [[nodiscard]] Tracer* tracer() { return tracer_.get(); }
  [[nodiscard]] const Tracer* tracer() const { return tracer_.get(); }
  [[nodiscard]] MetricsRegistry* metrics() { return metrics_.get(); }
  [[nodiscard]] const MetricsRegistry* metrics() const {
    return metrics_.get();
  }
  [[nodiscard]] EventLog& events() { return events_; }
  [[nodiscard]] const EventLog& events() const { return events_; }

  /// Installs the simulation pointers and log sink, takes the first metrics
  /// sample, and starts the sampling cadence. Call after gauges are wired.
  void attach();

  /// Final sample, closes open spans at sim.now(), detaches everything.
  /// Idempotent; also run by the destructor as a backstop.
  void finalize();

 private:
  ObsConfig config_;
  sim::Simulation& sim_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<MetricsRegistry> metrics_;
  EventLog events_;
  sim::PeriodicTask sampler_;
  bool attached_ = false;
  bool finalized_ = false;
};

}  // namespace moon::obs
