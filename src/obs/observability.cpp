#include "obs/observability.hpp"

namespace moon::obs {

Observability::Observability(ObsConfig config, sim::Simulation& sim)
    : config_(config),
      sim_(sim),
      events_(config.event_log_capacity),
      sampler_(sim, config.metrics_cfg.sample_interval, [this] {
        if (metrics_) metrics_->sample(sim_.now());
      }) {
  if (config_.trace) tracer_ = std::make_unique<Tracer>(config_.trace_cfg);
  if (config_.metrics) {
    metrics_ = std::make_unique<MetricsRegistry>(config_.metrics_cfg);
  }
}

Observability::~Observability() { finalize(); }

void Observability::attach() {
  if (attached_ || finalized_) return;
  attached_ = true;
  sim_.set_tracer(tracer_.get());
  sim_.set_metrics(metrics_.get());
  if (config_.capture_log || config_.trace) {
    // Capture the control plane's narration: every record lands in the
    // bounded event log, and (when tracing) mirrors into the trace as an
    // instant on the cluster control track.
    log::set_sink(
        [this](log::Level level, const char* component,
               const std::string& message, const log::Fields& fields) {
          LogRecord rec;
          rec.time = sim_.now();
          rec.level = level;
          rec.component = component;
          rec.message = message;
          rec.fields = fields;
          events_.append(std::move(rec));
          if (tracer_) {
            Tracer::Args args;
            args.reserve(fields.size() + 2);
            args.emplace_back("level", log::level_name(level));
            args.emplace_back("component", component);
            for (const auto& f : fields) args.emplace_back(f.key, f.value);
            tracer_->instant(kClusterPid, 0, Cat::kLog, message, sim_.now(),
                             std::move(args));
          }
        },
        config_.capture_level);
  }
  if (metrics_) {
    metrics_->sample(sim_.now());  // t=attach baseline row
    sampler_.start();
  }
}

void Observability::finalize() {
  if (finalized_) return;
  finalized_ = true;
  if (!attached_) return;
  sampler_.stop();
  if (metrics_) metrics_->sample(sim_.now());  // final row at end-of-run time
  if (tracer_) tracer_->close_open(sim_.now());
  sim_.set_tracer(nullptr);
  sim_.set_metrics(nullptr);
  if (config_.capture_log || config_.trace) log::clear_sink();
}

}  // namespace moon::obs
