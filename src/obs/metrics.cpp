#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>

#include "common/time.hpp"

namespace moon::obs {

// ---- TimeSeries ------------------------------------------------------------

TimeSeries::TimeSeries(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)) {}

void TimeSeries::push(sim::Time time, double value) {
  if (size_ < ring_.size()) {
    ring_[(head_ + size_) % ring_.size()] = Sample{time, value};
    ++size_;
    return;
  }
  // Full: overwrite the oldest sample and advance the window.
  ring_[head_] = Sample{time, value};
  head_ = (head_ + 1) % ring_.size();
  ++dropped_;
}

const TimeSeries::Sample& TimeSeries::at(std::size_t i) const {
  assert(i < size_);
  return ring_[(head_ + i) % ring_.size()];
}

// ---- Histogram -------------------------------------------------------------

Histogram::Histogram(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)) {}

void Histogram::record(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (size_ < ring_.size()) {
    ring_[(head_ + size_) % ring_.size()] = value;
    ++size_;
  } else {
    ring_[head_] = value;
    head_ = (head_ + 1) % ring_.size();
  }
}

double Histogram::percentile(double p) const {
  if (size_ == 0) return 0.0;
  std::vector<double> window;
  window.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    window.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  p = std::clamp(p, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(size_ - 1) + 0.5);
  std::nth_element(window.begin(), window.begin() + static_cast<std::ptrdiff_t>(rank),
                   window.end());
  return window[rank];
}

// ---- MetricsRegistry -------------------------------------------------------

MetricsRegistry::MetricsRegistry(MetricsConfig config) : config_(config) {}

void MetricsRegistry::add_gauge(std::string name, std::function<double()> probe) {
  gauges_.push_back(
      Gauge{std::move(name), std::move(probe), TimeSeries(config_.series_capacity)});
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  for (auto& h : histograms_) {
    if (h.name == name) return *h.histogram;
  }
  histograms_.push_back(NamedHistogram{
      name, std::make_unique<Histogram>(config_.histogram_capacity)});
  return *histograms_.back().histogram;
}

void MetricsRegistry::sample(sim::Time now) {
  for (auto& gauge : gauges_) {
    gauge.series.push(now, gauge.probe());
  }
  ++samples_;
}

const TimeSeries* MetricsRegistry::series(const std::string& name) const {
  for (const auto& gauge : gauges_) {
    if (gauge.name == name) return &gauge.series;
  }
  return nullptr;
}

std::vector<std::string> MetricsRegistry::gauge_names() const {
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& gauge : gauges_) names.push_back(gauge.name);
  return names;
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  out << "time_s";
  for (const auto& gauge : gauges_) out << ',' << gauge.name;
  out << '\n';
  if (gauges_.empty()) return;
  // Every series was pushed by the same sample() calls, so all have the
  // same retained length and timestamps; row i reads index i of each.
  const std::size_t rows = gauges_.front().series.size();
  for (std::size_t i = 0; i < rows; ++i) {
    out << sim::to_seconds(gauges_.front().series.at(i).time);
    for (const auto& gauge : gauges_) out << ',' << gauge.series.at(i).value;
    out << '\n';
  }
}

void MetricsRegistry::write_jsonl(std::ostream& out) const {
  for (const auto& gauge : gauges_) {
    out << "{\"type\":\"series\",\"name\":\"" << gauge.name
        << "\",\"dropped\":" << gauge.series.dropped() << ",\"points\":[";
    for (std::size_t i = 0; i < gauge.series.size(); ++i) {
      if (i > 0) out << ',';
      const auto& s = gauge.series.at(i);
      out << '[' << sim::to_seconds(s.time) << ',' << s.value << ']';
    }
    out << "]}\n";
  }
  for (const auto& h : histograms_) {
    const Histogram& hist = *h.histogram;
    out << "{\"type\":\"histogram\",\"name\":\"" << h.name
        << "\",\"count\":" << hist.count() << ",\"sum\":" << hist.sum()
        << ",\"min\":" << hist.min() << ",\"max\":" << hist.max()
        << ",\"p50\":" << hist.percentile(0.50)
        << ",\"p95\":" << hist.percentile(0.95)
        << ",\"p99\":" << hist.percentile(0.99) << "}\n";
  }
}

}  // namespace moon::obs
