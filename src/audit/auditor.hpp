// Cross-component invariant auditor (DESIGN.md §13).
//
// Walks the Cluster, NameNode/DataNodes, JobTracker/Jobs, and
// CheckpointStore and asserts the conservation invariants that hold at
// every event boundary, fault injection or not:
//
//   dfs.replica-consistency   NameNode replica lists, the per-node reverse
//                             index, and physical DataNode block sets agree
//                             (NameNode-side entries always have the bytes;
//                             DataNodes may additionally hold stale blocks
//                             of deleted files — that direction is not an
//                             error).
//   mapred.task-attempts      Task state matches its live-attempt set
//                             (kPending = none, kRunning = some), the
//                             per-job live-attempt counter is conserved,
//                             and no live attempt runs on a tracker the
//                             JobTracker has declared dead.
//   checkpoint.segments       Committed checkpoint records reference only
//                             blocks of their own log file, without
//                             duplicates.
//
// The auditor is strictly read-only — running it cannot perturb the
// simulation (same contract as obs::) — so it can ride as a periodic sim
// event during chaos sweeps and be called directly from tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "checkpoint/checkpoint_store.hpp"
#include "cluster/cluster.hpp"
#include "dfs/dfs.hpp"
#include "mapred/jobtracker.hpp"

namespace moon::audit {

struct Violation {
  std::string invariant;  ///< e.g. "dfs.replica-consistency"
  std::string detail;

  friend bool operator<(const Violation& a, const Violation& b) {
    return a.invariant != b.invariant ? a.invariant < b.invariant
                                      : a.detail < b.detail;
  }
};

class Auditor {
 public:
  /// Any ref may be null; the corresponding checks are skipped.
  Auditor(cluster::Cluster* cluster, dfs::Dfs* dfs,
          mapred::JobTracker* jobtracker);

  /// Runs every applicable invariant once. Returns the violations found
  /// (sorted, empty when clean) and logs each at error level.
  std::vector<Violation> run();

  [[nodiscard]] std::int64_t passes() const { return passes_; }
  [[nodiscard]] std::int64_t violations_total() const {
    return violations_total_;
  }

 private:
  void check_dfs(std::vector<Violation>& out);
  void check_mapred(std::vector<Violation>& out);
  void check_checkpoints(std::vector<Violation>& out);

  cluster::Cluster* cluster_;
  dfs::Dfs* dfs_;
  mapred::JobTracker* jobtracker_;
  std::int64_t passes_ = 0;
  std::int64_t violations_total_ = 0;
};

}  // namespace moon::audit
