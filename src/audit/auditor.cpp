#include "audit/auditor.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/log.hpp"
#include "mapred/task.hpp"

namespace moon::audit {
namespace {

std::string node_str(NodeId n) { return std::to_string(n.value()); }
std::string block_str(BlockId b) { return std::to_string(b.value()); }

}  // namespace

Auditor::Auditor(cluster::Cluster* cluster, dfs::Dfs* dfs,
                 mapred::JobTracker* jobtracker)
    : cluster_(cluster), dfs_(dfs), jobtracker_(jobtracker) {}

std::vector<Violation> Auditor::run() {
  std::vector<Violation> out;
  if (dfs_ != nullptr) check_dfs(out);
  if (jobtracker_ != nullptr) {
    check_mapred(out);
    check_checkpoints(out);
  }
  // blocks_/node_blocks_ walks follow hash order; sort so reports are stable.
  std::sort(out.begin(), out.end());
  ++passes_;
  violations_total_ += static_cast<std::int64_t>(out.size());
  for (const Violation& v : out) {
    log::error("audit", "invariant violated",
               {{"invariant", v.invariant}, {"detail", v.detail}});
  }
  return out;
}

void Auditor::check_dfs(std::vector<Violation>& out) {
  auto& nn = dfs_->namenode();
  // Forward: every NameNode replica entry is mirrored in the reverse index
  // and physically present on the DataNode. Walk blocks in BlockId order so
  // the violation report sequence never follows the map's hash order
  // (§2 determinism contract; detlint cannot see this cross-file getter).
  std::vector<BlockId> block_ids;
  block_ids.reserve(nn.all_blocks().size());
  for (const auto& [id, meta] : nn.all_blocks()) block_ids.push_back(id);
  std::sort(block_ids.begin(), block_ids.end());
  for (BlockId id : block_ids) {
    const auto& meta = nn.all_blocks().at(id);
    std::unordered_set<NodeId> seen;
    for (NodeId n : meta.replicas) {
      if (!seen.insert(n).second) {
        out.push_back({"dfs.replica-consistency",
                       "block " + block_str(id) + " lists node " + node_str(n) +
                           " twice"});
        continue;
      }
      const auto* bucket = nn.blocks_on(n);
      if (bucket == nullptr || !bucket->contains(id)) {
        out.push_back({"dfs.replica-consistency",
                       "block " + block_str(id) + " replica on node " +
                           node_str(n) + " missing from reverse index"});
      }
      if (!dfs_->datanode(n).stores(id)) {
        out.push_back({"dfs.replica-consistency",
                       "block " + block_str(id) + " replica on node " +
                           node_str(n) + " not physically stored"});
      }
    }
  }
  // Reverse: every reverse-index entry points at a live block that lists
  // the node. (DataNodes may hold stale blocks of deleted files; that
  // direction is by design and not checked.)
  for (NodeId n : nn.datanodes()) {
    const auto* bucket = nn.blocks_on(n);
    if (bucket == nullptr) continue;
    for (BlockId b : *bucket) {
      if (!nn.block_exists(b)) {
        out.push_back({"dfs.replica-consistency",
                       "reverse index holds deleted block " + block_str(b) +
                           " on node " + node_str(n)});
        continue;
      }
      if (!nn.block(b).has_replica_on(n)) {
        out.push_back({"dfs.replica-consistency",
                       "reverse index lists block " + block_str(b) +
                           " on node " + node_str(n) +
                           " absent from the block's replica list"});
      }
    }
  }
}

void Auditor::check_mapred(std::vector<Violation>& out) {
  using mapred::TaskState;
  using mapred::TrackerState;
  // While the master is crashed its tracker table is wiped soft state: every
  // tracker reads kDead even though its workers still run attempts, so the
  // liveness cross-check only means something against an up master. (A sweep
  // can land here mid-downtime when the *other* master just recovered.)
  const bool master_up = jobtracker_->available();
  for (mapred::Job* job : jobtracker_->jobs_in_order()) {
    if (job->finished()) continue;
    const std::string job_tag = "job " + std::to_string(job->id().value());
    int live_total = 0;
    for (mapred::TaskType type :
         {mapred::TaskType::kMap, mapred::TaskType::kReduce}) {
      for (TaskId tid : job->tasks_of(type)) {
        const mapred::Task& t = job->task(tid);
        const std::string task_tag =
            job_tag + " task " + std::to_string(tid.value());
        live_total += static_cast<int>(t.live_attempts.size());
        for (mapred::TaskAttempt* a : t.live_attempts) {
          if (a->terminal()) {
            out.push_back({"mapred.task-attempts",
                           task_tag + " live set holds a terminal attempt"});
          }
          if (master_up && jobtracker_->tracker_state(a->tracker().node_id()) ==
                               TrackerState::kDead) {
            out.push_back({"mapred.task-attempts",
                           task_tag + " has a live attempt on dead tracker " +
                               node_str(a->tracker().node_id())});
          }
        }
        if (t.state == TaskState::kPending && !t.live_attempts.empty()) {
          out.push_back({"mapred.task-attempts",
                         task_tag + " pending with live attempts"});
        }
        if (t.state == TaskState::kRunning && t.live_attempts.empty()) {
          out.push_back({"mapred.task-attempts",
                         task_tag + " running with no live attempt"});
        }
      }
    }
    if (live_total != job->live_attempts()) {
      out.push_back({"mapred.task-attempts",
                     job_tag + " live-attempt counter " +
                         std::to_string(job->live_attempts()) +
                         " != per-task sum " + std::to_string(live_total)});
    }
  }
}

void Auditor::check_checkpoints(std::vector<Violation>& out) {
  const auto& nn = jobtracker_->dfs().namenode();
  for (const auto& [key, rec] : jobtracker_->checkpoint_store().records()) {
    const std::string tag = "checkpoint job " +
                            std::to_string(key.first.value()) + " task " +
                            std::to_string(key.second.value());
    std::unordered_set<BlockId> seen;
    for (BlockId b : rec.blocks) {
      if (!seen.insert(b).second) {
        out.push_back(
            {"checkpoint.segments", tag + " logs segment " + block_str(b) +
                                        " twice"});
        continue;
      }
      // Replica loss is legal (latest_live/is_dead handle it); a committed
      // segment pointing outside its own log file is not.
      if (!nn.file_exists(rec.file) || !nn.block_exists(b)) continue;
      if (nn.block(b).file != rec.file) {
        out.push_back({"checkpoint.segments",
                       tag + " segment " + block_str(b) +
                           " belongs to a different file"});
      }
    }
  }
}

}  // namespace moon::audit
