#include "simkit/periodic.hpp"

#include <stdexcept>
#include <utility>

namespace moon::sim {

PeriodicTask::PeriodicTask(Simulation& sim, Duration interval, Callback fn)
    : sim_(sim), interval_(interval), fn_(std::move(fn)) {
  if (interval <= 0) throw std::logic_error("PeriodicTask: non-positive interval");
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start() { start_after(interval_); }

void PeriodicTask::start_after(Duration initial_delay) {
  if (active_) return;
  active_ = true;
  next_ = sim_.schedule_after(initial_delay, [this] { fire(); });
}

void PeriodicTask::stop() {
  if (!active_) return;
  active_ = false;
  if (next_.valid()) {
    sim_.cancel(next_);
    next_ = EventId::invalid();
  }
}

void PeriodicTask::fire() {
  // Re-arm before invoking so the callback may stop() us cleanly.
  next_ = sim_.schedule_after(interval_, [this] { fire(); });
  fn_();
}

}  // namespace moon::sim
