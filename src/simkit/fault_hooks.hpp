// Fault-injection consultation interface (DESIGN.md §13/§15).
//
// Instrumented call sites below the faults layer (DFS replica stores/reads,
// TaskTracker heartbeats) consult the injector through this abstract
// interface via `sim.faults()`, the same way they reach the tracer: one
// pointer load and a branch when faults are off. The concrete implementation
// (faults::FaultInjector) lives four layers up; keeping only this interface
// in simkit lets dfs/ and mapred/ stay free of upward includes, which the
// detlint layering rule enforces.
#pragma once

#include "common/ids.hpp"
#include "common/time.hpp"

namespace moon::sim {

/// Fate of one TaskTracker->JobTracker heartbeat.
struct HeartbeatFate {
  bool drop = false;
  Duration delay = 0;  ///< 0 = deliver now
};

class FaultHooks {
 public:
  virtual ~FaultHooks() = default;

  /// Fate of one TaskTracker->JobTracker heartbeat.
  virtual HeartbeatFate heartbeat_fate(NodeId node) = 0;

  /// True when a replica of `block` landing on `node` should be silently
  /// corrupted (the DataNode keeps the bytes; checksum-on-read catches it).
  virtual bool corrupt_replica(BlockId block, NodeId node) = 0;

  /// True when the store of `block` on `node` should be rejected outright
  /// (disk-full: the replica never lands).
  virtual bool reject_write(BlockId block, NodeId node) = 0;

  /// DFS reports a checksum-on-read detection (counter + trace/log only).
  virtual void note_corruption_detected(BlockId block, NodeId node) = 0;
};

}  // namespace moon::sim
