// Discrete-event simulation core.
//
// A `Simulation` owns the virtual clock and the pending-event queue. Events
// are closures scheduled for an absolute or relative simulated time; equal
// timestamps execute in scheduling order (FIFO), which makes runs fully
// deterministic. Cancellation is O(1) amortised via tombstoning.
//
// Storage: callbacks live in a free-list slab of small-buffer-optimized
// closures (`InlineFunction<48>`), so scheduling an event performs no heap
// allocation for captures up to 48 bytes (every closure the simulator
// schedules today). EventIds encode (slot, generation); a recycled slot
// bumps its generation, so a stale id — a tombstoned heap entry, or a
// cancel() issued after the event already fired — can never alias the
// slot's next occupant.
//
// Flush hooks: a component may register an end-of-timestamp hook and arm it
// when it has deferred work (the FlowNetwork's coalesced settle). Armed
// hooks run after the last event of the current timestamp, before the clock
// advances — also at the tail of run()/run_until() — so deferred work never
// crosses a virtual-time boundary.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/inline_function.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "simkit/profiler.hpp"

namespace moon::obs {
class Tracer;
class MetricsRegistry;
}  // namespace moon::obs

namespace moon::sim {

class FaultHooks;

class Simulation {
 public:
  /// Inline capacity covers every closure the simulator schedules; larger
  /// captures transparently fall back to one heap allocation.
  using Callback = InlineFunction<48>;
  using FlushHook = InlineFunction<48>;
  using FlushHookId = std::size_t;

  explicit Simulation(std::uint64_t seed = 0);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(Time t, Callback cb);

  /// Schedules `cb` after `delay` (>= 0) from now.
  EventId schedule_after(Duration delay, Callback cb);

  /// Cancels a pending event; cancelling an already-fired or already-
  /// cancelled event is a harmless no-op (generation-checked, so a recycled
  /// slot is never hit by a stale id).
  void cancel(EventId id);

  [[nodiscard]] bool is_pending(EventId id) const;

  /// Executes the next event (running any armed flush hooks first when the
  /// clock would advance). Returns false when the queue is empty and no
  /// hook produced further work.
  bool step();

  /// Runs all events with timestamp <= `t`, then advances the clock to `t`.
  void run_until(Time t);

  /// Runs until the event queue drains.
  void run();

  [[nodiscard]] std::size_t pending_events() const { return live_events_; }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Heap entries including cancelled tombstones (telemetry; bounded at
  /// roughly 2× pending_events() by tombstone compaction).
  [[nodiscard]] std::size_t queued_entries() const { return queue_.size(); }

  // ---- end-of-timestamp flush hooks ---------------------------------------

  /// Registers a flush hook (initially unarmed). Hooks run in registration
  /// order. The returned id stays valid until remove_flush_hook.
  FlushHookId add_flush_hook(FlushHook hook);
  void remove_flush_hook(FlushHookId id);

  /// Arms `id` to run before the clock next advances (idempotent until the
  /// hook runs). A hook may re-arm itself or others from inside its run.
  void arm_flush(FlushHookId id);

  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] Profiler& profiler() { return profiler_; }

  // ---- observability hooks --------------------------------------------------
  //
  // Instrumented components reach the tracer/metrics registry through the
  // Simulation they already hold; nullptr (the default) means observability
  // is off and the cost at a call site is one pointer load and branch. The
  // obs::Observability layer owns the objects and installs/clears the
  // pointers; the Simulation never dereferences them itself.

  [[nodiscard]] obs::Tracer* tracer() const { return tracer_; }
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] obs::MetricsRegistry* metrics() const { return metrics_; }
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Fault-injection hook, same ownership contract as the tracer: the
  /// concrete injector (faults::FaultInjector, four layers up) installs and
  /// clears itself here, instrumented call sites (heartbeats, DFS
  /// stores/reads) consult it through the sim::FaultHooks interface on the
  /// Simulation they already hold, and nullptr (the default) means faults
  /// are off at the cost of one pointer load and branch.
  [[nodiscard]] FaultHooks* faults() const { return faults_; }
  void set_faults(FaultHooks* faults) { faults_ = faults; }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;  // tie-breaker: FIFO among equal timestamps
    EventId id;
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// One slab cell: the closure plus the generation its current/next id
  /// carries. `engaged` distinguishes a live event from a free slot.
  struct Slot {
    std::uint32_t gen = 0;
    bool engaged = false;
    Callback cb;
  };

  struct Hook {
    FlushHook fn;
    bool armed = false;
    bool alive = false;
  };

  static constexpr std::uint64_t kSlotBits = 32;
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;

  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id.value() & kSlotMask);
  }
  static std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id.value() >> kSlotBits);
  }
  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return EventId{(std::uint64_t{gen} << kSlotBits) | slot};
  }

  [[nodiscard]] bool live(EventId id) const {
    const std::uint32_t slot = slot_of(id);
    return slot < slots_.size() && slots_[slot].engaged &&
           slots_[slot].gen == gen_of(id);
  }

  /// Retires a slot (fire or cancel): destroys any remnant closure, bumps
  /// the generation so stale ids go dead, and recycles the slot (LIFO keeps
  /// reuse deterministic).
  void retire_slot(std::uint32_t slot);

  /// Drops cancelled tombstones and re-heapifies; called when tombstones
  /// outnumber live entries so cancel() stays O(1) amortised without the
  /// heap growing past ~2× the live set.
  void compact();
  void pop_top();
  void run_flushes();

  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<Entry> queue_;  // binary min-heap by (time, seq)
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_events_ = 0;
  std::vector<Hook> hooks_;
  std::size_t armed_hooks_ = 0;
  Profiler profiler_;
  Rng rng_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  FaultHooks* faults_ = nullptr;
};

}  // namespace moon::sim
