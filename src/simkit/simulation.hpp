// Discrete-event simulation core.
//
// A `Simulation` owns the virtual clock and the pending-event queue. Events
// are closures scheduled for an absolute or relative simulated time; equal
// timestamps execute in scheduling order (FIFO), which makes runs fully
// deterministic. Cancellation is O(1) amortised via tombstoning.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace moon::sim {

class Simulation {
 public:
  using Callback = std::function<void()>;

  explicit Simulation(std::uint64_t seed = 0);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(Time t, Callback cb);

  /// Schedules `cb` after `delay` (>= 0) from now.
  EventId schedule_after(Duration delay, Callback cb);

  /// Cancels a pending event; cancelling an already-fired or already-
  /// cancelled event is a harmless no-op.
  void cancel(EventId id);

  [[nodiscard]] bool is_pending(EventId id) const;

  /// Executes the next event. Returns false when the queue is empty.
  bool step();

  /// Runs all events with timestamp <= `t`, then advances the clock to `t`.
  void run_until(Time t);

  /// Runs until the event queue drains.
  void run();

  [[nodiscard]] std::size_t pending_events() const { return callbacks_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Heap entries including cancelled tombstones (telemetry; bounded at
  /// roughly 2× pending_events() by tombstone compaction).
  [[nodiscard]] std::size_t queued_entries() const { return queue_.size(); }

  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;  // tie-breaker: FIFO among equal timestamps
    EventId id;
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Drops cancelled tombstones and re-heapifies; called when tombstones
  /// outnumber live entries so cancel() stays O(1) amortised without the
  /// heap growing past ~2× the live set.
  void compact();
  void pop_top();

  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  IdAllocator<EventId> ids_;
  std::vector<Entry> queue_;  // binary min-heap by (time, seq)
  std::unordered_map<EventId, Callback> callbacks_;
  Rng rng_;
};

}  // namespace moon::sim
