// Fluid data-transfer model with max-min fair sharing.
//
// Every data movement in the cluster (network transfer, disk read/write) is
// a *flow* that occupies one or more capacity-limited *resources* (a node's
// NIC-out, NIC-in, or disk). Rates are allocated by progressive filling
// (water-filling): the most contended resource saturates first, its flows
// are frozen at the bottleneck share, and the residual capacity is re-
// divided among the rest. Rates are recomputed whenever the flow set or a
// capacity changes; each flow's completion is an event computed from its
// remaining bytes.
//
// A node that becomes unavailable has its resource capacities set to zero:
// flows through it stall at rate 0 (they do not abort — mirroring the
// paper's emulation, which SIGSTOPs Hadoop processes). Failure semantics
// (timeouts, fetch failures) belong to the layers above.
//
// The solver is incremental (see DESIGN.md §8): churn re-rates only the
// dirty region of the flow graph, completions pop from a lazy min-heap of
// projected deadlines, and `CapacityBatch` coalesces multi-resource churn
// (a node availability flip) into a single settle. The pre-incremental
// dense solver is retained behind `SolverMode::kDense` as the equivalence
// oracle and the benchmark baseline; both modes produce bit-identical
// simulated outcomes.
//
// Settles themselves are timestamp-coalesced (see DESIGN.md §11): under
// `CoalesceMode::kCoalesced` (default) churn only queues dirty work and the
// recompute runs once per virtual timestamp via an end-of-timestamp flush
// hook registered with the Simulation. Observable reads (`rate()`,
// `remaining()`) force a settle-on-read, and a completion due at the
// current instant forces a full settle before any further churn applies, so
// coalesced and eager (`CoalesceMode::kEager`, one settle per churn call)
// execution produce bit-identical simulated outcomes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "simkit/simulation.hpp"

namespace moon::sim {

/// Rate-allocation strategy.
enum class FairnessModel {
  /// Exact max-min fairness via progressive filling. Churn costs
  /// O(dirty component); use for correctness-sensitive scenarios and tests.
  kMaxMin,
  /// Bottleneck-share approximation: rate = min over the flow's resources of
  /// capacity / flow-count. Never over-subscribes a resource, but forgoes
  /// redistributing residual capacity. Churn costs O(affected neighborhood);
  /// use for large experiment sweeps.
  kBottleneckShare,
};

/// Rate-recompute strategy. Both modes produce bit-identical simulated
/// outcomes (completion order and times, rates at any sample point,
/// transferred bytes); they differ only in how much work churn costs.
enum class SolverMode {
  /// Incremental: recompute only flows whose allocation can have changed,
  /// schedule completions through a lazily-invalidated min-heap.
  kIncremental,
  /// Dense: recompute every flow on every churn event. Retained as the
  /// oracle for the equivalence test and as the benchmark baseline.
  kDense,
};

/// Settle-scheduling strategy. Both modes produce bit-identical simulated
/// outcomes; they differ only in how many times the rate recompute runs per
/// virtual timestamp.
enum class CoalesceMode {
  /// Churn queues dirty work; the recompute runs once per virtual timestamp
  /// via the Simulation's end-of-timestamp flush hook. Observable reads and
  /// due completions force an early settle. The shipping configuration.
  kCoalesced,
  /// Settle after every churn call — the pre-coalescing cost profile,
  /// retained as the equivalence oracle and the benchmark baseline.
  kEager,
};

class FlowNetwork {
 public:
  using ResourceId = std::size_t;
  /// Completion callback; receives the id of the finished flow.
  using CompletionFn = std::function<void(FlowId)>;

  explicit FlowNetwork(Simulation& sim,
                       FairnessModel model = FairnessModel::kMaxMin,
                       SolverMode solver = SolverMode::kIncremental,
                       CoalesceMode coalesce = CoalesceMode::kCoalesced);

  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;
  ~FlowNetwork();

  /// RAII churn scope: while at least one batch is open, flow/capacity
  /// mutations accrue progress and queue dirty work but defer the rate
  /// recompute; the outermost batch's close runs one settle for the whole
  /// group. `Node::set_available` uses this to apply its three capacity
  /// changes in a single settle. Nestable. While a batch is open, `rate()`
  /// returns pre-batch rates. A batch groups same-instant churn only: do
  /// not run the simulation while one is open (completions would be
  /// deferred past their true timestamps; asserted in debug builds).
  class CapacityBatch {
   public:
    explicit CapacityBatch(FlowNetwork& net) : net_(net) {
      // Settle coalesced churn from before the batch so "pre-batch rates"
      // means the settled pre-batch allocation (no-op under kEager).
      if (net_.batch_depth_ == 0) net_.settle_for_read();
      ++net_.batch_depth_;
    }
    ~CapacityBatch() { close(); }
    CapacityBatch(const CapacityBatch&) = delete;
    CapacityBatch& operator=(const CapacityBatch&) = delete;

    /// Ends the scope early (idempotent): the outermost close settles. Call
    /// explicitly when completion callbacks may throw — the destructor
    /// settles too, but from a noexcept context.
    void close() {
      if (closed_) return;
      closed_ = true;
      if (--net_.batch_depth_ == 0) net_.maybe_settle();
    }

   private:
    FlowNetwork& net_;
    bool closed_ = false;
  };

  /// Registers a capacity-limited resource (bytes/second).
  ResourceId add_resource(BytesPerSecond capacity, std::string name = {});

  /// Changes a resource's capacity (0 = stalled); live flows re-share.
  void set_capacity(ResourceId resource, BytesPerSecond capacity);
  [[nodiscard]] BytesPerSecond capacity(ResourceId resource) const;

  /// Starts a flow of `size` bytes across `resources` (all simultaneously
  /// required). `on_complete` fires when the last byte is delivered; it may
  /// start or abort other flows.
  FlowId start_flow(std::vector<ResourceId> resources, Bytes size,
                    CompletionFn on_complete);

  /// Aborts a flow; its completion callback never fires.
  void abort_flow(FlowId id);

  [[nodiscard]] bool active(FlowId id) const;
  [[nodiscard]] Bytes remaining(FlowId id) const;
  [[nodiscard]] double rate(FlowId id) const;  ///< bytes/second right now
  [[nodiscard]] std::size_t active_flows() const { return active_count_; }

  /// Bytes moved through `resource` since construction (for throttling
  /// telemetry: dedicated DataNodes report consumed bandwidth upstream).
  [[nodiscard]] double transferred_through(ResourceId resource) const;

 private:
  static constexpr std::uint32_t kNoSlot = std::numeric_limits<std::uint32_t>::max();

  struct Flow {
    FlowId id;  // invalid() while the slot is on the free list
    std::vector<ResourceId> resources;
    // resources_[resources[k]].flows[link_pos[k]] is this flow's entry;
    // duplicate path entries get independent links.
    std::vector<std::uint32_t> link_pos;
    double remaining = 0.0;  // bytes, accrued up to last_update_
    double rate = 0.0;       // bytes/second, assigned by the allocator
    Time deadline = kTimeMax;  // projected completion; kTimeMax = stalled
    std::uint64_t epoch = 0;   // bumped per deadline refresh; stale-marks heap entries
    CompletionFn on_complete;
    // Intrusive live list in start order: keeps per-settle scans bounded by
    // the *current* flow count, not the historical peak slot count.
    std::uint32_t live_prev = kNoSlot;
    std::uint32_t live_next = kNoSlot;
    std::uint64_t visit_stamp = 0;  // dirty-region traversal
    bool in_heap = false;           // has a live completion-heap entry
    bool fill_mark = false;         // scratch: frozen/stalled during a recompute
    bool share_counted = false;     // bottleneck-share: contributes to share_load
  };

  /// Back-reference stored in a resource's flow index: `slot` is the flow,
  /// `ridx` the index of this resource inside the flow's own path.
  struct Link {
    std::uint32_t slot;
    std::uint32_t ridx;
  };

  struct Resource {
    BytesPerSecond cap = 0.0;
    std::string name;
    double transferred = 0.0;  // lifetime bytes through this resource
    std::vector<Link> flows;   // active flows crossing this resource
    std::uint32_t share_load = 0;  // bottleneck-share: live-flow count (maintained)
    bool seed_dirty = false;       // queued in dirty_resources_
    bool cap_dirty = false;        // capacity changed since last recompute
    std::uint64_t visit_stamp = 0;  // dirty-region traversal
    // Progressive-filling scratch (valid only mid-recompute):
    double residual = 0.0;
    std::uint32_t load = 0;
  };

  /// Completion-heap entry; stale when the flow is gone or its epoch moved.
  struct CompletionEntry {
    Time deadline;
    FlowId flow;
    std::uint32_t slot;
    std::uint64_t epoch;
  };

  /// Share-heap entry for bottleneck selection inside max-min filling;
  /// stale when the resource's residual/load no longer reproduce `share`.
  struct ShareEntry {
    double share;
    ResourceId resource;
  };

  // Completion heap: min by (deadline, flow id) — the id tie-break keeps the
  // retire order of simultaneous completions deterministic and identical
  // across solver modes.
  static bool completion_later(const CompletionEntry& a, const CompletionEntry& b);

  [[nodiscard]] const Flow* find_flow(FlowId id) const;

  /// Accrues progress for all flows since `last_update_`, retires due
  /// flows, recomputes dirty rates, and re-arms the completion event.
  void settle();
  /// Post-churn hook: settles immediately under kEager (or when a completion
  /// is due at this instant — its callback must fire at the same point the
  /// eager path would run it); otherwise arms the end-of-timestamp flush.
  void maybe_settle();
  /// End-of-timestamp flush (runs via the Simulation hook).
  void flush();
  /// Settle-on-read: makes deferred dirty work observable before a rate or
  /// remaining-bytes query. No-op mid-settle, inside a batch, or when clean
  /// (in particular: always a no-op under kEager).
  void settle_for_read() {
    if (!settling_ && batch_depth_ == 0 && has_dirty()) settle();
  }
  void advance_progress();
  std::uint32_t next_due(Time now);  // kNoSlot when nothing is due
  void retire(std::uint32_t slot);
  void remove_flow(std::uint32_t slot);
  void mark_resource_dirty(ResourceId r, bool cap_changed);
  [[nodiscard]] bool has_dirty() const {
    return !dirty_resources_.empty() || !dirty_flows_.empty();
  }
  void recompute();
  void recompute_dense_maxmin();
  void recompute_dense_bottleneck_share();
  void recompute_region_maxmin();
  void recompute_incremental_bottleneck_share();
  void update_share_status(std::uint32_t slot);
  void assign_rate(std::uint32_t slot, double rate);
  void refresh_deadline(std::uint32_t slot);
  void push_completion_entry(std::uint32_t slot);
  void compact_completion_heap();
  [[nodiscard]] bool heap_entry_valid(const CompletionEntry& e) const;
  Time next_deadline();
  void reschedule_completion_event();

  Simulation& sim_;
  FairnessModel model_;
  SolverMode solver_;
  CoalesceMode coalesce_;
  Simulation::FlushHookId hook_ = 0;  // registered only under kCoalesced
  bool flush_armed_ = false;
  IdAllocator<FlowId> ids_;
  std::vector<Resource> resources_;
  std::vector<Flow> slots_;
  std::vector<std::uint32_t> free_slots_;  // LIFO keeps slot reuse deterministic
  std::unordered_map<FlowId, std::uint32_t> slot_of_;
  std::uint32_t live_head_ = kNoSlot;
  std::uint32_t live_tail_ = kNoSlot;
  std::size_t active_count_ = 0;
  Time last_update_ = 0;
  EventId completion_event_ = EventId::invalid();
  Time scheduled_for_ = kTimeMax;
  bool settling_ = false;
  int batch_depth_ = 0;

  // Dirty seeds queued between churn and the next recompute.
  std::vector<ResourceId> dirty_resources_;
  std::vector<std::uint32_t> dirty_flows_;

  // Completion min-heap by (deadline, flow id); entries invalidate lazily.
  std::vector<CompletionEntry> heap_;
  std::size_t heap_live_ = 0;

  // Recompute scratch, reused across settles to avoid reallocation.
  std::uint64_t stamp_ = 0;
  std::vector<std::uint32_t> region_flows_;
  std::vector<ResourceId> region_resources_;
  std::vector<ShareEntry> share_heap_;
  std::vector<ResourceId> round_touched_;
  std::vector<std::uint32_t> rate_set_;
  std::vector<std::uint32_t> dense_unfrozen_;
};

}  // namespace moon::sim
