// Fluid data-transfer model with max-min fair sharing.
//
// Every data movement in the cluster (network transfer, disk read/write) is
// a *flow* that occupies one or more capacity-limited *resources* (a node's
// NIC-out, NIC-in, or disk). Rates are allocated by progressive filling
// (water-filling): the most contended resource saturates first, its flows
// are frozen at the bottleneck share, and the residual capacity is re-
// divided among the rest. Rates are recomputed whenever the flow set or a
// capacity changes; each flow's completion is an event computed from its
// remaining bytes.
//
// A node that becomes unavailable has its resource capacities set to zero:
// flows through it stall at rate 0 (they do not abort — mirroring the
// paper's emulation, which SIGSTOPs Hadoop processes). Failure semantics
// (timeouts, fetch failures) belong to the layers above.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "simkit/simulation.hpp"

namespace moon::sim {

/// Rate-allocation strategy.
enum class FairnessModel {
  /// Exact max-min fairness via progressive filling. O(bottlenecks × flows)
  /// per churn; use for correctness-sensitive small scenarios and tests.
  kMaxMin,
  /// Bottleneck-share approximation: rate = min over the flow's resources of
  /// capacity / flow-count. Never over-subscribes a resource, but forgoes
  /// redistributing residual capacity. O(flow degree) per flow per churn;
  /// use for large experiment sweeps.
  kBottleneckShare,
};

class FlowNetwork {
 public:
  using ResourceId = std::size_t;
  /// Completion callback; receives the id of the finished flow.
  using CompletionFn = std::function<void(FlowId)>;

  explicit FlowNetwork(Simulation& sim,
                       FairnessModel model = FairnessModel::kMaxMin);

  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;
  ~FlowNetwork();

  /// Registers a capacity-limited resource (bytes/second).
  ResourceId add_resource(BytesPerSecond capacity, std::string name = {});

  /// Changes a resource's capacity (0 = stalled); live flows re-share.
  void set_capacity(ResourceId resource, BytesPerSecond capacity);
  [[nodiscard]] BytesPerSecond capacity(ResourceId resource) const;

  /// Starts a flow of `size` bytes across `resources` (all simultaneously
  /// required). `on_complete` fires when the last byte is delivered; it may
  /// start or abort other flows.
  FlowId start_flow(std::vector<ResourceId> resources, Bytes size,
                    CompletionFn on_complete);

  /// Aborts a flow; its completion callback never fires.
  void abort_flow(FlowId id);

  [[nodiscard]] bool active(FlowId id) const;
  [[nodiscard]] Bytes remaining(FlowId id) const;
  [[nodiscard]] double rate(FlowId id) const;  ///< bytes/second right now
  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }

  /// Bytes moved through `resource` since construction (for throttling
  /// telemetry: dedicated DataNodes report consumed bandwidth upstream).
  [[nodiscard]] double transferred_through(ResourceId resource) const;

 private:
  struct Flow {
    std::vector<ResourceId> resources;
    double remaining;  // bytes
    double rate = 0.0;  // bytes/second, assigned by the allocator
    CompletionFn on_complete;
  };

  struct Resource {
    BytesPerSecond cap = 0.0;
    std::string name;
    double transferred = 0.0;  // lifetime bytes through this resource
  };

  /// Accrues progress for all flows since `last_update_`, retiring finished
  /// flows, then recomputes rates and re-schedules the completion event.
  void settle();
  void advance_progress();
  void recompute_rates();
  void recompute_rates_maxmin();
  void recompute_rates_bottleneck_share();
  void schedule_next_completion();

  Simulation& sim_;
  FairnessModel model_;
  IdAllocator<FlowId> ids_;
  std::vector<Resource> resources_;
  std::unordered_map<FlowId, Flow> flows_;
  Time last_update_ = 0;
  EventId completion_event_ = EventId::invalid();
  bool settling_ = false;
};

}  // namespace moon::sim
