// Wall-clock profiler for the simulator's hot paths.
//
// Perf work on this codebase has repeatedly moved the bottleneck (solver ->
// scheduler -> event loop); the profiler makes the current one visible
// instead of guessed. Each `Key` names a hot path; components open a
// `Profiler::Scope` around it and the per-Simulation `Profiler` accumulates
// real (host) nanoseconds plus call counts. Purely observational: nothing in
// here reads or feeds simulated time, so instrumentation can never perturb
// an outcome. Snapshots ride along in `RunResult`/`MultiJobResult` and the
// benches print the breakdown (see DESIGN.md §11).
//
// Nesting: kRecompute runs inside kSettle, and kSpeculation inside
// kHeartbeat — the inner keys are sub-spans of the outer ones, so the
// per-key totals are not additive across those pairs.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace moon::sim {

class Profiler {
 public:
  enum class Key : std::size_t {
    kSettle,           ///< FlowNetwork::settle (includes retire + recompute)
    kRecompute,        ///< rate recompute only (sub-span of kSettle)
    kDfsProbe,         ///< Dfs::probe_ops stalled-transfer sweeps
    kReplicationScan,  ///< Dfs::replication_scan + repair stream refill
    kHeartbeat,        ///< JobTracker::assign_work per heartbeat
    kSpeculation,      ///< SpeculationPolicy::pick (sub-span of kHeartbeat)
    kEventDispatch,    ///< Simulation::step callback dispatch (outermost:
                       ///< every other key is a sub-span of this one)
    kCheckpoint,       ///< CheckpointStore emit + attempt restore
    kCount,
  };
  static constexpr std::size_t kKeyCount = static_cast<std::size_t>(Key::kCount);

  struct Counter {
    std::uint64_t ns = 0;
    std::uint64_t calls = 0;
    [[nodiscard]] double ms() const { return static_cast<double>(ns) / 1e6; }
  };
  /// Value-type copy of all counters (what RunResult carries).
  using Snapshot = std::array<Counter, kKeyCount>;

  /// RAII span: accumulates elapsed wall time into `key` on destruction.
  class Scope {
   public:
    Scope(Profiler& profiler, Key key)
        : profiler_(profiler),
          key_(key),
          // detlint: allow(wall-clock) -- the profiler meters real elapsed wall time by design; its counters feed RunResult diagnostics only and never a simulated outcome
          start_(std::chrono::steady_clock::now()) {}
    ~Scope() {
      profiler_.add(key_, static_cast<std::uint64_t>(
                              std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  // detlint: allow(wall-clock) -- profiler wall metering; diagnostics only, never a simulated outcome
                                  std::chrono::steady_clock::now() - start_)
                                  .count()));
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Profiler& profiler_;
    Key key_;
    std::chrono::steady_clock::time_point start_;  // detlint: allow(wall-clock) -- profiler wall metering; diagnostics only, never a simulated outcome
  };

  void add(Key key, std::uint64_t ns) {
    Counter& c = counters_[static_cast<std::size_t>(key)];
    c.ns += ns;
    ++c.calls;
  }

  [[nodiscard]] const Counter& counter(Key key) const {
    return counters_[static_cast<std::size_t>(key)];
  }
  [[nodiscard]] Snapshot snapshot() const { return counters_; }
  void reset() { counters_ = {}; }

  static const char* name(Key key);

 private:
  Snapshot counters_{};
};

}  // namespace moon::sim
