// Periodic activity (heartbeats, liveness scans, bandwidth sampling).
#pragma once

#include <functional>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "simkit/simulation.hpp"

namespace moon::sim {

class PeriodicTask {
 public:
  using Callback = std::function<void()>;

  PeriodicTask(Simulation& sim, Duration interval, Callback fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Begins firing every `interval`, first fire after `initial_delay`
  /// (defaults to one full interval). Restarting while active is a no-op.
  void start();
  void start_after(Duration initial_delay);

  /// Stops firing; may be started again later.
  void stop();

  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] Duration interval() const { return interval_; }

 private:
  void fire();

  Simulation& sim_;
  Duration interval_;
  Callback fn_;
  bool active_ = false;
  EventId next_ = EventId::invalid();
};

}  // namespace moon::sim
