// Retry/timeout/exponential-backoff shim for calls against a crashed master.
//
// While the NameNode or JobTracker is down (faults::MasterCrash), callers do
// not spin or fail: they park the pending call behind a `Retrier`, which
// re-drives it on a sim-time timer with deterministic exponential backoff.
// No RNG is involved — same seed, same schedule — and a Retrier that is
// never used schedules nothing, preserving the zero-perturbation contract.
#pragma once

#include <functional>

#include "simkit/simulation.hpp"

namespace moon::sim {

struct RetryPolicy {
  sim::Duration initial = 1 * sim::kSecond;  ///< first retry delay
  sim::Duration max = 60 * sim::kSecond;     ///< backoff ceiling
  double multiplier = 2.0;                   ///< delay growth per retry
  int max_attempts = 0;                      ///< 0 = retry forever
};

/// One pending retried call. At most one timer is outstanding at a time;
/// `retry()` while a timer is pending is a no-op (the earlier schedule wins),
/// so re-entrant callers cannot stack events. Destruction cancels the timer.
class Retrier {
 public:
  explicit Retrier(sim::Simulation& sim, RetryPolicy policy = {})
      : sim_(sim), policy_(policy) {}
  ~Retrier() { cancel(); }

  Retrier(const Retrier&) = delete;
  Retrier& operator=(const Retrier&) = delete;

  /// Schedules `fn` after the current backoff delay and doubles the delay
  /// (capped at `policy.max`). Returns false when `max_attempts` is
  /// exhausted (nothing scheduled) or a retry is already pending.
  bool retry(std::function<void()> fn) {
    if (pending_) return false;
    if (policy_.max_attempts > 0 && attempts_ >= policy_.max_attempts) {
      return false;
    }
    ++attempts_;
    pending_ = true;
    event_ = sim_.schedule_after(delay_, [this, fn = std::move(fn)] {
      pending_ = false;
      fn();
    });
    auto next = static_cast<sim::Duration>(
        static_cast<double>(delay_) * policy_.multiplier);
    delay_ = next > policy_.max ? policy_.max : next;
    return true;
  }

  /// Back to the initial delay; call after the guarded call finally succeeds.
  void reset() {
    cancel();
    delay_ = policy_.initial;
    attempts_ = 0;
  }

  /// Drops the pending timer (if any) without touching the backoff state.
  void cancel() {
    if (!pending_) return;
    sim_.cancel(event_);
    pending_ = false;
  }

  [[nodiscard]] bool pending() const { return pending_; }
  [[nodiscard]] int attempts() const { return attempts_; }
  [[nodiscard]] sim::Duration current_delay() const { return delay_; }

 private:
  sim::Simulation& sim_;
  RetryPolicy policy_;
  sim::Duration delay_ = policy_.initial;
  int attempts_ = 0;
  bool pending_ = false;
  EventId event_{};
};

}  // namespace moon::sim
