#include "simkit/flow_network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace moon::sim {
namespace {
// A flow is "done" when less than half a byte remains; avoids infinite
// rescheduling from floating-point residue.
constexpr double kDoneEpsilon = 0.5;
}  // namespace

FlowNetwork::FlowNetwork(Simulation& sim, FairnessModel model)
    : sim_(sim), model_(model), last_update_(sim.now()) {}

FlowNetwork::~FlowNetwork() {
  if (completion_event_.valid()) sim_.cancel(completion_event_);
}

FlowNetwork::ResourceId FlowNetwork::add_resource(BytesPerSecond capacity,
                                                  std::string name) {
  if (capacity < 0.0) throw std::logic_error("FlowNetwork: negative capacity");
  resources_.push_back(Resource{capacity, std::move(name), 0.0});
  return resources_.size() - 1;
}

void FlowNetwork::set_capacity(ResourceId resource, BytesPerSecond capacity) {
  if (capacity < 0.0) throw std::logic_error("FlowNetwork: negative capacity");
  advance_progress();
  resources_.at(resource).cap = capacity;
  settle();
}

BytesPerSecond FlowNetwork::capacity(ResourceId resource) const {
  return resources_.at(resource).cap;
}

FlowId FlowNetwork::start_flow(std::vector<ResourceId> resources, Bytes size,
                               CompletionFn on_complete) {
  if (size < 0) throw std::logic_error("FlowNetwork: negative flow size");
  for (ResourceId r : resources) {
    if (r >= resources_.size()) throw std::out_of_range("FlowNetwork: bad resource");
  }
  advance_progress();
  const FlowId id = ids_.next();
  // Clamp to one byte: a zero-size flow would complete synchronously inside
  // this call, handing re-entrancy surprises to the caller. One byte keeps
  // completion asynchronous (and is immediate at any non-zero rate).
  const double bytes = std::max<double>(1.0, static_cast<double>(size));
  flows_.emplace(id, Flow{std::move(resources), bytes, 0.0,
                          std::move(on_complete)});
  settle();
  return id;
}

void FlowNetwork::abort_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  advance_progress();
  flows_.erase(it);
  settle();
}

bool FlowNetwork::active(FlowId id) const { return flows_.contains(id); }

Bytes FlowNetwork::remaining(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) return 0;
  // Account for progress since the last settle without mutating state.
  const double elapsed = to_seconds(sim_.now() - last_update_);
  const double rem = it->second.remaining - it->second.rate * elapsed;
  return static_cast<Bytes>(std::max(0.0, std::ceil(rem)));
}

double FlowNetwork::rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

double FlowNetwork::transferred_through(ResourceId resource) const {
  // Progress accrued up to the last settle. Settles happen on every flow
  // start/finish/capacity change, so under load this is at most a few
  // simulated milliseconds stale — good enough for the heartbeat bandwidth
  // telemetry it feeds, and O(1) (it is polled by every DataNode beat).
  return resources_.at(resource).transferred;
}

void FlowNetwork::advance_progress() {
  const Time now = sim_.now();
  const double elapsed = to_seconds(now - last_update_);
  last_update_ = now;
  if (elapsed <= 0.0) return;
  for (auto& [id, flow] : flows_) {
    const double moved = std::min(flow.remaining, flow.rate * elapsed);
    flow.remaining -= moved;
    for (ResourceId r : flow.resources) resources_[r].transferred += moved;
  }
}

void FlowNetwork::recompute_rates() {
  if (model_ == FairnessModel::kBottleneckShare) {
    recompute_rates_bottleneck_share();
  } else {
    recompute_rates_maxmin();
  }
}

void FlowNetwork::recompute_rates_bottleneck_share() {
  // Fast approximation: each flow receives the worst per-resource fair share
  // along its path. Shares never sum above capacity on any resource.
  //
  // Stalled flows (any zero-capacity resource on the path, i.e. an endpoint
  // node is down) are excluded from the load counts first: exact max-min
  // redistributes their share automatically, and without this exclusion a
  // volatile cluster collapses — half the flows are stalled at any moment
  // and would pin down capacity they cannot use.
  std::vector<std::size_t> load(resources_.size(), 0);
  for (auto& [id, flow] : flows_) {
    bool stalled = false;
    for (ResourceId r : flow.resources) {
      if (resources_[r].cap <= 0.0) {
        stalled = true;
        break;
      }
    }
    flow.rate = stalled ? 0.0 : -1.0;  // -1 marks "live, rate pending"
    if (!stalled) {
      for (ResourceId r : flow.resources) ++load[r];
    }
  }
  for (auto& [id, flow] : flows_) {
    if (flow.rate == 0.0) continue;  // stalled
    if (flow.resources.empty()) {
      flow.rate = std::numeric_limits<double>::infinity();
      continue;
    }
    double rate = std::numeric_limits<double>::infinity();
    for (ResourceId r : flow.resources) {
      rate = std::min(rate, resources_[r].cap / static_cast<double>(load[r]));
    }
    flow.rate = std::max(0.0, rate);
  }
}

void FlowNetwork::recompute_rates_maxmin() {
  // Progressive filling (max-min fairness).
  std::vector<double> residual(resources_.size());
  std::vector<std::size_t> load(resources_.size(), 0);
  for (std::size_t r = 0; r < resources_.size(); ++r) residual[r] = resources_[r].cap;

  std::vector<Flow*> unfrozen;
  unfrozen.reserve(flows_.size());
  for (auto& [id, flow] : flows_) {
    flow.rate = 0.0;
    if (flow.resources.empty()) {
      // Resource-less flow: completes at infinite rate; model as huge rate.
      flow.rate = std::numeric_limits<double>::infinity();
      continue;
    }
    unfrozen.push_back(&flow);
    for (ResourceId r : flow.resources) ++load[r];
  }

  while (!unfrozen.empty()) {
    // Find the bottleneck: the resource with the smallest fair share.
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t best_r = resources_.size();
    for (std::size_t r = 0; r < resources_.size(); ++r) {
      if (load[r] == 0) continue;
      const double share = residual[r] / static_cast<double>(load[r]);
      if (share < best_share) {
        best_share = share;
        best_r = r;
      }
    }
    if (best_r == resources_.size()) break;  // no loaded resources remain

    // Freeze every unfrozen flow crossing the bottleneck at that share.
    for (auto it = unfrozen.begin(); it != unfrozen.end();) {
      Flow* f = *it;
      const bool crosses = std::find(f->resources.begin(), f->resources.end(),
                                     best_r) != f->resources.end();
      if (!crosses) {
        ++it;
        continue;
      }
      f->rate = std::max(0.0, best_share);
      for (ResourceId r : f->resources) {
        residual[r] = std::max(0.0, residual[r] - f->rate);
        --load[r];
      }
      it = unfrozen.erase(it);
    }
  }
}

void FlowNetwork::schedule_next_completion() {
  if (completion_event_.valid()) {
    sim_.cancel(completion_event_);
    completion_event_ = EventId::invalid();
  }
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_) {
    if (flow.remaining <= kDoneEpsilon) {
      earliest = 0.0;
      break;
    }
    if (flow.rate > 0.0) {
      earliest = std::min(earliest, flow.remaining / flow.rate);
    }
  }
  if (!std::isfinite(earliest)) return;  // everything stalled
  auto delay = static_cast<Duration>(std::ceil(earliest * kSecond));
  delay = std::max<Duration>(delay, 0);
  completion_event_ = sim_.schedule_after(delay, [this] {
    completion_event_ = EventId::invalid();
    settle();
  });
}

void FlowNetwork::settle() {
  // Completion callbacks may call back into this object (starting/aborting
  // flows). Those nested calls run advance/settle themselves; suppress the
  // outer re-entry and let the loop below re-check.
  if (settling_) return;
  settling_ = true;
  advance_progress();

  // Retire finished flows, firing callbacks outside of map mutation.
  for (;;) {
    FlowId done = FlowId::invalid();
    for (auto& [id, flow] : flows_) {
      if (flow.remaining <= kDoneEpsilon) {
        done = id;
        break;
      }
    }
    if (!done.valid()) break;
    CompletionFn cb = std::move(flows_.at(done).on_complete);
    flows_.erase(done);
    if (cb) cb(done);
    advance_progress();
  }

  recompute_rates();
  settling_ = false;
  schedule_next_completion();
}

}  // namespace moon::sim
