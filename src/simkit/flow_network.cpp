#include "simkit/flow_network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace moon::sim {
namespace {
// A flow is "done" when less than half a byte remains; avoids infinite
// rescheduling from floating-point residue. The residue is dropped, not
// transferred.
constexpr double kDoneEpsilon = 0.5;

// Deadlines whose microsecond count would overflow Time are treated as
// stalled (kTimeMax); a later rate change recomputes them.
constexpr double kDeadlineCap = 4.0e18;

constexpr double kInfinity = std::numeric_limits<double>::infinity();
}  // namespace

bool FlowNetwork::completion_later(const CompletionEntry& a,
                                   const CompletionEntry& b) {
  if (a.deadline != b.deadline) return a.deadline > b.deadline;
  return a.flow > b.flow;
}

FlowNetwork::FlowNetwork(Simulation& sim, FairnessModel model, SolverMode solver,
                         CoalesceMode coalesce)
    : sim_(sim),
      model_(model),
      solver_(solver),
      coalesce_(coalesce),
      last_update_(sim.now()) {
  if (coalesce_ == CoalesceMode::kCoalesced) {
    hook_ = sim_.add_flush_hook([this] { flush(); });
  }
}

FlowNetwork::~FlowNetwork() {
  if (completion_event_.valid()) sim_.cancel(completion_event_);
  if (coalesce_ == CoalesceMode::kCoalesced) sim_.remove_flush_hook(hook_);
}

FlowNetwork::ResourceId FlowNetwork::add_resource(BytesPerSecond capacity,
                                                  std::string name) {
  if (capacity < 0.0) throw std::logic_error("FlowNetwork: negative capacity");
  resources_.emplace_back();
  resources_.back().cap = capacity;
  resources_.back().name = std::move(name);
  return resources_.size() - 1;
}

void FlowNetwork::set_capacity(ResourceId resource, BytesPerSecond capacity) {
  if (capacity < 0.0) throw std::logic_error("FlowNetwork: negative capacity");
  advance_progress();
  resources_.at(resource).cap = capacity;
  mark_resource_dirty(resource, /*cap_changed=*/true);
  maybe_settle();
}

BytesPerSecond FlowNetwork::capacity(ResourceId resource) const {
  return resources_.at(resource).cap;
}

FlowId FlowNetwork::start_flow(std::vector<ResourceId> resources, Bytes size,
                               CompletionFn on_complete) {
  if (size < 0) throw std::logic_error("FlowNetwork: negative flow size");
  for (ResourceId r : resources) {
    if (r >= resources_.size()) throw std::out_of_range("FlowNetwork: bad resource");
  }
  advance_progress();
  const FlowId id = ids_.next();
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Flow& f = slots_[slot];
  f.id = id;
  f.resources = std::move(resources);
  f.link_pos.resize(f.resources.size());
  // Clamp to one byte: a zero-size flow would complete synchronously inside
  // this call, handing re-entrancy surprises to the caller. One byte keeps
  // completion asynchronous (and is immediate at any non-zero rate).
  f.remaining = std::max<double>(1.0, static_cast<double>(size));
  f.rate = 0.0;
  f.deadline = kTimeMax;
  f.on_complete = std::move(on_complete);
  for (std::size_t k = 0; k < f.resources.size(); ++k) {
    Resource& res = resources_[f.resources[k]];
    f.link_pos[k] = static_cast<std::uint32_t>(res.flows.size());
    res.flows.push_back(Link{slot, static_cast<std::uint32_t>(k)});
  }
  f.live_prev = live_tail_;
  f.live_next = kNoSlot;
  if (live_tail_ != kNoSlot) {
    slots_[live_tail_].live_next = slot;
  } else {
    live_head_ = slot;
  }
  live_tail_ = slot;
  slot_of_.emplace(id, slot);
  ++active_count_;
  dirty_flows_.push_back(slot);
  maybe_settle();
  return id;
}

void FlowNetwork::abort_flow(FlowId id) {
  auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return;
  advance_progress();
  remove_flow(it->second);
  maybe_settle();
}

const FlowNetwork::Flow* FlowNetwork::find_flow(FlowId id) const {
  auto it = slot_of_.find(id);
  return it == slot_of_.end() ? nullptr : &slots_[it->second];
}

bool FlowNetwork::active(FlowId id) const { return slot_of_.contains(id); }

Bytes FlowNetwork::remaining(FlowId id) const {
  // Deferred dirty work must become observable before the query (lazy
  // evaluation; logically const, hence the cast).
  const_cast<FlowNetwork*>(this)->settle_for_read();
  const Flow* f = find_flow(id);
  if (f == nullptr) return 0;
  // Account for progress since the last settle without mutating state.
  const double elapsed = to_seconds(sim_.now() - last_update_);
  const double rem = f->remaining - f->rate * elapsed;
  return static_cast<Bytes>(std::max(0.0, std::ceil(rem)));
}

double FlowNetwork::rate(FlowId id) const {
  const_cast<FlowNetwork*>(this)->settle_for_read();
  const Flow* f = find_flow(id);
  return f == nullptr ? 0.0 : f->rate;
}

double FlowNetwork::transferred_through(ResourceId resource) const {
  // Progress accrued up to the last churn/settle at or before now. Progress
  // accrues on every flow start/finish/capacity change (even when the
  // recompute itself is coalesced), so under load this is at most a few
  // simulated milliseconds stale — good enough for the heartbeat bandwidth
  // telemetry it feeds, and O(1) (it is polled by every DataNode beat).
  return resources_.at(resource).transferred;
}

void FlowNetwork::advance_progress() {
  const Time now = sim_.now();
  if (now == last_update_) return;
  const double elapsed = to_seconds(now - last_update_);
  last_update_ = now;
  if (elapsed <= 0.0) return;
  for (std::uint32_t s = live_head_; s != kNoSlot; s = slots_[s].live_next) {
    Flow& f = slots_[s];
    if (f.rate <= 0.0) continue;
    const double moved = std::min(f.remaining, f.rate * elapsed);
    f.remaining -= moved;
    for (ResourceId r : f.resources) resources_[r].transferred += moved;
  }
}

void FlowNetwork::mark_resource_dirty(ResourceId r, bool cap_changed) {
  Resource& res = resources_[r];
  if (cap_changed) res.cap_dirty = true;
  if (!res.seed_dirty) {
    res.seed_dirty = true;
    dirty_resources_.push_back(r);
  }
}

void FlowNetwork::remove_flow(std::uint32_t slot) {
  Flow& f = slots_[slot];
  // Unlink from each crossed resource (swap-pop; fix the moved link's
  // back-pointer) and seed it dirty so neighbours re-share the freed share.
  for (std::size_t k = 0; k < f.resources.size(); ++k) {
    Resource& res = resources_[f.resources[k]];
    const std::uint32_t pos = f.link_pos[k];
    const Link moved = res.flows.back();
    res.flows[pos] = moved;
    res.flows.pop_back();
    if (moved.slot != slot || moved.ridx != k) {
      slots_[moved.slot].link_pos[moved.ridx] = pos;
    }
    mark_resource_dirty(f.resources[k], /*cap_changed=*/false);
  }
  if (f.share_counted) {
    for (ResourceId r : f.resources) --resources_[r].share_load;
  }
  if (f.in_heap) {
    f.in_heap = false;
    --heap_live_;
  }
  if (f.live_prev != kNoSlot) {
    slots_[f.live_prev].live_next = f.live_next;
  } else {
    live_head_ = f.live_next;
  }
  if (f.live_next != kNoSlot) {
    slots_[f.live_next].live_prev = f.live_prev;
  } else {
    live_tail_ = f.live_prev;
  }
  slot_of_.erase(f.id);
  f.id = FlowId::invalid();
  f.on_complete = nullptr;
  f.resources.clear();
  f.link_pos.clear();
  f.share_counted = false;
  free_slots_.push_back(slot);
  --active_count_;
}

void FlowNetwork::retire(std::uint32_t slot) {
  Flow& f = slots_[slot];
  const FlowId id = f.id;
  CompletionFn cb = std::move(f.on_complete);
  remove_flow(slot);
  if (cb) cb(id);
}

std::uint32_t FlowNetwork::next_due(Time now) {
  if (solver_ == SolverMode::kDense) {
    // Oracle scan: lowest (deadline, id) among due flows — the same order
    // the completion heap pops.
    std::uint32_t best = kNoSlot;
    for (std::uint32_t s = live_head_; s != kNoSlot; s = slots_[s].live_next) {
      const Flow& f = slots_[s];
      if (f.deadline > now) continue;
      if (best == kNoSlot || f.deadline < slots_[best].deadline ||
          (f.deadline == slots_[best].deadline && f.id < slots_[best].id)) {
        best = s;
      }
    }
    return best;
  }
  while (!heap_.empty()) {
    const CompletionEntry top = heap_.front();
    if (!heap_entry_valid(top)) {
      std::pop_heap(heap_.begin(), heap_.end(), completion_later);
      heap_.pop_back();
      continue;
    }
    if (top.deadline > now) return kNoSlot;
    std::pop_heap(heap_.begin(), heap_.end(), completion_later);
    heap_.pop_back();
    slots_[top.slot].in_heap = false;
    --heap_live_;
    return top.slot;
  }
  return kNoSlot;
}

bool FlowNetwork::heap_entry_valid(const CompletionEntry& e) const {
  const Flow& f = slots_[e.slot];
  return f.id == e.flow && f.epoch == e.epoch;
}

void FlowNetwork::maybe_settle() {
  // Nested churn (from a completion callback mid-settle) and batched churn
  // always defer: the outer settle's recompute, or the batch close, covers
  // the queued dirty work.
  if (settling_ || batch_depth_ > 0) return;
  if (coalesce_ == CoalesceMode::kEager) {
    settle();
    return;
  }
  // A completion due at this very instant must retire *now*: the eager path
  // would fire its callback inside this churn call, and deferring it past
  // further same-timestamp events could change what those events observe.
  // `scheduled_for_` tracks the earliest deadline as of the last settle, and
  // deadlines only move at settles, so this test is exact.
  if (completion_event_.valid() && scheduled_for_ <= sim_.now()) {
    settle();
    return;
  }
  if (!flush_armed_) {
    flush_armed_ = true;
    sim_.arm_flush(hook_);
  }
}

void FlowNetwork::flush() {
  // End-of-timestamp hook: batches group same-instant churn within a single
  // event callback, so none can still be open when the Simulation flushes.
  assert(batch_depth_ == 0);
  flush_armed_ = false;
  if (has_dirty()) settle();
}

void FlowNetwork::settle() {
  // Completion callbacks may call back into this object (starting/aborting
  // flows, changing capacities). Those nested calls accrue progress and
  // queue dirty work themselves; suppress the re-entrant settle and let the
  // outer loop below reach the fixpoint. Batches defer the same way.
  if (settling_ || batch_depth_ > 0) return;
  Profiler::Scope profile(sim_.profiler(), Profiler::Key::kSettle);
  settling_ = true;
  advance_progress();
  // Retire every flow due as of now, lowest (deadline, id) first. Nested
  // churn from the callbacks only queues dirty work, so no flow *becomes*
  // due during the cascade; the recompute below runs once, after it.
  for (std::uint32_t due; (due = next_due(sim_.now())) != kNoSlot;) {
    retire(due);
  }
  if (has_dirty()) recompute();
  settling_ = false;
  // A recompute can leave a flow due immediately (infinite rate, or a rate
  // change landing in the sub-epsilon window); it completes via the event
  // armed here at `now`, keeping completions asynchronous to the caller.
  reschedule_completion_event();
}

void FlowNetwork::recompute() {
  Profiler::Scope profile(sim_.profiler(), Profiler::Key::kRecompute);
  if (solver_ == SolverMode::kDense) {
    if (model_ == FairnessModel::kMaxMin) {
      recompute_dense_maxmin();
    } else {
      recompute_dense_bottleneck_share();
    }
  } else {
    if (model_ == FairnessModel::kMaxMin) {
      recompute_region_maxmin();
    } else {
      recompute_incremental_bottleneck_share();
    }
  }
  for (ResourceId r : dirty_resources_) {
    resources_[r].seed_dirty = false;
    resources_[r].cap_dirty = false;
  }
  dirty_resources_.clear();
  dirty_flows_.clear();
}

void FlowNetwork::assign_rate(std::uint32_t slot, double rate) {
  Flow& f = slots_[slot];
  if (rate == f.rate) return;  // same rate → the absolute deadline still holds
  f.rate = rate;
  refresh_deadline(slot);
}

void FlowNetwork::refresh_deadline(std::uint32_t slot) {
  Flow& f = slots_[slot];
  ++f.epoch;  // lazily invalidates any heap entry for the old deadline
  if (f.in_heap) {
    f.in_heap = false;
    --heap_live_;
  }
  if (f.remaining <= kDoneEpsilon || std::isinf(f.rate)) {
    f.deadline = sim_.now();
  } else if (f.rate <= 0.0) {
    f.deadline = kTimeMax;  // stalled: no completion until a rate change
    return;
  } else {
    const double us =
        std::ceil((f.remaining / f.rate) * static_cast<double>(kSecond));
    if (!(us < kDeadlineCap)) {
      f.deadline = kTimeMax;
      return;
    }
    f.deadline = sim_.now() + static_cast<Duration>(us);
  }
  if (solver_ == SolverMode::kIncremental) push_completion_entry(slot);
}

void FlowNetwork::push_completion_entry(std::uint32_t slot) {
  Flow& f = slots_[slot];
  heap_.push_back(CompletionEntry{f.deadline, f.id, slot, f.epoch});
  std::push_heap(heap_.begin(), heap_.end(), completion_later);
  f.in_heap = true;
  ++heap_live_;
  // Lazy invalidation accumulates stale entries; rebuild when they dominate
  // so heap depth tracks the live flow set, not historical churn.
  if (heap_.size() >= 64 && heap_.size() > 2 * heap_live_) {
    compact_completion_heap();
  }
}

void FlowNetwork::compact_completion_heap() {
  std::erase_if(heap_, [this](const CompletionEntry& e) {
    return !heap_entry_valid(e);
  });
  std::make_heap(heap_.begin(), heap_.end(), completion_later);
}

Time FlowNetwork::next_deadline() {
  if (solver_ == SolverMode::kDense) {
    Time next = kTimeMax;
    for (std::uint32_t s = live_head_; s != kNoSlot; s = slots_[s].live_next) {
      if (slots_[s].deadline < next) next = slots_[s].deadline;
    }
    return next;
  }
  while (!heap_.empty()) {
    if (heap_entry_valid(heap_.front())) return heap_.front().deadline;
    std::pop_heap(heap_.begin(), heap_.end(), completion_later);
    heap_.pop_back();
  }
  return kTimeMax;
}

void FlowNetwork::reschedule_completion_event() {
  const Time next = next_deadline();
  if (completion_event_.valid()) {
    if (next == scheduled_for_) return;  // already armed correctly
    sim_.cancel(completion_event_);
    completion_event_ = EventId::invalid();
  }
  if (next == kTimeMax) return;  // everything stalled or idle
  scheduled_for_ = next;
  completion_event_ = sim_.schedule_at(next, [this] {
    // Executing the simulation with a CapacityBatch open would defer this
    // completion past its true timestamp — batches group same-instant
    // churn only.
    assert(batch_depth_ == 0);
    completion_event_ = EventId::invalid();
    settle();
  });
}

// ---- rate allocators -------------------------------------------------------

void FlowNetwork::recompute_dense_maxmin() {
  // Progressive filling (max-min fairness) over the whole network.
  for (Resource& res : resources_) {
    res.residual = res.cap;
    res.load = 0;
  }
  dense_unfrozen_.clear();
  for (std::uint32_t s = live_head_; s != kNoSlot; s = slots_[s].live_next) {
    Flow& f = slots_[s];
    if (f.resources.empty()) {
      // Resource-less flow: completes at infinite rate.
      assign_rate(s, kInfinity);
      continue;
    }
    dense_unfrozen_.push_back(s);
    for (ResourceId r : f.resources) ++resources_[r].load;
  }

  while (!dense_unfrozen_.empty()) {
    // Find the bottleneck: the resource with the smallest fair share.
    double best_share = kInfinity;
    std::size_t best_r = resources_.size();
    for (std::size_t r = 0; r < resources_.size(); ++r) {
      if (resources_[r].load == 0) continue;
      const double share =
          resources_[r].residual / static_cast<double>(resources_[r].load);
      if (share < best_share) {
        best_share = share;
        best_r = r;
      }
    }
    if (best_r == resources_.size()) break;  // no loaded resources remain

    // Freeze every unfrozen flow crossing the bottleneck at that share.
    const double rate = std::max(0.0, best_share);
    for (auto it = dense_unfrozen_.begin(); it != dense_unfrozen_.end();) {
      Flow& f = slots_[*it];
      const bool crosses = std::find(f.resources.begin(), f.resources.end(),
                                     best_r) != f.resources.end();
      if (!crosses) {
        ++it;
        continue;
      }
      for (ResourceId r : f.resources) {
        resources_[r].residual = std::max(0.0, resources_[r].residual - rate);
        --resources_[r].load;
      }
      assign_rate(*it, rate);
      it = dense_unfrozen_.erase(it);
    }
  }
}

void FlowNetwork::recompute_dense_bottleneck_share() {
  // Fast approximation: each flow receives the worst per-resource fair share
  // along its path. Shares never sum above capacity on any resource.
  //
  // Stalled flows (any zero-capacity resource on the path, i.e. an endpoint
  // node is down) are excluded from the load counts first: exact max-min
  // redistributes their share automatically, and without this exclusion a
  // volatile cluster collapses — half the flows are stalled at any moment
  // and would pin down capacity they cannot use.
  for (Resource& res : resources_) res.load = 0;
  for (std::uint32_t s = live_head_; s != kNoSlot; s = slots_[s].live_next) {
    Flow& f = slots_[s];
    bool stalled = false;
    for (ResourceId r : f.resources) {
      if (resources_[r].cap <= 0.0) {
        stalled = true;
        break;
      }
    }
    f.fill_mark = stalled;
    if (!stalled) {
      for (ResourceId r : f.resources) ++resources_[r].load;
    }
  }
  for (std::uint32_t s = live_head_; s != kNoSlot; s = slots_[s].live_next) {
    Flow& f = slots_[s];
    if (f.fill_mark) {
      assign_rate(s, 0.0);
      continue;
    }
    if (f.resources.empty()) {
      assign_rate(s, kInfinity);
      continue;
    }
    double rate = kInfinity;
    for (ResourceId r : f.resources) {
      rate = std::min(rate, resources_[r].cap /
                                static_cast<double>(resources_[r].load));
    }
    assign_rate(s, std::max(0.0, rate));
  }
}

void FlowNetwork::recompute_region_maxmin() {
  // Allocations in disjoint components of the flow graph are independent, so
  // progressive filling over the union of the dirty flows'/resources' whole
  // components reproduces the global solve bit-for-bit on that region while
  // leaving every other component's rates untouched.
  ++stamp_;
  region_flows_.clear();
  region_resources_.clear();
  auto visit_flow = [this](std::uint32_t s) {
    Flow& f = slots_[s];
    if (!f.id.valid() || f.visit_stamp == stamp_) return;
    f.visit_stamp = stamp_;
    region_flows_.push_back(s);
  };
  auto visit_resource = [this](ResourceId r) {
    Resource& res = resources_[r];
    if (res.visit_stamp == stamp_) return;
    res.visit_stamp = stamp_;
    region_resources_.push_back(r);
  };
  for (std::uint32_t s : dirty_flows_) {
    if (s < slots_.size()) visit_flow(s);
  }
  for (ResourceId r : dirty_resources_) visit_resource(r);
  for (std::size_t fi = 0, ri = 0;
       fi < region_flows_.size() || ri < region_resources_.size();) {
    if (fi < region_flows_.size()) {
      for (ResourceId r : slots_[region_flows_[fi]].resources) visit_resource(r);
      ++fi;
    } else {
      for (const Link& l : resources_[region_resources_[ri]].flows) {
        visit_flow(l.slot);
      }
      ++ri;
    }
  }

  // Progressive filling restricted to the region. Bottleneck selection uses
  // a lazily-invalidated min-heap of (share, resource) instead of a scan of
  // every resource per round; the (share, index) order reproduces the dense
  // solver's lowest-index tie-break.
  std::size_t unfrozen = 0;
  for (ResourceId r : region_resources_) {
    Resource& res = resources_[r];
    res.residual = res.cap;
    res.load = 0;
  }
  for (std::uint32_t s : region_flows_) {
    Flow& f = slots_[s];
    if (f.resources.empty()) {
      f.fill_mark = true;
      assign_rate(s, kInfinity);
      continue;
    }
    f.fill_mark = false;
    ++unfrozen;
    for (ResourceId r : f.resources) ++resources_[r].load;
  }
  const auto share_later = [](const ShareEntry& a, const ShareEntry& b) {
    if (a.share != b.share) return a.share > b.share;
    return a.resource > b.resource;
  };
  share_heap_.clear();
  auto push_share = [&](ResourceId r) {
    const Resource& res = resources_[r];
    share_heap_.push_back(
        ShareEntry{res.residual / static_cast<double>(res.load), r});
    std::push_heap(share_heap_.begin(), share_heap_.end(), share_later);
  };
  for (ResourceId r : region_resources_) {
    if (resources_[r].load > 0) push_share(r);
  }
  while (unfrozen > 0 && !share_heap_.empty()) {
    const ShareEntry top = share_heap_.front();
    std::pop_heap(share_heap_.begin(), share_heap_.end(), share_later);
    share_heap_.pop_back();
    Resource& res = resources_[top.resource];
    // Stale unless the current residual/load still reproduce the share.
    if (res.load == 0 ||
        res.residual / static_cast<double>(res.load) != top.share) {
      continue;
    }
    // top.resource is the bottleneck; freeze its unfrozen flows at the share.
    // Re-push each side resource once per round (after all of the round's
    // freezes have updated it), not once per freeze. Rounds dedupe with a
    // fresh stamp; the BFS above is done with the old one.
    const double rate = std::max(0.0, top.share);
    ++stamp_;
    round_touched_.clear();
    for (const Link& l : res.flows) {
      Flow& f = slots_[l.slot];
      if (f.fill_mark) continue;
      f.fill_mark = true;
      --unfrozen;
      for (ResourceId r2 : f.resources) {
        Resource& res2 = resources_[r2];
        res2.residual = std::max(0.0, res2.residual - rate);
        --res2.load;
        if (r2 != top.resource && res2.visit_stamp != stamp_) {
          res2.visit_stamp = stamp_;
          round_touched_.push_back(r2);
        }
      }
      assign_rate(l.slot, rate);
    }
    for (ResourceId r2 : round_touched_) {
      if (resources_[r2].load > 0) push_share(r2);
    }
  }
}

void FlowNetwork::update_share_status(std::uint32_t slot) {
  Flow& f = slots_[slot];
  bool stalled = false;
  for (ResourceId r : f.resources) {
    if (resources_[r].cap <= 0.0) {
      stalled = true;
      break;
    }
  }
  const bool counted = !stalled;
  if (counted == f.share_counted) return;
  f.share_counted = counted;
  for (ResourceId r : f.resources) {
    Resource& res = resources_[r];
    if (counted) {
      ++res.share_load;
    } else {
      --res.share_load;
    }
    // Load moved: every flow sharing r needs a new rate.
    mark_resource_dirty(r, /*cap_changed=*/false);
  }
}

void FlowNetwork::recompute_incremental_bottleneck_share() {
  // Bottleneck-share rates depend only on a flow's own stall status and the
  // live-flow counts of its resources, so the affected set is the distance-2
  // neighbourhood of the churn, not a whole component. `share_load` is
  // maintained persistently; pass 1 replays stall transitions (which can
  // grow dirty_resources_ — index loop), pass 2 re-rates adjacent flows.
  for (std::size_t i = 0; i < dirty_resources_.size(); ++i) {
    const ResourceId r = dirty_resources_[i];
    if (!resources_[r].cap_dirty) continue;
    for (const Link& l : resources_[r].flows) update_share_status(l.slot);
  }
  for (std::uint32_t s : dirty_flows_) {
    if (s < slots_.size() && slots_[s].id.valid()) update_share_status(s);
  }

  ++stamp_;
  rate_set_.clear();
  auto mark_rate = [this](std::uint32_t s) {
    Flow& f = slots_[s];
    if (!f.id.valid() || f.visit_stamp == stamp_) return;
    f.visit_stamp = stamp_;
    rate_set_.push_back(s);
  };
  for (std::size_t i = 0; i < dirty_resources_.size(); ++i) {
    for (const Link& l : resources_[dirty_resources_[i]].flows) {
      mark_rate(l.slot);
    }
  }
  for (std::uint32_t s : dirty_flows_) {
    if (s < slots_.size()) mark_rate(s);
  }
  for (std::uint32_t s : rate_set_) {
    Flow& f = slots_[s];
    if (!f.share_counted) {
      assign_rate(s, 0.0);  // stalled
      continue;
    }
    if (f.resources.empty()) {
      assign_rate(s, kInfinity);
      continue;
    }
    double rate = kInfinity;
    for (ResourceId r : f.resources) {
      rate = std::min(rate, resources_[r].cap /
                                static_cast<double>(resources_[r].share_load));
    }
    assign_rate(s, std::max(0.0, rate));
  }
}

}  // namespace moon::sim
