#include "simkit/work_unit.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace moon::sim {

WorkUnit::WorkUnit(Simulation& sim, Duration total_work, Callback on_complete)
    : sim_(sim), total_work_(std::max<Duration>(total_work, 0)),
      on_complete_(std::move(on_complete)) {}

WorkUnit::~WorkUnit() {
  if (completion_event_.valid()) sim_.cancel(completion_event_);
}

void WorkUnit::start() {
  if (finished_ || running_) return;
  running_ = true;
  started_at_ = sim_.now();
  const Duration remaining = total_work_ - done_;
  if (remaining <= 0) {
    // Zero-length work completes via an event so callers never observe a
    // completion callback re-entering from inside start().
    completion_event_ = sim_.schedule_after(0, [this] { complete(); });
    return;
  }
  completion_event_ = sim_.schedule_after(remaining, [this] { complete(); });
}

void WorkUnit::pause() {
  if (!running_ || finished_) return;
  done_ += sim_.now() - started_at_;
  running_ = false;
  if (completion_event_.valid()) {
    sim_.cancel(completion_event_);
    completion_event_ = EventId::invalid();
  }
}

void WorkUnit::credit(Duration work) {
  if (finished_ || work <= 0) return;
  const bool was_running = running_;
  pause();
  done_ = std::min(done_ + work, total_work_);
  if (was_running) start();
}

void WorkUnit::cancel() {
  pause();
  finished_ = true;  // prevents restart; callback already dropped below
  on_complete_ = nullptr;
}

double WorkUnit::progress() const {
  if (total_work_ <= 0) return finished_ ? 1.0 : 0.0;
  const auto done = static_cast<double>(work_done());
  return std::min(1.0, done / static_cast<double>(total_work_));
}

Duration WorkUnit::work_done() const {
  if (finished_) return total_work_;
  Duration d = done_;
  if (running_) d += sim_.now() - started_at_;
  return std::min(d, total_work_);
}

void WorkUnit::complete() {
  completion_event_ = EventId::invalid();
  done_ = total_work_;
  running_ = false;
  finished_ = true;
  if (on_complete_) {
    // Move out first: the callback commonly destroys this WorkUnit.
    Callback cb = std::move(on_complete_);
    cb();
  }
}

}  // namespace moon::sim
