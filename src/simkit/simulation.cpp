#include "simkit/simulation.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace moon::sim {
namespace {
// Below this heap size tombstones are too cheap to be worth compacting.
constexpr std::size_t kCompactMin = 64;
}  // namespace

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

EventId Simulation::schedule_at(Time t, Callback cb) {
  if (t < now_) throw std::logic_error("Simulation: scheduling into the past");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    if (slots_.size() >= kSlotMask) {
      throw std::logic_error("Simulation: event slab exhausted");
    }
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.engaged = true;
  s.cb = std::move(cb);
  const EventId id = make_id(slot, s.gen);
  queue_.push_back(Entry{t, seq_++, id});
  std::push_heap(queue_.begin(), queue_.end(), std::greater<>{});
  ++live_events_;
  return id;
}

EventId Simulation::schedule_after(Duration delay, Callback cb) {
  if (delay < 0) throw std::logic_error("Simulation: negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

void Simulation::retire_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb.reset();
  s.engaged = false;
  ++s.gen;  // stale ids (tombstones, cancel-after-fire) can never match again
  free_slots_.push_back(slot);
  --live_events_;
}

void Simulation::cancel(EventId id) {
  if (!live(id)) return;
  retire_slot(slot_of(id));
  // The heap entry stays behind as a tombstone. When tombstones outnumber
  // live events, rebuild the heap from the live set so pop cost tracks what
  // is actually pending, not historical cancellation churn (heavy under the
  // flow network's cancel-and-rearm completion event).
  if (queue_.size() >= kCompactMin && queue_.size() > 2 * live_events_) {
    compact();
  }
}

void Simulation::compact() {
  std::erase_if(queue_, [this](const Entry& e) { return !live(e.id); });
  std::make_heap(queue_.begin(), queue_.end(), std::greater<>{});
}

void Simulation::pop_top() {
  std::pop_heap(queue_.begin(), queue_.end(), std::greater<>{});
  queue_.pop_back();
}

bool Simulation::is_pending(EventId id) const { return live(id); }

bool Simulation::step() {
  for (;;) {
    while (!queue_.empty() && !live(queue_.front().id)) {
      pop_top();  // tombstone from cancel()
    }
    if (queue_.empty()) {
      // Deferred end-of-timestamp work may produce further events at now().
      if (armed_hooks_ > 0) {
        run_flushes();
        continue;
      }
      return false;
    }
    const Entry top = queue_.front();
    if (top.time > now_ && armed_hooks_ > 0) {
      // The clock is about to advance: flush deferred work at the current
      // timestamp first (it may enqueue events at now(), handled next loop).
      run_flushes();
      continue;
    }
    pop_top();
    assert(top.time >= now_);
    now_ = top.time;
    // Move the callback out before invoking: it may schedule/cancel events
    // (including reusing this very slot), and must not observe itself as
    // still pending. The moved-out closure dies before step() returns, so
    // captures are destroyed before the next event runs.
    Callback cb = std::move(slots_[slot_of(top.id)].cb);
    retire_slot(slot_of(top.id));
    ++executed_;
    {
      Profiler::Scope profile(profiler_, Profiler::Key::kEventDispatch);
      cb();
    }
    return true;
  }
}

void Simulation::run_until(Time t) {
  for (;;) {
    while (!queue_.empty() && !live(queue_.front().id)) {
      pop_top();
    }
    if (queue_.empty() || queue_.front().time > t) {
      // Flush at the current timestamp before stopping; hooks may enqueue
      // events at <= t (e.g. a due flow completion), handled next loop.
      if (armed_hooks_ > 0) {
        run_flushes();
        continue;
      }
      break;
    }
    step();
  }
  if (now_ < t) now_ = t;
}

void Simulation::run() {
  while (step()) {
  }
}

// ---- flush hooks -----------------------------------------------------------

Simulation::FlushHookId Simulation::add_flush_hook(FlushHook hook) {
  // Reuse a dead entry if any (components come and go in tests); otherwise
  // append. Hook order == registration order, which is deterministic.
  for (std::size_t i = 0; i < hooks_.size(); ++i) {
    if (!hooks_[i].alive) {
      hooks_[i] = Hook{std::move(hook), false, true};
      return i;
    }
  }
  hooks_.push_back(Hook{std::move(hook), false, true});
  return hooks_.size() - 1;
}

void Simulation::remove_flush_hook(FlushHookId id) {
  if (id >= hooks_.size() || !hooks_[id].alive) return;
  if (hooks_[id].armed) --armed_hooks_;
  hooks_[id] = Hook{};
}

void Simulation::arm_flush(FlushHookId id) {
  if (id >= hooks_.size() || !hooks_[id].alive) {
    throw std::logic_error("Simulation: arming unknown flush hook");
  }
  if (hooks_[id].armed) return;
  hooks_[id].armed = true;
  ++armed_hooks_;
}

void Simulation::run_flushes() {
  // One pass in registration order. A hook arming an earlier hook (or
  // itself) is caught by the callers' re-check loops, not by restarting the
  // pass — bounded work per call.
  for (std::size_t i = 0; i < hooks_.size() && armed_hooks_ > 0; ++i) {
    if (!hooks_[i].armed) continue;
    hooks_[i].armed = false;
    --armed_hooks_;
    // Run from a moved-out copy: the hook body may register or remove hooks
    // (vector reallocation / slot reuse), which must not relocate or
    // overwrite the closure mid-call.
    FlushHook fn = std::move(hooks_[i].fn);
    fn();
    if (i < hooks_.size() && hooks_[i].alive && !hooks_[i].fn) {
      // Still registered and the slot was not reused: restore the closure.
      hooks_[i].fn = std::move(fn);
    }
  }
}

}  // namespace moon::sim
