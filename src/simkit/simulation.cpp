#include "simkit/simulation.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace moon::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

EventId Simulation::schedule_at(Time t, Callback cb) {
  if (t < now_) throw std::logic_error("Simulation: scheduling into the past");
  const EventId id = ids_.next();
  queue_.push(Entry{t, seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

EventId Simulation::schedule_after(Duration delay, Callback cb) {
  if (delay < 0) throw std::logic_error("Simulation: negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

void Simulation::cancel(EventId id) { callbacks_.erase(id); }

bool Simulation::is_pending(EventId id) const { return callbacks_.contains(id); }

bool Simulation::step() {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) {
      queue_.pop();  // tombstone from cancel()
      continue;
    }
    queue_.pop();
    assert(top.time >= now_);
    now_ = top.time;
    // Move the callback out before invoking: it may schedule/cancel events,
    // and must not observe itself as still pending.
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void Simulation::run_until(Time t) {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    if (!callbacks_.contains(top.id)) {
      queue_.pop();
      continue;
    }
    if (top.time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

void Simulation::run() {
  while (step()) {
  }
}

}  // namespace moon::sim
