#include "simkit/simulation.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace moon::sim {
namespace {
// Below this heap size tombstones are too cheap to be worth compacting.
constexpr std::size_t kCompactMin = 64;
}  // namespace

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

EventId Simulation::schedule_at(Time t, Callback cb) {
  if (t < now_) throw std::logic_error("Simulation: scheduling into the past");
  const EventId id = ids_.next();
  queue_.push_back(Entry{t, seq_++, id});
  std::push_heap(queue_.begin(), queue_.end(), std::greater<>{});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

EventId Simulation::schedule_after(Duration delay, Callback cb) {
  if (delay < 0) throw std::logic_error("Simulation: negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

void Simulation::cancel(EventId id) {
  if (callbacks_.erase(id) == 0) return;
  // The heap entry stays behind as a tombstone. When tombstones outnumber
  // live events, rebuild the heap from the live set so pop cost tracks what
  // is actually pending, not historical cancellation churn (heavy under the
  // flow network's cancel-and-rearm completion event).
  if (queue_.size() >= kCompactMin && queue_.size() > 2 * callbacks_.size()) {
    compact();
  }
}

void Simulation::compact() {
  std::erase_if(queue_,
                [this](const Entry& e) { return !callbacks_.contains(e.id); });
  std::make_heap(queue_.begin(), queue_.end(), std::greater<>{});
}

void Simulation::pop_top() {
  std::pop_heap(queue_.begin(), queue_.end(), std::greater<>{});
  queue_.pop_back();
}

bool Simulation::is_pending(EventId id) const { return callbacks_.contains(id); }

bool Simulation::step() {
  while (!queue_.empty()) {
    const Entry top = queue_.front();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) {
      pop_top();  // tombstone from cancel()
      continue;
    }
    pop_top();
    assert(top.time >= now_);
    now_ = top.time;
    // Move the callback out before invoking: it may schedule/cancel events,
    // and must not observe itself as still pending.
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void Simulation::run_until(Time t) {
  while (!queue_.empty()) {
    const Entry top = queue_.front();
    if (!callbacks_.contains(top.id)) {
      pop_top();
      continue;
    }
    if (top.time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

void Simulation::run() {
  while (step()) {
  }
}

}  // namespace moon::sim
