// Pausable compute work.
//
// A WorkUnit models a CPU-bound activity (a map or reduce computation) that
// accrues progress only while running. Pausing freezes the remaining work —
// exactly the semantics of the paper's emulation, where all MapReduce
// processes on a node are suspended while the "owner" uses the machine.
#pragma once

#include <functional>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "simkit/simulation.hpp"

namespace moon::sim {

class WorkUnit {
 public:
  using Callback = std::function<void()>;

  /// `total_work` is the busy time required to finish (µs of CPU).
  WorkUnit(Simulation& sim, Duration total_work, Callback on_complete);
  ~WorkUnit();

  WorkUnit(const WorkUnit&) = delete;
  WorkUnit& operator=(const WorkUnit&) = delete;

  /// Begins (or restarts after pause) accruing progress.
  void start();

  /// Stops accruing progress; completed work is retained.
  void pause();

  /// Abandons the work; the completion callback never fires.
  void cancel();

  /// Credits `work` as already done (e.g. progress restored from a
  /// checkpoint). Completion is rescheduled if currently running; crediting
  /// past `total_work` completes on the next tick.
  void credit(Duration work);

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] bool finished() const { return finished_; }

  /// Fraction of total work completed, in [0, 1].
  [[nodiscard]] double progress() const;

  /// Busy time accrued so far.
  [[nodiscard]] Duration work_done() const;

  [[nodiscard]] Duration total_work() const { return total_work_; }

 private:
  void complete();

  Simulation& sim_;
  Duration total_work_;
  Callback on_complete_;
  Duration done_ = 0;        // accrued while paused or finished
  Time started_at_ = 0;      // valid while running_
  bool running_ = false;
  bool finished_ = false;
  EventId completion_event_ = EventId::invalid();
};

}  // namespace moon::sim
