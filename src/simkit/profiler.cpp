#include "simkit/profiler.hpp"

namespace moon::sim {

const char* Profiler::name(Key key) {
  switch (key) {
    case Key::kSettle: return "settle";
    case Key::kRecompute: return "recompute";
    case Key::kDfsProbe: return "dfs_probe";
    case Key::kReplicationScan: return "replication_scan";
    case Key::kHeartbeat: return "heartbeat";
    case Key::kSpeculation: return "speculation";
    case Key::kEventDispatch: return "event_dispatch";
    case Key::kCheckpoint: return "checkpoint";
    case Key::kCount: break;
  }
  return "?";
}

}  // namespace moon::sim
