#include "dfs/throttle.hpp"

#include <numeric>
#include <stdexcept>

namespace moon::dfs {

ThrottleState::ThrottleState(std::size_t window, double threshold)
    : window_(window), threshold_(threshold) {
  if (window == 0) throw std::logic_error("ThrottleState: zero window");
  if (threshold < 0.0) throw std::logic_error("ThrottleState: negative threshold");
}

double ThrottleState::window_average() const {
  if (samples_.empty()) return 0.0;
  const double sum = std::accumulate(samples_.begin(), samples_.end(), 0.0);
  return sum / static_cast<double>(samples_.size());
}

bool ThrottleState::update(double bandwidth) {
  ++seen_;
  // Algorithm 1: avg_bw is over the *previous* W samples, excluding bw_i.
  const double avg_bw = window_average();
  if (!samples_.empty()) {
    if (bandwidth > avg_bw) {
      // Increasing but only by a small margin -> the node has hit its
      // ceiling: consider it saturated.
      if (!throttled_ && bandwidth < avg_bw * (1.0 + threshold_)) {
        throttled_ = true;
      }
    } else if (bandwidth < avg_bw) {
      // Decreasing and clearly below the band -> demand fell off.
      if (throttled_ && bandwidth < avg_bw * (1.0 - threshold_)) {
        throttled_ = false;
      }
    }
  }
  samples_.push_back(bandwidth);
  while (samples_.size() > window_) samples_.pop_front();
  return throttled_;
}

}  // namespace moon::dfs
