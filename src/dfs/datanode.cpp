#include "dfs/datanode.hpp"

namespace moon::dfs {

DataNode::DataNode(sim::Simulation& sim, sim::FlowNetwork& net, cluster::Node& host,
                   NameNode& namenode)
    : sim_(sim),
      net_(net),
      host_(host),
      namenode_(namenode),
      heartbeat_(sim, namenode.config().heartbeat_interval, [this] { beat(); }) {
  namenode_.register_datanode(host_.id());
}

void DataNode::start() {
  heartbeat_.start();
  last_beat_at_ = sim_.now();
}

void DataNode::store_block(BlockId block, Bytes size) {
  if (blocks_.insert(block).second) stored_bytes_ += size;
  corrupted_.erase(block);  // fresh bytes replace any corrupted replica
  namenode_.commit_replica(block, host_.id());
}

void DataNode::drop_block(BlockId block, Bytes size) {
  if (blocks_.erase(block) > 0) stored_bytes_ -= size;
  corrupted_.erase(block);
  namenode_.drop_replica(block, host_.id());
}

void DataNode::mark_corrupted(BlockId block) {
  if (blocks_.contains(block)) corrupted_.insert(block);
}

void DataNode::beat() {
  // A suspended host makes no progress of any kind — including heartbeats.
  if (!host_.available()) return;
  // Report bandwidth consumed since the previous (delivered) heartbeat:
  // bytes through NIC-in + NIC-out + disk over the elapsed interval.
  const double transferred = net_.transferred_through(host_.nic_in()) +
                             net_.transferred_through(host_.nic_out()) +
                             net_.transferred_through(host_.disk());
  const double elapsed_s = sim::to_seconds(sim_.now() - last_beat_at_);
  double bandwidth = 0.0;
  if (elapsed_s > 0.0) {
    bandwidth = (transferred - last_reported_transferred_) / elapsed_s;
  }
  last_reported_transferred_ = transferred;
  last_beat_at_ = sim_.now();
  namenode_.heartbeat(host_.id(), bandwidth);
}

}  // namespace moon::dfs
