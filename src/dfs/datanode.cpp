#include "dfs/datanode.hpp"

#include <algorithm>
#include <vector>

namespace moon::dfs {

DataNode::DataNode(sim::Simulation& sim, sim::FlowNetwork& net, cluster::Node& host,
                   NameNode& namenode)
    : sim_(sim),
      net_(net),
      host_(host),
      namenode_(namenode),
      heartbeat_(sim, namenode.config().heartbeat_interval, [this] { beat(); }) {
  namenode_.register_datanode(host_.id());
}

void DataNode::start() {
  heartbeat_.start();
  last_beat_at_ = sim_.now();
}

void DataNode::store_block(BlockId block, Bytes size) {
  if (blocks_.insert(block).second) stored_bytes_ += size;
  corrupted_.erase(block);  // fresh bytes replace any corrupted replica
  // With the NameNode down, the bytes still land but the commit is lost
  // soft state — the post-recovery block report reconciles it.
  if (namenode_.available()) namenode_.commit_replica(block, host_.id());
}

void DataNode::drop_block(BlockId block, Bytes size) {
  if (blocks_.erase(block) > 0) stored_bytes_ -= size;
  corrupted_.erase(block);
  if (namenode_.available()) namenode_.drop_replica(block, host_.id());
}

void DataNode::mark_corrupted(BlockId block) {
  if (blocks_.contains(block)) corrupted_.insert(block);
}

void DataNode::beat() {
  // A suspended host makes no progress of any kind — including heartbeats.
  if (!host_.available()) return;
  // A crashed NameNode drops the beat on the floor, deterministically; the
  // liveness picture is rebuilt by block reports at recovery.
  if (!namenode_.available()) {
    ++namenode_.stats_mutable().heartbeats_skipped;
    return;
  }
  if (registered_epoch_ != namenode_.epoch()) {
    // The master restarted since we last registered: this beat is promoted
    // to a full re-registration (nodes that missed the recovery storm —
    // they were unavailable — catch up here).
    send_block_report();
    return;
  }
  namenode_.heartbeat(host_.id(), current_bandwidth());
}

double DataNode::current_bandwidth() {
  // Bandwidth consumed since the previous (delivered) heartbeat:
  // bytes through NIC-in + NIC-out + disk over the elapsed interval.
  const double transferred = net_.transferred_through(host_.nic_in()) +
                             net_.transferred_through(host_.nic_out()) +
                             net_.transferred_through(host_.disk());
  const double elapsed_s = sim::to_seconds(sim_.now() - last_beat_at_);
  double bandwidth = 0.0;
  if (elapsed_s > 0.0) {
    bandwidth = (transferred - last_reported_transferred_) / elapsed_s;
  }
  last_reported_transferred_ = transferred;
  last_beat_at_ = sim_.now();
  return bandwidth;
}

void DataNode::send_block_report() {
  if (!namenode_.available()) return;
  std::vector<BlockId> report(blocks_.begin(), blocks_.end());
  std::sort(report.begin(), report.end());
  namenode_.handle_block_report(host_.id(), report, current_bandwidth());
  registered_epoch_ = namenode_.epoch();
}

}  // namespace moon::dfs
