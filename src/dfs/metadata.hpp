// File and block metadata held by the NameNode.
#pragma once

#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "dfs/types.hpp"

namespace moon::dfs {

struct BlockMeta {
  BlockId id;
  FileId file;
  Bytes size = 0;
  /// Nodes that hold a replica (regardless of their current liveness; the
  /// NameNode filters by DataNode state when serving reads or counting
  /// effective replication).
  std::vector<NodeId> replicas;

  [[nodiscard]] bool has_replica_on(NodeId node) const;
};

struct FileMeta {
  FileId id;
  std::string name;
  FileKind kind = FileKind::kOpportunistic;
  ReplicationFactor factor;
  std::vector<BlockId> blocks;
  Bytes size = 0;

  /// For opportunistic files whose dedicated replica was declined: the
  /// adaptively raised volatile requirement v' (>= factor.volatile_count).
  /// 0 means "not raised".
  int adaptive_volatile = 0;

  /// Set once every block has reached its replication factor and the file
  /// has been closed (output files flip to reliable at this point).
  bool complete = false;

  [[nodiscard]] int required_volatile() const {
    return adaptive_volatile > factor.volatile_count ? adaptive_volatile
                                                     : factor.volatile_count;
  }
};

}  // namespace moon::dfs
