#include "dfs/dfs.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <ostream>

#include "common/log.hpp"
#include "simkit/fault_hooks.hpp"
#include "obs/trace.hpp"

namespace moon::dfs {

// ---- operation types -----------------------------------------------------

struct Dfs::Op {
  explicit Op(Done done) : done_(std::move(done)) {}
  virtual ~Op() = default;
  /// Kicks the operation off. Always invoked from a 0-delay event so that an
  /// operation can never complete (and run its callback) before the OpId has
  /// been returned to the caller — synchronous completion is a re-entrancy
  /// trap for callers tracking ops by id.
  virtual void begin() = 0;
  /// Called periodically; abandon stalled transfers and retry.
  virtual void probe() = 0;
  /// Abort all in-flight flows (operation is being cancelled).
  virtual void abort() = 0;

  Done done_;
  obs::Tracer::SpanId span_;  ///< open trace span (invalid when tracing off)
  Bytes charge_ = 0;          ///< partial-read bytes counted in-flight
};

struct Dfs::WriteOp final : Dfs::Op {
  WriteOp(Dfs& dfs, OpId id, FileId file, NodeId writer, Done done)
      : Op(std::move(done)), dfs_(dfs), id_(id), file_(file), writer_(writer) {}

  Dfs& dfs_;
  OpId id_;
  FileId file_;
  NodeId writer_;
  std::vector<BlockId> blocks_;  // pre-allocated; written sequentially
  std::size_t current_ = 0;
  Bytes pending_alloc_ = 0;  ///< bytes awaiting block allocation (NN was down)
  bool parked_ = false;      ///< waiting out a NameNode outage
  /// In-flight replica transfers for the current block, keyed by FlowId so
  /// completion removal is O(log n) instead of an O(n) erase sweep. FlowIds
  /// are issued in start order, so iteration reproduces the launch order the
  /// old vector gave (§2 determinism contract: the probe's abort sweep draws
  /// the re-pick RNG in iteration order).
  std::map<FlowId, NodeId> inflight_;
  int committed_ = 0;  // replicas landed for the current block
  int retries_ = 0;

  void begin() override {
    if (!ensure_blocks()) return;
    start_block();
  }

  /// Allocates the file's blocks if write_file deferred it (NameNode down at
  /// issue time). Returns whether blocks exist and the write may proceed.
  bool ensure_blocks() {
    if (pending_alloc_ == 0) return true;
    if (!dfs_.namenode_.available()) {
      park();
      return false;
    }
    if (!dfs_.namenode_.file_exists(file_)) {
      // Deleted while parked (the owning attempt was killed); nothing to do.
      finish(false);
      return false;
    }
    Bytes remaining = pending_alloc_;
    pending_alloc_ = 0;
    const Bytes block_size = dfs_.config().block_size;
    while (remaining > 0) {
      const Bytes this_block = std::min(remaining, block_size);
      remaining -= this_block;
      blocks_.push_back(dfs_.namenode_.add_block(file_, this_block));
    }
    return true;
  }

  void park() {
    if (!parked_) {
      parked_ = true;
      ++dfs_.namenode_.stats_mutable().ops_parked;
    }
  }

  void start_block() {
    if (current_ >= blocks_.size()) {
      finish(true);
      return;
    }
    committed_ = 0;
    pick_and_launch();
  }

  void pick_and_launch() {
    if (!dfs_.namenode_.available()) {
      // Target selection needs the master; park until recovery re-kicks us.
      park();
      return;
    }
    parked_ = false;
    const BlockId block = blocks_[current_];
    auto targets = dfs_.namenode_.pick_write_targets(file_, writer_, dfs_.rng_);
    if (targets.nodes.empty()) {
      // Nothing live to write to; the stall probe retries us later.
      return;
    }
    const Bytes size = dfs_.namenode_.block(block).size;
    for (NodeId target : targets.nodes) {
      launch_replica(block, target, size);
    }
  }

  void launch_replica(BlockId block, NodeId target, Bytes size) {
    auto& net = dfs_.cluster_.network();
    const auto& writer_node = dfs_.cluster_.node(writer_);
    std::vector<sim::FlowNetwork::ResourceId> path;
    if (target == writer_) {
      path = {writer_node.disk()};
    } else {
      // Remote replicas stream from the writer's local spill: the writer's
      // disk is part of the path (this is what makes map time grow with the
      // volatile replication degree, cf. Table II).
      const auto& target_node = dfs_.cluster_.node(target);
      path = {writer_node.disk(), writer_node.nic_out(), target_node.nic_in(),
              target_node.disk()};
    }
    const FlowId flow = net.start_flow(path, size, [this, block, target](FlowId f) {
      on_replica_done(f, block, target);
    });
    inflight_.emplace(flow, target);
  }

  void on_replica_done(FlowId flow, BlockId block, NodeId target) {
    inflight_.erase(flow);
    if (dfs_.namenode_.block_exists(block)) {
      dfs_.land_replica(block, target, dfs_.namenode_.block(block).size);
      dfs_.namenode_.stats_mutable().bytes_written +=
          dfs_.namenode_.block(block).size;
    }
    ++committed_;
    if (inflight_.empty()) {
      // Block closed. Below-factor blocks go to the replication queue (the
      // HDFS "pipeline finished short" path). With the master down the
      // check is meaningless (its replica map was wiped); the post-recovery
      // under-factor sweep covers those blocks.
      if (dfs_.namenode_.available() && dfs_.namenode_.block_exists(block) &&
          !dfs_.namenode_.block_meets_factor(block)) {
        dfs_.namenode_.enqueue_replication(block);
      }
      ++current_;
      start_block();
    }
  }

  void probe() override {
    if (!dfs_.cluster_.node(writer_).available()) return;  // writer suspended
    if (!dfs_.namenode_.available()) {
      // Master down: let in-flight transfers stream (data plane), but do not
      // re-pick targets, burn retries or touch the replication queue.
      if (parked_ || inflight_.empty() || pending_alloc_ > 0) {
        ++dfs_.namenode_.stats_mutable().master_retries;
      }
      return;
    }
    if (parked_ || pending_alloc_ > 0) {
      // Parked during an outage; the recovery re-kick (or this probe) resumes.
      parked_ = false;
      if (!ensure_blocks()) return;
      if (inflight_.empty()) start_block();
      return;
    }
    if (current_ >= blocks_.size()) return;
    auto& net = dfs_.cluster_.network();
    // Drop transfers that are stalled on an unavailable target.
    std::vector<FlowId> stalled;
    for (const auto& [flow, target] : inflight_) {
      if (net.rate(flow) == 0.0 && !dfs_.cluster_.node(target).available()) {
        stalled.push_back(flow);
      }
    }
    {
      sim::FlowNetwork::CapacityBatch batch(net);
      for (FlowId flow : stalled) {
        net.abort_flow(flow);
        inflight_.erase(flow);
      }
    }
    if (!inflight_.empty()) return;  // others still moving
    if (committed_ > 0) {
      // At least one replica landed; close the block under-replicated.
      const BlockId block = blocks_[current_];
      if (!dfs_.namenode_.block_meets_factor(block)) {
        dfs_.namenode_.enqueue_replication(block);
      }
      ++current_;
      start_block();
      return;
    }
    // Nothing landed yet: re-pick targets entirely.
    if (++retries_ > dfs_.config().max_write_target_retries) {
      finish(false);
      return;
    }
    pick_and_launch();
  }

  void abort() override {
    auto& net = dfs_.cluster_.network();
    sim::FlowNetwork::CapacityBatch batch(net);
    for (const auto& [flow, target] : inflight_) net.abort_flow(flow);
    inflight_.clear();
  }

  void finish(bool ok) { dfs_.finish_op(id_, ok); }
};

struct Dfs::ReadOp final : Dfs::Op {
  ReadOp(Dfs& dfs, OpId id, BlockId block, NodeId reader, Bytes bytes, int rounds,
         Done done)
      : Op(std::move(done)),
        dfs_(dfs),
        id_(id),
        block_(block),
        reader_(reader),
        bytes_(bytes),
        rounds_left_(rounds) {}

  Dfs& dfs_;
  OpId id_;
  BlockId block_;
  NodeId reader_;
  Bytes bytes_;  ///< transfer size (<= block size for partition fetches)
  int rounds_left_;
  FlowId flow_ = FlowId::invalid();
  NodeId source_ = NodeId::invalid();
  std::vector<NodeId> tried_;
  EventId round_wait_ = EventId::invalid();
  bool parked_ = false;  ///< waiting out a NameNode outage

  void begin() override { attempt(); }

  void attempt() {
    if (!dfs_.namenode_.available()) {
      // Replica lookup needs the master. Park — the crash wiped the location
      // map, so a sweep now would just burn read rounds against an empty
      // replica set. Recovery (or the stall probe) re-attempts.
      if (!parked_) {
        parked_ = true;
        ++dfs_.namenode_.stats_mutable().ops_parked;
      }
      return;
    }
    parked_ = false;
    if (!dfs_.namenode_.block_exists(block_)) {
      // The file was deleted while we were reading (e.g. a map's output was
      // discarded because the map is being re-executed).
      ++dfs_.namenode_.stats_mutable().read_failures;
      dfs_.finish_op(id_, false);
      return;
    }
    const auto order = dfs_.namenode_.read_order(block_, reader_);
    source_ = NodeId::invalid();
    for (NodeId n : order) {
      if (std::find(tried_.begin(), tried_.end(), n) == tried_.end()) {
        source_ = n;
        break;
      }
    }
    if (!source_.valid()) {
      // No untried live replica. HDFS-style block reads sweep the replica
      // set again after a pause (replicas reappear as nodes return); once
      // the rounds are spent, the read fails (callers decide whether that is
      // a fetch failure, a task failure, or a retry-later).
      if (--rounds_left_ > 0) {
        tried_.clear();
        round_wait_ = dfs_.sim_.schedule_after(
            dfs_.config().read_round_wait, [this] {
              round_wait_ = EventId::invalid();
              attempt();
            });
        return;
      }
      ++dfs_.namenode_.stats_mutable().read_failures;
      dfs_.finish_op(id_, false);
      return;
    }
    auto& net = dfs_.cluster_.network();
    const auto& reader_node = dfs_.cluster_.node(reader_);
    std::vector<sim::FlowNetwork::ResourceId> path;
    if (source_ == reader_) {
      path = {reader_node.disk()};
    } else {
      const auto& src_node = dfs_.cluster_.node(source_);
      path = {src_node.disk(), src_node.nic_out(), reader_node.nic_in()};
    }
    flow_ = net.start_flow(path, bytes_, [this](FlowId) {
      dfs_.namenode_.stats_mutable().bytes_read += bytes_;
      flow_ = FlowId::invalid();
      if (auto* faults = dfs_.sim_.faults();
          faults && dfs_.namenode_.block_exists(block_) &&
          dfs_.datanode(source_).corrupted(block_)) {
        // Checksum-on-read caught a corrupted replica: evict it, queue the
        // block for re-replication, and retry from another source. The
        // transfer's bytes stay counted — the wasted IO is the point.
        faults->note_corruption_detected(block_, source_);
        ++dfs_.namenode_.stats_mutable().corruptions_detected;
        dfs_.datanode(source_).drop_block(block_,
                                          dfs_.namenode_.block(block_).size);
        if (dfs_.namenode_.available() &&
            !dfs_.namenode_.block_meets_factor(block_)) {
          dfs_.namenode_.enqueue_replication(block_);
        }
        tried_.push_back(source_);
        attempt();
        return;
      }
      dfs_.finish_op(id_, true);
    });
  }

  void probe() override {
    if (parked_) {
      // Parked during a master outage; re-attempt once it is back.
      if (!dfs_.namenode_.available()) {
        ++dfs_.namenode_.stats_mutable().master_retries;
        return;
      }
      attempt();
      return;
    }
    if (!flow_.valid()) return;
    if (!dfs_.cluster_.node(reader_).available()) return;  // reader suspended
    auto& net = dfs_.cluster_.network();
    if (net.rate(flow_) > 0.0) return;
    if (!dfs_.namenode_.available()) {
      // Stalled while the master is down: keep waiting. Re-picking a source
      // needs the (wiped) replica map; recovery restores it first.
      ++dfs_.namenode_.stats_mutable().master_retries;
      return;
    }
    // Stalled: abandon this replica and try the next one.
    net.abort_flow(flow_);
    flow_ = FlowId::invalid();
    tried_.push_back(source_);
    attempt();
  }

  void abort() override {
    if (flow_.valid()) {
      dfs_.cluster_.network().abort_flow(flow_);
      flow_ = FlowId::invalid();
    }
    if (round_wait_.valid()) {
      dfs_.sim_.cancel(round_wait_);
      round_wait_ = EventId::invalid();
    }
  }
};

/// Background re-replication stream.
struct Dfs::Repair {
  BlockId block;
  NodeId source;
  NodeId target;
  Bytes size;
  obs::Tracer::SpanId span;  ///< open trace span (invalid when tracing off)
};

// ---- Dfs ------------------------------------------------------------------

Dfs::Dfs(sim::Simulation& sim, cluster::Cluster& cluster, DfsConfig config,
         std::uint64_t seed)
    : sim_(sim),
      cluster_(cluster),
      rng_(Rng{seed}.fork("dfs")),
      namenode_(sim, cluster, config),
      probe_task_(sim, config.client_probe_interval, [this] { probe_ops(); }),
      replication_task_(sim, config.replication_scan_interval,
                        [this] { replication_scan(); }) {
  for (NodeId id : cluster_.all_nodes()) {
    datanodes_.push_back(
        std::make_unique<DataNode>(sim, cluster_.network(), cluster_.node(id),
                                   namenode_));
  }
}

Dfs::~Dfs() {
  // detlint: allow(unordered-iter) -- destructor teardown after the run has ended; abort order cannot reach any simulated outcome
  for (auto& [id, op] : ops_) op->abort();
}

void Dfs::start() {
  if (started_) return;
  started_ = true;
  namenode_.start();
  for (auto& dn : datanodes_) dn->start();
  probe_task_.start();
  replication_task_.start();
}

void Dfs::crash_namenode() { namenode_.crash(); }

void Dfs::recover_namenode() {
  if (namenode_.available()) return;
  namenode_.begin_recovery();
  // Re-registration storm: every available DataNode reports its physically
  // stored blocks, in NodeId order (datanodes_ is indexed by node id).
  for (auto& dn : datanodes_) {
    if (dn->host().available()) dn->send_block_report();
  }
  // Drain deferred deletes and sweep every block for missing replicas.
  namenode_.finish_recovery();
  // Re-kick parked client ops in issue order; probe() doubles as the resume
  // hook (parked writes allocate + re-pick, parked reads re-attempt).
  std::vector<OpId> ids;
  ids.reserve(ops_.size());
  for (const auto& [id, op] : ops_) ids.push_back(id);  // detlint: allow(unordered-iter) -- key snapshot, sorted on the next line before any op is probed
  std::sort(ids.begin(), ids.end());
  for (OpId id : ids) {
    auto it = ops_.find(id);
    if (it != ops_.end()) it->second->probe();
  }
  // Refill the repair pipeline from the post-recovery sweep's queue.
  start_repair_streams();
}

DataNode& Dfs::datanode(NodeId node) {
  if (!node.valid() || node.value() >= datanodes_.size()) {
    throw std::out_of_range("Dfs: unknown datanode");
  }
  return *datanodes_[node.value()];
}

bool Dfs::land_replica(BlockId block, NodeId target, Bytes size) {
  if (auto* faults = sim_.faults()) {
    if (faults->reject_write(block, target)) {
      ++namenode_.stats_mutable().writes_rejected;
      return false;
    }
    datanode(target).store_block(block, size);
    if (faults->corrupt_replica(block, target)) {
      datanode(target).mark_corrupted(block);
    }
    return true;
  }
  datanode(target).store_block(block, size);
  return true;
}

FileId Dfs::stage_file(const std::string& name, FileKind kind,
                       ReplicationFactor factor, Bytes size) {
  const Bytes block_size = config().block_size;
  const int full = static_cast<int>(size / block_size);
  const Bytes tail = size % block_size;
  const FileId file = stage_blocks(name, kind, factor, full, block_size);
  if (tail > 0) {
    // Append the partial trailing block with the same placement rules.
    const BlockId block = namenode_.add_block(file, tail);
    const auto dedicated = cluster_.dedicated_nodes();
    const auto volatiles = cluster_.volatile_nodes();
    const auto& meta = namenode_.file(file);
    const int want_d =
        std::min<int>(meta.factor.dedicated, static_cast<int>(dedicated.size()));
    for (int i = 0; i < want_d; ++i) {
      datanode(dedicated[static_cast<std::size_t>(i)]).store_block(block, tail);
    }
    const int want_v = std::min<int>(meta.factor.volatile_count,
                                     static_cast<int>(volatiles.size()));
    if (want_v > 0) {
      auto picks = rng_.sample_without_replacement(volatiles.size(),
                                                   static_cast<std::size_t>(want_v));
      for (std::size_t idx : picks) {
        datanode(volatiles[idx]).store_block(block, tail);
      }
    }
    namenode_.try_complete_file(file);
  }
  return file;
}

FileId Dfs::stage_blocks(const std::string& name, FileKind kind,
                         ReplicationFactor factor, int count, Bytes block_bytes) {
  const FileId file = namenode_.create_file(name, kind, factor);
  const auto dedicated = cluster_.dedicated_nodes();
  const auto volatiles = cluster_.volatile_nodes();

  std::size_t dedicated_rr = 0;
  for (int b = 0; b < count; ++b) {
    const BlockId block = namenode_.add_block(file, block_bytes);
    const int want_d = std::min<int>(namenode_.file(file).factor.dedicated,
                                     static_cast<int>(dedicated.size()));
    for (int i = 0; i < want_d; ++i) {
      const NodeId target = dedicated[dedicated_rr++ % dedicated.size()];
      datanode(target).store_block(block, block_bytes);
    }
    const int want_v = std::min<int>(namenode_.file(file).factor.volatile_count,
                                     static_cast<int>(volatiles.size()));
    if (want_v > 0) {
      auto picks = rng_.sample_without_replacement(volatiles.size(),
                                                   static_cast<std::size_t>(want_v));
      for (std::size_t idx : picks) {
        datanode(volatiles[idx]).store_block(block, block_bytes);
      }
    }
  }
  namenode_.try_complete_file(file);
  return file;
}

OpId Dfs::write_file(FileId file, NodeId writer, Bytes size, Done done) {
  const OpId id = next_op_++;
  auto op = std::make_unique<WriteOp>(*this, id, file, writer, std::move(done));
  // Allocate all blocks up-front so metadata (sizes) exists even while data
  // is in flight. With the NameNode down the allocation (a metadata op) is
  // deferred: the op parks holding the byte count and allocates on recovery.
  if (namenode_.available()) {
    Bytes remaining = std::max<Bytes>(size, 1);
    const Bytes block_size = config().block_size;
    while (remaining > 0) {
      const Bytes this_block = std::min(remaining, block_size);
      remaining -= this_block;
      op->blocks_.push_back(namenode_.add_block(file, this_block));
    }
  } else {
    op->pending_alloc_ = std::max<Bytes>(size, 1);
  }
  if (auto* tracer = sim_.tracer()) {
    op->span_ = tracer->begin(obs::kDfsPid, obs::node_track(writer),
                              obs::Cat::kIo, "write", sim_.now(),
                              {{"file", std::to_string(file.value())},
                               {"bytes", std::to_string(size)}});
  }
  ops_.emplace(id, std::move(op));
  begin_op(id);
  return id;
}

OpId Dfs::read_block(BlockId block, NodeId reader, Done done) {
  const OpId id = next_op_++;
  auto op = std::make_unique<ReadOp>(*this, id, block, reader,
                                     namenode_.block(block).size,
                                     config().max_read_rounds, std::move(done));
  if (auto* tracer = sim_.tracer()) {
    op->span_ = tracer->begin(
        obs::kDfsPid, obs::node_track(reader), obs::Cat::kIo, "read",
        sim_.now(),
        {{"block", std::to_string(block.value())},
         {"bytes", std::to_string(namenode_.block(block).size)}});
  }
  ops_.emplace(id, std::move(op));
  begin_op(id);
  return id;
}

OpId Dfs::read_partial(BlockId block, NodeId reader, Bytes bytes, Done done) {
  const OpId id = next_op_++;
  auto op = std::make_unique<ReadOp>(*this, id, block, reader, bytes,
                                     /*rounds=*/1, std::move(done));
  op->charge_ = bytes;
  partial_inflight_ += bytes;
  if (auto* tracer = sim_.tracer()) {
    op->span_ = tracer->begin(obs::kDfsPid, obs::node_track(reader),
                              obs::Cat::kIo, "fetch", sim_.now(),
                              {{"block", std::to_string(block.value())},
                               {"bytes", std::to_string(bytes)}});
  }
  ops_.emplace(id, std::move(op));
  begin_op(id);
  return id;
}

void Dfs::begin_op(OpId id) {
  sim_.schedule_after(0, [this, id] {
    auto it = ops_.find(id);
    if (it != ops_.end()) it->second->begin();
  });
}

void Dfs::cancel_op(OpId op) {
  auto it = ops_.find(op);
  if (it == ops_.end()) return;
  it->second->abort();
  partial_inflight_ -= it->second->charge_;
  if (auto* tracer = sim_.tracer()) {
    tracer->end(it->second->span_, sim_.now(), {{"outcome", "cancelled"}});
  }
  ops_.erase(it);
}

void Dfs::finish_op(OpId id, bool ok) {
  auto it = ops_.find(id);
  if (it == ops_.end()) return;
  // Extract before invoking: the callback may start new ops or cancel
  // others, and must not observe this op as active.
  std::unique_ptr<Op> op = std::move(it->second);
  ops_.erase(it);
  partial_inflight_ -= op->charge_;
  if (auto* tracer = sim_.tracer()) {
    tracer->end(op->span_, sim_.now(), {{"outcome", ok ? "ok" : "failed"}});
  }
  if (op->done_) op->done_(ok);
}

void Dfs::debug_dump(std::ostream& os) const {
  auto& net = cluster_.network();
  os << "dfs: " << ops_.size() << " ops, " << repairs_.size() << " repairs, "
     << namenode_.replication_queue_depth() << " queued\n";
  // Dump in OpId order so two same-seed runs print byte-identical dumps.
  std::vector<OpId> dump_ids;
  dump_ids.reserve(ops_.size());
  for (const auto& [id, op] : ops_) dump_ids.push_back(id);  // detlint: allow(unordered-iter) -- key snapshot, sorted on the next line before printing
  std::sort(dump_ids.begin(), dump_ids.end());
  for (OpId id : dump_ids) {
    const auto& op = ops_.at(id);
    if (const auto* r = dynamic_cast<const ReadOp*>(op.get())) {
      os << "  read op" << id << " block=" << r->block_ << " reader=" << r->reader_
         << (cluster_.node(r->reader_).available() ? "(up)" : "(down)")
         << " src=" << r->source_;
      if (r->source_.valid()) {
        os << (cluster_.node(r->source_).available() ? "(up)" : "(down)");
      }
      os << " tried=" << r->tried_.size();
      if (r->flow_.valid()) {
        os << " rate=" << net.rate(r->flow_) << " left=" << net.remaining(r->flow_);
      } else {
        os << " NOFLOW";
      }
      os << '\n';
    } else if (const auto* w = dynamic_cast<const WriteOp*>(op.get())) {
      os << "  write op" << id << " file=" << w->file_ << " writer=" << w->writer_
         << (cluster_.node(w->writer_).available() ? "(up)" : "(down)")
         << " block " << w->current_ << "/" << w->blocks_.size() << " inflight="
         << w->inflight_.size() << " committed=" << w->committed_
         << " retries=" << w->retries_ << '\n';
    }
  }
}

void Dfs::probe_ops() {
  sim::Profiler::Scope profile(sim_.profiler(), sim::Profiler::Key::kDfsProbe);
  // Ops may complete (and erase themselves) during probing; walk a snapshot,
  // in issue order — probes retry stalled transfers (state-changing), so the
  // walk must not follow the map's hash order (§2 determinism contract).
  std::vector<OpId> ids;
  ids.reserve(ops_.size());
  for (const auto& [id, op] : ops_) ids.push_back(id);  // detlint: allow(unordered-iter) -- key snapshot, sorted on the next line before any op is probed
  std::sort(ids.begin(), ids.end());
  for (OpId id : ids) {
    auto it = ops_.find(id);
    if (it != ops_.end()) it->second->probe();
  }
}

void Dfs::replication_scan() {
  sim::Profiler::Scope profile(sim_.profiler(),
                               sim::Profiler::Key::kReplicationScan);
  // The repair pipeline is master-driven: freeze it during an outage (live
  // streams keep draining; the post-recovery sweep re-queues what they owe).
  if (!namenode_.available()) return;
  auto& net = cluster_.network();
  // 1. Recycle stalled repair streams.
  std::vector<FlowId> stalled;
  // detlint: allow(unordered-iter) -- read-only stall scan into a snapshot that is sorted below before any abort
  for (const auto& [flow, repair] : repairs_) {
    if (net.rate(flow) == 0.0) stalled.push_back(flow);
  }
  // Recycle in flow-start order: each abort re-enqueues the block, and the
  // queue position decides the retry order, so the hash order of repairs_
  // must not leak into it (§2 determinism contract).
  std::sort(stalled.begin(), stalled.end());
  {
    sim::FlowNetwork::CapacityBatch batch(net);
    for (FlowId flow : stalled) {
      const Repair repair = repairs_.at(flow);
      net.abort_flow(flow);
      repairs_.erase(flow);
      if (auto* tracer = sim_.tracer()) {
        tracer->end(repair.span, sim_.now(), {{"outcome", "stalled"}});
      }
      namenode_.enqueue_replication(repair.block);
    }
  }
  // 2. Launch new streams up to the cap.
  start_repair_streams();
}

void Dfs::start_repair_streams() {
  if (!namenode_.available()) return;
  auto& net = cluster_.network();
  std::vector<BlockId> deferred;
  while (repairs_.size() <
         static_cast<std::size_t>(config().max_replication_streams)) {
    auto req = namenode_.next_replication_request();
    if (!req) break;
    auto plan = namenode_.plan_repair(req->block, rng_);
    if (!plan) {
      deferred.push_back(req->block);
      continue;
    }
    const Bytes size = namenode_.block(req->block).size;
    const auto& src = cluster_.node(plan->source);
    const auto& dst = cluster_.node(plan->target);
    const BlockId block = req->block;
    const NodeId target = plan->target;
    const FlowId flow = net.start_flow(
        {src.disk(), src.nic_out(), dst.nic_in(), dst.disk()}, size,
        [this, block, target, size](FlowId f) {
          auto rit = repairs_.find(f);
          if (rit != repairs_.end()) {
            if (auto* tracer = sim_.tracer()) {
              tracer->end(rit->second.span, sim_.now(), {{"outcome", "ok"}});
            }
            repairs_.erase(rit);
          }
          // The file may have been deleted while the copy was in flight
          // (e.g. a map output discarded for re-execution): drop the bytes.
          if (namenode_.block_exists(block)) {
            land_replica(block, target, size);
            namenode_.stats_mutable().replication_bytes += size;
            if (namenode_.available() && !namenode_.block_meets_factor(block)) {
              namenode_.enqueue_replication(block);
            }
          }
          // A slot freed up; try to keep the pipeline full.
          start_repair_streams();
        });
    obs::Tracer::SpanId span;
    if (auto* tracer = sim_.tracer()) {
      span = tracer->begin(obs::kDfsPid, obs::node_track(target),
                           obs::Cat::kRepair, "repair", sim_.now(),
                           {{"block", std::to_string(block.value())},
                            {"source", std::to_string(plan->source.value())},
                            {"bytes", std::to_string(size)}});
    }
    if (log::enabled(log::Level::kDebug)) {
      log::debug("dfs", "repair stream",
                 {{"block", std::to_string(block.value())},
                  {"source", std::to_string(plan->source.value())},
                  {"target", std::to_string(target.value())}});
    }
    repairs_.emplace(flow,
                     Repair{block, plan->source, plan->target, size, span});
  }
  for (BlockId b : deferred) namenode_.enqueue_replication(b);
}

}  // namespace moon::dfs
