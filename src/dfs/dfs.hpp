// MoonFS façade: wires a NameNode and one DataNode per cluster node, hosts
// the asynchronous client operations (file writes, block reads) and the
// background replication monitor that services the NameNode's queue.
//
// All data movement is expressed as flows on the cluster's FlowNetwork:
//   local write/read   : {node.disk}
//   remote write       : {writer.nic_out, target.nic_in, target.disk}
//   remote read        : {source.disk, source.nic_out, reader.nic_in}
//   re-replication     : {source.disk, source.nic_out, target.nic_in, target.disk}
//
// Stall handling: transfers through an unavailable node run at rate 0; a
// periodic probe abandons stalled attempts and retries elsewhere (clients
// "experience timeouts trying to access the nodes", §IV-C).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "dfs/datanode.hpp"
#include "dfs/namenode.hpp"
#include "dfs/types.hpp"
#include "simkit/periodic.hpp"

namespace moon::dfs {

/// Handle for an in-flight client operation.
using OpId = std::uint64_t;

class Dfs {
 public:
  /// Completion callback: `true` on success.
  using Done = std::function<void(bool)>;

  Dfs(sim::Simulation& sim, cluster::Cluster& cluster, DfsConfig config,
      std::uint64_t seed);
  ~Dfs();

  Dfs(const Dfs&) = delete;
  Dfs& operator=(const Dfs&) = delete;

  /// Starts heartbeats, liveness scans, the replication monitor and the
  /// client stall probe.
  void start();

  // ---- NameNode crash-recovery (DESIGN.md §14) ---------------------------

  /// Crashes the NameNode (fault injector entry point). In-flight data
  /// transfers keep streaming — the data plane is not the control plane —
  /// but everything that needs master metadata parks until recovery.
  void crash_namenode();

  /// Full recovery sequence: journal replay + diff, re-registration storm
  /// (available DataNodes send block reports in NodeId order), deferred
  /// deletes + under-factor sweep, then parked client ops are re-kicked in
  /// issue order and the repair pipeline refilled.
  void recover_namenode();

  [[nodiscard]] NameNode& namenode() { return namenode_; }
  [[nodiscard]] const NameNode& namenode() const { return namenode_; }
  [[nodiscard]] DataNode& datanode(NodeId node);
  [[nodiscard]] const DfsConfig& config() const { return namenode_.config(); }
  [[nodiscard]] const DfsStats& stats() const { return namenode_.stats(); }

  // ---- staging (no simulated cost) --------------------------------------
  /// Creates a file whose blocks are already resident per `factor`
  /// (round-robin dedicated placement, random distinct volatile placement).
  /// Used to pre-load job input, as the paper does before timing starts.
  FileId stage_file(const std::string& name, FileKind kind,
                    ReplicationFactor factor, Bytes size);

  /// Like stage_file but with an explicit block layout (`count` blocks of
  /// `block_bytes` each) — e.g. the sleep workload needs one (tiny) input
  /// block per map task.
  FileId stage_blocks(const std::string& name, FileKind kind,
                      ReplicationFactor factor, int count, Bytes block_bytes);

  // ---- asynchronous client operations ------------------------------------
  /// Writes `size` fresh bytes from `writer` into `file` (appending blocks).
  /// Replication degree/placement follow the file's factor and Figure 3.
  OpId write_file(FileId file, NodeId writer, Bytes size, Done done);

  /// Reads one block to `reader`, retrying across replicas on stalls.
  OpId read_block(BlockId block, NodeId reader, Done done);

  /// Reads `bytes` out of a block (a shuffle partition fetch). Replica
  /// selection and retry behaviour match read_block.
  OpId read_partial(BlockId block, NodeId reader, Bytes bytes, Done done);

  /// Aborts an in-flight operation (no callback fires).
  void cancel_op(OpId op);

  [[nodiscard]] std::size_t active_ops() const { return ops_.size(); }
  [[nodiscard]] std::size_t active_repairs() const { return repairs_.size(); }
  /// Bytes of in-flight partial (shuffle partition) reads. Maintained
  /// unconditionally — cheap integer bookkeeping — so metrics gauges can
  /// read it without perturbing anything.
  [[nodiscard]] Bytes shuffle_bytes_in_flight() const {
    return partial_inflight_;
  }

  /// Writes one line per in-flight client op (kind, block, endpoints, flow
  /// rate, remaining bytes) — debugging aid for stuck transfers.
  void debug_dump(std::ostream& os) const;

  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] cluster::Cluster& cluster() { return cluster_; }

 private:
  struct Op;
  struct WriteOp;
  struct ReadOp;
  struct Repair;

  void probe_ops();
  void replication_scan();
  void start_repair_streams();
  void finish_op(OpId id, bool ok);
  void begin_op(OpId id);

  /// Lands a transferred replica on `target`, honouring injected storage
  /// faults: a rejected (disk-full) store never reaches the DataNode, a
  /// corrupted one lands marked for checksum-on-read detection. Returns
  /// whether the replica landed.
  bool land_replica(BlockId block, NodeId target, Bytes size);

  sim::Simulation& sim_;
  cluster::Cluster& cluster_;
  Rng rng_;
  NameNode namenode_;
  std::vector<std::unique_ptr<DataNode>> datanodes_;  // indexed by node id
  std::unordered_map<OpId, std::unique_ptr<Op>> ops_;
  std::unordered_map<FlowId, Repair> repairs_;
  OpId next_op_ = 1;
  Bytes partial_inflight_ = 0;
  sim::PeriodicTask probe_task_;
  sim::PeriodicTask replication_task_;
  bool started_ = false;
};

}  // namespace moon::dfs
