// The NameNode: metadata service, liveness tracking, placement decisions
// (Figure 3), adaptive replication (§IV-A) and the priority replication
// queue. Data movement itself happens in DataNode/ReplicationMonitor/client
// ops; the NameNode only decides.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "dfs/metadata.hpp"
#include "dfs/throttle.hpp"
#include "dfs/types.hpp"
#include "simkit/periodic.hpp"
#include "simkit/simulation.hpp"

namespace moon::recovery {
class NameNodeJournal;
}

namespace moon::dfs {

class NameNode {
 public:
  NameNode(sim::Simulation& sim, cluster::Cluster& cluster, DfsConfig config);

  // ---- control plane -------------------------------------------------

  /// Registers a DataNode host. All cluster nodes hosting DFS storage must
  /// be registered before I/O starts.
  void register_datanode(NodeId node);

  /// Heartbeat from a DataNode carrying its recent I/O bandwidth (bytes/s),
  /// which feeds Algorithm 1 for dedicated nodes.
  void heartbeat(NodeId node, double reported_bandwidth);

  [[nodiscard]] DataNodeState state_of(NodeId node) const;
  [[nodiscard]] bool is_saturated(NodeId dedicated_node) const;
  [[nodiscard]] bool all_dedicated_saturated() const;

  /// Current estimate p of volatile-node unavailability (fraction of
  /// registered volatile DataNodes not Live, averaged over interval I).
  [[nodiscard]] double estimated_unavailability() const { return estimate_p_; }

  /// Starts periodic liveness scanning / estimation. Idempotent.
  void start();

  // ---- crash-recovery (DESIGN.md §14) ---------------------------------

  /// False while the master is down: mutating calls must not be made (the
  /// Dfs parks client ops; DataNodes buffer their heartbeats). Metadata
  /// *reads* stay legal — they model the client-side cached view.
  [[nodiscard]] bool available() const { return up_; }

  /// Registration epoch, bumped on every recovery. A DataNode whose
  /// registered epoch is stale must re-register with a block report before
  /// plain heartbeats are meaningful again.
  [[nodiscard]] int epoch() const { return epoch_; }

  /// Installs the recovery journal (null = journaling off, the
  /// zero-perturbation default). Not owned.
  void set_journal(recovery::NameNodeJournal* journal) { journal_ = journal; }
  [[nodiscard]] recovery::NameNodeJournal* journal() { return journal_; }

  /// Crashes the master. All soft state is lost: replica locations (wiped
  /// in BlockId order, firing removal events so scheduler locality indices
  /// stay consistent), the DataNode liveness view, the replication queue,
  /// and the unavailability estimator. The journaled namespace
  /// (files/blocks metadata) survives as the clients' cached view.
  void crash();

  /// Recovery phase 1: bump the registration epoch, replay the journal and
  /// diff the image against the live namespace (mismatches are counted as
  /// journal divergences — recovery would have lost state), come back up.
  /// Block reports then rebuild replica locations.
  void begin_recovery();

  /// Re-registration: `node` reports every block it physically stores
  /// (sorted). Restores its liveness and re-commits known replicas;
  /// stale blocks of meanwhile-deleted files are ignored.
  void handle_block_report(NodeId node, const std::vector<BlockId>& report,
                           double reported_bandwidth);

  /// Recovery phase 3 (after the re-registration storm): drain file
  /// removals deferred during downtime, then re-queue every block still
  /// short of its factor through the normal repair path.
  void finish_recovery();

  // ---- namespace -----------------------------------------------------

  FileId create_file(std::string name, FileKind kind, ReplicationFactor factor);
  [[nodiscard]] const FileMeta& file(FileId id) const;
  [[nodiscard]] FileMeta& file_mutable(FileId id);
  [[nodiscard]] bool file_exists(FileId id) const;

  /// Output commit: "once all [Reduce tasks] are completed they are then
  /// converted to reliable files". Enqueues dedicated replication as needed.
  void convert_to_reliable(FileId id);

  /// Marks the file complete once every block meets its factor; returns
  /// whether it did.
  bool try_complete_file(FileId id);

  void remove_file(FileId id);

  // ---- blocks ----------------------------------------------------------

  BlockId add_block(FileId file, Bytes size);
  [[nodiscard]] const BlockMeta& block(BlockId id) const;
  [[nodiscard]] bool block_exists(BlockId id) const;

  /// Write-target selection for one block (Figure 3 decision process).
  struct WriteTargets {
    std::vector<NodeId> nodes;      ///< chosen replica hosts, writer-local first
    bool dedicated_declined = false;  ///< opportunistic write hit saturation
    int effective_volatile = 0;       ///< v or adjusted v'
  };
  WriteTargets pick_write_targets(FileId file, NodeId writer, Rng& rng);

  /// Registers that `node` now holds a replica of `block`.
  void commit_replica(BlockId block, NodeId node);

  /// Replica on `node` is gone (node death handling / explicit delete).
  void drop_replica(BlockId block, NodeId node);

  /// Replicas visible for reading: on Live nodes only, ordered volatile-
  /// first for volatile readers (§IV-B), local replica always first.
  [[nodiscard]] std::vector<NodeId> read_order(BlockId block, NodeId reader) const;

  [[nodiscard]] bool block_readable(BlockId block) const;

  /// Count of replicas on Live dedicated / Live volatile nodes.
  struct LiveReplicas {
    int dedicated = 0;
    int volatile_count = 0;
    int hibernated = 0;
  };
  [[nodiscard]] LiveReplicas live_replicas(BlockId block) const;

  /// True once `block` meets its file's factor (counting Live replicas;
  /// hibernated replicas count when a live dedicated copy exists, per §IV-C).
  [[nodiscard]] bool block_meets_factor(BlockId block) const;
  [[nodiscard]] bool file_meets_factor(FileId file) const;

  // ---- replication queue ----------------------------------------------

  /// A block in need of copies, with "higher priority to reliable files".
  struct ReplicationRequest {
    BlockId block;
    bool reliable;  // priority key
  };
  void enqueue_replication(BlockId block);
  /// Pops the highest-priority block still under factor; nullopt when done.
  std::optional<ReplicationRequest> next_replication_request();
  [[nodiscard]] std::size_t replication_queue_depth() const;

  /// Picks a (source, target) pair to repair `block`: source is any Live
  /// replica holder; target honours the missing dimension (dedicated vs
  /// volatile) and Fig. 3 saturation rules. nullopt if not repairable now.
  struct RepairPlan {
    NodeId source;
    NodeId target;
  };
  std::optional<RepairPlan> plan_repair(BlockId block, Rng& rng);

  // ---- adaptive replication -------------------------------------------

  /// v' = min v such that 1 - p^v >= availability_goal (>= 1).
  [[nodiscard]] int adaptive_volatile_requirement() const;

  /// Recomputes v' for opportunistic files still lacking a dedicated copy
  /// ("If p changes before a dedicated replica can be stored, v' will be
  /// recalculated accordingly").
  void refresh_adaptive_requirements();

  // ---- events / stats ---------------------------------------------------

  using StateListener =
      std::function<void(NodeId, DataNodeState, DataNodeState)>;
  void subscribe_state_changes(StateListener listener);

  /// Fires whenever a replica enters (`added`) or leaves the replica list of
  /// a block — commit_replica, drop_replica, and remove_file teardown. The
  /// scheduler's per-job locality indices hang off this hook.
  using ReplicaListener = std::function<void(BlockId, NodeId, bool added)>;
  void subscribe_replica_events(ReplicaListener listener);

  [[nodiscard]] const DfsStats& stats() const { return stats_; }
  [[nodiscard]] DfsStats& stats_mutable() { return stats_; }
  [[nodiscard]] const DfsConfig& config() const { return config_; }
  [[nodiscard]] cluster::Cluster& cluster() { return cluster_; }

  /// All registered datanode ids (tests/benches).
  [[nodiscard]] std::vector<NodeId> datanodes() const;

  // ---- auditor views (read-only) ----------------------------------------

  /// Blocks whose replica list includes `node`; nullptr when none recorded.
  [[nodiscard]] const std::set<BlockId>* blocks_on(NodeId node) const {
    auto it = node_blocks_.find(node);
    return it == node_blocks_.end() ? nullptr : &it->second;
  }
  /// Every live block's metadata (moon::audit walks this for conservation
  /// checks; iteration order is hash order — callers must sort before any
  /// state-changing use).
  [[nodiscard]] const std::unordered_map<BlockId, BlockMeta>& all_blocks()
      const {
    return blocks_;
  }

 private:
  struct DataNodeInfo {
    DataNodeState state = DataNodeState::kLive;
    sim::Time last_heartbeat = 0;
    ThrottleState throttle;
    bool dedicated = false;
  };

  void liveness_scan();
  void estimate_scan();
  /// Journal-replay image vs live namespace mismatch count (recovery).
  [[nodiscard]] std::int64_t diff_against_journal();
  void set_state(NodeId node, DataNodeState next);
  void on_node_dead(NodeId node);
  void on_node_hibernated(NodeId node);
  void update_live_partition(NodeId node);
  void notify_replica(BlockId block, NodeId node, bool added);

  /// Blocks stored per node (reverse index for death handling). Ordered
  /// sets: the death/hibernation sweeps enqueue replication while walking a
  /// bucket, and the queue position decides repair order (§2 determinism
  /// contract) — BlockId order straight off the container replaces the old
  /// copy-and-sort snapshot that ran on every death/hibernate event.
  std::unordered_map<NodeId, std::set<BlockId>> node_blocks_;

  sim::Simulation& sim_;
  cluster::Cluster& cluster_;
  DfsConfig config_;

  /// Ordered by NodeId: the liveness scan takes state-changing actions
  /// (death -> replication enqueues, listener callbacks), so its iteration
  /// order must not depend on hash layout or registration order (DESIGN.md
  /// §2 determinism contract).
  std::map<NodeId, DataNodeInfo> datanodes_;
  std::unordered_map<FileId, FileMeta> files_;
  std::unordered_map<BlockId, BlockMeta> blocks_;
  IdAllocator<FileId> file_ids_;
  IdAllocator<BlockId> block_ids_;

  /// Live-node partitions, maintained on registration and every state
  /// transition so placement never rescans the full datanode map. Ordered
  /// sets: iteration order must reproduce the old gather-then-sort path.
  std::set<NodeId> live_dedicated_;
  std::set<NodeId> live_volatile_;
  std::size_t volatile_registered_ = 0;

  /// Replication queue: FIFO deque of (seq, block) with lazy tombstones plus
  /// a seq-ordered min-heap view of the entries whose file is reliable
  /// (populated at enqueue and at convert_to_reliable). `queued_` maps a
  /// block to its live seq; entries whose seq no longer matches are stale.
  struct QueueEntry {
    std::uint64_t seq;
    BlockId block;
  };
  std::deque<QueueEntry> replication_queue_;
  std::priority_queue<std::pair<std::uint64_t, BlockId>,
                      std::vector<std::pair<std::uint64_t, BlockId>>,
                      std::greater<>>
      reliable_queue_;
  std::unordered_map<BlockId, std::uint64_t> queued_;
  std::uint64_t queue_seq_ = 0;

  double estimate_p_ = 0.0;
  double estimate_accum_ = 0.0;
  int estimate_samples_ = 0;

  std::vector<StateListener> state_listeners_;
  std::vector<ReplicaListener> replica_listeners_;
  sim::PeriodicTask liveness_task_;
  sim::PeriodicTask estimate_task_;
  bool started_ = false;

  // Crash-recovery state (DESIGN.md §14).
  bool up_ = true;
  int epoch_ = 0;
  recovery::NameNodeJournal* journal_ = nullptr;  ///< null when disabled
  /// remove_file calls that arrived while down, drained at recovery in
  /// arrival order.
  std::vector<FileId> deferred_removals_;

  DfsStats stats_;
};

}  // namespace moon::dfs
