// DataNode: per-node storage daemon.
//
// Holds the set of blocks physically on the node and heartbeats the
// NameNode while its host is available, piggybacking the recently consumed
// I/O bandwidth (feeding Algorithm 1 on the NameNode side). When the host
// goes down, heartbeats simply stop — the NameNode notices via its liveness
// scan, exactly like Hadoop.
#pragma once

#include <unordered_set>

#include "cluster/node.hpp"
#include "common/ids.hpp"
#include "dfs/namenode.hpp"
#include "simkit/flow_network.hpp"
#include "simkit/periodic.hpp"
#include "simkit/simulation.hpp"

namespace moon::dfs {

class DataNode {
 public:
  DataNode(sim::Simulation& sim, sim::FlowNetwork& net, cluster::Node& host,
           NameNode& namenode);

  DataNode(const DataNode&) = delete;
  DataNode& operator=(const DataNode&) = delete;

  [[nodiscard]] NodeId node_id() const { return host_.id(); }
  [[nodiscard]] cluster::Node& host() { return host_; }

  [[nodiscard]] bool stores(BlockId block) const { return blocks_.contains(block); }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] Bytes stored_bytes() const { return stored_bytes_; }

  /// Physically lands a replica here (called by write/replication paths on
  /// transfer completion); informs the NameNode. A re-store of a block this
  /// node already holds clears any corruption mark (fresh bytes).
  void store_block(BlockId block, Bytes size);

  void drop_block(BlockId block, Bytes size);

  /// Fault injection: marks the stored replica as silently corrupted. The
  /// NameNode still counts it (corruption is silent until a reader's
  /// checksum verification catches it).
  void mark_corrupted(BlockId block);
  [[nodiscard]] bool corrupted(BlockId block) const {
    return corrupted_.contains(block);
  }

  /// Begins heartbeating (first beat after one interval).
  void start();

  /// Re-registration after a NameNode recovery: sends the full sorted list
  /// of physically stored blocks (the NameNode rebuilds its location soft
  /// state from these). Called by the recovery storm for available nodes
  /// and from beat() when this node notices the epoch moved under it.
  void send_block_report();

  /// Epoch this node last registered under (tests/recovery sweep).
  [[nodiscard]] int registered_epoch() const { return registered_epoch_; }

 private:
  void beat();
  [[nodiscard]] double current_bandwidth();

  sim::Simulation& sim_;
  sim::FlowNetwork& net_;
  cluster::Node& host_;
  NameNode& namenode_;
  std::unordered_set<BlockId> blocks_;
  std::unordered_set<BlockId> corrupted_;
  Bytes stored_bytes_ = 0;
  double last_reported_transferred_ = 0.0;
  sim::Time last_beat_at_ = 0;
  int registered_epoch_ = 0;  ///< NameNode epoch this node registered under
  sim::PeriodicTask heartbeat_;
};

}  // namespace moon::dfs
