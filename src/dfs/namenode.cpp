#include "dfs/namenode.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/log.hpp"
#include "recovery/master_journal.hpp"

namespace moon::dfs {

bool BlockMeta::has_replica_on(NodeId node) const {
  return std::find(replicas.begin(), replicas.end(), node) != replicas.end();
}

NameNode::NameNode(sim::Simulation& sim, cluster::Cluster& cluster, DfsConfig config)
    : sim_(sim),
      cluster_(cluster),
      config_(config),
      liveness_task_(sim, config.liveness_scan_interval, [this] { liveness_scan(); }),
      estimate_task_(sim, config.estimate_interval, [this] { estimate_scan(); }) {}

void NameNode::start() {
  if (started_) return;
  started_ = true;
  liveness_task_.start();
  estimate_task_.start();
}

// ---- crash-recovery (DESIGN.md §14) ----------------------------------------

void NameNode::crash() {
  if (!up_) return;
  up_ = false;
  // Replica locations are soft state: wipe them in BlockId order so the
  // removal events the scheduler's locality indices hang off fire in a
  // reproducible sequence.
  std::vector<BlockId> ids;
  ids.reserve(blocks_.size());
  for (const auto& [id, meta] : blocks_) ids.push_back(id);  // detlint: allow(unordered-iter) -- key snapshot, sorted on the next line before replica notifications fire
  std::sort(ids.begin(), ids.end());
  for (BlockId b : ids) {
    auto& meta = blocks_.at(b);
    for (NodeId n : meta.replicas) notify_replica(b, n, /*added=*/false);
    meta.replicas.clear();
  }
  // detlint: allow(unordered-iter) -- clears every bucket unconditionally; no per-element effect escapes the loop
  for (auto& [node, bucket] : node_blocks_) bucket.clear();
  live_dedicated_.clear();
  live_volatile_.clear();
  // The liveness view is forgotten wholesale. No state listeners fire: the
  // nodes did not change, the master's knowledge of them did.
  for (auto& [node, info] : datanodes_) info.state = DataNodeState::kDead;
  replication_queue_.clear();
  while (!reliable_queue_.empty()) reliable_queue_.pop();
  queued_.clear();
  estimate_p_ = 0.0;
  estimate_accum_ = 0.0;
  estimate_samples_ = 0;
  if (log::enabled(log::Level::kWarn)) {
    log::warn("dfs", "namenode crashed", {{"epoch", std::to_string(epoch_)}});
  }
}

void NameNode::begin_recovery() {
  if (up_) return;
  ++epoch_;
  up_ = true;
  if (journal_ != nullptr) journal_->add_divergences(diff_against_journal());
  if (log::enabled(log::Level::kInfo)) {
    log::info("dfs", "namenode recovering", {{"epoch", std::to_string(epoch_)}});
  }
}

std::int64_t NameNode::diff_against_journal() {
  // Replay the journal into an image and diff it against the live namespace
  // (the clients' cached view). Any mismatch means a real restart-from-
  // journal would have lost or invented durable state.
  const recovery::NameNodeImage image = journal_->replay();
  std::int64_t diverged = 0;
  for (const auto& [id, fi] : image) {
    auto it = files_.find(id);
    if (it == files_.end()) {
      ++diverged;
      continue;
    }
    const FileMeta& live = it->second;
    if (live.kind != fi.kind || live.complete != fi.complete ||
        !(live.factor == fi.factor) ||
        live.blocks.size() != fi.blocks.size()) {
      ++diverged;
      continue;
    }
    for (std::size_t i = 0; i < fi.blocks.size(); ++i) {
      const auto& [bid, bytes] = fi.blocks[i];
      auto bit = blocks_.find(bid);
      if (live.blocks[i] != bid || bit == blocks_.end() ||
          bit->second.size != bytes) {
        ++diverged;
        break;
      }
    }
  }
  // detlint: allow(unordered-iter) -- pure integer accumulation; the count is order-independent
  for (const auto& [id, meta] : files_) {
    if (!image.contains(id)) ++diverged;
  }
  return diverged;
}

void NameNode::handle_block_report(NodeId node,
                                   const std::vector<BlockId>& report,
                                   double reported_bandwidth) {
  if (!up_) return;
  auto it = datanodes_.find(node);
  if (it == datanodes_.end()) {
    register_datanode(node);
    it = datanodes_.find(node);
  }
  it->second.last_heartbeat = sim_.now();
  if (it->second.dedicated && config_.throttling_enabled) {
    it->second.throttle.update(reported_bandwidth);
  }
  if (it->second.state != DataNodeState::kLive) {
    set_state(node, DataNodeState::kLive);
  }
  for (BlockId b : report) {
    // Stale blocks of meanwhile-deleted files are simply not re-admitted;
    // the DataNode keeps the bytes (same contract as normal deletes).
    if (blocks_.contains(b)) commit_replica(b, node);
  }
  ++stats_.block_reports;
}

void NameNode::finish_recovery() {
  // Deferred deletes first, so their blocks are gone before the
  // under-factor sweep and cannot be repaired back into existence.
  std::vector<FileId> removals;
  removals.swap(deferred_removals_);
  for (FileId f : removals) remove_file(f);
  // Every block still short of its factor after the re-registration storm
  // re-enters the normal repair queue, in BlockId order.
  std::vector<BlockId> ids;
  ids.reserve(blocks_.size());
  for (const auto& [id, meta] : blocks_) ids.push_back(id);  // detlint: allow(unordered-iter) -- key snapshot, sorted on the next line before the repair queue is refilled
  std::sort(ids.begin(), ids.end());
  for (BlockId b : ids) {
    if (!block_meets_factor(b)) enqueue_replication(b);
  }
}

void NameNode::register_datanode(NodeId node) {
  DataNodeInfo info{DataNodeState::kLive, sim_.now(),
                    ThrottleState{config_.throttle_window, config_.throttle_threshold},
                    cluster_.node(node).dedicated()};
  if (!datanodes_.contains(node) && !info.dedicated) ++volatile_registered_;
  datanodes_.insert_or_assign(node, std::move(info));
  node_blocks_.try_emplace(node);
  update_live_partition(node);
}

void NameNode::update_live_partition(NodeId node) {
  const auto& info = datanodes_.at(node);
  auto& mine = info.dedicated ? live_dedicated_ : live_volatile_;
  if (info.state == DataNodeState::kLive) {
    mine.insert(node);
  } else {
    mine.erase(node);
  }
}

void NameNode::heartbeat(NodeId node, double reported_bandwidth) {
  if (!up_) return;  // lost on the wire; DataNodes gate on available() anyway
  auto it = datanodes_.find(node);
  if (it == datanodes_.end()) throw std::logic_error("NameNode: unregistered datanode");
  it->second.last_heartbeat = sim_.now();
  if (it->second.dedicated && config_.throttling_enabled) {
    it->second.throttle.update(reported_bandwidth);
  }
  if (it->second.state != DataNodeState::kLive) {
    set_state(node, DataNodeState::kLive);
  }
}

DataNodeState NameNode::state_of(NodeId node) const {
  auto it = datanodes_.find(node);
  if (it == datanodes_.end()) throw std::logic_error("NameNode: unregistered datanode");
  return it->second.state;
}

bool NameNode::is_saturated(NodeId dedicated_node) const {
  auto it = datanodes_.find(dedicated_node);
  if (it == datanodes_.end() || !it->second.dedicated) return false;
  if (!config_.throttling_enabled) return false;
  return it->second.throttle.throttled();
}

bool NameNode::all_dedicated_saturated() const {
  for (NodeId id : live_dedicated_) {
    const auto& info = datanodes_.at(id);
    if (!config_.throttling_enabled || !info.throttle.throttled()) return false;
  }
  // Either every live dedicated node is throttled, or none is live at all;
  // both mean "cannot take dedicated writes right now".
  return true;
}

void NameNode::liveness_scan() {
  if (!up_) return;  // a crashed master scans nothing
  const sim::Time now = sim_.now();
  // datanodes_ is NodeId-ordered: expiring nodes die in id order, so the
  // replication-queue enqueue sequence their deaths trigger is reproducible
  // regardless of registration order.
  for (auto& [id, info] : datanodes_) {
    const sim::Duration gap = now - info.last_heartbeat;
    if (info.state == DataNodeState::kDead) continue;
    if (gap > config_.expiry_interval) {
      set_state(id, DataNodeState::kDead);
    } else if (config_.hibernate_enabled && info.state == DataNodeState::kLive &&
               gap > config_.hibernate_interval) {
      set_state(id, DataNodeState::kHibernated);
    }
  }
}

void NameNode::estimate_scan() {
  if (!up_) return;
  const std::size_t volatile_total = volatile_registered_;
  const std::size_t volatile_down = volatile_total - live_volatile_.size();
  if (volatile_total == 0) return;
  const double sample =
      static_cast<double>(volatile_down) / static_cast<double>(volatile_total);
  // Exponentially weighted estimate over interval I: responsive to shifts
  // but stable against single-scan noise.
  constexpr double kAlpha = 0.5;
  estimate_p_ = estimate_samples_ == 0 ? sample
                                       : kAlpha * sample + (1.0 - kAlpha) * estimate_p_;
  ++estimate_samples_;
  if (config_.adaptive_replication) refresh_adaptive_requirements();
}

void NameNode::set_state(NodeId node, DataNodeState next) {
  auto& info = datanodes_.at(node);
  const DataNodeState prev = info.state;
  if (prev == next) return;
  info.state = next;
  update_live_partition(node);
  if (next == DataNodeState::kDead) {
    ++stats_.dead_transitions;
    on_node_dead(node);
  } else if (next == DataNodeState::kHibernated) {
    ++stats_.hibernate_transitions;
    on_node_hibernated(node);
  }
  for (const auto& listener : state_listeners_) listener(node, prev, next);
}

void NameNode::on_node_dead(NodeId node) {
  // Every block on the node loses a replica for accounting purposes; the
  // replica list keeps the entry (the node may return with data intact), but
  // factor checks ignore dead holders, so under-replicated blocks re-queue.
  // node_blocks_ buckets are BlockId-ordered sets, so the walk enqueues in
  // id order (§2 determinism contract) without snapshotting; the enqueue
  // only touches the queue structures, never the bucket being walked.
  auto it = node_blocks_.find(node);
  if (it == node_blocks_.end()) return;
  for (BlockId b : it->second) {
    if (!block_meets_factor(b)) enqueue_replication(b);
  }
}

void NameNode::on_node_hibernated(NodeId node) {
  // §IV-C: "only opportunistic files without dedicated replicas will be
  // re-replicated" when a node hibernates.
  auto it = node_blocks_.find(node);
  if (it == node_blocks_.end()) return;
  for (BlockId b : it->second) {
    const auto& meta = blocks_.at(b);
    const auto& fm = files_.at(meta.file);
    if (fm.kind != FileKind::kOpportunistic) continue;
    if (live_replicas(b).dedicated > 0) continue;
    if (!block_meets_factor(b)) enqueue_replication(b);
  }
}

// ---- namespace ----------------------------------------------------------

FileId NameNode::create_file(std::string name, FileKind kind,
                             ReplicationFactor factor) {
  if (kind == FileKind::kReliable && factor.dedicated < 1) {
    // "One or more dedicated copies are always maintained for reliable
    // files"; normalise rather than reject so Hadoop-mode configs (d=0)
    // can still mark files reliable semantically.
    if (config_.adaptive_replication) factor.dedicated = 1;
  }
  const FileId id = file_ids_.next();
  FileMeta meta;
  meta.id = id;
  meta.name = std::move(name);
  meta.kind = kind;
  meta.factor = factor;
  if (journal_ != nullptr) {
    journal_->record_create_file(id, meta.name, kind, factor);
  }
  files_.emplace(id, std::move(meta));
  return id;
}

const FileMeta& NameNode::file(FileId id) const {
  auto it = files_.find(id);
  if (it == files_.end()) throw std::out_of_range("NameNode: unknown file");
  return it->second;
}

FileMeta& NameNode::file_mutable(FileId id) {
  auto it = files_.find(id);
  if (it == files_.end()) throw std::out_of_range("NameNode: unknown file");
  return it->second;
}

bool NameNode::file_exists(FileId id) const { return files_.contains(id); }

void NameNode::convert_to_reliable(FileId id) {
  auto& meta = file_mutable(id);
  const bool was_opportunistic = meta.kind == FileKind::kOpportunistic;
  meta.kind = FileKind::kReliable;
  meta.adaptive_volatile = 0;
  // Promote already-queued blocks into the reliable-priority view under
  // their original sequence numbers (the queue serves reliable files first).
  if (was_opportunistic) {
    for (BlockId b : meta.blocks) {
      auto it = queued_.find(b);
      if (it != queued_.end()) reliable_queue_.emplace(it->second, b);
    }
  }
  // Reliable files carry a dedicated copy — but only when the deployment
  // actually manages a dedicated tier (plain Hadoop mode has none, and an
  // unsatisfiable requirement would wedge job commit forever).
  if (config_.adaptive_replication && meta.factor.dedicated < 1) {
    meta.factor.dedicated = 1;
  }
  if (journal_ != nullptr) journal_->record_convert_reliable(id, meta.factor);
  for (BlockId b : meta.blocks) {
    if (!block_meets_factor(b)) enqueue_replication(b);
  }
}

bool NameNode::try_complete_file(FileId id) {
  auto& meta = file_mutable(id);
  if (meta.complete) return true;
  if (!file_meets_factor(id)) return false;
  meta.complete = true;
  if (journal_ != nullptr) journal_->record_complete_file(id);
  return true;
}

void NameNode::remove_file(FileId id) {
  if (!up_) {
    // Deletes against a crashed master park until recovery; the drain in
    // finish_recovery() replays them in arrival order.
    ++stats_.removals_deferred;
    deferred_removals_.push_back(id);
    return;
  }
  auto it = files_.find(id);
  if (it == files_.end()) return;
  if (journal_ != nullptr) journal_->record_remove_file(id);
  for (BlockId b : it->second.blocks) {
    auto bit = blocks_.find(b);
    if (bit != blocks_.end()) {
      for (NodeId n : bit->second.replicas) {
        auto nb = node_blocks_.find(n);
        if (nb != node_blocks_.end()) nb->second.erase(b);
        notify_replica(b, n, /*added=*/false);
      }
      blocks_.erase(bit);
    }
    queued_.erase(b);  // queue/heap entries go stale and skip at pop
  }
  files_.erase(it);
}

// ---- blocks ---------------------------------------------------------------

BlockId NameNode::add_block(FileId file_id, Bytes size) {
  auto& meta = file_mutable(file_id);
  const BlockId id = block_ids_.next();
  BlockMeta bm;
  bm.id = id;
  bm.file = file_id;
  bm.size = size;
  blocks_.emplace(id, std::move(bm));
  meta.blocks.push_back(id);
  meta.size += size;
  if (journal_ != nullptr) journal_->record_add_block(file_id, id, size);
  return id;
}

const BlockMeta& NameNode::block(BlockId id) const {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) throw std::out_of_range("NameNode: unknown block");
  return it->second;
}

bool NameNode::block_exists(BlockId id) const { return blocks_.contains(id); }

NameNode::WriteTargets NameNode::pick_write_targets(FileId file_id, NodeId writer,
                                                    Rng& rng) {
  const auto& meta = file(file_id);
  WriteTargets out;

  // Live candidates come straight from the maintained partitions; the sets
  // iterate in the id order the old gather-then-sort produced.
  const std::set<NodeId>& live_dedicated = live_dedicated_;
  const std::set<NodeId>& live_volatile = live_volatile_;

  // --- dedicated replicas (Figure 3) ---
  int want_dedicated = meta.factor.dedicated;
  if (want_dedicated > 0) {
    const bool saturated = all_dedicated_saturated();
    if (meta.kind == FileKind::kOpportunistic && saturated) {
      // "a write request from an opportunistic file will be declined if all
      // dedicated DataNodes are close to saturation".
      out.dedicated_declined = true;
      ++stats_.dedicated_writes_declined;
      want_dedicated = 0;
    }
  }
  if (want_dedicated > 0 && !live_dedicated.empty()) {
    // Prefer unsaturated dedicated nodes; reliable writes fall back to
    // saturated ones ("always be satisfied on dedicated DataNodes").
    std::vector<NodeId> preferred;
    for (NodeId n : live_dedicated) {
      if (!is_saturated(n)) preferred.push_back(n);
    }
    if (preferred.empty() && meta.kind == FileKind::kReliable) {
      preferred.assign(live_dedicated.begin(), live_dedicated.end());
    }
    rng.shuffle(preferred);
    for (NodeId n : preferred) {
      if (want_dedicated == 0) break;
      out.nodes.push_back(n);
      --want_dedicated;
    }
  }

  // --- volatile replicas ---
  int want_volatile = meta.factor.volatile_count;
  if (out.dedicated_declined && config_.adaptive_replication) {
    // v -> v' so availability still meets the goal without a dedicated copy.
    const int v_prime = adaptive_volatile_requirement();
    if (v_prime > want_volatile) {
      want_volatile = v_prime;
      ++stats_.adaptive_v_raises;
    }
    file_mutable(file_id).adaptive_volatile = want_volatile;
  }
  out.effective_volatile = want_volatile;

  // Hadoop-style: first volatile replica lands on the writer if possible.
  std::vector<NodeId> chosen_volatile;
  const bool writer_is_volatile = live_volatile.contains(writer);
  if (want_volatile > 0 && writer_is_volatile) {
    chosen_volatile.push_back(writer);
    --want_volatile;
  }
  if (want_volatile > 0) {
    std::vector<NodeId> remote;
    for (NodeId n : live_volatile) {
      if (n != writer) remote.push_back(n);
    }
    rng.shuffle(remote);
    for (NodeId n : remote) {
      if (want_volatile == 0) break;
      chosen_volatile.push_back(n);
      --want_volatile;
    }
  }
  out.nodes.insert(out.nodes.end(), chosen_volatile.begin(), chosen_volatile.end());
  return out;
}

void NameNode::commit_replica(BlockId block_id, NodeId node) {
  auto& meta = blocks_.at(block_id);
  if (!meta.has_replica_on(node)) {
    meta.replicas.push_back(node);
    node_blocks_[node].insert(block_id);
    notify_replica(block_id, node, /*added=*/true);
  }
}

void NameNode::drop_replica(BlockId block_id, NodeId node) {
  auto it = blocks_.find(block_id);
  if (it == blocks_.end()) return;
  auto& reps = it->second.replicas;
  const auto held = reps.size();
  reps.erase(std::remove(reps.begin(), reps.end(), node), reps.end());
  auto nb = node_blocks_.find(node);
  if (nb != node_blocks_.end()) nb->second.erase(block_id);
  if (reps.size() != held) notify_replica(block_id, node, /*added=*/false);
}

void NameNode::notify_replica(BlockId block_id, NodeId node, bool added) {
  for (const auto& listener : replica_listeners_) listener(block_id, node, added);
}

std::vector<NodeId> NameNode::read_order(BlockId block_id, NodeId reader) const {
  const auto& meta = block(block_id);
  std::vector<NodeId> local, volatiles, dedicated;
  for (NodeId n : meta.replicas) {
    auto it = datanodes_.find(n);
    if (it == datanodes_.end() || it->second.state != DataNodeState::kLive) continue;
    if (n == reader) {
      local.push_back(n);
    } else if (it->second.dedicated) {
      dedicated.push_back(n);
    } else {
      volatiles.push_back(n);
    }
  }
  std::sort(volatiles.begin(), volatiles.end());
  std::sort(dedicated.begin(), dedicated.end());
  std::vector<NodeId> order = std::move(local);
  const bool reader_is_volatile = !cluster_.node(reader).dedicated();
  if (config_.prefer_volatile_reads && reader_is_volatile) {
    // §IV-B: "read requests from clients on volatile DataNodes will always
    // try to fetch data from volatile replicas first".
    order.insert(order.end(), volatiles.begin(), volatiles.end());
    order.insert(order.end(), dedicated.begin(), dedicated.end());
  } else {
    order.insert(order.end(), dedicated.begin(), dedicated.end());
    order.insert(order.end(), volatiles.begin(), volatiles.end());
  }
  return order;
}

bool NameNode::block_readable(BlockId block_id) const {
  const auto& meta = block(block_id);
  for (NodeId n : meta.replicas) {
    auto it = datanodes_.find(n);
    if (it != datanodes_.end() && it->second.state == DataNodeState::kLive) {
      return true;
    }
  }
  return false;
}

NameNode::LiveReplicas NameNode::live_replicas(BlockId block_id) const {
  const auto& meta = block(block_id);
  LiveReplicas out;
  for (NodeId n : meta.replicas) {
    auto it = datanodes_.find(n);
    if (it == datanodes_.end()) continue;
    switch (it->second.state) {
      case DataNodeState::kLive:
        ++(it->second.dedicated ? out.dedicated : out.volatile_count);
        break;
      case DataNodeState::kHibernated:
        ++out.hibernated;
        break;
      case DataNodeState::kDead:
        break;
    }
  }
  return out;
}

bool NameNode::block_meets_factor(BlockId block_id) const {
  const auto& meta = block(block_id);
  const auto& fm = files_.at(meta.file);
  const LiveReplicas live = live_replicas(block_id);

  const int need_dedicated = fm.factor.dedicated;
  int need_volatile = fm.required_volatile();

  if (live.dedicated < need_dedicated) {
    // Opportunistic files tolerate a missing dedicated copy as long as the
    // (possibly adaptively raised) volatile requirement is met.
    if (fm.kind == FileKind::kReliable) return false;
    return live.volatile_count >= need_volatile;
  }
  // Dedicated requirement met: hibernated replicas retain their value
  // ("a data block with dedicated replicas already has the necessary
  // availability to tolerate transient unavailability of volatile nodes").
  const int effective_volatile =
      live.volatile_count + (live.dedicated > 0 ? live.hibernated : 0);
  return effective_volatile >= fm.factor.volatile_count;
}

bool NameNode::file_meets_factor(FileId file_id) const {
  const auto& meta = file(file_id);
  if (meta.blocks.empty()) return false;
  for (BlockId b : meta.blocks) {
    if (!block_meets_factor(b)) return false;
  }
  return true;
}

// ---- replication queue ------------------------------------------------

void NameNode::enqueue_replication(BlockId block_id) {
  if (queued_.contains(block_id)) return;
  auto bit = blocks_.find(block_id);
  if (bit == blocks_.end()) return;
  const std::uint64_t seq = queue_seq_++;
  queued_.emplace(block_id, seq);
  replication_queue_.push_back(QueueEntry{seq, block_id});
  if (files_.at(bit->second.file).kind == FileKind::kReliable) {
    reliable_queue_.emplace(seq, block_id);
  }
  ++stats_.re_replications;
}

std::optional<NameNode::ReplicationRequest> NameNode::next_replication_request() {
  // Reliable files first (served in enqueue order from the seq-ordered
  // heap), then the FIFO fallback. Entries whose seq no longer matches
  // `queued_` were already served, promoted, or belonged to a removed file:
  // tombstones, dropped on sight — amortized O(log n) per request instead of
  // the old middle-of-the-deque erase compaction.
  const auto stale = [this](std::uint64_t seq, BlockId id) {
    auto it = queued_.find(id);
    return it == queued_.end() || it->second != seq;
  };
  while (!reliable_queue_.empty()) {
    const auto [seq, id] = reliable_queue_.top();
    reliable_queue_.pop();
    if (stale(seq, id)) continue;
    queued_.erase(id);
    if (!blocks_.contains(id)) continue;   // file removed meanwhile
    if (block_meets_factor(id)) continue;  // repaired in the meantime
    return ReplicationRequest{id, true};
  }
  while (!replication_queue_.empty()) {
    const auto [seq, id] = replication_queue_.front();
    replication_queue_.pop_front();
    if (stale(seq, id)) continue;
    queued_.erase(id);
    auto bit = blocks_.find(id);
    if (bit == blocks_.end()) continue;
    if (block_meets_factor(id)) continue;
    return ReplicationRequest{
        id, files_.at(bit->second.file).kind == FileKind::kReliable};
  }
  return std::nullopt;
}

std::size_t NameNode::replication_queue_depth() const { return queued_.size(); }

std::optional<NameNode::RepairPlan> NameNode::plan_repair(BlockId block_id,
                                                          Rng& rng) {
  auto bit = blocks_.find(block_id);
  if (bit == blocks_.end()) return std::nullopt;
  const auto& meta = bit->second;
  const auto& fm = files_.at(meta.file);

  // Source: any live replica holder.
  std::vector<NodeId> sources;
  for (NodeId n : meta.replicas) {
    auto it = datanodes_.find(n);
    if (it != datanodes_.end() && it->second.state == DataNodeState::kLive) {
      sources.push_back(n);
    }
  }
  if (sources.empty()) return std::nullopt;  // unrecoverable right now
  std::sort(sources.begin(), sources.end());

  const LiveReplicas live = live_replicas(block_id);
  const bool need_dedicated = live.dedicated < fm.factor.dedicated;

  // Targets come from the live partition matching the missing dimension;
  // the sets iterate in sorted id order, so candidate order is unchanged.
  std::vector<NodeId> candidates;
  if (need_dedicated) {
    for (NodeId id : live_dedicated_) {
      if (meta.has_replica_on(id)) continue;
      // Opportunistic repairs respect saturation; reliable ones do not.
      if (fm.kind == FileKind::kOpportunistic && is_saturated(id)) continue;
      candidates.push_back(id);
    }
  } else {
    for (NodeId id : live_volatile_) {
      if (!meta.has_replica_on(id)) candidates.push_back(id);
    }
  }
  if (candidates.empty()) {
    if (!need_dedicated) return std::nullopt;
    // Cannot place the dedicated copy now (all saturated/down): for
    // opportunistic files fall back to adding a volatile copy if the
    // adaptive requirement is unmet.
    if (fm.kind == FileKind::kReliable) return std::nullopt;
    for (NodeId id : live_volatile_) {
      if (!meta.has_replica_on(id)) candidates.push_back(id);
    }
    if (candidates.empty()) return std::nullopt;
  }

  RepairPlan plan;
  plan.source = sources[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(sources.size()) - 1))];
  plan.target = candidates[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
  return plan;
}

// ---- adaptive replication ----------------------------------------------

int NameNode::adaptive_volatile_requirement() const {
  // Smallest v with 1 - p^v >= goal. p = 0 -> one copy suffices.
  const double p = std::clamp(estimate_p_, 0.0, 0.999);
  const double goal = config_.availability_goal;
  if (p <= 0.0) return 1;
  int v = 1;
  double miss = p;  // p^v
  while (1.0 - miss < goal && v < 32) {
    ++v;
    miss *= p;
  }
  return v;
}

void NameNode::refresh_adaptive_requirements() {
  const int v_prime = adaptive_volatile_requirement();
  // Walk files in id order: the scan enqueues replication work, and the
  // queue position decides repair order, so hash order must not leak into
  // it (§2 determinism contract). Sorting a key snapshot also tolerates the
  // (currently impossible) case of a callback mutating files_ mid-scan.
  std::vector<FileId> ids;
  ids.reserve(files_.size());
  for (const auto& [id, meta] : files_) ids.push_back(id);  // detlint: allow(unordered-iter) -- key snapshot, sorted on the next line before adaptive requirements change
  std::sort(ids.begin(), ids.end());
  for (FileId id : ids) {
    auto fit = files_.find(id);
    if (fit == files_.end()) continue;
    FileMeta& meta = fit->second;
    if (meta.kind != FileKind::kOpportunistic) continue;
    if (meta.adaptive_volatile == 0) continue;  // never declined; leave alone
    if (meta.factor.dedicated > 0) {
      // Still waiting on a dedicated copy? If one arrived, the raised
      // requirement lapses.
      bool has_dedicated = true;
      for (BlockId b : meta.blocks) {
        if (live_replicas(b).dedicated == 0) {
          has_dedicated = false;
          break;
        }
      }
      if (has_dedicated && !meta.blocks.empty()) {
        meta.adaptive_volatile = 0;
        continue;
      }
    }
    if (v_prime > meta.factor.volatile_count) {
      if (v_prime > meta.adaptive_volatile) ++stats_.adaptive_v_raises;
      meta.adaptive_volatile = v_prime;
      for (BlockId b : meta.blocks) {
        if (!block_meets_factor(b)) enqueue_replication(b);
      }
    } else {
      meta.adaptive_volatile = 0;
    }
  }
}

void NameNode::subscribe_state_changes(StateListener listener) {
  state_listeners_.push_back(std::move(listener));
}

void NameNode::subscribe_replica_events(ReplicaListener listener) {
  replica_listeners_.push_back(std::move(listener));
}

std::vector<NodeId> NameNode::datanodes() const {
  std::vector<NodeId> out;
  out.reserve(datanodes_.size());
  for (const auto& [id, info] : datanodes_) out.push_back(id);  // id-ordered map
  return out;
}

const char* to_string(FileKind kind) {
  switch (kind) {
    case FileKind::kReliable: return "reliable";
    case FileKind::kOpportunistic: return "opportunistic";
  }
  return "?";
}

const char* to_string(DataNodeState state) {
  switch (state) {
    case DataNodeState::kLive: return "live";
    case DataNodeState::kHibernated: return "hibernated";
    case DataNodeState::kDead: return "dead";
  }
  return "?";
}

}  // namespace moon::dfs
