// Core DFS vocabulary types (paper §IV).
#pragma once

#include <string>

#include "common/time.hpp"
#include "common/units.hpp"

namespace moon::dfs {

/// MOON replication factor: "{d,v}, where d and v specify the number of data
/// replicas on the dedicated DataNodes and the volatile DataNodes".
struct ReplicationFactor {
  int dedicated = 0;
  int volatile_count = 0;

  friend bool operator==(const ReplicationFactor&, const ReplicationFactor&) = default;
};

/// "MOON characterizes Hadoop data files into two categories, reliable and
/// opportunistic."
enum class FileKind {
  kReliable,       ///< must never be lost; always >= 1 dedicated copy
  kOpportunistic,  ///< transient; dedicated copy is best-effort
};

/// NameNode's view of a DataNode (§IV-C).
enum class DataNodeState {
  kLive,
  kHibernated,  ///< heartbeat gap > NodeHibernateInterval: no I/O directed
  kDead,        ///< heartbeat gap > NodeExpiryInterval: replicas written off
};

const char* to_string(FileKind kind);
const char* to_string(DataNodeState state);

struct DfsConfig {
  Bytes block_size = mib(64.0);

  sim::Duration heartbeat_interval = 3 * sim::kSecond;
  /// NodeHibernateInterval (MOON; "much shorter than the NodeExpiryInterval").
  sim::Duration hibernate_interval = 90 * sim::kSecond;
  /// NodeExpiryInterval (HDFS-style declare-dead threshold).
  sim::Duration expiry_interval = 600 * sim::kSecond;
  /// How often the NameNode scans heartbeat recency.
  sim::Duration liveness_scan_interval = 10 * sim::kSecond;
  /// How often the replication queue is serviced.
  sim::Duration replication_scan_interval = 5 * sim::kSecond;
  /// Interval I over which the volatile-unavailability estimate p is taken.
  sim::Duration estimate_interval = 60 * sim::kSecond;

  /// User-defined availability goal for opportunistic files (paper: 0.9).
  double availability_goal = 0.9;

  /// Algorithm 1 parameters.
  std::size_t throttle_window = 10;  ///< W: samples in the sliding window
  double throttle_threshold = 0.1;   ///< T_b

  /// Feature switches (MOON on; plain Hadoop turns these off).
  bool hibernate_enabled = true;
  bool adaptive_replication = true;
  bool throttling_enabled = true;
  bool prefer_volatile_reads = true;

  /// Max concurrent re-replication flows fleet-wide (keeps recovery traffic
  /// from starving the foreground job).
  int max_replication_streams = 8;

  /// Client read/write stall probes: a transfer whose rate is zero at probe
  /// time is abandoned and retried on another replica.
  sim::Duration client_probe_interval = 20 * sim::kSecond;
  /// Give up re-picking write targets after this many attempts per block.
  int max_write_target_retries = 16;
  /// Whole-block reads (HDFS client semantics) sweep the replica set this
  /// many rounds, waiting `read_round_wait` between rounds, before failing.
  /// Shuffle partition fetches use a single round — the MapReduce layer owns
  /// that retry/fetch-failure protocol.
  int max_read_rounds = 5;
  sim::Duration read_round_wait = 20 * sim::kSecond;
};

/// Counters exposed for tests and benches.
struct DfsStats {
  std::int64_t bytes_written = 0;           ///< client payload bytes (x replicas)
  std::int64_t bytes_read = 0;              ///< client reads served
  std::int64_t replication_bytes = 0;       ///< background re-replication traffic
  std::int64_t dedicated_writes_declined = 0;  ///< Fig. 3 "decline" branch taken
  std::int64_t re_replications = 0;         ///< blocks queued for recovery
  std::int64_t hibernate_transitions = 0;
  std::int64_t dead_transitions = 0;
  std::int64_t read_failures = 0;           ///< no live replica reachable
  std::int64_t adaptive_v_raises = 0;       ///< times v' exceeded configured v
  std::int64_t writes_rejected = 0;         ///< fault-injected disk-full stores
  std::int64_t corruptions_detected = 0;    ///< checksum-on-read evictions

  // Master crash-recovery (DESIGN.md §14). All stay 0 when master_crash is
  // off — the goldens assert it.
  std::int64_t block_reports = 0;        ///< re-registration reports processed
  std::int64_t removals_deferred = 0;    ///< deletes parked during NN downtime
  std::int64_t ops_parked = 0;           ///< client ops parked on a down master
  std::int64_t master_retries = 0;       ///< parked-op probe retries while down
  std::int64_t heartbeats_skipped = 0;   ///< DataNode beats skipped, NN down
};

}  // namespace moon::dfs
