// I/O throttling on dedicated DataNodes — paper Algorithm 1, verbatim.
//
// The NameNode keeps one ThrottleState per dedicated DataNode, fed with the
// bandwidth samples the DataNode piggybacks on its heartbeats. The sliding-
// window hysteresis "avoid[s] false detection of saturation status caused by
// load oscillation": rising-but-flattening bandwidth means the node is at
// its ceiling (saturated); a clear drop below the band means demand fell.
#pragma once

#include <cstddef>
#include <deque>

namespace moon::dfs {

class ThrottleState {
 public:
  /// `window` is W (number of past samples averaged); `threshold` is T_b.
  ThrottleState(std::size_t window, double threshold);

  /// Feeds one measured bandwidth sample bw_i; returns the new state
  /// (true = throttled/saturated).
  bool update(double bandwidth);

  [[nodiscard]] bool throttled() const { return throttled_; }
  [[nodiscard]] std::size_t samples_seen() const { return seen_; }

  /// Average over the current window (0 until the first sample).
  [[nodiscard]] double window_average() const;

 private:
  std::size_t window_;
  double threshold_;
  std::deque<double> samples_;  // most recent W samples (bw_{i-W} .. bw_{i-1})
  bool throttled_ = false;
  std::size_t seen_ = 0;
};

}  // namespace moon::dfs
