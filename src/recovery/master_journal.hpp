// Journaled master images for control-plane crash-recovery (DESIGN.md §14).
//
// Each master keeps a write-ahead record of its durable decisions — the
// NameNode's file/block namespace mutations, the JobTracker's job/task
// lifecycle transitions — in an in-memory journal modeled on the PR-1
// checkpoint store: a periodic snapshot folds the op log into a base image
// and truncates it, so replay cost is bounded by churn since the last
// snapshot, not by run length. The journal is modeled as local-disk edit
// traffic (byte-accounted, not driven through the DFS flow network: a real
// master journals to its own disk, and charging it to the data plane would
// perturb every transfer).
//
// On recovery the journal is replayed into an image and diffed against the
// master's live durable state. The diff must be empty: a non-zero
// `JournalStats::divergences` means recovery would have lost or invented
// state — the failover bench and smoke gate on it.
//
// Journals are installed only when `faults.master_crash` is enabled; a null
// journal pointer on the master is the zero-perturbation off switch.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "dfs/types.hpp"
#include "simkit/periodic.hpp"
#include "simkit/simulation.hpp"

namespace moon::recovery {

struct JournalConfig {
  /// Fold the op log into the snapshot image this often.
  sim::Duration snapshot_interval = 60 * sim::kSecond;
};

struct JournalStats {
  std::int64_t records_appended = 0;
  std::int64_t bytes_journaled = 0;  ///< modeled local edit-log bytes
  std::int64_t snapshots_taken = 0;
  std::int64_t replays = 0;
  std::int64_t divergences = 0;  ///< replay-vs-live mismatches (must stay 0)
};

// ---- NameNode image --------------------------------------------------------

struct FileImage {
  std::string name;
  dfs::FileKind kind = dfs::FileKind::kOpportunistic;
  dfs::ReplicationFactor factor;
  bool complete = false;
  /// (block, size) in allocation order.
  std::vector<std::pair<BlockId, Bytes>> blocks;
};

/// Durable namespace state only: block *locations* are soft state, rebuilt
/// from DataNode block reports, never journaled (HDFS semantics).
using NameNodeImage = std::map<FileId, FileImage>;

class NameNodeJournal {
 public:
  explicit NameNodeJournal(sim::Simulation& sim, JournalConfig config = {});

  /// Starts the periodic snapshot task.
  void start();

  void record_create_file(FileId file, const std::string& name,
                          dfs::FileKind kind, dfs::ReplicationFactor factor);
  void record_add_block(FileId file, BlockId block, Bytes size);
  void record_convert_reliable(FileId file, dfs::ReplicationFactor factor);
  void record_complete_file(FileId file);
  void record_remove_file(FileId file);

  /// Snapshot + op log folded into one image (the recovered namespace).
  [[nodiscard]] NameNodeImage replay();

  [[nodiscard]] const JournalStats& stats() const { return stats_; }
  void add_divergences(std::int64_t n) { stats_.divergences += n; }
  [[nodiscard]] std::size_t oplog_length() const { return ops_.size(); }

 private:
  struct Op {
    enum class Kind {
      kCreateFile,
      kAddBlock,
      kConvertReliable,
      kCompleteFile,
      kRemoveFile,
    };
    Kind kind;
    FileId file;
    BlockId block;
    Bytes size = 0;
    std::string name;
    dfs::FileKind file_kind = dfs::FileKind::kOpportunistic;
    dfs::ReplicationFactor factor;
  };

  void append(Op op, std::int64_t bytes);
  void take_snapshot();
  static void apply(NameNodeImage& image, const Op& op);

  sim::Simulation& sim_;
  JournalConfig config_;
  NameNodeImage snapshot_;
  std::vector<Op> ops_;
  JournalStats stats_;
  sim::PeriodicTask snapshot_task_;
};

// ---- JobTracker image ------------------------------------------------------

struct JobImage {
  std::string name;
  int num_maps = 0;
  int num_reduces = 0;
  bool finished = false;
  bool completed = false;  ///< meaningful only when finished
  std::set<TaskId> completed_tasks;
};

using JobTrackerImage = std::map<JobId, JobImage>;

class JobTrackerJournal {
 public:
  explicit JobTrackerJournal(sim::Simulation& sim, JournalConfig config = {});

  void start();

  void record_submit(JobId job, const std::string& name, int num_maps,
                     int num_reduces);
  void record_task_completed(JobId job, TaskId task);
  void record_task_reverted(JobId job, TaskId task);
  void record_job_finished(JobId job, bool completed);
  /// Finished job garbage-collected from the live table (DESIGN.md §16):
  /// replay erases it from the image, so a recovered master is not diffed
  /// against jobs the live state deliberately dropped — and the journal
  /// image stays O(live jobs) over open-ended streams.
  void record_job_retired(JobId job);

  [[nodiscard]] JobTrackerImage replay();

  [[nodiscard]] const JournalStats& stats() const { return stats_; }
  void add_divergences(std::int64_t n) { stats_.divergences += n; }
  [[nodiscard]] std::size_t oplog_length() const { return ops_.size(); }

 private:
  struct Op {
    enum class Kind {
      kSubmit,
      kTaskCompleted,
      kTaskReverted,
      kJobFinished,
      kJobRetired,
    };
    Kind kind;
    JobId job;
    TaskId task;
    std::string name;
    int num_maps = 0;
    int num_reduces = 0;
    bool completed = false;
  };

  void append(Op op, std::int64_t bytes);
  void take_snapshot();
  static void apply(JobTrackerImage& image, const Op& op);

  sim::Simulation& sim_;
  JournalConfig config_;
  JobTrackerImage snapshot_;
  std::vector<Op> ops_;
  JournalStats stats_;
  sim::PeriodicTask snapshot_task_;
};

}  // namespace moon::recovery
