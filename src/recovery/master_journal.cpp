#include "recovery/master_journal.hpp"

namespace moon::recovery {
namespace {

// Modeled on-disk record framing: a fixed header plus payload. The exact
// numbers only matter for the bytes_journaled gauge; they are chosen to be
// in the ballpark of HDFS edit-log / JobTracker job-history record sizes.
constexpr std::int64_t kRecordHeaderBytes = 24;

}  // namespace

// ---- NameNodeJournal -------------------------------------------------------

NameNodeJournal::NameNodeJournal(sim::Simulation& sim, JournalConfig config)
    : sim_(sim),
      config_(config),
      snapshot_task_(sim, config.snapshot_interval, [this] { take_snapshot(); }) {}

void NameNodeJournal::start() { snapshot_task_.start(); }

void NameNodeJournal::append(Op op, std::int64_t bytes) {
  ++stats_.records_appended;
  stats_.bytes_journaled += kRecordHeaderBytes + bytes;
  ops_.push_back(std::move(op));
}

void NameNodeJournal::record_create_file(FileId file, const std::string& name,
                                         dfs::FileKind kind,
                                         dfs::ReplicationFactor factor) {
  Op op;
  op.kind = Op::Kind::kCreateFile;
  op.file = file;
  op.name = name;
  op.file_kind = kind;
  op.factor = factor;
  append(std::move(op), static_cast<std::int64_t>(name.size()) + 16);
}

void NameNodeJournal::record_add_block(FileId file, BlockId block, Bytes size) {
  Op op;
  op.kind = Op::Kind::kAddBlock;
  op.file = file;
  op.block = block;
  op.size = size;
  append(std::move(op), 24);
}

void NameNodeJournal::record_convert_reliable(FileId file,
                                              dfs::ReplicationFactor factor) {
  Op op;
  op.kind = Op::Kind::kConvertReliable;
  op.file = file;
  op.factor = factor;
  append(std::move(op), 16);
}

void NameNodeJournal::record_complete_file(FileId file) {
  Op op;
  op.kind = Op::Kind::kCompleteFile;
  op.file = file;
  append(std::move(op), 8);
}

void NameNodeJournal::record_remove_file(FileId file) {
  Op op;
  op.kind = Op::Kind::kRemoveFile;
  op.file = file;
  append(std::move(op), 8);
}

void NameNodeJournal::apply(NameNodeImage& image, const Op& op) {
  switch (op.kind) {
    case Op::Kind::kCreateFile: {
      FileImage f;
      f.name = op.name;
      f.kind = op.file_kind;
      f.factor = op.factor;
      image[op.file] = std::move(f);
      break;
    }
    case Op::Kind::kAddBlock:
      image[op.file].blocks.emplace_back(op.block, op.size);
      break;
    case Op::Kind::kConvertReliable: {
      auto it = image.find(op.file);
      if (it != image.end()) {
        it->second.kind = dfs::FileKind::kReliable;
        it->second.factor = op.factor;
      }
      break;
    }
    case Op::Kind::kCompleteFile: {
      auto it = image.find(op.file);
      if (it != image.end()) it->second.complete = true;
      break;
    }
    case Op::Kind::kRemoveFile:
      image.erase(op.file);
      break;
  }
}

void NameNodeJournal::take_snapshot() {
  for (const Op& op : ops_) apply(snapshot_, op);
  ops_.clear();
  ++stats_.snapshots_taken;
  // A snapshot rewrites the whole image; charge ~64 bytes per file plus
  // 16 per block entry.
  std::int64_t bytes = 0;
  for (const auto& [id, f] : snapshot_) {
    bytes += 64 + static_cast<std::int64_t>(f.blocks.size()) * 16;
  }
  stats_.bytes_journaled += bytes;
}

NameNodeImage NameNodeJournal::replay() {
  ++stats_.replays;
  NameNodeImage image = snapshot_;
  for (const Op& op : ops_) apply(image, op);
  return image;
}

// ---- JobTrackerJournal -----------------------------------------------------

JobTrackerJournal::JobTrackerJournal(sim::Simulation& sim, JournalConfig config)
    : sim_(sim),
      config_(config),
      snapshot_task_(sim, config.snapshot_interval, [this] { take_snapshot(); }) {}

void JobTrackerJournal::start() { snapshot_task_.start(); }

void JobTrackerJournal::append(Op op, std::int64_t bytes) {
  ++stats_.records_appended;
  stats_.bytes_journaled += kRecordHeaderBytes + bytes;
  ops_.push_back(std::move(op));
}

void JobTrackerJournal::record_submit(JobId job, const std::string& name,
                                      int num_maps, int num_reduces) {
  Op op;
  op.kind = Op::Kind::kSubmit;
  op.job = job;
  op.name = name;
  op.num_maps = num_maps;
  op.num_reduces = num_reduces;
  append(std::move(op), static_cast<std::int64_t>(name.size()) + 16);
}

void JobTrackerJournal::record_task_completed(JobId job, TaskId task) {
  Op op;
  op.kind = Op::Kind::kTaskCompleted;
  op.job = job;
  op.task = task;
  append(std::move(op), 16);
}

void JobTrackerJournal::record_task_reverted(JobId job, TaskId task) {
  Op op;
  op.kind = Op::Kind::kTaskReverted;
  op.job = job;
  op.task = task;
  append(std::move(op), 16);
}

void JobTrackerJournal::record_job_finished(JobId job, bool completed) {
  Op op;
  op.kind = Op::Kind::kJobFinished;
  op.job = job;
  op.completed = completed;
  append(std::move(op), 9);
}

void JobTrackerJournal::record_job_retired(JobId job) {
  Op op;
  op.kind = Op::Kind::kJobRetired;
  op.job = job;
  append(std::move(op), 8);
}

void JobTrackerJournal::apply(JobTrackerImage& image, const Op& op) {
  switch (op.kind) {
    case Op::Kind::kSubmit: {
      JobImage j;
      j.name = op.name;
      j.num_maps = op.num_maps;
      j.num_reduces = op.num_reduces;
      image[op.job] = std::move(j);
      break;
    }
    case Op::Kind::kTaskCompleted: {
      auto it = image.find(op.job);
      if (it != image.end()) it->second.completed_tasks.insert(op.task);
      break;
    }
    case Op::Kind::kTaskReverted: {
      auto it = image.find(op.job);
      if (it != image.end()) it->second.completed_tasks.erase(op.task);
      break;
    }
    case Op::Kind::kJobFinished: {
      auto it = image.find(op.job);
      if (it != image.end()) {
        it->second.finished = true;
        it->second.completed = op.completed;
      }
      break;
    }
    case Op::Kind::kJobRetired: {
      image.erase(op.job);
      break;
    }
  }
}

void JobTrackerJournal::take_snapshot() {
  for (const Op& op : ops_) apply(snapshot_, op);
  ops_.clear();
  ++stats_.snapshots_taken;
  std::int64_t bytes = 0;
  for (const auto& [id, j] : snapshot_) {
    bytes += 64 + static_cast<std::int64_t>(j.completed_tasks.size()) * 8;
  }
  stats_.bytes_journaled += bytes;
}

JobTrackerImage JobTrackerJournal::replay() {
  ++stats_.replays;
  JobTrackerImage image = snapshot_;
  for (const Op& op : ops_) apply(image, op);
  return image;
}

}  // namespace moon::recovery
