// Leveled, component-tagged, structured logger.
//
// The simulator is silent by default (benches print tables, not traces);
// set the stderr level to kDebug to watch the control plane make decisions.
// Every record names the component that emitted it ("jobtracker", "dfs",
// "node", …) and may carry structured key=value fields, so the same call
// site serves three consumers:
//   - stderr, rendered as `[sim-time] LEVEL component: message k=v …`
//   - an optional process-global sink with its *own* capture level — the
//     obs::Observability layer installs one to fill its structured event
//     log and to mirror records into the tracer as instant events
//   - nothing, at near-zero cost: `enabled()` is two relaxed atomic loads
// The clock is injected so log lines carry simulated time, not wall time.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace moon::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// One structured key=value field.
struct Field {
  std::string key;
  std::string value;
};
using Fields = std::vector<Field>;

const char* level_name(Level level);

/// Stderr threshold (default kOff: silent).
void set_level(Level level);
Level level();

/// Clock hook: returns the current simulated time in seconds for log stamps.
void set_clock(std::function<double()> clock);
void clear_clock();

/// Capture sink: receives every record at or above `capture_level`,
/// independently of the stderr threshold. One sink at a time (the obs layer
/// owns it during a run).
using Sink = std::function<void(Level level, const char* component,
                                const std::string& message,
                                const Fields& fields)>;
void set_sink(Sink sink, Level capture_level);
void clear_sink();

/// True when a record at `lvl` would reach stderr or the sink — call sites
/// use it to skip message/field construction entirely.
bool enabled(Level lvl);

void write(Level level, const char* component, const std::string& message,
           const Fields& fields = {});

inline void debug(const char* component, const std::string& message,
                  const Fields& fields = {}) {
  if (enabled(Level::kDebug)) write(Level::kDebug, component, message, fields);
}
inline void info(const char* component, const std::string& message,
                 const Fields& fields = {}) {
  if (enabled(Level::kInfo)) write(Level::kInfo, component, message, fields);
}
inline void warn(const char* component, const std::string& message,
                 const Fields& fields = {}) {
  if (enabled(Level::kWarn)) write(Level::kWarn, component, message, fields);
}
inline void error(const char* component, const std::string& message,
                  const Fields& fields = {}) {
  if (enabled(Level::kError)) write(Level::kError, component, message, fields);
}

}  // namespace moon::log
