// Minimal leveled logger.
//
// The simulator is silent by default (benches print tables, not traces);
// set the level to kDebug to watch the control plane make decisions. The
// sink is process-global but the clock is injected so log lines can carry
// simulated time instead of wall time.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace moon::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_level(Level level);
Level level();

/// Clock hook: returns the current simulated time in seconds for log stamps.
void set_clock(std::function<double()> clock);
void clear_clock();

void write(Level level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void debug(Args&&... args) {
  if (level() <= Level::kDebug) write(Level::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void info(Args&&... args) {
  if (level() <= Level::kInfo) write(Level::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void warn(Args&&... args) {
  if (level() <= Level::kWarn) write(Level::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void error(Args&&... args) {
  if (level() <= Level::kError) write(Level::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace moon::log
