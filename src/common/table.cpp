#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace moon {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::columns(std::vector<std::string> names) {
  columns_ = std::move(names);
  return *this;
}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size(), 0);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::size_t total = 1;
  for (auto w : widths) total += w + 3;

  if (!title_.empty()) os << title_ << '\n';
  os << std::string(total, '-') << '\n';
  os << '|';
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << columns_[c]
       << " |";
  }
  os << '\n' << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    os << '|';
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << row[c]
         << " |";
    }
    os << '\n';
  }
  os << std::string(total, '-') << '\n';
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace moon
