// ASCII table emitter.
//
// The bench harnesses print the same rows/series the paper's figures and
// tables report; this class renders them with aligned columns so the output
// is directly diff-able between runs.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace moon {

class Table {
 public:
  explicit Table(std::string title = {});

  Table& columns(std::vector<std::string> names);
  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double v, int precision = 1);
  static std::string num(std::int64_t v);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace moon
