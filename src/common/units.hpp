// Data-size units.
//
// All data volumes in the simulator are byte counts; bandwidths are
// bytes-per-second doubles (rates are continuous quantities in the fluid
// flow model, so double is the right representation there).
#pragma once

#include <cstdint>

namespace moon {

using Bytes = std::int64_t;
using BytesPerSecond = double;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

constexpr Bytes mib(double n) { return static_cast<Bytes>(n * static_cast<double>(kMiB)); }
constexpr Bytes gib(double n) { return static_cast<Bytes>(n * static_cast<double>(kGiB)); }

constexpr double to_mib(Bytes b) { return static_cast<double>(b) / static_cast<double>(kMiB); }
constexpr double to_gib(Bytes b) { return static_cast<double>(b) / static_cast<double>(kGiB); }

/// Bandwidth helper: `mbps(100)` is 100 MiB/s expressed in bytes/second.
constexpr BytesPerSecond mibps(double n) { return n * static_cast<double>(kMiB); }

}  // namespace moon
