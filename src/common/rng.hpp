// Deterministic random number generation.
//
// Reproducibility is a first-class requirement: a whole experiment must be
// replayable from a single master seed. `Rng` wraps a SplitMix64-seeded
// xoshiro256** generator and offers the distributions the simulator needs.
// Independent subsystems should derive child streams via `fork(tag)` so that
// adding draws in one subsystem never perturbs another.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace moon {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Derives an independent stream; same (parent seed, tag) -> same stream.
  [[nodiscard]] Rng fork(std::string_view tag) const;
  [[nodiscard]] Rng fork(std::uint64_t tag) const;

  /// Uniform on [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform real on [0, 1).
  double uniform();

  /// Uniform real on [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer on [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Gaussian via Box–Muller (stateless variant: two draws per sample).
  double normal(double mean, double stddev);

  /// Truncated Gaussian: re-draws (up to a bound) until >= floor, then clamps.
  double normal_at_least(double mean, double stddev, double floor);

  /// Exponential with the given mean (= 1/lambda). mean must be > 0.
  double exponential(double mean);

  /// Bernoulli trial.
  bool chance(double probability);

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i)));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::uint64_t state_[4];
};

}  // namespace moon
