// Simulation time.
//
// Simulated time is an integer count of microseconds since the start of the
// run. Integer time keeps event ordering exact and runs reproducible across
// platforms (no floating-point drift in the event queue).
#pragma once

#include <cstdint>
#include <limits>

namespace moon::sim {

using Time = std::int64_t;      ///< microseconds since simulation start
using Duration = std::int64_t;  ///< microseconds

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1'000;
inline constexpr Duration kSecond = 1'000'000;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;
inline constexpr Time kTimeMax = std::numeric_limits<Time>::max();

/// Converts seconds (possibly fractional) to a Duration, truncating to µs.
constexpr Duration seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}
constexpr Duration minutes(double m) { return seconds(m * 60.0); }
constexpr Duration hours(double h) { return minutes(h * 60.0); }

/// Converts a Duration back to fractional seconds (for reporting only).
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

}  // namespace moon::sim
