#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace moon {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const { return count_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const { return count_ == 0 ? 0.0 : min_; }
double Accumulator::max() const { return count_ == 0 ? 0.0 : max_; }

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin + 1);
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace moon
