#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace moon::log {
namespace {

std::atomic<Level> g_level{Level::kOff};
std::mutex g_mutex;
std::function<double()> g_clock;  // guarded by g_mutex

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }
Level level() { return g_level.load(std::memory_order_relaxed); }

void set_clock(std::function<double()> clock) {
  std::lock_guard lock(g_mutex);
  g_clock = std::move(clock);
}

void clear_clock() {
  std::lock_guard lock(g_mutex);
  g_clock = nullptr;
}

void write(Level lvl, const std::string& message) {
  std::lock_guard lock(g_mutex);
  if (g_clock) {
    std::fprintf(stderr, "[%10.3f] %s %s\n", g_clock(), level_name(lvl),
                 message.c_str());
  } else {
    std::fprintf(stderr, "%s %s\n", level_name(lvl), message.c_str());
  }
}

}  // namespace moon::log
