#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace moon::log {
namespace {

std::atomic<Level> g_level{Level::kOff};
std::atomic<Level> g_sink_level{Level::kOff};
std::mutex g_mutex;
std::function<double()> g_clock;  // guarded by g_mutex
Sink g_sink;                      // guarded by g_mutex

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?";
}

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }
Level level() { return g_level.load(std::memory_order_relaxed); }

void set_clock(std::function<double()> clock) {
  std::lock_guard lock(g_mutex);
  g_clock = std::move(clock);
}

void clear_clock() {
  std::lock_guard lock(g_mutex);
  g_clock = nullptr;
}

void set_sink(Sink sink, Level capture_level) {
  std::lock_guard lock(g_mutex);
  g_sink = std::move(sink);
  g_sink_level.store(g_sink ? capture_level : Level::kOff,
                     std::memory_order_relaxed);
}

void clear_sink() {
  std::lock_guard lock(g_mutex);
  g_sink = nullptr;
  g_sink_level.store(Level::kOff, std::memory_order_relaxed);
}

bool enabled(Level lvl) {
  return g_level.load(std::memory_order_relaxed) <= lvl ||
         g_sink_level.load(std::memory_order_relaxed) <= lvl;
}

void write(Level lvl, const char* component, const std::string& message,
           const Fields& fields) {
  std::lock_guard lock(g_mutex);
  if (g_level.load(std::memory_order_relaxed) <= lvl) {
    if (g_clock) {
      std::fprintf(stderr, "[%10.3f] %s %s: %s", g_clock(), level_name(lvl),
                   component, message.c_str());
    } else {
      std::fprintf(stderr, "%s %s: %s", level_name(lvl), component,
                   message.c_str());
    }
    for (const Field& f : fields) {
      std::fprintf(stderr, " %s=%s", f.key.c_str(), f.value.c_str());
    }
    std::fputc('\n', stderr);
  }
  if (g_sink && g_sink_level.load(std::memory_order_relaxed) <= lvl) {
    g_sink(lvl, component, message, fields);
  }
}

}  // namespace moon::log
