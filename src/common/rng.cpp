#include "common/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace moon {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

/// FNV-1a over a string, used to turn fork tags into seed perturbations.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

Rng Rng::fork(std::string_view tag) const { return fork(fnv1a(tag)); }

Rng Rng::fork(std::uint64_t tag) const {
  // Mix rather than add so fork(1).fork(2) != fork(2).fork(1).
  std::uint64_t mixed = seed_ ^ (tag * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL);
  return Rng{splitmix64(mixed)};
}

std::uint64_t Rng::next_u64() {
  // xoshiro256**
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t r = next_u64();
  while (r >= limit) r = next_u64();
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal_at_least(double mean, double stddev, double floor) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = normal(mean, stddev);
    if (x >= floor) return x;
  }
  return floor;  // pathological parameters; clamp rather than loop forever
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

bool Rng::chance(double probability) { return uniform() < probability; }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher–Yates: only the first k positions need shuffling.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(uniform_int(
        static_cast<std::int64_t>(i), static_cast<std::int64_t>(n - 1)));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace moon
