// Move-only type-erased `void()` callable with inline small-buffer storage.
//
// The simulation core schedules millions of short-lived closures; holding
// each one in a `std::function` costs a heap allocation per event (libstdc++
// inlines only up to 16 bytes, and most simulator captures are larger).
// `InlineFunction<N>` stores any nothrow-movable callable of up to N bytes
// directly in the owning object — the event slab keeps the closure bytes in
// the slot array itself — and falls back to the heap only for oversized
// captures. Unlike `std::function` it never requires copyability, so
// closures may own move-only state (e.g. a `std::unique_ptr`).
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace moon {

template <std::size_t N>
class InlineFunction {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Decayed = std::decay_t<F>;
    if constexpr (fits_inline<Decayed>()) {
      ::new (static_cast<void*>(buf_)) Decayed(std::forward<F>(fn));
      vt_ = &small_vtable<Decayed>;
    } else {
      ::new (static_cast<void*>(buf_))
          Decayed*(new Decayed(std::forward<F>(fn)));
      vt_ = &large_vtable<Decayed>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void operator()() {
    assert(vt_ != nullptr && "InlineFunction: invoking an empty callable");
    vt_->invoke(buf_);
  }

  [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }

  /// Destroys the held callable (no-op when empty).
  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  /// True when a callable of type F is stored in the inline buffer rather
  /// than on the heap (telemetry/tests).
  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= N && alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-constructs `dst` from `src`, then destroys `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename F>
  static constexpr VTable small_vtable{
      [](void* p) { (*std::launder(static_cast<F*>(p)))(); },
      [](void* dst, void* src) noexcept {
        F* from = std::launder(static_cast<F*>(src));
        ::new (dst) F(std::move(*from));
        from->~F();
      },
      [](void* p) noexcept { std::launder(static_cast<F*>(p))->~F(); }};

  template <typename F>
  static constexpr VTable large_vtable{
      [](void* p) { (**std::launder(static_cast<F**>(p)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) F*(*std::launder(static_cast<F**>(src)));
      },
      [](void* p) noexcept { delete *std::launder(static_cast<F**>(p)); }};

  void move_from(InlineFunction& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[N];
};

}  // namespace moon
