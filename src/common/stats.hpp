// Streaming statistics used by the metrics layer and the bench harnesses.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace moon {

/// Welford online accumulator: numerically stable mean/variance in one pass.
class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< sample variance (n-1); 0 if n<2
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator (parallel-friendly Chan et al. update).
  void merge(const Accumulator& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins. Used for availability profiles and latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_high(std::size_t bin) const;
  /// Fraction of samples in `bin` (0 if empty histogram).
  [[nodiscard]] double fraction(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Percentile over a copied, sorted sample set (exact, small-N use only).
double percentile(std::vector<double> samples, double p);

}  // namespace moon
