// Strongly-typed integer identifiers.
//
// Every entity in the simulator (nodes, blocks, files, jobs, tasks, ...) is
// referred to by an id. Using a distinct C++ type per entity prevents the
// classic bug of passing a TaskId where a NodeId is expected; ids are
// trivially copyable, hashable, and ordered so they work as map keys.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace moon {

/// CRTP-free strong id: `Tag` makes each instantiation a unique type.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint64_t;

  /// Sentinel for "no entity".
  static constexpr Id invalid() { return Id{kInvalid}; }

  constexpr Id() : value_(kInvalid) {}
  constexpr explicit Id(underlying_type value) : value_(value) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }
  friend constexpr bool operator<=(Id a, Id b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>(Id a, Id b) { return a.value_ > b.value_; }
  friend constexpr bool operator>=(Id a, Id b) { return a.value_ >= b.value_; }

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value_;
  }

 private:
  static constexpr underlying_type kInvalid = ~underlying_type{0};
  underlying_type value_;
};

/// Monotonic id factory; each instance hands out 0, 1, 2, ...
template <typename IdType>
class IdAllocator {
 public:
  IdType next() { return IdType{next_++}; }
  [[nodiscard]] std::uint64_t issued() const { return next_; }

 private:
  std::uint64_t next_ = 0;
};

struct NodeTag {};
struct FileTag {};
struct BlockTag {};
struct JobTag {};
struct TaskTag {};
struct AttemptTag {};
struct FlowTag {};
struct EventTag {};

using NodeId = Id<NodeTag>;
using FileId = Id<FileTag>;
using BlockId = Id<BlockTag>;
using JobId = Id<JobTag>;
using TaskId = Id<TaskTag>;
using AttemptId = Id<AttemptTag>;
using FlowId = Id<FlowTag>;
using EventId = Id<EventTag>;

}  // namespace moon

namespace std {
template <typename Tag>
struct hash<moon::Id<Tag>> {
  size_t operator()(moon::Id<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
