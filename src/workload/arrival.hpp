// Job arrival streams for multi-tenant scenarios (DESIGN.md §10).
//
// A JobArrivalStream turns a seeded arrival process (Poisson or fixed
// offsets) and a workload mix (sort / wordcount / sleep models, weighted or
// round-robin) into a deterministic list of (submit time, model) pairs that
// experiment::run_multi_job_scenario feeds to the JobTracker. The same
// (config, seed) always yields the same stream; trace, DFS and scheduler
// RNG streams are independent forks, so arrival draws never perturb them.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "workload/workload.hpp"

namespace moon::workload {

/// One entry of the workload mix; `weight` biases the seeded model pick
/// (entries with weight <= 0 are never chosen).
struct JobMix {
  WorkloadModel model;
  double weight = 1.0;
};

struct ArrivalConfig {
  /// kPoisson: exponential inter-arrival gaps with mean `mean_interarrival`;
  /// kFixedOffset: arrivals exactly `fixed_offset` apart.
  enum class Process { kPoisson, kFixedOffset };
  Process process = Process::kPoisson;

  /// Arrivals to generate. 0 is the open-ended sentinel: generate until
  /// `horizon` instead of a fixed count (steady-state serving streams).
  /// Negative counts are rejected.
  int num_jobs = 4;
  /// Open-ended mode only (num_jobs == 0): arrivals strictly before this
  /// sim time are generated. Must be > 0 in that mode; typically set to the
  /// scenario's max_sim_time.
  sim::Time horizon = 0;
  sim::Duration first_arrival = 60 * sim::kSecond;
  sim::Duration mean_interarrival = 120 * sim::kSecond;  ///< kPoisson
  sim::Duration fixed_offset = 120 * sim::kSecond;       ///< kFixedOffset

  /// Workload mix the stream draws from. Must be non-empty.
  std::vector<JobMix> mix;
  /// true: job i runs mix[i % mix.size()] (no draw — handy for controlled
  /// experiments); false: weighted seeded pick per arrival.
  bool round_robin_mix = false;
};

/// One arrival: submit `model` at `submit_at`.
struct JobArrival {
  int index = 0;
  sim::Time submit_at = 0;
  WorkloadModel model;
};

class JobArrivalStream {
 public:
  JobArrivalStream(ArrivalConfig config, std::uint64_t seed);

  /// The full stream, sorted by submit time (arrival times are built
  /// monotonically). Deterministic per (config, seed).
  [[nodiscard]] std::vector<JobArrival> generate() const;

 private:
  ArrivalConfig config_;
  std::uint64_t seed_;
};

}  // namespace moon::workload
