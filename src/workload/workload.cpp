#include "workload/workload.hpp"

#include <algorithm>
#include <cmath>

namespace moon::workload {

const char* to_string(AppKind kind) {
  switch (kind) {
    case AppKind::kSort: return "sort";
    case AppKind::kWordCount: return "word count";
    case AppKind::kSleepSort: return "sleep(sort)";
    case AppKind::kSleepWordCount: return "sleep(word count)";
  }
  return "?";
}

int WorkloadModel::reduces_for(int total_reduce_slots) const {
  if (fixed_reduces > 0) return fixed_reduces;
  return std::max(1, static_cast<int>(std::floor(
                         reduce_slot_fraction *
                         static_cast<double>(total_reduce_slots))));
}

Bytes WorkloadModel::output_per_reduce(int num_reduces) const {
  return std::max<Bytes>(1, total_output / std::max(1, num_reduces));
}

WorkloadModel sort_workload() {
  WorkloadModel m;
  m.name = "sort";
  m.kind = AppKind::kSort;
  m.input_size = gib(24.0);
  m.num_maps = 384;                 // 24 GB / 64 MB splits
  m.reduce_slot_fraction = 0.9;     // Table I
  m.map_compute = sim::seconds(5);  // identity map; I/O dominates
  m.reduce_compute = sim::seconds(20);
  m.intermediate_per_map = mib(64.0);  // sort shuffles its full input
  m.total_output = gib(24.0);
  m.input_block_bytes = mib(64.0);
  return m;
}

WorkloadModel wordcount_workload() {
  WorkloadModel m;
  m.name = "word count";
  m.kind = AppKind::kWordCount;
  m.input_size = gib(20.0);
  m.num_maps = 320;  // 20 GB / 64 MB splits
  m.fixed_reduces = 20;
  m.map_compute = sim::seconds(90);  // tokenising dominates (Table II ~100 s)
  m.reduce_compute = sim::seconds(25);
  m.intermediate_per_map = mib(1.3);  // pre-aggregated counts: ~2% of split
  m.total_output = mib(100.0);
  m.input_block_bytes = mib(64.0);
  return m;
}

WorkloadModel sleep_of(const WorkloadModel& base) {
  WorkloadModel m = base;
  m.name = "sleep(" + base.name + ")";
  m.kind = base.kind == AppKind::kSort ? AppKind::kSleepSort
                                       : AppKind::kSleepWordCount;
  // Faithful task durations: the full measured task time becomes compute
  // (the paper feeds measured averages from benchmarking runs into sleep;
  // reduce times include the shuffle+sort+reduce span, cf. Table II).
  m.map_compute = base.kind == AppKind::kSort ? sim::seconds(21)
                                              : sim::seconds(100);
  m.reduce_compute = base.kind == AppKind::kSort ? sim::seconds(120)
                                                 : sim::seconds(40);
  // "Two integers per record of intermediate and zero output data."
  m.input_size = static_cast<Bytes>(m.num_maps) * kKiB;
  m.input_block_bytes = kKiB;
  m.intermediate_per_map = 2 * kKiB;
  m.total_output = 1;
  return m;
}

mapred::JobSpec make_job_spec(const WorkloadModel& model, FileId input_file,
                              int total_reduce_slots,
                              dfs::FileKind intermediate_kind,
                              dfs::ReplicationFactor intermediate_factor,
                              dfs::ReplicationFactor output_factor) {
  mapred::JobSpec spec;
  spec.name = model.name;
  spec.num_maps = model.num_maps;
  spec.num_reduces = model.reduces_for(total_reduce_slots);
  spec.input_file = input_file;
  spec.intermediate_per_map = std::max<Bytes>(1, model.intermediate_per_map);
  spec.output_per_reduce = model.output_per_reduce(spec.num_reduces);
  spec.map_compute = model.map_compute;
  spec.reduce_compute = model.reduce_compute;
  spec.compute_jitter = model.compute_jitter;
  spec.intermediate_kind = intermediate_kind;
  spec.intermediate_factor = intermediate_factor;
  spec.output_factor = output_factor;
  spec.deadline = model.deadline;
  spec.priority = model.priority;
  return spec;
}

}  // namespace moon::workload
