#include "workload/arrival.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"

namespace moon::workload {

JobArrivalStream::JobArrivalStream(ArrivalConfig config, std::uint64_t seed)
    : config_(std::move(config)), seed_(seed) {
  if (config_.mix.empty()) {
    throw std::invalid_argument("JobArrivalStream: empty workload mix");
  }
  double total = 0.0;
  for (const JobMix& m : config_.mix) {
    if (m.weight > 0.0) total += m.weight;
  }
  if (!config_.round_robin_mix && total <= 0.0) {
    throw std::invalid_argument("JobArrivalStream: no positive mix weight");
  }
}

std::vector<JobArrival> JobArrivalStream::generate() const {
  // Two independent streams so changing the arrival process never perturbs
  // the model picks (and vice versa).
  Rng gap_rng = Rng{seed_}.fork("arrival-gaps");
  Rng mix_rng = Rng{seed_}.fork("arrival-mix");

  double weight_total = 0.0;
  for (const JobMix& m : config_.mix) {
    if (m.weight > 0.0) weight_total += m.weight;
  }

  const auto pick_model = [&](int index) -> const WorkloadModel& {
    if (config_.round_robin_mix) {
      return config_.mix[static_cast<std::size_t>(index) % config_.mix.size()]
          .model;
    }
    double point = mix_rng.uniform() * weight_total;
    const WorkloadModel* last_positive = nullptr;
    for (const JobMix& m : config_.mix) {
      if (m.weight <= 0.0) continue;
      last_positive = &m.model;
      point -= m.weight;
      if (point < 0.0) return m.model;
    }
    // fp rounding can leave point at exactly 0.0; the fallback must still
    // honour the "weight <= 0 is never chosen" guarantee.
    return *last_positive;
  };

  std::vector<JobArrival> out;
  out.reserve(static_cast<std::size_t>(std::max(0, config_.num_jobs)));
  sim::Time t = config_.first_arrival;
  for (int i = 0; i < config_.num_jobs; ++i) {
    if (i > 0) {
      if (config_.process == ArrivalConfig::Process::kPoisson) {
        const double gap_s =
            gap_rng.exponential(sim::to_seconds(config_.mean_interarrival));
        t += std::max<sim::Duration>(sim::kMicrosecond, sim::seconds(gap_s));
      } else {
        t += std::max<sim::Duration>(sim::kMicrosecond, config_.fixed_offset);
      }
    }
    JobArrival arrival;
    arrival.index = i;
    arrival.submit_at = t;
    arrival.model = pick_model(i);
    out.push_back(std::move(arrival));
  }
  return out;
}

}  // namespace moon::workload
