#include "workload/arrival.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"

namespace moon::workload {

JobArrivalStream::JobArrivalStream(ArrivalConfig config, std::uint64_t seed)
    : config_(std::move(config)), seed_(seed) {
  if (config_.mix.empty()) {
    throw std::invalid_argument("JobArrivalStream: empty workload mix");
  }
  double total = 0.0;
  for (const JobMix& m : config_.mix) {
    if (m.weight > 0.0) total += m.weight;
  }
  if (!config_.round_robin_mix && total <= 0.0) {
    throw std::invalid_argument("JobArrivalStream: no positive mix weight");
  }
  if (config_.num_jobs < 0) {
    throw std::invalid_argument("JobArrivalStream: negative num_jobs");
  }
  if (config_.num_jobs == 0) {
    // Open-ended mode: the generate loop must terminate, so the horizon has
    // to be finite and every gap strictly positive in expectation.
    if (config_.horizon <= 0) {
      throw std::invalid_argument(
          "JobArrivalStream: open-ended stream (num_jobs == 0) needs a "
          "positive horizon");
    }
    if (config_.process == ArrivalConfig::Process::kPoisson &&
        config_.mean_interarrival <= 0) {
      throw std::invalid_argument(
          "JobArrivalStream: open-ended Poisson stream needs a positive "
          "mean_interarrival");
    }
  }
}

std::vector<JobArrival> JobArrivalStream::generate() const {
  // Two independent streams so changing the arrival process never perturbs
  // the model picks (and vice versa).
  Rng gap_rng = Rng{seed_}.fork("arrival-gaps");
  Rng mix_rng = Rng{seed_}.fork("arrival-mix");

  double weight_total = 0.0;
  for (const JobMix& m : config_.mix) {
    if (m.weight > 0.0) weight_total += m.weight;
  }

  const auto pick_model = [&](int index) -> const WorkloadModel& {
    if (config_.round_robin_mix) {
      return config_.mix[static_cast<std::size_t>(index) % config_.mix.size()]
          .model;
    }
    double point = mix_rng.uniform() * weight_total;
    const WorkloadModel* last_positive = nullptr;
    for (const JobMix& m : config_.mix) {
      if (m.weight <= 0.0) continue;
      last_positive = &m.model;
      point -= m.weight;
      if (point < 0.0) return m.model;
    }
    // fp rounding can leave point at exactly 0.0; the fallback must still
    // honour the "weight <= 0 is never chosen" guarantee.
    return *last_positive;
  };

  const auto next_gap = [&]() -> sim::Duration {
    if (config_.process == ArrivalConfig::Process::kPoisson) {
      const double gap_s =
          gap_rng.exponential(sim::to_seconds(config_.mean_interarrival));
      return std::max<sim::Duration>(sim::kMicrosecond, sim::seconds(gap_s));
    }
    return std::max<sim::Duration>(sim::kMicrosecond, config_.fixed_offset);
  };

  // Closed mode draws exactly num_jobs - 1 gaps (none after the last
  // arrival), preserving the historical draw sequence; open-ended mode
  // (num_jobs == 0) keeps generating until the next arrival would land at
  // or past the horizon.
  const bool open_ended = config_.num_jobs == 0;
  std::vector<JobArrival> out;
  if (!open_ended) out.reserve(static_cast<std::size_t>(config_.num_jobs));
  sim::Time t = config_.first_arrival;
  int i = 0;
  while (open_ended ? t < config_.horizon : i < config_.num_jobs) {
    JobArrival arrival;
    arrival.index = i;
    arrival.submit_at = t;
    arrival.model = pick_model(i);
    out.push_back(std::move(arrival));
    ++i;
    if (!open_ended && i >= config_.num_jobs) break;
    t += next_gap();
  }
  return out;
}

}  // namespace moon::workload
