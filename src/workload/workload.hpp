// Workload models for the paper's applications (Table I).
//
//   | Application | Input | #Maps | #Reduces          |
//   | sort        | 24 GB | 384   | 0.9 x AvailSlots  |
//   | word count  | 20 GB | 320   | 20                |
//
// Plus `sleep`, which replays an application's measured map/reduce service
// times while moving almost no data (used in §VI-A to isolate scheduling).
//
// Data volumes and compute times are calibrated against the System-X
// profiles in Table II (see DESIGN.md §6); absolute values are approximate,
// relative behaviour is what the experiments reproduce.
#pragma once

#include <string>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "mapred/types.hpp"

namespace moon::workload {

enum class AppKind { kSort, kWordCount, kSleepSort, kSleepWordCount };

const char* to_string(AppKind kind);

struct WorkloadModel {
  std::string name;
  AppKind kind = AppKind::kSort;

  Bytes input_size = 0;
  int num_maps = 0;
  /// Fixed reduce count; 0 means "use reduce_slot_fraction".
  int fixed_reduces = 0;
  /// Fraction of the cluster's reduce slots (sort: 0.9).
  double reduce_slot_fraction = 0.0;

  sim::Duration map_compute = 0;
  sim::Duration reduce_compute = 0;
  double compute_jitter = 0.1;

  Bytes intermediate_per_map = 0;
  Bytes total_output = 0;

  /// Block layout of the staged input (sleep uses tiny per-map blocks).
  Bytes input_block_bytes = mib(64.0);

  /// Relative SLA deadline carried into JobSpec::deadline (0 = none); the
  /// multi-job harness anchors it at the job's *arrival* time.
  sim::Duration deadline = 0;
  /// Admission priority carried into JobSpec::priority (higher = keep).
  int priority = 0;

  [[nodiscard]] int reduces_for(int total_reduce_slots) const;
  [[nodiscard]] Bytes output_per_reduce(int num_reduces) const;
};

/// Table I `sort`: shuffle-heavy — intermediate data == input data.
WorkloadModel sort_workload();

/// Table I `word count`: compute-heavy maps, tiny intermediate data.
WorkloadModel wordcount_workload();

/// §VI-A `sleep`: faithful service times of `base`, but "only [an]
/// insignificant amount of intermediate and output data (two integers per
/// record of intermediate and zero output data)".
WorkloadModel sleep_of(const WorkloadModel& base);

/// Builds the JobSpec for a model (input must already be staged with one
/// block per map; reduces resolved against the cluster's slot count).
mapred::JobSpec make_job_spec(const WorkloadModel& model, FileId input_file,
                              int total_reduce_slots,
                              dfs::FileKind intermediate_kind,
                              dfs::ReplicationFactor intermediate_factor,
                              dfs::ReplicationFactor output_factor);

}  // namespace moon::workload
