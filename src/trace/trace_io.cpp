#include "trace/trace_io.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace moon::trace {

void write_fleet_csv(std::ostream& os, const std::vector<AvailabilityTrace>& fleet) {
  const sim::Duration horizon = fleet.empty() ? 0 : fleet.front().horizon();
  os << "# horizon_us=" << horizon << " nodes=" << fleet.size() << '\n';
  os << "node,begin_us,end_us\n";
  for (std::size_t n = 0; n < fleet.size(); ++n) {
    for (const auto& iv : fleet[n].down_intervals()) {
      os << n << ',' << iv.begin << ',' << iv.end << '\n';
    }
  }
}

std::vector<AvailabilityTrace> read_fleet_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line.rfind("# horizon_us=", 0) != 0) {
    throw std::runtime_error("trace csv: missing header");
  }
  sim::Duration horizon = 0;
  std::size_t nodes = 0;
  {
    std::istringstream hs(line);
    std::string tok;
    hs >> tok;  // '#'
    while (hs >> tok) {
      if (tok.rfind("horizon_us=", 0) == 0) horizon = std::stoll(tok.substr(11));
      if (tok.rfind("nodes=", 0) == 0) nodes = std::stoull(tok.substr(6));
    }
  }
  if (horizon <= 0) throw std::runtime_error("trace csv: bad horizon");
  if (!std::getline(is, line)) throw std::runtime_error("trace csv: missing columns");

  std::map<std::size_t, std::vector<Interval>> per_node;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string cell;
    std::size_t node = 0;
    Interval iv;
    if (!std::getline(ls, cell, ',')) throw std::runtime_error("trace csv: bad row");
    node = std::stoull(cell);
    if (!std::getline(ls, cell, ',')) throw std::runtime_error("trace csv: bad row");
    iv.begin = std::stoll(cell);
    if (!std::getline(ls, cell, ',')) throw std::runtime_error("trace csv: bad row");
    iv.end = std::stoll(cell);
    per_node[node].push_back(iv);
  }

  std::vector<AvailabilityTrace> fleet;
  fleet.reserve(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    auto it = per_node.find(n);
    fleet.emplace_back(horizon,
                       it == per_node.end() ? std::vector<Interval>{} : it->second);
  }
  return fleet;
}

void save_fleet(const std::string& path, const std::vector<AvailabilityTrace>& fleet) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("trace csv: cannot open " + path);
  write_fleet_csv(os, fleet);
}

std::vector<AvailabilityTrace> load_fleet(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("trace csv: cannot open " + path);
  return read_fleet_csv(is);
}

}  // namespace moon::trace
