// Fleet-level trace analysis (reproduces Figure 1's measurement).
//
// The paper plots, for each day-long trace, the percentage of unavailable
// resources sampled in 10-minute intervals. `UnavailabilityProfile` computes
// the same series for a fleet of synthetic traces.
#pragma once

#include <cstddef>
#include <vector>

#include "common/time.hpp"
#include "trace/availability_trace.hpp"

namespace moon::trace {

struct ProfilePoint {
  sim::Time at;                ///< sample instant
  double percent_unavailable;  ///< 0..100
};

class UnavailabilityProfile {
 public:
  /// Samples the fleet every `bin` (default 10 min, as in Figure 1).
  static std::vector<ProfilePoint> compute(
      const std::vector<AvailabilityTrace>& fleet,
      sim::Duration bin = 10 * sim::kMinute);

  /// Average fraction of unavailable nodes across the whole horizon
  /// (time-weighted, exact).
  static double average_unavailability(const std::vector<AvailabilityTrace>& fleet);

  /// Maximum instantaneous unavailability over the sampled points.
  static double peak_unavailability(const std::vector<AvailabilityTrace>& fleet,
                                    sim::Duration bin = 10 * sim::kMinute);
};

/// Summary of outage lengths across a fleet (validates the generator against
/// the configured distribution).
struct OutageSummary {
  std::size_t count = 0;
  double mean_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
};

OutageSummary summarize_outages(const std::vector<AvailabilityTrace>& fleet);

}  // namespace moon::trace
