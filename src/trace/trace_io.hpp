// Trace persistence.
//
// Fleet traces serialise to a simple CSV (`node,begin_us,end_us`) so
// experiments can be re-run against pinned inputs and traces can be
// inspected with standard tools.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/availability_trace.hpp"

namespace moon::trace {

/// Writes a fleet to CSV. First line is a header carrying the horizon:
/// `# horizon_us=<n> nodes=<k>`.
void write_fleet_csv(std::ostream& os, const std::vector<AvailabilityTrace>& fleet);

/// Parses a fleet written by `write_fleet_csv`. Throws std::runtime_error on
/// malformed input.
std::vector<AvailabilityTrace> read_fleet_csv(std::istream& is);

/// File-path conveniences.
void save_fleet(const std::string& path, const std::vector<AvailabilityTrace>& fleet);
std::vector<AvailabilityTrace> load_fleet(const std::string& path);

}  // namespace moon::trace
