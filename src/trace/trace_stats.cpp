#include "trace/trace_stats.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace moon::trace {

std::vector<ProfilePoint> UnavailabilityProfile::compute(
    const std::vector<AvailabilityTrace>& fleet, sim::Duration bin) {
  std::vector<ProfilePoint> points;
  if (fleet.empty() || bin <= 0) return points;
  const sim::Duration horizon = fleet.front().horizon();
  for (sim::Time t = 0; t < horizon; t += bin) {
    std::size_t down = 0;
    for (const auto& tr : fleet) {
      if (!tr.available_at(t)) ++down;
    }
    points.push_back(ProfilePoint{
        t, 100.0 * static_cast<double>(down) / static_cast<double>(fleet.size())});
  }
  return points;
}

double UnavailabilityProfile::average_unavailability(
    const std::vector<AvailabilityTrace>& fleet) {
  if (fleet.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& tr : fleet) sum += tr.unavailability_fraction();
  return sum / static_cast<double>(fleet.size());
}

double UnavailabilityProfile::peak_unavailability(
    const std::vector<AvailabilityTrace>& fleet, sim::Duration bin) {
  double peak = 0.0;
  for (const auto& pt : compute(fleet, bin)) {
    peak = std::max(peak, pt.percent_unavailable / 100.0);
  }
  return peak;
}

OutageSummary summarize_outages(const std::vector<AvailabilityTrace>& fleet) {
  OutageSummary summary;
  Accumulator acc;
  for (const auto& tr : fleet) {
    for (const auto& iv : tr.down_intervals()) {
      acc.add(sim::to_seconds(iv.length()));
    }
  }
  summary.count = acc.count();
  summary.mean_seconds = acc.mean();
  summary.min_seconds = acc.min();
  summary.max_seconds = acc.max();
  return summary;
}

}  // namespace moon::trace
