#include "trace/correlated.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace moon::trace {

CorrelatedTraceGenerator::CorrelatedTraceGenerator(CorrelatedConfig config)
    : config_(config) {
  if (config_.correlated_fraction < 0.0 || config_.correlated_fraction > 1.0) {
    throw std::logic_error("CorrelatedTraceGenerator: fraction out of range");
  }
  if (config_.group_size == 0) {
    throw std::logic_error("CorrelatedTraceGenerator: zero group size");
  }
  if (config_.group_event_mean_s <= 0.0 || config_.group_event_min_s <= 0.0) {
    throw std::logic_error("CorrelatedTraceGenerator: bad group event length");
  }
}

std::vector<Interval> CorrelatedTraceGenerator::group_events(Rng& rng) const {
  const auto horizon = config_.base.horizon;
  const double target_rate =
      config_.base.unavailability_rate * config_.correlated_fraction;
  const auto target_down =
      static_cast<sim::Duration>(target_rate * static_cast<double>(horizon));
  if (target_down <= 0) return {};

  // Same construction as the base generator, with lab-session lengths.
  std::vector<sim::Duration> outages;
  sim::Duration down_sum = 0;
  while (down_sum < target_down) {
    const double len_s =
        rng.normal_at_least(config_.group_event_mean_s,
                            config_.group_event_stddev_s,
                            config_.group_event_min_s);
    auto len = static_cast<sim::Duration>(sim::seconds(len_s));
    if (down_sum + len > target_down) len = target_down - down_sum;
    if (len <= 0) break;
    outages.push_back(len);
    down_sum += len;
  }

  const sim::Duration up_total = horizon - down_sum;
  std::vector<double> weights(outages.size() + 1);
  double weight_sum = 0.0;
  for (auto& w : weights) {
    w = rng.exponential(1.0);
    weight_sum += w;
  }

  std::vector<Interval> events;
  sim::Time cursor = 0;
  for (std::size_t i = 0; i < outages.size(); ++i) {
    cursor += static_cast<sim::Duration>(static_cast<double>(up_total) *
                                         weights[i] / weight_sum);
    const sim::Time begin = cursor;
    const sim::Time end = std::min<sim::Time>(begin + outages[i], horizon);
    if (begin < end) events.push_back(Interval{begin, end});
    cursor = end;
  }
  return events;
}

std::vector<AvailabilityTrace> CorrelatedTraceGenerator::generate_fleet(
    Rng& rng, std::size_t n) const {
  // Individual share, over-provisioned against expected overlap with group
  // events: an individual outage lands inside a group outage with
  // probability ~ group_rate, contributing nothing new.
  const double group_rate =
      config_.base.unavailability_rate * config_.correlated_fraction;
  double individual_rate =
      config_.base.unavailability_rate * (1.0 - config_.correlated_fraction);
  if (group_rate < 1.0) individual_rate /= (1.0 - group_rate);
  individual_rate = std::min(individual_rate, 0.95);

  GeneratorConfig individual_cfg = config_.base;
  individual_cfg.unavailability_rate = individual_rate;
  TraceGenerator individual(individual_cfg);

  const std::size_t groups = (n + config_.group_size - 1) / config_.group_size;
  std::vector<std::vector<Interval>> lab_events;
  lab_events.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    Rng group_rng = rng.fork("group").fork(g);
    lab_events.push_back(group_events(group_rng));
  }

  std::vector<AvailabilityTrace> fleet;
  fleet.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Rng node_rng = rng.fork("node").fork(i);
    auto intervals = lab_events[i / config_.group_size];
    if (individual_rate > 0.0) {
      const auto own = individual.generate(node_rng);
      intervals.insert(intervals.end(), own.down_intervals().begin(),
                       own.down_intervals().end());
    }
    // AvailabilityTrace coalesces the union.
    fleet.emplace_back(config_.base.horizon, std::move(intervals));
  }
  return fleet;
}

}  // namespace moon::trace
