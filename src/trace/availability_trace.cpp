#include "trace/availability_trace.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace moon::trace {

AvailabilityTrace::AvailabilityTrace(sim::Duration horizon,
                                     std::vector<Interval> down)
    : horizon_(horizon) {
  if (horizon <= 0) throw std::logic_error("AvailabilityTrace: non-positive horizon");
  for (auto& iv : down) {
    if (iv.begin < 0 || iv.end > horizon || iv.begin >= iv.end) {
      throw std::logic_error("AvailabilityTrace: interval outside horizon");
    }
  }
  std::sort(down.begin(), down.end(),
            [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
  // Coalesce overlapping or touching intervals.
  for (const auto& iv : down) {
    if (!down_.empty() && iv.begin <= down_.back().end) {
      down_.back().end = std::max(down_.back().end, iv.end);
    } else {
      down_.push_back(iv);
    }
  }
}

AvailabilityTrace AvailabilityTrace::always_available(sim::Duration horizon) {
  return AvailabilityTrace{horizon, {}};
}

bool AvailabilityTrace::available_at(sim::Time t) const {
  if (t < 0) return true;
  const sim::Time wrapped = t % horizon_;
  // First interval with end > wrapped; node is down iff it also begins <= t.
  auto it = std::upper_bound(
      down_.begin(), down_.end(), wrapped,
      [](sim::Time value, const Interval& iv) { return value < iv.end; });
  return it == down_.end() || it->begin > wrapped;
}

sim::Duration AvailabilityTrace::total_down_time() const {
  sim::Duration total = 0;
  for (const auto& iv : down_) total += iv.length();
  return total;
}

double AvailabilityTrace::unavailability_fraction() const {
  return static_cast<double>(total_down_time()) / static_cast<double>(horizon_);
}

}  // namespace moon::trace
