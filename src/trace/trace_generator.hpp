// Synthetic availability-trace generation (paper §VI).
//
// "We assume that node outage is mutually independent and generate
//  unavailable intervals using a normal distribution, with the mean
//  node-outage interval (409 seconds) extracted from the Entropia volunteer
//  computing node trace. The unavailable intervals are then inserted into
//  8-hour traces following a Poisson distribution such that in each trace,
//  the percentage of unavailable time is equal to a given node
//  unavailability rate."
//
// Implementation: outage durations are drawn i.i.d. from a truncated normal
// until their sum reaches rate × horizon (the final outage is trimmed so the
// rate is met *exactly*); the remaining up-time is split into exponential
// gaps (the inter-arrival structure of a Poisson process), normalised to fit
// the horizon.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "trace/availability_trace.hpp"

namespace moon::trace {

struct GeneratorConfig {
  sim::Duration horizon = sim::hours(8);
  /// Fraction of the horizon each node spends unavailable (paper sweeps
  /// 0.1 / 0.3 / 0.5).
  double unavailability_rate = 0.4;
  /// Outage-length distribution (seconds); mean 409 s is from [7]. The
  /// deviation is wide (and the normal is truncated below at `min`): real
  /// desktop-grid outages mix many brief owner interruptions with a tail of
  /// long absences, and the long tail is what distinguishes patience-based
  /// expiry policies from aggressive ones.
  double mean_outage_s = 409.0;
  double stddev_outage_s = 500.0;
  double min_outage_s = 30.0;
};

class TraceGenerator {
 public:
  explicit TraceGenerator(GeneratorConfig config);

  /// One node's 8-hour availability trace.
  [[nodiscard]] AvailabilityTrace generate(Rng& rng) const;

  /// Independent traces for `n` nodes (node outage is mutually independent).
  [[nodiscard]] std::vector<AvailabilityTrace> generate_fleet(Rng& rng,
                                                              std::size_t n) const;

  [[nodiscard]] const GeneratorConfig& config() const { return config_; }

 private:
  GeneratorConfig config_;
};

}  // namespace moon::trace
