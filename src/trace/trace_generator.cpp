#include "trace/trace_generator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace moon::trace {

TraceGenerator::TraceGenerator(GeneratorConfig config) : config_(config) {
  if (config_.horizon <= 0) throw std::logic_error("TraceGenerator: bad horizon");
  if (config_.unavailability_rate < 0.0 || config_.unavailability_rate >= 1.0) {
    throw std::logic_error("TraceGenerator: rate must be in [0, 1)");
  }
  if (config_.mean_outage_s <= 0.0 || config_.min_outage_s <= 0.0) {
    throw std::logic_error("TraceGenerator: outage lengths must be positive");
  }
}

AvailabilityTrace TraceGenerator::generate(Rng& rng) const {
  const auto horizon = config_.horizon;
  if (config_.unavailability_rate == 0.0) {
    return AvailabilityTrace::always_available(horizon);
  }

  const auto target_down = static_cast<sim::Duration>(
      config_.unavailability_rate * static_cast<double>(horizon));

  // 1. Draw outage durations until the budget is met; trim the last one.
  std::vector<sim::Duration> outages;
  sim::Duration down_sum = 0;
  while (down_sum < target_down) {
    const double len_s = rng.normal_at_least(
        config_.mean_outage_s, config_.stddev_outage_s, config_.min_outage_s);
    auto len = static_cast<sim::Duration>(sim::seconds(len_s));
    if (down_sum + len > target_down) len = target_down - down_sum;
    if (len <= 0) break;
    outages.push_back(len);
    down_sum += len;
  }

  // 2. Distribute the up-time into k+1 exponential gaps (Poisson spacing),
  //    scaled so gaps + outages fill the horizon exactly.
  const sim::Duration up_total = horizon - down_sum;
  const std::size_t gaps = outages.size() + 1;
  std::vector<double> weights(gaps);
  double weight_sum = 0.0;
  for (auto& w : weights) {
    w = rng.exponential(1.0);
    weight_sum += w;
  }

  std::vector<Interval> down;
  down.reserve(outages.size());
  sim::Time cursor = 0;
  double carry = 0.0;  // fractional µs carried between gaps
  for (std::size_t i = 0; i < outages.size(); ++i) {
    const double exact_gap =
        static_cast<double>(up_total) * weights[i] / weight_sum + carry;
    const auto gap = static_cast<sim::Duration>(exact_gap);
    carry = exact_gap - static_cast<double>(gap);
    cursor += gap;
    const sim::Time begin = cursor;
    sim::Time end = begin + outages[i];
    end = std::min<sim::Time>(end, horizon);
    if (begin < end) down.push_back(Interval{begin, end});
    cursor = end;
  }

  return AvailabilityTrace{horizon, std::move(down)};
}

std::vector<AvailabilityTrace> TraceGenerator::generate_fleet(
    Rng& rng, std::size_t n) const {
  std::vector<AvailabilityTrace> fleet;
  fleet.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Rng node_rng = rng.fork(i);
    fleet.push_back(generate(node_rng));
  }
  return fleet;
}

}  // namespace moon::trace
