// Correlated availability traces.
//
// §III motivates MOON with "large-scale, correlated resource inaccessibility
// can be normal. For instance, many machines in a computer lab will be
// occupied simultaneously during a lab session." The base generator draws
// independent per-node outages; this one composes each node's trace from
//
//   * group events — lab-session-style outages shared by every node in the
//     same group (labs of `group_size` machines), and
//   * individual events — the §VI per-node background outages,
//
// split so that `correlated_fraction` of the target downtime comes from
// group events. Overlap between the two sources makes the realised per-node
// rate land slightly below the target; the generator compensates by
// over-provisioning the individual share against the expected overlap.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "trace/trace_generator.hpp"

namespace moon::trace {

struct CorrelatedConfig {
  /// Base parameters; `unavailability_rate` is the combined target.
  GeneratorConfig base;
  /// Fraction of downtime delivered by group (lab) events, in [0, 1].
  double correlated_fraction = 0.5;
  /// Nodes per lab; the fleet is partitioned into ceil(n / group_size) labs.
  std::size_t group_size = 10;
  /// Lab-session length distribution (seconds).
  double group_event_mean_s = 3600.0;
  double group_event_stddev_s = 900.0;
  double group_event_min_s = 600.0;
};

class CorrelatedTraceGenerator {
 public:
  explicit CorrelatedTraceGenerator(CorrelatedConfig config);

  /// Traces for `n` nodes; nodes [0, group_size) share lab 0, etc.
  [[nodiscard]] std::vector<AvailabilityTrace> generate_fleet(Rng& rng,
                                                              std::size_t n) const;

  [[nodiscard]] const CorrelatedConfig& config() const { return config_; }

 private:
  /// One lab's shared outage intervals.
  [[nodiscard]] std::vector<Interval> group_events(Rng& rng) const;

  CorrelatedConfig config_;
};

}  // namespace moon::trace
