// Per-node availability traces.
//
// A trace is a sorted list of disjoint *down* intervals within a fixed
// horizon; the node is up everywhere else. Traces drive the cluster's
// availability transitions and are also analysed directly (Figure 1).
#pragma once

#include <vector>

#include "common/time.hpp"

namespace moon::trace {

/// Half-open interval [begin, end) of simulated time during which a node is
/// unavailable.
struct Interval {
  sim::Time begin = 0;
  sim::Time end = 0;

  [[nodiscard]] sim::Duration length() const { return end - begin; }
  friend bool operator==(const Interval&, const Interval&) = default;
};

class AvailabilityTrace {
 public:
  /// `down` intervals must lie within [0, horizon); they are sorted and
  /// merged on construction (overlapping/adjacent intervals coalesce).
  AvailabilityTrace(sim::Duration horizon, std::vector<Interval> down);

  /// A trace with no outages (dedicated nodes).
  static AvailabilityTrace always_available(sim::Duration horizon);

  [[nodiscard]] sim::Duration horizon() const { return horizon_; }
  [[nodiscard]] const std::vector<Interval>& down_intervals() const { return down_; }

  /// Is the node up at time `t`? Times beyond the horizon repeat the trace
  /// cyclically (jobs occasionally run past 8 h in high-volatility sweeps).
  [[nodiscard]] bool available_at(sim::Time t) const;

  /// Total down time / horizon.
  [[nodiscard]] double unavailability_fraction() const;

  [[nodiscard]] sim::Duration total_down_time() const;

  /// Number of distinct outages.
  [[nodiscard]] std::size_t outage_count() const { return down_.size(); }

 private:
  sim::Duration horizon_;
  std::vector<Interval> down_;
};

}  // namespace moon::trace
