// Fault-injection configuration (see DESIGN.md §13).
//
// Five independently-switchable fault classes sit behind one master
// `enabled` flag. Everything defaults off: a default-constructed FaultConfig
// is the zero-perturbation configuration — no FaultInjector is constructed,
// no RNG stream is forked, and runs are bit-identical to a build that never
// had the subsystem. Each class draws from its own child RNG stream, so
// enabling one class never shifts the draws (and hence the injected
// schedule) of another.
#pragma once

#include <cstddef>

#include "common/time.hpp"

namespace moon::faults {

struct FaultConfig {
  /// Master switch. When false the Environment builds no injector at all.
  bool enabled = false;

  /// (a) Correlated outages: volatile nodes are grouped into labs/racks and
  /// whole groups power-cycle together, layered on top of the per-node
  /// availability traces (a trace-up node inside a cycling lab is down).
  struct Outages {
    bool enabled = false;
    std::size_t group_size = 8;      ///< nodes per lab/rack group
    double group_fraction = 0.5;     ///< fraction of groups subject to cycles
    sim::Duration mean_interval = 1 * sim::kHour;  ///< exp. time between cycles
    sim::Duration mean_outage = 10 * sim::kMinute; ///< exp. outage length
    sim::Duration min_outage = 30 * sim::kSecond;
  } outages;

  /// (b) Heartbeat loss/delay between TaskTracker and JobTracker: exercises
  /// suspension, expiry, speculation, and checkpoint-resume through message
  /// failure rather than node failure.
  struct Heartbeats {
    bool enabled = false;
    double drop_probability = 0.0;
    double delay_probability = 0.0;
    sim::Duration mean_delay = 4 * sim::kSecond;   ///< exponential
    sim::Duration max_delay = 30 * sim::kSecond;
  } heartbeats;

  /// (c) Storage faults: replicas landed by writes/repairs are silently
  /// corrupted (caught by checksum-on-read, driving replica eviction and
  /// re-replication) or rejected outright (disk-full; the replica never
  /// lands and the block closes under-factor). Checkpoint log writes go
  /// through the same paths, so checkpoint fallback is exercised for free.
  struct Storage {
    bool enabled = false;
    double corrupt_probability = 0.0;
    double reject_probability = 0.0;
  } storage;

  /// (d) Straggler injection: a seeded subset of volatile nodes runs with
  /// degraded NIC/disk capacity for the whole run.
  struct Stragglers {
    bool enabled = false;
    double fraction = 0.1;           ///< of volatile nodes degraded
    double capacity_factor = 0.25;   ///< degraded nodes' capacity multiplier
  } stragglers;

  /// (e) Master crashes: the NameNode and/or JobTracker become first-class
  /// failure domains (DESIGN.md §14). Each selected master gets a seeded
  /// crash schedule (exponential inter-crash gaps and downtimes, drawn
  /// upfront from the master RNG stream); while down, callers park behind
  /// retry/backoff shims and heartbeats are dropped deterministically.
  /// Recovery replays the `src/recovery/` journal, triggers a
  /// re-registration storm, and runs a mandatory auditor sweep.
  struct MasterCrash {
    bool enabled = false;
    bool namenode = true;     ///< crash the NameNode
    bool jobtracker = true;   ///< crash the JobTracker
    sim::Duration mean_interval = 30 * sim::kMinute;  ///< exp. gap to next crash
    sim::Duration min_interval = 30 * sim::kSecond;
    sim::Duration mean_downtime = 2 * sim::kMinute;   ///< exp. outage length
    sim::Duration min_downtime = 15 * sim::kSecond;
    int max_crashes = 4;      ///< per master, per run
    /// Journal snapshot cadence while the subsystem is on.
    sim::Duration snapshot_interval = 60 * sim::kSecond;
  } master_crash;

  /// Invariant-auditor cadence (0 disables). The auditor is read-only and
  /// rides along with the fault config because chaos runs are where it earns
  /// its keep, but it can be constructed standalone in tests.
  sim::Duration audit_interval = 0;

  [[nodiscard]] bool any() const {
    return enabled && (outages.enabled || heartbeats.enabled ||
                       storage.enabled || stragglers.enabled ||
                       master_crash.enabled);
  }
};

}  // namespace moon::faults
