#include "faults/fault_injector.hpp"

#include <algorithm>
#include <utility>
#include <string>

#include "common/log.hpp"
#include "dfs/dfs.hpp"
#include "mapred/jobtracker.hpp"
#include "obs/trace.hpp"

namespace moon::faults {
namespace {

/// Exponential draw in integer microseconds, floored at `min` (never 0 so
/// rescheduling loops always advance the clock).
sim::Duration exp_duration(Rng& rng, sim::Duration mean, sim::Duration min) {
  const auto d = static_cast<sim::Duration>(
      rng.exponential(static_cast<double>(mean)));
  return std::max<sim::Duration>({d, min, 1});
}

}  // namespace

FaultInjector::FaultInjector(sim::Simulation& sim, cluster::Cluster& cluster,
                             FaultConfig config, std::uint64_t seed)
    : sim_(sim),
      cluster_(cluster),
      config_(config),
      // One fork per class: tuning or disabling one class leaves the draw
      // sequences — and hence the injected schedules — of the others intact.
      outage_rng_(Rng{seed}.fork("faults.outage")),
      heartbeat_rng_(Rng{seed}.fork("faults.heartbeat")),
      storage_rng_(Rng{seed}.fork("faults.storage")),
      straggler_rng_(Rng{seed}.fork("faults.straggler")),
      master_rng_(Rng{seed}.fork("faults.master")) {}

FaultInjector::~FaultInjector() {
  if (sim_.faults() == this) sim_.set_faults(nullptr);
}

void FaultInjector::arm(const std::vector<NodeId>& volatile_ids) {
  if (armed_) return;
  armed_ = true;
  sim_.set_faults(this);

  if (config_.outages.enabled && !volatile_ids.empty()) {
    // Chunk the fleet (in id order) into labs, then draw which labs cycle.
    const std::size_t size = std::max<std::size_t>(1, config_.outages.group_size);
    std::vector<std::vector<NodeId>> labs;
    for (std::size_t i = 0; i < volatile_ids.size(); i += size) {
      labs.emplace_back(volatile_ids.begin() + static_cast<std::ptrdiff_t>(i),
                        volatile_ids.begin() +
                            static_cast<std::ptrdiff_t>(
                                std::min(i + size, volatile_ids.size())));
    }
    auto cycling = static_cast<std::size_t>(
        config_.outages.group_fraction * static_cast<double>(labs.size()) + 0.5);
    cycling = std::min(std::max<std::size_t>(cycling, 1), labs.size());
    std::vector<std::size_t> picks =
        outage_rng_.sample_without_replacement(labs.size(), cycling);
    std::sort(picks.begin(), picks.end());
    for (const std::size_t p : picks) groups_.push_back(std::move(labs[p]));
    for (std::size_t g = 0; g < groups_.size(); ++g) schedule_cycle(g);
  }

  if (config_.stragglers.enabled && !volatile_ids.empty()) {
    const auto n = volatile_ids.size();
    auto k = static_cast<std::size_t>(
        config_.stragglers.fraction * static_cast<double>(n) + 0.5);
    k = std::min(std::max<std::size_t>(k, 1), n);
    std::vector<std::size_t> picks =
        straggler_rng_.sample_without_replacement(n, k);
    std::sort(picks.begin(), picks.end());
    for (const std::size_t p : picks) stragglers_.push_back(volatile_ids[p]);
    for (const NodeId node : stragglers_) {
      cluster_.node(node).set_capacity_factor(config_.stragglers.capacity_factor);
      ++stats_.stragglers_injected;
      fault_instant(obs::kClusterPid, obs::node_track(node), "straggler", node);
      log::info("faults", "straggler",
                {{"node", std::to_string(node.value())},
                 {"factor", std::to_string(config_.stragglers.capacity_factor)}});
    }
  }
}

void FaultInjector::schedule_master_crashes(
    dfs::Dfs* dfs, mapred::JobTracker* jobtracker,
    std::function<void()> post_recovery_audit) {
  if (!config_.enabled || !config_.master_crash.enabled) return;
  post_recovery_audit_ = std::move(post_recovery_audit);
  const auto& mc = config_.master_crash;
  // Draw both masters' full schedules up-front, NameNode stream first, so the
  // two never interleave draws: toggling `jobtracker` cannot move a single
  // NameNode crash instant, and vice versa only through its own flag.
  struct Plan {
    bool namenode;
    sim::Time crash;
    sim::Duration downtime;
  };
  std::vector<Plan> plans;
  for (const bool is_nn : {true, false}) {
    if (is_nn && (!mc.namenode || dfs == nullptr)) continue;
    if (!is_nn && (!mc.jobtracker || jobtracker == nullptr)) continue;
    sim::Time t = sim_.now();
    for (int i = 0; i < mc.max_crashes; ++i) {
      t += exp_duration(master_rng_, mc.mean_interval, mc.min_interval);
      const sim::Duration down =
          exp_duration(master_rng_, mc.mean_downtime, mc.min_downtime);
      plans.push_back({is_nn, t, down});
      t += down;
    }
  }
  for (const Plan& p : plans) {
    sim_.schedule_at(p.crash, [this, p, dfs, jobtracker] {
      crash_master(p.namenode, dfs, jobtracker);
    });
    sim_.schedule_at(p.crash + p.downtime, [this, p, dfs, jobtracker] {
      recover_master(p.namenode, dfs, jobtracker);
    });
  }
}

void FaultInjector::crash_master(bool namenode, dfs::Dfs* dfs,
                                 mapred::JobTracker* jobtracker) {
  const char* who = namenode ? "namenode" : "jobtracker";
  master_crash_at_[namenode ? 0 : 1] = sim_.now();
  if (namenode) {
    ++stats_.namenode_crashes;
    dfs->crash_namenode();
  } else {
    ++stats_.jobtracker_crashes;
    jobtracker->crash();
  }
  if (auto* tracer = sim_.tracer()) {
    master_span_[namenode ? 0 : 1] = tracer->begin(
        namenode ? obs::kDfsPid : obs::kClusterPid, 0, obs::Cat::kFault,
        std::string(who) + "_down", sim_.now());
  }
  log::warn("faults", "master crash", {{"master", who}});
}

void FaultInjector::recover_master(bool namenode, dfs::Dfs* dfs,
                                   mapred::JobTracker* jobtracker) {
  if (namenode) {
    dfs->recover_namenode();
  } else {
    jobtracker->recover();
  }
  ++stats_.master_recoveries;
  stats_.master_downtime += sim_.now() - master_crash_at_[namenode ? 0 : 1];
  if (auto* tracer = sim_.tracer()) {
    tracer->end(master_span_[namenode ? 0 : 1], sim_.now());
  }
  log::info("faults", "master recovered",
            {{"master", namenode ? "namenode" : "jobtracker"}});
  // Mandatory post-recovery sweep: a rebuild that violates an invariant is a
  // bug in the recovery path, not survivable background noise. The sweep is
  // a callback so this layer never includes audit/ (detlint layering rule).
  if (post_recovery_audit_) post_recovery_audit_();
}

void FaultInjector::schedule_cycle(std::size_t group) {
  const sim::Duration wait =
      exp_duration(outage_rng_, config_.outages.mean_interval, 1);
  sim_.schedule_after(wait, [this, group] { group_down(group); });
}

void FaultInjector::group_down(std::size_t group) {
  ++stats_.outages_injected;
  for (const NodeId node : groups_[group]) {
    cluster_.node(node).set_fault_down(true);
    fault_instant(obs::kClusterPid, obs::node_track(node), "outage", node);
  }
  log::warn("faults", "group outage",
            {{"group", std::to_string(group)},
             {"nodes", std::to_string(groups_[group].size())}});
  const sim::Duration outage = exp_duration(
      outage_rng_, config_.outages.mean_outage, config_.outages.min_outage);
  sim_.schedule_after(outage, [this, group] { group_up(group); });
}

void FaultInjector::group_up(std::size_t group) {
  for (const NodeId node : groups_[group]) {
    cluster_.node(node).set_fault_down(false);
  }
  log::info("faults", "group outage over",
            {{"group", std::to_string(group)}});
  schedule_cycle(group);
}

FaultInjector::HeartbeatFate FaultInjector::heartbeat_fate(NodeId node) {
  if (!config_.enabled || !config_.heartbeats.enabled) return {};
  if (heartbeat_rng_.chance(config_.heartbeats.drop_probability)) {
    ++stats_.heartbeats_dropped;
    fault_instant(obs::kClusterPid, obs::node_track(node), "hb_drop", node);
    return {.drop = true, .delay = 0};
  }
  if (heartbeat_rng_.chance(config_.heartbeats.delay_probability)) {
    const sim::Duration delay =
        std::min(config_.heartbeats.max_delay,
                 exp_duration(heartbeat_rng_, config_.heartbeats.mean_delay, 1));
    ++stats_.heartbeats_delayed;
    fault_instant(obs::kClusterPid, obs::node_track(node), "hb_delay", node);
    return {.drop = false, .delay = delay};
  }
  return {};
}

bool FaultInjector::corrupt_replica(BlockId block, NodeId node) {
  if (!config_.enabled || !config_.storage.enabled) return false;
  if (!storage_rng_.chance(config_.storage.corrupt_probability)) return false;
  ++stats_.replicas_corrupted;
  fault_instant(obs::kDfsPid, obs::node_track(node), "corrupt", node);
  log::warn("faults", "replica corrupted",
            {{"block", std::to_string(block.value())},
             {"node", std::to_string(node.value())}});
  return true;
}

bool FaultInjector::reject_write(BlockId block, NodeId node) {
  if (!config_.enabled || !config_.storage.enabled) return false;
  if (!storage_rng_.chance(config_.storage.reject_probability)) return false;
  ++stats_.writes_rejected;
  fault_instant(obs::kDfsPid, obs::node_track(node), "disk_full", node);
  log::warn("faults", "write rejected",
            {{"block", std::to_string(block.value())},
             {"node", std::to_string(node.value())}});
  return true;
}

void FaultInjector::note_corruption_detected(BlockId block, NodeId node) {
  ++stats_.corruptions_detected;
  fault_instant(obs::kDfsPid, obs::node_track(node), "checksum_fail", node);
  log::warn("faults", "corruption detected on read",
            {{"block", std::to_string(block.value())},
             {"node", std::to_string(node.value())}});
}

void FaultInjector::fault_instant(std::uint32_t pid, std::uint32_t track,
                                  const char* name, NodeId node) {
  if (auto* tracer = sim_.tracer()) {
    tracer->instant(pid, track, obs::Cat::kFault, name, sim_.now(),
                    {{"node", std::to_string(node.value())}});
  }
}

}  // namespace moon::faults
