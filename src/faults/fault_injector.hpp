// Seeded, deterministic fault injection (DESIGN.md §13).
//
// The FaultInjector installs itself on the Simulation the way the obs layer
// installs its tracer: instrumented call sites (TaskTracker heartbeats, DFS
// replica stores and reads) reach it through `sim.faults()` and pay one
// pointer load and branch when faults are off. Each fault class owns a
// child RNG stream forked from the injector's seed, so enabling or tuning
// one class never perturbs the schedule another class injects — and the
// whole subsystem draws nothing from the simulation's main stream, so a
// faults-off run is bit-identical to a build without the subsystem.
//
// Correlated outages are driven by simulation events the injector schedules
// itself (group down -> group up -> next cycle); the other classes are
// consulted synchronously at the instrumented call sites and answer from
// their private streams.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "faults/fault_config.hpp"
#include "simkit/simulation.hpp"

namespace moon::faults {

/// Injection counters (gauges and benches read these).
struct FaultStats {
  std::int64_t outages_injected = 0;      ///< group power-cycle down events
  std::int64_t heartbeats_dropped = 0;
  std::int64_t heartbeats_delayed = 0;
  std::int64_t replicas_corrupted = 0;
  std::int64_t writes_rejected = 0;
  std::int64_t corruptions_detected = 0;  ///< checksum-on-read hits
  std::int64_t stragglers_injected = 0;

  [[nodiscard]] std::int64_t total_injected() const {
    return outages_injected + heartbeats_dropped + heartbeats_delayed +
           replicas_corrupted + writes_rejected + stragglers_injected;
  }
};

class FaultInjector {
 public:
  FaultInjector(sim::Simulation& sim, cluster::Cluster& cluster,
                FaultConfig config, std::uint64_t seed);
  /// Clears the Simulation's faults pointer if it still points here.
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs this injector on the Simulation (sim.faults() call sites see
  /// it) and arms the autonomous fault classes: groups `volatile_ids` into
  /// labs, schedules the first power cycles, and applies straggler
  /// degradation. Call once, before the run starts.
  void arm(const std::vector<NodeId>& volatile_ids);

  // ---- synchronous consultation points ------------------------------------

  /// Fate of one TaskTracker->JobTracker heartbeat.
  struct HeartbeatFate {
    bool drop = false;
    sim::Duration delay = 0;  ///< 0 = deliver now
  };
  HeartbeatFate heartbeat_fate(NodeId node);

  /// True when a replica of `block` landing on `node` should be silently
  /// corrupted (the DataNode keeps the bytes; checksum-on-read will catch it).
  bool corrupt_replica(BlockId block, NodeId node);

  /// True when the store of `block` on `node` should be rejected outright
  /// (disk-full: the replica never lands).
  bool reject_write(BlockId block, NodeId node);

  /// DFS reports a checksum-on-read detection (counter + trace/log only).
  void note_corruption_detected(BlockId block, NodeId node);

  // ---- introspection ------------------------------------------------------

  [[nodiscard]] const FaultConfig& config() const { return config_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  /// Lab/rack groups subject to power cycles (tests).
  [[nodiscard]] const std::vector<std::vector<NodeId>>& outage_groups() const {
    return groups_;
  }
  [[nodiscard]] const std::vector<NodeId>& stragglers() const {
    return stragglers_;
  }

 private:
  void schedule_cycle(std::size_t group);
  void group_down(std::size_t group);
  void group_up(std::size_t group);
  void fault_instant(std::uint32_t pid, std::uint32_t track, const char* name,
                     NodeId node);

  sim::Simulation& sim_;
  cluster::Cluster& cluster_;
  FaultConfig config_;
  // One private stream per fault class (see file comment).
  Rng outage_rng_;
  Rng heartbeat_rng_;
  Rng storage_rng_;
  Rng straggler_rng_;

  std::vector<std::vector<NodeId>> groups_;  ///< cycling groups only
  std::vector<NodeId> stragglers_;
  FaultStats stats_;
  bool armed_ = false;
};

}  // namespace moon::faults
