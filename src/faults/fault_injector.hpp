// Seeded, deterministic fault injection (DESIGN.md §13).
//
// The FaultInjector installs itself on the Simulation the way the obs layer
// installs its tracer: instrumented call sites (TaskTracker heartbeats, DFS
// replica stores and reads) reach it through `sim.faults()` and pay one
// pointer load and branch when faults are off. Each fault class owns a
// child RNG stream forked from the injector's seed, so enabling or tuning
// one class never perturbs the schedule another class injects — and the
// whole subsystem draws nothing from the simulation's main stream, so a
// faults-off run is bit-identical to a build without the subsystem.
//
// Correlated outages are driven by simulation events the injector schedules
// itself (group down -> group up -> next cycle); the other classes are
// consulted synchronously at the instrumented call sites and answer from
// their private streams.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "faults/fault_config.hpp"
#include "obs/trace.hpp"
#include "simkit/fault_hooks.hpp"
#include "simkit/simulation.hpp"

namespace moon::dfs {
class Dfs;
}  // namespace moon::dfs

namespace moon::mapred {
class JobTracker;
}  // namespace moon::mapred

namespace moon::faults {

/// Injection counters (gauges and benches read these).
struct FaultStats {
  std::int64_t outages_injected = 0;      ///< group power-cycle down events
  std::int64_t heartbeats_dropped = 0;
  std::int64_t heartbeats_delayed = 0;
  std::int64_t replicas_corrupted = 0;
  std::int64_t writes_rejected = 0;
  std::int64_t corruptions_detected = 0;  ///< checksum-on-read hits
  std::int64_t stragglers_injected = 0;
  std::int64_t namenode_crashes = 0;      ///< master_crash: NameNode downs
  std::int64_t jobtracker_crashes = 0;    ///< master_crash: JobTracker downs
  std::int64_t master_recoveries = 0;     ///< completed recovery sequences
  sim::Duration master_downtime = 0;      ///< cumulative injected master outage

  [[nodiscard]] std::int64_t total_injected() const {
    return outages_injected + heartbeats_dropped + heartbeats_delayed +
           replicas_corrupted + writes_rejected + stragglers_injected +
           namenode_crashes + jobtracker_crashes;
  }
};

class FaultInjector : public sim::FaultHooks {
 public:
  FaultInjector(sim::Simulation& sim, cluster::Cluster& cluster,
                FaultConfig config, std::uint64_t seed);
  /// Clears the Simulation's faults pointer if it still points here.
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs this injector on the Simulation (sim.faults() call sites see
  /// it) and arms the autonomous fault classes: groups `volatile_ids` into
  /// labs, schedules the first power cycles, and applies straggler
  /// degradation. Call once, before the run starts.
  void arm(const std::vector<NodeId>& volatile_ids);

  /// Arms the master_crash fault class (DESIGN.md §14): draws the full
  /// crash/recovery schedule for each enabled master up-front (NameNode
  /// stream first, so the two masters' draws never interleave) and schedules
  /// the crash → downtime → recover cycles. Every recovery ends with a
  /// mandatory `post_recovery_audit()` sweep when a callback is supplied
  /// (the experiment layer passes the audit::Auditor's run() — the injector
  /// itself stays below the audit layer). Call after arm(), once the masters
  /// exist; a disabled class schedules nothing.
  void schedule_master_crashes(dfs::Dfs* dfs, mapred::JobTracker* jobtracker,
                               std::function<void()> post_recovery_audit);

  // ---- synchronous consultation points (sim::FaultHooks) ------------------

  using HeartbeatFate = sim::HeartbeatFate;

  /// Fate of one TaskTracker->JobTracker heartbeat.
  HeartbeatFate heartbeat_fate(NodeId node) override;

  /// True when a replica of `block` landing on `node` should be silently
  /// corrupted (the DataNode keeps the bytes; checksum-on-read will catch it).
  bool corrupt_replica(BlockId block, NodeId node) override;

  /// True when the store of `block` on `node` should be rejected outright
  /// (disk-full: the replica never lands).
  bool reject_write(BlockId block, NodeId node) override;

  /// DFS reports a checksum-on-read detection (counter + trace/log only).
  void note_corruption_detected(BlockId block, NodeId node) override;

  // ---- introspection ------------------------------------------------------

  [[nodiscard]] const FaultConfig& config() const { return config_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  /// Lab/rack groups subject to power cycles (tests).
  [[nodiscard]] const std::vector<std::vector<NodeId>>& outage_groups() const {
    return groups_;
  }
  [[nodiscard]] const std::vector<NodeId>& stragglers() const {
    return stragglers_;
  }

 private:
  void schedule_cycle(std::size_t group);
  void group_down(std::size_t group);
  void group_up(std::size_t group);
  void fault_instant(std::uint32_t pid, std::uint32_t track, const char* name,
                     NodeId node);
  void crash_master(bool namenode, dfs::Dfs* dfs, mapred::JobTracker* jobtracker);
  void recover_master(bool namenode, dfs::Dfs* dfs,
                      mapred::JobTracker* jobtracker);

  sim::Simulation& sim_;
  cluster::Cluster& cluster_;
  FaultConfig config_;
  // One private stream per fault class (see file comment).
  Rng outage_rng_;
  Rng heartbeat_rng_;
  Rng storage_rng_;
  Rng straggler_rng_;
  Rng master_rng_;

  std::vector<std::vector<NodeId>> groups_;  ///< cycling groups only
  std::vector<NodeId> stragglers_;
  std::function<void()> post_recovery_audit_;  ///< mandatory post-recovery sweep
  FaultStats stats_;
  bool armed_ = false;
  /// Open downtime trace spans, one per master (index 0 = NameNode).
  obs::Tracer::SpanId master_span_[2];
  sim::Time master_crash_at_[2] = {0, 0};
};

}  // namespace moon::faults
