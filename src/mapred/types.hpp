// MapReduce framework vocabulary (Hadoop-0.17-era semantics, per paper §II-C).
#pragma once

#include <string>

#include "checkpoint/types.hpp"
#include "common/ids.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "dfs/types.hpp"

namespace moon::mapred {

enum class TaskType { kMap, kReduce };

enum class TaskState {
  kPending,    ///< no live attempt; eligible for scheduling
  kRunning,    ///< >= 1 non-terminal attempt
  kCompleted,  ///< one attempt succeeded
};

enum class AttemptState {
  kRunning,
  kInactive,   ///< MOON: host tracker suspected suspended; not killed yet
  kSucceeded,
  kKilled,     ///< terminated by the framework (tracker died, redundant, ...)
  kFailed,     ///< the attempt itself errored (e.g. unreadable input)
};

const char* to_string(TaskType type);
const char* to_string(TaskState state);
const char* to_string(AttemptState state);

/// Per-job static description. Data volumes/durations come from the
/// workload models (Table I + calibration).
struct JobSpec {
  std::string name = "job";
  int num_maps = 0;
  int num_reduces = 0;
  /// Staged input file; map i reads input block i (blocks == num_maps).
  FileId input_file;

  Bytes intermediate_per_map = 0;  ///< total map-output bytes per map task
  Bytes output_per_reduce = 0;     ///< final output bytes per reduce task

  sim::Duration map_compute = 10 * sim::kSecond;
  sim::Duration reduce_compute = 10 * sim::kSecond;
  /// Uniform +/- jitter applied per attempt (0.1 -> [0.9x, 1.1x]).
  double compute_jitter = 0.1;

  /// Intermediate-data policy: kind + {d,v}. Hadoop's map-local storage is
  /// {0,1} opportunistic (the single replica lands on the writer).
  dfs::FileKind intermediate_kind = dfs::FileKind::kOpportunistic;
  dfs::ReplicationFactor intermediate_factor{0, 1};

  /// Output files are written opportunistic with this factor, then converted
  /// to reliable at job commit (§IV-A).
  dfs::ReplicationFactor output_factor{1, 3};

  /// Relative completion deadline (SLA): the job should finish within this
  /// much simulated time of its arrival. 0 = no deadline. Drives the
  /// kDeadlineEdf job policy and the stream-level SLA-miss accounting;
  /// nothing enforces it — a late job completes normally and is *counted*
  /// as an SLA miss.
  sim::Duration deadline = 0;

  /// Admission priority (higher = more important). kShedLowestPriority
  /// evicts the lowest-priority live job to admit a higher-priority
  /// arrival; equal-priority arrivals never displace running work.
  int priority = 0;
};

/// Overload-protection policy in front of JobTracker::submit (DESIGN.md
/// §16). Disabled by default: with `enabled == false` no controller is
/// constructed and submission behaves exactly as before (zero perturbation).
struct AdmissionConfig {
  bool enabled = false;

  /// What to do with an arrival that would exceed a cap.
  /// kRejectNewest: refuse the arrival outright.
  /// kDeferWithBackoff: park it in a FIFO defer queue re-driven on a
  ///   deterministic exponential-backoff timer (sim::Retrier); after
  ///   max_defers unsuccessful drains the arrival is rejected.
  /// kShedLowestPriority: evict the lowest-priority unfinished job
  ///   (ties: newest first) iff it has strictly lower priority than the
  ///   arrival; otherwise the arrival itself is rejected.
  enum class Policy { kRejectNewest, kDeferWithBackoff, kShedLowestPriority };
  Policy policy = Policy::kRejectNewest;

  /// Cap on unfinished admitted jobs (the control plane's queue depth).
  /// 0 = unlimited.
  int max_queued_jobs = 8;
  /// Cap on live (non-terminal) attempts across all unfinished jobs —
  /// bounds in-flight data-plane work rather than job count. 0 = unlimited.
  int max_live_attempts = 0;
  /// kDeferWithBackoff: drains attempted per parked arrival before it is
  /// rejected. Must be >= 1 so every deferred arrival resolves.
  int max_defers = 8;
  /// kDeferWithBackoff: backoff schedule for the drain timer.
  sim::Duration defer_initial = 15 * sim::kSecond;
  sim::Duration defer_max = 240 * sim::kSecond;
};

const char* to_string(AdmissionConfig::Policy policy);

/// Scheduler/framework tunables. The experiment harness derives the paper's
/// policy variants (Hadoop{1,5,10}Min, MOON, MOON-Hybrid) from these.
struct SchedulerConfig {
  sim::Duration heartbeat_interval = 3 * sim::kSecond;

  /// Heartbeat phase across trackers. kAligned (default) starts every
  /// tracker's heartbeat one full interval after start(): all trackers beat
  /// on the same ticks — the regime the tick-memoized speculator paths are
  /// tuned for, and the one every equivalence/golden suite runs. kStaggered
  /// offsets each tracker's first beat by a deterministic seeded draw in
  /// [0, interval), modelling de-synchronized real deployments. Caveat
  /// (documented in DESIGN.md §11): staggering changes the heartbeat
  /// arrival order and therefore the simulated schedule — runs are
  /// bit-reproducible per (seed, config) and under permuted tracker
  /// registration, but are NOT comparable with kAligned runs.
  enum class HeartbeatPhase { kAligned, kStaggered };
  HeartbeatPhase heartbeat_phase = HeartbeatPhase::kAligned;

  sim::Duration liveness_scan_interval = 10 * sim::kSecond;

  /// TrackerExpiryInterval: heartbeat gap after which a tracker is dead and
  /// its attempts are killed (Hadoop default 10 min).
  sim::Duration tracker_expiry = 600 * sim::kSecond;

  /// MOON SuspensionInterval ("much smaller than TrackerExpiryInterval");
  /// 0 disables suspension detection (plain Hadoop).
  sim::Duration suspension_interval = 0;

  bool moon_scheduling = false;  ///< frozen/slow lists + two-phase replication
  bool hybrid_aware = false;     ///< dedicated-node-aware placement (§V-C)

  /// On tracker death, consult the DFS before re-executing completed maps
  /// (MOON); stock Hadoop re-runs them unconditionally.
  bool dfs_aware_recovery = false;

  /// Scheduling hot-path implementation. kIndexed (default) serves each
  /// heartbeat from maintained indices — pending buckets, locality buckets,
  /// running sets, counter aggregates — in O(1) amortized. kScan keeps the
  /// original full-scan path compiled in as the equivalence oracle; the two
  /// modes are bit-identical in simulated outcomes (asserted by
  /// tests/mapred/sched_equivalence_test.cpp).
  enum class IndexMode { kIndexed, kScan };
  IndexMode index_mode = IndexMode::kIndexed;

  /// Which speculative-execution policy drives backup copies. kMoon is
  /// implied by moon_scheduling; kLate implements Zaharia et al.'s LATE
  /// (OSDI'08), the alternative the paper's related work discusses.
  enum class Speculator { kHadoop, kMoon, kLate };
  Speculator speculator = Speculator::kHadoop;

  /// Multi-job arbitration: which unfinished job gets first claim on each
  /// heartbeat's slot (DESIGN.md §10). kFifo walks jobs in submission order
  /// (bit-identical to the historical single-loop behaviour); kFairShare
  /// offers the slot to the job with the fewest running attempts relative to
  /// its remaining work (deficit-based, submission order breaking ties);
  /// kShortestRemaining prefers the job with the least remaining work (SRTF).
  /// Within a job, map-before-reduce priority is preserved by every policy.
  /// kDeadlineEdf ranks deadline-carrying jobs by absolute deadline
  /// (earliest first, ties by submission order) ahead of deadline-free jobs.
  enum class JobPolicy { kFifo, kFairShare, kShortestRemaining, kDeadlineEdf };
  JobPolicy job_policy = JobPolicy::kFifo;

  /// Overload protection in front of submit (DESIGN.md §16); inert unless
  /// admission.enabled.
  AdmissionConfig admission;

  // --- LATE parameters (used when speculator == kLate) ---
  /// SpeculativeCap: concurrent backups <= this fraction of total slots.
  double late_cap_fraction = 0.1;
  /// SlowTaskThreshold: only tasks whose progress *rate* is below this
  /// percentile of running tasks' rates are candidates.
  double late_slow_task_percentile = 25.0;

  // --- speculative execution ---
  sim::Duration min_age_for_speculation = 60 * sim::kSecond;
  double straggler_gap = 0.2;         ///< progress lag vs average
  int per_task_speculative_cap = 1;   ///< Hadoop default backup copies
  double speculative_slot_fraction = 0.2;  ///< MOON global cap (20 % of slots)
  double homestretch_fraction = 0.2;  ///< H: remaining < H% of slots
  int homestretch_copies = 2;         ///< R: active copies to maintain

  // --- fetch-failure handling ---
  /// Hadoop rule: re-execute a map when more than this fraction of running
  /// reduces report failures fetching it.
  double fetch_failure_fraction = 0.5;
  /// Augmented rule (§VI-B): after this many failures, query the DFS and
  /// re-execute immediately if no live replica remains. <= 0 disables.
  int fetch_failure_query_threshold = 3;
  sim::Duration fetch_retry_interval = 30 * sim::kSecond;
  int shuffle_parallelism = 4;  ///< concurrent fetch streams per reduce

  /// Footnote 1: a map rescheduled this many times fails the job.
  int max_task_failures = 4;

  // --- failure containment (chaos runs; see DESIGN.md §13) ---
  /// Cap on total attempts launched per task (failed + killed + speculative).
  /// Under injected churn a task can burn attempts through kills — which
  /// max_task_failures never counts — forever; this cap converts such runaway
  /// tasks into a clean job abort. Generous default: no tier-1 workload
  /// comes near it.
  int max_attempt_failures = 120;

  /// Flaky-node quarantine: a tracker accumulating this many attempt
  /// failures is quarantined (no assignments) for quarantine_backoff,
  /// doubling per quarantine up to quarantine_backoff_max; its strike count
  /// resets on readmission. 0 disables (default — zero perturbation).
  int quarantine_threshold = 0;
  sim::Duration quarantine_backoff = 120 * sim::kSecond;
  sim::Duration quarantine_backoff_max = 1920 * sim::kSecond;

  sim::Duration completion_scan_interval = 5 * sim::kSecond;

  /// Reduce-task checkpoint/resume subsystem (src/checkpoint/); disabled by
  /// default — enabling it is what moon_checkpoint_scheduler() does.
  checkpoint::CheckpointConfig checkpoint;
};

/// Why a job aborted (JobMetrics::failure_reason; kNone while unfailed).
enum class JobFailureReason {
  kNone,
  kTaskFailures,     ///< a task exceeded max_task_failures (footnote 1)
  kTooManyAttempts,  ///< a task exceeded max_attempt_failures (containment)
  kShed,             ///< evicted by AdmissionController (kShedLowestPriority)
};

const char* to_string(JobFailureReason reason);

/// Everything the paper's evaluation reports, collected per job run.
struct JobMetrics {
  bool completed = false;
  bool failed = false;
  JobFailureReason failure_reason = JobFailureReason::kNone;
  sim::Time submitted_at = 0;
  sim::Time finished_at = 0;
  /// Absolute SLA deadline (spec.deadline anchored at arrival); 0 = none.
  /// Set by Job::submit; the multi-job harness re-anchors it to the original
  /// arrival time when admission deferred the submission.
  sim::Time deadline_at = 0;
  /// When the job's first attempt launched; negative until then. The gap to
  /// submitted_at is the queue wait a multi-job policy imposed on the job.
  sim::Time first_launch_at = -1;
  /// High-water mark of concurrently running attempts — the job's peak slot
  /// footprint (multi-job fairness accounting).
  int peak_running_attempts = 0;

  int launched_map_attempts = 0;
  int launched_reduce_attempts = 0;
  int speculative_attempts = 0;
  int killed_map_attempts = 0;
  int killed_reduce_attempts = 0;
  int failed_map_attempts = 0;
  int failed_reduce_attempts = 0;
  int map_reexecutions = 0;  ///< completed maps reverted (lost output)
  int fetch_failures = 0;

  // --- checkpoint subsystem ---
  int checkpoints_written = 0;          ///< committed checkpoint emits
  std::int64_t checkpoint_bytes = 0;    ///< payload bytes logged to the DFS
  int checkpoint_resumes = 0;           ///< attempts bootstrapped from a checkpoint
  /// Sum of the progress scores restored by resumes — the work the
  /// checkpoints salvaged from killed/expired attempts.
  double checkpoint_progress_salvaged = 0.0;

  Accumulator map_time_s;      ///< successful map attempt durations
  Accumulator shuffle_time_s;  ///< reduce start -> last fetch done
  Accumulator reduce_time_s;   ///< post-shuffle compute+write durations

  [[nodiscard]] double execution_time_s() const {
    return sim::to_seconds(finished_at - submitted_at);
  }
  /// Seconds between submission and the first launched attempt (0 if the
  /// job never launched one).
  [[nodiscard]] double queue_wait_s() const {
    return first_launch_at < 0 ? 0.0
                               : sim::to_seconds(first_launch_at - submitted_at);
  }
  [[nodiscard]] bool has_deadline() const { return deadline_at > 0; }
  /// SLA verdict for a *finished* deadline job: failed jobs (aborted or
  /// shed) always miss; completed jobs miss when they finished late.
  [[nodiscard]] bool sla_missed() const {
    return has_deadline() && (failed || finished_at > deadline_at);
  }
  /// Paper Fig. 5: attempts beyond one per task (speculatives + re-runs).
  [[nodiscard]] int duplicated_tasks(int num_maps, int num_reduces) const {
    return launched_map_attempts + launched_reduce_attempts - num_maps -
           num_reduces;
  }
};

}  // namespace moon::mapred
