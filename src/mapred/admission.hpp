// Admission control in front of JobTracker::submit (DESIGN.md §16).
//
// An open-ended job stream can outrun the cluster: arrivals pile up as
// unfinished jobs, every heartbeat walks a longer job list, and the run
// wedges instead of degrading. The AdmissionController bounds that by
// gating every arrival against configurable caps (unfinished-job count,
// live-attempt count) and resolving overload with one of three policies:
// reject the newest arrival, defer it behind a deterministic
// exponential-backoff timer (sim::Retrier), or shed the lowest-priority
// running job to make room.
//
// Determinism: decisions are pure functions of (caps, live state, arrival
// order) — no RNG — and every decision folds into a running FNV-1a hash of
// (decision, sim time) pairs, so two same-seed runs can assert bit-identical
// admit/reject/defer/shed sequences by comparing one integer. A controller
// is only constructed when AdmissionConfig::enabled; callers submitting
// directly to the JobTracker are untouched (zero perturbation).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "mapred/types.hpp"
#include "simkit/retry.hpp"

namespace moon::mapred {

class JobTracker;

class AdmissionController {
 public:
  enum class Decision {
    kAdmitted,  ///< submitted to the JobTracker (outcome.job is valid)
    kRejected,  ///< refused — immediately, or after exhausting its defers
    kShed,      ///< a *running* job was evicted (reported via JobFailureReason)
  };

  /// Final verdict for one offered arrival. `defers` counts the drain
  /// rounds the arrival waited through before the verdict; `shed_job` is
  /// the evicted victim when admission required one (invalid otherwise).
  struct Outcome {
    Decision decision = Decision::kAdmitted;
    JobId job;       ///< admitted JobId (invalid on rejection)
    JobId shed_job;  ///< victim evicted to admit this arrival (if any)
    int defers = 0;
  };

  struct Stats {
    std::int64_t offered = 0;
    std::int64_t admitted = 0;
    std::int64_t rejected = 0;
    std::int64_t deferred = 0;       ///< arrivals parked at least once
    std::int64_t defer_rounds = 0;   ///< total drain waits across arrivals
    std::int64_t shed = 0;           ///< running jobs evicted
  };

  AdmissionController(JobTracker& jobtracker, AdmissionConfig config);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Offers one arrival. `on_final` fires exactly once with the verdict —
  /// synchronously for admit/reject/shed, later (from the backoff timer)
  /// for deferred arrivals. Callers must not offer while the JobTracker is
  /// crashed (park on their own retry ticket first, like direct submitters).
  void offer(JobSpec spec, std::function<void(const Outcome&)> on_final);

  [[nodiscard]] const AdmissionConfig& config() const { return config_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Arrivals currently parked in the defer queue.
  [[nodiscard]] std::size_t deferred_depth() const { return deferred_.size(); }
  /// Load relative to the tightest configured cap, >= 1.0 when saturated:
  /// max of unfinished-jobs/max_queued_jobs and live-attempts/
  /// max_live_attempts (unlimited caps contribute 0). The obs gauge.
  [[nodiscard]] double backpressure() const;
  /// FNV-1a over every (decision, time) pair so far — the bit-identical
  /// admit/reject/shed sequence, compressed to one comparable integer.
  [[nodiscard]] std::uint64_t sequence_hash() const { return sequence_hash_; }

 private:
  struct Parked {
    JobSpec spec;
    std::function<void(const Outcome&)> on_final;
    int defers = 0;
  };

  [[nodiscard]] bool overloaded() const;
  /// Admits `spec` (recording + submitting); never checks caps.
  void admit(JobSpec spec, const std::function<void(const Outcome&)>& on_final,
             int defers, JobId shed_job);
  void finish_reject(const Parked& parked);
  /// Backoff-timer body: admit from the front while capacity lasts, age the
  /// rest, reject the over-aged, re-arm if anyone is still waiting.
  void drain_deferred();
  void arm_timer();
  /// Folds one event tag + the current sim time into the sequence hash
  /// (tags cover admit/reject/shed *and* defer events).
  void record(std::uint8_t tag);

  JobTracker& jobtracker_;
  AdmissionConfig config_;
  Stats stats_;
  std::deque<Parked> deferred_;
  sim::Retrier retrier_;
  std::uint64_t sequence_hash_ = 14695981039346656037ULL;  ///< FNV-1a basis
};

}  // namespace moon::mapred
