#include "mapred/task.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"
#include "mapred/job.hpp"
#include "mapred/jobtracker.hpp"
#include "mapred/tasktracker.hpp"
#include "obs/metrics.hpp"

namespace moon::mapred {

namespace {
/// Applies the per-attempt compute jitter: uniform in [1-j, 1+j].
sim::Duration jittered(sim::Duration mean, double jitter, Rng& rng) {
  if (jitter <= 0.0) return mean;
  const double factor = rng.uniform(1.0 - jitter, 1.0 + jitter);
  return static_cast<sim::Duration>(static_cast<double>(mean) * factor);
}
}  // namespace

TaskAttempt::TaskAttempt(Job& job, AttemptId id, TaskId task, TaskTracker& tracker,
                         bool speculative)
    : job_(job),
      id_(id),
      task_(task),
      tracker_(tracker),
      speculative_(speculative),
      master_retry_(job.jobtracker().simulation()) {}

TaskAttempt::~TaskAttempt() { cleanup_io(); }

bool TaskAttempt::on_dedicated() const { return tracker_.dedicated(); }

void TaskAttempt::start() {
  auto& sim = job_.jobtracker().simulation();
  started_at_ = sim.now();
  const Task& t = job_.task(task_);
  if (auto* tracer = sim.tracer()) {
    obs::Tracer::Args args{{"attempt", std::to_string(id_.value())},
                           {"node", std::to_string(tracker_.node_id().value())}};
    if (speculative_) args.emplace_back("speculative", "1");
    if (resume_) args.emplace_back("resume", "1");
    span_ = tracer->begin(
        obs::job_pid(job_.id()), obs::node_track(tracker_.node_id()),
        obs::Cat::kAttempt,
        (t.type == TaskType::kMap ? "map" : "reduce") + std::to_string(t.index),
        sim.now(), std::move(args));
  }
  if (t.type == TaskType::kMap) {
    phase_ = Phase::kRead;
    note_phase("read");
    map_read_input();
  } else if (resume_) {
    // Bootstrap from the checkpoint log before shuffling: reading the
    // salvaged state back costs real I/O too.
    phase_ = Phase::kRead;
    note_phase("restore");
    restore_block_ = 0;
    restore_read_next();
  } else {
    phase_ = Phase::kShuffle;
    note_phase("shuffle");
    init_shuffle_queue();
    shuffle_pump();
  }
}

// ---- map pipeline ----------------------------------------------------------

void TaskAttempt::map_read_input() {
  const Task& t = job_.task(task_);
  io_op_ = job_.jobtracker().dfs().read_block(
      t.input_block, tracker_.node_id(), [this](bool ok) {
        io_op_.reset();
        if (terminal()) return;
        if (!ok) {
          // Input block unreachable: this attempt fails (footnote 1: the map
          // is rescheduled up to 4 times, then the job is terminated).
          fail();
          return;
        }
        phase_ = Phase::kCompute;
        note_phase("compute");
        begin_compute(jittered(job_.spec().map_compute, job_.spec().compute_jitter,
                               job_.jobtracker().rng()));
      });
}

void TaskAttempt::map_compute_done() {
  job_.bump_sched_epoch();  // discrete progress step (0.95 plateau)
  phase_ = Phase::kWrite;
  note_phase("write");
  start_output_write();
}

// ---- reduce pipeline -------------------------------------------------------

void TaskAttempt::init_shuffle_queue() {
  // One O(maps) pass at shuffle entry; from here on the queue is maintained
  // by map-completion notifications and retry expiries, so each pump costs
  // O(picks) instead of rescanning every map per fetch completion.
  pending_fetch_.clear();
  for (TaskId m : job_.tasks_of(TaskType::kMap)) {
    if (!fetched_.contains(m) && job_.map_output(m).valid()) {
      pending_fetch_.insert(m);
    }
  }
}

void TaskAttempt::shuffle_pump() {
  if (terminal() || phase_ != Phase::kShuffle) return;
  const auto& maps = job_.tasks_of(TaskType::kMap);
  if (fetched_.size() == maps.size()) {
    // Shuffle complete.
    shuffle_done_at_ = job_.jobtracker().simulation().now();
    job_.metrics().shuffle_time_s.add(
        sim::to_seconds(shuffle_done_at_ - started_at_));
    phase_ = Phase::kCompute;
    note_phase("compute");
    begin_compute(jittered(job_.spec().reduce_compute, job_.spec().compute_jitter,
                           job_.jobtracker().rng()));
    return;
  }
  // Pick fetchable maps in TaskId order — the same order the historical
  // full scan produced (map TaskIds ascend in creation order).
  const int parallelism = job_.jobtracker().config().shuffle_parallelism;
  for (auto it = pending_fetch_.begin();
       it != pending_fetch_.end() &&
       static_cast<int>(fetching_.size()) < parallelism;) {
    const TaskId m = *it;
    if (!job_.map_output(m).valid()) {
      // Output revoked by a re-execution after it was queued: skip it, like
      // the scan did. It re-queues via notify_map_completed when the re-run
      // commits.
      ++it;
      continue;
    }
    if (!start_fetch(m)) {
      ++it;
      continue;
    }
    it = pending_fetch_.erase(it);
  }
}

bool TaskAttempt::start_fetch(TaskId map_task) {
  auto& dfs = job_.jobtracker().dfs();
  const FileId file = job_.map_output(map_task);
  const auto& meta = dfs.namenode().file(file);
  if (meta.blocks.empty()) return false;
  // The partition is spread across the file's blocks; pick one keyed by the
  // reduce index so concurrent reducers spread their load.
  const Task& me = job_.task(task_);
  const BlockId block =
      meta.blocks[static_cast<std::size_t>(me.index) % meta.blocks.size()];
  const Bytes partition = job_.shuffle_partition_bytes();
  const dfs::OpId op = dfs.read_partial(
      block, tracker_.node_id(), partition,
      [this, map_task](bool ok) { fetch_done(map_task, ok); });
  fetching_.emplace(map_task, op);
  return true;
}

void TaskAttempt::fetch_done(TaskId map_task, bool ok) {
  fetching_.erase(map_task);
  if (terminal()) return;
  job_.bump_sched_epoch();  // shuffled fraction (progress) stepped
  if (ok) {
    fetched_.insert(map_task);
  } else {
    if (job_.jobtracker().available()) {
      job_.report_fetch_failure(map_task, *this);
    } else {
      // Master down: the report parks here (the worker-side retry machinery
      // below runs regardless) and replays at recovery.
      parked_fetch_failures_.push_back(map_task);
      job_.jobtracker().note_report_parked();
    }
    retry_wait_.insert(map_task);
    auto& sim = job_.jobtracker().simulation();
    retry_events_.push_back(sim.schedule_after(
        job_.jobtracker().config().fetch_retry_interval, [this, map_task] {
          // Re-queue unless a fresh map completion already superseded the
          // backoff (a map in retry_wait_ is never fetched or fetching).
          if (retry_wait_.erase(map_task) > 0) pending_fetch_.insert(map_task);
          shuffle_pump();
        }));
  }
  shuffle_pump();
}

std::vector<TaskId> TaskAttempt::unfetched_maps() const {
  std::vector<TaskId> out;
  for (TaskId m : job_.tasks_of(TaskType::kMap)) {
    if (!fetched_.contains(m)) out.push_back(m);
  }
  return out;
}

void TaskAttempt::notify_map_completed(TaskId map_task) {
  if (terminal() || phase_ != Phase::kShuffle) return;
  // Fresh output supersedes any backoff for this map. An in-flight fetch of
  // the superseded output is left to finish or fail on its own (its failure
  // path re-queues); anything else unfetched becomes fetchable now.
  retry_wait_.erase(map_task);
  if (!fetched_.contains(map_task) && !fetching_.contains(map_task)) {
    pending_fetch_.insert(map_task);
  }
  shuffle_pump();
}

// ---- checkpoint restore ----------------------------------------------------

void TaskAttempt::restore_read_next() {
  if (terminal()) return;
  const auto& ckpt = *resume_;
  if (restore_block_ >= ckpt.blocks.size()) {
    apply_restored_checkpoint();
    return;
  }
  auto& dfs = job_.jobtracker().dfs();
  if (!dfs.namenode().block_exists(ckpt.blocks[restore_block_])) {
    // Log segment vanished between scheduling and the read: start cold.
    job_.bump_sched_epoch();
    resume_.reset();
    phase_ = Phase::kShuffle;
    note_phase("shuffle");
    init_shuffle_queue();
    shuffle_pump();
    return;
  }
  io_op_ = dfs.read_block(
      ckpt.blocks[restore_block_], tracker_.node_id(), [this](bool ok) {
        io_op_.reset();
        if (terminal()) return;
        if (!ok) {
          job_.bump_sched_epoch();
          resume_.reset();
          phase_ = Phase::kShuffle;
          note_phase("shuffle");
          init_shuffle_queue();
          shuffle_pump();
          return;
        }
        ++restore_block_;
        restore_read_next();
      });
}

void TaskAttempt::apply_restored_checkpoint() {
  sim::Profiler::Scope profile(job_.jobtracker().simulation().profiler(),
                               sim::Profiler::Key::kCheckpoint);
  job_.bump_sched_epoch();  // salvaged shuffle state lands at once
  const checkpoint::ReduceCheckpoint ckpt = std::move(*resume_);
  resume_.reset();
  for (TaskId m : ckpt.fetched) fetched_.insert(m);
  resume_compute_total_ = ckpt.compute_total;
  resume_compute_done_ = ckpt.compute_done;
  resumed_ = true;
  salvaged_progress_ = ckpt.progress;
  ++job_.metrics().checkpoint_resumes;
  job_.metrics().checkpoint_progress_salvaged += ckpt.progress;
  phase_ = Phase::kShuffle;
  init_shuffle_queue();
  shuffle_pump();
}

void TaskAttempt::prime_resume(checkpoint::ReduceCheckpoint ckpt) {
  resume_ = std::move(ckpt);
}

void TaskAttempt::maybe_checkpoint(bool forced) {
  if (terminal()) return;
  // Checkpoint emits are DFS writes; with the NameNode down they are simply
  // skipped (the next scan tick retries — no state to park).
  if (!job_.jobtracker().dfs().namenode().available()) return;
  const Task& t = job_.task(task_);
  if (t.type != TaskType::kReduce) return;
  // Only phases with salvageable state; a writing attempt is nearly done.
  if (phase_ != Phase::kShuffle && phase_ != Phase::kCompute) return;
  auto& jobtracker = job_.jobtracker();
  sim::Profiler::Scope profile(jobtracker.simulation().profiler(),
                               sim::Profiler::Key::kCheckpoint);
  auto& store = jobtracker.checkpoint_store();
  const auto& policy = jobtracker.checkpoint_policy();
  if (store.emit_in_flight(job_.id(), task_)) return;
  const checkpoint::ReduceCheckpoint* last = store.latest(job_.id(), task_);
  const double score = progress();
  if (!policy.should_emit(last, score, forced)) return;

  checkpoint::CheckpointStore::Snapshot snap;
  snap.job = job_.id();
  snap.task = task_;
  snap.label = job_.spec().name + ".r" + std::to_string(t.index);
  snap.fetched.assign(fetched_.begin(), fetched_.end());
  snap.compute_total = compute_total_;
  snap.compute_done = compute_ ? compute_->work_done() : 0;
  snap.progress = score;

  // Incremental payload: newly fetched partitions + compute state delta.
  const Bytes partition = job_.shuffle_partition_bytes();
  Bytes delta = policy.config().state_overhead;
  // detlint: allow(unordered-iter) -- pure byte-count accumulation; the sum is order-independent
  for (TaskId m : fetched_) {
    if (last == nullptr ||
        std::find(last->fetched.begin(), last->fetched.end(), m) ==
            last->fetched.end()) {
      delta += partition;
    }
  }
  if (job_.spec().output_per_reduce > 0 && snap.compute_total > 0) {
    const double frac = static_cast<double>(snap.compute_done) /
                        static_cast<double>(snap.compute_total);
    const double last_frac =
        (last != nullptr && last->compute_total > 0)
            ? static_cast<double>(last->compute_done) /
                  static_cast<double>(last->compute_total)
            : 0.0;
    if (frac > last_frac) {
      delta += static_cast<Bytes>(
          static_cast<double>(job_.spec().output_per_reduce) * (frac - last_frac));
    }
  }
  snap.delta_bytes = delta;

  Job* job = &job_;
  store.emit(std::move(snap), tracker_.node_id(), [job, delta](bool ok) {
    if (!ok) return;
    ++job->metrics().checkpoints_written;
    job->metrics().checkpoint_bytes += delta;
  });
}

void TaskAttempt::reduce_compute_done() {
  job_.bump_sched_epoch();  // discrete progress step (write plateau)
  phase_ = Phase::kWrite;
  note_phase("write");
  start_output_write();
}

// ---- shared ---------------------------------------------------------------

void TaskAttempt::begin_compute(sim::Duration duration) {
  job_.bump_sched_epoch();  // phase flip to kCompute (+ any resume credit)
  // A resumed attempt inherits the checkpointing attempt's jittered total so
  // the restored work fraction stays meaningful, and is credited the
  // salvaged compute time.
  sim::Duration credit = 0;
  if (resume_compute_total_ > 0) {
    duration = resume_compute_total_;
    credit = resume_compute_done_;
    resume_compute_total_ = 0;
    resume_compute_done_ = 0;
  }
  compute_total_ = duration;
  auto& sim = job_.jobtracker().simulation();
  compute_ = std::make_unique<sim::WorkUnit>(sim, duration, [this] {
    if (terminal()) return;
    if (job_.task(task_).type == TaskType::kMap) {
      map_compute_done();
    } else {
      reduce_compute_done();
    }
  });
  compute_->start();
  if (credit > 0) compute_->credit(credit);
  if (!tracker_.host_available()) compute_->pause();
}

void TaskAttempt::start_output_write() {
  if (terminal()) return;
  auto& nn = job_.jobtracker().dfs().namenode();
  if (!nn.available()) {
    // Creating the output file is a metadata op against a dead master: park
    // behind the backoff timer. The computed output waits on the worker.
    ++nn.stats_mutable().master_retries;
    master_retry_.retry([this] { start_output_write(); });
    return;
  }
  master_retry_.reset();
  const Task& t = job_.task(task_);
  if (t.type == TaskType::kMap) {
    my_output_ = job_.create_intermediate_file(task_, id_);
    write_output(job_.spec().intermediate_per_map, job_.spec().intermediate_kind,
                 job_.spec().intermediate_factor, "intermediate");
  } else {
    my_output_ = job_.create_output_file(task_, id_);
    // "Output data will first be stored as opportunistic files while the
    // Reduce tasks are completing" (§IV-A).
    write_output(job_.spec().output_per_reduce, dfs::FileKind::kOpportunistic,
                 job_.spec().output_factor, "output");
  }
}

void TaskAttempt::write_output(Bytes size, dfs::FileKind /*kind*/,
                               dfs::ReplicationFactor /*factor*/,
                               const char* /*label*/) {
  io_op_ = job_.jobtracker().dfs().write_file(
      my_output_, tracker_.node_id(), std::max<Bytes>(size, 1),
      [this](bool ok) { write_done(ok); });
}

void TaskAttempt::write_done(bool ok) {
  io_op_.reset();
  if (terminal()) return;
  if (ok) {
    succeed();
  } else {
    fail();
  }
}

double TaskAttempt::progress() const {
  if (state_ == AttemptState::kSucceeded) return 1.0;
  const Task& t = job_.task(task_);
  if (t.type == TaskType::kMap) {
    switch (phase_) {
      case Phase::kRead: return 0.0;
      case Phase::kCompute:
        return 0.05 + 0.90 * (compute_ ? compute_->progress() : 0.0);
      case Phase::kWrite: return 0.95;
      default: return 1.0;
    }
  }
  // Reduce: shuffle third + compute two-thirds (sort+reduce), write at ~1.
  const auto num_maps =
      static_cast<double>(job_.tasks_of(TaskType::kMap).size());
  const double shuffled =
      num_maps == 0.0 ? 1.0 : static_cast<double>(fetched_.size()) / num_maps;
  switch (phase_) {
    case Phase::kRead: return 0.0;  // restoring a checkpoint; nothing yet
    case Phase::kShuffle: return shuffled / 3.0;
    case Phase::kCompute:
      return (1.0 + 2.0 * (compute_ ? compute_->progress() : 0.0)) / 3.0;
    case Phase::kWrite: return 0.99;
    default: return 1.0;
  }
}

void TaskAttempt::set_inactive(bool inactive) {
  if (terminal()) return;
  transition(inactive ? AttemptState::kInactive : AttemptState::kRunning);
}

void TaskAttempt::transition(AttemptState next) {
  const AttemptState prev = state_;
  if (prev == next) return;
  state_ = next;
  auto& sim = job_.jobtracker().simulation();
  if (auto* tracer = sim.tracer()) {
    if (terminal()) {
      const char* outcome = next == AttemptState::kSucceeded ? "succeeded"
                            : next == AttemptState::kFailed  ? "failed"
                                                             : "killed";
      tracer->end(span_, sim.now(), {{"outcome", outcome}});
      span_ = {};
    } else if (next == AttemptState::kInactive) {
      tracer->instant(obs::job_pid(job_.id()),
                      obs::node_track(tracker_.node_id()), obs::Cat::kAttempt,
                      "suspended", sim.now());
    } else if (prev == AttemptState::kInactive) {
      tracer->instant(obs::job_pid(job_.id()),
                      obs::node_track(tracker_.node_id()), obs::Cat::kAttempt,
                      "resumed", sim.now());
    }
  }
  if (next == AttemptState::kSucceeded) {
    if (auto* metrics = sim.metrics()) {
      const Task& t = job_.task(task_);
      metrics
          ->histogram(t.type == TaskType::kMap ? "map_attempt_runtime_s"
                                               : "reduce_attempt_runtime_s")
          .record(sim::to_seconds(sim.now() - started_at_));
    }
  }
  job_.note_attempt_state(*this, prev, next);
}

void TaskAttempt::note_phase(const char* name) {
  auto& sim = job_.jobtracker().simulation();
  if (auto* tracer = sim.tracer()) {
    tracer->instant(obs::job_pid(job_.id()),
                    obs::node_track(tracker_.node_id()), obs::Cat::kPhase,
                    name, sim.now());
  }
}

void TaskAttempt::on_node_availability(bool up) {
  if (terminal()) return;
  if (compute_ && phase_ == Phase::kCompute) {
    if (up) {
      compute_->start();
    } else {
      compute_->pause();
    }
  }
  if (up && phase_ == Phase::kShuffle) shuffle_pump();
}

void TaskAttempt::succeed() {
  assert(!terminal());
  phase_ = Phase::kDone;
  if (!job_.jobtracker().available()) {
    // Master down: the attempt is locally done but cannot report. It stays
    // kRunning (slot held, like a real tracker's) until recovery replays
    // the parked outcome through the normal attempt_succeeded path.
    parked_outcome_ = ParkedOutcome::kSucceeded;
    job_.jobtracker().note_report_parked();
    return;
  }
  transition(AttemptState::kSucceeded);
  cleanup_io();
  job_.attempt_succeeded(*this);
}

void TaskAttempt::fail() {
  assert(!terminal());
  if (!job_.jobtracker().available()) {
    parked_outcome_ = ParkedOutcome::kFailed;
    job_.jobtracker().note_report_parked();
    return;
  }
  transition(AttemptState::kFailed);
  cleanup_io();
  job_.attempt_failed(*this);
}

void TaskAttempt::deliver_parked_report() {
  // Fetch failures first — they may revert maps, which the outcome's
  // bookkeeping must observe — then the terminal outcome.
  std::vector<TaskId> fetch_failures;
  fetch_failures.swap(parked_fetch_failures_);
  const ParkedOutcome outcome = parked_outcome_;
  parked_outcome_ = ParkedOutcome::kNone;
  for (TaskId m : fetch_failures) {
    if (terminal()) return;
    job_.report_fetch_failure(m, *this);
  }
  if (terminal() || outcome == ParkedOutcome::kNone) return;
  if (outcome == ParkedOutcome::kSucceeded) {
    transition(AttemptState::kSucceeded);
    cleanup_io();
    job_.attempt_succeeded(*this);
  } else {
    transition(AttemptState::kFailed);
    cleanup_io();
    job_.attempt_failed(*this);
  }
}

void TaskAttempt::kill() {
  if (terminal()) return;
  // A killed attempt owes nobody a report (orphan reconciliation relies on
  // this: killing an orphan drops its parked outcome too).
  parked_outcome_ = ParkedOutcome::kNone;
  parked_fetch_failures_.clear();
  transition(AttemptState::kKilled);
  cleanup_io();
}

void TaskAttempt::cleanup_io() {
  auto& dfs = job_.jobtracker().dfs();
  auto& sim = job_.jobtracker().simulation();
  if (io_op_) {
    dfs.cancel_op(*io_op_);
    io_op_.reset();
  }
  // Cancel in OpId (issue) order: each cancel tears down a flow, and under eager
  // settles the recompute sequence is order-observable (§2 determinism
  // contract), so the map's hash order must not decide it.
  std::vector<dfs::OpId> fetch_ops;
  fetch_ops.reserve(fetching_.size());
  for (auto& [task, op] : fetching_) fetch_ops.push_back(op);  // detlint: allow(unordered-iter) -- value snapshot, sorted on the next line before any cancel
  std::sort(fetch_ops.begin(), fetch_ops.end());
  for (dfs::OpId op : fetch_ops) dfs.cancel_op(op);
  fetching_.clear();
  for (EventId e : retry_events_) sim.cancel(e);
  retry_events_.clear();
  master_retry_.cancel();
  if (compute_) compute_->cancel();
}

}  // namespace moon::mapred
