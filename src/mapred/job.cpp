#include "mapred/job.hpp"

#include <algorithm>
#include <ostream>
#include <cassert>
#include <stdexcept>

#include "common/log.hpp"
#include "mapred/jobtracker.hpp"
#include "recovery/master_journal.hpp"

namespace moon::mapred {

Job::Job(JobTracker& jobtracker, JobId id, JobSpec spec)
    : jobtracker_(jobtracker),
      id_(id),
      spec_(std::move(spec)),
      use_index_(jobtracker.config().index_mode ==
                 SchedulerConfig::IndexMode::kIndexed) {
  build_tasks();
}

void Job::build_tasks() {
  const auto& input = jobtracker_.dfs().namenode().file(spec_.input_file);
  if (static_cast<int>(input.blocks.size()) < spec_.num_maps) {
    throw std::logic_error("Job: input file has fewer blocks than maps");
  }
  int order = 0;
  for (int i = 0; i < spec_.num_maps; ++i) {
    const TaskId id = task_ids_.next();
    Task t;
    t.id = id;
    t.type = TaskType::kMap;
    t.index = i;
    t.input_block = input.blocks[static_cast<std::size_t>(i)];
    t.schedule_order = order++;
    tasks_.emplace(id, std::move(t));
    map_tasks_.push_back(id);
    order_to_task_.push_back(id);
  }
  for (int i = 0; i < spec_.num_reduces; ++i) {
    const TaskId id = task_ids_.next();
    Task t;
    t.id = id;
    t.type = TaskType::kReduce;
    t.index = i;
    t.schedule_order = order++;
    tasks_.emplace(id, std::move(t));
    reduce_tasks_.push_back(id);
    order_to_task_.push_back(id);
  }
  // detlint: allow(unordered-iter) -- pending_insert lands each task in ordered (class, schedule-order) buckets; insertion order into an ordered set is immaterial
  for (auto& [tid, t] : tasks_) pending_insert(t);
}

// ---- scheduling indices -----------------------------------------------------

void Job::set_task_state(Task& t, TaskState next) {
  const TaskState prev = t.state;
  if (prev == next) return;
  bump_sched_epoch();
  if (auto* journal = jobtracker_.journal()) {
    if (next == TaskState::kCompleted) {
      journal->record_task_completed(id_, t.id);
    } else if (prev == TaskState::kCompleted) {
      journal->record_task_reverted(id_, t.id);
    }
  }
  t.state = next;
  const int ti = type_index(t.type);
  switch (prev) {
    case TaskState::kPending: pending_remove(t); break;
    case TaskState::kRunning: running_[ti].erase(t.schedule_order); break;
    case TaskState::kCompleted: --completed_count_[ti]; break;
  }
  switch (next) {
    case TaskState::kPending: pending_insert(t); break;
    case TaskState::kRunning: running_[ti].insert(t.schedule_order); break;
    case TaskState::kCompleted: ++completed_count_[ti]; break;
  }
}

void Job::pending_insert(Task& t) {
  const PendingKey key = pending_key(t);
  pending_[type_index(t.type)].insert(key);
  if (t.type != TaskType::kMap) return;
  const auto& nn = jobtracker_.dfs().namenode();
  if (!nn.block_exists(t.input_block)) return;
  block_to_pending_map_[t.input_block] = t.id;
  for (NodeId n : nn.block(t.input_block).replicas) {
    pending_local_[n].insert(key);
  }
}

void Job::pending_remove(Task& t) {
  const PendingKey key = pending_key(t);
  pending_[type_index(t.type)].erase(key);
  if (t.type != TaskType::kMap) return;
  block_to_pending_map_.erase(t.input_block);
  const auto& nn = jobtracker_.dfs().namenode();
  if (!nn.block_exists(t.input_block)) return;
  for (NodeId n : nn.block(t.input_block).replicas) {
    auto it = pending_local_.find(n);
    if (it != pending_local_.end()) it->second.erase(key);
  }
}

void Job::on_replica_event(BlockId block, NodeId node, bool added) {
  auto it = block_to_pending_map_.find(block);
  if (it == block_to_pending_map_.end()) return;  // not a pending map's input
  const PendingKey key = pending_key(task(it->second));
  if (added) {
    pending_local_[node].insert(key);
  } else {
    auto bucket = pending_local_.find(node);
    if (bucket != pending_local_.end()) bucket->second.erase(key);
  }
}

void Job::note_attempt_state(TaskAttempt& attempt, AttemptState prev,
                             AttemptState next) {
  bump_sched_epoch();
  if (!attempt.speculative()) return;
  if (prev == AttemptState::kRunning) --running_speculative_count_;
  if (next == AttemptState::kRunning) ++running_speculative_count_;
}

std::size_t Job::locality_bucket_size(NodeId node) const {
  auto it = pending_local_.find(node);
  return it == pending_local_.end() ? 0 : it->second.size();
}

std::optional<TaskId> Job::pick_pending(TaskType type,
                                        TaskTracker& tracker) const {
  return use_index_ ? pick_pending_indexed(type, tracker)
                    : pick_pending_scan(type, tracker);
}

std::optional<TaskId> Job::pick_pending_scan(TaskType type,
                                             TaskTracker& tracker) const {
  // "The JobTracker first tries to schedule a non-running task, giving high
  // priority to the recently failed tasks"; map input locality preferred.
  const auto& nn = jobtracker_.dfs().namenode();
  TaskId best = TaskId::invalid();
  // Rank: (failures > 0, locality, schedule order).
  int best_key_failed = -1;
  int best_key_local = -1;
  int best_key_order = 0;
  for (TaskId id : tasks_of(type)) {
    const Task& t = task(id);
    if (t.state != TaskState::kPending) continue;
    const int failed = t.failures > 0 ? 1 : 0;
    int local = 0;
    if (type == TaskType::kMap && nn.block_exists(t.input_block) &&
        nn.block(t.input_block).has_replica_on(tracker.node_id())) {
      local = 1;
    }
    const bool better =
        !best.valid() || failed > best_key_failed ||
        (failed == best_key_failed && local > best_key_local) ||
        (failed == best_key_failed && local == best_key_local &&
         t.schedule_order < best_key_order);
    if (better) {
      best = id;
      best_key_failed = failed;
      best_key_local = local;
      best_key_order = t.schedule_order;
    }
  }
  if (!best.valid()) return std::nullopt;
  return best;
}

std::optional<TaskId> Job::pick_pending_indexed(TaskType type,
                                                TaskTracker& tracker) const {
  // Bucket lookups reproduce the scan ranking: the global pending set's
  // begin() is the best (failed-class, order) candidate overall; the
  // tracker's locality bucket begin() is the best local one. A local
  // candidate wins its failed class; a failed non-local outranks a fresh
  // local.
  const auto& pending = pending_[type_index(type)];
  if (pending.empty()) return std::nullopt;
  const PendingKey global_best = *pending.begin();
  if (type == TaskType::kMap) {
    auto it = pending_local_.find(tracker.node_id());
    if (it != pending_local_.end() && !it->second.empty()) {
      const PendingKey local_best = *it->second.begin();
      const PendingKey chosen =
          local_best.first <= global_best.first ? local_best : global_best;
      return order_to_task_[static_cast<std::size_t>(chosen.second)];
    }
  }
  return order_to_task_[static_cast<std::size_t>(global_best.second)];
}

Task& Job::task(TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) throw std::out_of_range("Job: unknown task");
  return it->second;
}

const Task& Job::task(TaskId id) const {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) throw std::out_of_range("Job: unknown task");
  return it->second;
}

const std::vector<TaskId>& Job::tasks_of(TaskType type) const {
  return type == TaskType::kMap ? map_tasks_ : reduce_tasks_;
}

TaskAttempt* Job::attempt(AttemptId id) {
  auto it = attempts_.find(id);
  return it == attempts_.end() ? nullptr : it->second.get();
}

int Job::remaining_tasks() const {
  if (use_index_) {
    return static_cast<int>(tasks_.size()) - completed_count_[0] -
           completed_count_[1];
  }
  int remaining = 0;
  // detlint: allow(unordered-iter) -- pure integer accumulation; the count is order-independent
  for (const auto& [id, t] : tasks_) {
    if (t.state != TaskState::kCompleted) ++remaining;
  }
  return remaining;
}

int Job::completed_tasks(TaskType type) const {
  if (use_index_) return completed_count_[type_index(type)];
  int done = 0;
  for (TaskId id : tasks_of(type)) {
    if (tasks_.at(id).state == TaskState::kCompleted) ++done;
  }
  return done;
}

bool Job::all_maps_done() const {
  return completed_tasks(TaskType::kMap) == spec_.num_maps;
}

bool Job::all_reduces_done() const {
  return completed_tasks(TaskType::kReduce) == spec_.num_reduces;
}

double Job::task_progress(TaskId id) const {
  const Task& t = task(id);
  if (t.state == TaskState::kCompleted) return 1.0;
  double best = 0.0;
  if (use_index_) {
    // max() over the same live set the scan filters down to: exact.
    for (const TaskAttempt* a : t.live_attempts) {
      best = std::max(best, a->progress());
    }
    return best;
  }
  for (AttemptId a : t.attempts) {
    auto it = attempts_.find(a);
    if (it != attempts_.end() && !it->second->terminal()) {
      best = std::max(best, it->second->progress());
    }
  }
  return best;
}

double Job::average_progress(TaskType type) const {
  // Canonical form shared by both modes so the doubles match bit for bit:
  // completed tasks contribute an exact integer, running-task fractions are
  // summed in schedule order, started-but-frozen pending tasks contribute
  // 0.0 (they only widen the denominator).
  int completed = 0;
  int counted = 0;
  double fractions = 0.0;
  if (use_index_) {
    const int ti = type_index(type);
    AverageCache& cache = average_cache_[ti];
    const sim::Time now = jobtracker_.simulation().now();
    if (cache.valid && cache.time == now && cache.epoch == sched_epoch_) {
      return cache.value;
    }
    completed = completed_count_[ti];
    counted = ever_started_[ti];
    for (const int order : running_[ti]) {
      fractions +=
          task_progress(order_to_task_[static_cast<std::size_t>(order)]);
    }
    const double value =
        counted == 0 ? 0.0
                     : (static_cast<double>(completed) + fractions) / counted;
    cache = AverageCache{true, now, sched_epoch_, value};
    return value;
  }
  {
    for (TaskId id : tasks_of(type)) {
      const Task& t = task(id);
      if (t.state == TaskState::kPending && t.attempts.empty()) continue;
      ++counted;
      if (t.state == TaskState::kCompleted) {
        ++completed;
      } else if (t.state == TaskState::kRunning) {
        fractions += task_progress(id);
      }
    }
  }
  if (counted == 0) return 0.0;
  return (static_cast<double>(completed) + fractions) / counted;
}

int Job::non_terminal_attempts(TaskId id) const {
  const Task& t = task(id);
  if (use_index_) return static_cast<int>(t.live_attempts.size());
  int n = 0;
  for (AttemptId a : t.attempts) {
    auto it = attempts_.find(a);
    if (it != attempts_.end() && !it->second->terminal()) ++n;
  }
  return n;
}

int Job::active_attempts(TaskId id) const {
  const Task& t = task(id);
  int n = 0;
  if (use_index_) {
    for (const TaskAttempt* a : t.live_attempts) {
      if (a->state() == AttemptState::kRunning) ++n;
    }
    return n;
  }
  for (AttemptId a : t.attempts) {
    auto it = attempts_.find(a);
    if (it != attempts_.end() &&
        it->second->state() == AttemptState::kRunning) {
      ++n;
    }
  }
  return n;
}

bool Job::has_attempt_on(TaskId id, NodeId node) const {
  const Task& t = task(id);
  if (use_index_) {
    for (const TaskAttempt* a : t.live_attempts) {
      if (a->tracker().node_id() == node) return true;
    }
    return false;
  }
  for (AttemptId a : t.attempts) {
    auto it = attempts_.find(a);
    if (it != attempts_.end() && !it->second->terminal() &&
        it->second->tracker().node_id() == node) {
      return true;
    }
  }
  return false;
}

bool Job::has_active_dedicated_attempt(TaskId id) const {
  const Task& t = task(id);
  if (use_index_) {
    for (const TaskAttempt* a : t.live_attempts) {
      if (a->state() == AttemptState::kRunning && a->on_dedicated()) return true;
    }
    return false;
  }
  for (AttemptId a : t.attempts) {
    auto it = attempts_.find(a);
    if (it != attempts_.end() &&
        it->second->state() == AttemptState::kRunning &&
        it->second->on_dedicated()) {
      return true;
    }
  }
  return false;
}

std::optional<sim::Time> Job::oldest_attempt_start(TaskId id) const {
  const Task& t = task(id);
  std::optional<sim::Time> oldest;
  if (use_index_) {
    for (const TaskAttempt* a : t.live_attempts) {
      const sim::Time s = a->started_at();
      if (!oldest || s < *oldest) oldest = s;
    }
    return oldest;
  }
  for (AttemptId a : t.attempts) {
    auto it = attempts_.find(a);
    if (it != attempts_.end() && !it->second->terminal()) {
      const sim::Time s = it->second->started_at();
      if (!oldest || s < *oldest) oldest = s;
    }
  }
  return oldest;
}

int Job::running_speculative() const {
  // Counts copies that are actually consuming a live slot: speculative
  // attempts marooned on suspended trackers don't hold back the cap, or a
  // burst of suspensions would starve frozen-task rescue precisely when it
  // is needed.
  if (use_index_) return running_speculative_count_;
  int n = 0;
  // detlint: allow(unordered-iter) -- pure integer accumulation; the count is order-independent
  for (const auto& [id, attempt] : attempts_) {
    if (attempt->state() == AttemptState::kRunning && attempt->speculative()) ++n;
  }
  return n;
}

bool Job::checkpoint_shielded(TaskId id) const {
  const auto& policy = jobtracker_.checkpoint_policy();
  if (!policy.config().enabled) return false;
  const Task& t = task(id);
  if (use_index_) {
    for (const TaskAttempt* a : t.live_attempts) {
      if (a->state() == AttemptState::kRunning && a->resumed() &&
          policy.shields_speculation(a->progress())) {
        return true;
      }
    }
    return false;
  }
  for (AttemptId a : t.attempts) {
    auto it = attempts_.find(a);
    if (it == attempts_.end()) continue;
    const TaskAttempt& attempt = *it->second;
    if (attempt.state() == AttemptState::kRunning && attempt.resumed() &&
        policy.shields_speculation(attempt.progress())) {
      return true;
    }
  }
  return false;
}

// ---- lifecycle -------------------------------------------------------------

void Job::submit() {
  auto& sim = jobtracker_.simulation();
  metrics_.submitted_at = sim.now();
  if (spec_.deadline > 0) {
    metrics_.deadline_at = sim.now() + spec_.deadline;
  }
  if (auto* tracer = sim.tracer()) {
    const std::uint32_t pid = obs::job_pid(id_);
    tracer->name_process(pid, "job" + std::to_string(id_.value()) + " " +
                                  spec_.name);
    tracer->name_track(pid, 0, "job");
    span_ = tracer->begin(pid, 0, obs::Cat::kJob, spec_.name, sim.now(),
                          {{"maps", std::to_string(spec_.num_maps)},
                           {"reduces", std::to_string(spec_.num_reduces)}});
  }
  if (log::enabled(log::Level::kInfo)) {
    log::info("job", "submitted",
              {{"job", std::to_string(id_.value())},
               {"name", spec_.name},
               {"maps", std::to_string(spec_.num_maps)},
               {"reduces", std::to_string(spec_.num_reduces)}});
  }
}

TaskAttempt& Job::launch_attempt(TaskId task_id, TaskTracker& tracker,
                                 bool speculative) {
  Task& t = task(task_id);
  const AttemptId id = attempt_ids_.next();
  auto attempt = std::make_unique<TaskAttempt>(*this, id, task_id, tracker,
                                               speculative);
  TaskAttempt* raw = attempt.get();
  bump_sched_epoch();
  if (t.attempts.empty()) ++ever_started_[type_index(t.type)];
  if (speculative) ++running_speculative_count_;  // born AttemptState::kRunning
  if (metrics_.first_launch_at < 0) {
    metrics_.first_launch_at = jobtracker_.simulation().now();
  }
  ++live_attempt_count_;
  metrics_.peak_running_attempts =
      std::max(metrics_.peak_running_attempts, live_attempt_count_);
  if (t.type == TaskType::kReduce &&
      jobtracker_.config().checkpoint.enabled) {
    // Resume from the latest live checkpoint (a prior attempt's salvaged
    // shuffle/compute state) instead of starting cold. Mirrors the
    // dfs_aware_recovery map path: the lookup trusts only checkpoints whose
    // every log segment still has a readable replica, and drops ones whose
    // segments are gone for good.
    auto& store = jobtracker_.checkpoint_store();
    const auto* ckpt = store.latest_live(id_, task_id);
    if (ckpt != nullptr &&
        jobtracker_.checkpoint_policy().should_resume(*ckpt, speculative)) {
      raw->prime_resume(*ckpt);
    } else if (ckpt == nullptr && store.is_dead(id_, task_id)) {
      store.drop(id_, task_id, /*dead=*/true);
    }
  }
  attempts_.emplace(id, std::move(attempt));
  t.attempts.push_back(id);
  t.live_attempts.push_back(raw);
  tracker.occupy(t.type, raw);
  if (t.type == TaskType::kMap) {
    ++metrics_.launched_map_attempts;
  } else {
    ++metrics_.launched_reduce_attempts;
  }
  if (speculative) ++metrics_.speculative_attempts;
  update_task_state(t);
  raw->start();
  return *raw;
}

void Job::kill_attempt(TaskAttempt& attempt) {
  if (attempt.terminal()) return;
  attempt.kill();
  Task& t = task(attempt.task());
  if (t.type == TaskType::kMap) {
    ++metrics_.killed_map_attempts;
  } else {
    ++metrics_.killed_reduce_attempts;
  }
  finalize_attempt(attempt);
  // Abandon the attempt's partial output unless it is the winning copy.
  const FileId file = attempt.output_file();
  if (file.valid() && file != t.output_file) {
    jobtracker_.dfs().namenode().remove_file(file);
  }
  update_task_state(t);
  check_attempt_cap(t);
}

void Job::kill_attempts_on(TaskTracker& tracker) {
  for (TaskAttempt* attempt : tracker.all_attempts()) {
    kill_attempt(*attempt);
  }
}

void Job::attempt_succeeded(TaskAttempt& attempt) {
  Task& t = task(attempt.task());
  finalize_attempt(attempt);

  if (t.state == TaskState::kCompleted) {
    // A redundant copy finished after the task was already done; drop its
    // output.
    const FileId file = attempt.output_file();
    if (file.valid() && file != t.output_file) {
      jobtracker_.dfs().namenode().remove_file(file);
    }
    return;
  }

  set_task_state(t, TaskState::kCompleted);
  t.output_file = attempt.output_file();
  t.completed_on = attempt.tracker().node_id();
  fetch_failures_.erase(t.id);

  const double elapsed =
      sim::to_seconds(jobtracker_.simulation().now() - attempt.started_at());
  if (t.type == TaskType::kMap) {
    metrics_.map_time_s.add(elapsed);
  } else {
    metrics_.reduce_time_s.add(
        sim::to_seconds(jobtracker_.simulation().now() - attempt.shuffle_done_at()));
  }

  // Kill the losers.
  for (AttemptId a : t.attempts) {
    auto it = attempts_.find(a);
    if (it != attempts_.end() && !it->second->terminal()) {
      kill_attempt(*it->second);
    }
  }

  if (t.type == TaskType::kMap) {
    notify_reduces_of_map(t.id);
  } else {
    // The reduce is done; its checkpoint log is dead weight in the DFS.
    jobtracker_.checkpoint_store().drop(id_, t.id);
  }
}

void Job::attempt_failed(TaskAttempt& attempt) {
  Task& t = task(attempt.task());
  finalize_attempt(attempt);
  if (t.type == TaskType::kMap) {
    ++metrics_.failed_map_attempts;
  } else {
    ++metrics_.failed_reduce_attempts;
  }
  const FileId file = attempt.output_file();
  if (file.valid() && file != t.output_file) {
    jobtracker_.dfs().namenode().remove_file(file);
  }
  jobtracker_.note_attempt_failure(attempt.tracker());
  ++t.failures;
  if (t.failures > jobtracker_.config().max_task_failures) {
    fail_job(JobFailureReason::kTaskFailures);
    return;
  }
  update_task_state(t);
  check_attempt_cap(t);
}

void Job::check_attempt_cap(Task& t) {
  if (finished() || t.state == TaskState::kCompleted) return;
  const int cap = jobtracker_.config().max_attempt_failures;
  if (cap <= 0 || static_cast<int>(t.attempts.size()) < cap) return;
  if (log::enabled(log::Level::kWarn)) {
    log::warn("job", "task attempt cap reached",
              {{"job", std::to_string(id_.value())},
               {"task", std::to_string(t.id.value())},
               {"attempts", std::to_string(t.attempts.size())}});
  }
  fail_job(JobFailureReason::kTooManyAttempts);
}

void Job::finalize_attempt(TaskAttempt& attempt) {
  Task& t = task(attempt.task());
  bump_sched_epoch();
  --live_attempt_count_;
  auto& live = t.live_attempts;
  auto it = std::find(live.begin(), live.end(), &attempt);
  if (it != live.end()) {
    *it = live.back();
    live.pop_back();
  }
  attempt.tracker().release(t.type, &attempt);
  // A killed/failed reduce must not leave its own (possibly stalled-on-a-
  // dead-node) checkpoint emit in flight: it would block the relocated
  // attempt's emits until the write resolves — potentially never.
  if (t.type == TaskType::kReduce && attempt.state() != AttemptState::kSucceeded &&
      jobtracker_.config().checkpoint.enabled) {
    jobtracker_.checkpoint_store().abort_emit_from(
        id_, t.id, attempt.tracker().node_id());
  }
}

void Job::update_task_state(Task& t) {
  if (t.state == TaskState::kCompleted) return;
  set_task_state(t, non_terminal_attempts(t.id) > 0 ? TaskState::kRunning
                                                    : TaskState::kPending);
}

// ---- intermediate / output data ---------------------------------------------

FileId Job::map_output(TaskId map_task) const {
  const Task& t = task(map_task);
  if (t.state != TaskState::kCompleted) return FileId::invalid();
  return t.output_file;
}

Bytes Job::shuffle_partition_bytes() const {
  return std::max<Bytes>(
      1, spec_.intermediate_per_map / std::max(1, spec_.num_reduces));
}

FileId Job::create_intermediate_file(TaskId map_task, AttemptId attempt) {
  const std::string name = spec_.name + ".m" +
                           std::to_string(task(map_task).index) + ".a" +
                           std::to_string(attempt.value());
  return jobtracker_.dfs().namenode().create_file(name, spec_.intermediate_kind,
                                                  spec_.intermediate_factor);
}

FileId Job::create_output_file(TaskId reduce_task, AttemptId attempt) {
  const std::string name = spec_.name + ".r" +
                           std::to_string(task(reduce_task).index) + ".a" +
                           std::to_string(attempt.value());
  // §IV-A: output starts life as an opportunistic file.
  return jobtracker_.dfs().namenode().create_file(
      name, dfs::FileKind::kOpportunistic, spec_.output_factor);
}

void Job::report_fetch_failure(TaskId map_task, TaskAttempt& reporter) {
  ++metrics_.fetch_failures;
  const Task& mt = task(map_task);
  if (mt.state != TaskState::kCompleted) return;  // already being re-run

  auto& reporters = fetch_failures_[map_task];
  reporters.insert(reporter.task());

  const auto& cfg = jobtracker_.config();
  bool reexecute = false;

  if (cfg.fetch_failure_query_threshold > 0 &&
      static_cast<int>(reporters.size()) >= cfg.fetch_failure_query_threshold) {
    // Augmented rule: consult the DFS; if no live replica of the output
    // remains, reissue the map immediately (§VI-B).
    auto& nn = jobtracker_.dfs().namenode();
    bool any_live = false;
    if (mt.output_file.valid() && nn.file_exists(mt.output_file)) {
      for (BlockId b : nn.file(mt.output_file).blocks) {
        if (nn.block_readable(b)) {
          any_live = true;
          break;
        }
      }
    }
    if (!any_live) reexecute = true;
  }

  // Classic Hadoop rule: > fraction of running reduces reporting.
  int running_reduces = 0;
  for (TaskId r : reduce_tasks_) {
    if (tasks_.at(r).state == TaskState::kRunning) ++running_reduces;
  }
  if (running_reduces > 0 &&
      static_cast<double>(reporters.size()) >
          cfg.fetch_failure_fraction * running_reduces) {
    reexecute = true;
  }

  if (reexecute) revert_map(map_task);
}

void Job::revert_map(TaskId map_task) {
  Task& t = task(map_task);
  if (t.state != TaskState::kCompleted) return;
  ++metrics_.map_reexecutions;
  if (auto* tracer = jobtracker_.simulation().tracer()) {
    tracer->instant(obs::job_pid(id_), 0, obs::Cat::kSched, "map-revert",
                    jobtracker_.simulation().now(),
                    {{"map", std::to_string(t.index)}});
  }
  if (log::enabled(log::Level::kWarn)) {
    log::warn("job", "map output lost, re-executing",
              {{"job", std::to_string(id_.value())},
               {"map", std::to_string(t.index)}});
  }
  fetch_failures_.erase(map_task);
  if (t.output_file.valid()) {
    jobtracker_.dfs().namenode().remove_file(t.output_file);
    t.output_file = FileId::invalid();
  }
  t.completed_on = NodeId::invalid();
  ++t.failures;  // "recently failed" priority boost for rescheduling
  set_task_state(t, TaskState::kPending);
}

void Job::handle_tracker_death(TaskTracker& tracker) {
  kill_attempts_on(tracker);
  // The kills may have tripped the attempt cap and aborted the job.
  if (finished()) return;
  if (all_reduces_done()) return;
  // Hadoop semantics: completed maps that ran on a dead tracker are
  // re-executed — their output is presumed local to the lost node. MOON
  // instead asks the DFS whether live replicas of the output remain and
  // re-runs only when they do not.
  const bool dfs_aware = jobtracker_.config().moon_scheduling ||
                         jobtracker_.config().dfs_aware_recovery;
  auto& nn = jobtracker_.dfs().namenode();
  for (TaskId id : map_tasks_) {
    Task& t = tasks_.at(id);
    if (t.state != TaskState::kCompleted) continue;
    if (t.completed_on != tracker.node_id()) continue;
    if (dfs_aware && t.output_file.valid() && nn.file_exists(t.output_file)) {
      bool any_live = false;
      for (BlockId b : nn.file(t.output_file).blocks) {
        if (nn.block_readable(b)) {
          any_live = true;
          break;
        }
      }
      if (any_live) continue;  // replicas survive; no need to re-run
    }
    revert_map(id);
  }
}

int Job::reconcile_after_recovery() {
  // Orphaned attempts: the recovered state says their work is already done
  // (the task completed via another copy, or the whole job finished). Normal
  // operation kills these on the spot; a crash window can leave them
  // running, so the post-recovery sweep catches up. AttemptId order (§2
  // determinism contract).
  int killed = 0;
  std::vector<AttemptId> ids;
  ids.reserve(attempts_.size());
  // detlint: allow(unordered-iter) -- read-only filter into a snapshot that is sorted below before any kill
  for (const auto& [aid, a] : attempts_) {
    if (!a->terminal()) ids.push_back(aid);
  }
  std::sort(ids.begin(), ids.end());
  for (AttemptId aid : ids) {
    TaskAttempt* a = attempt(aid);
    if (a == nullptr || a->terminal()) continue;
    if (finished() || task(a->task()).state == TaskState::kCompleted) {
      kill_attempt(*a);
      ++killed;
    }
  }
  return killed;
}

void Job::notify_reduces_of_map(TaskId map_task) {
  for (TaskId r : reduce_tasks_) {
    for (AttemptId a : tasks_.at(r).attempts) {
      auto it = attempts_.find(a);
      if (it != attempts_.end() && !it->second->terminal()) {
        it->second->notify_map_completed(map_task);
      }
    }
  }
}

void Job::try_commit() {
  if (finished()) return;
  if (!all_maps_done() || !all_reduces_done()) return;
  auto& nn = jobtracker_.dfs().namenode();
  // Committing converts and completes output files — metadata ops against
  // the NameNode. The completion scan retries once it is back.
  if (!nn.available()) return;
  if (!outputs_converted_) {
    // "Once all [Reduce tasks] are completed [output files] are then
    // converted to reliable files."
    for (TaskId r : reduce_tasks_) {
      const FileId f = tasks_.at(r).output_file;
      if (f.valid()) nn.convert_to_reliable(f);
    }
    outputs_converted_ = true;
  }
  // "Only after all data blocks of the output file have reached its
  // replication factor, will the job be marked as complete." Reaching the
  // factor latches per file (try_complete_file is sticky): transient replica
  // loss after a file is fully replicated does not un-commit it.
  bool all_complete = true;
  for (TaskId r : reduce_tasks_) {
    const FileId f = tasks_.at(r).output_file;
    if (!f.valid() || !nn.try_complete_file(f)) all_complete = false;
  }
  if (!all_complete) return;
  metrics_.completed = true;
  metrics_.finished_at = jobtracker_.simulation().now();
  if (auto* journal = jobtracker_.journal()) {
    journal->record_job_finished(id_, /*completed=*/true);
  }
  if (auto* tracer = jobtracker_.simulation().tracer()) {
    tracer->end(span_, metrics_.finished_at, {{"outcome", "completed"}});
    span_ = {};
  }
  if (log::enabled(log::Level::kInfo)) {
    log::info("job", "completed", {{"job", std::to_string(id_.value())}});
  }
  jobtracker_.checkpoint_store().drop_job(id_);
  jobtracker_.notify_job_finished(*this);
}

void Job::fail_job(JobFailureReason reason) {
  if (finished()) return;
  metrics_.failed = true;
  metrics_.failure_reason = reason;
  metrics_.finished_at = jobtracker_.simulation().now();
  if (auto* journal = jobtracker_.journal()) {
    journal->record_job_finished(id_, /*completed=*/false);
  }
  if (auto* tracer = jobtracker_.simulation().tracer()) {
    tracer->end(span_, metrics_.finished_at,
                {{"outcome", "failed"}, {"reason", to_string(reason)}});
    span_ = {};
  }
  if (log::enabled(log::Level::kWarn)) {
    log::warn("job", "failed",
              {{"job", std::to_string(id_.value())},
               {"reason", to_string(reason)}});
  }
  // Tear down all live attempts in AttemptId order: finalize_attempt releases
  // tracker slots and bumps scheduling counters, so the kill sequence must
  // not follow the map's hash order (§2 determinism contract).
  std::vector<AttemptId> live;
  live.reserve(attempts_.size());
  // detlint: allow(unordered-iter) -- read-only filter into a snapshot that is sorted below before any kill
  for (const auto& [id, attempt] : attempts_) {
    if (!attempt->terminal()) live.push_back(id);
  }
  std::sort(live.begin(), live.end());
  for (AttemptId id : live) {
    auto& attempt = attempts_.at(id);
    if (!attempt->terminal()) {
      attempt->kill();
      finalize_attempt(*attempt);
    }
  }
  jobtracker_.checkpoint_store().drop_job(id_);
  jobtracker_.notify_job_finished(*this);
}

std::size_t Job::approx_retained_bytes() const {
  // Per-task/per-attempt constants approximate the hash-node + index-entry
  // overhead around the structs themselves; a reduce attempt additionally
  // tracks its fetch sets, folded into the flat per-attempt constant.
  return sizeof(Job) + spec_.name.size() +
         tasks_.size() * (sizeof(Task) + 96) +
         attempts_.size() * (sizeof(TaskAttempt) + 128) +
         order_to_task_.size() * sizeof(TaskId);
}

void Job::debug_dump(std::ostream& os) const {
  os << "job " << id_ << " '" << spec_.name << "' maps "
     << completed_tasks(TaskType::kMap) << '/' << spec_.num_maps << " reduces "
     << completed_tasks(TaskType::kReduce) << '/' << spec_.num_reduces << '\n';
  // Dump in task-creation order so two same-seed runs print byte-identical
  // dumps (tasks_ is hash-ordered).
  for (TaskId tid : order_to_task_) {
    const Task& t = tasks_.at(tid);
    if (t.state == TaskState::kCompleted) continue;
    os << "  " << to_string(t.type) << '[' << t.index << "] "
       << to_string(t.state) << " failures=" << t.failures << '\n';
    for (AttemptId a : t.attempts) {
      auto it = attempts_.find(a);
      if (it == attempts_.end()) continue;
      const TaskAttempt& att = *it->second;
      if (att.terminal()) continue;
      os << "    attempt " << a << " on node " << att.tracker().node_id()
         << (att.tracker().host_available() ? " (up)" : " (down)") << " state="
         << to_string(att.state()) << " phase=" << static_cast<int>(att.phase())
         << " progress=" << att.progress()
         << (att.speculative() ? " speculative" : "");
      if (t.type == TaskType::kReduce &&
          att.phase() == TaskAttempt::Phase::kShuffle) {
        os << " fetching=" << att.fetching_count()
           << " retrywait=" << att.retry_wait_count();
        auto missing = att.unfetched_maps();
        os << " missing=[";
        for (std::size_t i = 0; i < missing.size() && i < 3; ++i) {
          const Task& mt = tasks_.at(missing[i]);
          os << "map" << mt.index << ":" << to_string(mt.state) << ":file="
             << mt.output_file;
          auto& nn = jobtracker_.dfs().namenode();
          if (mt.output_file.valid() && nn.file_exists(mt.output_file)) {
            for (BlockId b : nn.file(mt.output_file).blocks) {
              const auto live = nn.live_replicas(b);
              os << "(d" << live.dedicated << ",v" << live.volatile_count
                 << ",h" << live.hibernated << ")";
            }
          } else {
            os << "(nofile)";
          }
          os << ' ';
        }
        os << "]";
      }
      os << '\n';
    }
  }
}

const char* to_string(TaskType type) {
  return type == TaskType::kMap ? "map" : "reduce";
}

const char* to_string(TaskState state) {
  switch (state) {
    case TaskState::kPending: return "pending";
    case TaskState::kRunning: return "running";
    case TaskState::kCompleted: return "completed";
  }
  return "?";
}

const char* to_string(AttemptState state) {
  switch (state) {
    case AttemptState::kRunning: return "running";
    case AttemptState::kInactive: return "inactive";
    case AttemptState::kSucceeded: return "succeeded";
    case AttemptState::kKilled: return "killed";
    case AttemptState::kFailed: return "failed";
  }
  return "?";
}

const char* to_string(JobFailureReason reason) {
  switch (reason) {
    case JobFailureReason::kNone: return "none";
    case JobFailureReason::kTaskFailures: return "task_failures";
    case JobFailureReason::kTooManyAttempts: return "too_many_attempts";
    case JobFailureReason::kShed: return "shed";
  }
  return "?";
}

const char* to_string(AdmissionConfig::Policy policy) {
  switch (policy) {
    case AdmissionConfig::Policy::kRejectNewest: return "reject-newest";
    case AdmissionConfig::Policy::kDeferWithBackoff: return "defer-backoff";
    case AdmissionConfig::Policy::kShedLowestPriority: return "shed-lowest";
  }
  return "?";
}

}  // namespace moon::mapred
