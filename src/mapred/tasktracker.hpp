// TaskTracker: the per-node worker daemon.
//
// Tracks execution slots (M map + R reduce), heartbeats the JobTracker when
// its host node is up, and relays node availability transitions to the
// attempts it hosts (pausing their compute). Mirrors Hadoop: "a TaskTracker
// process tracks the available execution slots [and] contacts the
// JobTracker for an assignment when it detects an empty execution slot".
#pragma once

#include <vector>

#include "cluster/node.hpp"
#include "common/ids.hpp"
#include "mapred/types.hpp"
#include "simkit/periodic.hpp"
#include "simkit/simulation.hpp"

namespace moon::mapred {

class JobTracker;
class TaskAttempt;

class TaskTracker {
 public:
  TaskTracker(sim::Simulation& sim, cluster::Node& host, JobTracker& jobtracker,
              sim::Duration heartbeat_interval);

  TaskTracker(const TaskTracker&) = delete;
  TaskTracker& operator=(const TaskTracker&) = delete;

  [[nodiscard]] NodeId node_id() const { return host_.id(); }
  [[nodiscard]] cluster::Node& host() { return host_; }
  [[nodiscard]] bool dedicated() const { return host_.dedicated(); }
  [[nodiscard]] bool host_available() const { return host_.available(); }

  [[nodiscard]] int map_slots() const { return host_.config().map_slots; }
  [[nodiscard]] int reduce_slots() const { return host_.config().reduce_slots; }
  [[nodiscard]] int free_slots(TaskType type) const;
  [[nodiscard]] int used_slots(TaskType type) const;

  /// Claims a slot for a new attempt; the Job registers the attempt itself.
  void occupy(TaskType type, TaskAttempt* attempt);
  /// Releases the slot when an attempt reaches a terminal state.
  void release(TaskType type, TaskAttempt* attempt);

  /// Hosted attempts in launch order. Deterministic iteration matters: kill
  /// and checkpoint sweeps draw from the DFS RNG, so a pointer-hashed
  /// container would make replays diverge run to run.
  [[nodiscard]] const std::vector<TaskAttempt*>& attempts(TaskType type) const;
  [[nodiscard]] std::vector<TaskAttempt*> all_attempts() const;

  /// Starts heartbeating. `first_beat_delay` < 0 (default) means one full
  /// interval (aligned ticks); kStaggered passes a per-node phase offset.
  void start(sim::Duration first_beat_delay = -1);

 private:
  void beat();
  void checkpoint_scan();

  sim::Simulation& sim_;
  cluster::Node& host_;
  JobTracker& jobtracker_;
  std::vector<TaskAttempt*> map_attempts_;
  std::vector<TaskAttempt*> reduce_attempts_;
  sim::PeriodicTask heartbeat_;
  /// Offers hosted reduce attempts a checkpoint every
  /// checkpoint.scan_interval (started only when checkpointing is enabled).
  sim::PeriodicTask checkpoint_task_;
};

}  // namespace moon::mapred
