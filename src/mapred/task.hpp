// Tasks and task attempts.
//
// A `Task` is a unit of the job (map i / reduce j) with scheduling metadata;
// a `TaskAttempt` is one execution instance on a specific tracker, a small
// asynchronous state machine over DFS I/O and a pausable compute WorkUnit:
//
//   map    : READ input block -> COMPUTE -> WRITE intermediate file
//   reduce : SHUFFLE (fetch every map's partition) -> COMPUTE -> WRITE output
//
// Attempts never self-destruct: terminal transitions are driven through the
// Job, which owns them and keeps the metrics.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "checkpoint/types.hpp"
#include "common/ids.hpp"
#include "simkit/retry.hpp"
#include "dfs/dfs.hpp"
#include "mapred/types.hpp"
#include "obs/trace.hpp"
#include "simkit/work_unit.hpp"

namespace moon::mapred {

class Job;
class TaskTracker;
class TaskAttempt;

struct Task {
  TaskId id;
  TaskType type = TaskType::kMap;
  int index = 0;            ///< map index / reduce partition
  TaskState state = TaskState::kPending;
  BlockId input_block;      ///< maps only
  int failures = 0;         ///< failed attempts (footnote-1 accounting)
  int schedule_order = 0;   ///< original scheduling order (Hadoop tie-break)
  std::vector<AttemptId> attempts;  ///< all attempts ever launched

  /// Non-terminal attempts only (maintained by the Job on launch/finalize):
  /// the kIndexed hot path reads per-task aggregates — counts, oldest start,
  /// best progress, placement checks — from this handful of live pointers
  /// instead of walking every attempt ever launched.
  std::vector<TaskAttempt*> live_attempts;

  /// Output of the winning map attempt (maps only; invalid until complete).
  FileId output_file;

  /// Node that hosted the winning attempt (for Hadoop's re-execute-on-
  /// tracker-death rule; maps only).
  NodeId completed_on;
};

class TaskAttempt {
 public:
  enum class Phase { kRead, kCompute, kWrite, kShuffle, kDone };

  TaskAttempt(Job& job, AttemptId id, TaskId task, TaskTracker& tracker,
              bool speculative);
  ~TaskAttempt();

  TaskAttempt(const TaskAttempt&) = delete;
  TaskAttempt& operator=(const TaskAttempt&) = delete;

  void start();

  /// Framework-initiated termination (redundant copy, tracker death, ...).
  void kill();

  [[nodiscard]] AttemptId id() const { return id_; }
  [[nodiscard]] TaskId task() const { return task_; }
  [[nodiscard]] TaskTracker& tracker() { return tracker_; }
  [[nodiscard]] const TaskTracker& tracker() const { return tracker_; }
  [[nodiscard]] AttemptState state() const { return state_; }
  [[nodiscard]] bool terminal() const {
    return state_ == AttemptState::kSucceeded || state_ == AttemptState::kKilled ||
           state_ == AttemptState::kFailed;
  }
  [[nodiscard]] bool speculative() const { return speculative_; }
  [[nodiscard]] bool on_dedicated() const;
  [[nodiscard]] sim::Time started_at() const { return started_at_; }
  [[nodiscard]] Phase phase() const { return phase_; }
  /// File this attempt is writing (intermediate for maps, output for
  /// reduces); invalid before the write phase.
  [[nodiscard]] FileId output_file() const { return my_output_; }
  [[nodiscard]] sim::Time shuffle_done_at() const { return shuffle_done_at_; }

  /// Hadoop progress score in [0,1]:
  ///   map   : 0.05 read + 0.90 x compute + 0.05 write
  ///   reduce: (shuffled_fraction + 2 x compute_progress) / 3
  [[nodiscard]] double progress() const;

  /// Scheduler view (MOON): mark inactive / reactivate on tracker
  /// suspension transitions. Physical progress is governed by node
  /// availability, not by this flag.
  void set_inactive(bool inactive);

  /// Node availability transitions (pauses/resumes the compute unit).
  void on_node_availability(bool up);

  /// Shuffle bookkeeping: a map completed (fresh output available).
  void notify_map_completed(TaskId map_task);

  // ---- checkpointing (reduces only) ---------------------------------------
  /// Offers this attempt a checkpoint (TaskTracker scan / suspension hook).
  /// Policy-gated; `forced` bypasses the min-progress-delta.
  void maybe_checkpoint(bool forced = false);

  /// Arms the restore path: start() will read `ckpt`'s log from the DFS and
  /// bootstrap shuffle/compute state from it before running. Must be called
  /// before start().
  void prime_resume(checkpoint::ReduceCheckpoint ckpt);

  /// True once this attempt successfully restored a checkpoint.
  [[nodiscard]] bool resumed() const { return resumed_; }
  /// Progress score the restored checkpoint carried (0 if none).
  [[nodiscard]] double salvaged_progress() const { return salvaged_progress_; }

  // ---- master crash-recovery (DESIGN.md §14) ------------------------------
  /// True when an outcome (success/failure) or fetch-failure report is
  /// waiting for the JobTracker to come back.
  [[nodiscard]] bool has_parked_report() const {
    return parked_outcome_ != ParkedOutcome::kNone ||
           !parked_fetch_failures_.empty();
  }
  /// Delivers the parked reports through the normal Job paths (recovery
  /// sweep). Fetch failures first, then the terminal outcome.
  void deliver_parked_report();

  /// Maps whose partitions this (reduce) attempt has not yet fetched.
  [[nodiscard]] std::vector<TaskId> unfetched_maps() const;
  [[nodiscard]] std::size_t fetched_count() const { return fetched_.size(); }
  [[nodiscard]] std::size_t fetching_count() const { return fetching_.size(); }
  [[nodiscard]] std::size_t retry_wait_count() const { return retry_wait_.size(); }

 private:
  // --- map pipeline ---
  void map_read_input();
  void map_compute_done();

  // --- reduce pipeline ---
  /// Seeds pending_fetch_ with the currently-fetchable maps; call once when
  /// entering Phase::kShuffle (cold start or checkpoint restore).
  void init_shuffle_queue();
  void shuffle_pump();
  /// Launches the partition fetch; false when the output file has no blocks
  /// yet (defensive — the map stays queued for a later pump).
  bool start_fetch(TaskId map_task);
  void fetch_done(TaskId map_task, bool ok);
  void reduce_compute_done();

  // --- checkpoint restore ---
  void restore_read_next();
  void apply_restored_checkpoint();

  void begin_compute(sim::Duration duration);
  /// Creates this attempt's output file and starts the write. When the
  /// NameNode is down the step parks behind the exponential-backoff retrier
  /// (the computed output waits, spilled locally, like a real task's would).
  void start_output_write();
  void write_output(Bytes size, dfs::FileKind kind, dfs::ReplicationFactor factor,
                    const char* label);
  void write_done(bool ok);

  void succeed();
  void fail();
  void cleanup_io();

  /// Phase-transition instant on this attempt's trace track (no-op when
  /// tracing is off).
  void note_phase(const char* name);

  /// All state_ changes flow through here so the Job's incremental counters
  /// (running speculative copies) stay in sync with attempt transitions.
  void transition(AttemptState next);

  Job& job_;
  AttemptId id_;
  TaskId task_;
  TaskTracker& tracker_;
  bool speculative_;
  AttemptState state_ = AttemptState::kRunning;
  Phase phase_ = Phase::kRead;
  sim::Time started_at_ = 0;

  std::optional<dfs::OpId> io_op_;        ///< read or write in flight
  std::unique_ptr<sim::WorkUnit> compute_;
  sim::Duration compute_total_ = 0;
  FileId my_output_;                       ///< file this attempt is writing

  // Checkpoint restore state.
  std::optional<checkpoint::ReduceCheckpoint> resume_;  ///< armed before start
  std::size_t restore_block_ = 0;  ///< next log segment to read back
  sim::Duration resume_compute_total_ = 0;
  sim::Duration resume_compute_done_ = 0;
  bool resumed_ = false;
  double salvaged_progress_ = 0.0;

  // Reduce/shuffle state.
  std::unordered_set<TaskId> fetched_;
  std::unordered_map<TaskId, dfs::OpId> fetching_;
  std::unordered_set<TaskId> retry_wait_;  ///< failed; waiting for retry tick
  /// Maps believed fetchable (output committed; not fetched/fetching/waiting),
  /// in TaskId order — the order the old full scan picked them in. Fed by
  /// shuffle start + map-completion notifications + retry expiry; a map whose
  /// output was revoked (re-execution) lingers until the lazy validity check
  /// at pick time skips it, exactly as the scan's `continue` did. Replaces
  /// the O(maps) rescan per fetch completion (quadratic per attempt).
  std::set<TaskId> pending_fetch_;
  std::vector<EventId> retry_events_;
  sim::Time shuffle_done_at_ = 0;
  obs::Tracer::SpanId span_;  ///< start→terminal span on the job's node track

  // Master crash-recovery state (inert while master_crash is off).
  enum class ParkedOutcome { kNone, kSucceeded, kFailed };
  ParkedOutcome parked_outcome_ = ParkedOutcome::kNone;
  std::vector<TaskId> parked_fetch_failures_;  ///< arrival order
  sim::Retrier master_retry_;  ///< NameNode-down output-write backoff
};

}  // namespace moon::mapred
