#include "mapred/job_policy.hpp"

#include <algorithm>
#include <cstdint>

#include "mapred/job.hpp"

namespace moon::mapred {

namespace {

/// Submission order: the heartbeat loop already hands jobs over in this
/// order, so ranking is the identity.
class FifoPolicy final : public JobSchedulingPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "fifo"; }
  void order(std::vector<Job*>&) const override {}
};

/// Deficit-based fair share: offer the slot to the job whose running
/// attempts are smallest relative to its remaining work, i.e. minimise
/// live_attempts / remaining_tasks. Compared with cross-multiplication so
/// the ranking is exact integer arithmetic (no float ties). Jobs with no
/// remaining work (committed outputs still replicating) need no slots and
/// sort last.
class FairSharePolicy final : public JobSchedulingPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "fair-share"; }
  void order(std::vector<Job*>& jobs) const override {
    std::stable_sort(jobs.begin(), jobs.end(), [](Job* a, Job* b) {
      const std::int64_t ra = a->remaining_tasks();
      const std::int64_t rb = b->remaining_tasks();
      if ((ra == 0) != (rb == 0)) return ra != 0;
      if (ra == 0) return false;  // both drained: keep submission order
      // live_a/ra < live_b/rb  <=>  live_a*rb < live_b*ra
      return static_cast<std::int64_t>(a->live_attempts()) * rb <
             static_cast<std::int64_t>(b->live_attempts()) * ra;
    });
  }
};

/// Shortest remaining time first: the job with the least remaining work wins
/// every free slot, so small jobs slip past large ones (no preemption —
/// running attempts are never killed for priority).
class ShortestRemainingPolicy final : public JobSchedulingPolicy {
 public:
  [[nodiscard]] const char* name() const override {
    return "shortest-remaining";
  }
  void order(std::vector<Job*>& jobs) const override {
    std::stable_sort(jobs.begin(), jobs.end(), [](Job* a, Job* b) {
      const int ra = a->remaining_tasks();
      const int rb = b->remaining_tasks();
      if ((ra == 0) != (rb == 0)) return ra != 0;  // drained jobs last
      return ra < rb;
    });
  }
};

}  // namespace

std::unique_ptr<JobSchedulingPolicy> JobSchedulingPolicy::make(
    SchedulerConfig::JobPolicy policy) {
  switch (policy) {
    case SchedulerConfig::JobPolicy::kFifo:
      return std::make_unique<FifoPolicy>();
    case SchedulerConfig::JobPolicy::kFairShare:
      return std::make_unique<FairSharePolicy>();
    case SchedulerConfig::JobPolicy::kShortestRemaining:
      return std::make_unique<ShortestRemainingPolicy>();
  }
  return std::make_unique<FifoPolicy>();
}

const char* to_string(SchedulerConfig::JobPolicy policy) {
  switch (policy) {
    case SchedulerConfig::JobPolicy::kFifo: return "fifo";
    case SchedulerConfig::JobPolicy::kFairShare: return "fair-share";
    case SchedulerConfig::JobPolicy::kShortestRemaining:
      return "shortest-remaining";
  }
  return "?";
}

}  // namespace moon::mapred
