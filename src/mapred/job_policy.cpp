#include "mapred/job_policy.hpp"

#include <algorithm>
#include <cstdint>

#include "mapred/job.hpp"

namespace moon::mapred {

namespace {

/// Submission order: the heartbeat loop already hands jobs over in this
/// order, so ranking is the identity.
class FifoPolicy final : public JobSchedulingPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "fifo"; }
  void order(std::vector<Job*>&) const override {}
};

/// Deficit-based fair share: offer the slot to the job whose running
/// attempts are smallest relative to its remaining work, i.e. minimise
/// live_attempts / remaining_tasks. Compared with cross-multiplication so
/// the ranking is exact integer arithmetic (no float ties). Jobs with no
/// remaining work (committed outputs still replicating) need no slots and
/// sort last.
class FairSharePolicy final : public JobSchedulingPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "fair-share"; }
  void order(std::vector<Job*>& jobs) const override {
    std::stable_sort(jobs.begin(), jobs.end(), [](Job* a, Job* b) {
      const std::int64_t ra = a->remaining_tasks();
      const std::int64_t rb = b->remaining_tasks();
      if ((ra == 0) != (rb == 0)) return ra != 0;
      if (ra == 0) return false;  // both drained: keep submission order
      // live_a/ra < live_b/rb  <=>  live_a*rb < live_b*ra
      return static_cast<std::int64_t>(a->live_attempts()) * rb <
             static_cast<std::int64_t>(b->live_attempts()) * ra;
    });
  }
};

/// Shortest remaining time first: the job with the least remaining work wins
/// every free slot, so small jobs slip past large ones (no preemption —
/// running attempts are never killed for priority).
class ShortestRemainingPolicy final : public JobSchedulingPolicy {
 public:
  [[nodiscard]] const char* name() const override {
    return "shortest-remaining";
  }
  void order(std::vector<Job*>& jobs) const override {
    std::stable_sort(jobs.begin(), jobs.end(), [](Job* a, Job* b) {
      const int ra = a->remaining_tasks();
      const int rb = b->remaining_tasks();
      if ((ra == 0) != (rb == 0)) return ra != 0;  // drained jobs last
      return ra < rb;
    });
  }
};

/// Earliest deadline first: jobs carrying a deadline sort by absolute
/// deadline (metrics().deadline_at), ahead of deadline-free jobs which keep
/// submission order among themselves; drained jobs (no remaining work) sort
/// last like every other policy. No preemption — a deadline job only wins
/// *free* slots.
class DeadlineEdfPolicy final : public JobSchedulingPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "deadline-edf"; }
  void order(std::vector<Job*>& jobs) const override {
    std::stable_sort(jobs.begin(), jobs.end(), [](Job* a, Job* b) {
      const bool da = a->remaining_tasks() == 0;
      const bool db = b->remaining_tasks() == 0;
      if (da != db) return !da;  // drained jobs last
      const sim::Time ea = a->metrics().deadline_at;
      const sim::Time eb = b->metrics().deadline_at;
      if ((ea > 0) != (eb > 0)) return ea > 0;  // deadline jobs first
      if (ea > 0) return ea < eb;               // earliest deadline wins
      return false;  // both deadline-free: keep submission order
    });
  }
};

}  // namespace

std::unique_ptr<JobSchedulingPolicy> JobSchedulingPolicy::make(
    SchedulerConfig::JobPolicy policy) {
  switch (policy) {
    case SchedulerConfig::JobPolicy::kFifo:
      return std::make_unique<FifoPolicy>();
    case SchedulerConfig::JobPolicy::kFairShare:
      return std::make_unique<FairSharePolicy>();
    case SchedulerConfig::JobPolicy::kShortestRemaining:
      return std::make_unique<ShortestRemainingPolicy>();
    case SchedulerConfig::JobPolicy::kDeadlineEdf:
      return std::make_unique<DeadlineEdfPolicy>();
  }
  return std::make_unique<FifoPolicy>();
}

const char* to_string(SchedulerConfig::JobPolicy policy) {
  switch (policy) {
    case SchedulerConfig::JobPolicy::kFifo: return "fifo";
    case SchedulerConfig::JobPolicy::kFairShare: return "fair-share";
    case SchedulerConfig::JobPolicy::kShortestRemaining:
      return "shortest-remaining";
    case SchedulerConfig::JobPolicy::kDeadlineEdf: return "deadline-edf";
  }
  return "?";
}

}  // namespace moon::mapred
