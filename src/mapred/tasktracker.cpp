#include "mapred/tasktracker.hpp"

#include <algorithm>
#include <stdexcept>

#include "simkit/fault_hooks.hpp"
#include "mapred/jobtracker.hpp"
#include "mapred/task.hpp"

namespace moon::mapred {

TaskTracker::TaskTracker(sim::Simulation& sim, cluster::Node& host,
                         JobTracker& jobtracker, sim::Duration heartbeat_interval)
    : sim_(sim),
      host_(host),
      jobtracker_(jobtracker),
      heartbeat_(sim, heartbeat_interval, [this] { beat(); }),
      checkpoint_task_(
          sim,
          std::max<sim::Duration>(jobtracker.config().checkpoint.scan_interval,
                                  sim::kSecond),
          [this] { checkpoint_scan(); }) {
  host_.subscribe([this](bool up) {
    for (TaskAttempt* attempt : all_attempts()) attempt->on_node_availability(up);
  });
}

int TaskTracker::free_slots(TaskType type) const {
  const int total = type == TaskType::kMap ? map_slots() : reduce_slots();
  return total - used_slots(type);
}

int TaskTracker::used_slots(TaskType type) const {
  return static_cast<int>(type == TaskType::kMap ? map_attempts_.size()
                                                 : reduce_attempts_.size());
}

void TaskTracker::occupy(TaskType type, TaskAttempt* attempt) {
  auto& hosted = type == TaskType::kMap ? map_attempts_ : reduce_attempts_;
  if (free_slots(type) <= 0) throw std::logic_error("TaskTracker: no free slot");
  hosted.push_back(attempt);
}

void TaskTracker::release(TaskType type, TaskAttempt* attempt) {
  auto& hosted = type == TaskType::kMap ? map_attempts_ : reduce_attempts_;
  hosted.erase(std::remove(hosted.begin(), hosted.end(), attempt), hosted.end());
}

const std::vector<TaskAttempt*>& TaskTracker::attempts(TaskType type) const {
  return type == TaskType::kMap ? map_attempts_ : reduce_attempts_;
}

std::vector<TaskAttempt*> TaskTracker::all_attempts() const {
  std::vector<TaskAttempt*> out;
  out.reserve(map_attempts_.size() + reduce_attempts_.size());
  out.insert(out.end(), map_attempts_.begin(), map_attempts_.end());
  out.insert(out.end(), reduce_attempts_.begin(), reduce_attempts_.end());
  return out;
}

void TaskTracker::start(sim::Duration first_beat_delay) {
  if (first_beat_delay < 0) {
    heartbeat_.start();
  } else {
    heartbeat_.start_after(first_beat_delay);
  }
  if (jobtracker_.config().checkpoint.enabled) checkpoint_task_.start();
}

void TaskTracker::checkpoint_scan() {
  // A suspended host can't write; the suspension hook in the JobTracker
  // covers the best-effort goodbye checkpoint.
  if (!host_.available()) return;
  for (TaskAttempt* attempt : reduce_attempts_) attempt->maybe_checkpoint();
}

void TaskTracker::beat() {
  // A suspended host is silent; the JobTracker infers suspension/death from
  // the heartbeat gap.
  if (!host_.available()) return;
  // A crashed JobTracker drops the beat on the floor, deterministically; the
  // re-registration storm (or the first beat after recovery) catches up.
  if (!jobtracker_.available()) {
    jobtracker_.note_heartbeat_missed();
    return;
  }
  if (auto* faults = sim_.faults()) {
    const auto fate = faults->heartbeat_fate(host_.id());
    if (fate.drop) return;  // lost on the wire; the gap detector takes over
    if (fate.delay > 0) {
      // Delivered late. The host may have gone down in the meantime — a
      // message from a now-dead node would resurrect its tracker, so the
      // delivery rechecks availability.
      sim_.schedule_after(fate.delay, [this] {
        if (host_.available()) jobtracker_.heartbeat(*this);
      });
      return;
    }
  }
  jobtracker_.heartbeat(*this);
}

}  // namespace moon::mapred
