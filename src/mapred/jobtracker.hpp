// JobTracker: the master control plane.
//
// Receives tracker heartbeats, assigns tasks (non-running tasks first with
// failed-task priority and map locality, then speculative copies via the
// configured SpeculationPolicy), monitors tracker liveness
// (suspended/dead), arbitrates fetch-failure reports, and runs the job
// completion scan.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "checkpoint/checkpoint_policy.hpp"
#include "checkpoint/checkpoint_store.hpp"
#include "cluster/cluster.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "dfs/dfs.hpp"
#include "mapred/admission.hpp"
#include "mapred/job.hpp"
#include "mapred/job_policy.hpp"
#include "mapred/speculation.hpp"
#include "mapred/tasktracker.hpp"
#include "mapred/types.hpp"
#include "simkit/periodic.hpp"

namespace moon::recovery {
class JobTrackerJournal;
}  // namespace moon::recovery

namespace moon::mapred {

enum class TrackerState { kLive, kSuspended, kDead };

class JobTracker {
 public:
  JobTracker(sim::Simulation& sim, cluster::Cluster& cluster, dfs::Dfs& dfs,
             SchedulerConfig config, std::uint64_t seed);

  JobTracker(const JobTracker&) = delete;
  JobTracker& operator=(const JobTracker&) = delete;

  /// Creates a TaskTracker on `node`. Call for every worker before start().
  TaskTracker& add_tracker(NodeId node);
  /// Convenience: trackers on every cluster node.
  void add_all_trackers();

  void start();

  JobId submit(JobSpec spec);
  [[nodiscard]] Job& job(JobId id);
  [[nodiscard]] const Job& job(JobId id) const;
  [[nodiscard]] bool has_job(JobId id) const { return jobs_.contains(id); }

  // ---- steady-state serving (DESIGN.md §16) -------------------------------
  /// Admission gate; null unless config().admission.enabled. Callers that
  /// want overload protection route arrivals through admission()->offer()
  /// instead of submit(); direct submit() is never gated.
  [[nodiscard]] AdmissionController* admission() { return admission_.get(); }

  /// Unfinished jobs currently in the table (the control-plane queue depth
  /// admission caps). O(1): counted at submit/finish.
  [[nodiscard]] int live_jobs() const { return live_jobs_; }
  /// Non-terminal attempts across all unfinished jobs (in-flight data-plane
  /// work). O(live jobs): sums each job's O(1) counter.
  [[nodiscard]] int live_attempts_total() const;
  /// Approximate heap footprint of every job still in the table — the
  /// quantity retired-job GC keeps O(live jobs) on open-ended streams.
  [[nodiscard]] std::size_t retained_state_bytes() const;

  /// Erases a *finished* job from the live table (throws otherwise). After
  /// a job finishes, no sim event references it (attempt cleanup cancels
  /// them; trackers drop their pointers at finalize), every periodic scan
  /// and gauge skips finished jobs, and the journal records the retirement
  /// so recovery is not diffed against it — so destroying it here only
  /// frees memory. Callers must not retire from inside an on_job_finished
  /// callback (the Job is still on the stack there); the multi-job harness
  /// drains retirements between sim steps.
  void retire_job(JobId id);
  [[nodiscard]] std::int64_t jobs_retired() const { return jobs_retired_; }

  // ---- crash-recovery (DESIGN.md §14) -------------------------------------
  /// False while the master is crashed: heartbeats are dropped, scans are
  /// frozen and attempt outcome reports park on their attempts.
  [[nodiscard]] bool available() const { return up_; }
  /// Bumped on every recovery; trackers re-register when it moves.
  [[nodiscard]] int epoch() const { return epoch_; }
  /// Installs the op journal (null = crash-recovery off, zero perturbation).
  void set_journal(recovery::JobTrackerJournal* journal) { journal_ = journal; }
  [[nodiscard]] recovery::JobTrackerJournal* journal() { return journal_; }
  /// Fault-injector entry points: crash loses all soft state (tracker
  /// liveness, quarantine backoffs); recover() replays the journal, diffs it
  /// against live job state, re-registers available trackers, reconciles
  /// orphaned attempts and delivers parked outcome reports.
  void crash();
  void recover();
  /// Counters for obs/benches; all stay 0 when master_crash is off.
  [[nodiscard]] std::int64_t heartbeats_missed() const {
    return heartbeats_missed_;
  }
  [[nodiscard]] std::int64_t reports_parked() const { return reports_parked_; }
  [[nodiscard]] std::int64_t reports_replayed() const {
    return reports_replayed_;
  }
  [[nodiscard]] std::int64_t reregistrations() const { return reregistrations_; }
  [[nodiscard]] std::int64_t orphans_killed() const { return orphans_killed_; }
  /// TaskTracker-side bookkeeping hooks (master down).
  void note_heartbeat_missed() { ++heartbeats_missed_; }
  void note_report_parked() { ++reports_parked_; }
  void note_report_replayed() { ++reports_replayed_; }

  /// Fires when a job completes or fails.
  void on_job_finished(std::function<void(Job&)> callback);

  // ---- callbacks from the data plane --------------------------------------
  void heartbeat(TaskTracker& tracker);
  void notify_job_finished(Job& job);

  /// Flaky-node quarantine feed: Job::attempt_failed reports the hosting
  /// tracker here. Once a tracker accumulates quarantine_threshold strikes
  /// it is quarantined — heartbeats are still accepted (it stays live) but
  /// no work is assigned — for an exponentially growing backoff, then
  /// readmitted with a clean slate. No-op when the threshold is 0 (default).
  void note_attempt_failure(TaskTracker& tracker);

  // ---- environment observations -------------------------------------------
  [[nodiscard]] TrackerState tracker_state(NodeId node) const;
  /// Total execution slots (map + reduce) on live trackers — the paper's
  /// "currently available execution slots".
  [[nodiscard]] int available_execution_slots() const;
  [[nodiscard]] int total_slots(TaskType type) const;

  /// Wall-clock nanoseconds spent making heartbeat assignment decisions
  /// (pending picks + speculation) — the measured "scheduling time" axis of
  /// the paper's Figure 4. Purely observational; never feeds the sim. The
  /// profiler's kHeartbeat counter is the single source of truth.
  [[nodiscard]] std::uint64_t scheduling_wall_ns() const {
    return sim_.profiler().counter(sim::Profiler::Key::kHeartbeat).ns;
  }
  [[nodiscard]] std::uint64_t heartbeats_served() const { return heartbeats_; }

  // ---- quarantine introspection -------------------------------------------
  [[nodiscard]] bool quarantined(NodeId node) const;
  /// Trackers currently serving a quarantine backoff.
  [[nodiscard]] int quarantined_count() const { return quarantined_count_; }
  /// Lifetime quarantine entries across all trackers.
  [[nodiscard]] std::int64_t quarantines_total() const {
    return quarantines_total_;
  }

  [[nodiscard]] const SchedulerConfig& config() const { return config_; }
  /// The configured multi-job arbitration policy (DESIGN.md §10).
  [[nodiscard]] const JobSchedulingPolicy& job_policy() const {
    return *job_policy_;
  }
  /// Reduce-checkpoint subsystem (inert unless config().checkpoint.enabled).
  [[nodiscard]] checkpoint::CheckpointStore& checkpoint_store() {
    return checkpoint_store_;
  }
  [[nodiscard]] const checkpoint::CheckpointPolicy& checkpoint_policy() const {
    return checkpoint_policy_;
  }
  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] dfs::Dfs& dfs() { return dfs_; }
  [[nodiscard]] cluster::Cluster& cluster() { return cluster_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  /// Registered trackers in creation order — a cached view, not a copy.
  [[nodiscard]] const std::vector<TaskTracker*>& trackers() const {
    return tracker_ptrs_;
  }
  /// Submitted jobs in submission order (metrics gauges iterate this).
  [[nodiscard]] const std::vector<Job*>& jobs_in_order() const {
    return jobs_by_order_;
  }

 private:
  struct TrackerInfo {
    TaskTracker* tracker = nullptr;
    TrackerState state = TrackerState::kLive;
    sim::Time last_heartbeat = 0;
    // Flaky-node quarantine (inert while quarantine_threshold == 0).
    int flaky_strikes = 0;          ///< attempt failures since last readmission
    int quarantines = 0;            ///< lifetime entries (backoff exponent)
    bool quarantined = false;
    sim::Time quarantined_until = 0;
  };

  void liveness_scan();
  void completion_scan();
  void assign_work(TaskTracker& tracker);
  void set_tracker_state(TrackerInfo& info, TrackerState next);
  /// Journal-vs-live divergence count after replay (lost completed tasks,
  /// lost jobs, phantom completions). 0 on every correct recovery.
  [[nodiscard]] std::int64_t diff_against_journal() const;

  sim::Simulation& sim_;
  cluster::Cluster& cluster_;
  dfs::Dfs& dfs_;
  SchedulerConfig config_;
  Rng rng_;
  /// Dedicated stream for kStaggered heartbeat offsets: drawing them from
  /// rng_ would shift every later scheduling draw and silently change
  /// kAligned-comparable state.
  Rng phase_rng_;

  std::vector<std::unique_ptr<TaskTracker>> trackers_;
  std::vector<TaskTracker*> tracker_ptrs_;  ///< cached trackers() view
  /// Ordered by NodeId: the liveness scan takes state-changing actions
  /// (tracker death -> attempt kills -> re-pend order), so its iteration
  /// order must not depend on hash layout or registration order (§2
  /// determinism contract).
  std::map<NodeId, TrackerInfo> tracker_info_;
  std::unordered_map<JobId, std::unique_ptr<Job>> jobs_;
  /// Submission-order view of jobs_: the heartbeat loop and completion scan
  /// iterate this instead of the unordered map, so multi-job assignment
  /// order is deterministic (and index/scan modes stay in lockstep).
  std::vector<Job*> jobs_by_order_;
  /// Scratch for assign_work: unfinished jobs in the order the configured
  /// JobSchedulingPolicy wants them offered the heartbeat's slot.
  std::vector<Job*> assign_order_;
  IdAllocator<JobId> job_ids_;
  /// Live-tracker slot aggregates, updated on tracker add and every state
  /// transition (kIndexed reads these; kScan recounts).
  int live_map_slots_ = 0;
  int live_reduce_slots_ = 0;
  int live_jobs_ = 0;  ///< unfinished jobs in the table (admission queue depth)
  std::int64_t jobs_retired_ = 0;
  int quarantined_count_ = 0;
  std::int64_t quarantines_total_ = 0;
  std::uint64_t heartbeats_ = 0;
  // Crash-recovery state (inert — and all zero — while master_crash is off).
  bool up_ = true;
  int epoch_ = 0;
  recovery::JobTrackerJournal* journal_ = nullptr;
  std::int64_t heartbeats_missed_ = 0;
  std::int64_t reports_parked_ = 0;
  std::int64_t reports_replayed_ = 0;
  std::int64_t reregistrations_ = 0;
  std::int64_t orphans_killed_ = 0;
  std::unique_ptr<SpeculationPolicy> speculator_;
  std::unique_ptr<JobSchedulingPolicy> job_policy_;
  /// Null unless config_.admission.enabled (zero perturbation). Declared
  /// after jobs_: its destructor cancels the defer timer, whose parked
  /// specs reference nothing, but the controller reads job state.
  std::unique_ptr<AdmissionController> admission_;
  checkpoint::CheckpointPolicy checkpoint_policy_;
  // Declared after jobs_: the store's destructor cancels in-flight DFS ops
  // whose callbacks touch jobs, so it must go first.
  checkpoint::CheckpointStore checkpoint_store_;

  std::vector<std::function<void(Job&)>> finished_callbacks_;
  sim::PeriodicTask liveness_task_;
  sim::PeriodicTask completion_task_;
  bool started_ = false;
  /// Lifetime token for the NameNode replica listener (declared last so it
  /// expires before any member teardown can trigger DFS activity).
  std::shared_ptr<void> listener_guard_ = std::make_shared<int>(0);
};

}  // namespace moon::mapred
