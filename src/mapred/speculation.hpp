// Speculative-execution policies (paper §V).
//
// `HadoopSpeculator` reproduces the Hadoop-0.17 baseline: a task is a
// straggler if it has run for at least a minute and its progress score lags
// the average of its type by 0.2; one backup copy max; stragglers picked in
// original scheduling order with map-locality preference.
//
// `MoonSpeculator` implements §V-A/B/C: frozen-before-slow lists sorted by
// ascending progress, a global cap on concurrent speculative copies (20 % of
// available slots), two-phase homestretch replication (maintain R active
// copies when remaining tasks < H % of slots), and optional hybrid awareness
// (dedicated nodes host backups; tasks with a dedicated copy are excluded
// from further replication and from the homestretch).
#pragma once

#include <optional>

#include "common/ids.hpp"
#include "mapred/types.hpp"

namespace moon::mapred {

class Job;
class JobTracker;
class TaskTracker;

class SpeculationPolicy {
 public:
  virtual ~SpeculationPolicy() = default;

  /// Picks a task of `type` deserving a speculative copy on `tracker`;
  /// nullopt if none qualifies.
  virtual std::optional<TaskId> pick(Job& job, TaskType type,
                                     TaskTracker& tracker) = 0;
};

class HadoopSpeculator final : public SpeculationPolicy {
 public:
  explicit HadoopSpeculator(JobTracker& jobtracker) : jobtracker_(jobtracker) {}
  std::optional<TaskId> pick(Job& job, TaskType type, TaskTracker& tracker) override;

 private:
  [[nodiscard]] bool is_straggler(Job& job, TaskId id, double average) const;
  JobTracker& jobtracker_;
};

/// LATE — "Longest Approximate Time to End" (Zaharia et al., OSDI'08).
///
/// Estimates each running task's progress *rate* (score / elapsed time) and
/// speculates on the slow task expected to finish furthest in the future,
/// subject to a global SpeculativeCap. Designed for heterogeneous but
/// *dedicated* resources: the paper's related work explains why a constant-
/// rate assumption misfires on opportunistic ones ("the task progress rate
/// is not constant on a node"), and combining LATE with MOON is named as
/// future work — this implementation enables exactly that comparison.
class LateSpeculator final : public SpeculationPolicy {
 public:
  explicit LateSpeculator(JobTracker& jobtracker) : jobtracker_(jobtracker) {}
  std::optional<TaskId> pick(Job& job, TaskType type, TaskTracker& tracker) override;

  /// Estimated seconds until `task` completes at its current rate;
  /// +infinity for stalled tasks.
  [[nodiscard]] double estimated_time_left(Job& job, TaskId task) const;
  /// Progress score per second since first launch (0 for unstarted).
  [[nodiscard]] double progress_rate(Job& job, TaskId task) const;

 private:
  JobTracker& jobtracker_;
};

class MoonSpeculator final : public SpeculationPolicy {
 public:
  explicit MoonSpeculator(JobTracker& jobtracker) : jobtracker_(jobtracker) {}
  std::optional<TaskId> pick(Job& job, TaskType type, TaskTracker& tracker) override;

  /// True when the job has entered the homestretch phase (§V-B).
  [[nodiscard]] bool in_homestretch(const Job& job) const;

 private:
  std::optional<TaskId> pick_frozen(Job& job, TaskType type, TaskTracker& tracker);
  std::optional<TaskId> pick_slow(Job& job, TaskType type, TaskTracker& tracker);
  std::optional<TaskId> pick_homestretch(Job& job, TaskType type,
                                         TaskTracker& tracker);
  std::optional<TaskId> pick_dedicated_backup(Job& job, TaskType type,
                                              TaskTracker& tracker);
  JobTracker& jobtracker_;
};

}  // namespace moon::mapred
