// Speculative-execution policies (paper §V).
//
// `HadoopSpeculator` reproduces the Hadoop-0.17 baseline: a task is a
// straggler if it has run for at least a minute and its progress score lags
// the average of its type by 0.2; one backup copy max; stragglers picked in
// original scheduling order with map-locality preference.
//
// `MoonSpeculator` implements §V-A/B/C: frozen-before-slow lists sorted by
// ascending progress, a global cap on concurrent speculative copies (20 % of
// available slots), two-phase homestretch replication (maintain R active
// copies when remaining tasks < H % of slots), and optional hybrid awareness
// (dedicated nodes host backups; tasks with a dedicated copy are excluded
// from further replication and from the homestretch).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "mapred/types.hpp"

namespace moon::mapred {

class Job;
class JobTracker;
class TaskTracker;

class SpeculationPolicy {
 public:
  virtual ~SpeculationPolicy() = default;

  /// Picks a task of `type` deserving a speculative copy on `tracker`;
  /// nullopt if none qualifies.
  virtual std::optional<TaskId> pick(Job& job, TaskType type,
                                     TaskTracker& tracker) = 0;

 protected:
  /// Memo key for tracker-independent candidate enumeration, valid for one
  /// (job, sim tick, sched-epoch) combination — callers keep one memo per
  /// task type so map/reduce probes within a heartbeat don't thrash each
  /// other. Heartbeat bursts land on the same tick (every tracker beats on
  /// the same schedule), so under kIndexed the O(running) enumeration is
  /// paid once per tick instead of once per heartbeat; only the cheap
  /// per-tracker filters (placement, locality) run per pick. `slots`
  /// captures any additional input the candidate predicate reads that can
  /// change without a job epoch bump (live execution slots: a tracker with
  /// no hosted attempts flipping state moves the homestretch threshold but
  /// touches no job). kScan never consults the memo.
  struct MemoKey {
    bool valid = false;
    JobId job;
    sim::Time time = 0;
    std::uint64_t epoch = 0;
    int slots = 0;
  };
  [[nodiscard]] static bool fresh(const MemoKey& key, const Job& job,
                                  sim::Time now, std::uint64_t epoch,
                                  int slots = 0);
  static void stamp(MemoKey& key, const Job& job, sim::Time now,
                    std::uint64_t epoch, int slots = 0);
  [[nodiscard]] static int type_slot(TaskType type) {
    return type == TaskType::kMap ? 0 : 1;
  }
};

class HadoopSpeculator final : public SpeculationPolicy {
 public:
  explicit HadoopSpeculator(JobTracker& jobtracker) : jobtracker_(jobtracker) {}
  std::optional<TaskId> pick(Job& job, TaskType type, TaskTracker& tracker) override;

 private:
  [[nodiscard]] bool is_straggler(Job& job, TaskId id, double average) const;
  JobTracker& jobtracker_;
  struct Memo {
    MemoKey key;
    std::vector<TaskId> stragglers;  ///< schedule order, pre-tracker filters
  };
  /// Per (task type, job): concurrent jobs alternate within a heartbeat
  /// burst (assign_work probes them in order), so a shared slot would
  /// thrash. Entries are few (one per job ever probed) and tiny.
  std::unordered_map<JobId, Memo> memo_[2];
};

/// LATE — "Longest Approximate Time to End" (Zaharia et al., OSDI'08).
///
/// Estimates each running task's progress *rate* (score / elapsed time) and
/// speculates on the slow task expected to finish furthest in the future,
/// subject to a global SpeculativeCap. Designed for heterogeneous but
/// *dedicated* resources: the paper's related work explains why a constant-
/// rate assumption misfires on opportunistic ones ("the task progress rate
/// is not constant on a node"), and combining LATE with MOON is named as
/// future work — this implementation enables exactly that comparison.
class LateSpeculator final : public SpeculationPolicy {
 public:
  explicit LateSpeculator(JobTracker& jobtracker) : jobtracker_(jobtracker) {}
  std::optional<TaskId> pick(Job& job, TaskType type, TaskTracker& tracker) override;

  /// Estimated seconds until `task` completes at its current rate;
  /// +infinity for stalled tasks.
  [[nodiscard]] double estimated_time_left(Job& job, TaskId task) const;
  /// Progress score per second since first launch (0 for unstarted).
  [[nodiscard]] double progress_rate(Job& job, TaskId task) const;

 private:
  JobTracker& jobtracker_;
  struct Memo {
    MemoKey key;
    std::vector<double> rates;  ///< every running task, schedule order
    struct Candidate {
      TaskId id;
      double rate;
      double time_left;
    };
    std::vector<Candidate> candidates;  ///< pre-tracker filters applied
  };
  std::unordered_map<JobId, Memo> memo_[2];  ///< per (task type, job)
};

class MoonSpeculator final : public SpeculationPolicy {
 public:
  explicit MoonSpeculator(JobTracker& jobtracker) : jobtracker_(jobtracker) {}
  std::optional<TaskId> pick(Job& job, TaskType type, TaskTracker& tracker) override;

  /// True when the job has entered the homestretch phase (§V-B).
  [[nodiscard]] bool in_homestretch(const Job& job) const;

 private:
  std::optional<TaskId> pick_frozen(Job& job, TaskType type, TaskTracker& tracker);
  std::optional<TaskId> pick_slow(Job& job, TaskType type, TaskTracker& tracker);
  std::optional<TaskId> pick_homestretch(Job& job, TaskType type,
                                         TaskTracker& tracker);
  std::optional<TaskId> pick_dedicated_backup(Job& job, TaskType type,
                                              TaskTracker& tracker);
  JobTracker& jobtracker_;
  struct ListMemo {
    MemoKey key;
    std::vector<TaskId> list;  ///< schedule order, pre-tracker filters
  };
  /// Returns the tracker-independent candidate list: enumerated fresh under
  /// kScan, served from (and lazily rebuilt into) `memo` under kIndexed.
  /// `slots` must carry every predicate input that can change without a job
  /// epoch bump (0 when there is none).
  template <typename Enumerate>
  std::vector<TaskId> memoized_list(Job& job, ListMemo& memo,
                                    Enumerate&& enumerate, int slots = 0);
  struct JobMemos {
    ListMemo frozen;
    ListMemo slow;
    ListMemo homestretch;
    ListMemo dedicated;
  };
  /// Per (task type, job) — see HadoopSpeculator::memo_.
  std::unordered_map<JobId, JobMemos> memos_[2];
};

}  // namespace moon::mapred
