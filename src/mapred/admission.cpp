#include "mapred/admission.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/log.hpp"
#include "mapred/job.hpp"
#include "mapred/jobtracker.hpp"
#include "obs/trace.hpp"

namespace moon::mapred {

namespace {

// Event tags folded into the sequence hash. Distinct from Decision: defers
// are not final verdicts but are part of the deterministic sequence.
constexpr std::uint8_t kTagAdmit = 1;
constexpr std::uint8_t kTagReject = 2;
constexpr std::uint8_t kTagShed = 3;
constexpr std::uint8_t kTagDefer = 4;

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

}  // namespace

AdmissionController::AdmissionController(JobTracker& jobtracker,
                                         AdmissionConfig config)
    : jobtracker_(jobtracker),
      config_(config),
      retrier_(jobtracker.simulation(),
               sim::RetryPolicy{std::max<sim::Duration>(config.defer_initial, 1),
                                std::max<sim::Duration>(config.defer_max, 1),
                                2.0,
                                /*max_attempts=*/0}) {
  // A deferred arrival must eventually resolve (the multi-job harness runs
  // until every arrival has a verdict), so the defer budget is at least one.
  config_.max_defers = std::max(config_.max_defers, 1);
}

bool AdmissionController::overloaded() const {
  if (config_.max_queued_jobs > 0 &&
      jobtracker_.live_jobs() >= config_.max_queued_jobs) {
    return true;
  }
  if (config_.max_live_attempts > 0 &&
      jobtracker_.live_attempts_total() >= config_.max_live_attempts) {
    return true;
  }
  return false;
}

double AdmissionController::backpressure() const {
  double pressure = 0.0;
  if (config_.max_queued_jobs > 0) {
    pressure = std::max(pressure, static_cast<double>(jobtracker_.live_jobs()) /
                                      config_.max_queued_jobs);
  }
  if (config_.max_live_attempts > 0) {
    pressure = std::max(
        pressure, static_cast<double>(jobtracker_.live_attempts_total()) /
                      config_.max_live_attempts);
  }
  return pressure;
}

void AdmissionController::record(std::uint8_t tag) {
  sequence_hash_ ^= tag;
  sequence_hash_ *= kFnvPrime;
  auto now = static_cast<std::uint64_t>(jobtracker_.simulation().now());
  for (int i = 0; i < 8; ++i) {
    sequence_hash_ ^= (now >> (i * 8)) & 0xff;
    sequence_hash_ *= kFnvPrime;
  }
}

void AdmissionController::offer(JobSpec spec,
                                std::function<void(const Outcome&)> on_final) {
  ++stats_.offered;
  switch (config_.policy) {
    case AdmissionConfig::Policy::kRejectNewest: {
      if (!overloaded()) {
        admit(std::move(spec), on_final, /*defers=*/0, JobId{});
        return;
      }
      record(kTagReject);
      ++stats_.rejected;
      if (log::enabled(log::Level::kInfo)) {
        log::info("admission", "rejected",
                  {{"job", spec.name},
                   {"live_jobs", std::to_string(jobtracker_.live_jobs())}});
      }
      if (auto* tracer = jobtracker_.simulation().tracer()) {
        tracer->instant(obs::kClusterPid, 0, obs::Cat::kSched,
                        "admission-reject",
                        jobtracker_.simulation().now());
      }
      Outcome out;
      out.decision = Decision::kRejected;
      if (on_final) on_final(out);
      return;
    }
    case AdmissionConfig::Policy::kDeferWithBackoff: {
      // FIFO fairness: while anyone is parked, new arrivals queue behind
      // them even if capacity just opened — no queue jumping.
      if (!overloaded() && deferred_.empty()) {
        admit(std::move(spec), on_final, /*defers=*/0, JobId{});
        return;
      }
      record(kTagDefer);
      ++stats_.deferred;
      if (log::enabled(log::Level::kInfo)) {
        log::info("admission", "deferred",
                  {{"job", spec.name},
                   {"queue", std::to_string(deferred_.size() + 1)}});
      }
      if (auto* tracer = jobtracker_.simulation().tracer()) {
        tracer->instant(obs::kClusterPid, 0, obs::Cat::kSched,
                        "admission-defer", jobtracker_.simulation().now());
      }
      deferred_.push_back(Parked{std::move(spec), std::move(on_final), 0});
      arm_timer();
      return;
    }
    case AdmissionConfig::Policy::kShedLowestPriority: {
      JobId first_shed{};
      while (overloaded()) {
        // Victim: the lowest-priority unfinished job, newest first among
        // ties (<= keeps updating along the submission-order walk) — and
        // only if it is strictly less important than the arrival.
        Job* victim = nullptr;
        for (Job* job : jobtracker_.jobs_in_order()) {
          if (job->finished()) continue;
          if (victim == nullptr ||
              job->spec().priority <= victim->spec().priority) {
            victim = job;
          }
        }
        if (victim == nullptr || victim->spec().priority >= spec.priority) {
          break;
        }
        record(kTagShed);
        ++stats_.shed;
        if (!first_shed.valid()) first_shed = victim->id();
        log::warn("admission", "job shed",
                  {{"job", std::to_string(victim->id().value())},
                   {"name", victim->spec().name},
                   {"priority", std::to_string(victim->spec().priority)},
                   {"for", spec.name}});
        if (auto* tracer = jobtracker_.simulation().tracer()) {
          tracer->instant(obs::kClusterPid, 0, obs::Cat::kSched,
                          "admission-shed", jobtracker_.simulation().now());
        }
        victim->fail_job(JobFailureReason::kShed);
      }
      if (overloaded()) {
        // Nothing sheddable was lower priority: the arrival loses instead.
        record(kTagReject);
        ++stats_.rejected;
        if (log::enabled(log::Level::kInfo)) {
          log::info("admission", "rejected",
                    {{"job", spec.name}, {"reason", "no-lower-priority"}});
        }
        Outcome out;
        out.decision = Decision::kRejected;
        out.shed_job = first_shed;
        if (on_final) on_final(out);
        return;
      }
      admit(std::move(spec), on_final, /*defers=*/0, first_shed);
      return;
    }
  }
}

void AdmissionController::admit(
    JobSpec spec, const std::function<void(const Outcome&)>& on_final,
    int defers, JobId shed_job) {
  record(kTagAdmit);
  ++stats_.admitted;
  Outcome out;
  out.decision = Decision::kAdmitted;
  out.defers = defers;
  out.shed_job = shed_job;
  out.job = jobtracker_.submit(std::move(spec));
  if (on_final) on_final(out);
}

void AdmissionController::finish_reject(const Parked& parked) {
  record(kTagReject);
  ++stats_.rejected;
  if (log::enabled(log::Level::kInfo)) {
    log::info("admission", "rejected",
              {{"job", parked.spec.name},
               {"defers", std::to_string(parked.defers)}});
  }
  Outcome out;
  out.decision = Decision::kRejected;
  out.defers = parked.defers;
  if (parked.on_final) parked.on_final(out);
}

void AdmissionController::drain_deferred() {
  // Admit from the front while capacity lasts: FIFO order, each admit
  // resets the backoff (progress was made).
  bool progressed = false;
  while (!deferred_.empty() && !overloaded()) {
    Parked parked = std::move(deferred_.front());
    deferred_.pop_front();
    admit(std::move(parked.spec), parked.on_final, parked.defers, JobId{});
    progressed = true;
  }
  if (progressed) retrier_.reset();
  // Everyone still parked waited through one more round; reject the
  // over-aged so every arrival resolves in bounded sim time.
  for (Parked& parked : deferred_) {
    ++parked.defers;
    ++stats_.defer_rounds;
  }
  while (!deferred_.empty() &&
         deferred_.front().defers >= config_.max_defers) {
    finish_reject(deferred_.front());
    deferred_.pop_front();
  }
  if (!deferred_.empty()) arm_timer();
}

void AdmissionController::arm_timer() {
  // No-op while a timer is pending (Retrier collapses re-entrant arms).
  retrier_.retry([this] { drain_deferred(); });
}

}  // namespace moon::mapred
