#include "mapred/jobtracker.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/log.hpp"

namespace moon::mapred {

JobTracker::JobTracker(sim::Simulation& sim, cluster::Cluster& cluster,
                       dfs::Dfs& dfs, SchedulerConfig config, std::uint64_t seed)
    : sim_(sim),
      cluster_(cluster),
      dfs_(dfs),
      config_(config),
      rng_(Rng{seed}.fork("jobtracker")),
      checkpoint_policy_(config.checkpoint),
      checkpoint_store_(dfs, config.checkpoint),
      liveness_task_(sim, config.liveness_scan_interval, [this] { liveness_scan(); }),
      completion_task_(sim, config.completion_scan_interval,
                       [this] { completion_scan(); }) {
  // moon_scheduling implies the MOON speculator; otherwise the explicit
  // choice (Hadoop's progress-gap policy or LATE) applies.
  if (config_.moon_scheduling ||
      config_.speculator == SchedulerConfig::Speculator::kMoon) {
    speculator_ = std::make_unique<MoonSpeculator>(*this);
  } else if (config_.speculator == SchedulerConfig::Speculator::kLate) {
    speculator_ = std::make_unique<LateSpeculator>(*this);
  } else {
    speculator_ = std::make_unique<HadoopSpeculator>(*this);
  }
}

TaskTracker& JobTracker::add_tracker(NodeId node) {
  auto tracker = std::make_unique<TaskTracker>(sim_, cluster_.node(node), *this,
                                               config_.heartbeat_interval);
  TaskTracker* raw = tracker.get();
  trackers_.push_back(std::move(tracker));
  tracker_info_.emplace(node, TrackerInfo{raw, TrackerState::kLive, sim_.now()});
  return *raw;
}

void JobTracker::add_all_trackers() {
  for (NodeId id : cluster_.all_nodes()) add_tracker(id);
}

void JobTracker::start() {
  if (started_) return;
  started_ = true;
  for (auto& tracker : trackers_) tracker->start();
  liveness_task_.start();
  completion_task_.start();
}

JobId JobTracker::submit(JobSpec spec) {
  const JobId id = job_ids_.next();
  auto job = std::make_unique<Job>(*this, id, std::move(spec));
  job->submit();
  jobs_.emplace(id, std::move(job));
  return id;
}

Job& JobTracker::job(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("JobTracker: unknown job");
  return *it->second;
}

const Job& JobTracker::job(JobId id) const {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("JobTracker: unknown job");
  return *it->second;
}

void JobTracker::on_job_finished(std::function<void(Job&)> callback) {
  finished_callbacks_.push_back(std::move(callback));
}

void JobTracker::notify_job_finished(Job& job) {
  for (const auto& cb : finished_callbacks_) cb(job);
}

// ---- heartbeat handling ------------------------------------------------

void JobTracker::heartbeat(TaskTracker& tracker) {
  auto it = tracker_info_.find(tracker.node_id());
  if (it == tracker_info_.end()) throw std::logic_error("JobTracker: unknown tracker");
  TrackerInfo& info = it->second;
  info.last_heartbeat = sim_.now();
  if (info.state != TrackerState::kLive) {
    set_tracker_state(info, TrackerState::kLive);
  }
  assign_work(tracker);
}

void JobTracker::set_tracker_state(TrackerInfo& info, TrackerState next) {
  const TrackerState prev = info.state;
  if (prev == next) return;
  info.state = next;
  switch (next) {
    case TrackerState::kLive:
      // Back from suspension: reactivate surviving attempts.
      for (TaskAttempt* attempt : info.tracker->all_attempts()) {
        attempt->set_inactive(false);
      }
      break;
    case TrackerState::kSuspended:
      // §V-A: attempts are flagged inactive but *not* killed, "in the hope
      // that they may be resumed when the TaskTracker is returned".
      for (TaskAttempt* attempt : info.tracker->all_attempts()) {
        attempt->set_inactive(true);
      }
      // Best-effort checkpoint of hosted reduces: if the node never comes
      // back, the tracker will eventually expire and the shuffle would
      // otherwise be lost with it.
      if (config_.checkpoint.enabled && config_.checkpoint.emit_on_suspension) {
        for (TaskAttempt* attempt :
             info.tracker->attempts(TaskType::kReduce)) {
          attempt->maybe_checkpoint(/*forced=*/true);
        }
      }
      break;
    case TrackerState::kDead:
      // Hadoop semantics: every attempt on a dead tracker is killed, its
      // tasks become schedulable elsewhere, and completed maps that lived
      // there are re-executed (unless MOON finds surviving replicas).
      for (auto& [job_id, job] : jobs_) {
        if (!job->finished()) job->handle_tracker_death(*info.tracker);
      }
      break;
  }
}

void JobTracker::liveness_scan() {
  const sim::Time now = sim_.now();
  for (auto& [node, info] : tracker_info_) {
    if (info.state == TrackerState::kDead) continue;
    const sim::Duration gap = now - info.last_heartbeat;
    if (gap > config_.tracker_expiry) {
      set_tracker_state(info, TrackerState::kDead);
    } else if (config_.suspension_interval > 0 &&
               info.state == TrackerState::kLive &&
               gap > config_.suspension_interval) {
      set_tracker_state(info, TrackerState::kSuspended);
    }
  }
}

void JobTracker::completion_scan() {
  for (auto& [id, job] : jobs_) {
    if (!job->finished()) job->try_commit();
  }
}

// ---- task assignment -----------------------------------------------------

void JobTracker::assign_work(TaskTracker& tracker) {
  // One task per heartbeat, like Hadoop 0.17. Maps get priority when both
  // slot types are open (they gate the reducers' shuffle).
  for (auto& [job_id, job] : jobs_) {
    if (job->finished()) continue;
    for (TaskType type : {TaskType::kMap, TaskType::kReduce}) {
      if (tracker.free_slots(type) <= 0) continue;
      std::optional<TaskId> choice = pick_pending(*job, type, tracker);
      bool speculative = false;
      if (!choice) {
        choice = speculator_->pick(*job, type, tracker);
        speculative = choice.has_value();
      }
      if (choice) {
        job->launch_attempt(*choice, tracker, speculative);
        return;
      }
    }
  }
}

std::optional<TaskId> JobTracker::pick_pending(Job& job, TaskType type,
                                               TaskTracker& tracker) {
  // "The JobTracker first tries to schedule a non-running task, giving high
  // priority to the recently failed tasks"; map input locality preferred.
  const auto& nn = dfs_.namenode();
  TaskId best = TaskId::invalid();
  // Rank: (failures > 0, locality, schedule order).
  int best_key_failed = -1;
  int best_key_local = -1;
  int best_key_order = 0;
  for (TaskId id : job.tasks_of(type)) {
    const Task& t = job.task(id);
    if (t.state != TaskState::kPending) continue;
    const int failed = t.failures > 0 ? 1 : 0;
    int local = 0;
    if (type == TaskType::kMap && nn.block_exists(t.input_block) &&
        nn.block(t.input_block).has_replica_on(tracker.node_id())) {
      local = 1;
    }
    const bool better =
        !best.valid() || failed > best_key_failed ||
        (failed == best_key_failed && local > best_key_local) ||
        (failed == best_key_failed && local == best_key_local &&
         t.schedule_order < best_key_order);
    if (better) {
      best = id;
      best_key_failed = failed;
      best_key_local = local;
      best_key_order = t.schedule_order;
    }
  }
  if (!best.valid()) return std::nullopt;
  return best;
}

// ---- observations ---------------------------------------------------------

TrackerState JobTracker::tracker_state(NodeId node) const {
  auto it = tracker_info_.find(node);
  if (it == tracker_info_.end()) throw std::out_of_range("JobTracker: unknown tracker");
  return it->second.state;
}

int JobTracker::available_execution_slots() const {
  int slots = 0;
  for (const auto& [node, info] : tracker_info_) {
    if (info.state != TrackerState::kLive) continue;
    slots += info.tracker->map_slots() + info.tracker->reduce_slots();
  }
  return slots;
}

int JobTracker::total_slots(TaskType type) const {
  int slots = 0;
  for (const auto& [node, info] : tracker_info_) {
    if (info.state != TrackerState::kLive) continue;
    slots += type == TaskType::kMap ? info.tracker->map_slots()
                                    : info.tracker->reduce_slots();
  }
  return slots;
}

std::vector<TaskTracker*> JobTracker::trackers() {
  std::vector<TaskTracker*> out;
  out.reserve(trackers_.size());
  for (auto& t : trackers_) out.push_back(t.get());
  return out;
}

}  // namespace moon::mapred
