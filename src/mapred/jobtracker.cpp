#include "mapred/jobtracker.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "common/log.hpp"
#include "obs/trace.hpp"
#include "recovery/master_journal.hpp"

namespace moon::mapred {

JobTracker::JobTracker(sim::Simulation& sim, cluster::Cluster& cluster,
                       dfs::Dfs& dfs, SchedulerConfig config, std::uint64_t seed)
    : sim_(sim),
      cluster_(cluster),
      dfs_(dfs),
      config_(config),
      rng_(Rng{seed}.fork("jobtracker")),
      phase_rng_(Rng{seed}.fork("heartbeat-phase")),
      checkpoint_policy_(config.checkpoint),
      checkpoint_store_(dfs, config.checkpoint),
      liveness_task_(sim, config.liveness_scan_interval, [this] { liveness_scan(); }),
      completion_task_(sim, config.completion_scan_interval,
                       [this] { completion_scan(); }) {
  // moon_scheduling implies the MOON speculator; otherwise the explicit
  // choice (Hadoop's progress-gap policy or LATE) applies.
  if (config_.moon_scheduling ||
      config_.speculator == SchedulerConfig::Speculator::kMoon) {
    speculator_ = std::make_unique<MoonSpeculator>(*this);
  } else if (config_.speculator == SchedulerConfig::Speculator::kLate) {
    speculator_ = std::make_unique<LateSpeculator>(*this);
  } else {
    speculator_ = std::make_unique<HadoopSpeculator>(*this);
  }
  job_policy_ = JobSchedulingPolicy::make(config_.job_policy);
  if (config_.admission.enabled) {
    admission_ = std::make_unique<AdmissionController>(*this, config_.admission);
  }
  // Replica add/remove feeds each live job's pending-map locality buckets.
  // The NameNode has no unsubscribe, so the listener guards against this
  // JobTracker being gone while the DFS lives on.
  dfs_.namenode().subscribe_replica_events(
      [this, weak = std::weak_ptr<void>(listener_guard_)](
          BlockId block, NodeId node, bool added) {
        if (weak.expired()) return;
        for (Job* job : jobs_by_order_) {
          if (!job->finished()) job->on_replica_event(block, node, added);
        }
      });
}

TaskTracker& JobTracker::add_tracker(NodeId node) {
  auto tracker = std::make_unique<TaskTracker>(sim_, cluster_.node(node), *this,
                                               config_.heartbeat_interval);
  TaskTracker* raw = tracker.get();
  trackers_.push_back(std::move(tracker));
  tracker_ptrs_.push_back(raw);
  tracker_info_.emplace(node, TrackerInfo{raw, TrackerState::kLive, sim_.now()});
  live_map_slots_ += raw->map_slots();
  live_reduce_slots_ += raw->reduce_slots();
  return *raw;
}

void JobTracker::add_all_trackers() {
  for (NodeId id : cluster_.all_nodes()) add_tracker(id);
}

void JobTracker::start() {
  if (started_) return;
  started_ = true;
  // Start heartbeats in NodeId order, not registration order: same-tick
  // events fire FIFO, so the startup sequence fixes the heartbeat (and hence
  // assignment) order at every tick forever after. Keying it on node ids
  // keeps runs bit-identical under permuted add_tracker calls (§2
  // determinism contract); add_all_trackers already registers in id order.
  std::vector<TaskTracker*> by_id = tracker_ptrs_;
  std::sort(by_id.begin(), by_id.end(), [](TaskTracker* a, TaskTracker* b) {
    return a->node_id() < b->node_id();
  });
  // kStaggered draws each tracker's phase offset here, in NodeId order, so
  // the offsets (and hence the whole run) are reproducible under permuted
  // registration too.
  const bool staggered =
      config_.heartbeat_phase == SchedulerConfig::HeartbeatPhase::kStaggered;
  for (TaskTracker* tracker : by_id) {
    sim::Duration first_beat = -1;
    if (staggered && config_.heartbeat_interval > 0) {
      first_beat = phase_rng_.uniform_int(0, config_.heartbeat_interval - 1);
    }
    tracker->start(first_beat);
  }
  liveness_task_.start();
  completion_task_.start();
}

JobId JobTracker::submit(JobSpec spec) {
  const JobId id = job_ids_.next();
  auto job = std::make_unique<Job>(*this, id, std::move(spec));
  if (journal_ != nullptr) {
    const JobSpec& s = job->spec();
    journal_->record_submit(id, s.name, s.num_maps, s.num_reduces);
  }
  job->submit();
  jobs_by_order_.push_back(job.get());
  jobs_.emplace(id, std::move(job));
  ++live_jobs_;
  return id;
}

int JobTracker::live_attempts_total() const {
  int total = 0;
  for (const Job* job : jobs_by_order_) {
    if (!job->finished()) total += job->live_attempts();
  }
  return total;
}

std::size_t JobTracker::retained_state_bytes() const {
  std::size_t bytes = 0;
  for (const Job* job : jobs_by_order_) bytes += job->approx_retained_bytes();
  return bytes;
}

void JobTracker::retire_job(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("JobTracker: unknown job");
  if (!it->second->finished()) {
    throw std::logic_error("JobTracker: retiring unfinished job");
  }
  if (journal_ != nullptr) journal_->record_job_retired(id);
  std::erase(jobs_by_order_, it->second.get());
  jobs_.erase(it);
  ++jobs_retired_;
}

Job& JobTracker::job(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("JobTracker: unknown job");
  return *it->second;
}

const Job& JobTracker::job(JobId id) const {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("JobTracker: unknown job");
  return *it->second;
}

void JobTracker::on_job_finished(std::function<void(Job&)> callback) {
  finished_callbacks_.push_back(std::move(callback));
}

void JobTracker::notify_job_finished(Job& job) {
  --live_jobs_;
  for (const auto& cb : finished_callbacks_) cb(job);
}

// ---- heartbeat handling ------------------------------------------------

void JobTracker::heartbeat(TaskTracker& tracker) {
  if (!up_) return;  // belt — TaskTracker::beat already checks available()
  auto it = tracker_info_.find(tracker.node_id());
  if (it == tracker_info_.end()) throw std::logic_error("JobTracker: unknown tracker");
  TrackerInfo& info = it->second;
  info.last_heartbeat = sim_.now();
  if (info.state != TrackerState::kLive) {
    set_tracker_state(info, TrackerState::kLive);
  }
  if (auto* tracer = sim_.tracer();
      tracer && tracer->enabled(obs::Cat::kHeartbeat)) {
    tracer->instant(obs::kClusterPid, obs::node_track(tracker.node_id()),
                    obs::Cat::kHeartbeat, "heartbeat", sim_.now());
  }
  if (info.quarantined) {
    if (sim_.now() < info.quarantined_until) {
      // Heartbeat accepted (the tracker stays live) but no work assigned
      // while the backoff runs.
      ++heartbeats_;
      return;
    }
    // Backoff served: readmit with a clean slate.
    info.quarantined = false;
    info.flaky_strikes = 0;
    --quarantined_count_;
    if (auto* tracer = sim_.tracer()) {
      tracer->instant(obs::kClusterPid, obs::node_track(tracker.node_id()),
                      obs::Cat::kFault, "readmit", sim_.now());
    }
    if (log::enabled(log::Level::kInfo)) {
      log::info("jobtracker", "tracker readmitted",
                {{"node", std::to_string(tracker.node_id().value())}});
    }
  }
  {
    sim::Profiler::Scope profile(sim_.profiler(),
                                 sim::Profiler::Key::kHeartbeat);
    assign_work(tracker);
  }
  ++heartbeats_;
}

void JobTracker::note_attempt_failure(TaskTracker& tracker) {
  if (config_.quarantine_threshold <= 0) return;
  auto it = tracker_info_.find(tracker.node_id());
  if (it == tracker_info_.end()) return;
  TrackerInfo& info = it->second;
  if (info.quarantined) return;
  if (++info.flaky_strikes < config_.quarantine_threshold) return;
  ++info.quarantines;
  ++quarantines_total_;
  ++quarantined_count_;
  sim::Duration backoff = std::max<sim::Duration>(config_.quarantine_backoff, 1);
  for (int i = 1; i < info.quarantines && backoff < config_.quarantine_backoff_max;
       ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, config_.quarantine_backoff_max);
  info.quarantined = true;
  info.quarantined_until = sim_.now() + backoff;
  if (auto* tracer = sim_.tracer()) {
    tracer->instant(obs::kClusterPid, obs::node_track(tracker.node_id()),
                    obs::Cat::kFault, "quarantine", sim_.now(),
                    {{"backoff_s", std::to_string(sim::to_seconds(backoff))}});
  }
  log::warn("jobtracker", "tracker quarantined",
            {{"node", std::to_string(tracker.node_id().value())},
             {"backoff_s", std::to_string(sim::to_seconds(backoff))},
             {"entries", std::to_string(info.quarantines)}});
}

bool JobTracker::quarantined(NodeId node) const {
  auto it = tracker_info_.find(node);
  return it != tracker_info_.end() && it->second.quarantined;
}

void JobTracker::set_tracker_state(TrackerInfo& info, TrackerState next) {
  const TrackerState prev = info.state;
  if (prev == next) return;
  info.state = next;
  const char* state_name = next == TrackerState::kLive        ? "live"
                           : next == TrackerState::kSuspended ? "suspended"
                                                              : "dead";
  if (auto* tracer = sim_.tracer()) {
    tracer->instant(obs::kClusterPid, obs::node_track(info.tracker->node_id()),
                    obs::Cat::kSched, std::string("tracker-") + state_name,
                    sim_.now());
  }
  if (log::enabled(log::Level::kInfo)) {
    log::info("jobtracker", "tracker state",
              {{"node", std::to_string(info.tracker->node_id().value())},
               {"state", state_name}});
  }
  // Slot aggregates follow the live partition.
  if (prev == TrackerState::kLive) {
    live_map_slots_ -= info.tracker->map_slots();
    live_reduce_slots_ -= info.tracker->reduce_slots();
  }
  if (next == TrackerState::kLive) {
    live_map_slots_ += info.tracker->map_slots();
    live_reduce_slots_ += info.tracker->reduce_slots();
  }
  switch (next) {
    case TrackerState::kLive:
      // Back from suspension: reactivate surviving attempts.
      for (TaskAttempt* attempt : info.tracker->all_attempts()) {
        attempt->set_inactive(false);
      }
      break;
    case TrackerState::kSuspended:
      // §V-A: attempts are flagged inactive but *not* killed, "in the hope
      // that they may be resumed when the TaskTracker is returned".
      for (TaskAttempt* attempt : info.tracker->all_attempts()) {
        attempt->set_inactive(true);
      }
      // Best-effort checkpoint of hosted reduces: if the node never comes
      // back, the tracker will eventually expire and the shuffle would
      // otherwise be lost with it.
      if (config_.checkpoint.enabled && config_.checkpoint.emit_on_suspension) {
        for (TaskAttempt* attempt :
             info.tracker->attempts(TaskType::kReduce)) {
          attempt->maybe_checkpoint(/*forced=*/true);
        }
      }
      break;
    case TrackerState::kDead:
      // Hadoop semantics: every attempt on a dead tracker is killed, its
      // tasks become schedulable elsewhere, and completed maps that lived
      // there are re-executed (unless MOON finds surviving replicas).
      for (Job* job : jobs_by_order_) {
        if (!job->finished()) job->handle_tracker_death(*info.tracker);
      }
      break;
  }
}

void JobTracker::crash() {
  if (!up_) return;
  up_ = false;
  // The tracker table is soft state rebuilt from re-registration: the master
  // forgets who is alive. The workers (and their running attempts) did not
  // change — only the master's knowledge of them died — so the states are
  // set directly, without the kDead transition's attempt-killing side
  // effects. Quarantine backoffs are soft state too; lifetime counters stay.
  for (auto& [node, info] : tracker_info_) {
    info.state = TrackerState::kDead;
    info.flaky_strikes = 0;
    if (info.quarantined) {
      info.quarantined = false;
      --quarantined_count_;
    }
  }
  live_map_slots_ = 0;
  live_reduce_slots_ = 0;
  log::warn("jobtracker", "master crashed",
            {{"jobs", std::to_string(jobs_by_order_.size())}});
}

void JobTracker::recover() {
  if (up_) return;
  ++epoch_;
  up_ = true;
  // Journal replay + divergence audit: a correct journal reproduces the live
  // job/task state exactly (the sim never lost the objects; real masters
  // rebuild them from this replay, so the diff proves the journal could).
  if (journal_ != nullptr) journal_->add_divergences(diff_against_journal());
  // Re-registration storm: available trackers re-register with their
  // running-attempt reports (the attempt objects are already on the tracker;
  // re-registering restores the master's liveness view of them). NodeId
  // order — tracker_info_ is an ordered map (§2 determinism contract).
  for (auto& [node, info] : tracker_info_) {
    if (!cluster_.node(node).available()) continue;
    info.last_heartbeat = sim_.now();
    set_tracker_state(info, TrackerState::kLive);
    ++reregistrations_;
  }
  // Trackers that could not re-register are lost to the recovered master —
  // it has no record of them, so unlike plain suspension (where the old
  // master remembers and waits), their attempts go through the normal
  // tracker-death path now (Hadoop JobTracker-restart semantics). The state
  // is already kDead from crash(), so the death handling runs directly.
  for (auto& [node, info] : tracker_info_) {
    if (cluster_.node(node).available()) continue;
    for (Job* job : jobs_by_order_) {
      if (!job->finished()) job->handle_tracker_death(*info.tracker);
    }
  }
  // Orphan reconciliation: kill attempts whose task (or whole job) the
  // recovered state says is already done.
  for (Job* job : jobs_by_order_) {
    orphans_killed_ += job->reconcile_after_recovery();
  }
  // Deliver outcome reports that parked while the master was down. Each
  // delivery can kill redundant attempts (mutating the per-tracker attempt
  // lists), so the sweep restarts from the top after every delivery — the
  // scan order is deterministic, and n is small.
  for (;;) {
    TaskAttempt* next = nullptr;
    for (auto& [node, info] : tracker_info_) {
      for (TaskAttempt* attempt : info.tracker->all_attempts()) {
        if (attempt->has_parked_report()) {
          next = attempt;
          break;
        }
      }
      if (next != nullptr) break;
    }
    if (next == nullptr) break;
    next->deliver_parked_report();
    ++reports_replayed_;
  }
  log::info("jobtracker", "master recovered",
            {{"epoch", std::to_string(epoch_)},
             {"reregistered", std::to_string(reregistrations_)}});
}

std::int64_t JobTracker::diff_against_journal() const {
  const recovery::JobTrackerImage image = journal_->replay();
  std::int64_t diverged = 0;
  for (const Job* job : jobs_by_order_) {
    auto it = image.find(job->id());
    if (it == image.end()) {
      ++diverged;  // submitted job missing from the journal
      continue;
    }
    const recovery::JobImage& ji = it->second;
    if (ji.finished != job->finished() ||
        (ji.finished && ji.completed != job->metrics().completed)) {
      ++diverged;
    }
    // Completed-task sets must match exactly: a live completed task missing
    // from the journal is a lost completion; the reverse is a phantom.
    std::set<TaskId> live;
    for (TaskType type : {TaskType::kMap, TaskType::kReduce}) {
      for (TaskId t : job->tasks_of(type)) {
        if (job->task(t).state == TaskState::kCompleted) live.insert(t);
      }
    }
    for (TaskId t : live) {
      if (!ji.completed_tasks.contains(t)) ++diverged;
    }
    for (TaskId t : ji.completed_tasks) {
      if (!live.contains(t)) ++diverged;
    }
  }
  diverged +=
      static_cast<std::int64_t>(image.size()) -
      static_cast<std::int64_t>(
          std::count_if(jobs_by_order_.begin(), jobs_by_order_.end(),
                        [&](const Job* j) { return image.contains(j->id()); }));
  return diverged;
}

void JobTracker::liveness_scan() {
  if (!up_) return;  // a crashed master scans nothing
  const sim::Time now = sim_.now();
  // tracker_info_ is NodeId-ordered: expiring trackers die in id order, so
  // the resulting re-pend/kill sequence is reproducible regardless of how
  // the map was populated.
  for (auto& [node, info] : tracker_info_) {
    if (info.state == TrackerState::kDead) continue;
    const sim::Duration gap = now - info.last_heartbeat;
    if (gap > config_.tracker_expiry) {
      set_tracker_state(info, TrackerState::kDead);
    } else if (config_.suspension_interval > 0 &&
               info.state == TrackerState::kLive &&
               gap > config_.suspension_interval) {
      set_tracker_state(info, TrackerState::kSuspended);
    }
  }
}

void JobTracker::completion_scan() {
  if (!up_) return;
  for (Job* job : jobs_by_order_) {
    if (!job->finished()) job->try_commit();
  }
}

// ---- task assignment -----------------------------------------------------

void JobTracker::assign_work(TaskTracker& tracker) {
  // One task per heartbeat, like Hadoop 0.17. The configured multi-job
  // policy ranks the unfinished jobs (kFifo keeps submission order, so a
  // single-job run is unchanged); within a job, maps get priority when both
  // slot types are open (they gate the reducers' shuffle). Pending picks are
  // bucket lookups on the job's indices (kIndexed) or the original scan
  // (kScan); speculative picks enumerate only running tasks.
  assign_order_.clear();
  for (Job* job : jobs_by_order_) {
    if (!job->finished()) assign_order_.push_back(job);
  }
  job_policy_->order(assign_order_);
  for (Job* job : assign_order_) {
    for (TaskType type : {TaskType::kMap, TaskType::kReduce}) {
      if (tracker.free_slots(type) <= 0) continue;
      std::optional<TaskId> choice = job->pick_pending(type, tracker);
      bool speculative = false;
      if (!choice) {
        // kSpeculation is a sub-span of kHeartbeat (heartbeat() times the
        // whole assign_work call around this).
        sim::Profiler::Scope profile(sim_.profiler(),
                                     sim::Profiler::Key::kSpeculation);
        choice = speculator_->pick(*job, type, tracker);
        speculative = choice.has_value();
      }
      if (choice) {
        job->launch_attempt(*choice, tracker, speculative);
        return;
      }
    }
  }
}

// ---- observations ---------------------------------------------------------

TrackerState JobTracker::tracker_state(NodeId node) const {
  auto it = tracker_info_.find(node);
  if (it == tracker_info_.end()) throw std::out_of_range("JobTracker: unknown tracker");
  return it->second.state;
}

int JobTracker::available_execution_slots() const {
  if (config_.index_mode == SchedulerConfig::IndexMode::kIndexed) {
    return live_map_slots_ + live_reduce_slots_;
  }
  int slots = 0;
  for (const auto& [node, info] : tracker_info_) {
    if (info.state != TrackerState::kLive) continue;
    slots += info.tracker->map_slots() + info.tracker->reduce_slots();
  }
  return slots;
}

int JobTracker::total_slots(TaskType type) const {
  if (config_.index_mode == SchedulerConfig::IndexMode::kIndexed) {
    return type == TaskType::kMap ? live_map_slots_ : live_reduce_slots_;
  }
  int slots = 0;
  for (const auto& [node, info] : tracker_info_) {
    if (info.state != TrackerState::kLive) continue;
    slots += type == TaskType::kMap ? info.tracker->map_slots()
                                    : info.tracker->reduce_slots();
  }
  return slots;
}

}  // namespace moon::mapred
