// A MapReduce job: tasks, attempts, intermediate/output files, metrics.
//
// The Job owns every Task and TaskAttempt and is the single place where
// attempt state transitions are book-kept (slots released, metrics counted,
// redundant copies killed, tasks reverted). The JobTracker drives
// scheduling; TaskAttempts call back into the Job as they progress.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "mapred/task.hpp"
#include "mapred/types.hpp"
#include "obs/trace.hpp"

namespace moon::mapred {

class JobTracker;
class TaskTracker;

class Job {
 public:
  Job(JobTracker& jobtracker, JobId id, JobSpec spec);

  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  [[nodiscard]] JobId id() const { return id_; }
  [[nodiscard]] const JobSpec& spec() const { return spec_; }
  [[nodiscard]] JobMetrics& metrics() { return metrics_; }
  [[nodiscard]] const JobMetrics& metrics() const { return metrics_; }

  // ---- tasks -------------------------------------------------------------
  [[nodiscard]] Task& task(TaskId id);
  [[nodiscard]] const Task& task(TaskId id) const;
  [[nodiscard]] const std::vector<TaskId>& tasks_of(TaskType type) const;
  [[nodiscard]] TaskAttempt* attempt(AttemptId id);

  [[nodiscard]] int remaining_tasks() const;  ///< not yet completed (both types)
  [[nodiscard]] int completed_tasks(TaskType type) const;
  [[nodiscard]] bool all_maps_done() const;
  [[nodiscard]] bool all_reduces_done() const;

  /// Max progress across a task's attempts (1.0 once completed).
  [[nodiscard]] double task_progress(TaskId id) const;
  /// Average progress over all *started or completed* tasks of a type
  /// (Hadoop's straggler baseline).
  [[nodiscard]] double average_progress(TaskType type) const;

  [[nodiscard]] int non_terminal_attempts(TaskId id) const;  ///< running+inactive
  [[nodiscard]] int active_attempts(TaskId id) const;        ///< running only
  [[nodiscard]] bool has_attempt_on(TaskId id, NodeId node) const;
  [[nodiscard]] bool has_active_dedicated_attempt(TaskId id) const;
  /// First-launch time of the oldest non-terminal attempt; nullopt if none.
  [[nodiscard]] std::optional<sim::Time> oldest_attempt_start(TaskId id) const;

  /// Count of non-terminal speculative attempts across the job.
  [[nodiscard]] int running_speculative() const;

  /// Count of non-terminal attempts across the job — the job's current slot
  /// footprint, which the fair-share multi-job policy ranks against
  /// remaining_tasks(). O(1): maintained on launch/finalize.
  [[nodiscard]] int live_attempts() const { return live_attempt_count_; }

  /// True when `id`'s live attempt resumed from a checkpoint with enough
  /// salvaged progress that backup copies would only duplicate work the
  /// checkpoint already saved (SpeculationPolicy consults this).
  [[nodiscard]] bool checkpoint_shielded(TaskId id) const;

  // ---- scheduling indices (hot path) --------------------------------------
  /// The non-running task the Hadoop ranking — failed tasks first, then map
  /// input locality on `tracker`, then original schedule order — selects;
  /// nullopt when nothing is pending. kIndexed answers from the pending /
  /// locality buckets in O(log n); kScan replays the original full scan.
  [[nodiscard]] std::optional<TaskId> pick_pending(TaskType type,
                                                   TaskTracker& tracker) const;

  /// Invokes `fn(TaskId)` on every TaskState::kRunning task of `type` in
  /// schedule order; `fn` returns false to stop early. Index-backed under
  /// kIndexed, a filtered scan under kScan — identical visit sequences.
  template <typename Fn>
  void for_each_running(TaskType type, Fn&& fn) const {
    if (use_index_) {
      for (const int order : running_[type_index(type)]) {
        if (!fn(order_to_task_[static_cast<std::size_t>(order)])) return;
      }
    } else {
      for (TaskId id : tasks_of(type)) {
        if (task(id).state != TaskState::kRunning) continue;
        if (!fn(id)) return;
      }
    }
  }

  /// NameNode replica add/remove, routed here by the JobTracker's
  /// subscription: keeps the per-node locality buckets of pending maps fresh.
  void on_replica_event(BlockId block, NodeId node, bool added);

  /// TaskAttempt state-transition hook (maintains the running-speculative
  /// counter the speculation caps read).
  void note_attempt_state(TaskAttempt& attempt, AttemptState prev,
                          AttemptState next);

  /// True when this job runs the kIndexed hot path (latched at submit).
  [[nodiscard]] bool indexed() const { return use_index_; }

  /// Order-of-magnitude estimate of this Job's heap footprint (task table,
  /// attempt objects, scheduling indices) — the quantity retired-job GC
  /// bounds. O(1): computed from container sizes, never walked. Constants
  /// are deliberately coarse; the contract is proportionality, not bytes.
  [[nodiscard]] std::size_t approx_retained_bytes() const;

  /// Monotonic stamp of the job's discrete scheduling state: task/attempt
  /// transitions, launches, shuffle-fetch completions, phase changes,
  /// checkpoint restores. Within one (sim time, epoch) pair every
  /// scheduling-relevant quantity — progress scores, candidate sets,
  /// averages — is constant, so heartbeat bursts landing on the same tick
  /// can share one enumeration (the speculators' candidate memos key on
  /// it). Attempts bump it as their discrete state advances.
  [[nodiscard]] std::uint64_t sched_epoch() const { return sched_epoch_; }
  void bump_sched_epoch() { ++sched_epoch_; }

  // Index introspection (tests).
  [[nodiscard]] std::size_t pending_index_size(TaskType type) const {
    return pending_[type_index(type)].size();
  }
  [[nodiscard]] std::size_t locality_bucket_size(NodeId node) const;
  [[nodiscard]] std::size_t running_index_size(TaskType type) const {
    return running_[type_index(type)].size();
  }

  // ---- lifecycle ---------------------------------------------------------
  void submit();
  [[nodiscard]] bool finished() const { return metrics_.completed || metrics_.failed; }

  /// Launches an attempt of `task` on `tracker` (slot must be free).
  TaskAttempt& launch_attempt(TaskId task, TaskTracker& tracker, bool speculative);

  /// Kills one attempt (bookkeeping + slot release + file cleanup).
  void kill_attempt(TaskAttempt& attempt);
  /// Kills every attempt hosted by `tracker` (tracker declared dead).
  void kill_attempts_on(TaskTracker& tracker);

  /// Full tracker-death handling: kill attempts, then re-execute completed
  /// maps that lived there (Hadoop rule; MOON consults the DFS first).
  void handle_tracker_death(TaskTracker& tracker);

  /// Post-recovery orphan reconciliation (DESIGN.md §14): kills non-terminal
  /// attempts whose task is already completed or whose job already finished.
  /// Returns the number killed (0 outside crash-recovery runs).
  int reconcile_after_recovery();

  // Called by TaskAttempt on self transitions.
  void attempt_succeeded(TaskAttempt& attempt);
  void attempt_failed(TaskAttempt& attempt);

  // ---- intermediate / output data -----------------------------------------
  /// Map-output file for a *completed* map task; invalid id otherwise.
  [[nodiscard]] FileId map_output(TaskId map_task) const;

  /// Bytes of one map's output that belong to one reduce partition — the
  /// unit both shuffle fetches and checkpoint payloads are sized in.
  [[nodiscard]] Bytes shuffle_partition_bytes() const;
  FileId create_intermediate_file(TaskId map_task, AttemptId attempt);
  FileId create_output_file(TaskId reduce_task, AttemptId attempt);

  /// A reduce attempt could not fetch `map_task`'s output.
  void report_fetch_failure(TaskId map_task, TaskAttempt& reporter);

  /// Reverts a completed map (its output is gone); re-queues it.
  void revert_map(TaskId map_task);

  /// Called by the JobTracker's completion scan: converts outputs to
  /// reliable once all reduces are done, then completes the job when every
  /// output block meets its replication factor.
  void try_commit();

  void fail_job(JobFailureReason reason = JobFailureReason::kTaskFailures);

  /// Writes a human-readable snapshot of every incomplete task (state,
  /// attempts, phases, shuffle progress) — debugging aid for stuck jobs.
  void debug_dump(std::ostream& os) const;

  [[nodiscard]] JobTracker& jobtracker() { return jobtracker_; }

 private:
  /// (priority class, schedule order): class 0 = recently failed, 1 = fresh.
  /// begin() of an ordered bucket is the scan winner within that bucket.
  using PendingKey = std::pair<int, int>;

  void build_tasks();
  /// Containment: aborts the job (kTooManyAttempts) when an uncompleted
  /// task's total attempt count reaches max_attempt_failures — kills never
  /// bump t.failures, so under injected churn a task could otherwise burn
  /// attempts forever.
  void check_attempt_cap(Task& t);
  void update_task_state(Task& t);
  void set_task_state(Task& t, TaskState next);
  void pending_insert(Task& t);
  void pending_remove(Task& t);
  void finalize_attempt(TaskAttempt& attempt);
  void notify_reduces_of_map(TaskId map_task);
  [[nodiscard]] std::optional<TaskId> pick_pending_scan(
      TaskType type, TaskTracker& tracker) const;
  [[nodiscard]] std::optional<TaskId> pick_pending_indexed(
      TaskType type, TaskTracker& tracker) const;
  [[nodiscard]] static int type_index(TaskType type) {
    return type == TaskType::kMap ? 0 : 1;
  }
  [[nodiscard]] static PendingKey pending_key(const Task& t) {
    return {t.failures > 0 ? 0 : 1, t.schedule_order};
  }

  JobTracker& jobtracker_;
  JobId id_;
  JobSpec spec_;
  JobMetrics metrics_;
  obs::Tracer::SpanId span_;  ///< submit→finish span on the job-wide track
  const bool use_index_;  ///< SchedulerConfig::index_mode, latched at birth

  std::unordered_map<TaskId, Task> tasks_;
  std::vector<TaskId> map_tasks_;
  std::vector<TaskId> reduce_tasks_;
  std::unordered_map<AttemptId, std::unique_ptr<TaskAttempt>> attempts_;
  IdAllocator<TaskId> task_ids_;
  IdAllocator<AttemptId> attempt_ids_;

  // ---- scheduling indices, maintained on every task/attempt transition ----
  std::vector<TaskId> order_to_task_;   ///< schedule_order -> task (dense)
  std::set<PendingKey> pending_[2];     ///< pending tasks, per type
  std::set<int> running_[2];            ///< schedule orders of running tasks
  /// Pending *map* tasks with an input replica on the node — the locality
  /// join, fed by NameNode replica events + pending transitions.
  std::unordered_map<NodeId, std::set<PendingKey>> pending_local_;
  /// Input block -> pending map task (locality-event routing).
  std::unordered_map<BlockId, TaskId> block_to_pending_map_;
  int completed_count_[2] = {0, 0};     ///< per-type completed tasks
  int ever_started_[2] = {0, 0};        ///< tasks that ever launched an attempt
  int running_speculative_count_ = 0;   ///< attempts running && speculative
  int live_attempt_count_ = 0;          ///< non-terminal attempts, all tasks
  std::uint64_t sched_epoch_ = 0;       ///< discrete-state stamp (see getter)

  /// Memo for average_progress under kIndexed: constant within one
  /// (time, epoch) pair, so a same-tick heartbeat burst pays once.
  struct AverageCache {
    bool valid = false;
    sim::Time time = 0;
    std::uint64_t epoch = 0;
    double value = 0.0;
  };
  mutable AverageCache average_cache_[2];

  /// Distinct reduce tasks reporting fetch failure per map (Hadoop rule
  /// counts reduces, not individual retries).
  std::unordered_map<TaskId, std::unordered_set<TaskId>> fetch_failures_;

  bool outputs_converted_ = false;
};

}  // namespace moon::mapred
