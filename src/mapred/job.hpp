// A MapReduce job: tasks, attempts, intermediate/output files, metrics.
//
// The Job owns every Task and TaskAttempt and is the single place where
// attempt state transitions are book-kept (slots released, metrics counted,
// redundant copies killed, tasks reverted). The JobTracker drives
// scheduling; TaskAttempts call back into the Job as they progress.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "mapred/task.hpp"
#include "mapred/types.hpp"

namespace moon::mapred {

class JobTracker;

class Job {
 public:
  Job(JobTracker& jobtracker, JobId id, JobSpec spec);

  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  [[nodiscard]] JobId id() const { return id_; }
  [[nodiscard]] const JobSpec& spec() const { return spec_; }
  [[nodiscard]] JobMetrics& metrics() { return metrics_; }
  [[nodiscard]] const JobMetrics& metrics() const { return metrics_; }

  // ---- tasks -------------------------------------------------------------
  [[nodiscard]] Task& task(TaskId id);
  [[nodiscard]] const Task& task(TaskId id) const;
  [[nodiscard]] const std::vector<TaskId>& tasks_of(TaskType type) const;
  [[nodiscard]] TaskAttempt* attempt(AttemptId id);

  [[nodiscard]] int remaining_tasks() const;  ///< not yet completed (both types)
  [[nodiscard]] int completed_tasks(TaskType type) const;
  [[nodiscard]] bool all_maps_done() const;
  [[nodiscard]] bool all_reduces_done() const;

  /// Max progress across a task's attempts (1.0 once completed).
  [[nodiscard]] double task_progress(TaskId id) const;
  /// Average progress over all *started or completed* tasks of a type
  /// (Hadoop's straggler baseline).
  [[nodiscard]] double average_progress(TaskType type) const;

  [[nodiscard]] int non_terminal_attempts(TaskId id) const;  ///< running+inactive
  [[nodiscard]] int active_attempts(TaskId id) const;        ///< running only
  [[nodiscard]] bool has_attempt_on(TaskId id, NodeId node) const;
  [[nodiscard]] bool has_active_dedicated_attempt(TaskId id) const;
  /// First-launch time of the oldest non-terminal attempt; nullopt if none.
  [[nodiscard]] std::optional<sim::Time> oldest_attempt_start(TaskId id) const;

  /// Count of non-terminal speculative attempts across the job.
  [[nodiscard]] int running_speculative() const;

  /// True when `id`'s live attempt resumed from a checkpoint with enough
  /// salvaged progress that backup copies would only duplicate work the
  /// checkpoint already saved (SpeculationPolicy consults this).
  [[nodiscard]] bool checkpoint_shielded(TaskId id) const;

  // ---- lifecycle ---------------------------------------------------------
  void submit();
  [[nodiscard]] bool finished() const { return metrics_.completed || metrics_.failed; }

  /// Launches an attempt of `task` on `tracker` (slot must be free).
  TaskAttempt& launch_attempt(TaskId task, TaskTracker& tracker, bool speculative);

  /// Kills one attempt (bookkeeping + slot release + file cleanup).
  void kill_attempt(TaskAttempt& attempt);
  /// Kills every attempt hosted by `tracker` (tracker declared dead).
  void kill_attempts_on(TaskTracker& tracker);

  /// Full tracker-death handling: kill attempts, then re-execute completed
  /// maps that lived there (Hadoop rule; MOON consults the DFS first).
  void handle_tracker_death(TaskTracker& tracker);

  // Called by TaskAttempt on self transitions.
  void attempt_succeeded(TaskAttempt& attempt);
  void attempt_failed(TaskAttempt& attempt);

  // ---- intermediate / output data -----------------------------------------
  /// Map-output file for a *completed* map task; invalid id otherwise.
  [[nodiscard]] FileId map_output(TaskId map_task) const;

  /// Bytes of one map's output that belong to one reduce partition — the
  /// unit both shuffle fetches and checkpoint payloads are sized in.
  [[nodiscard]] Bytes shuffle_partition_bytes() const;
  FileId create_intermediate_file(TaskId map_task, AttemptId attempt);
  FileId create_output_file(TaskId reduce_task, AttemptId attempt);

  /// A reduce attempt could not fetch `map_task`'s output.
  void report_fetch_failure(TaskId map_task, TaskAttempt& reporter);

  /// Reverts a completed map (its output is gone); re-queues it.
  void revert_map(TaskId map_task);

  /// Called by the JobTracker's completion scan: converts outputs to
  /// reliable once all reduces are done, then completes the job when every
  /// output block meets its replication factor.
  void try_commit();

  void fail_job();

  /// Writes a human-readable snapshot of every incomplete task (state,
  /// attempts, phases, shuffle progress) — debugging aid for stuck jobs.
  void debug_dump(std::ostream& os) const;

  [[nodiscard]] JobTracker& jobtracker() { return jobtracker_; }

 private:
  void build_tasks();
  void update_task_state(Task& t);
  void finalize_attempt(TaskAttempt& attempt);
  void notify_reduces_of_map(TaskId map_task);

  JobTracker& jobtracker_;
  JobId id_;
  JobSpec spec_;
  JobMetrics metrics_;

  std::unordered_map<TaskId, Task> tasks_;
  std::vector<TaskId> map_tasks_;
  std::vector<TaskId> reduce_tasks_;
  std::unordered_map<AttemptId, std::unique_ptr<TaskAttempt>> attempts_;
  IdAllocator<TaskId> task_ids_;
  IdAllocator<AttemptId> attempt_ids_;

  /// Distinct reduce tasks reporting fetch failure per map (Hadoop rule
  /// counts reduces, not individual retries).
  std::unordered_map<TaskId, std::unordered_set<TaskId>> fetch_failures_;

  bool outputs_converted_ = false;
};

}  // namespace moon::mapred
