#include "mapred/speculation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/stats.hpp"

#include "mapred/job.hpp"
#include "mapred/jobtracker.hpp"
#include "mapred/tasktracker.hpp"

namespace moon::mapred {

bool SpeculationPolicy::fresh(const MemoKey& key, const Job& job, sim::Time now,
                              std::uint64_t epoch, int slots) {
  return key.valid && key.job == job.id() && key.time == now &&
         key.epoch == epoch && key.slots == slots;
}

void SpeculationPolicy::stamp(MemoKey& key, const Job& job, sim::Time now,
                              std::uint64_t epoch, int slots) {
  key = MemoKey{true, job.id(), now, epoch, slots};
}

// ---- Hadoop baseline ----------------------------------------------------

bool HadoopSpeculator::is_straggler(Job& job, TaskId id, double average) const {
  const auto& cfg = jobtracker_.config();
  const Task& t = job.task(id);
  if (t.state != TaskState::kRunning) return false;
  // Per-task cap: original + at most `per_task_speculative_cap` copies.
  if (job.non_terminal_attempts(id) >= 1 + cfg.per_task_speculative_cap) {
    return false;
  }
  const auto started = job.oldest_attempt_start(id);
  if (!started) return false;
  if (jobtracker_.simulation().now() - *started < cfg.min_age_for_speculation) {
    return false;
  }
  if (job.checkpoint_shielded(id)) return false;
  return job.task_progress(id) < average - cfg.straggler_gap;
}

std::optional<TaskId> HadoopSpeculator::pick(Job& job, TaskType type,
                                             TaskTracker& tracker) {
  const double average = job.average_progress(type);
  // "Stragglers [are selected] according to the order in which they were
  // originally scheduled, except that for Map stragglers, priority will be
  // given to the ones with input data local to the requesting TaskTracker."
  //
  // Straggler status is tracker-independent, so under kIndexed the
  // enumeration is memoized per tick and only the per-tracker filters
  // (placement, locality) run per heartbeat. kScan re-enumerates every call.
  const auto& nn = jobtracker_.dfs().namenode();
  const sim::Time now = jobtracker_.simulation().now();
  std::vector<TaskId> scan_stragglers;
  const std::vector<TaskId>* stragglers = &scan_stragglers;
  if (job.indexed()) {
    Memo& memo = memo_[type_slot(type)][job.id()];
    if (!fresh(memo.key, job, now, job.sched_epoch())) {
      memo.stragglers.clear();
      job.for_each_running(type, [&](TaskId id) {
        if (is_straggler(job, id, average)) memo.stragglers.push_back(id);
        return true;
      });
      stamp(memo.key, job, now, job.sched_epoch());
    }
    stragglers = &memo.stragglers;
  } else {
    job.for_each_running(type, [&](TaskId id) {
      if (is_straggler(job, id, average)) scan_stragglers.push_back(id);
      return true;
    });
  }
  const auto try_pass = [&](bool require_local) -> std::optional<TaskId> {
    for (TaskId id : *stragglers) {
      if (job.has_attempt_on(id, tracker.node_id())) continue;
      if (require_local) {
        const Task& t = job.task(id);
        if (type != TaskType::kMap || !nn.block_exists(t.input_block) ||
            !nn.block(t.input_block).has_replica_on(tracker.node_id())) {
          continue;
        }
      }
      return id;
    }
    return std::nullopt;
  };
  if (type == TaskType::kMap) {
    if (auto local = try_pass(true)) return local;
  }
  return try_pass(false);
}

// ---- LATE (OSDI'08) --------------------------------------------------------

double LateSpeculator::progress_rate(Job& job, TaskId task) const {
  const auto started = job.oldest_attempt_start(task);
  if (!started) return 0.0;
  const double elapsed =
      sim::to_seconds(jobtracker_.simulation().now() - *started);
  if (elapsed <= 0.0) return 0.0;
  return job.task_progress(task) / elapsed;
}

double LateSpeculator::estimated_time_left(Job& job, TaskId task) const {
  const double rate = progress_rate(job, task);
  const double remaining = 1.0 - job.task_progress(task);
  if (rate <= 0.0) return std::numeric_limits<double>::infinity();
  return remaining / rate;
}

std::optional<TaskId> LateSpeculator::pick(Job& job, TaskType type,
                                           TaskTracker& tracker) {
  const auto& cfg = jobtracker_.config();
  // SpeculativeCap over total slots (LATE uses total, not free, slots).
  const int cap = static_cast<int>(
      std::floor(cfg.late_cap_fraction *
                 static_cast<double>(jobtracker_.available_execution_slots())));
  if (job.running_speculative() >= cap) return std::nullopt;

  // Collect running candidates and their progress rates. Rates and every
  // tracker-independent filter are memoized per tick under kIndexed; the
  // placement filter below runs per pick.
  using Candidate = Memo::Candidate;
  const auto enumerate = [&](std::vector<double>& rates,
                             std::vector<Candidate>& candidates) {
    job.for_each_running(type, [&](TaskId id) {
      rates.push_back(progress_rate(job, id));
      if (job.non_terminal_attempts(id) >= 1 + cfg.per_task_speculative_cap) {
        return true;
      }
      if (job.checkpoint_shielded(id)) return true;
      const auto started = job.oldest_attempt_start(id);
      if (!started || jobtracker_.simulation().now() - *started <
                          cfg.min_age_for_speculation) {
        return true;
      }
      candidates.push_back(
          Candidate{id, rates.back(), estimated_time_left(job, id)});
      return true;
    });
  };
  std::vector<double> scan_rates;
  std::vector<Candidate> scan_candidates;
  const std::vector<double>* rates = &scan_rates;
  const std::vector<Candidate>* pool = &scan_candidates;
  if (job.indexed()) {
    Memo& memo = memo_[type_slot(type)][job.id()];
    const sim::Time now = jobtracker_.simulation().now();
    if (!fresh(memo.key, job, now, job.sched_epoch())) {
      memo.rates.clear();
      memo.candidates.clear();
      enumerate(memo.rates, memo.candidates);
      stamp(memo.key, job, now, job.sched_epoch());
    }
    rates = &memo.rates;
    pool = &memo.candidates;
  } else {
    enumerate(scan_rates, scan_candidates);
  }
  if (pool->empty() || rates->empty()) return std::nullopt;

  std::vector<Candidate> candidates;
  candidates.reserve(pool->size());
  for (const Candidate& c : *pool) {
    if (!job.has_attempt_on(c.id, tracker.node_id())) candidates.push_back(c);
  }
  if (candidates.empty()) return std::nullopt;

  // SlowTaskThreshold: only tasks below the rate percentile qualify.
  const double threshold = percentile(*rates, cfg.late_slow_task_percentile);
  std::erase_if(candidates,
                [threshold](const Candidate& c) { return c.rate > threshold; });
  if (candidates.empty()) return std::nullopt;

  // Longest approximate time to end first.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.time_left > b.time_left;
            });
  return candidates.front().id;
}

// ---- MOON (§V) ------------------------------------------------------------

template <typename Enumerate>
std::vector<TaskId> MoonSpeculator::memoized_list(Job& job, ListMemo& memo,
                                                  Enumerate&& enumerate,
                                                  int slots) {
  if (!job.indexed()) {
    std::vector<TaskId> out;
    enumerate(out);
    return out;
  }
  const sim::Time now = jobtracker_.simulation().now();
  if (!fresh(memo.key, job, now, job.sched_epoch(), slots)) {
    memo.list.clear();
    enumerate(memo.list);
    stamp(memo.key, job, now, job.sched_epoch(), slots);
  }
  return memo.list;
}

bool MoonSpeculator::in_homestretch(const Job& job) const {
  const auto& cfg = jobtracker_.config();
  const double threshold =
      cfg.homestretch_fraction *
      static_cast<double>(jobtracker_.available_execution_slots());
  return static_cast<double>(job.remaining_tasks()) < threshold;
}

std::optional<TaskId> MoonSpeculator::pick(Job& job, TaskType type,
                                           TaskTracker& tracker) {
  const auto& cfg = jobtracker_.config();

  if (cfg.hybrid_aware && tracker.dedicated()) {
    // §V-C best-effort backups: a dedicated node with an empty slot takes a
    // speculative copy of any remaining task (frozen-first, lowest progress
    // first), exempt from the volunteer-side cap — using otherwise idle,
    // reliable CPU is exactly the point of the dedicated tier.
    if (auto task = pick_dedicated_backup(job, type, tracker)) return task;
    return std::nullopt;
  }

  // Global cap: "no more speculative tasks will be issued if the concurrent
  // number of speculative tasks of a job is above a percentage of the total
  // currently available execution slots" (20 %).
  const int cap = static_cast<int>(
      std::floor(cfg.speculative_slot_fraction *
                 static_cast<double>(jobtracker_.available_execution_slots())));
  if (job.running_speculative() >= cap) return std::nullopt;

  if (auto frozen = pick_frozen(job, type, tracker)) return frozen;
  if (auto slow = pick_slow(job, type, tracker)) return slow;
  if (in_homestretch(job)) {
    if (auto task = pick_homestretch(job, type, tracker)) return task;
  }
  return std::nullopt;
}

std::optional<TaskId> MoonSpeculator::pick_dedicated_backup(Job& job,
                                                            TaskType type,
                                                            TaskTracker& tracker) {
  // Candidates are "prioritized in a similar way as done in task
  // replication on the volunteer computers": a task qualifies if it is
  // frozen, a slow straggler, or under-replicated during the homestretch —
  // not merely running. A task that already has one dedicated copy never
  // receives a second ("tasks with a dedicated speculative copy are given
  // lower priority in receiving additional task replicas").
  const auto& cfg = jobtracker_.config();
  const double average = job.average_progress(type);
  const bool homestretch = in_homestretch(job);
  const sim::Time now = jobtracker_.simulation().now();

  const auto enumerate = [&](std::vector<TaskId>& out) {
    job.for_each_running(type, [&](TaskId id) {
      if (job.has_active_dedicated_attempt(id)) return true;

      const bool frozen = job.active_attempts(id) == 0;
      // A frozen task still deserves rescue, but one whose live attempt just
      // resumed near-complete from a checkpoint does not need more copies.
      if (!frozen && job.checkpoint_shielded(id)) return true;
      bool slow = false;
      if (!frozen) {
        const auto started = job.oldest_attempt_start(id);
        slow = started && (now - *started >= cfg.min_age_for_speculation) &&
               job.task_progress(id) < average - cfg.straggler_gap;
      }
      const bool stretch =
          homestretch && job.active_attempts(id) < cfg.homestretch_copies;
      if (frozen || slow || stretch) out.push_back(id);
      return true;
    });
  };
  // The stretch disjunct reads the live-slot total (through `homestretch`),
  // which can move without a job epoch bump — key the memo on it too.
  std::vector<TaskId> candidates =
      memoized_list(job, memos_[type_slot(type)][job.id()].dedicated, enumerate,
                    jobtracker_.available_execution_slots());
  std::erase_if(candidates, [&](TaskId id) {
    return job.has_attempt_on(id, tracker.node_id());
  });
  if (candidates.empty()) return std::nullopt;
  std::sort(candidates.begin(), candidates.end(), [&](TaskId a, TaskId b) {
    const bool fa = job.active_attempts(a) == 0;  // frozen first
    const bool fb = job.active_attempts(b) == 0;
    if (fa != fb) return fa;
    return job.task_progress(a) < job.task_progress(b);
  });
  return candidates.front();
}

std::optional<TaskId> MoonSpeculator::pick_frozen(Job& job, TaskType type,
                                                  TaskTracker& tracker) {
  // Frozen: >= 1 copy, all of them inactive. "A speculative copy will be
  // issued to a frozen task regardless of the number of its copies."
  const auto enumerate = [&](std::vector<TaskId>& out) {
    job.for_each_running(type, [&](TaskId id) {
      if (job.active_attempts(id) > 0) return true;
      if (job.non_terminal_attempts(id) == 0) return true;
      out.push_back(id);
      return true;
    });
  };
  std::vector<TaskId> frozen =
      memoized_list(job, memos_[type_slot(type)][job.id()].frozen, enumerate);
  std::erase_if(frozen, [&](TaskId id) {
    return job.has_attempt_on(id, tracker.node_id());
  });
  if (frozen.empty()) return std::nullopt;
  // "Tasks are sorted by the progress made thus far, with lower progress
  // ranked higher."
  std::sort(frozen.begin(), frozen.end(), [&](TaskId a, TaskId b) {
    return job.task_progress(a) < job.task_progress(b);
  });
  return frozen.front();
}

std::optional<TaskId> MoonSpeculator::pick_slow(Job& job, TaskType type,
                                                TaskTracker& tracker) {
  const auto& cfg = jobtracker_.config();
  const double average = job.average_progress(type);
  const auto enumerate = [&](std::vector<TaskId>& out) {
    job.for_each_running(type, [&](TaskId id) {
      if (job.active_attempts(id) == 0) return true;  // frozen, not slow
      if (job.non_terminal_attempts(id) >= 1 + cfg.per_task_speculative_cap) {
        return true;
      }
      if (job.checkpoint_shielded(id)) return true;
      // Hybrid: a live dedicated copy is backup enough (§V-C).
      if (cfg.hybrid_aware && job.has_active_dedicated_attempt(id)) return true;
      const auto started = job.oldest_attempt_start(id);
      if (!started) return true;
      if (jobtracker_.simulation().now() - *started <
          cfg.min_age_for_speculation) {
        return true;
      }
      if (job.task_progress(id) >= average - cfg.straggler_gap) return true;
      out.push_back(id);
      return true;
    });
  };
  std::vector<TaskId> slow =
      memoized_list(job, memos_[type_slot(type)][job.id()].slow, enumerate);
  std::erase_if(slow, [&](TaskId id) {
    return job.has_attempt_on(id, tracker.node_id());
  });
  if (slow.empty()) return std::nullopt;
  std::sort(slow.begin(), slow.end(), [&](TaskId a, TaskId b) {
    return job.task_progress(a) < job.task_progress(b);
  });
  return slow.front();
}

std::optional<TaskId> MoonSpeculator::pick_homestretch(Job& job, TaskType type,
                                                       TaskTracker& tracker) {
  const auto& cfg = jobtracker_.config();
  // "During the homestretch phase, MOON attempts to maintain at least R
  // active copies of any remaining task regardless of the task progress."
  const auto enumerate = [&](std::vector<TaskId>& out) {
    job.for_each_running(type, [&](TaskId id) {
      if (job.active_attempts(id) >= cfg.homestretch_copies) return true;
      if (job.checkpoint_shielded(id)) return true;
      // "Tasks that already have a dedicated copy do not participate [in]
      // the homestretch phase."
      if (cfg.hybrid_aware && job.has_active_dedicated_attempt(id)) return true;
      out.push_back(id);
      return true;
    });
  };
  std::vector<TaskId> candidates = memoized_list(
      job, memos_[type_slot(type)][job.id()].homestretch, enumerate);
  std::erase_if(candidates, [&](TaskId id) {
    return job.has_attempt_on(id, tracker.node_id());
  });
  if (candidates.empty()) return std::nullopt;
  std::sort(candidates.begin(), candidates.end(), [&](TaskId a, TaskId b) {
    const int ca = job.active_attempts(a);
    const int cb = job.active_attempts(b);
    if (ca != cb) return ca < cb;  // fewest live copies first
    return job.task_progress(a) < job.task_progress(b);
  });
  return candidates.front();
}

}  // namespace moon::mapred
