// Multi-job scheduling policies (DESIGN.md §10).
//
// The JobTracker's heartbeat loop offers each free slot to the unfinished
// jobs in an order chosen by a JobSchedulingPolicy. The policy only ranks
// jobs; within a job the existing per-type assignment (maps before reduces,
// failed-first/locality pending picks, then speculation) is untouched, so
// kFifo reproduces the historical submission-order walk bit for bit.
#pragma once

#include <memory>
#include <vector>

#include "mapred/types.hpp"

namespace moon::mapred {

class Job;

class JobSchedulingPolicy {
 public:
  virtual ~JobSchedulingPolicy() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Reorders `jobs` (handed over in submission order, finished jobs already
  /// removed) into the order they are offered the current heartbeat's slot.
  /// Must be deterministic: ties break by submission order.
  virtual void order(std::vector<Job*>& jobs) const = 0;

  static std::unique_ptr<JobSchedulingPolicy> make(
      SchedulerConfig::JobPolicy policy);
};

const char* to_string(SchedulerConfig::JobPolicy policy);

}  // namespace moon::mapred
