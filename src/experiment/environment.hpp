// Shared scenario environment: the trace -> cluster -> DFS -> JobTracker
// wiring that both run_scenario and run_multi_job_scenario sit on. One
// construction path keeps the two harnesses structurally identical — the
// single-arrival kFifo golden test (bit-identity between them) holds by
// shared code, not by a hand-maintained mirror.
#pragma once

#include <memory>
#include <vector>

#include "audit/auditor.hpp"
#include "cluster/availability_driver.hpp"
#include "cluster/cluster.hpp"
#include "dfs/dfs.hpp"
#include "faults/fault_injector.hpp"
#include "mapred/jobtracker.hpp"
#include "obs/observability.hpp"
#include "recovery/master_journal.hpp"
#include "simkit/periodic.hpp"
#include "simkit/simulation.hpp"

namespace moon::experiment {

struct ScenarioConfig;

/// Builds and starts the full stack for one scenario run: nodes typed per
/// `dedicated_known`, availability traces installed on the volatile fleet,
/// DFS and JobTracker (all trackers registered) running. Workload staging
/// and job submission stay with the caller.
class Environment {
 public:
  explicit Environment(const ScenarioConfig& config);

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  // Types are moon::-qualified where a member name shadows its namespace.
  moon::sim::Simulation sim;
  moon::cluster::Cluster cluster;
  std::vector<NodeId> volatile_ids;
  // Heap-held: each needs the cluster fully populated before construction.
  std::unique_ptr<moon::cluster::AvailabilityDriver> driver;
  std::unique_ptr<moon::dfs::Dfs> dfs;
  std::unique_ptr<moon::mapred::JobTracker> jobtracker;
  /// Fault injector (null when config.faults is off). Armed on the volatile
  /// fleet before the run starts; its destructor clears sim's pointer.
  std::unique_ptr<moon::faults::FaultInjector> injector;
  /// Master journals (null unless faults.master_crash is on): installed on
  /// the NameNode/JobTracker before any workload is staged, so recovery
  /// replay covers the full namespace/job history (DESIGN.md §14).
  std::unique_ptr<moon::recovery::NameNodeJournal> nn_journal;
  std::unique_ptr<moon::recovery::JobTrackerJournal> jt_journal;
  /// Invariant auditor + its periodic sweep. Built when
  /// config.faults.audit_interval > 0 *or* master_crash is on (every master
  /// recovery ends in a mandatory sweep); the periodic task only for the
  /// former. Read-only — never perturbs the run.
  std::unique_ptr<moon::audit::Auditor> auditor;
  std::unique_ptr<moon::sim::PeriodicTask> audit_task;
  /// Observability bundle (null when config.obs is all-off). shared_ptr:
  /// the harness finalizes it before teardown and hands it to the result,
  /// which outlives this environment. Gauges hold pointers into the members
  /// above, so finalize() must run before the environment dies (the
  /// destructor order here is a backstop: obs tears down first).
  std::shared_ptr<moon::obs::Observability> obs;
};

}  // namespace moon::experiment
