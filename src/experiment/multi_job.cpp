#include "experiment/multi_job.hpp"

#include <algorithm>
#include <functional>
#include <iostream>
#include <optional>

#include "experiment/environment.hpp"

namespace moon::experiment {

double jain_index(const std::vector<double>& samples) {
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t n = 0;
  for (double x : samples) {
    if (x <= 0.0) continue;
    sum += x;
    sum_sq += x * x;
    ++n;
  }
  if (n == 0 || sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

MultiJobResult run_multi_job_scenario(const MultiJobConfig& config) {
  const ScenarioConfig& base = config.base;

  // Shared with run_scenario (same RNG fork tags, same construction/start
  // order), so a single-arrival kFifo stream is bit-identical to the
  // single-job path.
  Environment env(base);
  sim::Simulation& sim = env.sim;
  dfs::Dfs& dfs = *env.dfs;
  mapred::JobTracker& jobtracker = *env.jobtracker;

  const std::vector<workload::JobArrival> arrivals =
      workload::JobArrivalStream(config.arrivals, base.seed).generate();

  // Stage every job's input up front (staging has no simulated cost, like
  // the paper pre-loading data before timing starts) and build the specs.
  const dfs::FileKind input_kind = base.dedicated_known
                                       ? dfs::FileKind::kReliable
                                       : dfs::FileKind::kOpportunistic;
  const int reduce_slot_total =
      static_cast<int>(env.cluster.size()) * base.reduce_slots;
  std::vector<mapred::JobSpec> specs;
  specs.reserve(arrivals.size());
  for (const workload::JobArrival& arrival : arrivals) {
    const FileId input = dfs.stage_blocks(
        arrival.model.name + ".input", input_kind, base.input_factor,
        arrival.model.num_maps, arrival.model.input_block_bytes);
    specs.push_back(workload::make_job_spec(
        arrival.model, input, reduce_slot_total, base.intermediate_kind,
        base.intermediate_factor, base.output_factor));
  }

  // Submissions fire as sim events; an arrival past the horizon is never
  // scheduled at all (the run loop can step one event past max_sim_time, so
  // scheduling and skipping would let a just-past-the-edge arrival slip in),
  // and only fired submissions have a JobId to read back (the historical
  // multi_job example crashed on exactly that gap).
  std::vector<std::optional<JobId>> submitted(arrivals.size());
  int finished_jobs = 0;
  int expected_jobs = 0;
  jobtracker.on_job_finished([&](mapred::Job&) { ++finished_jobs; });
  // Arrivals hitting a crashed JobTracker retry on a fixed 5 s ticket, same
  // as the single-job harness (DESIGN.md §14).
  std::function<void(std::size_t)> try_submit = [&](std::size_t i) {
    if (!jobtracker.available()) {
      sim.schedule_after(5 * sim::kSecond, [&, i] { try_submit(i); });
      return;
    }
    submitted[i] = jobtracker.submit(specs[i]);
  };
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (arrivals[i].submit_at >= base.max_sim_time) continue;
    ++expected_jobs;
    sim.schedule_at(arrivals[i].submit_at, [&, i] { try_submit(i); });
  }

  while (finished_jobs < expected_jobs && sim.now() < base.max_sim_time) {
    if (!sim.step()) break;
  }

  MultiJobResult result;
  std::vector<double> latencies;
  sim::Time last_end = 0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (!submitted[i]) continue;  // arrival never fired before the horizon
    ++result.submitted_jobs;
    mapred::Job& job = jobtracker.job(*submitted[i]);
    if (base.dump_unfinished && !job.finished()) job.debug_dump(std::cerr);

    JobOutcome outcome;
    outcome.name = job.spec().name;
    outcome.index = arrivals[i].index;
    outcome.submitted_at = job.metrics().submitted_at;
    outcome.run.metrics = job.metrics();
    outcome.run.num_maps = job.spec().num_maps;
    outcome.run.num_reduces = job.spec().num_reduces;
    outcome.run.finished = job.metrics().completed;
    outcome.run.completed_maps = job.completed_tasks(mapred::TaskType::kMap);
    outcome.run.completed_reduces =
        job.completed_tasks(mapred::TaskType::kReduce);
    outcome.run.outputs_committed =
        job.all_maps_done() && job.all_reduces_done();
    outcome.run.execution_time_s =
        outcome.run.finished
            ? job.metrics().execution_time_s()
            : sim::to_seconds(sim.now() - job.metrics().submitted_at);
    outcome.latency_s = outcome.run.execution_time_s;
    outcome.queue_wait_s = job.metrics().queue_wait_s();

    if (outcome.run.finished) {
      ++result.completed_jobs;
      last_end = std::max(last_end, job.metrics().finished_at);
    } else {
      last_end = std::max(last_end, sim.now());
    }
    latencies.push_back(outcome.latency_s);
    result.jobs.push_back(std::move(outcome));
  }

  if (!latencies.empty()) {
    double sum = 0.0;
    for (double l : latencies) sum += l;
    result.mean_latency_s = sum / static_cast<double>(latencies.size());
    result.p95_latency_s = percentile(latencies, 95.0);
    result.jain_fairness = jain_index(latencies);
    result.makespan_s =
        sim::to_seconds(last_end - arrivals.front().submit_at);
  }
  result.replication_queue_depth = dfs.namenode().replication_queue_depth();
  result.profile = sim.profiler().snapshot();
  result.dfs_stats = dfs.stats();
  if (env.injector) result.fault_stats = env.injector->stats();
  result.quarantines = jobtracker.quarantines_total();
  if (env.auditor) {
    env.auditor->run();  // one final sweep at the end-of-run state
    result.audit_passes = env.auditor->passes();
    result.audit_violations = env.auditor->violations_total();
  }
  if (env.obs) {
    env.obs->finalize();
    result.obs = env.obs;
  }
  return result;
}

}  // namespace moon::experiment
