#include "experiment/multi_job.hpp"

#include <algorithm>
#include <functional>
#include <iostream>
#include <optional>
#include <unordered_map>

#include "experiment/environment.hpp"
#include "obs/metrics.hpp"

namespace moon::experiment {

double jain_index(const std::vector<double>& samples) {
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t n = 0;
  for (double x : samples) {
    if (x <= 0.0) continue;
    sum += x;
    sum_sq += x * x;
    ++n;
  }
  if (n == 0 || sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

MultiJobResult run_multi_job_scenario(const MultiJobConfig& config) {
  const ScenarioConfig& base = config.base;

  // Shared with run_scenario (same RNG fork tags, same construction/start
  // order), so a single-arrival kFifo stream is bit-identical to the
  // single-job path.
  Environment env(base);
  sim::Simulation& sim = env.sim;
  dfs::Dfs& dfs = *env.dfs;
  mapred::JobTracker& jobtracker = *env.jobtracker;

  // Open-ended streams default their horizon to the scenario horizon.
  workload::ArrivalConfig arrival_cfg = config.arrivals;
  if (arrival_cfg.num_jobs == 0 && arrival_cfg.horizon <= 0) {
    arrival_cfg.horizon = base.max_sim_time;
  }
  const std::vector<workload::JobArrival> arrivals =
      workload::JobArrivalStream(arrival_cfg, base.seed).generate();

  // Stage every job's input up front (staging has no simulated cost, like
  // the paper pre-loading data before timing starts) and build the specs.
  // Rejected arrivals leave their staged input behind — placement draws stay
  // identical across admission policies, at O(arrivals) DFS metadata.
  const dfs::FileKind input_kind = base.dedicated_known
                                       ? dfs::FileKind::kReliable
                                       : dfs::FileKind::kOpportunistic;
  const int reduce_slot_total =
      static_cast<int>(env.cluster.size()) * base.reduce_slots;
  std::vector<mapred::JobSpec> specs;
  specs.reserve(arrivals.size());
  for (const workload::JobArrival& arrival : arrivals) {
    const FileId input = dfs.stage_blocks(
        arrival.model.name + ".input", input_kind, base.input_factor,
        arrival.model.num_maps, arrival.model.input_block_bytes);
    specs.push_back(workload::make_job_spec(
        arrival.model, input, reduce_slot_total, base.intermediate_kind,
        base.intermediate_factor, base.output_factor));
  }

  MultiJobResult result;

  // ---- streaming aggregates (DESIGN.md §16) -------------------------------
  // Every job folds in here *at its finish event* — in both retain modes,
  // in the same order — so retain_job_results only governs whether the
  // per-job snapshots are additionally kept. Percentiles come from a
  // bounded obs::Histogram reservoir; mean/Jain from exact running sums.
  obs::Histogram latencies(std::max<std::size_t>(config.latency_reservoir, 1));
  double jain_sum = 0.0;
  double jain_sum_sq = 0.0;
  std::size_t jain_n = 0;
  sim::Time last_end = 0;
  const auto fold_latency = [&](double latency_s) {
    latencies.record(latency_s);
    if (latency_s > 0.0) {
      jain_sum += latency_s;
      jain_sum_sq += latency_s * latency_s;
      ++jain_n;
    }
  };
  // Peak trackers sample at every admission/finish event plus end-of-run —
  // identical sample points in both retain modes (sampling reads state
  // only). Retirement happens *after* the finish-event sample, so the peak
  // always includes the finishing job's own footprint.
  const auto sample_state = [&] {
    result.peak_retained_bytes =
        std::max(result.peak_retained_bytes, jobtracker.retained_state_bytes());
    result.peak_live_jobs = std::max(result.peak_live_jobs, jobtracker.live_jobs());
  };

  // ---- per-arrival bookkeeping --------------------------------------------
  std::vector<std::optional<JobId>> submitted(arrivals.size());
  std::vector<char> folded(arrivals.size(), 0);
  std::vector<char> rejected(arrivals.size(), 0);
  // JobId -> arrival index; point lookups only (no iteration), so hash
  // layout never orders any state-changing sweep.
  std::unordered_map<JobId, std::size_t> arrival_of;
  // Outcome slots in arrival order (retain mode): filled at finish for
  // terminal jobs, at end-of-run for DNF jobs, compacted into result.jobs.
  std::vector<std::optional<JobOutcome>> outcomes(
      config.retain_job_results ? arrivals.size() : 0);

  const auto build_outcome = [&](mapred::Job& job, std::size_t i,
                                 double latency_s) {
    JobOutcome outcome;
    outcome.name = job.spec().name;
    outcome.index = arrivals[i].index;
    outcome.submitted_at = job.metrics().submitted_at;
    outcome.run.metrics = job.metrics();
    outcome.run.num_maps = job.spec().num_maps;
    outcome.run.num_reduces = job.spec().num_reduces;
    outcome.run.finished = job.metrics().completed;
    outcome.run.completed_maps = job.completed_tasks(mapred::TaskType::kMap);
    outcome.run.completed_reduces =
        job.completed_tasks(mapred::TaskType::kReduce);
    outcome.run.outputs_committed =
        job.all_maps_done() && job.all_reduces_done();
    outcome.run.execution_time_s =
        job.finished()
            ? job.metrics().execution_time_s()
            : sim::to_seconds(sim.now() - job.metrics().submitted_at);
    outcome.latency_s = latency_s;
    outcome.queue_wait_s = job.metrics().queue_wait_s();
    outcomes[i] = std::move(outcome);
  };

  // Folds a *finished* (completed, aborted, or shed) job into the stream
  // aggregates; runs inside the on_job_finished callback, before any GC.
  const auto fold_finished = [&](mapred::Job& job, std::size_t i) {
    const mapred::JobMetrics& m = job.metrics();
    const double latency_s =
        sim::to_seconds(m.finished_at - arrivals[i].submit_at);
    if (m.completed) {
      ++result.completed_jobs;
      fold_latency(latency_s);
    } else if (m.failure_reason == mapred::JobFailureReason::kShed) {
      ++result.shed_jobs;
      if (config.count_dnf_latencies) fold_latency(latency_s);
    } else {
      ++result.aborted_jobs;
      if (config.count_dnf_latencies) fold_latency(latency_s);
    }
    if (m.has_deadline()) {
      ++result.sla_eligible_jobs;
      if (m.sla_missed()) ++result.sla_missed_jobs;
    }
    last_end = std::max(last_end, m.finished_at);
    folded[i] = 1;
    if (config.retain_job_results) build_outcome(job, i, latency_s);
  };

  int resolved = 0;  // fired arrivals with a terminal verdict
  std::vector<JobId> pending_retire;
  jobtracker.on_job_finished([&](mapred::Job& job) {
    auto it = arrival_of.find(job.id());
    if (it == arrival_of.end()) return;  // not one of this stream's jobs
    ++resolved;
    fold_finished(job, it->second);
    sample_state();
    // The Job is still on the stack inside try_commit/fail_job here;
    // retirement is deferred to the run loop, between sim steps.
    if (!config.retain_job_results) pending_retire.push_back(job.id());
  });

  // Arrivals hitting a crashed JobTracker retry on a fixed 5 s ticket, same
  // as the single-job harness (DESIGN.md §14); once the master is up they
  // go through admission control when it is configured.
  std::function<void(std::size_t)> try_submit = [&](std::size_t i) {
    if (!jobtracker.available()) {
      sim.schedule_after(5 * sim::kSecond, [&, i] { try_submit(i); });
      return;
    }
    mapred::AdmissionController* admission = jobtracker.admission();
    if (admission == nullptr) {
      submitted[i] = jobtracker.submit(specs[i]);
      arrival_of[*submitted[i]] = i;
      sample_state();
      return;
    }
    admission->offer(
        specs[i], [&, i](const mapred::AdmissionController::Outcome& out) {
          if (out.decision ==
              mapred::AdmissionController::Decision::kAdmitted) {
            submitted[i] = out.job;
            arrival_of[out.job] = i;
            mapred::Job& job = jobtracker.job(out.job);
            if (out.defers > 0 && job.spec().deadline > 0) {
              // SLA clocks start at *arrival*: a deferred admission does
              // not push the deadline out.
              job.metrics().deadline_at =
                  arrivals[i].submit_at + job.spec().deadline;
            }
            sample_state();
          } else {
            rejected[i] = 1;
            ++result.rejected_jobs;
            ++resolved;
            if (arrivals[i].model.deadline > 0) {
              // A refused deadline job is a certain SLA miss.
              ++result.sla_eligible_jobs;
              ++result.sla_missed_jobs;
            }
          }
        });
  };

  // Submissions fire as sim events; an arrival past the horizon is never
  // scheduled at all (the run loop can step one event past max_sim_time, so
  // scheduling and skipping would let a just-past-the-edge arrival slip in),
  // and only fired submissions have a JobId to read back (the historical
  // multi_job example crashed on exactly that gap).
  int expected = 0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (arrivals[i].submit_at >= base.max_sim_time) continue;
    ++expected;
    sim.schedule_at(arrivals[i].submit_at, [&, i] { try_submit(i); });
  }

  while (resolved < expected && sim.now() < base.max_sim_time) {
    if (!sim.step()) break;
    // Retired-job GC (retain_job_results == false): destroy jobs whose
    // finish event already folded them, now that the event stack unwound.
    for (JobId id : pending_retire) jobtracker.retire_job(id);
    pending_retire.clear();
  }

  // ---- end-of-run accounting ---------------------------------------------
  // Deterministic arrival-index order for every end-of-run fold.
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (submitted[i]) {
      ++result.submitted_jobs;
      if (folded[i]) continue;
      // Admitted but unfinished at the horizon: did-not-finish.
      mapred::Job& job = jobtracker.job(*submitted[i]);
      ++result.dnf_jobs;
      const double latency_s =
          sim::to_seconds(sim.now() - arrivals[i].submit_at);
      if (config.count_dnf_latencies) fold_latency(latency_s);
      const mapred::JobMetrics& m = job.metrics();
      if (m.has_deadline()) {
        ++result.sla_eligible_jobs;
        if (sim.now() > m.deadline_at) ++result.sla_missed_jobs;
      }
      last_end = std::max(last_end, sim.now());
      if (config.retain_job_results) {
        if (base.dump_unfinished) job.debug_dump(std::cerr);
        build_outcome(job, i, latency_s);
      }
    } else if (!rejected[i] && arrivals[i].submit_at < base.max_sim_time) {
      // Fired but still parked in the defer queue at the horizon: the
      // arrival never got in — count it with the rejections.
      rejected[i] = 1;
      ++result.rejected_jobs;
      if (arrivals[i].model.deadline > 0) {
        ++result.sla_eligible_jobs;
        ++result.sla_missed_jobs;
      }
    }
  }
  if (config.retain_job_results) {
    for (std::optional<JobOutcome>& outcome : outcomes) {
      if (outcome) result.jobs.push_back(std::move(*outcome));
    }
  }

  result.mean_latency_s = latencies.mean();
  result.p95_latency_s = latencies.percentile(0.95);
  result.p99_latency_s = latencies.percentile(0.99);
  if (jain_n > 0 && jain_sum_sq > 0.0) {
    result.jain_fairness =
        (jain_sum * jain_sum) / (static_cast<double>(jain_n) * jain_sum_sq);
  }
  if (last_end > 0 && !arrivals.empty()) {
    result.makespan_s = sim::to_seconds(last_end - arrivals.front().submit_at);
  }
  sample_state();
  result.final_retained_bytes = jobtracker.retained_state_bytes();
  result.jobs_retired = jobtracker.jobs_retired();
  if (mapred::AdmissionController* admission = jobtracker.admission()) {
    result.admission = admission->stats();
    result.admission_sequence_hash = admission->sequence_hash();
  }
  result.replication_queue_depth = dfs.namenode().replication_queue_depth();
  result.profile = sim.profiler().snapshot();
  result.dfs_stats = dfs.stats();
  if (env.injector) result.fault_stats = env.injector->stats();
  result.quarantines = jobtracker.quarantines_total();
  if (env.auditor) {
    env.auditor->run();  // one final sweep at the end-of-run state
    result.audit_passes = env.auditor->passes();
    result.audit_violations = env.auditor->violations_total();
  }
  if (env.obs) {
    env.obs->finalize();
    result.obs = env.obs;
  }
  return result;
}

}  // namespace moon::experiment
