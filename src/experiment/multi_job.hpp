// Multi-job experiment harness (DESIGN.md §10, §16): wires one opportunistic
// cluster + DFS + JobTracker, replays a JobArrivalStream into it, and
// collects per-job RunResults plus stream-level metrics (makespan, mean/p95
// job latency, Jain fairness index, SLA misses, admission outcomes).
//
// The environment setup is the same experiment::Environment run_scenario
// uses (shared construction path, same RNG fork tags and startup order), so
// a kFifo stream with a single arrival reproduces the single-job schedule
// bit for bit — asserted by tests/experiment/multi_job_test.cpp.
//
// Steady-state serving (DESIGN.md §16): arrivals route through the
// JobTracker's AdmissionController when base.sched.admission.enabled, and
// `retain_job_results = false` garbage-collects each job as it finishes —
// its outcome folds into streaming aggregates (bounded-reservoir
// percentiles via obs::Histogram, running sums for mean/Jain) and the Job
// object is destroyed, so memory per retired job is O(1). Stream-level
// aggregates are bit-identical between the two retain modes: both fold at
// the same events in the same order; retention only *additionally* keeps
// the per-job snapshots.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "experiment/scenario.hpp"
#include "mapred/admission.hpp"
#include "workload/arrival.hpp"

namespace moon::experiment {

struct MultiJobConfig {
  /// Cluster / volatility / stack knobs. `base.app` and `base.submit_at` are
  /// ignored — the arrival stream supplies per-job models and submit times.
  /// `base.sched.admission` gates arrivals when enabled; `base.max_sim_time`
  /// is the stream horizon.
  ScenarioConfig base;
  workload::ArrivalConfig arrivals;

  /// true (default): keep a JobOutcome per job and every finished Job object
  /// — today's behavior. false: fold each job into the stream aggregates at
  /// finish and retire it from the JobTracker (O(1) retained memory per
  /// job); MultiJobResult::jobs stays empty.
  bool retain_job_results = true;

  /// Jobs still unfinished at the horizon have no completion latency; by
  /// default they are *counted* (dnf_jobs) but excluded from the latency
  /// stats. true restores the legacy accounting that folds their truncated
  /// horizon latency into mean/p95/Jain (aborted/shed jobs' terminal
  /// latencies too) — useful when non-completion must hurt a policy's mean.
  bool count_dnf_latencies = false;

  /// Bounded reservoir size for the stream latency percentiles
  /// (obs::Histogram window); running count/sum/min/max are exact.
  std::size_t latency_reservoir = 4096;
};

/// One job of the stream, in the familiar single-job shape plus stream
/// bookkeeping. Only populated when retain_job_results.
struct JobOutcome {
  std::string name;
  int index = 0;                 ///< position in the arrival stream
  sim::Time submitted_at = 0;
  double latency_s = 0.0;        ///< completion - arrival (horizon if DNF)
  double queue_wait_s = 0.0;     ///< submission -> first launched attempt
  RunResult run;                 ///< per-job metrics/progress snapshot
};

struct MultiJobResult {
  std::vector<JobOutcome> jobs;  ///< empty when retain_job_results == false
  int submitted_jobs = 0;  ///< arrivals admitted to the JobTracker
  int completed_jobs = 0;
  /// Admitted but failed: aborted by the framework (task/attempt caps) vs
  /// shed by admission control — distinct fates, reported separately.
  int aborted_jobs = 0;
  int shed_jobs = 0;
  /// Admitted but still unfinished when the stream horizon hit.
  int dnf_jobs = 0;
  /// Arrivals refused by admission control (immediately or after
  /// exhausting their defer budget; includes arrivals still parked in the
  /// defer queue at the horizon).
  int rejected_jobs = 0;

  // --- SLA accounting (jobs whose model carried a deadline) ---
  int sla_eligible_jobs = 0;
  /// Misses: finished late, aborted, shed, rejected, or DNF past deadline.
  int sla_missed_jobs = 0;
  [[nodiscard]] double sla_miss_rate() const {
    return sla_eligible_jobs == 0
               ? 0.0
               : static_cast<double>(sla_missed_jobs) / sla_eligible_jobs;
  }

  double makespan_s = 0.0;  ///< first submission -> last completion/horizon
  double mean_latency_s = 0.0;  ///< completed jobs (see count_dnf_latencies)
  double p95_latency_s = 0.0;   ///< over the bounded reservoir window
  double p99_latency_s = 0.0;
  /// Jain index over per-job latencies: 1 when every job waits equally,
  /// -> 1/n when one job absorbs all the delay.
  double jain_fairness = 1.0;

  // --- steady-state memory/backlog accounting (DESIGN.md §16) ---
  /// Max of JobTracker::retained_state_bytes() sampled at every job-finish
  /// event and at the end of the run.
  std::size_t peak_retained_bytes = 0;
  std::size_t final_retained_bytes = 0;
  /// Max unfinished-job count observed at the same sample points.
  int peak_live_jobs = 0;
  std::int64_t jobs_retired = 0;

  // --- admission outcomes (zeros when admission is off) ---
  mapred::AdmissionController::Stats admission{};
  /// FNV-1a over the controller's (decision, time) sequence; equal hashes
  /// across same-seed runs certify bit-identical admit/reject/shed streams.
  std::uint64_t admission_sequence_hash = 0;

  std::size_t replication_queue_depth = 0;
  // Fault-injection & audit accounting, cluster-wide (zero when faults off).
  faults::FaultStats fault_stats{};
  std::int64_t quarantines = 0;
  std::int64_t audit_passes = 0;
  std::int64_t audit_violations = 0;
  /// Host wall-clock profile of the whole stream run (shared simulator).
  sim::Profiler::Snapshot profile{};
  dfs::DfsStats dfs_stats;  ///< cluster-wide (the DFS is shared by all jobs)
  /// Control-plane cost across the stream — the profiler's kHeartbeat view.
  [[nodiscard]] double scheduling_wall_ms() const {
    return profile[static_cast<std::size_t>(sim::Profiler::Key::kHeartbeat)]
        .ms();
  }
  /// The run's observability bundle (null when base.obs was all-off).
  std::shared_ptr<obs::Observability> obs;
};

/// Runs the arrival stream to completion (or base.max_sim_time). Arrivals
/// past the horizon never fire and are not reported as jobs.
MultiJobResult run_multi_job_scenario(const MultiJobConfig& config);

/// Jain fairness index (sum x)^2 / (n * sum x^2) over positive samples;
/// 1.0 for empty/degenerate input.
double jain_index(const std::vector<double>& samples);

}  // namespace moon::experiment
