// Multi-job experiment harness (DESIGN.md §10): wires one opportunistic
// cluster + DFS + JobTracker, replays a JobArrivalStream into it, and
// collects per-job RunResults plus stream-level metrics (makespan, mean/p95
// job latency, Jain fairness index).
//
// The environment setup is the same experiment::Environment run_scenario
// uses (shared construction path, same RNG fork tags and startup order), so
// a kFifo stream with a single arrival reproduces the single-job schedule
// bit for bit — asserted by tests/experiment/multi_job_test.cpp.
#pragma once

#include <string>
#include <vector>

#include "experiment/scenario.hpp"
#include "workload/arrival.hpp"

namespace moon::experiment {

struct MultiJobConfig {
  /// Cluster / volatility / stack knobs. `base.app` and `base.submit_at` are
  /// ignored — the arrival stream supplies per-job models and submit times.
  ScenarioConfig base;
  workload::ArrivalConfig arrivals;
};

/// One job of the stream, in the familiar single-job shape plus stream
/// bookkeeping.
struct JobOutcome {
  std::string name;
  int index = 0;                 ///< position in the arrival stream
  sim::Time submitted_at = 0;
  double latency_s = 0.0;        ///< completion - submission (horizon if DNF)
  double queue_wait_s = 0.0;     ///< submission -> first launched attempt
  RunResult run;                 ///< per-job metrics/progress snapshot
};

struct MultiJobResult {
  std::vector<JobOutcome> jobs;  ///< submitted jobs, in arrival order
  int submitted_jobs = 0;        ///< arrivals that fired before the horizon
  int completed_jobs = 0;
  double makespan_s = 0.0;       ///< first submission -> last completion/horizon
  double mean_latency_s = 0.0;
  double p95_latency_s = 0.0;
  /// Jain index over per-job latencies: 1 when every job waits equally,
  /// -> 1/n when one job absorbs all the delay.
  double jain_fairness = 1.0;
  std::size_t replication_queue_depth = 0;
  // Fault-injection & audit accounting, cluster-wide (zero when faults off).
  faults::FaultStats fault_stats{};
  std::int64_t quarantines = 0;
  std::int64_t audit_passes = 0;
  std::int64_t audit_violations = 0;
  /// Host wall-clock profile of the whole stream run (shared simulator).
  sim::Profiler::Snapshot profile{};
  dfs::DfsStats dfs_stats;  ///< cluster-wide (the DFS is shared by all jobs)
  /// Control-plane cost across the stream — the profiler's kHeartbeat view.
  [[nodiscard]] double scheduling_wall_ms() const {
    return profile[static_cast<std::size_t>(sim::Profiler::Key::kHeartbeat)]
        .ms();
  }
  /// The run's observability bundle (null when base.obs was all-off).
  std::shared_ptr<obs::Observability> obs;
};

/// Runs the arrival stream to completion (or base.max_sim_time). Arrivals
/// past the horizon never fire and are not reported as jobs.
MultiJobResult run_multi_job_scenario(const MultiJobConfig& config);

/// Jain fairness index (sum x)^2 / (n * sum x^2) over positive samples;
/// 1.0 for empty/degenerate input.
double jain_index(const std::vector<double>& samples);

}  // namespace moon::experiment
