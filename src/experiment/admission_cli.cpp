#include "experiment/admission_cli.hpp"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "common/time.hpp"

namespace moon::experiment {
namespace {

bool parse_int(const std::string& text, int& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value < 0) return false;
  out = static_cast<int>(value);
  return true;
}

}  // namespace

bool apply_admission_spec(const std::string& spec,
                          mapred::AdmissionConfig& config) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t colon = spec.find(':', pos);
    parts.push_back(spec.substr(
        pos, colon == std::string::npos ? std::string::npos : colon - pos));
    pos = colon == std::string::npos ? spec.size() + 1 : colon + 1;
  }
  if (parts.empty() || parts.size() > 3) {
    std::cerr << "--admission: expected POLICY[:MAX_QUEUED[:MAX_LIVE_ATTEMPTS]]"
                 ", got '" << spec << "'\n";
    return false;
  }
  if (parts[0] == "reject") {
    config.policy = mapred::AdmissionConfig::Policy::kRejectNewest;
  } else if (parts[0] == "defer") {
    config.policy = mapred::AdmissionConfig::Policy::kDeferWithBackoff;
  } else if (parts[0] == "shed") {
    config.policy = mapred::AdmissionConfig::Policy::kShedLowestPriority;
  } else {
    std::cerr << "--admission: unknown policy '" << parts[0]
              << "' (expected reject | defer | shed)\n";
    return false;
  }
  if (parts.size() >= 2 && !parse_int(parts[1], config.max_queued_jobs)) {
    std::cerr << "--admission: bad MAX_QUEUED '" << parts[1] << "'\n";
    return false;
  }
  if (parts.size() >= 3 && !parse_int(parts[2], config.max_live_attempts)) {
    std::cerr << "--admission: bad MAX_LIVE_ATTEMPTS '" << parts[2] << "'\n";
    return false;
  }
  config.enabled = true;
  return true;
}

void AdmissionCli::apply_deadline(workload::ArrivalConfig& arrivals) const {
  if (deadline_s <= 0.0) return;
  for (workload::JobMix& entry : arrivals.mix) {
    entry.model.deadline = sim::seconds(deadline_s);
  }
}

AdmissionCli parse_admission_cli(int& argc, char** argv) {
  AdmissionCli cli;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--admission=", 12) == 0) {
      cli.spec = arg + 12;
    } else if (std::strncmp(arg, "--deadline=", 11) == 0) {
      char* end = nullptr;
      cli.deadline_s = std::strtod(arg + 11, &end);
      if (end == nullptr || *end != '\0' || cli.deadline_s <= 0.0) {
        std::cerr << "--deadline: expected positive seconds, got '" << arg + 11
                  << "'\n";
        cli.deadline_s = 0.0;
      }
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  return cli;
}

}  // namespace moon::experiment
