// Result reporting: CSV emission for experiment sweeps, so bench output can
// be archived and plotted without re-running simulations.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "experiment/scenario.hpp"

namespace moon::experiment {

/// One labelled cell of a sweep (e.g. policy x unavailability-rate).
struct SweepCell {
  std::string row;     ///< e.g. "MOON-Hybrid"
  std::string column;  ///< e.g. "0.5"
  Summary summary;
};

class SweepReport {
 public:
  explicit SweepReport(std::string name);

  void add(std::string row, std::string column, Summary summary);

  /// CSV with one line per cell:
  /// sweep,row,column,runs,completed,time_mean_s,time_stddev_s,
  /// duplicated_mean,killed_maps_mean,killed_reduces_mean,
  /// map_time_mean_s,shuffle_time_mean_s,reduce_time_mean_s,
  /// fetch_failures_mean
  void write_csv(std::ostream& os) const;
  void save_csv(const std::string& path) const;

  [[nodiscard]] const std::vector<SweepCell>& cells() const { return cells_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::vector<SweepCell> cells_;
};

}  // namespace moon::experiment
