// Shared `--faults=SPEC` command-line handling for examples and benches.
//
// parse_faults_cli() strips the flag out of argv (same convention as
// obs_cli: positional-argument parsing stays untouched) and apply() turns
// the spec into a faults::FaultConfig. SPEC is a comma-separated list:
//
//   all              every fault class at its canonical chaos level
//   outages          correlated lab power-cycles (config defaults)
//   heartbeats[:P]   heartbeat loss/delay; P sets both probabilities (0.05)
//   storage[:P]      replica corruption + disk-full; P sets both (0.02)
//   stragglers[:F]   seeded capacity degradation; F = fleet fraction (0.1)
//   audit[:SECONDS]  periodic invariant auditor sweep (60)
//
// e.g. `quickstart --faults=all,audit:30` or
//      `bench_fig7 --faults=heartbeats:0.1,storage`.
#pragma once

#include <string>

#include "faults/fault_config.hpp"

namespace moon::experiment {

/// Parses one chaos spec token list into `config` (additive — earlier
/// settings survive unless a token overwrites them). Returns false and
/// reports to stderr on a malformed token; `config` may be partially
/// updated in that case.
bool apply_fault_spec(const std::string& spec, faults::FaultConfig& config);

struct FaultCli {
  std::string spec;  ///< raw --faults= value; empty when the flag was absent

  [[nodiscard]] bool any() const { return !spec.empty(); }

  /// Applies the captured spec; no-op when the flag was absent. Returns
  /// false on a malformed spec (already reported to stderr).
  bool apply(faults::FaultConfig& config) const {
    return spec.empty() || apply_fault_spec(spec, config);
  }
};

/// Extracts `--faults=SPEC` from argv, compacting the remaining arguments
/// in place and updating argc.
FaultCli parse_faults_cli(int& argc, char** argv);

}  // namespace moon::experiment
