// Experiment harness: wires trace -> cluster -> DFS -> MapReduce for one
// simulated job run, exposes the paper's policy presets, and aggregates
// repeated runs.
//
// Cluster layouts:
//  * MOON mode      — V volatile + D dedicated nodes; the framework knows
//                     which is which (hybrid replication & scheduling work).
//  * Hadoop mode    — the same physical machines, but the framework treats
//                     every node as volatile ("these nodes are all treated
//                     as volatile in the Hadoop tests as Hadoop cannot
//                     differentiate", §VI-C); the D reliable machines simply
//                     never go down.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/stats.hpp"
#include "dfs/types.hpp"
#include "faults/fault_config.hpp"
#include "faults/fault_injector.hpp"
#include "mapred/types.hpp"
#include "obs/observability.hpp"
#include "simkit/flow_network.hpp"
#include "simkit/profiler.hpp"
#include "trace/trace_generator.hpp"
#include "workload/workload.hpp"

namespace moon::experiment {

struct ScenarioConfig {
  // --- cluster ---
  std::size_t volatile_nodes = 60;
  std::size_t dedicated_nodes = 6;
  /// false = Hadoop mode: dedicated machines exist but are typed volatile.
  bool dedicated_known = true;
  /// Effective per-node bandwidths (see DESIGN.md §6 for calibration).
  BytesPerSecond nic_bandwidth = mibps(80.0);
  BytesPerSecond disk_bandwidth = mibps(30.0);
  int map_slots = 2;
  int reduce_slots = 2;

  // --- volatility ---
  double unavailability_rate = 0.3;
  trace::GeneratorConfig trace_gen;  ///< rate is overwritten per run
  /// Correlated (lab-session) outages instead of independent ones (§III).
  bool correlated_outages = false;
  std::size_t correlation_group_size = 10;
  double correlated_fraction = 0.5;
  /// Lab-session length (seconds); sessions comparable to the job length
  /// are the interesting regime (a short job simply dodges hour-long ones).
  double correlated_event_mean_s = 1800.0;

  // --- stack configuration ---
  mapred::SchedulerConfig sched;
  dfs::DfsConfig dfs;
  sim::FairnessModel fairness = sim::FairnessModel::kBottleneckShare;
  /// Flow-solver oracle knobs: the defaults are the shipping configuration;
  /// kDense / kEager replay the same simulated outcomes bit for bit at the
  /// pre-optimization cost profile (equivalence-tested).
  sim::SolverMode solver = sim::SolverMode::kIncremental;
  sim::CoalesceMode coalesce = sim::CoalesceMode::kCoalesced;

  // --- workload & replication ---
  workload::WorkloadModel app = workload::sort_workload();
  dfs::ReplicationFactor input_factor{1, 3};
  dfs::FileKind intermediate_kind = dfs::FileKind::kOpportunistic;
  dfs::ReplicationFactor intermediate_factor{1, 1};
  dfs::ReplicationFactor output_factor{1, 3};

  // --- run control ---
  std::uint64_t seed = 1;
  sim::Duration submit_at = 60 * sim::kSecond;
  sim::Duration max_sim_time = 24 * sim::kHour;
  /// Dump unfinished-task state to stderr when the horizon is hit.
  bool dump_unfinished = false;

  // --- observability (off by default; zero-perturbation when on) ---
  obs::ObsConfig obs;

  // --- fault injection (off by default; runs without it are bit-identical
  // to builds that never had it — DESIGN.md §13) ---
  faults::FaultConfig faults;
};

struct RunResult {
  mapred::JobMetrics metrics;
  dfs::DfsStats dfs_stats;
  int num_maps = 0;
  int num_reduces = 0;
  bool finished = false;  ///< completed within the horizon
  double execution_time_s = 0.0;  ///< horizon time if DNF
  /// Host wall-clock profile of the run's hot paths (settle/recompute, DFS
  /// probes, replication scans, heartbeats, speculation) — what the next
  /// perf PR should look at before guessing.
  sim::Profiler::Snapshot profile{};
  /// Wall-clock ms the JobTracker spent making heartbeat assignment
  /// decisions (the measured Figure-4 "scheduling time"). Derived from the
  /// profiler's kHeartbeat counter — one measurement, two views.
  [[nodiscard]] double scheduling_wall_ms() const {
    return profile[static_cast<std::size_t>(sim::Profiler::Key::kHeartbeat)]
        .ms();
  }
  /// The run's observability bundle (null when config.obs was all-off);
  /// finalized — trace/metrics/event log are complete and exportable.
  std::shared_ptr<obs::Observability> obs;
  // End-of-run progress snapshot (diagnoses DNF runs).
  int completed_maps = 0;
  int completed_reduces = 0;
  bool outputs_committed = false;  ///< all reduces done, waiting on factors
  std::size_t replication_queue_depth = 0;
  // Fault-injection & audit accounting (all zero when config.faults is off).
  faults::FaultStats fault_stats{};
  std::int64_t quarantines = 0;      ///< flaky-node quarantine entries
  std::int64_t audit_passes = 0;     ///< periodic invariant sweeps run
  std::int64_t audit_violations = 0; ///< total violations across sweeps
  // Master crash-recovery accounting (DESIGN.md §14; all zero unless
  // faults.master_crash is on — the goldens assert exactly that).
  std::int64_t journal_records = 0;      ///< NN+JT journal records appended
  std::int64_t journal_snapshots = 0;    ///< snapshot folds taken
  std::int64_t journal_divergences = 0;  ///< replay-vs-live diffs (must be 0)
  std::int64_t heartbeats_missed = 0;    ///< TT beats dropped while JT down
  std::int64_t reports_parked = 0;       ///< outcomes parked on attempts
  std::int64_t reports_replayed = 0;     ///< parked reports delivered post-recovery
  std::int64_t reregistrations = 0;      ///< trackers re-registered at recovery
  std::int64_t orphans_killed = 0;       ///< attempts reconciled away post-recovery
  [[nodiscard]] int duplicated_tasks() const {
    return metrics.duplicated_tasks(num_maps, num_reduces);
  }
};

/// Runs one job to completion (or the horizon) and collects everything.
RunResult run_scenario(const ScenarioConfig& config);

// ---- policy presets (paper §VI) -------------------------------------------

/// Hadoop baseline with a given TrackerExpiryInterval (the paper sweeps
/// 1 / 5 / 10 minutes).
mapred::SchedulerConfig hadoop_scheduler(sim::Duration tracker_expiry);

/// MOON scheduler: SuspensionInterval 1 min, TrackerExpiryInterval 30 min;
/// `hybrid` enables §V-C dedicated-resource awareness.
mapred::SchedulerConfig moon_scheduler(bool hybrid);

/// MOON plus the reduce-checkpoint subsystem (see DESIGN.md
/// § checkpointing): running reduces persist shuffle/compute progress into
/// the DFS and rescheduled attempts resume from the latest live checkpoint.
/// Tolerates churn without relying on dedicated-node placement, so it is
/// most interesting with `hybrid` off.
mapred::SchedulerConfig moon_checkpoint_scheduler(bool hybrid = false);

/// LATE (OSDI'08) on stock Hadoop fault-tolerance semantics.
mapred::SchedulerConfig late_scheduler(sim::Duration tracker_expiry);

/// The paper's named future work: LATE's time-to-end speculation combined
/// with MOON's suspension detection (no premature kills).
mapred::SchedulerConfig late_moon_scheduler();

/// DFS configs: MOON (hibernation + adaptive replication + throttling) vs
/// plain Hadoop-style behaviour.
dfs::DfsConfig moon_dfs_config();
dfs::DfsConfig hadoop_dfs_config();

// ---- repetition aggregation -----------------------------------------------

struct Summary {
  Accumulator execution_time_s;
  Accumulator duplicated_tasks;
  Accumulator killed_maps;
  Accumulator killed_reduces;
  Accumulator map_reexecutions;
  Accumulator avg_map_time_s;
  Accumulator avg_shuffle_time_s;
  Accumulator avg_reduce_time_s;
  Accumulator fetch_failures;
  Accumulator checkpoints_written;
  Accumulator checkpoint_resumes;
  Accumulator checkpoint_salvaged;
  Accumulator scheduling_wall_ms;  ///< control-plane cost per run (measured)
  /// Host wall-clock ms per profiled hot path, indexed by sim::Profiler::Key.
  std::array<Accumulator, sim::Profiler::kKeyCount> profile_ms{};
  int completed_runs = 0;
  int total_runs = 0;
};

/// Runs `repetitions` seeds of the scenario (seed, seed+1, ...) and
/// aggregates. An optional observer sees every RunResult.
Summary run_repetitions(ScenarioConfig config, int repetitions,
                        const std::function<void(const RunResult&)>& observer = {});

}  // namespace moon::experiment
