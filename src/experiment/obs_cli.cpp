#include "experiment/obs_cli.hpp"

#include <cstring>
#include <fstream>
#include <iostream>

namespace moon::experiment {

void ObsCli::apply(obs::ObsConfig& config) const {
  if (!trace_path.empty()) config.trace = true;
  if (!metrics_path.empty()) config.metrics = true;
  if (!events_path.empty()) config.capture_log = true;
}

void ObsCli::export_run(const obs::Observability* bundle) const {
  if (bundle == nullptr) return;
  if (!trace_path.empty() && bundle->tracer() != nullptr) {
    std::ofstream out(trace_path);
    bundle->tracer()->write_chrome_trace(out);
    std::cerr << "trace: " << trace_path << " ("
              << bundle->tracer()->event_count() << " events, "
              << bundle->tracer()->dropped() << " dropped)\n";
  }
  if (!metrics_path.empty() && bundle->metrics() != nullptr) {
    std::ofstream out(metrics_path);
    bundle->metrics()->write_csv(out);
    std::cerr << "metrics: " << metrics_path << " ("
              << bundle->metrics()->gauge_count() << " gauges, "
              << bundle->metrics()->sample_count() << " samples)\n";
  }
  if (!events_path.empty()) {
    std::ofstream out(events_path);
    bundle->events().write_jsonl(out);
    std::cerr << "events: " << events_path << " ("
              << bundle->events().size() << " records)\n";
  }
}

ObsCli parse_obs_cli(int& argc, char** argv) {
  ObsCli cli;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace=", 8) == 0) {
      cli.trace_path = arg + 8;
    } else if (std::strncmp(arg, "--metrics=", 10) == 0) {
      cli.metrics_path = arg + 10;
    } else if (std::strncmp(arg, "--events=", 9) == 0) {
      cli.events_path = arg + 9;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  return cli;
}

}  // namespace moon::experiment
