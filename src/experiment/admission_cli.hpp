// Shared `--admission=SPEC` / `--deadline=SECONDS` command-line handling for
// examples and benches (DESIGN.md §16).
//
// parse_admission_cli() strips both flags out of argv (same convention as
// fault_cli/obs_cli: positional-argument parsing stays untouched).
//
//   --admission=POLICY[:MAX_QUEUED[:MAX_LIVE_ATTEMPTS]]
//       POLICY is reject | defer | shed. MAX_QUEUED caps unfinished
//       admitted jobs (default 8, 0 = unlimited); MAX_LIVE_ATTEMPTS caps
//       in-flight attempts (default 0 = unlimited).
//   --deadline=SECONDS
//       Attaches a relative SLA deadline to every model in the workload
//       mix (SECONDS > 0), for kDeadlineEdf runs and SLA-miss accounting.
//
// e.g. `multi_job --admission=shed:6` or
//      `multi_job --admission=defer:4:40 --deadline=1800`.
#pragma once

#include <string>

#include "mapred/types.hpp"
#include "workload/arrival.hpp"

namespace moon::experiment {

/// Parses one POLICY[:MAX_QUEUED[:MAX_LIVE_ATTEMPTS]] spec into `config`
/// (sets enabled = true). Returns false and reports to stderr on a
/// malformed spec; `config` may be partially updated in that case.
bool apply_admission_spec(const std::string& spec,
                          mapred::AdmissionConfig& config);

struct AdmissionCli {
  std::string spec;        ///< raw --admission= value; empty when absent
  double deadline_s = 0.0; ///< --deadline= value; 0 when absent

  [[nodiscard]] bool any() const { return !spec.empty() || deadline_s > 0.0; }

  /// Applies the captured admission spec; no-op when the flag was absent.
  /// Returns false on a malformed spec (already reported to stderr).
  bool apply(mapred::AdmissionConfig& config) const {
    return spec.empty() || apply_admission_spec(spec, config);
  }

  /// Stamps the captured --deadline onto every model of `arrivals.mix`
  /// (no-op when the flag was absent).
  void apply_deadline(workload::ArrivalConfig& arrivals) const;
};

/// Extracts `--admission=SPEC` and `--deadline=SECONDS` from argv,
/// compacting the remaining arguments in place and updating argc.
AdmissionCli parse_admission_cli(int& argc, char** argv);

}  // namespace moon::experiment
