#include "experiment/fault_cli.hpp"

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/time.hpp"

namespace moon::experiment {
namespace {

bool parse_number(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0';
}

void enable_outages(faults::FaultConfig& config) {
  config.outages.enabled = true;
}

void enable_heartbeats(faults::FaultConfig& config, double p) {
  config.heartbeats.enabled = true;
  config.heartbeats.drop_probability = p;
  config.heartbeats.delay_probability = p;
}

void enable_storage(faults::FaultConfig& config, double p) {
  config.storage.enabled = true;
  config.storage.corrupt_probability = p;
  config.storage.reject_probability = p;
}

void enable_stragglers(faults::FaultConfig& config, double fraction) {
  config.stragglers.enabled = true;
  config.stragglers.fraction = fraction;
}

}  // namespace

bool apply_fault_spec(const std::string& spec, faults::FaultConfig& config) {
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string token = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (token.empty()) continue;

    const std::size_t colon = token.find(':');
    const std::string name = token.substr(0, colon);
    const bool has_value = colon != std::string::npos;
    double value = 0.0;
    if (has_value && !parse_number(token.substr(colon + 1), value)) {
      std::cerr << "--faults: bad value in token '" << token << "'\n";
      return false;
    }

    if (name == "all" && !has_value) {
      enable_outages(config);
      enable_heartbeats(config, 0.05);
      enable_storage(config, 0.02);
      enable_stragglers(config, config.stragglers.fraction);
    } else if (name == "outages" && !has_value) {
      enable_outages(config);
    } else if (name == "heartbeats") {
      enable_heartbeats(config, has_value ? value : 0.05);
    } else if (name == "storage") {
      enable_storage(config, has_value ? value : 0.02);
    } else if (name == "stragglers") {
      enable_stragglers(config,
                        has_value ? value : config.stragglers.fraction);
    } else if (name == "audit") {
      config.audit_interval = sim::seconds(has_value ? value : 60.0);
    } else if (name == "master_crash") {
      config.master_crash.enabled = true;
      if (has_value) config.master_crash.mean_downtime = sim::seconds(value);
    } else {
      std::cerr << "--faults: unknown token '" << token
                << "' (expected all | outages | heartbeats[:P] | storage[:P]"
                   " | stragglers[:F] | audit[:SECONDS]"
                   " | master_crash[:DOWNTIME_SECONDS])\n";
      return false;
    }
    config.enabled = true;
  }
  return true;
}

FaultCli parse_faults_cli(int& argc, char** argv) {
  FaultCli cli;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--faults=", 9) == 0) {
      cli.spec = arg + 9;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  return cli;
}

}  // namespace moon::experiment
