#include "experiment/environment.hpp"

#include <algorithm>
#include <string>

#include "experiment/scenario.hpp"
#include "trace/correlated.hpp"
#include "trace/trace_generator.hpp"

namespace moon::experiment {

Environment::Environment(const ScenarioConfig& config)
    : sim(config.seed),
      cluster(sim, config.fairness, config.solver, config.coalesce) {
  // The members `sim`/`cluster`/`dfs` shadow their namespaces in here, so
  // namespace-qualified types spell out moon::.
  moon::cluster::NodeConfig volatile_cfg;
  volatile_cfg.type = moon::cluster::NodeType::kVolatile;
  volatile_cfg.map_slots = config.map_slots;
  volatile_cfg.reduce_slots = config.reduce_slots;
  volatile_cfg.nic_in_bw = config.nic_bandwidth;
  volatile_cfg.nic_out_bw = config.nic_bandwidth;
  volatile_cfg.disk_bw = config.disk_bandwidth;

  // Hadoop mode: the dedicated machines exist but are typed volatile ("these
  // nodes are all treated as volatile in the Hadoop tests as Hadoop cannot
  // differentiate", §VI-C); they still never go down.
  moon::cluster::NodeConfig dedicated_cfg = volatile_cfg;
  dedicated_cfg.type = config.dedicated_known
                           ? moon::cluster::NodeType::kDedicated
                           : moon::cluster::NodeType::kVolatile;

  volatile_ids = cluster.add_nodes(config.volatile_nodes, volatile_cfg);
  cluster.add_nodes(config.dedicated_nodes, dedicated_cfg);

  // Availability traces apply to the genuinely volatile machines only.
  trace::GeneratorConfig gen_cfg = config.trace_gen;
  gen_cfg.unavailability_rate = config.unavailability_rate;
  Rng trace_rng = Rng{config.seed}.fork("traces");
  std::vector<trace::AvailabilityTrace> fleet;
  if (config.correlated_outages) {
    trace::CorrelatedConfig corr;
    corr.base = gen_cfg;
    corr.group_size = config.correlation_group_size;
    corr.correlated_fraction = config.correlated_fraction;
    corr.group_event_mean_s = config.correlated_event_mean_s;
    corr.group_event_stddev_s = config.correlated_event_mean_s / 4.0;
    corr.group_event_min_s =
        std::min(600.0, config.correlated_event_mean_s / 2.0);
    fleet = trace::CorrelatedTraceGenerator(corr).generate_fleet(
        trace_rng, volatile_ids.size());
  } else {
    fleet = trace::TraceGenerator(gen_cfg).generate_fleet(trace_rng,
                                                          volatile_ids.size());
  }

  driver = std::make_unique<moon::cluster::AvailabilityDriver>(sim, cluster);
  driver->assign_fleet(volatile_ids, fleet);
  const int repeats = static_cast<int>(
      config.max_sim_time / std::max<moon::sim::Duration>(gen_cfg.horizon, 1) +
      1);
  driver->install(repeats);

  dfs = std::make_unique<moon::dfs::Dfs>(sim, cluster, config.dfs, config.seed);
  dfs->start();

  jobtracker = std::make_unique<mapred::JobTracker>(sim, cluster, *dfs,
                                                    config.sched, config.seed);
  jobtracker->add_all_trackers();
  jobtracker->start();

  // Fault injection arms after the stack is live so outage cycles layer on
  // top of the already-installed availability traces. Its RNG streams fork
  // from the seed independently of every other component's.
  if (config.faults.any()) {
    injector = std::make_unique<moon::faults::FaultInjector>(
        sim, cluster, config.faults, config.seed);
    injector->arm(volatile_ids);
  }
  if (config.faults.enabled && config.faults.master_crash.enabled) {
    // Journals install before any workload is staged: the namespace and job
    // tables are still empty, so replay-from-empty reconstructs everything.
    moon::recovery::JournalConfig journal_cfg;
    journal_cfg.snapshot_interval = config.faults.master_crash.snapshot_interval;
    nn_journal =
        std::make_unique<moon::recovery::NameNodeJournal>(sim, journal_cfg);
    nn_journal->start();
    dfs->namenode().set_journal(nn_journal.get());
    jt_journal =
        std::make_unique<moon::recovery::JobTrackerJournal>(sim, journal_cfg);
    jt_journal->start();
    jobtracker->set_journal(jt_journal.get());
  }
  if (config.faults.enabled && (config.faults.audit_interval > 0 ||
                                config.faults.master_crash.enabled)) {
    auditor = std::make_unique<moon::audit::Auditor>(&cluster, dfs.get(),
                                                     jobtracker.get());
    if (config.faults.audit_interval > 0) {
      audit_task = std::make_unique<moon::sim::PeriodicTask>(
          sim, config.faults.audit_interval, [this] { auditor->run(); });
      audit_task->start();
    }
  }
  if (injector) {
    // No-op unless master_crash is on; hands the injector the auditor's
    // sweep as a callback (the faults layer sits below audit/ in the
    // architecture DAG), hence scheduled after the block above. The Auditor
    // outlives the injector on this Environment, so the captured pointer
    // stays valid for every recovery event.
    auto* audit_ptr = auditor.get();
    injector->schedule_master_crashes(
        dfs.get(), jobtracker.get(),
        audit_ptr == nullptr ? std::function<void()>()
                             : [audit_ptr] { audit_ptr->run(); });
  }

  if (config.obs.any()) {
    obs = std::make_shared<moon::obs::Observability>(config.obs, sim);
    if (auto* tracer = obs->tracer()) {
      tracer->name_process(moon::obs::kClusterPid, "cluster");
      tracer->name_track(moon::obs::kClusterPid, 0, "control");
      tracer->name_process(moon::obs::kDfsPid, "dfs");
      tracer->name_track(moon::obs::kDfsPid, 0, "namenode");
      for (std::size_t i = 0; i < cluster.size(); ++i) {
        const NodeId id{i};
        const std::string name = "node" + std::to_string(i);
        tracer->name_track(moon::obs::kClusterPid, moon::obs::node_track(id),
                           name);
        tracer->name_track(moon::obs::kDfsPid, moon::obs::node_track(id), name);
      }
    }
    if (auto* metrics = obs->metrics()) {
      // Gauges only *read* state (§12 zero-perturbation contract): plain
      // counters and index sizes, never settle-on-read APIs.
      auto* jt = jobtracker.get();
      auto* fs = dfs.get();
      auto* cl = &cluster;
      auto* sm = &sim;
      metrics->add_gauge("cluster_utilization", [jt] {
        int used = 0;
        for (const auto* t : jt->trackers()) {
          if (jt->tracker_state(t->node_id()) != mapred::TrackerState::kLive) {
            continue;
          }
          used += t->used_slots(mapred::TaskType::kMap) +
                  t->used_slots(mapred::TaskType::kReduce);
        }
        const int total = jt->available_execution_slots();
        return total == 0 ? 0.0 : static_cast<double>(used) / total;
      });
      metrics->add_gauge("running_attempts", [jt] {
        std::size_t n = 0;
        for (const auto* job : jt->jobs_in_order()) {
          if (job->finished()) continue;
          n += job->running_index_size(mapred::TaskType::kMap) +
               job->running_index_size(mapred::TaskType::kReduce);
        }
        return static_cast<double>(n);
      });
      metrics->add_gauge("pending_tasks", [jt] {
        std::size_t n = 0;
        for (const auto* job : jt->jobs_in_order()) {
          if (job->finished()) continue;
          n += job->pending_index_size(mapred::TaskType::kMap) +
               job->pending_index_size(mapred::TaskType::kReduce);
        }
        return static_cast<double>(n);
      });
      metrics->add_gauge("live_nodes", [cl] {
        return static_cast<double>(cl->available_count());
      });
      metrics->add_gauge("shuffle_bytes_in_flight", [fs] {
        return static_cast<double>(fs->shuffle_bytes_in_flight());
      });
      metrics->add_gauge("replication_queue_depth", [fs] {
        return static_cast<double>(fs->namenode().replication_queue_depth());
      });
      metrics->add_gauge("active_repairs", [fs] {
        return static_cast<double>(fs->active_repairs());
      });
      metrics->add_gauge("dfs_active_ops", [fs] {
        return static_cast<double>(fs->active_ops());
      });
      metrics->add_gauge("active_flows", [cl] {
        return static_cast<double>(cl->network().active_flows());
      });
      metrics->add_gauge("event_queue_depth", [sm] {
        return static_cast<double>(sm->pending_events());
      });
      metrics->add_gauge("dfs_bytes_read", [fs] {
        return static_cast<double>(fs->stats().bytes_read);
      });
      metrics->add_gauge("dfs_bytes_written", [fs] {
        return static_cast<double>(fs->stats().bytes_written);
      });
      metrics->add_gauge("replication_bytes", [fs] {
        return static_cast<double>(fs->stats().replication_bytes);
      });
      if (auto* adm = jt->admission()) {
        // Steady-state serving gauges (DESIGN.md §16): load relative to the
        // admission caps, the defer backlog, and the retained-state
        // footprint GC keeps bounded. Registered only when admission is on,
        // so existing gauge CSVs are byte-stable.
        metrics->add_gauge("admission_backpressure",
                           [adm] { return adm->backpressure(); });
        metrics->add_gauge("admission_deferred", [adm] {
          return static_cast<double>(adm->deferred_depth());
        });
        metrics->add_gauge("admission_rejected", [adm] {
          return static_cast<double>(adm->stats().rejected);
        });
        metrics->add_gauge("admission_shed", [adm] {
          return static_cast<double>(adm->stats().shed);
        });
        metrics->add_gauge("live_jobs", [jt] {
          return static_cast<double>(jt->live_jobs());
        });
        metrics->add_gauge("retained_job_bytes", [jt] {
          return static_cast<double>(jt->retained_state_bytes());
        });
      }
      if (injector) {
        auto* fi = injector.get();
        metrics->add_gauge("faults_injected", [fi] {
          return static_cast<double>(fi->stats().total_injected());
        });
        metrics->add_gauge("quarantined_nodes", [jt] {
          return static_cast<double>(jt->quarantined_count());
        });
      }
      if (auditor) {
        auto* au = auditor.get();
        metrics->add_gauge("audit_violations", [au] {
          return static_cast<double>(au->violations_total());
        });
      }
      if (nn_journal) {
        // Master-failover gauges: downtime exposure and parked-work backlog.
        metrics->add_gauge("masters_down", [fs, jt] {
          return (fs->namenode().available() ? 0.0 : 1.0) +
                 (jt->available() ? 0.0 : 1.0);
        });
        metrics->add_gauge("dfs_ops_parked", [fs] {
          return static_cast<double>(fs->stats().ops_parked);
        });
        metrics->add_gauge("master_retries", [fs] {
          return static_cast<double>(fs->stats().master_retries);
        });
        auto* nj = nn_journal.get();
        auto* tj = jt_journal.get();
        metrics->add_gauge("journal_records", [nj, tj] {
          return static_cast<double>(nj->stats().records_appended +
                                     tj->stats().records_appended);
        });
      }
    }
    obs->attach();
  }
}

}  // namespace moon::experiment
