#include "experiment/environment.hpp"

#include <algorithm>

#include "experiment/scenario.hpp"
#include "trace/correlated.hpp"
#include "trace/trace_generator.hpp"

namespace moon::experiment {

Environment::Environment(const ScenarioConfig& config)
    : sim(config.seed),
      cluster(sim, config.fairness, config.solver, config.coalesce) {
  // The members `sim`/`cluster`/`dfs` shadow their namespaces in here, so
  // namespace-qualified types spell out moon::.
  moon::cluster::NodeConfig volatile_cfg;
  volatile_cfg.type = moon::cluster::NodeType::kVolatile;
  volatile_cfg.map_slots = config.map_slots;
  volatile_cfg.reduce_slots = config.reduce_slots;
  volatile_cfg.nic_in_bw = config.nic_bandwidth;
  volatile_cfg.nic_out_bw = config.nic_bandwidth;
  volatile_cfg.disk_bw = config.disk_bandwidth;

  // Hadoop mode: the dedicated machines exist but are typed volatile ("these
  // nodes are all treated as volatile in the Hadoop tests as Hadoop cannot
  // differentiate", §VI-C); they still never go down.
  moon::cluster::NodeConfig dedicated_cfg = volatile_cfg;
  dedicated_cfg.type = config.dedicated_known
                           ? moon::cluster::NodeType::kDedicated
                           : moon::cluster::NodeType::kVolatile;

  volatile_ids = cluster.add_nodes(config.volatile_nodes, volatile_cfg);
  cluster.add_nodes(config.dedicated_nodes, dedicated_cfg);

  // Availability traces apply to the genuinely volatile machines only.
  trace::GeneratorConfig gen_cfg = config.trace_gen;
  gen_cfg.unavailability_rate = config.unavailability_rate;
  Rng trace_rng = Rng{config.seed}.fork("traces");
  std::vector<trace::AvailabilityTrace> fleet;
  if (config.correlated_outages) {
    trace::CorrelatedConfig corr;
    corr.base = gen_cfg;
    corr.group_size = config.correlation_group_size;
    corr.correlated_fraction = config.correlated_fraction;
    corr.group_event_mean_s = config.correlated_event_mean_s;
    corr.group_event_stddev_s = config.correlated_event_mean_s / 4.0;
    corr.group_event_min_s =
        std::min(600.0, config.correlated_event_mean_s / 2.0);
    fleet = trace::CorrelatedTraceGenerator(corr).generate_fleet(
        trace_rng, volatile_ids.size());
  } else {
    fleet = trace::TraceGenerator(gen_cfg).generate_fleet(trace_rng,
                                                          volatile_ids.size());
  }

  driver = std::make_unique<moon::cluster::AvailabilityDriver>(sim, cluster);
  driver->assign_fleet(volatile_ids, fleet);
  const int repeats = static_cast<int>(
      config.max_sim_time / std::max<moon::sim::Duration>(gen_cfg.horizon, 1) +
      1);
  driver->install(repeats);

  dfs = std::make_unique<moon::dfs::Dfs>(sim, cluster, config.dfs, config.seed);
  dfs->start();

  jobtracker = std::make_unique<mapred::JobTracker>(sim, cluster, *dfs,
                                                    config.sched, config.seed);
  jobtracker->add_all_trackers();
  jobtracker->start();
}

}  // namespace moon::experiment
