// Shared `--trace=FILE` / `--metrics=FILE` / `--events=FILE` command-line
// handling for examples and benches.
//
// parse_obs_cli() strips the observability flags out of argv (so existing
// positional-argument parsing is untouched), apply() switches the matching
// ObsConfig pieces on, and export_run() writes whatever a finished run's
// Observability bundle collected:
//   --trace=FILE    Chrome trace-event JSON (open in ui.perfetto.dev)
//   --metrics=FILE  gauge time-series CSV (one row per sampling tick)
//   --events=FILE   structured event log as JSONL
#pragma once

#include <string>

#include "obs/observability.hpp"

namespace moon::experiment {

struct ObsCli {
  std::string trace_path;
  std::string metrics_path;
  std::string events_path;

  [[nodiscard]] bool any() const {
    return !trace_path.empty() || !metrics_path.empty() ||
           !events_path.empty();
  }

  /// Enables the ObsConfig pieces the requested exports need.
  void apply(obs::ObsConfig& config) const;

  /// Writes the requested export files from a finalized bundle; prints one
  /// confirmation line per file to stderr. No-op on null `bundle` (obs was
  /// never enabled) — callers can pass RunResult::obs.get() unconditionally.
  void export_run(const obs::Observability* bundle) const;
};

/// Extracts the observability flags from argv, compacting the remaining
/// arguments in place and updating argc.
ObsCli parse_obs_cli(int& argc, char** argv);

}  // namespace moon::experiment
