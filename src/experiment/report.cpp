#include "experiment/report.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <stdexcept>

namespace moon::experiment {

SweepReport::SweepReport(std::string name) : name_(std::move(name)) {}

void SweepReport::add(std::string row, std::string column, Summary summary) {
  cells_.push_back(SweepCell{std::move(row), std::move(column), std::move(summary)});
}

void SweepReport::write_csv(std::ostream& os) const {
  os << "sweep,row,column,runs,completed,time_mean_s,time_stddev_s,"
        "duplicated_mean,killed_maps_mean,killed_reduces_mean,"
        "map_time_mean_s,shuffle_time_mean_s,reduce_time_mean_s,"
        "fetch_failures_mean\n";
  os << std::fixed << std::setprecision(3);
  for (const auto& cell : cells_) {
    const auto& s = cell.summary;
    os << name_ << ',' << cell.row << ',' << cell.column << ','
       << s.total_runs << ',' << s.completed_runs << ','
       << s.execution_time_s.mean() << ',' << s.execution_time_s.stddev() << ','
       << s.duplicated_tasks.mean() << ',' << s.killed_maps.mean() << ','
       << s.killed_reduces.mean() << ',' << s.avg_map_time_s.mean() << ','
       << s.avg_shuffle_time_s.mean() << ',' << s.avg_reduce_time_s.mean()
       << ',' << s.fetch_failures.mean() << '\n';
  }
}

void SweepReport::save_csv(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("SweepReport: cannot open " + path);
  write_csv(os);
}

}  // namespace moon::experiment
